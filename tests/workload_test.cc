// Workload model tests: file populations, phase structure and I/O accounting
// of the three application models, and the synthetic mix generator.
#include <gtest/gtest.h>

#include "test_util.h"

#include "sim/kernel.h"
#include "vfs/local_session.h"
#include "vfs/memfs.h"
#include "vm/guest_fs.h"
#include "vm/vm_image.h"
#include "vm/vm_monitor.h"
#include "workload/kernel_compile.h"
#include "workload/latex.h"
#include "workload/population.h"
#include "workload/specseis.h"
#include "workload/synthetic.h"

namespace gvfs::workload {
namespace {

struct WlFixture {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  vfs::LocalFsSession session{fs, disk};
  vm::VmImagePaths paths;
  std::unique_ptr<vm::VmMonitor> vm;
  std::unique_ptr<vm::GuestFs> gfs;

  WlFixture() {
    vm::VmImageSpec spec;
    spec.memory_bytes = 8_MiB;
    spec.disk_bytes = u64{1638} * 1_MiB;
    paths = *vm::install_image(fs, "/images", spec);
    vm = std::make_unique<vm::VmMonitor>();
    vm->attach(session, paths.cfg(), paths.vmss(), session, paths.flat_vmdk());
    gfs = std::make_unique<vm::GuestFs>(*vm);
  }

  void run(std::function<void(sim::Process&)> body) {
    kernel.run_process("t", std::move(body));
    EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  }
};

TEST(Population, SizesSumToRoughlyTotal) {
  WlFixture f;
  PopulationSpec spec;
  spec.files = 200;
  spec.total_bytes = 10_MiB;
  spec.min_file = 1_KiB;
  FilePopulation pop(*f.gfs, spec);
  ASSERT_TRUE(pop.install().is_ok());
  EXPECT_EQ(pop.count(), 200u);
  EXPECT_GE(pop.total_bytes(), 10_MiB);
  EXPECT_LE(pop.total_bytes(), 12_MiB);  // + min_file per file
}

TEST(Population, ReadAllTouchesEveryFile) {
  WlFixture f;
  PopulationSpec spec;
  spec.files = 50;
  spec.total_bytes = 2_MiB;
  FilePopulation pop(*f.gfs, spec);
  ASSERT_TRUE(pop.install().is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_TRUE(pop.read_all(p).is_ok());
    EXPECT_GE(f.vm->host_read_bytes(), 2_MiB);
  });
}

TEST(Population, OpenTouchesInodeRegionOnce) {
  WlFixture f;
  PopulationSpec spec;
  spec.files = 32;
  spec.total_bytes = 1_MiB;
  FilePopulation pop(*f.gfs, spec);
  ASSERT_TRUE(pop.install().is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_OK(pop.open(p, 0));
    u64 reads = f.vm->host_reads();
    ASSERT_OK(pop.open(p, 0));  // inode block now guest-cached
    EXPECT_EQ(f.vm->host_reads(), reads);
  });
}

TEST(SpecSeis, FourPhasesWithComputeFloors) {
  WlFixture f;
  SpecSeisConfig cfg;
  cfg.input_bytes = 2_MiB;
  cfg.trace_bytes = 4_MiB;
  cfg.result_bytes = 1_MiB;
  cfg.p1_compute_s = 10;
  cfg.p2_compute_s = 5;
  cfg.p3_compute_s = 5;
  cfg.p4_compute_s = 40;
  SpecSeisWorkload wl(cfg);
  ASSERT_TRUE(wl.install(*f.gfs).is_ok());
  f.run([&](sim::Process& p) {
    auto report = wl.run(p, *f.gfs);
    ASSERT_TRUE(report.is_ok());
    ASSERT_EQ(report->phases.size(), 4u);
    EXPECT_GE(report->phase_s("phase1"), 10.0);
    EXPECT_GE(report->phase_s("phase4"), 40.0);
    // Phase 4 is compute-dominated: I/O adds little.
    EXPECT_LT(report->phase_s("phase4"), 44.0);
    EXPECT_NEAR(report->total_s(),
                report->phase_s("phase1") + report->phase_s("phase2") +
                    report->phase_s("phase3") + report->phase_s("phase4"),
                1e-9);
    // The trace file exists with the full size.
    EXPECT_EQ(f.gfs->size("seis.trace"), 4_MiB);
  });
}

TEST(Latex, IterationsReported) {
  WlFixture f;
  LatexConfig cfg;
  cfg.iterations = 5;
  cfg.support_files = 40;
  cfg.support_bytes = 2_MiB;
  cfg.source_files = 6;
  cfg.source_bytes = 256_KiB;
  LatexWorkload wl(cfg);
  ASSERT_TRUE(wl.install(*f.gfs).is_ok());
  f.run([&](sim::Process& p) {
    auto report = wl.run(p, *f.gfs);
    ASSERT_TRUE(report.is_ok());
    ASSERT_EQ(report->phases.size(), 5u);
    double first = report->phases[0].seconds;
    double later = report->phases[3].seconds;
    // First iteration pays the cold reads; later ones are cheaper.
    EXPECT_GT(first, later);
    // Every iteration includes at least the compute floor.
    for (const auto& ph : report->phases) {
      EXPECT_GE(ph.seconds, cfg.latex_compute_s + cfg.bibtex_compute_s +
                                cfg.dvipdf_compute_s);
    }
  });
}

TEST(Latex, RunWithoutInstallFails) {
  WlFixture f;
  LatexWorkload wl;
  f.run([&](sim::Process& p) {
    EXPECT_FALSE(wl.run(p, *f.gfs).is_ok());
  });
}

TEST(KernelCompile, FourPhases) {
  WlFixture f;
  KernelCompileConfig cfg;
  cfg.source_files = 300;
  cfg.source_bytes = 8_MiB;
  cfg.object_files = 80;
  cfg.object_bytes = 3_MiB;
  cfg.dep_compute_s = 5;
  cfg.bzimage_compute_s = 20;
  cfg.modules_compute_s = 30;
  cfg.install_compute_s = 2;
  KernelCompileWorkload wl(cfg);
  ASSERT_TRUE(wl.install(*f.gfs).is_ok());
  f.run([&](sim::Process& p) {
    auto report = wl.run(p, *f.gfs);
    ASSERT_TRUE(report.is_ok());
    ASSERT_EQ(report->phases.size(), 4u);
    EXPECT_EQ(report->phases[0].name, "make dep");
    EXPECT_EQ(report->phases[3].name, "make modules_install");
    EXPECT_GE(report->phase_s("make bzImage"), 20.0);
    EXPECT_GT(f.vm->host_read_bytes(), 8_MiB);  // sources + metadata
  });
}

TEST(Synthetic, ReadWriteMixAccounting) {
  WlFixture f;
  SyntheticConfig cfg;
  cfg.file_bytes = 8_MiB;
  cfg.io_size = 32_KiB;
  cfg.ops = 200;
  cfg.read_fraction = 0.5;
  SyntheticWorkload wl(cfg);
  ASSERT_TRUE(wl.install(*f.gfs).is_ok());
  f.run([&](sim::Process& p) {
    auto report = wl.run(p, *f.gfs);
    ASSERT_TRUE(report.is_ok());
    EXPECT_EQ(report->phases.size(), 1u);
    EXPECT_GT(wl.bytes_read(), 0u);
    EXPECT_GT(wl.bytes_written(), 0u);
    EXPECT_EQ(wl.bytes_read() + wl.bytes_written(), 200u * 32_KiB);
  });
}

TEST(Synthetic, SequentialCheaperThanRandom) {
  WlFixture f1, f2;
  SyntheticConfig cfg;
  cfg.file_bytes = 16_MiB;
  cfg.ops = 256;
  cfg.read_fraction = 1.0;
  cfg.sequential = true;
  SyntheticWorkload seq(cfg);
  cfg.sequential = false;
  SyntheticWorkload rnd(cfg);
  ASSERT_TRUE(seq.install(*f1.gfs).is_ok());
  ASSERT_TRUE(rnd.install(*f2.gfs).is_ok());
  double seq_s = 0, rnd_s = 0;
  f1.run([&](sim::Process& p) { seq_s = seq.run(p, *f1.gfs)->total_s(); });
  f2.run([&](sim::Process& p) { rnd_s = rnd.run(p, *f2.gfs)->total_s(); });
  EXPECT_LT(seq_s, rnd_s);
}

TEST(Report, PhaseLookup) {
  WorkloadReport r;
  r.phases = {{"a", 1.5}, {"b", 2.5}};
  EXPECT_DOUBLE_EQ(r.total_s(), 4.0);
  EXPECT_DOUBLE_EQ(r.phase_s("b"), 2.5);
  EXPECT_DOUBLE_EQ(r.phase_s("zz"), 0.0);
}

}  // namespace
}  // namespace gvfs::workload
