// Origin image cluster: ShardRouter routing policy, quorum writes with
// crash-failover + journal resync, and the per-origin DRC volatility seam
// (DESIGN.md §5.7), all through the full Testbed topology.
#include <gtest/gtest.h>

#include "blob/blob.h"
#include "common/rng.h"
#include "gvfs/testbed.h"
#include "proxy/shard_router.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace gvfs::core {
namespace {

std::vector<u8> fill_bytes(u64 seed, u64 size) {
  std::vector<u8> out(size);
  SplitMix64 rng(seed);
  for (auto& b : out) b = static_cast<u8>(rng.next());
  return out;
}

std::vector<u8> file_bytes(vfs::MemFs& fs, const std::string& abs) {
  auto f = fs.get_file(abs);
  EXPECT_TRUE(f.is_ok()) << abs;
  if (!f.is_ok()) return {};
  std::vector<u8> out((*f)->size());
  (*f)->read(0, out);
  return out;
}

u32 shard_of_path(Testbed& bed, const std::string& abs) {
  auto id = bed.origin_fs(0).resolve(abs);
  EXPECT_TRUE(id.is_ok()) << abs;
  return bed.shard_router(0)->shard_of(bed.origin_server(0)->fh_of(*id));
}

// ---- topology ---------------------------------------------------------------

TEST(ClusterTopology, DefaultOffKeepsSingleOrigin) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  Testbed bed(opt);
  EXPECT_EQ(bed.origin_count(), 1u);
  EXPECT_EQ(bed.shard_router(), nullptr);
  EXPECT_NE(bed.server(), nullptr);
}

TEST(ClusterTopology, ExposesOriginsAndClampsReplicas) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.origin_cluster = true;
  opt.origin_shards = 3;
  opt.origin_replicas = 5;  // more than the cluster has: clamped to 3
  Testbed bed(opt);
  ASSERT_NE(bed.shard_router(), nullptr);
  EXPECT_EQ(bed.origin_count(), 3u);
  EXPECT_EQ(bed.shard_router()->origin_count(), 3u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NE(bed.origin_server(j), nullptr);
    EXPECT_TRUE(bed.shard_router()->origin_live(static_cast<u32>(j)));
  }
  // Chained declustering: shard s lives on {s, s+1, ...} mod N.
  EXPECT_EQ(bed.shard_router()->replicas_of(1), (std::vector<u32>{1, 2, 0}));
  // server() falls back to origin 0 in cluster mode.
  EXPECT_EQ(bed.server(), bed.origin_server(0));
}

// ---- routing ----------------------------------------------------------------

TEST(ClusterRouting, WritesLandOnlyOnHomeShardReplicas) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.origin_cluster = true;
  opt.origin_shards = 2;
  opt.origin_replicas = 1;
  Testbed bed(opt);

  const int kFiles = 4;
  std::vector<std::vector<u8>> init(kFiles);
  for (int f = 0; f < kFiles; ++f) {
    init[static_cast<std::size_t>(f)] = fill_bytes(10 + static_cast<u64>(f), 8_KiB);
    ASSERT_TRUE(bed.put_image_file("/r" + std::to_string(f),
                                   blob::make_bytes(init[static_cast<std::size_t>(f)]))
                    .is_ok());
  }

  std::vector<std::vector<u8>> fresh(kFiles);
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    for (int f = 0; f < kFiles; ++f) {
      fresh[static_cast<std::size_t>(f)] = fill_bytes(99 + static_cast<u64>(f), 8_KiB);
      ASSERT_TRUE(bed.image_session()
                      .write(p, "/r" + std::to_string(f), 0,
                             blob::make_bytes(fresh[static_cast<std::size_t>(f)]))
                      .is_ok());
    }
    ASSERT_TRUE(bed.image_session().flush(p).is_ok());
    ASSERT_TRUE(bed.signal_write_back(p).is_ok());
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  // With R = 1 a write reaches exactly its home origin: the home copy holds
  // the new bytes, every other origin still holds the install-time bytes.
  for (int f = 0; f < kFiles; ++f) {
    std::string abs = bed.image_dir() + "/r" + std::to_string(f);
    u32 home = shard_of_path(bed, abs);
    for (u32 j = 0; j < bed.origin_count(); ++j) {
      const auto& want =
          j == home ? fresh[static_cast<std::size_t>(f)] : init[static_cast<std::size_t>(f)];
      EXPECT_EQ(file_bytes(bed.origin_fs(static_cast<int>(j)), abs), want)
          << "file " << f << " origin " << j;
    }
  }
  EXPECT_GT(bed.shard_router()->writes_routed(0), 0u);
  EXPECT_GT(bed.shard_router()->writes_routed(1), 0u);
}

TEST(ClusterRouting, NamespaceMutationsBroadcastToAllOrigins) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.origin_cluster = true;
  opt.origin_shards = 3;
  opt.origin_replicas = 1;
  Testbed bed(opt);

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    ASSERT_TRUE(bed.image_session().create(p, "/fresh").is_ok());
    ASSERT_TRUE(bed.image_session().create(p, "/doomed").is_ok());
    ASSERT_TRUE(bed.image_session().remove(p, "/doomed").is_ok());
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  // CREATE broadcast: the file exists on every origin under the SAME FileId
  // (identical mutation order keeps the shard map aligned cluster-wide).
  auto id0 = bed.origin_fs(0).resolve(bed.image_dir() + "/fresh");
  ASSERT_TRUE(id0.is_ok());
  for (u32 j = 0; j < bed.origin_count(); ++j) {
    auto idj = bed.origin_fs(static_cast<int>(j)).resolve(bed.image_dir() + "/fresh");
    ASSERT_TRUE(idj.is_ok()) << "origin " << j;
    EXPECT_EQ(*idj, *id0) << "origin " << j;
    // REMOVE broadcast: the deleted name is gone everywhere.
    EXPECT_FALSE(
        bed.origin_fs(static_cast<int>(j)).exists(bed.image_dir() + "/doomed"))
        << "origin " << j;
  }
}

TEST(ClusterRouting, StatSizeReflectsHomeShardAfterExtend) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.origin_cluster = true;
  opt.origin_shards = 4;
  opt.origin_replicas = 1;
  Testbed bed(opt);

  const int kFiles = 8;
  for (int f = 0; f < kFiles; ++f) {
    ASSERT_TRUE(bed.put_image_file("/s" + std::to_string(f),
                                   blob::make_bytes(fill_bytes(7, 8_KiB)))
                    .is_ok());
  }

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    std::vector<u8> ext = fill_bytes(55, 16_KiB);
    for (int f = 0; f < kFiles; ++f) {
      ASSERT_TRUE(
          session.write(p, "/s" + std::to_string(f), 0, blob::make_bytes(ext))
              .is_ok());
    }
    ASSERT_TRUE(session.flush(p).is_ok());
    // Only the home shard saw the extending write; a LOOKUP served by any
    // other origin must still report the authoritative (patched) size.
    bed.nfs_client()->drop_caches();
    for (int f = 0; f < kFiles; ++f) {
      auto a = session.stat(p, "/s" + std::to_string(f));
      ASSERT_TRUE(a.is_ok());
      EXPECT_EQ(a->size, 16_KiB) << "file " << f;
    }
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  // 8 files over 4 shards: some LOOKUPs are necessarily served off-shard
  // (the directory's home differs from the file's), so the patch path ran.
  EXPECT_GT(bed.shard_router()->lookup_patches(), 0u);
}

// ---- crash failover + DRC seam ----------------------------------------------

struct CrashRunStats {
  u64 failovers = 0;
  u64 resyncs = 0;
  u64 journaled = 0;
  u64 replayed = 0;
  u64 drc_clears0 = 0;
  u64 drc_clears1 = 0;
  u64 drc_retained1 = 0;
  double outage_ms = 0;
  bool victim_live = false;
  u64 victim_journal = 0;
  bool converged = false;
};

// One origin of a 2-shard / 2-replica cluster crashes at [5 s, 15 s) while a
// write-through client keeps writing. Every shard lives on both origins, so
// the survivor acks alone, the victim's journal accrues, and reintegration
// replays it; afterwards both origins must hold identical (expected) bytes.
CrashRunStats run_crash_cluster(bool drc_survives) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.origin_cluster = true;
  opt.origin_shards = 2;
  opt.origin_replicas = 2;
  opt.drc_survives = drc_survives;
  opt.enable_fault_injection = true;
  opt.fault.crashes.push_back(sim::FaultWindow{5 * kSecond, 15 * kSecond, 1});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;  // soft mount: kTimeout reaches the router
  Testbed bed(opt);

  const int kFiles = 2;
  std::vector<std::vector<u8>> expect(kFiles);
  for (int f = 0; f < kFiles; ++f) {
    expect[static_cast<std::size_t>(f)] = fill_bytes(40 + static_cast<u64>(f), 64_KiB);
    EXPECT_TRUE(bed.put_image_file(
                       "/c" + std::to_string(f),
                       blob::make_bytes(expect[static_cast<std::size_t>(f)]))
                    .is_ok());
  }

  bed.kernel().run_process("writer", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    auto write_round = [&](u64 seed) {
      for (int f = 0; f < kFiles; ++f) {
        std::vector<u8> data = fill_bytes(seed + static_cast<u64>(f), 32_KiB);
        ASSERT_TRUE(session
                        .write(p, "/c" + std::to_string(f), 0,
                               blob::make_bytes(data))
                        .is_ok());
        auto& bytes = expect[static_cast<std::size_t>(f)];
        std::copy(data.begin(), data.end(), bytes.begin());
      }
      // Push the staged writes upstream NOW, inside the crash window —
      // otherwise they sit in the client until the final flush and the
      // router never sees the dead replica.
      ASSERT_TRUE(session.flush(p).is_ok());
    };
    write_round(100);  // both origins live
    p.delay_until(8 * kSecond);
    write_round(200);  // origin 1 dead: survivor acks, victim journals
    p.delay_until(11 * kSecond);
    write_round(300);  // still dead: more journal
    p.delay_until(20 * kSecond);
    ASSERT_TRUE(session.flush(p).is_ok());
    bed.shard_router()->resync(p);  // force reintegration + replay
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  const proxy::ShardRouter* router = bed.shard_router();
  CrashRunStats out;
  out.failovers = router->failovers();
  out.resyncs = router->resyncs();
  out.journaled = router->journaled_ops();
  out.replayed = router->replayed_ops();
  out.outage_ms = router->last_outage_ms();
  out.victim_live = router->origin_live(1);
  out.victim_journal = router->journal_size(1);
  out.drc_clears0 = bed.origin_server(0)->drc_clears();
  out.drc_clears1 = bed.origin_server(1)->drc_clears();
  out.drc_retained1 = bed.origin_server(1)->drc_retained();
  out.converged = true;
  for (int f = 0; f < kFiles; ++f) {
    std::string abs = bed.image_dir() + "/c" + std::to_string(f);
    for (u32 j = 0; j < bed.origin_count(); ++j) {
      if (file_bytes(bed.origin_fs(static_cast<int>(j)), abs) !=
          expect[static_cast<std::size_t>(f)]) {
        out.converged = false;
      }
    }
  }
  return out;
}

// Regression for rejoin read-balance: a reintegrated replica used to come
// back with an invalid latency estimate, which best_read_replica_ scores as
// 0.0 ms — so the replica with the coldest page cache instantly absorbed the
// entire read fan-out of every shard it serves. Reintegration now seeds the
// estimate at the live peers' ceiling; for a shard homed on origin 0 the
// seeded tie must keep reads on origin 0 (strict <, earlier set position),
// and the rejoined origin 1 must take none of the post-resync reads.
TEST(ClusterFailover, RejoinedReplicaDoesNotAbsorbReadFanOut) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.origin_cluster = true;
  opt.origin_shards = 2;
  opt.origin_replicas = 2;
  opt.enable_fault_injection = true;
  opt.fault.crashes.push_back(sim::FaultWindow{5 * kSecond, 15 * kSecond, 1});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;
  Testbed bed(opt);

  // Pick a file homed on shard 0: its replica set is {origin 0, origin 1},
  // so the seeded tie must resolve to origin 0.
  std::vector<u8> content = fill_bytes(70, 256_KiB);
  std::string home0;
  for (int i = 0; i < 8 && home0.empty(); ++i) {
    std::string rel = "/r" + std::to_string(i);
    ASSERT_TRUE(bed.put_image_file(rel, blob::make_bytes(content)).is_ok());
    if (shard_of_path(bed, bed.image_dir() + rel) == 0) home0 = rel;
  }
  ASSERT_FALSE(home0.empty());

  u64 before0 = 0, before1 = 0, after0 = 0, after1 = 0;
  const int kHerd = 8;
  bed.kernel().spawn("setup", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    p.delay_until(8 * kSecond);  // origin 1 is down
    for (int i = 0; i < 4; ++i) {  // origin 0 accrues real samples
      bed.nfs_client()->drop_caches();
      bed.block_cache()->invalidate_all();
      auto r = session.read_all(p, home0);
      ASSERT_TRUE(r.is_ok());
      EXPECT_EQ(blob::content_hash(**r),
                blob::content_hash(*blob::make_bytes(content)));
    }
    p.delay_until(20 * kSecond);    // healed
    bed.shard_router()->resync(p);  // reintegrate (seeds the estimate)
    // Re-warm dentries/attrs (LOOKUPs route by the directory's shard), then
    // empty the data path so the herd below goes all the way downstream.
    ASSERT_TRUE(session.read_all(p, home0).is_ok());
    bed.nfs_client()->page_cache().drop_all();
    bed.block_cache()->invalidate_all();
    before0 = bed.shard_router()->reads_routed(0);
    before1 = bed.shard_router()->reads_routed(1);
  });
  // The herd: concurrent cold READs of distinct blocks, all routed before
  // any completion can feed the estimator a sample. Pre-fix every one of
  // them picked the 0.0 ms rejoined replica.
  for (int i = 0; i < kHerd; ++i) {
    bed.kernel().spawn("reader" + std::to_string(i), [&, i](sim::Process& p) {
      p.delay_until(21 * kSecond);
      auto r = bed.image_session().read(p, home0,
                                        static_cast<u64>(i) * 32_KiB, 32_KiB);
      ASSERT_TRUE(r.is_ok());
    });
  }
  bed.kernel().spawn("check", [&](sim::Process& p) {
    p.delay_until(25 * kSecond);
    after0 = bed.shard_router()->reads_routed(0);
    after1 = bed.shard_router()->reads_routed(1);
  });
  bed.kernel().run();
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_TRUE(bed.shard_router()->origin_live(1));
  EXPECT_GT(after0, before0);
  // Pre-fix the rejoined replica absorbed the entire herd here.
  EXPECT_EQ(after1, before1);
}

TEST(ClusterFailover, CrashJournalReplayConvergesWithZeroLostWrites) {
  CrashRunStats s = run_crash_cluster(/*drc_survives=*/false);
  EXPECT_GE(s.failovers, 1u);
  EXPECT_GE(s.resyncs, 1u);
  EXPECT_GT(s.journaled, 0u);
  EXPECT_EQ(s.replayed, s.journaled);  // every journaled op replayed
  EXPECT_TRUE(s.victim_live);
  EXPECT_EQ(s.victim_journal, 0u);
  EXPECT_GT(s.outage_ms, 0.0);
  EXPECT_LT(s.outage_ms, 30000.0);
  EXPECT_TRUE(s.converged);
  // The restart callback is keyed by server id: only the crashed origin's
  // DRC was cleared (RFC 1813 §4 volatility — the cache does not survive a
  // reboot unless journaled).
  EXPECT_GE(s.drc_clears1, 1u);
  EXPECT_EQ(s.drc_clears0, 0u);
  EXPECT_EQ(s.drc_retained1, 0u);
}

TEST(ClusterFailover, DrcSurvivesSeamRetainsCacheAcrossReboot) {
  CrashRunStats s = run_crash_cluster(/*drc_survives=*/true);
  // Same crash, same convergence — but the Juszczak-style journaling seam
  // keeps the victim's DRC across the reboot instead of clearing it.
  EXPECT_TRUE(s.converged);
  EXPECT_GE(s.drc_retained1, 1u);
  EXPECT_EQ(s.drc_clears1, 0u);
  EXPECT_EQ(s.drc_clears0, 0u);
}

// ---- quorum-write ordering under concurrency --------------------------------

// Scripted origin channel for driving a ShardRouter directly. A WRITE takes
// effect at request *arrival* (the order a real server's nfsd would observe),
// then the reply is delayed by a data-size-proportional service time — the
// window in which a second writer's RPC can land. While `alive` is false every
// call answers kTimeout, which is what the router's failure detector keys on.
class ApplyOrderOrigin final : public rpc::RpcChannel {
 public:
  bool alive = true;
  std::vector<u64> applied;  // WRITE offsets in request-arrival order

  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& call) override {
    if (!alive) return rpc::make_error_reply(call, err(ErrCode::kTimeout, "origin down"));
    if (call.prog == rpc::kNfsProgram &&
        static_cast<nfs::Proc>(call.proc) == nfs::Proc::kWrite) {
      auto wa = rpc::message_cast<nfs::WriteArgs>(call.args);
      applied.push_back(wa->offset);
      p.delay(static_cast<SimDuration>(wa->count) * kMillisecond);
      auto res = std::make_shared<nfs::WriteRes>();
      res->count = wa->count;
      res->committed = nfs::StableHow::kFileSync;
      res->verifier = 42;
      return rpc::make_reply(call, res);
    }
    return rpc::make_reply(call, nullptr);  // NULL probes etc.
  }
};

// Regression for the journal-order inversion the yield-point analyzer
// surfaced (yield-held-lock in quorum_write_): the replica fan-out yields once
// per RPC, so two interleaved writers used to land in one order on the live
// replica but journal in the *completion* order for the dead one — and the
// replay then diverged the replicas. The per-shard write lock serializes the
// fan-outs; this test drives the exact overtaking interleaving and asserts
// the journal replay reproduces the live replica's apply order.
TEST(ClusterFailover, ConcurrentQuorumWritesReplayInApplyOrder) {
  sim::SimKernel kernel;
  ApplyOrderOrigin o0;
  ApplyOrderOrigin o1;
  proxy::ShardRouterConfig cfg;
  cfg.replicas = 2;
  proxy::ShardRouter router({&o0, &o1}, cfg);

  // Pick a file handle homed on shard 0 so the fan-out hits origin 0 first.
  nfs::Fh fh;
  fh.fsid = 7;
  fh.fileid = 1;
  while (router.shard_of(fh) != 0) ++fh.fileid;

  u32 next_xid = 1;
  auto write = [&](sim::Process& p, u64 offset, u32 count) {
    auto wa = std::make_shared<nfs::WriteArgs>();
    wa->fh = fh;
    wa->offset = offset;
    wa->count = count;
    wa->stable = nfs::StableHow::kUnstable;
    wa->data = blob::zero_ref(count);
    rpc::RpcCall c;
    c.xid = next_xid++;
    c.prog = rpc::kNfsProgram;
    c.vers = rpc::kNfsVersion3;
    c.proc = static_cast<u32>(nfs::Proc::kWrite);
    c.args = wa;
    rpc::RpcReply r = router.call(p, c);
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
  };

  kernel.spawn("setup", [&](sim::Process& p) {
    o1.alive = false;  // crash replica 1 before any traffic
    write(p, 100, 1);  // detects the crash and starts the journal
    EXPECT_FALSE(router.origin_live(1));
  });
  // Two writers race on the same shard. The slow one issues first and parks
  // inside origin 0's service delay; the fast one would overtake it there.
  kernel.spawn("writer-slow", [&](sim::Process& p) {
    p.delay(10 * kMillisecond);
    write(p, 1, 50);  // ~50 ms of service time at the origin
  });
  kernel.spawn("writer-fast", [&](sim::Process& p) {
    p.delay(11 * kMillisecond);
    write(p, 2, 1);
  });
  kernel.spawn("revive", [&](sim::Process& p) {
    p.delay(500 * kMillisecond);
    o1.alive = true;
    router.resync(p);
  });
  kernel.run();
  EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();

  EXPECT_TRUE(router.origin_live(1));
  EXPECT_EQ(router.journal_size(1), 0u);
  ASSERT_FALSE(o0.applied.empty());
  // The reintegrated replica must have applied the contended writes in the
  // same order as the live one — the final value of the range depends on it.
  EXPECT_EQ(o1.applied, o0.applied);
  EXPECT_EQ(o0.applied.back(), 2u);
}

}  // namespace
}  // namespace gvfs::core
