// GVFS proxy tests: block-cache read path, write-back absorption and
// middleware-signalled flushes, COMMIT absorption, attribute overrides,
// credential mapping (logical user accounts), meta-data discovery
// (zero-block filtering + file channel), truncation coherence, and
// multi-level proxy cascades.
#include <gtest/gtest.h>

#include "test_util.h"

#include "cache/block_cache.h"
#include "cache/file_cache.h"
#include "meta/file_channel.h"
#include "meta/meta_file.h"
#include "nfs/nfs_client.h"
#include "nfs/nfs_server.h"
#include "proxy/gvfs_proxy.h"
#include "sim/kernel.h"
#include "ssh/ssh.h"

namespace gvfs::proxy {
namespace {

struct ProxyFixture {
  sim::SimKernel kernel;
  // Image server.
  vfs::MemFs server_fs;
  sim::DiskModel server_disk{kernel, "sd", sim::DiskConfig{}};
  sim::CpuPool server_cpu{kernel, 2};
  nfs::NfsServer server{kernel, server_fs, server_disk, nfs::NfsServerConfig{}};
  rpc::LinkChannel server_loop{server, nullptr, nullptr, 10 * kMicrosecond};
  GvfsProxy server_proxy{make_server_proxy_cfg(), server_loop};
  meta::ServerFileChannel endpoint{server_fs, server_disk, &server_cpu};
  // WAN.
  sim::Link wan_up{kernel, "up", sim::LinkConfig{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0}};
  sim::Link wan_down{kernel, "down", sim::LinkConfig{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0}};
  ssh::SshTunnel tunnel{server_proxy, &wan_up, &wan_down, ssh::CipherSpec{}};
  // Client side.
  sim::DiskModel client_disk{kernel, "cd", sim::DiskConfig{}};
  cache::ProxyDiskCache block_cache{client_disk, small_cache_cfg()};
  cache::FileCache file_cache{client_disk};
  ssh::Scp scp{wan_down, ssh::CipherSpec{}};
  meta::FileChannelClient channel{endpoint, scp, file_cache};
  GvfsProxy client_proxy{make_client_proxy_cfg(), tunnel};
  rpc::LinkChannel loop{client_proxy, nullptr, nullptr, 15 * kMicrosecond};
  nfs::NfsClient client{loop, make_cred(), make_client_cfg()};

  static ProxyConfig make_server_proxy_cfg() {
    ProxyConfig cfg;
    cfg.name = "server-proxy";
    cfg.enable_meta = false;
    return cfg;
  }
  static ProxyConfig make_client_proxy_cfg() {
    ProxyConfig cfg;
    cfg.name = "client-proxy";
    return cfg;
  }
  static cache::BlockCacheConfig small_cache_cfg() {
    cache::BlockCacheConfig cfg;
    cfg.capacity_bytes = 64_MiB;
    cfg.block_size = 32_KiB;
    cfg.num_banks = 8;
    cfg.associativity = 8;
    return cfg;
  }
  static rpc::Credential make_cred() {
    rpc::Credential c;
    c.uid = 1234;
    c.gid = 1234;
    return c;
  }
  static nfs::NfsClientConfig make_client_cfg() {
    nfs::NfsClientConfig cfg;
    cfg.rsize = cfg.wsize = 32_KiB;
    return cfg;
  }

  ProxyFixture() {
    EXPECT_TRUE(server.add_export("/exports").is_ok());
    client_proxy.attach_block_cache(block_cache);
    client_proxy.attach_file_channel(channel, file_cache);
  }

  void run(std::function<void(sim::Process&)> body) {
    kernel.run_process("t", [&](sim::Process& p) {
      ASSERT_TRUE(client.mount(p, "/exports").is_ok());
      body(p);
    });
    EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  }
};

TEST(Proxy, ReadThroughCachesBlocks) {
  ProxyFixture f;
  auto content = blob::make_synthetic(1, 256_KiB, 0.3, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/data", content).is_ok());
  f.run([&](sim::Process& p) {
    auto back = f.client.read_all(p, "/data");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
  });
  EXPECT_GT(f.block_cache.resident_blocks(), 0u);
}

TEST(Proxy, SecondColdClientReadHitsProxyCache) {
  ProxyFixture f;
  ASSERT_TRUE(
      f.server_fs.put_file("/exports/data", blob::make_synthetic(2, 512_KiB, 0, 2.0)).is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_OK(f.client.read_all(p, "/data"));
    u64 upstream_after_first = f.tunnel.messages();
    // Client page cache dropped (fresh session) but proxy cache kept: the
    // re-read must be served from the proxy disk cache, not the WAN.
    f.client.drop_caches();
    SimTime t0 = p.now();
    auto back = f.client.read_all(p, "/data");
    ASSERT_TRUE(back.is_ok());
    SimTime warm = p.now() - t0;
    EXPECT_LE(f.tunnel.messages(), upstream_after_first + 4);  // attr refresh only
    EXPECT_LT(to_seconds(warm), 0.5);
    EXPECT_GT(f.client_proxy.reads_served_from_block_cache(), 0u);
  });
}

TEST(Proxy, WriteBackAbsorbsWritesLocally) {
  ProxyFixture f;
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  f.run([&](sim::Process& p) {
    u64 upstream_before = f.tunnel.messages();
    // Aligned full-block write: absorbed entirely by the proxy cache.
    ASSERT_TRUE(
        f.client.write(p, "/f", 0, blob::make_synthetic(3, 64_KiB, 0, 2.0)).is_ok());
    ASSERT_TRUE(f.client.flush(p).is_ok());
    EXPECT_GT(f.client_proxy.writes_absorbed(), 0u);
    EXPECT_EQ(f.block_cache.dirty_blocks(), 2u);
    // Server content unchanged until the middleware signal.
    EXPECT_TRUE((*f.server_fs.get_file("/exports/f"))->is_zero_range(0, 64_KiB));
    (void)upstream_before;
  });
}

TEST(Proxy, SignalWriteBackPushesDirtyUpstream) {
  ProxyFixture f;
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  auto content = blob::make_synthetic(4, 64_KiB, 0, 2.0);
  f.run([&](sim::Process& p) {
    ASSERT_TRUE(f.client.write(p, "/f", 0, content).is_ok());
    ASSERT_TRUE(f.client.flush(p).is_ok());
    ASSERT_TRUE(f.client_proxy.signal_write_back(p).is_ok());
    EXPECT_EQ(f.block_cache.dirty_blocks(), 0u);
  });
  EXPECT_EQ(blob::content_hash(**f.server_fs.get_file("/exports/f")),
            blob::content_hash(*content));
}

TEST(Proxy, ReadYourOwnWriteBeforeWriteBack) {
  ProxyFixture f;
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  auto content = blob::make_synthetic(5, 64_KiB, 0, 2.0);
  f.run([&](sim::Process& p) {
    ASSERT_OK(f.client.write(p, "/f", 0, content));
    ASSERT_OK(f.client.flush(p));
    f.client.drop_caches();  // force re-read through the proxy
    auto back = f.client.read_all(p, "/f");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
  });
}

TEST(Proxy, PartialWriteMergesWithUpstreamData) {
  ProxyFixture f;
  std::vector<u8> base(64_KiB);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<u8>(i / 256);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_bytes(base)).is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_TRUE(
        f.client.write(p, "/f", 40000, blob::make_bytes(std::vector<u8>(100, 0xee))).is_ok());
    ASSERT_TRUE(f.client.flush(p).is_ok());
    ASSERT_TRUE(f.client_proxy.signal_write_back(p).is_ok());
  });
  std::vector<u8> got(64_KiB);
  (*f.server_fs.get_file("/exports/f"))->read(0, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    u8 expect = (i >= 40000 && i < 40100) ? 0xee : static_cast<u8>(i / 256);
    ASSERT_EQ(got[i], expect) << "at " << i;
  }
}

TEST(Proxy, GrowingWriteExtendsSizeInGetattr) {
  ProxyFixture f;
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(10_KiB)).is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_TRUE(
        f.client.write(p, "/f", 100_KiB, blob::make_synthetic(6, 8_KiB, 0, 2.0)).is_ok());
    ASSERT_TRUE(f.client.flush(p).is_ok());
    f.client.drop_caches();
    auto a = f.client.stat(p, "/f");
    ASSERT_TRUE(a.is_ok());
    EXPECT_EQ(a->size, 108_KiB);  // proxy size override, pre-writeback
  });
}

TEST(Proxy, CommitAbsorbedInWriteBackMode) {
  ProxyFixture f;
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(32_KiB)).is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_OK(f.client.write(p, "/f", 0, blob::make_synthetic(7, 32_KiB, 0, 2.0)));
    u64 upstream_before = f.tunnel.messages();
    ASSERT_TRUE(f.client.flush(p).is_ok());  // WRITE + COMMIT toward proxy
    // Neither the WRITE nor the COMMIT crossed the WAN.
    EXPECT_EQ(f.tunnel.messages(), upstream_before);
  });
}

TEST(Proxy, CredentialsMappedToShadowAccount) {
  ProxyFixture f;
  f.server_proxy.set_cred_mapper([](const rpc::Credential& in) {
    rpc::Credential out = in;
    out.uid = 500;
    out.gid = 500;
    return out;
  });
  f.run([&](sim::Process& p) {
    ASSERT_TRUE(f.client.create(p, "/newfile").is_ok());
  });
  auto id = f.server_fs.resolve("/exports/newfile");
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(f.server_fs.getattr(*id)->uid, 500u);  // not 1234
}

TEST(Proxy, AuthorizerRejects) {
  ProxyFixture f;
  f.client_proxy.set_authorizer([](const rpc::Credential& c) { return c.uid != 1234; });
  f.kernel.run_process("t", [&](sim::Process& p) {
    EXPECT_FALSE(f.client.mount(p, "/exports").is_ok());
  });
}

TEST(Proxy, ZeroBlockFilteringServesLocally) {
  ProxyFixture f;
  // Memory-state-like file: mostly zeros, with a zero-map meta file but NO
  // file-channel actions (pure block path).
  auto mem = blob::make_synthetic(8, 2_MiB, 0.9, 3.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/vm.vmss", mem).is_ok());
  auto meta = meta::MetaFile::generate(*mem, 32_KiB);
  ASSERT_TRUE(
      f.server_fs.put_file("/exports/.vm.vmss.gvfsmeta", meta.serialize()).is_ok());
  f.run([&](sim::Process& p) {
    auto back = f.client.read_all(p, "/vm.vmss");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*mem));  // integrity!
  });
  EXPECT_GT(f.client_proxy.zero_filtered_reads(), 0u);
  EXPECT_EQ(f.client_proxy.zero_filtered_reads(), meta.zero_block_count());
}

TEST(Proxy, FileChannelServesWholeFileNeed) {
  ProxyFixture f;
  auto mem = blob::make_synthetic(9, 4_MiB, 0.9, 3.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/vm.vmss", mem).is_ok());
  auto meta = meta::MetaFile::generate(*mem, 8_KiB, meta::file_channel_actions());
  ASSERT_TRUE(
      f.server_fs.put_file("/exports/.vm.vmss.gvfsmeta", meta.serialize()).is_ok());
  f.run([&](sim::Process& p) {
    auto back = f.client.read_all(p, "/vm.vmss");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*mem));
  });
  EXPECT_EQ(f.channel.fetches(), 1u);
  EXPECT_GT(f.client_proxy.reads_served_from_file_cache(), 0u);
  // Wire carried only the compressed image, not 4 MiB of blocks.
  EXPECT_LT(f.channel.wire_bytes(), 1_MiB);
}

// File-channel endpoint that parks the fetching fiber long enough for another
// fiber to interleave, then fails — forcing handle_read_ down the block-path
// fallback with whatever MetaFile pointer it still holds.
struct StallingEndpoint final : meta::RemoteFileEndpoint {
  bool in_fetch = false;
  Result<meta::CompressedImage> fetch_compressed(sim::Process& p,
                                                 vfs::FileId) override {
    in_fetch = true;
    p.delay(2 * kSecond);
    in_fetch = false;
    return err(ErrCode::kIo, "channel endpoint down");
  }
  Status store_compressed(sim::Process&, vfs::FileId, blob::BlobRef,
                          u64) override {
    return err(ErrCode::kIo, "channel endpoint down");
  }
};

// Regression for the cross-yield defect the yield-point analyzer surfaced in
// handle_read_: the MetaFile* acquired before fetch_into_cache() used to be
// dereferenced after it, but the fetch yields on the WAN — and a concurrent
// drop_soft_state() (degraded-mode reset) frees the metas_ table entry the
// pointer aimed at. The fix re-acquires the pointer after the yield; this
// test drives exactly that interleaving and asserts the read completes off a
// freshly re-probed meta file.
TEST(Proxy, DropSoftStateDuringFileChannelFetchReprobesMeta) {
  ProxyFixture f;
  auto mem = blob::make_synthetic(31, 256_KiB, 0.9, 3.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/vm.vmss", mem).is_ok());
  // Zero map AND file-channel actions: the failed fetch must fall back to
  // zero filtering, which dereferences the (re-acquired) meta pointer.
  auto meta = meta::MetaFile::generate(*mem, 32_KiB, meta::file_channel_actions());
  ASSERT_TRUE(
      f.server_fs.put_file("/exports/.vm.vmss.gvfsmeta", meta.serialize()).is_ok());
  StallingEndpoint stalled;
  meta::FileChannelClient channel(stalled, f.scp, f.file_cache);
  f.client_proxy.attach_file_channel(channel, f.file_cache);

  bool dropped = false;
  u64 lookups_before_drop = 0;
  f.kernel.spawn("reader", [&](sim::Process& p) {
    ASSERT_OK(f.client.mount(p, "/exports"));
    auto back = f.client.read_all(p, "/vm.vmss");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*mem));
  });
  f.kernel.spawn("dropper", [&](sim::Process& p) {
    p.delay(1 * kSecond);
    // The reader must be parked inside the endpoint right now, holding its
    // pre-yield MetaFile pointer — otherwise this test proves nothing.
    ASSERT_TRUE(stalled.in_fetch);
    lookups_before_drop = f.server.calls(nfs::Proc::kLookup);
    f.client_proxy.drop_soft_state();
    dropped = true;
  });
  f.kernel.run();
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_TRUE(dropped);
  // The re-acquire after the yield found the table dropped and re-probed the
  // server for the meta file instead of chasing the freed pointer.
  EXPECT_GT(f.server.calls(nfs::Proc::kLookup), lookups_before_drop);
  EXPECT_EQ(f.client_proxy.meta_files_loaded(), 1u);
  // ...and the re-acquired meta actually served: zero blocks were filtered.
  EXPECT_GT(f.client_proxy.zero_filtered_reads(), 0u);
}

TEST(Proxy, MetaProbeNegativeCached) {
  ProxyFixture f;
  ASSERT_TRUE(f.server_fs.put_file("/exports/plain", blob::make_zero(64_KiB)).is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_OK(f.client.read(p, "/plain", 0, 1_KiB));
    u64 lookups_after_first = f.server.calls(nfs::Proc::kLookup);
    ASSERT_OK(f.client.read(p, "/plain", 40_KiB, 1_KiB));
    // No repeated meta-probe LOOKUPs upstream.
    EXPECT_EQ(f.server.calls(nfs::Proc::kLookup), lookups_after_first);
  });
  EXPECT_EQ(f.client_proxy.meta_files_loaded(), 0u);
}

TEST(Proxy, TruncateInvalidatesCachedBlocks) {
  ProxyFixture f;
  auto content = blob::make_synthetic(10, 128_KiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", content).is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_OK(f.client.read_all(p, "/f"));  // warm the proxy cache
    EXPECT_GT(f.block_cache.resident_blocks(), 0u);
    ASSERT_TRUE(f.client.truncate(p, "/f", 0).is_ok());
    f.client.drop_caches();
    auto a = f.client.stat(p, "/f");
    EXPECT_EQ(a->size, 0u);
    auto back = f.client.read(p, "/f", 0, 128_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ((*back)->size(), 0u);
  });
}

TEST(Proxy, WriteThroughForwardsSynchronously) {
  ProxyFixture f;
  // Rebuild client-side with write-through policy.
  cache::BlockCacheConfig cfg = ProxyFixture::small_cache_cfg();
  cfg.policy = cache::WritePolicy::kWriteThrough;
  cache::ProxyDiskCache wt_cache(f.client_disk, cfg);
  GvfsProxy wt_proxy(ProxyFixture::make_client_proxy_cfg(), f.tunnel);
  wt_proxy.attach_block_cache(wt_cache);
  rpc::LinkChannel loop(wt_proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());
  auto content = blob::make_synthetic(11, 32_KiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(32_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    ASSERT_TRUE(client.write(p, "/f", 0, content).is_ok());
    ASSERT_TRUE(client.flush(p).is_ok());
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  // Server already has the data, no signal needed.
  EXPECT_EQ(blob::content_hash(**f.server_fs.get_file("/exports/f")),
            blob::content_hash(*content));
  EXPECT_EQ(wt_cache.dirty_blocks(), 0u);
}

TEST(Proxy, CascadedProxiesServeFromEitherLevel) {
  ProxyFixture f;
  // Second-level proxy between the client proxy and the server proxy.
  sim::DiskModel l2_disk(f.kernel, "l2d", sim::DiskConfig{});
  cache::ProxyDiskCache l2_cache(l2_disk, ProxyFixture::small_cache_cfg());
  ProxyConfig l2cfg;
  l2cfg.name = "l2";
  l2cfg.enable_meta = false;
  GvfsProxy l2(l2cfg, f.tunnel);
  l2.attach_block_cache(l2_cache);
  // Client stack pointed at the L2 proxy over a LAN-ish link.
  sim::Link lan_up(f.kernel, "lu", sim::LinkConfig{from_millis(0.15), 11.5 * 1_MiB, 64_KiB, 0});
  sim::Link lan_down(f.kernel, "ld", sim::LinkConfig{from_millis(0.15), 11.5 * 1_MiB, 64_KiB, 0});
  ssh::SshTunnel lan_tunnel(l2, &lan_up, &lan_down, ssh::CipherSpec{});
  sim::DiskModel c2_disk(f.kernel, "c2d", sim::DiskConfig{});
  cache::ProxyDiskCache c2_cache(c2_disk, ProxyFixture::small_cache_cfg());
  GvfsProxy c2_proxy(ProxyFixture::make_client_proxy_cfg(), lan_tunnel);
  c2_proxy.attach_block_cache(c2_cache);
  rpc::LinkChannel loop(c2_proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());

  auto content = blob::make_synthetic(12, 256_KiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", content).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    auto first = client.read_all(p, "/f");
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(blob::content_hash(**first), blob::content_hash(*content));
    // Both levels now hold the blocks.
    EXPECT_GT(c2_cache.resident_blocks(), 0u);
    EXPECT_GT(l2_cache.resident_blocks(), 0u);
    // Drop L1: re-read served by L2 at LAN speed (no WAN messages).
    c2_cache.invalidate_all();
    client.drop_caches();
    u64 wan_msgs = f.tunnel.messages();
    SimTime t0 = p.now();
    auto second = client.read_all(p, "/f");
    ASSERT_TRUE(second.is_ok());
    EXPECT_EQ(blob::content_hash(**second), blob::content_hash(*content));
    EXPECT_LE(f.tunnel.messages(), wan_msgs + 2);
    EXPECT_LT(to_seconds(p.now() - t0), 1.0);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(AsyncWriteback, SignalDrainsAsUnstableBurstsPlusOneCommit) {
  ProxyFixture f;
  // Separate client stack with the async flusher enabled.
  cache::ProxyDiskCache cache(f.client_disk, ProxyFixture::small_cache_cfg());
  ProxyConfig pcfg = ProxyFixture::make_client_proxy_cfg();
  pcfg.async_writeback = true;
  GvfsProxy proxy(pcfg, f.tunnel);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());

  auto content = blob::make_synthetic(21, 256_KiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(256_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_OK(client.mount(p, "/exports"));
    ASSERT_OK(client.write(p, "/f", 0, content));
    ASSERT_OK(client.flush(p));
    u64 commits_before = f.server.calls(nfs::Proc::kCommit);
    ASSERT_OK(proxy.signal_write_back(p));
    EXPECT_EQ(cache.dirty_blocks(), 0u);
    // 8 dirty 32 KiB blocks went up as UNSTABLE writes + exactly one COMMIT.
    EXPECT_EQ(proxy.flush_unstable_writes(), 8u);
    EXPECT_EQ(proxy.flush_commits(), 1u);
    EXPECT_EQ(f.server.calls(nfs::Proc::kCommit), commits_before + 1);
    EXPECT_EQ(proxy.pending_flush_blocks(), 0u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(blob::content_hash(**f.server_fs.get_file("/exports/f")),
            blob::content_hash(*content));
}

TEST(AsyncWriteback, EvictionEnqueuesInsteadOfBlockingAndFlusherDrains) {
  ProxyFixture f;
  // Tiny cache: sequential writes overflow it, forcing dirty evictions.
  cache::BlockCacheConfig ccfg = ProxyFixture::small_cache_cfg();
  ccfg.capacity_bytes = 256_KiB;  // 8 frames of 32 KiB
  ccfg.num_banks = 1;
  ccfg.associativity = 4;
  cache::ProxyDiskCache cache(f.client_disk, ccfg);
  ProxyConfig pcfg = ProxyFixture::make_client_proxy_cfg();
  pcfg.async_writeback = true;
  GvfsProxy proxy(pcfg, f.tunnel);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());

  auto content = blob::make_synthetic(22, 1_MiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(1_MiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_OK(client.mount(p, "/exports"));
    ASSERT_OK(client.write(p, "/f", 0, content));
    ASSERT_OK(client.flush(p));
    EXPECT_GT(proxy.flush_enqueued_blocks(), 0u);  // evictions queued, not sent
    ASSERT_OK(proxy.signal_write_back(p));
  });
  // The background flusher (spawned by the evictions) and the final signal
  // drain everything before quiescence.
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(proxy.pending_flush_blocks(), 0u);
  EXPECT_EQ(blob::content_hash(**f.server_fs.get_file("/exports/f")),
            blob::content_hash(*content));
}

TEST(AsyncWriteback, HonestCommitFlushesStagedBlocksWhenAbsorptionOff) {
  ProxyFixture f;
  cache::ProxyDiskCache cache(f.client_disk, ProxyFixture::small_cache_cfg());
  ProxyConfig pcfg = ProxyFixture::make_client_proxy_cfg();
  pcfg.absorb_commit = false;
  GvfsProxy proxy(pcfg, f.tunnel);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());

  auto content = blob::make_synthetic(23, 64_KiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_OK(client.mount(p, "/exports"));
    ASSERT_OK(client.write(p, "/f", 0, content));
    // flush() sends WRITE (absorbed dirty) + COMMIT; with absorption off the
    // COMMIT must push the staged dirty blocks upstream before forwarding.
    ASSERT_OK(client.flush(p));
    EXPECT_EQ(cache.dirty_blocks(), 0u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(blob::content_hash(**f.server_fs.get_file("/exports/f")),
            blob::content_hash(*content));
}

TEST(SingleFlight, ConcurrentSameBlockMissesShareOneUpstreamFetch) {
  ProxyFixture f;
  // Shared cache proxy with single-flight on; two downstream clients mount
  // through it and read the same file concurrently.
  cache::ProxyDiskCache cache(f.client_disk, ProxyFixture::small_cache_cfg());
  ProxyConfig pcfg = ProxyFixture::make_client_proxy_cfg();
  pcfg.enable_meta = false;
  pcfg.single_flight = true;
  GvfsProxy proxy(pcfg, f.tunnel);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop_a(proxy, nullptr, nullptr, 15 * kMicrosecond);
  rpc::LinkChannel loop_b(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client_a(loop_a, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());
  nfs::NfsClient client_b(loop_b, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());

  auto content = blob::make_synthetic(24, 512_KiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", content).is_ok());
  auto reader = [&](nfs::NfsClient& client) {
    return [&](sim::Process& p) {
      ASSERT_OK(client.mount(p, "/exports"));
      auto back = client.read_all(p, "/f");
      ASSERT_TRUE(back.is_ok());
      EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
    };
  };
  f.kernel.spawn("reader-a", reader(client_a));
  f.kernel.spawn("reader-b", reader(client_b));
  f.kernel.run();
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  // 16 blocks of 32 KiB: the server must have served each block once, not
  // once per reader.
  EXPECT_EQ(f.server.calls(nfs::Proc::kRead), 16u);
  // Every upstream fetch had exactly one lead; the other reader's request
  // either joined the in-flight fetch (wait, then served the installed
  // block as a cache hit) or arrived after it landed (plain hit).
  EXPECT_EQ(proxy.single_flight_leads(), 16u);
  EXPECT_GT(proxy.single_flight_waits(), 0u);
  EXPECT_EQ(proxy.single_flight_leads() + proxy.reads_served_from_block_cache(), 32u);
}

TEST(Prefetch, ProfilesResetOnInvalidationSoSecondColdSessionPrefetches) {
  ProxyFixture f;
  cache::ProxyDiskCache cache(f.client_disk, ProxyFixture::small_cache_cfg());
  ProxyConfig pcfg = ProxyFixture::make_client_proxy_cfg();
  pcfg.prefetch_depth = 8;
  GvfsProxy proxy(pcfg, f.tunnel);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());

  auto content = blob::make_synthetic(25, 1_MiB, 0, 2.0);
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", content).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_OK(client.mount(p, "/exports"));
    ASSERT_OK(client.read_all(p, "/f"));
    u64 first_session = proxy.blocks_prefetched();
    EXPECT_GT(first_session, 0u);
    // Cold second session: everything invalidated. A stale read-ahead window
    // would make the refill guard suppress prefetching entirely.
    ASSERT_OK(proxy.signal_flush(p));
    client.drop_caches();
    ASSERT_OK(client.read_all(p, "/f"));
    EXPECT_GT(proxy.blocks_prefetched(), first_session);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(Proxy, StatsCountersConsistent) {
  ProxyFixture f;
  ASSERT_TRUE(f.server_fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  f.run([&](sim::Process& p) {
    ASSERT_OK(f.client.read_all(p, "/f"));
    EXPECT_GT(f.client_proxy.calls_received(), 0u);
    EXPECT_GT(f.client_proxy.calls_forwarded(), 0u);
    f.client_proxy.reset_stats();
    EXPECT_EQ(f.client_proxy.calls_received(), 0u);
  });
}

// Regression for the unbounded attribute cache: the proxy remembered an
// attr entry for every file handle it ever answered, so a namespace walk
// grew attr_cache_ without limit (a proxy fronting a big image tree leaked
// an entry per file for the life of the mount). The cache is now a bounded
// LRU (attr_cache_entries); walking far more files than the bound must top
// out at the bound, evict, and still answer correctly for evicted entries.
TEST(Proxy, AttrCacheIsBoundedLruUnderNamespaceWalk) {
  ProxyFixture f;
  ProxyConfig pcfg = ProxyFixture::make_client_proxy_cfg();
  pcfg.enable_meta = false;
  pcfg.attr_cache_entries = 64;
  GvfsProxy proxy(pcfg, f.tunnel);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, ProxyFixture::make_cred(), ProxyFixture::make_client_cfg());

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        f.server_fs.put_file("/exports/img" + std::to_string(i), blob::make_zero(1_KiB))
            .is_ok());
  }
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_OK(client.mount(p, "/exports"));
    for (int i = 0; i < 300; ++i) {
      auto a = client.stat(p, "/img" + std::to_string(i));
      ASSERT_OK(a);
      EXPECT_EQ(a->size, 1_KiB);
    }
    EXPECT_LE(proxy.attr_cache_size(), 64u);
    EXPECT_GT(proxy.attr_evictions(), 0u);
    // An evicted early entry still answers correctly (re-fetched upstream).
    client.drop_caches();
    auto again = client.stat(p, "/img0");
    ASSERT_OK(again);
    EXPECT_EQ(again->size, 1_KiB);
    EXPECT_LE(proxy.attr_cache_size(), 64u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

}  // namespace
}  // namespace gvfs::proxy
