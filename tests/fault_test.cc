// Fault-injection and recovery tests (ctest label: faults): deterministic
// fault schedules, FaultyChannel drop semantics, NFS-style retransmission
// (RetryChannel), reply-xid verification, the server duplicate request
// cache, and end-to-end testbed runs under loss / partitions / crashes with
// the proxy's degraded mode.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blob/blob.h"
#include "gvfs/testbed.h"
#include "nfs/nfs_client.h"
#include "nfs/nfs_server.h"
#include "rpc/fault_channel.h"
#include "rpc/retry_channel.h"
#include "sim/faults.h"
#include "sim/kernel.h"

namespace gvfs {
namespace {

using core::Scenario;
using core::Testbed;
using core::TestbedOptions;

// ---- stub channels ----------------------------------------------------------

// Always succeeds, echoing the call's args back as the result.
struct EchoChannel final : rpc::RpcChannel {
  u64 executed = 0;
  rpc::RpcReply call(sim::Process&, const rpc::RpcCall& c) override {
    ++executed;
    return rpc::make_reply(c, c.args);
  }
};

// Times out the first `fail_first` calls, then succeeds. Records the xid of
// every attempt so tests can pin down retransmission identity.
struct FlakyChannel final : rpc::RpcChannel {
  explicit FlakyChannel(int n) : fail_first(n) {}
  int fail_first;
  std::vector<u32> xids_seen;
  rpc::RpcReply call(sim::Process&, const rpc::RpcCall& c) override {
    xids_seen.push_back(c.xid);
    if (static_cast<int>(xids_seen.size()) <= fail_first) {
      return rpc::make_error_reply(c, err(ErrCode::kTimeout, "synthetic loss"));
    }
    return rpc::make_reply(c, c.args);
  }
};

// Pipelined stub: times out every entry of the first `fail_batches` whole
// batches; single-call reissues (the retry path) always succeed. Records
// every xid transmitted either way.
struct BatchFlakyChannel final : rpc::RpcChannel {
  explicit BatchFlakyChannel(int n) : fail_batches(n) {}
  int fail_batches;
  u64 single_calls = 0;
  std::vector<u32> xids_seen;
  rpc::RpcReply call(sim::Process&, const rpc::RpcCall& c) override {
    ++single_calls;
    xids_seen.push_back(c.xid);
    return rpc::make_reply(c, c.args);
  }
  std::vector<rpc::RpcReply> call_pipelined(
      sim::Process&, const std::vector<rpc::RpcCall>& calls) override {
    std::vector<rpc::RpcReply> out;
    for (const auto& c : calls) {
      xids_seen.push_back(c.xid);
      out.push_back(fail_batches > 0
                        ? rpc::make_error_reply(c, err(ErrCode::kTimeout, "loss"))
                        : rpc::make_reply(c, c.args));
    }
    if (fail_batches > 0) --fail_batches;
    return out;
  }
};

// Passes calls through but corrupts the xid of successful replies while
// `corrupt` is set (a misbehaving server / crossed wires).
struct WrongXidChannel final : rpc::RpcChannel {
  explicit WrongXidChannel(rpc::RpcChannel& in) : inner(in) {}
  rpc::RpcChannel& inner;
  bool corrupt = true;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    rpc::RpcReply r = inner.call(p, c);
    if (corrupt && r.status.is_ok()) r.xid ^= 0x5a5a5a5a;
    return r;
  }
};

rpc::RpcCall make_call(u32 xid) {
  rpc::RpcCall c;
  c.xid = xid;
  c.prog = rpc::kNfsProgram;
  c.vers = rpc::kNfsVersion3;
  c.proc = static_cast<u32>(nfs::Proc::kGetattr);
  c.cred.uid = 1000;
  return c;
}

// ---- FaultInjector: schedule semantics --------------------------------------

TEST(FaultInjector, SameSeedSameSchedule) {
  auto draw_schedule = [](u64 seed) {
    sim::SimKernel k;
    k.seed_rng(seed);
    sim::FaultConfig cfg;
    cfg.drop_rate = 0.3;
    sim::FaultInjector inj(k, cfg);
    std::vector<bool> drops;
    for (int i = 0; i < 256; ++i) drops.push_back(inj.drop_request(i * kMillisecond));
    return drops;
  };
  auto a = draw_schedule(0xabc);
  auto b = draw_schedule(0xabc);
  EXPECT_EQ(a, b);  // identical seed -> identical fault schedule
  EXPECT_NE(a, draw_schedule(0xdef));
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjector, PartitionAndCrashWindowsAreTotal) {
  sim::SimKernel k;
  sim::FaultConfig cfg;  // drop_rate 0: only the windows can drop traffic
  cfg.partitions.push_back(sim::FaultWindow{100, 200});
  cfg.crashes.push_back(sim::FaultWindow{300, 400});
  sim::FaultInjector inj(k, cfg);

  EXPECT_FALSE(inj.drop_request(50));
  EXPECT_TRUE(inj.partitioned(150));
  EXPECT_TRUE(inj.drop_request(150));
  EXPECT_TRUE(inj.drop_reply(150));
  EXPECT_FALSE(inj.partitioned(200));  // half-open window
  EXPECT_TRUE(inj.server_down(350));
  EXPECT_TRUE(inj.drop_request(350));
  EXPECT_FALSE(inj.drop_request(400));
  EXPECT_EQ(inj.requests_dropped(), 2u);
  EXPECT_EQ(inj.replies_dropped(), 1u);
}

TEST(FaultInjector, RestartFiresOncePerCrashWindow) {
  sim::SimKernel k;
  sim::FaultConfig cfg;
  cfg.crashes.push_back(sim::FaultWindow{10, 20});
  cfg.crashes.push_back(sim::FaultWindow{50, 60});
  sim::FaultInjector inj(k, cfg);
  int reboots = 0;
  inj.set_on_restart([&] { ++reboots; });
  inj.fire_restarts_due(15);  // window still open
  EXPECT_EQ(reboots, 0);
  inj.fire_restarts_due(25);
  EXPECT_EQ(reboots, 1);
  inj.fire_restarts_due(30);  // no new window closed
  EXPECT_EQ(reboots, 1);
  inj.fire_restarts_due(100);
  EXPECT_EQ(reboots, 2);
  EXPECT_EQ(inj.restarts_fired(), 2u);
}

TEST(FaultInjector, PerServerWindowsAndRestartCallbacks) {
  sim::SimKernel k;
  sim::FaultConfig cfg;
  cfg.crashes.push_back(sim::FaultWindow{10, 20, 1});                 // origin 1 only
  cfg.crashes.push_back(sim::FaultWindow{30, 40, sim::kAllServers});  // everyone
  sim::FaultInjector inj(k, cfg);

  // The scoped crash downs only server 1; the kAllServers one downs both.
  EXPECT_TRUE(inj.server_down(15, 1));
  EXPECT_FALSE(inj.server_down(15, 0));
  EXPECT_TRUE(inj.drop_request(15, 1));
  EXPECT_FALSE(inj.drop_request(15, 0));
  EXPECT_TRUE(inj.server_down(35, 0));
  EXPECT_TRUE(inj.server_down(35, 1));

  int reboots0 = 0;
  int reboots1 = 0;
  inj.set_on_restart(0, [&] { ++reboots0; });
  inj.set_on_restart(1, [&] { ++reboots1; });
  inj.fire_restarts_due(25, 0);  // only server 1's window has closed
  inj.fire_restarts_due(25, 1);
  EXPECT_EQ(reboots0, 0);
  EXPECT_EQ(reboots1, 1);
  inj.fire_restarts_due(50, 0);  // the all-servers window reboots both
  inj.fire_restarts_due(50, 1);
  EXPECT_EQ(reboots0, 1);
  EXPECT_EQ(reboots1, 2);
  EXPECT_EQ(inj.restarts_fired(), 3u);
}

TEST(FaultInjector, LegacySingleArgRestartTargetsServerZero) {
  sim::SimKernel k;
  sim::FaultConfig cfg;
  cfg.crashes.push_back(sim::FaultWindow{10, 20});  // applies to all servers
  sim::FaultInjector inj(k, cfg);
  int reboots = 0;
  inj.set_on_restart([&] { ++reboots; });  // legacy overload: server 0
  inj.fire_restarts_due(25);               // default server id 0
  EXPECT_EQ(reboots, 1);
  inj.fire_restarts_due(25, 1);  // no callback registered for server 1
  EXPECT_EQ(reboots, 1);
}

// ---- FaultyChannel ----------------------------------------------------------

TEST(FaultyChannel, DropAccountingMatchesServerExecution) {
  // Request drops must prevent server execution; reply drops must not (that
  // asymmetry is the whole reason the DRC exists).
  sim::SimKernel k;
  k.seed_rng(42);
  sim::FaultConfig cfg;
  cfg.drop_rate = 0.4;
  sim::FaultInjector inj(k, cfg);
  EchoChannel echo;
  rpc::FaultyChannel chan(echo, inj);
  u64 timeouts = 0;
  const int kCalls = 200;
  k.run_process("t", [&](sim::Process& p) {
    for (int i = 0; i < kCalls; ++i) {
      rpc::RpcReply r = chan.call(p, make_call(static_cast<u32>(i + 1)));
      if (r.status.code() == ErrCode::kTimeout) ++timeouts;
    }
  });
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
  EXPECT_GT(inj.requests_dropped(), 0u);
  EXPECT_GT(inj.replies_dropped(), 0u);
  EXPECT_EQ(timeouts, inj.requests_dropped() + inj.replies_dropped());
  // Only request-dropped calls never reached the server.
  EXPECT_EQ(echo.executed, static_cast<u64>(kCalls) - inj.requests_dropped());
}

// ---- RetryChannel -----------------------------------------------------------

TEST(RetryChannel, RetransmitsSameXidWithExponentialBackoff) {
  sim::SimKernel k;
  FlakyChannel flaky(3);
  rpc::RetryConfig cfg;
  cfg.timeout = 100 * kMillisecond;
  cfg.backoff = 2.0;
  cfg.jitter = 0.0;
  rpc::RetryChannel retry(flaky, k, cfg);
  k.run_process("t", [&](sim::Process& p) {
    rpc::RpcReply r = retry.call(p, make_call(77));
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
    // Three RTO waits before the fourth attempt succeeds: 100+200+400 ms.
    EXPECT_EQ(p.now(), 700 * kMillisecond);
  });
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
  EXPECT_EQ(retry.retransmits(), 3u);
  EXPECT_EQ(retry.timeouts(), 3u);
  EXPECT_EQ(retry.exhausted(), 0u);
  // Every attempt reissued the SAME xid — that is what lets the server's
  // duplicate request cache recognise retransmissions.
  EXPECT_EQ(flaky.xids_seen, (std::vector<u32>{77, 77, 77, 77}));
}

TEST(RetryChannel, PipelinedRetryCountsAndWaitsOnce) {
  // Regression: call_pipelined used to sleep a full jittered RTO and then
  // delegate the reissue to call(), which waited out its own RTO as well —
  // ~2x RTO before the first retransmission, with timeouts_/retransmits_
  // double-counted. Both paths now share one retry loop that credits time
  // already elapsed since the (batch) send.
  sim::SimKernel k;
  BatchFlakyChannel flaky(1);  // the whole first batch is lost
  rpc::RetryConfig cfg;
  cfg.timeout = 100 * kMillisecond;
  cfg.backoff = 2.0;
  cfg.jitter = 0.0;
  rpc::RetryChannel retry(flaky, k, cfg);
  std::vector<rpc::RpcCall> calls{make_call(11), make_call(12)};
  k.run_process("t", [&](sim::Process& p) {
    auto replies = retry.call_pipelined(p, calls);
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_TRUE(replies[0].status.is_ok());
    EXPECT_TRUE(replies[1].status.is_ok());
    EXPECT_EQ(replies[0].xid, 11u);
    EXPECT_EQ(replies[1].xid, 12u);
    // Entry 0 waits out the single 100 ms RTO from the batch send; entry 1's
    // RTO had fully elapsed by then and its reissue goes out immediately.
    // The old double-wait would have ended at >= 300 ms.
    EXPECT_EQ(p.now(), 100 * kMillisecond);
  });
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
  // Exactly one timeout and one retransmission per lost entry.
  EXPECT_EQ(retry.timeouts(), 2u);
  EXPECT_EQ(retry.retransmits(), 2u);
  EXPECT_EQ(retry.exhausted(), 0u);
  EXPECT_EQ(flaky.single_calls, 2u);
  // Batch transmission of both xids, then one same-xid reissue each.
  EXPECT_EQ(flaky.xids_seen, (std::vector<u32>{11, 12, 11, 12}));
}

TEST(RetryChannel, FiniteBudgetSurfacesTimeout) {
  sim::SimKernel k;
  FlakyChannel flaky(1000);  // never recovers
  rpc::RetryConfig cfg;
  cfg.timeout = 50 * kMillisecond;
  cfg.jitter = 0.0;
  cfg.max_retransmits = 2;  // soft mount
  rpc::RetryChannel retry(flaky, k, cfg);
  k.run_process("t", [&](sim::Process& p) {
    rpc::RpcReply r = retry.call(p, make_call(5));
    EXPECT_EQ(r.status.code(), ErrCode::kTimeout);
  });
  EXPECT_EQ(retry.retransmits(), 2u);
  EXPECT_EQ(retry.exhausted(), 1u);
}

TEST(RetryChannel, ReplyXidMismatchRejected) {
  sim::SimKernel k;
  EchoChannel echo;
  WrongXidChannel wrong(echo);
  rpc::RetryChannel retry(wrong, k, rpc::RetryConfig{});
  k.run_process("t", [&](sim::Process& p) {
    rpc::RpcReply r = retry.call(p, make_call(9));
    EXPECT_EQ(r.status.code(), ErrCode::kBadXdr);
  });
  EXPECT_EQ(retry.xid_mismatches(), 1u);
}

TEST(RetryChannel, HardMountRidesOutPartition) {
  sim::SimKernel k;
  k.seed_rng(1);
  sim::FaultConfig fcfg;
  fcfg.partitions.push_back(sim::FaultWindow{0, 2 * kSecond});
  sim::FaultInjector inj(k, fcfg);
  EchoChannel echo;
  rpc::FaultyChannel faulty(echo, inj);
  rpc::RetryConfig rcfg;
  rcfg.timeout = 100 * kMillisecond;
  rcfg.jitter = 0.0;  // max_retransmits = 0: hard mount, retry forever
  rpc::RetryChannel retry(faulty, k, rcfg);
  k.run_process("t", [&](sim::Process& p) {
    rpc::RpcReply r = retry.call(p, make_call(3));
    EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
    EXPECT_GE(p.now(), 2 * kSecond);  // stalled until the partition healed
  });
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
  EXPECT_GT(retry.retransmits(), 0u);
  EXPECT_EQ(echo.executed, 1u);  // nothing reached the server until then
}

TEST(RetryChannel, ServerRebootFiresRestartCallback) {
  sim::SimKernel k;
  sim::FaultConfig fcfg;
  fcfg.crashes.push_back(sim::FaultWindow{0, kSecond});
  sim::FaultInjector inj(k, fcfg);
  bool rebooted = false;
  inj.set_on_restart([&] { rebooted = true; });
  EchoChannel echo;
  rpc::FaultyChannel faulty(echo, inj);
  rpc::RetryConfig rcfg;
  rcfg.timeout = 100 * kMillisecond;
  rcfg.jitter = 0.0;
  rpc::RetryChannel retry(faulty, k, rcfg);
  k.run_process("t", [&](sim::Process& p) {
    EXPECT_TRUE(retry.call(p, make_call(4)).status.is_ok());
  });
  EXPECT_TRUE(rebooted);  // first traffic after the window rebooted the server
  EXPECT_EQ(inj.restarts_fired(), 1u);
}

// ---- NfsClient: reply verification ------------------------------------------

TEST(NfsClient, XidMismatchSurfacesAsBadXdr) {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "sdisk", sim::DiskConfig{}};
  nfs::NfsServer server{kernel, fs, disk, nfs::NfsServerConfig{}};
  ASSERT_TRUE(server.add_export("/exports").is_ok());
  ASSERT_TRUE(fs.put_file("/exports/f", blob::make_synthetic(3, 64_KiB, 0, 2.0)).is_ok());
  rpc::LinkChannel loop{server, nullptr, nullptr, 10 * kMicrosecond};
  WrongXidChannel wrong(loop);
  wrong.corrupt = false;  // behave while mounting
  rpc::Credential cred;
  cred.uid = 1000;
  nfs::NfsClient client(wrong, cred, nfs::NfsClientConfig{});
  kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    wrong.corrupt = true;
    auto r = client.read(p, "/f", 0, 4_KiB);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrCode::kBadXdr);
  });
  EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  EXPECT_GE(client.xid_mismatches(), 1u);
}

// ---- NfsServer: duplicate request cache -------------------------------------

struct DrcFixture {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  nfs::NfsServer server;

  explicit DrcFixture(nfs::NfsServerConfig cfg = {}) : server{kernel, fs, disk, cfg} {
    EXPECT_TRUE(server.add_export("/exports").is_ok());
  }

  rpc::RpcCall remove_call(u32 xid, const std::string& name) {
    auto args = std::make_shared<nfs::RemoveArgs>();
    args->dir = server.root_fh("/exports");
    args->name = name;
    rpc::RpcCall c = make_call(xid);
    c.proc = static_cast<u32>(nfs::Proc::kRemove);
    c.args = std::move(args);
    return c;
  }

  rpc::RpcCall write_call(u32 xid, const nfs::Fh& fh, u64 offset) {
    auto args = std::make_shared<nfs::WriteArgs>();
    args->fh = fh;
    args->offset = offset;
    args->count = 32_KiB;
    args->stable = nfs::StableHow::kFileSync;
    args->data = blob::make_synthetic(9, 32_KiB, 0, 2.0);
    rpc::RpcCall c = make_call(xid);
    c.proc = static_cast<u32>(nfs::Proc::kWrite);
    c.args = std::move(args);
    return c;
  }
};

TEST(NfsServerDrc, DuplicateRemoveServedFromCache) {
  DrcFixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/victim", blob::make_zero(4_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto first = f.server.handle(p, f.remove_call(100, "victim"));
    ASSERT_TRUE(first.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(first.result)->status, nfs::NfsStat::kOk);

    // Retransmission (same xid): the cached kOk reply, not a re-execution —
    // the FS state is exactly as if the op ran once.
    auto dup = f.server.handle(p, f.remove_call(100, "victim"));
    ASSERT_TRUE(dup.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(dup.result)->status, nfs::NfsStat::kOk);
    EXPECT_EQ(f.server.drc_hits(), 1u);

    // A genuinely new request (fresh xid) does re-execute and sees kNoEnt.
    auto fresh = f.server.handle(p, f.remove_call(101, "victim"));
    ASSERT_TRUE(fresh.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(fresh.result)->status, nfs::NfsStat::kNoEnt);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsServerDrc, DuplicateWriteExecutesOnce) {
  DrcFixture f;
  auto id = f.fs.put_file("/exports/f", blob::make_zero(0));
  ASSERT_TRUE(id.is_ok());
  nfs::Fh fh = f.server.fh_of(*id);
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto first = f.server.handle(p, f.write_call(200, fh, 0));
    ASSERT_TRUE(first.status.is_ok());
    u64 ops_after_first = f.disk.ops();
    u64 bytes_after_first = f.disk.bytes_moved();

    auto dup = f.server.handle(p, f.write_call(200, fh, 0));
    ASSERT_TRUE(dup.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::WriteRes>(dup.result)->status, nfs::NfsStat::kOk);
    EXPECT_EQ(f.server.drc_hits(), 1u);
    // Applied once: the duplicate moved no further disk bytes.
    EXPECT_EQ(f.disk.ops(), ops_after_first);
    EXPECT_EQ(f.disk.bytes_moved(), bytes_after_first);

    // Same payload under a new xid is a new request: it executes.
    auto fresh = f.server.handle(p, f.write_call(201, fh, 0));
    ASSERT_TRUE(fresh.status.is_ok());
    EXPECT_GT(f.disk.ops(), ops_after_first);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsServerDrc, IdempotentOpsBypassCache) {
  DrcFixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/f", blob::make_zero(4_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    for (int i = 0; i < 2; ++i) {
      auto args = std::make_shared<nfs::GetattrArgs>();
      args->fh = f.server.root_fh("/exports");
      rpc::RpcCall c = make_call(300);  // same xid both times
      c.args = std::move(args);
      EXPECT_TRUE(f.server.handle(p, c).status.is_ok());
    }
  });
  EXPECT_EQ(f.server.drc_hits(), 0u);
  EXPECT_EQ(f.server.drc_inserts(), 0u);
}

TEST(NfsServerDrc, HashCollisionNeverReplaysWrongReply) {
  // Regression: the DRC used to trust the 64-bit hash key alone, so a
  // collision between two live transactions silently replayed the wrong
  // client's reply. Entries now carry the full (machine, uid, prog, proc,
  // xid) tuple; shrinking the key to 0 bits forces every transaction into
  // one bucket, the worst case.
  nfs::NfsServerConfig cfg;
  cfg.drc_key_bits = 0;
  DrcFixture f(cfg);
  ASSERT_TRUE(f.fs.put_file("/exports/victim1", blob::make_zero(4_KiB)).is_ok());
  ASSERT_TRUE(f.fs.put_file("/exports/victim2", blob::make_zero(4_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto first = f.server.handle(p, f.remove_call(100, "victim1"));
    ASSERT_TRUE(first.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(first.result)->status, nfs::NfsStat::kOk);
    EXPECT_EQ(f.server.drc_inserts(), 1u);

    // A different transaction landing in the same bucket must execute its
    // own REMOVE, not receive victim1's cached reply.
    auto other = f.server.handle(p, f.remove_call(200, "victim2"));
    ASSERT_TRUE(other.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(other.result)->status, nfs::NfsStat::kOk);
    EXPECT_FALSE(f.fs.resolve("/exports/victim2").is_ok());  // really executed
    EXPECT_EQ(f.server.drc_collisions(), 1u);
    EXPECT_EQ(f.server.drc_hits(), 0u);

    // The resident entry was not evicted by the collision: its owner's
    // retransmission still replays from the cache.
    auto dup = f.server.handle(p, f.remove_call(100, "victim1"));
    ASSERT_TRUE(dup.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(dup.result)->status, nfs::NfsStat::kOk);
    EXPECT_EQ(f.server.drc_hits(), 1u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsServerDrc, RetransmittedRemoveReplaysAfterStateChange) {
  // RFC 1813 §4: error replies to non-idempotent procedures are cached and
  // replayed too. A REMOVE that found nothing answers kNoEnt; if the name is
  // created before the retransmission arrives, the duplicate must replay the
  // original kNoEnt — re-executing would remove the new file.
  DrcFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto first = f.server.handle(p, f.remove_call(500, "ghost"));
    ASSERT_TRUE(first.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(first.result)->status,
              nfs::NfsStat::kNoEnt);
    EXPECT_EQ(f.server.drc_inserts(), 1u);

    // Server-side state changes between transmission and retransmission.
    ASSERT_TRUE(f.fs.put_file("/exports/ghost", blob::make_zero(4_KiB)).is_ok());

    auto dup = f.server.handle(p, f.remove_call(500, "ghost"));
    ASSERT_TRUE(dup.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(dup.result)->status,
              nfs::NfsStat::kNoEnt);
    EXPECT_EQ(f.server.drc_hits(), 1u);
    EXPECT_TRUE(f.fs.resolve("/exports/ghost").is_ok());  // not re-executed
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsServerDrc, TransportErrorReplyIsCachedAndReplayed) {
  // A non-idempotent call that fails at the RPC layer (here: undecodable
  // args -> kBadXdr, a reply with no result body) is still a completed
  // transaction; its retransmission replays the cached error instead of
  // dispatching again.
  DrcFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    rpc::RpcCall bad = make_call(600);
    bad.proc = static_cast<u32>(nfs::Proc::kRemove);
    bad.args = std::make_shared<nfs::GetattrArgs>();  // wrong type for REMOVE
    auto first = f.server.handle(p, bad);
    EXPECT_FALSE(first.status.is_ok());
    EXPECT_EQ(f.server.drc_inserts(), 1u);

    auto dup = f.server.handle(p, bad);
    EXPECT_EQ(dup.status.code(), first.status.code());
    EXPECT_EQ(f.server.drc_hits(), 1u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsServerDrc, CrashClearsCacheSoDuplicateReExecutes) {
  DrcFixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/victim", blob::make_zero(4_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(f.server.handle(p, f.remove_call(400, "victim")).status.is_ok());
    // Reboot: the DRC is volatile state and does not survive.
    f.server.clear_drc();
    auto dup = f.server.handle(p, f.remove_call(400, "victim"));
    ASSERT_TRUE(dup.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(dup.result)->status, nfs::NfsStat::kNoEnt);
  });
  EXPECT_EQ(f.server.drc_hits(), 0u);
}

// Regression for the fixed-size DRC: a burst of non-idempotent transactions
// wider than the cache FIFO-evicts the oldest entries, so a delayed
// retransmission of an evicted REMOVE re-executes and answers a spurious
// kNoEnt. At the historical hard-wired 256 entries a multi-node boot storm
// overflows easily. First pin the failure at that capacity, then show the
// now-configurable knob retains replay across the identical burst.
TEST(NfsServerDrc, BurstWiderThanCacheLosesReplayAtDefaultCapacity) {
  DrcFixture f;  // default drc_entries = 256
  ASSERT_TRUE(f.fs.put_file("/exports/victim", blob::make_zero(4_KiB)).is_ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        f.fs.put_file("/exports/n" + std::to_string(i), blob::make_zero(1_KiB)).is_ok());
  }
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto first = f.server.handle(p, f.remove_call(500, "victim"));
    ASSERT_TRUE(first.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(first.result)->status, nfs::NfsStat::kOk);
    // 300 further removes from the rest of the fleet push xid 500 out.
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          f.server.handle(p, f.remove_call(600 + i, "n" + std::to_string(i))).status.is_ok());
    }
    EXPECT_EQ(f.server.drc_size(), 256u);
    // The delayed retransmission re-executes — the wrong answer this PR's
    // capacity scaling exists to prevent.
    auto dup = f.server.handle(p, f.remove_call(500, "victim"));
    ASSERT_TRUE(dup.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(dup.result)->status, nfs::NfsStat::kNoEnt);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(f.server.drc_hits(), 0u);
}

TEST(NfsServerDrc, ScaledCapacityRetainsReplayAcrossTheSameBurst) {
  nfs::NfsServerConfig cfg;
  cfg.drc_entries = 512;  // what the testbed provisions for 16 clients
  DrcFixture f(cfg);
  ASSERT_TRUE(f.fs.put_file("/exports/victim", blob::make_zero(4_KiB)).is_ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        f.fs.put_file("/exports/n" + std::to_string(i), blob::make_zero(1_KiB)).is_ok());
  }
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(f.server.handle(p, f.remove_call(500, "victim")).status.is_ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          f.server.handle(p, f.remove_call(600 + i, "n" + std::to_string(i))).status.is_ok());
    }
    auto dup = f.server.handle(p, f.remove_call(500, "victim"));
    ASSERT_TRUE(dup.status.is_ok());
    EXPECT_EQ(rpc::message_cast<nfs::RemoveRes>(dup.result)->status, nfs::NfsStat::kOk);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(f.server.drc_hits(), 1u);
}

TEST(NfsServerDrc, TestbedScalesCapacityWithClientCount) {
  {
    TestbedOptions opt;
    opt.scenario = Scenario::kWanCached;
    opt.generate_image_meta = false;
    opt.compute_nodes = 16;
    Testbed bed(opt);
    EXPECT_EQ(bed.server()->drc_capacity(), 512u);  // 32 slots per client
  }
  {
    TestbedOptions opt;
    opt.scenario = Scenario::kWanCached;
    opt.generate_image_meta = false;
    Testbed bed(opt);  // single client keeps the historical floor
    EXPECT_EQ(bed.server()->drc_capacity(), 256u);
  }
}

// ---- end-to-end: testbed under faults ---------------------------------------

struct E2eResult {
  u64 hash = 0;
  SimTime end_time = 0;
  u64 retransmits = 0;
  int failed = 0;
};

E2eResult run_lossy_read(double drop_rate) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;  // keep transfers on the faultable RPC path
  opt.enable_fault_injection = true;
  opt.fault.drop_rate = drop_rate;
  Testbed bed(opt);
  blob::BlobRef content = blob::make_synthetic(21, 2_MiB, 0.3, 2.0);
  EXPECT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());
  E2eResult out;
  bed.kernel().run_process("reader", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto data = bed.image_session().read_all(p, "/img");
    ASSERT_TRUE(data.is_ok()) << data.status().to_string();
    out.hash = blob::content_hash(**data);
    out.end_time = p.now();
  });
  out.failed = bed.kernel().failed_processes();
  EXPECT_EQ(out.failed, 0) << bed.kernel().failed_names_joined();
  if (auto* retry = bed.retry_channel()) out.retransmits = retry->retransmits();
  EXPECT_EQ(out.hash, blob::content_hash(*content));  // integrity despite loss
  return out;
}

TEST(FaultE2E, LossyWanReadDeliversIdenticalContent) {
  E2eResult clean = run_lossy_read(0.0);
  E2eResult lossy = run_lossy_read(0.05);
  EXPECT_EQ(clean.hash, lossy.hash);
  EXPECT_EQ(clean.retransmits, 0u);
  EXPECT_GT(lossy.retransmits, 0u);
  // Recovery costs virtual time: RTO waits push the lossy run later.
  EXPECT_GT(lossy.end_time, clean.end_time);
}

TEST(FaultE2E, SameSeedGivesIdenticalTimeline) {
  E2eResult a = run_lossy_read(0.05);
  E2eResult b = run_lossy_read(0.05);
  EXPECT_EQ(a.end_time, b.end_time);  // to the nanosecond
  EXPECT_EQ(a.retransmits, b.retransmits);
}

TEST(FaultE2E, DegradedProxyServesCacheAndReplaysWrites) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.enable_fault_injection = true;
  opt.degraded_proxy = true;
  opt.fault.partitions.push_back(sim::FaultWindow{30 * kSecond, 90 * kSecond});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;  // soft mount: kTimeout reaches the proxy
  Testbed bed(opt);
  blob::BlobRef content = blob::make_synthetic(22, 1_MiB, 0.2, 2.0);
  ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());
  blob::BlobRef patch = blob::make_synthetic(23, 64_KiB, 0.0, 1.0);

  bed.kernel().run_process("session", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    // Warm the proxy cache before the partition opens.
    auto warm = bed.image_session().read_all(p, "/img");
    ASSERT_TRUE(warm.is_ok());
    ASSERT_LT(p.now(), 30 * kSecond) << "warm phase overran into the partition";

    // Inside the partition: reads come from the proxy cache.
    p.delay_until(40 * kSecond);
    bed.nfs_client()->drop_caches();  // force reads down to the proxy
    auto data = bed.image_session().read_all(p, "/img");
    ASSERT_TRUE(data.is_ok()) << data.status().to_string();
    EXPECT_EQ(blob::content_hash(**data), blob::content_hash(*content));
    EXPECT_TRUE(bed.client_proxy()->upstream_down());

    // A write during the partition is acknowledged and queued.
    ASSERT_TRUE(bed.image_session().write(p, "/img", 0, patch).is_ok());
    ASSERT_TRUE(bed.nfs_client()->flush(p).is_ok());
    EXPECT_GT(bed.client_proxy()->queued_writebacks(), 0u);

    // Heal, reconnect, and verify the queued write-backs reached the server.
    p.delay_until(100 * kSecond);
    ASSERT_TRUE(bed.client_proxy()->signal_reconnect(p).is_ok());
    bed.nfs_client()->drop_caches();
    bed.block_cache()->invalidate_all();
    auto back = bed.image_session().read(p, "/img", 0, 64_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*patch));
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  const auto* proxy = bed.client_proxy();
  EXPECT_GT(proxy->degraded_reads(), 0u);
  EXPECT_EQ(proxy->queued_writebacks(), proxy->replayed_writebacks());
  EXPECT_EQ(proxy->pending_writebacks(), 0u);
  EXPECT_FALSE(proxy->upstream_down());
  EXPECT_GT(proxy->outage_time(), 0);
  EXPECT_GT(proxy->last_recovery_time(), 0);
}

TEST(FaultE2E, NonAlignedDegradedWriteStaysReadable) {
  // A degraded write queues its raw downstream offset; 12 KiB is page-aligned
  // for the kernel client but NOT 32 KiB-block-aligned for the proxy, so an
  // exact-offset match would make the queued data invisible to reads.
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.enable_fault_injection = true;
  opt.degraded_proxy = true;
  opt.fault.partitions.push_back(sim::FaultWindow{30 * kSecond, 90 * kSecond});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;
  Testbed bed(opt);
  blob::BlobRef content = blob::make_synthetic(31, 1_MiB, 0.2, 2.0);
  ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());
  blob::BlobRef patch = blob::make_synthetic(32, 8_KiB, 0.0, 1.0);

  bed.kernel().run_process("session", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto warm = bed.image_session().read_all(p, "/img");
    ASSERT_TRUE(warm.is_ok());
    ASSERT_LT(p.now(), 30 * kSecond);

    p.delay_until(40 * kSecond);
    ASSERT_TRUE(bed.image_session().write(p, "/img", 12_KiB, patch).is_ok());
    ASSERT_TRUE(bed.nfs_client()->flush(p).is_ok());
    EXPECT_TRUE(bed.client_proxy()->upstream_down());
    EXPECT_GT(bed.client_proxy()->queued_writebacks(), 0u);

    // Read-your-writes through the degraded proxy: the queued 12 KiB-offset
    // write must be served by byte-range overlap with block 0.
    bed.nfs_client()->drop_caches();
    auto back = bed.image_session().read(p, "/img", 12_KiB, 8_KiB);
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*patch));

    // Heal and verify the patch reached the server at its raw offset.
    p.delay_until(100 * kSecond);
    ASSERT_TRUE(bed.client_proxy()->signal_reconnect(p).is_ok());
    bed.nfs_client()->drop_caches();
    bed.block_cache()->invalidate_all();
    auto healed = bed.image_session().read(p, "/img", 12_KiB, 8_KiB);
    ASSERT_TRUE(healed.is_ok());
    EXPECT_EQ(blob::content_hash(**healed), blob::content_hash(*patch));
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_EQ(bed.client_proxy()->pending_writebacks(), 0u);
}

TEST(FaultE2E, RepeatedDegradedWritesCoalesceInQueue) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.enable_fault_injection = true;
  opt.degraded_proxy = true;
  opt.fault.partitions.push_back(sim::FaultWindow{30 * kSecond, 120 * kSecond});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;
  Testbed bed(opt);
  blob::BlobRef content = blob::make_synthetic(33, 256_KiB, 0.2, 2.0);
  ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());
  blob::BlobRef last_patch;

  bed.kernel().run_process("session", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    ASSERT_TRUE(bed.image_session().read_all(p, "/img").is_ok());
    ASSERT_LT(p.now(), 30 * kSecond);

    // Three writes to the same (fh, offset) during the outage: one queue
    // entry, coalesced in place, newest data winning.
    p.delay_until(40 * kSecond);
    for (u64 i = 0; i < 3; ++i) {
      last_patch = blob::make_synthetic(40 + i, 32_KiB, 0.0, 1.0);
      ASSERT_TRUE(bed.image_session().write(p, "/img", 0, last_patch).is_ok());
      ASSERT_TRUE(bed.nfs_client()->flush(p).is_ok());
    }
    EXPECT_EQ(bed.client_proxy()->queued_writebacks(), 1u);
    EXPECT_EQ(bed.client_proxy()->coalesced_writebacks(), 2u);
    EXPECT_EQ(bed.client_proxy()->pending_writebacks(), 1u);

    // Replay sends exactly one (coalesced) write, carrying the newest data.
    p.delay_until(130 * kSecond);
    ASSERT_TRUE(bed.client_proxy()->signal_reconnect(p).is_ok());
    bed.nfs_client()->drop_caches();
    bed.block_cache()->invalidate_all();
    auto back = bed.image_session().read(p, "/img", 0, 32_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*last_patch));
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_EQ(bed.client_proxy()->replayed_writebacks(), 1u);
  EXPECT_EQ(bed.client_proxy()->pending_writebacks(), 0u);
}

TEST(FaultE2E, OverlappingDegradedWritesKeepNewestBytes) {
  // Three overlapping unaligned writes during an outage: A covers block 0,
  // B overlaps A's middle at a different offset (separate queue entry), then
  // A2 rewrites A's offset (coalesced in place at A's ORIGINAL index, but
  // stamped newer than B). Both the degraded read assembly and the replay
  // order must honour write recency — not queue position, which would put
  // B's stale bytes over A2.
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.enable_fault_injection = true;
  opt.degraded_proxy = true;
  opt.fault.partitions.push_back(sim::FaultWindow{30 * kSecond, 120 * kSecond});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;
  Testbed bed(opt);
  blob::BlobRef content = blob::make_synthetic(60, 256_KiB, 0.2, 2.0);
  ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());
  blob::BlobRef a = blob::make_synthetic(61, 32_KiB, 0.0, 1.0);
  blob::BlobRef b = blob::make_synthetic(62, 8_KiB, 0.0, 1.0);
  blob::BlobRef a2 = blob::make_synthetic(63, 32_KiB, 0.0, 1.0);

  bed.kernel().run_process("session", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    ASSERT_TRUE(bed.image_session().read_all(p, "/img").is_ok());
    ASSERT_LT(p.now(), 30 * kSecond);

    p.delay_until(40 * kSecond);
    ASSERT_TRUE(bed.image_session().write(p, "/img", 0, a).is_ok());
    ASSERT_TRUE(bed.nfs_client()->flush(p).is_ok());
    ASSERT_TRUE(bed.image_session().write(p, "/img", 12_KiB, b).is_ok());
    ASSERT_TRUE(bed.nfs_client()->flush(p).is_ok());
    ASSERT_TRUE(bed.image_session().write(p, "/img", 0, a2).is_ok());
    ASSERT_TRUE(bed.nfs_client()->flush(p).is_ok());
    EXPECT_EQ(bed.client_proxy()->queued_writebacks(), 2u);
    EXPECT_EQ(bed.client_proxy()->coalesced_writebacks(), 1u);

    // Degraded read of B's range: A2 is newer than B everywhere they
    // overlap, so the assembly must return A2's bytes.
    bed.nfs_client()->drop_caches();
    auto back = bed.image_session().read(p, "/img", 12_KiB, 8_KiB);
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    blob::SliceBlob want(a2, 12_KiB, 8_KiB);
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(want));

    // Replay must land B before A2 (oldest first) so the server converges
    // on A2 across the whole block.
    p.delay_until(130 * kSecond);
    ASSERT_TRUE(bed.client_proxy()->signal_reconnect(p).is_ok());
    bed.nfs_client()->drop_caches();
    bed.block_cache()->invalidate_all();
    auto healed = bed.image_session().read(p, "/img", 0, 32_KiB);
    ASSERT_TRUE(healed.is_ok());
    EXPECT_EQ(blob::content_hash(**healed), blob::content_hash(*a2));
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_EQ(bed.client_proxy()->replayed_writebacks(), 2u);
  EXPECT_EQ(bed.client_proxy()->pending_writebacks(), 0u);
}

// ---- write-back parking & verifier protocol (stub-channel stacks) -----------

// Fails WRITE calls while armed: the first failure is a kTimeout (opens the
// outage), later ones surface a different transport error (kClosed) — the
// shape retries produce mid-outage.
struct WriteFailChannel final : rpc::RpcChannel {
  explicit WriteFailChannel(rpc::RpcChannel& in) : inner(in) {}
  rpc::RpcChannel& inner;
  int fails_left = 0;
  bool first = true;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    if (fails_left > 0 && c.proc == static_cast<u32>(nfs::Proc::kWrite)) {
      --fails_left;
      ErrCode code = first ? ErrCode::kTimeout : ErrCode::kClosed;
      first = false;
      return rpc::make_error_reply(c, err(code, "synthetic outage"));
    }
    return inner.call(p, c);
  }
};

// Simulates a server reboot between a flush's UNSTABLE WRITEs and its COMMIT
// by rolling the write verifier just before the first COMMIT lands.
struct RebootBeforeCommitChannel final : rpc::RpcChannel {
  RebootBeforeCommitChannel(rpc::RpcChannel& in, nfs::NfsServer& srv)
      : inner(in), server(srv) {}
  rpc::RpcChannel& inner;
  nfs::NfsServer& server;
  bool armed = true;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    if (armed && c.proc == static_cast<u32>(nfs::Proc::kCommit)) {
      armed = false;
      server.roll_write_verifier();
    }
    return inner.call(p, c);
  }
};

struct MiniProxyStack {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel server_disk{kernel, "sd", sim::DiskConfig{}};
  nfs::NfsServer server{kernel, fs, server_disk, nfs::NfsServerConfig{}};
  rpc::LinkChannel link{server, nullptr, nullptr, 10 * kMicrosecond};
  sim::DiskModel client_disk{kernel, "cd", sim::DiskConfig{}};

  static cache::BlockCacheConfig cache_cfg() {
    cache::BlockCacheConfig cfg;
    cfg.capacity_bytes = 8_MiB;
    cfg.block_size = 32_KiB;
    cfg.num_banks = 4;
    cfg.associativity = 8;
    return cfg;
  }
  static rpc::Credential cred() {
    rpc::Credential c;
    c.uid = 1234;
    c.gid = 1234;
    return c;
  }
  static nfs::NfsClientConfig client_cfg() {
    nfs::NfsClientConfig cfg;
    cfg.rsize = cfg.wsize = 32_KiB;
    return cfg;
  }

  MiniProxyStack() { EXPECT_TRUE(server.add_export("/exports").is_ok()); }
};

TEST(WritebackParking, EvictionParksOnAnyTransportErrorWhileDegraded) {
  MiniProxyStack f;
  WriteFailChannel flaky(f.link);
  cache::ProxyDiskCache cache(f.client_disk, MiniProxyStack::cache_cfg());
  proxy::ProxyConfig pcfg;
  pcfg.name = "degraded-proxy";
  pcfg.enable_meta = false;
  pcfg.degraded_mode = true;
  proxy::GvfsProxy proxy(pcfg, flaky);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());

  auto content = blob::make_synthetic(50, 64_KiB, 0, 2.0);
  ASSERT_TRUE(f.fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    ASSERT_TRUE(client.write(p, "/f", 0, content).is_ok());
    ASSERT_TRUE(client.flush(p).is_ok());
    EXPECT_EQ(cache.dirty_blocks(), 2u);
    // Both write-backs fail: kTimeout opens the outage, kClosed follows.
    // Both blocks must end up parked in the replay queue, not lost.
    flaky.fails_left = 2;
    ASSERT_TRUE(proxy.signal_write_back(p).is_ok());
    EXPECT_TRUE(proxy.upstream_down());
    EXPECT_EQ(proxy.queued_writebacks(), 2u);
    EXPECT_EQ(proxy.pending_writebacks(), 2u);
    // Heal: replay drains the queue with FILE_SYNC writes.
    ASSERT_TRUE(proxy.signal_reconnect(p).is_ok());
    EXPECT_EQ(proxy.replayed_writebacks(), 2u);
    EXPECT_EQ(proxy.pending_writebacks(), 0u);
    EXPECT_FALSE(proxy.upstream_down());
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(blob::content_hash(**f.fs.get_file("/exports/f")),
            blob::content_hash(*content));
}

TEST(WritebackVerifier, RebootBetweenWritesAndCommitTriggersResend) {
  MiniProxyStack f;
  RebootBeforeCommitChannel reboot(f.link, f.server);
  cache::ProxyDiskCache cache(f.client_disk, MiniProxyStack::cache_cfg());
  proxy::ProxyConfig pcfg;
  pcfg.name = "async-proxy";
  pcfg.enable_meta = false;
  pcfg.async_writeback = true;
  proxy::GvfsProxy proxy(pcfg, reboot);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());

  auto content = blob::make_synthetic(51, 256_KiB, 0, 2.0);
  ASSERT_TRUE(f.fs.put_file("/exports/f", blob::make_zero(256_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    ASSERT_TRUE(client.write(p, "/f", 0, content).is_ok());
    ASSERT_TRUE(client.flush(p).is_ok());
    ASSERT_TRUE(proxy.signal_write_back(p).is_ok());
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  // The COMMIT's verifier mismatched the 8 UNSTABLE WRITEs' verifier, so the
  // whole file was re-sent and committed a second time.
  EXPECT_EQ(proxy.flush_verifier_resends(), 1u);
  EXPECT_EQ(proxy.flush_unstable_writes(), 16u);
  EXPECT_EQ(proxy.flush_commits(), 2u);
  EXPECT_EQ(proxy.pending_flush_blocks(), 0u);
  EXPECT_EQ(blob::content_hash(**f.fs.get_file("/exports/f")),
            blob::content_hash(*content));
}

// Delays UNSTABLE WRITEs so a background flush stays in flight while the
// reader keeps going — the window in which a prefetch burst could re-fetch a
// flush-queued dirty block from the server and insert the stale bytes as
// clean (reads consult the cache before the flush queue).
struct SlowUnstableWriteChannel final : rpc::RpcChannel {
  explicit SlowUnstableWriteChannel(rpc::RpcChannel& in) : inner(in) {}
  rpc::RpcChannel& inner;
  SimDuration stall = 0;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    if (stall > 0 && c.proc == static_cast<u32>(nfs::Proc::kWrite)) {
      auto a = rpc::message_cast<nfs::WriteArgs>(c.args);
      if (a && a->stable == nfs::StableHow::kUnstable) p.delay(stall);
    }
    return inner.call(p, c);
  }
};

TEST(WritebackDrain, PrefetchDoesNotResurrectFlushQueuedBlock) {
  MiniProxyStack f;
  SlowUnstableWriteChannel slow(f.link);
  cache::BlockCacheConfig ccfg = MiniProxyStack::cache_cfg();
  ccfg.capacity_bytes = 128_KiB;  // 4 frames: reads evict the dirty block
  ccfg.num_banks = 1;
  ccfg.associativity = 4;
  cache::ProxyDiskCache cache(f.client_disk, ccfg);
  proxy::ProxyConfig pcfg;
  pcfg.name = "async-proxy";
  pcfg.enable_meta = false;
  pcfg.async_writeback = true;
  pcfg.prefetch_depth = 4;
  pcfg.prefetch_trigger = 2;
  proxy::GvfsProxy proxy(pcfg, slow);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());

  blob::BlobRef base = blob::make_synthetic(70, 416_KiB, 0, 2.0);  // 13 blocks
  blob::BlobRef patch = blob::make_synthetic(71, 32_KiB, 0, 1.0);
  ASSERT_TRUE(f.fs.put_file("/exports/f", base).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    // Dirty block 5 in the proxy cache.
    ASSERT_TRUE(client.write(p, "/f", 5 * 32_KiB, patch).is_ok());
    ASSERT_TRUE(client.flush(p).is_ok());
    EXPECT_EQ(cache.dirty_blocks(), 1u);
    // Evict it with non-sequential read pressure (no prefetch triggers):
    // block 5 lands in the flush queue, and the slow channel pins the
    // flusher's UNSTABLE burst in flight for a long sim while.
    slow.stall = 500 * kMillisecond;
    for (u64 b : {8u, 0u, 9u, 1u}) {
      ASSERT_TRUE(client.read(p, "/f", b * 32_KiB, 32_KiB).is_ok());
    }
    client.drop_caches();
    // Sequential reads trigger a read-ahead burst spanning block 5 while its
    // newest bytes sit in the in-flight flush. The burst must skip it: the
    // server's copy is stale until the flush lands.
    for (u64 b : {2u, 3u, 4u}) {
      ASSERT_TRUE(client.read(p, "/f", b * 32_KiB, 32_KiB).is_ok());
    }
    auto got = client.read(p, "/f", 5 * 32_KiB, 32_KiB);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(blob::content_hash(**got), blob::content_hash(*patch));
    EXPECT_GT(proxy.blocks_prefetched(), 0u);
    EXPECT_GE(proxy.flush_queue_reads(), 1u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(proxy.pending_flush_blocks(), 0u);
  // The flush landed after the reads: the patch reached the server.
  blob::SliceBlob srv(*f.fs.get_file("/exports/f"), 5 * 32_KiB, 32_KiB);
  EXPECT_EQ(blob::content_hash(srv), blob::content_hash(*patch));
}

// Fails WRITEs while armed (kTimeout first, then kClosed), and can slow down
// the next WRITE that passes through — pinning a replay RPC in flight while
// other frames mutate the proxy's parked-write queue.
struct OutageThenSlowWriteChannel final : rpc::RpcChannel {
  explicit OutageThenSlowWriteChannel(rpc::RpcChannel& in) : inner(in) {}
  rpc::RpcChannel& inner;
  int fails_left = 0;
  bool first = true;
  SimDuration slow_next_write = 0;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    if (c.proc == static_cast<u32>(nfs::Proc::kWrite)) {
      if (fails_left > 0) {
        --fails_left;
        ErrCode code = first ? ErrCode::kTimeout : ErrCode::kClosed;
        first = false;
        return rpc::make_error_reply(c, err(code, "synthetic outage"));
      }
      if (slow_next_write > 0) {
        SimDuration d = slow_next_write;
        slow_next_write = 0;
        p.delay(d);
      }
    }
    return inner.call(p, c);
  }
};

TEST(WritebackParking, ReplaySurvivesConcurrentSupersede) {
  MiniProxyStack f;
  OutageThenSlowWriteChannel ch(f.link);
  cache::ProxyDiskCache cache(f.client_disk, MiniProxyStack::cache_cfg());
  proxy::ProxyConfig pcfg;
  pcfg.name = "degraded-proxy";
  pcfg.enable_meta = false;
  pcfg.degraded_mode = true;
  proxy::GvfsProxy proxy(pcfg, ch);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());
  nfs::NfsClient client2(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());

  blob::BlobRef content = blob::make_synthetic(55, 64_KiB, 0, 2.0);
  blob::BlobRef fresh = blob::make_synthetic(56, 64_KiB, 0, 1.0);
  ASSERT_TRUE(f.fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    ASSERT_TRUE(client.write(p, "/f", 0, content).is_ok());
    ASSERT_TRUE(client.flush(p).is_ok());
    ch.fails_left = 2;
    ASSERT_TRUE(proxy.signal_write_back(p).is_ok());
    EXPECT_TRUE(proxy.upstream_down());
    EXPECT_EQ(proxy.pending_writebacks(), 2u);

    // While the replay's first FILE_SYNC WRITE is pinned in flight, a second
    // session rewrites the whole file and forces it upstream: the write-back
    // supersedes BOTH parked entries mid-replay. The replay's progress
    // tracking must survive the queue shrinking under it — index-based
    // progress would erase past the end of the emptied queue.
    ch.slow_next_write = 5 * kMillisecond;
    (void)p.kernel().spawn("writer2", [&](sim::Process& q) {
      ASSERT_TRUE(client2.mount(q, "/exports").is_ok());
      ASSERT_TRUE(client2.write(q, "/f", 0, fresh).is_ok());
      ASSERT_TRUE(client2.flush(q).is_ok());
      ASSERT_TRUE(proxy.signal_write_back(q).is_ok());
    }, kMillisecond);
    ASSERT_TRUE(proxy.signal_reconnect(p).is_ok());
    EXPECT_FALSE(proxy.upstream_down());
    EXPECT_EQ(proxy.pending_writebacks(), 0u);
    // Only the pinned in-flight write replayed; the superseded entries were
    // dropped (their bytes went upstream fresher via the second session).
    EXPECT_EQ(proxy.replayed_writebacks(), 1u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_EQ(proxy.coalesced_writebacks(), 2u);
}

// Stalls upstream COMMITs, with separate stalls for the background flusher
// and for inline (foreground) drains, so two flush_file_ frames for
// different files can be pinned in flight simultaneously and complete in
// non-LIFO order.
struct StallCommitChannel final : rpc::RpcChannel {
  explicit StallCommitChannel(rpc::RpcChannel& in) : inner(in) {}
  rpc::RpcChannel& inner;
  SimDuration flusher_stall = 0;
  SimDuration inline_stall = 0;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    if (c.proc == static_cast<u32>(nfs::Proc::kCommit)) {
      bool from_flusher = p.name().find("flusher") != std::string::npos;
      SimDuration d = from_flusher ? flusher_stall : inline_stall;
      if (d > 0) p.delay(d);
    }
    return inner.call(p, c);
  }
};

TEST(WritebackDrain, ConcurrentDrainCompletionKeepsInFlightDataVisible) {
  MiniProxyStack f;
  StallCommitChannel ch(f.link);
  cache::BlockCacheConfig ccfg = MiniProxyStack::cache_cfg();
  ccfg.capacity_bytes = 32_KiB;  // one frame: every insert evicts the last
  ccfg.num_banks = 1;
  ccfg.associativity = 1;
  cache::ProxyDiskCache cache(f.client_disk, ccfg);
  proxy::ProxyConfig pcfg;
  pcfg.name = "async-proxy";
  pcfg.enable_meta = false;
  pcfg.async_writeback = true;
  proxy::GvfsProxy proxy(pcfg, ch);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());
  nfs::NfsClient reader(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());

  blob::BlobRef a_data = blob::make_synthetic(80, 32_KiB, 0, 1.0);
  blob::BlobRef b_data = blob::make_synthetic(81, 32_KiB, 0, 1.0);
  ASSERT_TRUE(f.fs.put_file("/exports/a", blob::make_zero(32_KiB)).is_ok());
  ASSERT_TRUE(f.fs.put_file("/exports/b", blob::make_zero(32_KiB)).is_ok());
  ASSERT_TRUE(f.fs.put_file("/exports/c", blob::make_zero(32_KiB)).is_ok());

  // Mid-stall probe: /b's bytes sit in an extracted in-flight drain whose
  // COMMIT is pinned for tens of sim-milliseconds. Once /c's read evicts
  // /b's clean cache copy, a read of /b must be served from that in-flight
  // drain — if the earlier-finishing /a drain removed the wrong draining_
  // entry, /b's data would be invisible and the read would fetch the
  // not-yet-committed server copy without touching flush_queue_reads.
  (void)f.kernel.spawn("probe", [&](sim::Process& q) {
    ASSERT_TRUE(reader.mount(q, "/exports").is_ok());
    ASSERT_TRUE(reader.read(q, "/c", 0, 32_KiB).is_ok());
    auto got = reader.read(q, "/b", 0, 32_KiB);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(blob::content_hash(**got), blob::content_hash(*b_data));
  }, 20 * kMillisecond);

  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    ch.flusher_stall = 5 * kMillisecond;
    ch.inline_stall = 50 * kMillisecond;
    // Dirty /a's block, then evict it with /b's write: /a enters the flush
    // queue and the background flusher starts draining it.
    ASSERT_TRUE(client.write(p, "/a", 0, a_data).is_ok());
    ASSERT_TRUE(client.flush(p).is_ok());
    ASSERT_TRUE(client.write(p, "/b", 0, b_data).is_ok());
    ASSERT_TRUE(client.flush(p).is_ok());
    p.delay(kMillisecond);  // flusher extracts /a and hits its COMMIT stall
    // Inline drain of /b overlaps the flusher's pinned /a drain and outlives
    // it by ~45 ms: when /a's frame finishes first (non-LIFO), it must
    // remove its own draining_ entry, not /b's.
    ASSERT_TRUE(proxy.signal_write_back(p).is_ok());
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_GT(proxy.flush_queue_reads(), 0u);
  EXPECT_EQ(proxy.pending_flush_blocks(), 0u);
  EXPECT_EQ(blob::content_hash(**f.fs.get_file("/exports/b")),
            blob::content_hash(*b_data));
}

// Flips every upstream call to kTimeout while `down` — a partition the
// RetryChannel has already given up on, as the proxy sees it.
struct ToggleOutageChannel final : rpc::RpcChannel {
  explicit ToggleOutageChannel(rpc::RpcChannel& in) : inner(in) {}
  rpc::RpcChannel& inner;
  bool down = false;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    if (down) return rpc::make_error_reply(c, err(ErrCode::kTimeout, "partitioned"));
    return inner.call(p, c);
  }
};

// Regression for degraded attr staleness: attrs served from the cache while
// the upstream is down used to linger until their TTL lapsed — with a long
// TTL, a remote truncate during the outage stayed invisible long after the
// link healed. signal_reconnect must now re-probe every attr it answered
// stale and drop frames past the new EOF. The 600 s TTL here is the point:
// natural expiry cannot rescue the old behaviour inside this test.
TEST(FaultE2E, ReconnectRevalidatesAttrsServedStaleDuringOutage) {
  MiniProxyStack f;
  ToggleOutageChannel toggle(f.link);
  cache::ProxyDiskCache cache(f.client_disk, MiniProxyStack::cache_cfg());
  proxy::ProxyConfig pcfg;
  pcfg.name = "degraded-proxy";
  pcfg.enable_meta = false;
  pcfg.degraded_mode = true;
  pcfg.attr_ttl = 600 * kSecond;
  proxy::GvfsProxy proxy(pcfg, toggle);
  proxy.attach_block_cache(cache);
  rpc::LinkChannel loop(proxy, nullptr, nullptr, 15 * kMicrosecond);
  nfs::NfsClient client(loop, MiniProxyStack::cred(), MiniProxyStack::client_cfg());

  auto id = f.fs.put_file("/exports/f", blob::make_synthetic(51, 64_KiB, 0, 2.0));
  ASSERT_TRUE(id.is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    auto warm = client.stat(p, "/f");
    ASSERT_TRUE(warm.is_ok());
    EXPECT_EQ(warm->size, 64_KiB);
    ASSERT_TRUE(client.read(p, "/f", 0, 64_KiB).is_ok());

    toggle.down = true;
    client.drop_caches();
    auto stale = client.stat(p, "/f");  // served from the proxy attr cache
    ASSERT_TRUE(stale.is_ok());
    EXPECT_EQ(stale->size, 64_KiB);
    EXPECT_TRUE(proxy.upstream_down());

    // Another writer truncates the file at the origin, mid-outage.
    vfs::SetAttr sa;
    sa.set_size = true;
    sa.size = 16_KiB;
    ASSERT_TRUE(f.fs.setattr(*id, sa).is_ok());

    toggle.down = false;
    ASSERT_TRUE(proxy.signal_reconnect(p).is_ok());
    client.drop_caches();
    auto fresh = client.stat(p, "/f");
    ASSERT_TRUE(fresh.is_ok());
    EXPECT_EQ(fresh->size, 16_KiB);  // pre-fix: 64 KiB until the TTL ran out
    auto data = client.read_all(p, "/f");
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ((*data)->size(), 16_KiB);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_GE(proxy.attr_revalidations(), 1u);
}

TEST(FaultE2E, CloneWorkloadSurvivesServerCrash) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.enable_fault_injection = true;
  opt.fault.drop_rate = 0.01;
  opt.fault.crashes.push_back(sim::FaultWindow{kSecond, 6 * kSecond});
  Testbed bed(opt);
  blob::BlobRef content = blob::make_synthetic(24, 2_MiB, 0.3, 2.0);
  ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());
  u64 hash = 0;
  bed.kernel().run_process("reader", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto data = bed.image_session().read_all(p, "/img");
    ASSERT_TRUE(data.is_ok()) << data.status().to_string();
    hash = blob::content_hash(**data);
    EXPECT_GE(p.now(), 6 * kSecond);  // rode out the crash window
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_EQ(hash, blob::content_hash(*content));
  ASSERT_NE(bed.fault_injector(), nullptr);
  EXPECT_EQ(bed.fault_injector()->restarts_fired(), 1u);
}

}  // namespace
}  // namespace gvfs
