// Server-side NFS tests: write stability semantics and disk accounting,
// nfsd concurrency limits, READDIR pagination, export handling, and RPC
// error paths — behaviours the client-focused tests don't pin down.
#include <gtest/gtest.h>

#include "test_util.h"

#include "blob/blob.h"
#include "nfs/nfs_server.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace gvfs::nfs {
namespace {

struct ServerFixture {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  NfsServerConfig cfg;
  std::unique_ptr<NfsServer> server;

  explicit ServerFixture(NfsServerConfig c = {}) : cfg(c) {
    server = std::make_unique<NfsServer>(kernel, fs, disk, cfg);
    EXPECT_TRUE(server->add_export("/exports").is_ok());
  }

  Fh root() { return server->root_fh("/exports"); }

  u32 next_xid = 1;

  // Each call gets a fresh xid, as a real client would issue; reusing an xid
  // now means "retransmission" to the server's duplicate request cache.
  rpc::RpcCall call(Proc proc, rpc::MessagePtr args) {
    rpc::RpcCall c;
    c.xid = next_xid++;
    c.prog = rpc::kNfsProgram;
    c.vers = rpc::kNfsVersion3;
    c.proc = static_cast<u32>(proc);
    c.cred.uid = 1000;
    c.args = std::move(args);
    return c;
  }

  template <typename Res>
  std::shared_ptr<const Res> invoke(sim::Process& p, Proc proc, rpc::MessagePtr args) {
    rpc::RpcReply reply = server->handle(p, call(proc, args));
    EXPECT_TRUE(reply.status.is_ok()) << reply.status.to_string();
    auto res = rpc::message_cast<Res>(reply.result);
    EXPECT_NE(res, nullptr);
    return res;
  }
};

TEST(NfsServer, RootFhValidOnlyForExports) {
  ServerFixture f;
  EXPECT_TRUE(f.root().valid());
  EXPECT_FALSE(f.server->root_fh("/other").valid());
}

TEST(NfsServer, MountUnknownPathReturnsNoEnt) {
  ServerFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto args = std::make_shared<MountArgs>();
    args->dirpath = "/nope";
    rpc::RpcCall c = f.call(static_cast<Proc>(1), args);
    c.prog = rpc::kMountProgram;
    c.vers = rpc::kMountVersion3;
    rpc::RpcReply reply = f.server->handle(p, c);
    ASSERT_TRUE(reply.status.is_ok());
    auto res = rpc::message_cast<MountRes>(reply.result);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->status, NfsStat::kNoEnt);
  });
}

TEST(NfsServer, UnstableWritesDeferDiskUntilCommit) {
  ServerFixture f;
  auto id = f.fs.put_file("/exports/f", blob::make_zero(0));
  ASSERT_TRUE(id.is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    u64 ops_before = f.disk.ops();
    for (int i = 0; i < 8; ++i) {
      auto args = std::make_shared<WriteArgs>();
      args->fh = f.server->fh_of(*id);
      args->offset = static_cast<u64>(i) * 32_KiB;
      args->count = 32_KiB;
      args->stable = StableHow::kUnstable;
      args->data = blob::make_zero(32_KiB);
      auto res = f.invoke<WriteRes>(p, Proc::kWrite, args);
      EXPECT_EQ(res->status, NfsStat::kOk);
      EXPECT_EQ(res->committed, StableHow::kUnstable);
    }
    EXPECT_EQ(f.disk.ops(), ops_before);  // nothing hit the disk yet
    auto cargs = std::make_shared<CommitArgs>();
    cargs->fh = f.server->fh_of(*id);
    auto cres = f.invoke<CommitRes>(p, Proc::kCommit, cargs);
    EXPECT_EQ(cres->status, NfsStat::kOk);
    EXPECT_GT(f.disk.ops(), ops_before);  // commit flushed 256 KiB
    EXPECT_GE(f.disk.bytes_moved(), 256_KiB);
  });
}

TEST(NfsServer, FileSyncWritesHitDiskImmediately) {
  ServerFixture f;
  auto id = f.fs.put_file("/exports/f", blob::make_zero(0));
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto args = std::make_shared<WriteArgs>();
    args->fh = f.server->fh_of(*id);
    args->count = 32_KiB;
    args->stable = StableHow::kFileSync;
    args->data = blob::make_zero(32_KiB);
    u64 ops_before = f.disk.ops();
    auto res = f.invoke<WriteRes>(p, Proc::kWrite, args);
    EXPECT_EQ(res->committed, StableHow::kFileSync);
    EXPECT_GT(f.disk.ops(), ops_before);
  });
}

TEST(NfsServer, WriteCountClampedToMaxIo) {
  NfsServerConfig cfg;
  cfg.max_io = 8_KiB;
  ServerFixture f(cfg);
  auto id = f.fs.put_file("/exports/f", blob::make_zero(0));
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto args = std::make_shared<WriteArgs>();
    args->fh = f.server->fh_of(*id);
    args->count = 32_KiB;
    args->stable = StableHow::kUnstable;
    args->data = blob::make_zero(32_KiB);
    auto res = f.invoke<WriteRes>(p, Proc::kWrite, args);
    EXPECT_EQ(res->count, 8_KiB);
  });
}

TEST(NfsServer, ReadBeyondEofReturnsZeroCountEof) {
  ServerFixture f;
  auto id = f.fs.put_file("/exports/f", blob::make_zero(10));
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto args = std::make_shared<ReadArgs>();
    args->fh = f.server->fh_of(*id);
    args->offset = 100;
    args->count = 4_KiB;
    auto res = f.invoke<ReadRes>(p, Proc::kRead, args);
    EXPECT_EQ(res->status, NfsStat::kOk);
    EXPECT_EQ(res->count, 0u);
    EXPECT_TRUE(res->eof);
  });
}

TEST(NfsServer, ReadOfDirectoryIsIsDir) {
  ServerFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto args = std::make_shared<ReadArgs>();
    args->fh = f.root();
    args->count = 4_KiB;
    auto res = f.invoke<ReadRes>(p, Proc::kRead, args);
    EXPECT_EQ(res->status, NfsStat::kIsDir);
  });
}

TEST(NfsServer, StaleHandleSurfacesInResult) {
  ServerFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto args = std::make_shared<GetattrArgs>();
    args->fh = Fh{1, 424242};
    auto res = f.invoke<GetattrRes>(p, Proc::kGetattr, args);
    EXPECT_EQ(res->status, NfsStat::kStale);
  });
}

TEST(NfsServer, BadArgsTypeRejected) {
  ServerFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    // READ args handed to WRITE: message_cast fails -> BADXDR error reply.
    auto args = std::make_shared<ReadArgs>();
    args->fh = f.root();
    rpc::RpcReply reply = f.server->handle(p, f.call(Proc::kWrite, args));
    EXPECT_FALSE(reply.status.is_ok());
    EXPECT_EQ(reply.status.code(), ErrCode::kBadXdr);
  });
}

TEST(NfsServer, UnknownProcRejected) {
  ServerFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    rpc::RpcCall c = f.call(static_cast<Proc>(11), nullptr);  // MKNOD unimpl.
    rpc::RpcReply reply = f.server->handle(p, c);
    EXPECT_EQ(reply.status.code(), ErrCode::kRpcMismatch);
  });
}

TEST(NfsServer, ReaddirPaginates) {
  ServerFixture f;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        f.fs.put_file("/exports/file_with_a_long_name_" + std::to_string(i),
                      blob::make_zero(1))
            .is_ok());
  }
  f.kernel.run_process("t", [&](sim::Process& p) {
    u64 cookie = 0;
    std::size_t total = 0;
    int pages = 0;
    while (true) {
      auto args = std::make_shared<ReaddirArgs>();
      args->dir = f.root();
      args->cookie = cookie;
      args->max_count = 2048;
      auto res = f.invoke<ReaddirRes>(p, Proc::kReaddir, args);
      ASSERT_EQ(res->status, NfsStat::kOk);
      total += res->entries.size();
      ++pages;
      if (res->eof) break;
      ASSERT_FALSE(res->entries.empty());
      cookie = res->entries.back().cookie;
      ASSERT_LT(pages, 100);  // termination guard
    }
    EXPECT_EQ(total, 200u);
    EXPECT_GT(pages, 1);  // actually paginated
  });
}

TEST(NfsServer, NfsdThreadsBoundConcurrency) {
  NfsServerConfig cfg;
  cfg.nfsd_threads = 2;
  cfg.per_op_cpu = 10 * kMillisecond;
  ServerFixture f(cfg);
  auto id = f.fs.put_file("/exports/f", blob::make_zero(4_KiB));
  SimTime end = 0;
  for (int i = 0; i < 6; ++i) {
    f.kernel.spawn("c" + std::to_string(i), [&](sim::Process& p) {
      auto args = std::make_shared<GetattrArgs>();
      args->fh = f.server->fh_of(*id);
      f.server->handle(p, f.call(Proc::kGetattr, args));
      end = std::max(end, p.now());
    });
  }
  f.kernel.run();
  // 6 calls of >=10ms CPU on 2 service threads: at least 3 serial rounds.
  EXPECT_GE(end, 30 * kMillisecond);
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsServer, ServerPageCacheAbsorbsRereads) {
  ServerFixture f;
  auto id = f.fs.put_file("/exports/big", blob::make_synthetic(1, 1_MiB, 0, 2.0));
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto read_all = [&] {
      for (u64 off = 0; off < 1_MiB; off += 32_KiB) {
        auto args = std::make_shared<ReadArgs>();
        args->fh = f.server->fh_of(*id);
        args->offset = off;
        args->count = 32_KiB;
        f.invoke<ReadRes>(p, Proc::kRead, args);
      }
    };
    read_all();
    u64 disk_ops = f.disk.ops();
    read_all();
    EXPECT_EQ(f.disk.ops(), disk_ops);  // second pass from the page cache
    f.server->drop_caches();
    read_all();
    EXPECT_GT(f.disk.ops(), disk_ops);
  });
}

TEST(NfsServer, FsstatReportsInodes) {
  ServerFixture f;
  ASSERT_OK(f.fs.put_file("/exports/a", blob::make_zero(1)));
  f.kernel.run_process("t", [&](sim::Process& p) {
    auto res = f.invoke<FsstatRes>(p, Proc::kFsstat, nullptr);
    EXPECT_EQ(res->status, NfsStat::kOk);
    EXPECT_GT(res->total_files, 1u);
    EXPECT_GT(res->total_bytes, res->free_bytes);
  });
}

TEST(NfsServer, TruncateChargesMetadataWrite) {
  ServerFixture f;
  auto id = f.fs.put_file("/exports/f", blob::make_zero(1_MiB));
  f.kernel.run_process("t", [&](sim::Process& p) {
    u64 ops = f.disk.ops();
    auto args = std::make_shared<SetattrArgs>();
    args->fh = f.server->fh_of(*id);
    args->sattr.sa.set_size = true;
    args->sattr.sa.size = 0;
    auto res = f.invoke<SetattrRes>(p, Proc::kSetattr, args);
    EXPECT_EQ(res->status, NfsStat::kOk);
    EXPECT_GT(f.disk.ops(), ops);
  });
  EXPECT_EQ((*f.fs.get_file("/exports/f"))->size(), 0u);
}

}  // namespace
}  // namespace gvfs::nfs
