// SSH transport model tests: tunnel establishment, framing and flow-pacing
// costs, SCP transfers (single and parallel-stream), and the gzip model.
#include <gtest/gtest.h>

#include "rpc/rpc.h"
#include "sim/kernel.h"
#include "ssh/ssh.h"

namespace gvfs::ssh {
namespace {

struct Echo final : rpc::RpcHandler {
  rpc::RpcReply handle(sim::Process&, const rpc::RpcCall& call) override {
    ++calls;
    return rpc::make_reply(call, nullptr);
  }
  int calls = 0;
};

struct TunnelFixture {
  sim::SimKernel kernel;
  sim::Link up{kernel, "up", sim::LinkConfig{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0}};
  sim::Link down{kernel, "down",
                 sim::LinkConfig{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0}};
  Echo echo;
};

TEST(SshTunnel, LazyEstablishmentChargesOnce) {
  TunnelFixture f;
  CipherSpec spec;
  spec.setup_time = 400 * kMillisecond;
  SshTunnel tunnel(f.echo, &f.up, &f.down, spec);
  EXPECT_FALSE(tunnel.established());
  f.kernel.run_process("t", [&](sim::Process& p) {
    rpc::RpcCall call;
    tunnel.call(p, call);
    EXPECT_TRUE(tunnel.established());
    SimTime after_first = p.now();
    EXPECT_GE(after_first, spec.setup_time);
    tunnel.call(p, call);
    // Second call pays no setup: just ~1 RTT + framing.
    EXPECT_LT(p.now() - after_first, from_millis(45));
  });
  EXPECT_EQ(f.echo.calls, 2);
  EXPECT_EQ(tunnel.messages(), 2u);  // one per RPC round trip
}

TEST(SshTunnel, ExplicitEstablish) {
  TunnelFixture f;
  SshTunnel tunnel(f.echo, &f.up, &f.down);
  f.kernel.run_process("t", [&](sim::Process& p) {
    tunnel.establish(p);
    EXPECT_TRUE(tunnel.established());
    tunnel.establish(p);  // idempotent
  });
}

TEST(SshTunnel, FramingCountsBytes) {
  TunnelFixture f;
  CipherSpec spec;
  spec.setup_time = 0;
  spec.frame_overhead = 48;
  SshTunnel tunnel(f.echo, &f.up, &f.down, spec);
  f.kernel.run_process("t", [&](sim::Process& p) {
    rpc::RpcCall call;
    tunnel.call(p, call);
  });
  // Tunneled bytes = wire sizes + 48 framing per message.
  EXPECT_GT(tunnel.bytes_tunneled(), 96u);
}

TEST(SshTunnel, PipelinedBatchPaysOneRtt) {
  TunnelFixture f;
  CipherSpec spec;
  spec.setup_time = 0;
  SshTunnel tunnel(f.echo, &f.up, &f.down, spec);
  f.kernel.run_process("t", [&](sim::Process& p) {
    std::vector<rpc::RpcCall> calls(10);
    SimTime t0 = p.now();
    tunnel.call_pipelined(p, calls);
    // Serial would be >= 10 * 40 ms; pipelined is ~1 RTT + serialization.
    EXPECT_LT(p.now() - t0, from_millis(100));
  });
  EXPECT_EQ(f.echo.calls, 10);
}

TEST(Scp, SingleFlowPacedBelowLink) {
  sim::SimKernel kernel;
  sim::Link wan(kernel, "wan", sim::LinkConfig{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0});
  CipherSpec spec;
  spec.per_flow_bps = 2.0 * 1_MiB;
  spec.setup_time = 0;
  Scp scp(wan, spec);
  kernel.run_process("t", [&](sim::Process& p) {
    scp.transfer(p, 20_MiB);
    // ~20 MiB at ~1.7 MB/s effective (flow + link serially) ~= 11.7 s.
    EXPECT_GT(to_seconds(p.now()), 9.0);
    EXPECT_LT(to_seconds(p.now()), 14.0);
  });
  EXPECT_EQ(scp.transfers(), 1u);
  EXPECT_EQ(scp.bytes_moved(), 20_MiB);
}

TEST(Scp, ParallelStreamsApproachLinkCapacity) {
  sim::SimKernel kernel;
  sim::Link wan(kernel, "wan", sim::LinkConfig{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0});
  CipherSpec spec;
  spec.per_flow_bps = 2.0 * 1_MiB;
  spec.setup_time = 0;
  double t1 = 0, t8 = 0;
  {
    Scp scp(wan, spec, 1);
    kernel.run_process("s1", [&](sim::Process& p) {
      SimTime t0 = p.now();
      scp.transfer(p, 24_MiB);
      t1 = to_seconds(p.now() - t0);
    });
  }
  {
    Scp scp(wan, spec, 8);
    kernel.run_process("s8", [&](sim::Process& p) {
      SimTime t0 = p.now();
      scp.transfer(p, 24_MiB);
      t8 = to_seconds(p.now() - t0);
    });
  }
  // 8 flows: pacing 16 MB/s > link 12 MB/s => link-bound (~2 s), vs ~14 s.
  EXPECT_LT(t8 * 3, t1);
  EXPECT_GT(t8, 24.0 / 13.0);  // can't beat the link
}

TEST(Scp, ConcurrentTransfersShareTheLink) {
  sim::SimKernel kernel;
  sim::Link wan(kernel, "wan", sim::LinkConfig{0, 4.0 * 1_MiB, 64_KiB, 0});
  CipherSpec spec;
  spec.per_flow_bps = 4.0 * 1_MiB;  // flow not the bottleneck
  spec.setup_time = 0;
  Scp a(wan, spec), b(wan, spec);
  SimTime end_a = 0, end_b = 0;
  kernel.spawn("a", [&](sim::Process& p) {
    a.transfer(p, 8_MiB);
    end_a = p.now();
  });
  kernel.spawn("b", [&](sim::Process& p) {
    b.transfer(p, 8_MiB);
    end_b = p.now();
  });
  kernel.run();
  // Two 8 MiB flows over a 4 MiB/s pipe: both finish near 4 s (fair share),
  // not one at 2 s and one at 4 s.
  EXPECT_GT(to_seconds(end_a), 3.4);
  EXPECT_GT(to_seconds(end_b), 3.4);
}

TEST(Gzip, CostsScaleWithBytes) {
  sim::SimKernel kernel;
  GzipModel gz;
  kernel.run_process("t", [&](sim::Process& p) {
    SimTime t0 = p.now();
    gz.compress(p, nullptr, 10_MiB);
    SimTime compress = p.now() - t0;
    t0 = p.now();
    gz.inflate(p, nullptr, 10_MiB);
    SimTime inflate = p.now() - t0;
    EXPECT_GT(compress, inflate);  // compression is the slow direction
    EXPECT_NEAR(to_seconds(compress), 1.0, 0.05);  // 10 MiB at 10 MiB/s
  });
}

TEST(Gzip, CpuPoolSerializesJobs) {
  sim::SimKernel kernel;
  sim::CpuPool cpu(kernel, 1);
  GzipModel gz;
  SimTime end = 0;
  for (int i = 0; i < 3; ++i) {
    kernel.spawn("j", [&](sim::Process& p) {
      gz.compress(p, &cpu, 10_MiB);
      end = std::max(end, p.now());
    });
  }
  kernel.run();
  EXPECT_NEAR(to_seconds(end), 3.0, 0.1);  // 3 jobs, 1 CPU
}

}  // namespace
}  // namespace gvfs::ssh
