// ONC RPC layer tests: credential codec, message wire sizing, dispatcher
// routing, and channel timing across simulated links.
#include <gtest/gtest.h>

#include "rpc/rpc.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "xdr/xdr.h"

namespace gvfs::rpc {
namespace {

// Minimal message with a declared body size.
struct Ping final : Message {
  explicit Ping(u64 n) : n_(n) {}
  [[nodiscard]] u64 wire_size() const override { return n_; }
  void encode(xdr::XdrEncoder& enc) const override {
    for (u64 i = 0; i < n_ / 4; ++i) enc.put_u32(0);
  }
  u64 n_;
};

class Echo final : public RpcHandler {
 public:
  RpcReply handle(sim::Process&, const RpcCall& call) override {
    last_cred = call.cred;
    ++calls;
    return make_reply(call, call.args);
  }
  Credential last_cred;
  int calls = 0;
};

TEST(Credential, RoundTrip) {
  Credential c;
  c.stamp = 77;
  c.machine = "compute-1";
  c.uid = 1000;
  c.gid = 1000;
  c.gids = {100, 200};
  xdr::XdrEncoder enc;
  c.encode(enc);
  EXPECT_EQ(enc.size(), c.wire_size());
  xdr::XdrDecoder dec(enc.bytes());
  auto back = Credential::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, c);
}

TEST(Credential, AuthNoneRoundTrip) {
  Credential c;
  c.flavor = AuthFlavor::kNone;
  xdr::XdrEncoder enc;
  c.encode(enc);
  EXPECT_EQ(enc.size(), c.wire_size());
  xdr::XdrDecoder dec(enc.bytes());
  auto back = Credential::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->flavor, AuthFlavor::kNone);
}

TEST(Credential, TooManyGroupsRejected) {
  Credential c;
  c.gids.assign(32, 1);
  xdr::XdrEncoder enc;
  c.encode(enc);
  xdr::XdrDecoder dec(enc.bytes());
  EXPECT_FALSE(Credential::decode(dec).is_ok());
}

TEST(RpcCall, WireSizeIncludesHeaderCredAndBody) {
  RpcCall call;
  call.args = std::make_shared<Ping>(100);
  u64 size = call.wire_size();
  // record mark + 6 header words + cred + body.
  EXPECT_EQ(size, kRecordMarkBytes + 24 + call.cred.wire_size() + 100);
}

TEST(RpcReply, WireSize) {
  RpcReply r;
  r.result = std::make_shared<Ping>(64);
  // xid + msg_type + reply_stat (12) + verifier (8) + accept_stat (4).
  EXPECT_EQ(r.wire_size(), kRecordMarkBytes + 24 + 64);
}

TEST(LinkChannel, LoopbackChargesOnlyCpu) {
  sim::SimKernel k;
  Echo echo;
  LinkChannel ch(echo, nullptr, nullptr, from_millis(1));
  k.run_process("p", [&](sim::Process& p) {
    RpcCall call;
    call.args = std::make_shared<Ping>(1000);
    RpcReply reply = ch.call(p, call);
    EXPECT_TRUE(reply.status.is_ok());
    EXPECT_EQ(p.now(), from_millis(1));
  });
  EXPECT_EQ(ch.calls(), 1u);
  EXPECT_EQ(echo.calls, 1);
}

TEST(LinkChannel, ChargesBothDirections) {
  sim::SimKernel k;
  Echo echo;
  sim::Link up(k, "up", sim::LinkConfig{from_millis(10), static_cast<double>(1_MiB), 64_KiB, 0});
  sim::Link down(k, "down", sim::LinkConfig{from_millis(10), static_cast<double>(1_MiB), 64_KiB, 0});
  LinkChannel ch(echo, &up, &down, 0);
  k.run_process("p", [&](sim::Process& p) {
    RpcCall call;
    call.args = std::make_shared<Ping>(0);
    ch.call(p, call);
    // Two propagation delays plus small serialization.
    EXPECT_GE(p.now(), 2 * from_millis(10));
    EXPECT_LT(p.now(), 2 * from_millis(10) + from_millis(5));
  });
  EXPECT_GT(up.bytes_sent(), 0u);
  EXPECT_GT(down.bytes_sent(), 0u);
}

TEST(LinkChannel, PipelinedPaysLatencyOnce) {
  sim::SimKernel k;
  Echo echo;
  sim::Link up(k, "up", sim::LinkConfig{from_millis(20), 1e9, 64_KiB, 0});
  sim::Link down(k, "down", sim::LinkConfig{from_millis(20), 1e9, 64_KiB, 0});
  LinkChannel ch(echo, &up, &down, 0);
  k.run_process("p", [&](sim::Process& p) {
    std::vector<RpcCall> calls(8);
    for (auto& c : calls) c.args = std::make_shared<Ping>(64);
    auto replies = ch.call_pipelined(p, calls);
    EXPECT_EQ(replies.size(), 8u);
    // Serial would be 8 * 40 ms = 320 ms; pipelined ~= 40 ms.
    EXPECT_LT(p.now(), from_millis(60));
  });
}

TEST(Dispatcher, RoutesByProgramAndVersion) {
  sim::SimKernel k;
  Echo nfs_handler, mount_handler;
  RpcDispatcher dispatcher;
  dispatcher.register_program(kNfsProgram, kNfsVersion3, &nfs_handler);
  dispatcher.register_program(kMountProgram, kMountVersion3, &mount_handler);
  k.run_process("p", [&](sim::Process& p) {
    RpcCall call;
    call.prog = kNfsProgram;
    call.vers = kNfsVersion3;
    EXPECT_TRUE(dispatcher.handle(p, call).status.is_ok());
    call.prog = kMountProgram;
    call.vers = kMountVersion3;
    EXPECT_TRUE(dispatcher.handle(p, call).status.is_ok());
    call.prog = 999;
    EXPECT_EQ(dispatcher.handle(p, call).status.code(), ErrCode::kRpcMismatch);
  });
  EXPECT_EQ(nfs_handler.calls, 1);
  EXPECT_EQ(mount_handler.calls, 1);
}

TEST(Reply, ErrorReplyHasNoResult) {
  RpcCall call;
  call.xid = 55;
  RpcReply r = make_error_reply(call, err(ErrCode::kAuthError));
  EXPECT_EQ(r.xid, 55u);
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_EQ(r.result, nullptr);
}

TEST(MessageCast, DowncastsAndRejects) {
  MessagePtr m = std::make_shared<Ping>(4);
  EXPECT_NE(message_cast<Ping>(m), nullptr);
  struct Other final : Message {
    u64 wire_size() const override { return 0; }
    void encode(xdr::XdrEncoder&) const override {}
  };
  MessagePtr o = std::make_shared<Other>();
  EXPECT_EQ(message_cast<Ping>(o), nullptr);
}

}  // namespace
}  // namespace gvfs::rpc
