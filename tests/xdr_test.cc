// XDR codec tests: round trips, big-endian layout, 4-byte padding, and
// malformed-input handling.
#include <gtest/gtest.h>

#include "xdr/xdr.h"

namespace gvfs::xdr {
namespace {

TEST(Xdr, U32BigEndian) {
  XdrEncoder enc;
  enc.put_u32(0x01020304);
  auto bytes = enc.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[3], 0x04);
}

TEST(Xdr, U64RoundTrip) {
  XdrEncoder enc;
  enc.put_u64(0x0102030405060708ULL);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, I32Negative) {
  XdrEncoder enc;
  enc.put_i32(-42);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_i32(), -42);
}

TEST(Xdr, BoolRoundTrip) {
  XdrEncoder enc;
  enc.put_bool(true);
  enc.put_bool(false);
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_TRUE(dec.ok());
}

TEST(Xdr, OpaquePadsToFour) {
  XdrEncoder enc;
  std::vector<u8> data{1, 2, 3, 4, 5};
  enc.put_opaque(data);
  EXPECT_EQ(enc.size(), 4u + 8u);  // length + 5 bytes padded to 8
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_opaque(), data);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, OpaqueFixedRoundTrip) {
  XdrEncoder enc;
  std::vector<u8> data{9, 8, 7};
  enc.put_opaque_fixed(data);
  EXPECT_EQ(enc.size(), 4u);  // padded
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_opaque_fixed(3), data);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, StringRoundTrip) {
  XdrEncoder enc;
  enc.put_string("hello gvfs");
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "hello gvfs");
}

TEST(Xdr, EmptyStringAndOpaque) {
  XdrEncoder enc;
  enc.put_string("");
  enc.put_opaque({});
  EXPECT_EQ(enc.size(), 8u);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_TRUE(dec.get_opaque().empty());
  EXPECT_TRUE(dec.ok());
}

TEST(Xdr, MixedSequence) {
  XdrEncoder enc;
  enc.put_u32(7);
  enc.put_string("abc");
  enc.put_u64(1_GiB);
  enc.put_bool(true);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 7u);
  EXPECT_EQ(dec.get_string(), "abc");
  EXPECT_EQ(dec.get_u64(), 1_GiB);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, ShortBufferSetsFailBit) {
  std::vector<u8> two{0, 1};
  XdrDecoder dec(two);
  EXPECT_EQ(dec.get_u32(), 0u);
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), ErrCode::kBadXdr);
}

TEST(Xdr, FailBitSticky) {
  XdrEncoder enc;
  enc.put_u32(5);
  XdrDecoder dec(enc.bytes());
  dec.get_u64();  // overruns
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.get_u32(), 0u);  // still failed, returns default
  EXPECT_FALSE(dec.ok());
}

TEST(Xdr, OpaqueLengthBeyondBufferFails) {
  XdrEncoder enc;
  enc.put_u32(1000);  // claims 1000 bytes follow
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_opaque().empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Xdr, SizeHelpersMatchEncoder) {
  XdrEncoder enc;
  enc.put_u32(1);
  EXPECT_EQ(enc.size(), size_u32());
  XdrEncoder enc2;
  enc2.put_string("hello");
  EXPECT_EQ(enc2.size(), size_string(5));
  XdrEncoder enc3;
  enc3.put_opaque(std::vector<u8>(7));
  EXPECT_EQ(enc3.size(), size_opaque(7));
  EXPECT_EQ(pad4(5), 8u);
  EXPECT_EQ(pad4(8), 8u);
}

TEST(Xdr, RemainingTracksPosition) {
  XdrEncoder enc;
  enc.put_u32(1);
  enc.put_u32(2);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.remaining(), 8u);
  dec.get_u32();
  EXPECT_EQ(dec.remaining(), 4u);
  EXPECT_FALSE(dec.fully_consumed());
  dec.get_u32();
  EXPECT_TRUE(dec.fully_consumed());
}

}  // namespace
}  // namespace gvfs::xdr
