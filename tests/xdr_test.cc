// XDR codec tests: round trips, big-endian layout, 4-byte padding, and
// malformed-input handling.
#include <gtest/gtest.h>

#include "xdr/xdr.h"

namespace gvfs::xdr {
namespace {

TEST(Xdr, U32BigEndian) {
  XdrEncoder enc;
  enc.put_u32(0x01020304);
  auto bytes = enc.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[3], 0x04);
}

TEST(Xdr, U64RoundTrip) {
  XdrEncoder enc;
  enc.put_u64(0x0102030405060708ULL);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, I32Negative) {
  XdrEncoder enc;
  enc.put_i32(-42);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_i32(), -42);
}

TEST(Xdr, BoolRoundTrip) {
  XdrEncoder enc;
  enc.put_bool(true);
  enc.put_bool(false);
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_TRUE(dec.ok());
}

TEST(Xdr, OpaquePadsToFour) {
  XdrEncoder enc;
  std::vector<u8> data{1, 2, 3, 4, 5};
  enc.put_opaque(data);
  EXPECT_EQ(enc.size(), 4u + 8u);  // length + 5 bytes padded to 8
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_opaque(), data);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, OpaqueFixedRoundTrip) {
  XdrEncoder enc;
  std::vector<u8> data{9, 8, 7};
  enc.put_opaque_fixed(data);
  EXPECT_EQ(enc.size(), 4u);  // padded
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_opaque_fixed(3), data);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, StringRoundTrip) {
  XdrEncoder enc;
  enc.put_string("hello gvfs");
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "hello gvfs");
}

TEST(Xdr, EmptyStringAndOpaque) {
  XdrEncoder enc;
  enc.put_string("");
  enc.put_opaque({});
  EXPECT_EQ(enc.size(), 8u);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_TRUE(dec.get_opaque().empty());
  EXPECT_TRUE(dec.ok());
}

TEST(Xdr, MixedSequence) {
  XdrEncoder enc;
  enc.put_u32(7);
  enc.put_string("abc");
  enc.put_u64(1_GiB);
  enc.put_bool(true);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 7u);
  EXPECT_EQ(dec.get_string(), "abc");
  EXPECT_EQ(dec.get_u64(), 1_GiB);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, ShortBufferSetsFailBit) {
  std::vector<u8> two{0, 1};
  XdrDecoder dec(two);
  EXPECT_EQ(dec.get_u32(), 0u);
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), ErrCode::kBadXdr);
}

TEST(Xdr, FailBitSticky) {
  XdrEncoder enc;
  enc.put_u32(5);
  XdrDecoder dec(enc.bytes());
  dec.get_u64();  // overruns
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.get_u32(), 0u);  // still failed, returns default
  EXPECT_FALSE(dec.ok());
}

TEST(Xdr, OpaqueLengthBeyondBufferFails) {
  XdrEncoder enc;
  enc.put_u32(1000);  // claims 1000 bytes follow
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_opaque().empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Xdr, SizeHelpersMatchEncoder) {
  XdrEncoder enc;
  enc.put_u32(1);
  EXPECT_EQ(enc.size(), size_u32());
  XdrEncoder enc2;
  enc2.put_string("hello");
  EXPECT_EQ(enc2.size(), size_string(5));
  XdrEncoder enc3;
  enc3.put_opaque(std::vector<u8>(7));
  EXPECT_EQ(enc3.size(), size_opaque(7));
  EXPECT_EQ(pad4(5), 8u);
  EXPECT_EQ(pad4(8), 8u);
}

// ---- zero-copy view / scatter-gather APIs ----------------------------------

std::vector<u8> to_vec(std::span<const u8> s) {
  return std::vector<u8>(s.begin(), s.end());
}

TEST(Xdr, OpaqueViewRoundTripMatchesCopying) {
  std::vector<u8> data{1, 2, 3, 4, 5};
  XdrEncoder copying;
  copying.put_opaque(data);
  XdrEncoder viewing;
  viewing.put_opaque_view(std::span<const u8>(data));
  EXPECT_EQ(to_vec(copying.bytes()), to_vec(viewing.bytes()));
  EXPECT_GE(viewing.segment_count(), 1u);
}

TEST(Xdr, OpaqueFixedViewPadsFromLogicalSize) {
  // A borrowed segment of length 5 must still pad the stream to 8, even
  // though the owned buffer holds none of those 5 bytes.
  std::vector<u8> data{9, 9, 9, 9, 9};
  XdrEncoder enc;
  enc.put_opaque_fixed_view(std::span<const u8>(data));
  EXPECT_EQ(enc.size(), 8u);
  auto flat = enc.bytes();
  ASSERT_EQ(flat.size(), 8u);
  EXPECT_EQ(flat[4], 9);
  EXPECT_EQ(flat[5], 0);  // pad bytes are zero
  EXPECT_EQ(flat[7], 0);
}

TEST(Xdr, ViewSurvivesSourceViaOwner) {
  auto owner = std::make_shared<std::vector<u8>>(std::vector<u8>{7, 7, 7, 7});
  XdrEncoder enc;
  enc.put_opaque_view(std::span<const u8>(*owner), owner);
  std::weak_ptr<std::vector<u8>> weak = owner;
  owner.reset();
  ASSERT_FALSE(weak.expired());  // encoder keeps the buffer alive
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_opaque(), (std::vector<u8>{7, 7, 7, 7}));
}

TEST(Xdr, PutBlobEmitsSameBytesAsCopy) {
  std::vector<u8> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<u8>(i);
  auto blob = blob::make_bytes(payload);
  XdrEncoder copying;
  copying.put_opaque(payload);
  XdrEncoder gathered;
  gathered.put_blob(blob);
  EXPECT_EQ(copying.size(), gathered.size());
  EXPECT_EQ(to_vec(copying.bytes()), to_vec(gathered.bytes()));
}

TEST(Xdr, PutBlobSubRange) {
  std::vector<u8> payload{0, 1, 2, 3, 4, 5, 6, 7};
  auto blob = blob::make_bytes(payload);
  XdrEncoder enc;
  enc.put_blob(blob, 2, 4);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_opaque(), (std::vector<u8>{2, 3, 4, 5}));
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, InterleavedOwnedAndBorrowedSegments) {
  std::vector<u8> a{1, 2, 3};
  std::vector<u8> b{4, 5, 6, 7, 8};
  XdrEncoder enc;
  enc.put_u32(42);
  enc.put_opaque_view(std::span<const u8>(a));
  enc.put_string("mid");
  enc.put_blob(blob::make_bytes(b));
  enc.put_u64(9);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 42u);
  EXPECT_EQ(dec.get_opaque(), a);
  EXPECT_EQ(dec.get_string(), "mid");
  EXPECT_EQ(dec.get_opaque(), b);
  EXPECT_EQ(dec.get_u64(), 9u);
  EXPECT_TRUE(dec.fully_consumed());
}

TEST(Xdr, TakeAfterBorrowsResetsEncoder) {
  std::vector<u8> a{1, 2, 3, 4};
  XdrEncoder enc;
  enc.put_opaque_view(std::span<const u8>(a));
  std::vector<u8> first = enc.take();
  EXPECT_EQ(first.size(), 8u);
  EXPECT_EQ(enc.size(), 0u);
  EXPECT_EQ(enc.segment_count(), 0u);
  enc.put_u32(1);
  EXPECT_EQ(enc.take().size(), 4u);
}

TEST(Xdr, DecoderViewIsZeroCopy) {
  XdrEncoder enc;
  std::vector<u8> data{5, 6, 7, 8};
  enc.put_opaque(data);
  std::vector<u8> raw = enc.take();
  XdrDecoder dec(raw);
  std::span<const u8> v = dec.get_opaque_view();
  ASSERT_EQ(v.size(), 4u);
  // The view must alias the wire buffer, not a copy.
  EXPECT_GE(v.data(), raw.data());
  EXPECT_LT(v.data(), raw.data() + raw.size());
}

TEST(Xdr, GetOpaqueViewShortBufferFails) {
  XdrEncoder enc;
  enc.put_u32(64);  // claims 64 bytes follow; none do
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_opaque_view().empty());
  EXPECT_FALSE(dec.ok());
}

TEST(Xdr, GetOpaqueBlobZeroPayloadIsShared) {
  XdrEncoder enc;
  enc.put_opaque(std::vector<u8>(8_KiB, 0));
  XdrDecoder dec(enc.bytes());
  auto b1 = dec.get_opaque_blob();
  ASSERT_TRUE(b1);
  EXPECT_EQ(b1->size(), 8_KiB);
  EXPECT_TRUE(b1->is_zero_range(0, 8_KiB));
  // All-zero payloads of a hot size resolve to the shared singleton.
  EXPECT_EQ(b1.get(), blob::zero_ref(8_KiB).get());
}

TEST(Xdr, GetOpaqueBlobWithBackingAvoidsCopy) {
  XdrEncoder enc;
  std::vector<u8> payload(512);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<u8>(i | 1);
  enc.put_opaque(payload);
  auto backing = std::make_shared<const std::vector<u8>>(enc.take());
  XdrDecoder dec(backing);
  auto b = dec.get_opaque_blob();
  ASSERT_TRUE(b);
  ASSERT_EQ(b->size(), 512u);
  // The blob must read back the payload and alias the backing buffer.
  std::vector<u8> round(512);
  b->read(0, round);
  EXPECT_EQ(round, payload);
  auto* view = dynamic_cast<const blob::ViewBlob*>(b.get());
  ASSERT_NE(view, nullptr);  // zero-copy path: a view, not a copy
  EXPECT_GE(view->bytes().data(), backing->data());
  EXPECT_LT(view->bytes().data(), backing->data() + backing->size());
}

TEST(Xdr, GetOpaqueBlobWithoutBackingCopies) {
  XdrEncoder enc;
  std::vector<u8> payload{1, 2, 3, 4};
  enc.put_opaque(payload);
  std::vector<u8> raw = enc.take();
  blob::BlobRef b;
  {
    XdrDecoder dec(raw);
    b = dec.get_opaque_blob();
  }
  raw.assign(raw.size(), 0xff);  // clobber the wire buffer
  std::vector<u8> round(4);
  b->read(0, round);
  EXPECT_EQ(round, payload);  // the blob owns its bytes
}

TEST(Xdr, RemainingTracksPosition) {
  XdrEncoder enc;
  enc.put_u32(1);
  enc.put_u32(2);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.remaining(), 8u);
  dec.get_u32();
  EXPECT_EQ(dec.remaining(), 4u);
  EXPECT_FALSE(dec.fully_consumed());
  dec.get_u32();
  EXPECT_TRUE(dec.fully_consumed());
}

}  // namespace
}  // namespace gvfs::xdr
