// Dedup equivalence properties: the content-addressed block dedup layer is a
// pure locality optimization, so turning it on must never change a single
// byte a client observes — across clone-resume read storms, interleaved
// writes (which stale the fingerprint table and stand the probe down), WAN
// partitions riding fault injection, and deliberately-narrowed fingerprint
// keys that force store collisions.
#include <gtest/gtest.h>

#include "test_util.h"

#include "blob/blob.h"
#include "common/rng.h"
#include "gvfs/testbed.h"
#include "vm/vm_image.h"

namespace gvfs::core {
namespace {

constexpr int kClones = 3;
constexpr u64 kMem = 4_MiB;

vm::VmImageSpec clone_spec(int i) {
  vm::VmImageSpec spec;
  spec.name = "clone" + std::to_string(i);
  spec.memory_bytes = kMem;
  spec.disk_bytes = 8_MiB;
  spec.mem_zero_fraction = 0.5;
  spec.seed = 42;  // same seed for every clone: content-identical images
  return spec;
}

struct DedupOp {
  SimDuration gap = 0;
  int file = 0;
  bool is_write = false;
  u64 offset = 0;
  u64 len = 0;
  u64 fill_seed = 0;
};

// Pre-generated op stream so every stack consumes byte-identical inputs.
std::vector<DedupOp> make_ops(u64 seed) {
  SplitMix64 rng(seed);
  std::vector<DedupOp> ops;
  for (int i = 0; i < 20; ++i) {
    DedupOp op;
    op.gap = (200 + rng.next_below(600)) * kMillisecond;
    op.file = static_cast<int>(rng.next_below(kClones));
    op.is_write = rng.next_below(4) == 0;
    u64 blocks = kMem / 32_KiB;
    if (op.is_write) {
      op.offset = rng.next_below(blocks) * 32_KiB;  // block-aligned, in-file
      op.len = 32_KiB;
      op.fill_seed = rng.next();
    } else {
      op.offset = rng.next_below(blocks) * 32_KiB;
      op.len = (1 + rng.next_below(3)) * 32_KiB;
      op.len = std::min(op.len, kMem - op.offset);
    }
    ops.push_back(op);
  }
  return ops;
}

struct RunConfig {
  bool dedup = false;
  bool faults = false;
  u32 key_bits = 64;
};

struct RunResult {
  std::vector<u64> read_hashes;   // every client-visible read, in order
  std::vector<u64> final_hashes;  // server bytes per clone after drain
  u64 aliases = 0;
  u64 collisions = 0;
};

RunResult run_stack(u64 seed, const std::vector<DedupOp>& ops, RunConfig rc) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.dedup_blocks = rc.dedup;
  opt.block_cache.dedup_key_bits = rc.key_bits;
  opt.write_policy = cache::WritePolicy::kWriteBack;
  if (rc.faults) {
    opt.enable_fault_injection = true;
    opt.fault_seed = seed;
    opt.fault.partitions.push_back(sim::FaultWindow{4 * kSecond, 9 * kSecond});
    // Default retry config: hard mount, both stacks wait the partition out.
  }
  Testbed bed(opt);

  std::vector<vm::VmImagePaths> images;
  for (int i = 0; i < kClones; ++i) {
    vm::VmImageSpec spec = clone_spec(i);
    auto paths = bed.install_image(spec);
    EXPECT_TRUE(paths.is_ok());
    // Zero map + fingerprint table, no file-channel action: every clone
    // resumes down the block path. The table is generated in BOTH runs —
    // a dedup-off proxy must parse and ignore it.
    vm::VmImagePaths server_paths{bed.image_dir(), spec.name};
    EXPECT_TRUE(vm::generate_vmss_metadata(
                    bed.image_fs(), server_paths, 8_KiB,
                    /*with_file_channel=*/false,
                    static_cast<u32>(opt.block_cache.block_size),
                    opt.block_cache.dedup_seed)
                    .is_ok());
    images.push_back(*paths);
  }

  RunResult res;
  bed.kernel().run_process("dedup-ops", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    // Phase 1: deterministic clone-resume sweep. Clones 2..N read bytes
    // already resident under clone 1 — the dedup-on stack aliases them.
    for (const auto& img : images) {
      auto data = session.read_all(p, img.vmss());
      ASSERT_TRUE(data.is_ok());
      res.read_hashes.push_back(blob::content_hash(**data));
    }
    // Phase 2: interleaved random reads and writes.
    for (const DedupOp& op : ops) {
      p.delay(op.gap);
      const std::string path = images[static_cast<std::size_t>(op.file)].vmss();
      if (op.is_write) {
        std::vector<u8> data(op.len);
        SplitMix64 fill(op.fill_seed);
        for (auto& b : data) b = static_cast<u8>(fill.next());
        ASSERT_TRUE(session.write(p, path, op.offset, blob::make_bytes(data)).is_ok());
      } else {
        auto r = session.read(p, path, op.offset, op.len);
        ASSERT_TRUE(r.is_ok());
        res.read_hashes.push_back(blob::content_hash(**r));
      }
    }
    // Quiesce past the fault window, then drain everything to the server.
    p.delay_until(30 * kSecond);
    ASSERT_TRUE(session.flush(p).is_ok());
    ASSERT_TRUE(bed.signal_write_back(p).is_ok());
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  for (int i = 0; i < kClones; ++i) {
    // Server-side bytes: image_fs holds files under the export directory.
    vm::VmImagePaths server_paths{bed.image_dir(), clone_spec(i).name};
    auto f = bed.image_fs().get_file(server_paths.vmss());
    EXPECT_TRUE(f.is_ok());
    res.final_hashes.push_back(blob::content_hash(**f));
  }
  res.aliases = bed.block_cache()->dedup_aliases();
  res.collisions = bed.block_cache()->dedup_collisions();
  return res;
}

class DedupEquivalence : public ::testing::TestWithParam<u64> {};

// Dedup on vs off — and both again under a WAN partition — must produce
// byte-identical read streams and identical final server bytes.
TEST_P(DedupEquivalence, OnOffByteIdenticalIncludingFaults) {
  const u64 seed = GetParam();
  const std::vector<DedupOp> ops = make_ops(seed);

  RunResult off = run_stack(seed, ops, RunConfig{.dedup = false});
  RunResult on = run_stack(seed, ops, RunConfig{.dedup = true});
  ASSERT_EQ(on.read_hashes, off.read_hashes);
  ASSERT_EQ(on.final_hashes, off.final_hashes);
  // The clone sweep guarantees identical bytes were resident: the dedup run
  // must actually have aliased (the property is not vacuous).
  EXPECT_GT(on.aliases, 0u);
  EXPECT_EQ(off.aliases, 0u);

  RunResult off_f = run_stack(seed, ops, RunConfig{.dedup = false, .faults = true});
  RunResult on_f = run_stack(seed, ops, RunConfig{.dedup = true, .faults = true});
  ASSERT_EQ(on_f.read_hashes, off_f.read_hashes);
  ASSERT_EQ(on_f.final_hashes, off_f.final_hashes);
  // Faults change timing, never content: all four stacks saw the same bytes.
  ASSERT_EQ(off_f.read_hashes, off.read_hashes);
  ASSERT_EQ(off_f.final_hashes, off.final_hashes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupEquivalence, ::testing::Values(21, 22, 23, 24),
                         [](const ::testing::TestParamInfo<u64>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Narrowed fingerprint keys force store collisions end-to-end; colliding
// entries must be detected (counted) and never alias wrong bytes.
TEST(DedupCollisions, NarrowKeyBitsStayByteIdentical) {
  const u64 seed = 31;
  const std::vector<DedupOp> ops = make_ops(seed);
  RunResult off = run_stack(seed, ops, RunConfig{.dedup = false});
  RunResult narrow = run_stack(seed, ops, RunConfig{.dedup = true, .key_bits = 4});
  ASSERT_EQ(narrow.read_hashes, off.read_hashes);
  ASSERT_EQ(narrow.final_hashes, off.final_hashes);
  // ~64 distinct nonzero blocks into 16 slots: collisions are guaranteed.
  EXPECT_GT(narrow.collisions, 0u);
}

}  // namespace
}  // namespace gvfs::core
