// Meta-data handling tests: the on-disk meta file format, zero-map
// generation and queries (including the paper's 512 MB post-boot statistic),
// and the compress/SCP/uncompress file channel in both directions.
#include <gtest/gtest.h>

#include <limits>

#include "cache/file_cache.h"
#include "meta/file_channel.h"
#include "meta/meta_file.h"
#include "meta/speculation.h"
#include "sim/kernel.h"
#include "ssh/ssh.h"
#include "vfs/memfs.h"

namespace gvfs::meta {
namespace {

TEST(MetaFile, NamingConvention) {
  EXPECT_EQ(MetaFile::meta_name_for("vm1.vmss"), ".vm1.vmss.gvfsmeta");
  EXPECT_EQ(MetaFile::meta_path_for("/exports/images/vm1.vmss"),
            "/exports/images/.vm1.vmss.gvfsmeta");
  EXPECT_TRUE(MetaFile::is_meta_name(".vm1.vmss.gvfsmeta"));
  EXPECT_FALSE(MetaFile::is_meta_name("vm1.vmss"));
  EXPECT_FALSE(MetaFile::is_meta_name(".hidden"));
}

TEST(MetaFile, GenerateZeroMapFromContent) {
  // 64 KiB file: first half zeros, second half data.
  std::vector<u8> data(64_KiB, 0);
  for (u64 i = 32_KiB; i < 64_KiB; ++i) data[i] = 1;
  auto m = MetaFile::generate(*blob::make_bytes(std::move(data)), 8_KiB);
  EXPECT_TRUE(m.has_zero_map());
  EXPECT_EQ(m.total_blocks(), 8u);
  EXPECT_EQ(m.zero_block_count(), 4u);
  EXPECT_TRUE(m.range_is_zero(0, 32_KiB));
  EXPECT_FALSE(m.range_is_zero(0, 33_KiB));
  EXPECT_FALSE(m.range_is_zero(40_KiB, 1_KiB));
  EXPECT_TRUE(m.range_is_zero(8_KiB, 8_KiB));
}

TEST(MetaFile, RangePastEofIsZero) {
  auto m = MetaFile::generate(*blob::make_zero(16_KiB), 8_KiB);
  EXPECT_TRUE(m.range_is_zero(16_KiB, 1_KiB));
  EXPECT_TRUE(m.range_is_zero(100_KiB, 8_KiB));
}

TEST(MetaFile, EmptyRangeNotZero) {
  auto m = MetaFile::generate(*blob::make_zero(16_KiB), 8_KiB);
  EXPECT_FALSE(m.range_is_zero(0, 0));
}

TEST(MetaFile, RangeIsZeroHugeLenDoesNotWrap) {
  // Regression: `offset + len` used to wrap for lens near UINT64_MAX, making
  // `end` tiny so a range covering nonzero blocks reported itself as zero.
  std::vector<u8> data(64_KiB, 0);
  for (u64 i = 32_KiB; i < 64_KiB; ++i) data[i] = 1;
  auto m = MetaFile::generate(*blob::make_bytes(std::move(data)), 8_KiB);
  const u64 huge = std::numeric_limits<u64>::max() - 4_KiB;
  // Must clamp to EOF, i.e. agree with the explicit to-EOF query.
  EXPECT_FALSE(m.range_is_zero(0, huge));
  EXPECT_EQ(m.range_is_zero(8_KiB, huge), m.range_is_zero(8_KiB, 64_KiB - 8_KiB));
  EXPECT_FALSE(m.range_is_zero(40_KiB, std::numeric_limits<u64>::max()));
  // All-zero prefix region clamped past EOF stays consistent too.
  auto z = MetaFile::generate(*blob::make_zero(16_KiB), 8_KiB);
  EXPECT_TRUE(z.range_is_zero(8_KiB, std::numeric_limits<u64>::max()));
}

TEST(MetaFile, FingerprintTableRoundTrip) {
  auto content = blob::make_synthetic(9, 1_MiB, 0.5, 3.0);
  auto m = MetaFile::generate(*content, 8_KiB, {}, 32_KiB, /*fp_seed=*/77);
  ASSERT_TRUE(m.has_fingerprints());
  EXPECT_EQ(m.fp_block_size(), 32_KiB);
  EXPECT_EQ(m.fp_seed(), 77u);
  EXPECT_EQ(m.fingerprint_count(), 1_MiB / 32_KiB);
  // Table entries are the seeded per-block fingerprints of the content.
  EXPECT_EQ(m.block_fingerprint(0), content->fingerprint(77, 0, 32_KiB));
  EXPECT_EQ(m.block_fingerprint(3), content->fingerprint(77, 3 * 32_KiB, 32_KiB));
  EXPECT_EQ(m.block_fingerprint(m.fingerprint_count()), 0u);  // out of range
  auto back = MetaFile::parse(*m.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, m);
  EXPECT_EQ(back->block_fingerprint(3), m.block_fingerprint(3));
  // Without a table the codec stays at version 1 and parses identically.
  auto v1 = MetaFile::generate(*content, 8_KiB);
  auto v1back = MetaFile::parse(*v1.serialize());
  ASSERT_TRUE(v1back.is_ok());
  EXPECT_FALSE(v1back->has_fingerprints());
  EXPECT_EQ(*v1back, v1);
}

TEST(MetaFile, SerializeParseRoundTrip) {
  auto content = blob::make_synthetic(9, 1_MiB, 0.7, 3.0);
  auto m = MetaFile::generate(*content, 8_KiB, file_channel_actions());
  auto raw = m.serialize();
  auto back = MetaFile::parse(*raw);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, m);
  EXPECT_TRUE(back->wants_file_channel());
  EXPECT_EQ(back->actions().size(), 4u);
}

TEST(MetaFile, ParseRejectsGarbage) {
  EXPECT_FALSE(MetaFile::parse(*blob::make_zero(64)).is_ok());
  EXPECT_FALSE(MetaFile::parse(*blob::make_bytes(std::vector<u8>{1, 2, 3})).is_ok());
}

TEST(MetaFile, ActionsWithoutZeroMap) {
  auto m = MetaFile::generate(*blob::make_zero(0), 0, file_channel_actions());
  EXPECT_FALSE(m.has_zero_map());
  EXPECT_TRUE(m.wants_file_channel());
  auto back = MetaFile::parse(*m.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back->wants_file_channel());
}

TEST(MetaFile, PaperZeroStatistic) {
  // A 512 MB post-boot memory image read at 8 KB granularity: 65536 blocks,
  // ~92% zero => the paper's "60452 of 65750 reads filtered" figure.
  auto mem = blob::make_synthetic(0x42, 512_MiB, 0.9223, 3.0);
  auto m = MetaFile::generate(*mem, 8_KiB);
  EXPECT_EQ(m.total_blocks(), 65536u);
  double frac = static_cast<double>(m.zero_block_count()) /
                static_cast<double>(m.total_blocks());
  // Zero pages come in 64 KiB runs, so 8 KiB blocks filter at close to the
  // page-level fraction (paper: 60452/65750 = 91.9%).
  EXPECT_NEAR(frac, 0.9223, 0.02);
}

// ------------------------------------------------------------ file channel --

struct ChannelFixture {
  sim::SimKernel kernel;
  vfs::MemFs server_fs;
  sim::DiskModel server_disk{kernel, "sd", sim::DiskConfig{}};
  sim::CpuPool server_cpu{kernel, 2};
  meta::ServerFileChannel endpoint{server_fs, server_disk, &server_cpu};
  sim::Link wan{kernel, "wan", sim::LinkConfig{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0}};
  ssh::Scp scp{wan, ssh::CipherSpec{}};
  sim::DiskModel client_disk{kernel, "cd", sim::DiskConfig{}};
  cache::FileCache file_cache{client_disk};
  meta::FileChannelClient channel{endpoint, scp, file_cache};
};

TEST(FileChannel, FetchLandsContentInCache) {
  ChannelFixture f;
  auto content = blob::make_synthetic(1, 8_MiB, 0.9, 3.0);
  auto id = f.server_fs.put_file("/exports/m.vmss", content);
  ASSERT_TRUE(id.is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(f.channel.fetch_into_cache(p, *id, 77).is_ok());
    ASSERT_TRUE(f.file_cache.contains(77));
    auto back = f.file_cache.read(p, 77, 0, 8_MiB);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
  });
  EXPECT_EQ(f.channel.fetches(), 1u);
  // Only the compressed bytes crossed the WAN.
  EXPECT_LT(f.channel.wire_bytes(), 2_MiB);
  EXPECT_LT(f.scp.bytes_moved(), 2_MiB);
}

TEST(FileChannel, CompressedTransferFasterThanRaw) {
  ChannelFixture f;
  auto content = blob::make_synthetic(2, 16_MiB, 0.92, 3.0);
  auto id = f.server_fs.put_file("/exports/m.vmss", content);
  SimTime elapsed = 0;
  f.kernel.run_process("t", [&](sim::Process& p) {
    SimTime t0 = p.now();
    ASSERT_TRUE(f.channel.fetch_into_cache(p, *id, 1).is_ok());
    elapsed = p.now() - t0;
  });
  // Raw 16 MiB at the ~1.8 MB/s flow ceiling would take ~9 s; compressed
  // (~8% nonzero at 3x) it lands around compress time (~2 s at 8 MB/s).
  EXPECT_LT(to_seconds(elapsed), 5.0);
}

TEST(FileChannel, UploadPushesBackToServer) {
  ChannelFixture f;
  auto original = blob::make_synthetic(3, 4_MiB, 0.9, 3.0);
  auto id = f.server_fs.put_file("/exports/m.vmss", original);
  auto modified = blob::make_synthetic(4, 4_MiB, 0.8, 3.0);
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(f.channel.upload_from_cache(p, 1, *id, modified).is_ok());
  });
  auto server_now = f.server_fs.get_file("/exports/m.vmss");
  ASSERT_TRUE(server_now.is_ok());
  EXPECT_EQ(blob::content_hash(**server_now), blob::content_hash(*modified));
  EXPECT_EQ(f.channel.uploads(), 1u);
}

TEST(FileChannel, FetchMissingFileFails) {
  ChannelFixture f;
  f.kernel.run_process("t", [&](sim::Process& p) {
    EXPECT_FALSE(f.channel.fetch_into_cache(p, 424242, 1).is_ok());
  });
}

TEST(FileChannel, ServerCpuBoundsConcurrentCompression) {
  ChannelFixture f;
  // Four concurrent fetches on a 2-CPU server: compression serializes 2-wide.
  std::vector<vfs::FileId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = f.server_fs.put_file("/exports/m" + std::to_string(i),
                                   blob::make_synthetic(10 + i, 32_MiB, 0.0, 1.2));
    ids.push_back(*id);
  }
  std::vector<std::unique_ptr<cache::FileCache>> caches;
  std::vector<std::unique_ptr<meta::FileChannelClient>> channels;
  for (int i = 0; i < 4; ++i) {
    caches.push_back(std::make_unique<cache::FileCache>(f.client_disk));
    channels.push_back(
        std::make_unique<meta::FileChannelClient>(f.endpoint, f.scp, *caches.back()));
  }
  SimTime end = 0;
  for (int i = 0; i < 4; ++i) {
    f.kernel.spawn("fetch" + std::to_string(i), [&, i](sim::Process& p) {
      ASSERT_TRUE(channels[i]->fetch_into_cache(p, ids[static_cast<size_t>(i)], 1).is_ok());
      end = std::max(end, p.now());
    });
  }
  f.kernel.run();
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  // 32 MiB at 20 MB/s = ~1.6 s compress each; 4 jobs over 2 CPUs >= 3.2 s.
  EXPECT_GT(to_seconds(end), 3.0);
}

// ---------------------------------------------------------- knowledge base --

AccessObservation full_read(u64 size, double zeros = 0.9) {
  AccessObservation o;
  o.file_size = size;
  o.bytes_touched = size;
  o.sequential = true;
  o.zero_fraction = zeros;
  return o;
}

AccessObservation sparse_read(u64 size, double frac, double zeros = 0.0) {
  AccessObservation o;
  o.file_size = size;
  o.bytes_touched = static_cast<u64>(static_cast<double>(size) * frac);
  o.sequential = false;
  o.zero_fraction = zeros;
  return o;
}

TEST(KnowledgeBase, NoHistoryNoSpeculation) {
  KnowledgeBase kb;
  EXPECT_EQ(kb.recommend("vmware", "vmss"), Recommendation::kNone);
  EXPECT_EQ(kb.sessions("vmware", "vmss"), 0u);
}

TEST(KnowledgeBase, SingleSessionInsufficient) {
  KnowledgeBase kb;
  kb.record("vmware", "vmss", full_read(320_MiB));
  EXPECT_EQ(kb.recommend("vmware", "vmss"), Recommendation::kNone);
}

TEST(KnowledgeBase, ConsistentFullReadsRecommendFileChannel) {
  // The paper's .vmss case: "the entire memory state file is always
  // required from the image server before a VM can be resumed".
  KnowledgeBase kb;
  kb.record("vmware", "vmss", full_read(320_MiB));
  kb.record("vmware", "vmss", full_read(320_MiB));
  EXPECT_EQ(kb.recommend("vmware", "vmss"), Recommendation::kFileChannel);
  EXPECT_EQ(kb.sessions("vmware", "vmss"), 2u);
}

TEST(KnowledgeBase, SparseWorkingSetRecommendsNothing) {
  // The paper's .vmdk case: accesses "restricted to a working set that is
  // much smaller (<10%) than the large virtual disk file".
  KnowledgeBase kb;
  kb.record("vmware", "vmdk", sparse_read(u64{1638} * 1_MiB, 0.08));
  kb.record("vmware", "vmdk", sparse_read(u64{1638} * 1_MiB, 0.06));
  kb.record("vmware", "vmdk", sparse_read(u64{1638} * 1_MiB, 0.09));
  EXPECT_EQ(kb.recommend("vmware", "vmdk"), Recommendation::kNone);
}

TEST(KnowledgeBase, MostlyZeroPartialReadsRecommendZeroMap) {
  KnowledgeBase kb;
  kb.record("resume", "swap", sparse_read(512_MiB, 0.4, /*zeros=*/0.9));
  kb.record("resume", "swap", sparse_read(512_MiB, 0.5, /*zeros=*/0.85));
  EXPECT_EQ(kb.recommend("resume", "swap"), Recommendation::kZeroMapOnly);
}

TEST(KnowledgeBase, OneDeviatingSessionBreaksFullReadRule) {
  KnowledgeBase kb;
  kb.record("app", "dat", full_read(64_MiB, 0.1));
  kb.record("app", "dat", sparse_read(64_MiB, 0.2));
  kb.record("app", "dat", full_read(64_MiB, 0.1));
  EXPECT_NE(kb.recommend("app", "dat"), Recommendation::kFileChannel);
}

TEST(KnowledgeBase, KeysAreIndependent) {
  KnowledgeBase kb;
  kb.record("vmware", "vmss", full_read(320_MiB));
  kb.record("vmware", "vmss", full_read(320_MiB));
  kb.record("latex", "vmss", sparse_read(320_MiB, 0.1));
  kb.record("latex", "vmss", sparse_read(320_MiB, 0.1));
  EXPECT_EQ(kb.recommend("vmware", "vmss"), Recommendation::kFileChannel);
  EXPECT_EQ(kb.recommend("latex", "vmss"), Recommendation::kNone);
}

TEST(KnowledgeBase, SerializeParseRoundTrip) {
  KnowledgeBase kb;
  kb.record("vmware", "vmss", full_read(320_MiB));
  kb.record("vmware", "vmss", full_read(320_MiB));
  kb.record("vmware", "vmdk", sparse_read(1_GiB, 0.05));
  auto back = KnowledgeBase::parse(kb.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, kb);
  EXPECT_EQ(back->recommend("vmware", "vmss"), Recommendation::kFileChannel);
  EXPECT_FALSE(KnowledgeBase::parse("garbage").is_ok());
}

TEST(KnowledgeBase, RecommendationNames) {
  EXPECT_STREQ(recommendation_name(Recommendation::kNone), "none");
  EXPECT_STREQ(recommendation_name(Recommendation::kZeroMapOnly), "zero-map");
  EXPECT_STREQ(recommendation_name(Recommendation::kFileChannel), "file-channel");
}

}  // namespace
}  // namespace gvfs::meta
