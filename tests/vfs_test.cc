// Tests for MemFs (inode semantics), the path convenience layer, the buffer
// cache (LRU, dirty staging, writeback), and the local-disk session.
#include <gtest/gtest.h>

#include "test_util.h"

#include "blob/blob.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "vfs/buffer_cache.h"
#include "vfs/local_session.h"
#include "vfs/memfs.h"

namespace gvfs::vfs {
namespace {

blob::BlobRef bytes(std::initializer_list<u8> v) {
  return blob::make_bytes(std::vector<u8>(v));
}

// ------------------------------------------------------------------ MemFs --

TEST(MemFs, RootIsDirectory) {
  MemFs fs;
  auto a = fs.getattr(fs.root());
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a->type, FileType::kDirectory);
}

TEST(MemFs, CreateLookupRead) {
  MemFs fs;
  auto id = fs.create(fs.root(), "hello.txt", 0644, 1, 1);
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(fs.write(*id, 0, std::vector<u8>{'h', 'i'}).is_ok());
  auto found = fs.lookup(fs.root(), "hello.txt");
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(*found, *id);
  std::vector<u8> buf(2);
  auto n = fs.read(*id, 0, buf);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(buf, (std::vector<u8>{'h', 'i'}));
}

TEST(MemFs, CreateDuplicateFails) {
  MemFs fs;
  ASSERT_TRUE(fs.create(fs.root(), "a", 0644, 0, 0).is_ok());
  EXPECT_EQ(fs.create(fs.root(), "a", 0644, 0, 0).code(), ErrCode::kExist);
}

TEST(MemFs, LookupMissingIsNoEnt) {
  MemFs fs;
  EXPECT_EQ(fs.lookup(fs.root(), "nope").code(), ErrCode::kNoEnt);
}

TEST(MemFs, LookupOnFileIsNotDir) {
  MemFs fs;
  auto id = fs.create(fs.root(), "f", 0644, 0, 0);
  EXPECT_EQ(fs.lookup(*id, "x").code(), ErrCode::kNotDir);
}

TEST(MemFs, StaleHandle) {
  MemFs fs;
  auto id = fs.create(fs.root(), "f", 0644, 0, 0);
  ASSERT_TRUE(fs.remove(fs.root(), "f").is_ok());
  EXPECT_EQ(fs.getattr(*id).code(), ErrCode::kStale);
}

TEST(MemFs, ReadPastEofShort) {
  MemFs fs;
  auto id = fs.create(fs.root(), "f", 0644, 0, 0);
  ASSERT_OK(fs.write(*id, 0, std::vector<u8>(10, 1)));
  std::vector<u8> buf(20);
  auto n = fs.read(*id, 5, buf);
  EXPECT_EQ(*n, 5u);
  auto n2 = fs.read(*id, 100, buf);
  EXPECT_EQ(*n2, 0u);
}

TEST(MemFs, SetattrTruncateAndMode) {
  MemFs fs;
  auto id = fs.create(fs.root(), "f", 0644, 0, 0);
  ASSERT_OK(fs.write(*id, 0, std::vector<u8>(100, 1)));
  SetAttr sa;
  sa.set_size = true;
  sa.size = 10;
  sa.set_mode = true;
  sa.mode = 0600;
  ASSERT_TRUE(fs.setattr(*id, sa).is_ok());
  auto a = fs.getattr(*id);
  EXPECT_EQ(a->size, 10u);
  EXPECT_EQ(a->mode, 0600u);
}

TEST(MemFs, MkdirNesting) {
  MemFs fs;
  auto d1 = fs.mkdir(fs.root(), "a", 0755, 0, 0);
  auto d2 = fs.mkdir(*d1, "b", 0755, 0, 0);
  ASSERT_TRUE(d2.is_ok());
  auto found = fs.resolve("/a/b");
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(*found, *d2);
}

TEST(MemFs, RmdirOnlyWhenEmpty) {
  MemFs fs;
  auto d = fs.mkdir(fs.root(), "d", 0755, 0, 0);
  ASSERT_OK(fs.create(*d, "f", 0644, 0, 0));
  EXPECT_EQ(fs.rmdir(fs.root(), "d").code(), ErrCode::kNotEmpty);
  ASSERT_OK(fs.remove(*d, "f"));
  EXPECT_TRUE(fs.rmdir(fs.root(), "d").is_ok());
}

TEST(MemFs, RemoveDirectoryWithRemoveFails) {
  MemFs fs;
  ASSERT_OK(fs.mkdir(fs.root(), "d", 0755, 0, 0));
  EXPECT_EQ(fs.remove(fs.root(), "d").code(), ErrCode::kIsDir);
}

TEST(MemFs, RenameMovesAndOverwrites) {
  MemFs fs;
  auto a = fs.create(fs.root(), "a", 0644, 0, 0);
  ASSERT_OK(fs.write(*a, 0, std::vector<u8>{1}));
  auto b = fs.create(fs.root(), "b", 0644, 0, 0);
  ASSERT_OK(fs.write(*b, 0, std::vector<u8>{2, 2}));
  ASSERT_TRUE(fs.rename(fs.root(), "a", fs.root(), "b").is_ok());
  EXPECT_EQ(fs.lookup(fs.root(), "a").code(), ErrCode::kNoEnt);
  auto moved = fs.lookup(fs.root(), "b");
  EXPECT_EQ(*moved, *a);
  EXPECT_EQ(fs.getattr(*moved)->size, 1u);
}

TEST(MemFs, SymlinkAndReadlink) {
  MemFs fs;
  auto id = fs.symlink(fs.root(), "link", "/target/file");
  ASSERT_TRUE(id.is_ok());
  auto t = fs.readlink(*id);
  ASSERT_TRUE(t.is_ok());
  EXPECT_EQ(*t, "/target/file");
  EXPECT_EQ(fs.getattr(*id)->type, FileType::kSymlink);
}

TEST(MemFs, ResolveFollowsSymlink) {
  MemFs fs;
  ASSERT_TRUE(fs.mkdirs("/data").is_ok());
  ASSERT_TRUE(fs.put_file("/data/real.txt", bytes({5})).is_ok());
  auto dir = fs.resolve("/data");
  ASSERT_OK(fs.symlink(*dir, "alias.txt", "/data/real.txt"));
  auto via = fs.resolve("/data/alias.txt");
  ASSERT_TRUE(via.is_ok());
  EXPECT_EQ(*via, *fs.resolve("/data/real.txt"));
}

TEST(MemFs, ReaddirSorted) {
  MemFs fs;
  ASSERT_OK(fs.create(fs.root(), "b", 0644, 0, 0));
  ASSERT_OK(fs.create(fs.root(), "a", 0644, 0, 0));
  ASSERT_OK(fs.mkdir(fs.root(), "c", 0755, 0, 0));
  auto entries = fs.readdir(fs.root());
  ASSERT_TRUE(entries.is_ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "a");
  EXPECT_EQ((*entries)[2].type, FileType::kDirectory);
}

TEST(MemFs, PutGetFileHelpers) {
  MemFs fs;
  ASSERT_TRUE(fs.put_file("/x/y/z.bin", blob::make_synthetic(3, 1_MiB, 0.5, 2.0)).is_ok());
  EXPECT_TRUE(fs.exists("/x/y/z.bin"));
  EXPECT_FALSE(fs.exists("/x/y/none"));
  auto data = fs.get_file("/x/y/z.bin");
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ((*data)->size(), 1_MiB);
  // Overwrite replaces content.
  ASSERT_TRUE(fs.put_file("/x/y/z.bin", bytes({1, 2})).is_ok());
  EXPECT_EQ((*fs.get_file("/x/y/z.bin"))->size(), 2u);
}

TEST(MemFs, ClockStampsTimes) {
  MemFs fs;
  SimTime now = 1234 * kSecond;
  fs.set_clock([&] { return now; });
  auto id = fs.create(fs.root(), "f", 0644, 0, 0);
  EXPECT_EQ(fs.getattr(*id)->mtime, now);
  now += kSecond;
  ASSERT_OK(fs.write(*id, 0, std::vector<u8>{1}));
  EXPECT_EQ(fs.getattr(*id)->mtime, now);
}

TEST(MemFs, MaterializedBytesTracksRealData) {
  MemFs fs;
  ASSERT_OK(fs.put_file("/big", blob::make_synthetic(1, 100_MiB, 0.5, 2.0)));
  EXPECT_EQ(fs.materialized_bytes(), 0u);
  ASSERT_OK(fs.put_file("/small", bytes({1, 2, 3})));
  EXPECT_EQ(fs.materialized_bytes(), 3u);
}

// ------------------------------------------------------------ BufferCache --

TEST(BufferCache, HitAfterInsert) {
  sim::SimKernel k;
  BufferCache bc(64_KiB, 4_KiB);
  k.run_process("p", [&](sim::Process& p) {
    EXPECT_FALSE(bc.lookup(1, 0).has_value());
    bc.insert(p, 1, 0, bytes({1}), false);
    ASSERT_TRUE(bc.lookup(1, 0).has_value());
  });
  EXPECT_EQ(bc.hits(), 1u);
  EXPECT_EQ(bc.misses(), 1u);
}

TEST(BufferCache, LruEviction) {
  sim::SimKernel k;
  BufferCache bc(4 * 4_KiB, 4_KiB);  // 4 pages
  k.run_process("p", [&](sim::Process& p) {
    for (u64 i = 0; i < 5; ++i) bc.insert(p, 1, i, bytes({static_cast<u8>(i)}), false);
    EXPECT_FALSE(bc.lookup(1, 0).has_value());  // evicted
    EXPECT_TRUE(bc.lookup(1, 4).has_value());
  });
  EXPECT_EQ(bc.evictions(), 1u);
}

TEST(BufferCache, DirtyEvictionTriggersWriteback) {
  sim::SimKernel k;
  BufferCache bc(2 * 4_KiB, 4_KiB);
  std::vector<u64> written;
  bc.set_writeback([&](sim::Process&, u64, u64 page, const blob::BlobRef&) {
    written.push_back(page);
  });
  k.run_process("p", [&](sim::Process& p) {
    bc.insert(p, 1, 0, bytes({1}), true);
    bc.insert(p, 1, 1, bytes({2}), false);
    bc.insert(p, 1, 2, bytes({3}), false);  // evicts dirty page 0
  });
  EXPECT_EQ(written, (std::vector<u64>{0}));
  EXPECT_EQ(bc.dirty_pages(), 0u);
}

TEST(BufferCache, CleanRefillDoesNotClobberDirty) {
  sim::SimKernel k;
  BufferCache bc(64_KiB, 4_KiB);
  k.run_process("p", [&](sim::Process& p) {
    bc.insert(p, 1, 0, bytes({9}), true);
    bc.insert(p, 1, 0, bytes({1}), false);  // stale clean refill
    auto got = bc.lookup(1, 0);
    std::vector<u8> buf(1);
    (*got)->read(0, buf);
    EXPECT_EQ(buf[0], 9);  // dirty data preserved
  });
  EXPECT_EQ(bc.dirty_pages(), 1u);
}

TEST(BufferCache, FlushWritesInOrderAndCleans) {
  sim::SimKernel k;
  BufferCache bc(64_KiB, 4_KiB);
  std::vector<u64> written;
  bc.set_writeback([&](sim::Process&, u64, u64 page, const blob::BlobRef&) {
    written.push_back(page);
  });
  k.run_process("p", [&](sim::Process& p) {
    bc.insert(p, 1, 3, bytes({1}), true);
    bc.insert(p, 1, 1, bytes({1}), true);
    bc.insert(p, 2, 0, bytes({1}), true);
    EXPECT_EQ(bc.flush(p, 1), 2u);
    EXPECT_EQ(bc.dirty_pages(), 1u);  // file 2 still dirty
    EXPECT_EQ(bc.flush(p), 1u);
  });
  EXPECT_EQ(written, (std::vector<u64>{1, 3, 0}));
}

TEST(BufferCache, DiscardDropsWithoutWriteback) {
  sim::SimKernel k;
  BufferCache bc(64_KiB, 4_KiB);
  int writebacks = 0;
  bc.set_writeback([&](sim::Process&, u64, u64, const blob::BlobRef&) { ++writebacks; });
  k.run_process("p", [&](sim::Process& p) {
    bc.insert(p, 1, 0, bytes({1}), true);
    bc.discard_file(1);
    EXPECT_FALSE(bc.lookup(1, 0).has_value());
  });
  EXPECT_EQ(writebacks, 0);
  EXPECT_EQ(bc.dirty_pages(), 0u);
}

TEST(BufferCache, DirtyFilesLists) {
  sim::SimKernel k;
  BufferCache bc(64_KiB, 4_KiB);
  k.run_process("p", [&](sim::Process& p) {
    bc.insert(p, 5, 0, bytes({1}), true);
    bc.insert(p, 3, 0, bytes({1}), true);
    bc.insert(p, 4, 0, bytes({1}), false);
  });
  EXPECT_EQ(bc.dirty_files(), (std::vector<u64>{3, 5}));
}

// --------------------------------------------------------- LocalFsSession --

struct LocalFixture {
  sim::SimKernel kernel;
  MemFs fs;
  sim::DiskModel disk{kernel, "disk", sim::DiskConfig{}};
  LocalFsSession session{fs, disk};
};

TEST(LocalSession, CreateWriteReadBack) {
  LocalFixture f;
  f.kernel.run_process("p", [&](sim::Process& p) {
    ASSERT_TRUE(f.session.mkdirs(p, "/data").is_ok());
    ASSERT_TRUE(f.session.create(p, "/data/f").is_ok());
    auto content = blob::make_synthetic(1, 256_KiB, 0.2, 2.0);
    ASSERT_TRUE(f.session.write(p, "/data/f", 0, content).is_ok());
    auto back = f.session.read(p, "/data/f", 0, 256_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
  });
}

TEST(LocalSession, CachedRereadIsFaster) {
  LocalFixture f;
  f.kernel.run_process("p", [&](sim::Process& p) {
    ASSERT_OK(f.session.mkdirs(p, "/d"));
    ASSERT_OK(f.session.create(p, "/d/f"));
    ASSERT_OK(f.session.write(p, "/d/f", 0, blob::make_synthetic(2, 1_MiB, 0.2, 2.0)));
    ASSERT_OK(f.session.flush(p));
    f.session.drop_caches();
    SimTime t0 = p.now();
    ASSERT_OK(f.session.read(p, "/d/f", 0, 1_MiB));
    SimTime cold = p.now() - t0;
    t0 = p.now();
    ASSERT_OK(f.session.read(p, "/d/f", 0, 1_MiB));
    SimTime warm = p.now() - t0;
    EXPECT_LT(warm * 10, cold);  // page-cache hit is >10x faster
  });
}

TEST(LocalSession, WritesStageThenFlushCharges) {
  LocalFixture f;
  f.kernel.run_process("p", [&](sim::Process& p) {
    ASSERT_OK(f.session.create(p, "/f"));
    SimTime t0 = p.now();
    ASSERT_OK(f.session.write(p, "/f", 0, blob::make_synthetic(3, 4_MiB, 0.0, 1.5)));
    SimTime staged = p.now() - t0;
    t0 = p.now();
    ASSERT_OK(f.session.flush(p));
    SimTime flushed = p.now() - t0;
    EXPECT_LT(staged, flushed);  // cost lands at flush (write-behind)
    EXPECT_GT(flushed, from_millis(50));
  });
}

TEST(LocalSession, StatTruncateRemove) {
  LocalFixture f;
  f.kernel.run_process("p", [&](sim::Process& p) {
    ASSERT_OK(f.session.create(p, "/f"));
    ASSERT_OK(f.session.write(p, "/f", 0, blob::make_zero(100)));
    EXPECT_EQ(f.session.stat(p, "/f")->size, 100u);
    ASSERT_OK(f.session.truncate(p, "/f", 10));
    EXPECT_EQ(f.session.stat(p, "/f")->size, 10u);
    ASSERT_TRUE(f.session.remove(p, "/f").is_ok());
    EXPECT_EQ(f.session.stat(p, "/f").code(), ErrCode::kNoEnt);
  });
}

TEST(LocalSession, SymlinkAndList) {
  LocalFixture f;
  f.kernel.run_process("p", [&](sim::Process& p) {
    ASSERT_OK(f.session.mkdirs(p, "/d"));
    ASSERT_OK(f.session.create(p, "/d/a"));
    ASSERT_OK(f.session.symlink(p, "/d/l", "/d/a"));
    auto entries = f.session.list(p, "/d");
    ASSERT_TRUE(entries.is_ok());
    EXPECT_EQ(entries->size(), 2u);
  });
}

TEST(LocalSession, ReadAllAndPutHelpers) {
  LocalFixture f;
  f.kernel.run_process("p", [&](sim::Process& p) {
    auto content = blob::make_synthetic(4, 64_KiB, 0.1, 2.0);
    ASSERT_TRUE(f.session.put(p, "/a/b/c", content).is_ok());
    auto back = f.session.read_all(p, "/a/b/c");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
  });
}

}  // namespace
}  // namespace gvfs::vfs
