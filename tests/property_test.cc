// Property-based tests: randomized operation streams driven through the full
// GVFS stack, checked against a simple reference model. Parameterized over
// seeds, write policies and transfer sizes (TEST_P sweeps).
#include <gtest/gtest.h>

#include "test_util.h"

#include <map>

#include "blob/blob.h"
#include "common/rng.h"
#include "gvfs/testbed.h"
#include "vfs/local_session.h"
#include "vm/vm_cloner.h"
#include "vm/vm_image.h"
#include "vm/vm_monitor.h"
#include "vm/redo_log.h"

namespace gvfs::core {
namespace {

// Reference model: plain byte vectors per path.
struct RefModel {
  std::map<std::string, std::vector<u8>> files;

  void write(const std::string& path, u64 off, const std::vector<u8>& data) {
    auto& f = files[path];
    if (f.size() < off + data.size()) f.resize(off + data.size(), 0);
    std::copy(data.begin(), data.end(), f.begin() + static_cast<long>(off));
  }
  void truncate(const std::string& path, u64 size) { files[path].resize(size, 0); }
};

struct StackParam {
  u64 seed;
  cache::WritePolicy policy;
  u32 rsize;
  u64 cache_bytes;
};

class StackConsistency : public ::testing::TestWithParam<StackParam> {};

TEST_P(StackConsistency, RandomOpsMatchReferenceAndServerConverges) {
  StackParam param = GetParam();
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.write_policy = param.policy;
  opt.block_cache.capacity_bytes = param.cache_bytes;
  opt.block_cache.num_banks = 8;
  opt.block_cache.associativity = 4;
  opt.net.gvfs_rsize = param.rsize;
  Testbed bed(opt);

  // Pre-install some server-side files.
  SplitMix64 rng(param.seed);
  RefModel ref;
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    std::string path = "/f" + std::to_string(i);
    u64 size = 1_KiB + rng.next_below(200_KiB);
    std::vector<u8> init(size);
    for (auto& b : init) b = static_cast<u8>(rng.next());
    ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + path, blob::make_bytes(init)).is_ok());
    ref.files[path] = std::move(init);
    paths.push_back(path);
  }

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    for (int op = 0; op < 120; ++op) {
      const std::string& path = paths[rng.next_below(paths.size())];
      u64 fsize = ref.files[path].size();
      switch (rng.next_below(8)) {
        case 0:
        case 1:
        case 2: {  // read a random range and compare against the model
          if (fsize == 0) break;
          u64 off = rng.next_below(fsize);
          u64 len = 1 + rng.next_below(std::min<u64>(fsize - off, 64_KiB));
          auto got = session.read(p, path, off, len);
          ASSERT_TRUE(got.is_ok()) << got.status().to_string();
          std::vector<u8> got_bytes((*got)->size());
          (*got)->read(0, got_bytes);
          std::vector<u8> expect(ref.files[path].begin() + static_cast<long>(off),
                                 ref.files[path].begin() + static_cast<long>(off + got_bytes.size()));
          ASSERT_EQ(got_bytes, expect) << path << " @" << off << "+" << len;
          break;
        }
        case 3:
        case 4:
        case 5: {  // write a random range (may extend)
          u64 off = rng.next_below(fsize + 4_KiB);
          u64 len = 1 + rng.next_below(48_KiB);
          std::vector<u8> data(len);
          for (auto& b : data) b = static_cast<u8>(rng.next());
          ASSERT_TRUE(session.write(p, path, off, blob::make_bytes(data)).is_ok());
          ref.write(path, off, data);
          break;
        }
        case 6: {  // stat: size must match the model
          auto a = session.stat(p, path);
          ASSERT_TRUE(a.is_ok());
          ASSERT_EQ(a->size, ref.files[path].size()) << path;
          break;
        }
        case 7: {  // occasionally flush client staging
          ASSERT_TRUE(session.flush(p).is_ok());
          break;
        }
      }
    }
    // Session end: flush staged writes and run the middleware write-back.
    ASSERT_TRUE(session.flush(p).is_ok());
    ASSERT_TRUE(bed.signal_write_back(p).is_ok());
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  // After write-back, the image server must hold exactly the model content.
  for (const auto& [path, expect] : ref.files) {
    auto server = bed.image_fs().get_file(bed.image_dir() + path);
    ASSERT_TRUE(server.is_ok()) << path;
    ASSERT_EQ((*server)->size(), expect.size()) << path;
    std::vector<u8> got((*server)->size());
    (*server)->read(0, got);
    ASSERT_EQ(got, expect) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, StackConsistency,
    ::testing::Values(
        StackParam{1, cache::WritePolicy::kWriteBack, 32_KiB, 64_MiB},
        StackParam{2, cache::WritePolicy::kWriteBack, 8_KiB, 64_MiB},
        StackParam{3, cache::WritePolicy::kWriteBack, 32_KiB, 2_MiB},  // tiny cache: evictions
        StackParam{4, cache::WritePolicy::kWriteThrough, 32_KiB, 64_MiB},
        StackParam{5, cache::WritePolicy::kWriteThrough, 8_KiB, 2_MiB},
        StackParam{6, cache::WritePolicy::kWriteBack, 16_KiB, 8_MiB},
        StackParam{7, cache::WritePolicy::kWriteBack, 32_KiB, 64_MiB},
        StackParam{8, cache::WritePolicy::kWriteThrough, 32_KiB, 64_MiB}),
    [](const ::testing::TestParamInfo<StackParam>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.policy == cache::WritePolicy::kWriteBack ? "_wb" : "_wt") +
             "_r" + std::to_string(info.param.rsize / 1024) + "k_c" +
             std::to_string(info.param.cache_bytes / 1_MiB) + "m";
    });

// Fault-equivalence property: an async batched write-back stack riding out a
// seeded outage timeline (partition + server crash, degraded parking, replay,
// verifier re-sends) must converge to exactly the server bytes a faultless
// write-through stack produces from the identical op stream.
struct FaultOp {
  SimDuration gap = 0;  // virtual-time delay before the op
  int file = 0;
  u64 offset = 0;  // block-aligned: full-block writes never fetch upstream
  u64 len = 0;
  u64 fill_seed = 0;
  bool flush = false;  // flush the client instead of writing
};

class FaultEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(FaultEquivalence, AsyncWritebackUnderFaultsMatchesWriteThrough) {
  const u64 seed = GetParam();
  SplitMix64 rng(seed);

  // Pre-generate initial images and the op stream so both stacks consume
  // byte-identical inputs regardless of how their timelines diverge.
  std::vector<std::vector<u8>> init(3);
  for (auto& f : init) {
    f.resize(64_KiB + rng.next_below(160_KiB));
    for (auto& b : f) b = static_cast<u8>(rng.next());
  }
  std::vector<FaultOp> ops;
  for (int i = 0; i < 48; ++i) {
    FaultOp op;
    op.gap = (500 + rng.next_below(2000)) * kMillisecond;
    op.file = static_cast<int>(rng.next_below(init.size()));
    op.flush = rng.next_below(6) == 0;
    u64 blocks = (init[op.file].size() + 32_KiB - 1) / 32_KiB;
    op.offset = rng.next_below(blocks + 1) * 32_KiB;  // may extend the file
    op.len = (1 + rng.next_below(3)) * 32_KiB;
    op.fill_seed = rng.next();
    ops.push_back(op);
  }
  // Ops span roughly [0, 72] s: one partition mid-run; odd seeds also crash
  // the server (rebooting rolls the write verifier, so a flush caught
  // between its UNSTABLE writes and COMMIT re-sends the file).
  u64 part_start = 10 + rng.next_below(15);
  u64 part_len = 15 + rng.next_below(20);

  auto run_stack = [&](bool async_faulty) {
    TestbedOptions opt;
    opt.scenario = Scenario::kWanCached;
    opt.generate_image_meta = false;
    opt.block_cache.capacity_bytes = 1_MiB;  // tiny: evictions feed the flusher
    opt.block_cache.num_banks = 4;
    opt.block_cache.associativity = 4;
    if (async_faulty) {
      opt.write_policy = cache::WritePolicy::kWriteBack;
      opt.enable_async_writeback = true;
      opt.enable_fault_injection = true;
      opt.degraded_proxy = true;
      opt.fault_seed = seed;
      opt.fault.partitions.push_back(
          sim::FaultWindow{part_start * kSecond, (part_start + part_len) * kSecond});
      if (seed % 2 == 1) {
        opt.fault.crashes.push_back(
            sim::FaultWindow{(part_start + part_len + 10) * kSecond,
                             (part_start + part_len + 18) * kSecond});
      }
      opt.retry.timeout = 250 * kMillisecond;
      opt.retry.max_retransmits = 2;  // soft mount: kTimeout reaches the proxy
    } else {
      opt.write_policy = cache::WritePolicy::kWriteThrough;
    }
    Testbed bed(opt);
    for (std::size_t i = 0; i < init.size(); ++i) {
      EXPECT_TRUE(bed.image_fs()
                      .put_file(bed.image_dir() + "/f" + std::to_string(i),
                                blob::make_bytes(init[i]))
                      .is_ok());
    }
    bed.kernel().run_process("ops", [&](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p).is_ok());
      auto& session = bed.image_session();
      // Learn every name and attribute before the first fault window opens:
      // a proxy can only serve degraded LOOKUP/GETATTR for files it has seen.
      for (std::size_t i = 0; i < init.size(); ++i) {
        ASSERT_TRUE(session.stat(p, "/f" + std::to_string(i)).is_ok());
      }
      for (const FaultOp& op : ops) {
        p.delay(op.gap);
        std::string path = "/f" + std::to_string(op.file);
        if (op.flush) {
          ASSERT_TRUE(session.flush(p).is_ok());
          continue;
        }
        std::vector<u8> data(op.len);
        SplitMix64 fill(op.fill_seed);
        for (auto& b : data) b = static_cast<u8>(fill.next());
        Status wst = session.write(p, path, op.offset, blob::make_bytes(data));
        ASSERT_TRUE(wst.is_ok()) << path << " @" << op.offset << ": " << wst.to_string();
      }
      // Quiesce past every fault window, reconnect, and drain everything.
      p.delay_until(150 * kSecond);
      if (async_faulty) {
        ASSERT_TRUE(bed.client_proxy()->signal_reconnect(p).is_ok());
      }
      ASSERT_TRUE(session.flush(p).is_ok());
      ASSERT_TRUE(bed.signal_write_back(p).is_ok());
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
    if (async_faulty) {
      EXPECT_EQ(bed.client_proxy()->pending_writebacks(), 0u);
      EXPECT_EQ(bed.client_proxy()->pending_flush_blocks(), 0u);
    }
    std::vector<std::vector<u8>> out(init.size());
    for (std::size_t i = 0; i < init.size(); ++i) {
      auto f = bed.image_fs().get_file(bed.image_dir() + "/f" + std::to_string(i));
      EXPECT_TRUE(f.is_ok());
      out[i].resize((*f)->size());
      (*f)->read(0, out[i]);
    }
    return out;
  };

  std::vector<std::vector<u8>> faulty = run_stack(true);
  std::vector<std::vector<u8>> clean = run_stack(false);
  for (std::size_t i = 0; i < init.size(); ++i) {
    ASSERT_EQ(faulty[i].size(), clean[i].size()) << "/f" << i;
    ASSERT_EQ(faulty[i], clean[i]) << "/f" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultEquivalence,
                         ::testing::Values(11, 12, 13, 14, 15, 16),
                         [](const ::testing::TestParamInfo<u64>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Sharded-equivalence property: a 3-shard / 2-replica origin cluster riding
// out seeded per-server crash windows (async write-back, degraded proxy,
// quorum writes with failover + journal resync) must converge — on EVERY
// replica of each file's shard — to exactly the bytes a single faultless
// write-through origin produces from the identical op stream.
class ShardedEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(ShardedEquivalence, ClusterUnderCrashesMatchesSingleFaultlessOrigin) {
  const u64 seed = GetParam();
  SplitMix64 rng(seed);

  std::vector<std::vector<u8>> init(3);
  for (auto& f : init) {
    f.resize(64_KiB + rng.next_below(128_KiB));
    for (auto& b : f) b = static_cast<u8>(rng.next());
  }
  std::vector<FaultOp> ops;
  for (int i = 0; i < 48; ++i) {
    FaultOp op;
    op.gap = (500 + rng.next_below(2000)) * kMillisecond;
    op.file = static_cast<int>(rng.next_below(init.size()));
    op.flush = rng.next_below(6) == 0;
    u64 blocks = (init[static_cast<std::size_t>(op.file)].size() + 32_KiB - 1) / 32_KiB;
    op.offset = rng.next_below(blocks + 1) * 32_KiB;  // may extend the file
    op.len = (1 + rng.next_below(3)) * 32_KiB;
    op.fill_seed = rng.next();
    ops.push_back(op);
  }
  // Two per-server crash windows inside the op span: distinct victims so two
  // different shard neighbourhoods fail over within one run.
  int victim_a = static_cast<int>(rng.next_below(3));
  int victim_b = (victim_a + 1 + static_cast<int>(rng.next_below(2))) % 3;
  u64 crash_a = 8 + rng.next_below(10);
  u64 crash_b = 40 + rng.next_below(12);

  auto run_stack = [&](bool cluster_faulty) {
    TestbedOptions opt;
    opt.scenario = Scenario::kWanCached;
    opt.generate_image_meta = false;
    opt.block_cache.capacity_bytes = 1_MiB;  // tiny: evictions feed the flusher
    opt.block_cache.num_banks = 4;
    opt.block_cache.associativity = 4;
    if (cluster_faulty) {
      opt.origin_cluster = true;
      opt.origin_shards = 3;
      opt.origin_replicas = 2;
      opt.write_policy = cache::WritePolicy::kWriteBack;
      opt.enable_async_writeback = true;
      opt.enable_fault_injection = true;
      opt.degraded_proxy = true;
      opt.fault_seed = seed;
      opt.fault.crashes.push_back(
          sim::FaultWindow{static_cast<SimTime>(crash_a) * kSecond,
                           static_cast<SimTime>(crash_a + 8) * kSecond, victim_a});
      opt.fault.crashes.push_back(
          sim::FaultWindow{static_cast<SimTime>(crash_b) * kSecond,
                           static_cast<SimTime>(crash_b + 8) * kSecond, victim_b});
      opt.retry.timeout = 250 * kMillisecond;
      opt.retry.max_retransmits = 2;  // soft mount: kTimeout reaches the router
    } else {
      opt.write_policy = cache::WritePolicy::kWriteThrough;
    }
    Testbed bed(opt);
    for (std::size_t i = 0; i < init.size(); ++i) {
      EXPECT_TRUE(
          bed.put_image_file("/f" + std::to_string(i), blob::make_bytes(init[i]))
              .is_ok());
    }
    bed.kernel().run_process("ops", [&](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p).is_ok());
      auto& session = bed.image_session();
      for (std::size_t i = 0; i < init.size(); ++i) {
        ASSERT_TRUE(session.stat(p, "/f" + std::to_string(i)).is_ok());
      }
      for (const FaultOp& op : ops) {
        p.delay(op.gap);
        std::string path = "/f" + std::to_string(op.file);
        if (op.flush) {
          ASSERT_TRUE(session.flush(p).is_ok());
          continue;
        }
        std::vector<u8> data(op.len);
        SplitMix64 fill(op.fill_seed);
        for (auto& b : data) b = static_cast<u8>(fill.next());
        Status wst = session.write(p, path, op.offset, blob::make_bytes(data));
        ASSERT_TRUE(wst.is_ok()) << path << " @" << op.offset << ": " << wst.to_string();
      }
      // Quiesce past every crash window, reconnect, drain, and force the
      // router to reintegrate dead origins + replay their journals.
      p.delay_until(150 * kSecond);
      if (cluster_faulty) {
        ASSERT_TRUE(bed.client_proxy()->signal_reconnect(p).is_ok());
      }
      ASSERT_TRUE(session.flush(p).is_ok());
      ASSERT_TRUE(bed.signal_write_back(p).is_ok());
      if (cluster_faulty) bed.shard_router()->resync(p);
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
    if (cluster_faulty) {
      EXPECT_EQ(bed.client_proxy()->pending_writebacks(), 0u);
      EXPECT_EQ(bed.client_proxy()->pending_flush_blocks(), 0u);
      for (u32 j = 0; j < bed.origin_count(); ++j) {
        EXPECT_TRUE(bed.shard_router()->origin_live(j)) << "origin " << j;
        EXPECT_EQ(bed.shard_router()->journal_size(j), 0u) << "origin " << j;
      }
    }
    // Collect each file's bytes — from every replica of its home shard in
    // cluster mode (they must agree with each other), else from the single
    // origin.
    std::vector<std::vector<u8>> out(init.size());
    for (std::size_t i = 0; i < init.size(); ++i) {
      std::string abs = bed.image_dir() + "/f" + std::to_string(i);
      if (!cluster_faulty) {
        auto f = bed.image_fs().get_file(abs);
        EXPECT_TRUE(f.is_ok());
        out[i].resize((*f)->size());
        (*f)->read(0, out[i]);
        continue;
      }
      auto id = bed.origin_fs(0).resolve(abs);
      EXPECT_TRUE(id.is_ok()) << abs;
      if (!id.is_ok()) continue;
      u32 shard = bed.shard_router()->shard_of(bed.origin_server(0)->fh_of(*id));
      bool first = true;
      for (u32 j : bed.shard_router()->replicas_of(shard)) {
        auto f = bed.origin_fs(static_cast<int>(j)).get_file(abs);
        EXPECT_TRUE(f.is_ok()) << abs << " origin " << j;
        std::vector<u8> got((*f)->size());
        (*f)->read(0, got);
        if (first) {
          out[i] = std::move(got);
          first = false;
        } else {
          EXPECT_EQ(got, out[i]) << abs << ": replica " << j << " diverged";
        }
      }
    }
    return out;
  };

  std::vector<std::vector<u8>> cluster = run_stack(true);
  std::vector<std::vector<u8>> clean = run_stack(false);
  for (std::size_t i = 0; i < init.size(); ++i) {
    ASSERT_EQ(cluster[i].size(), clean[i].size()) << "/f" << i;
    ASSERT_EQ(cluster[i], clean[i]) << "/f" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedEquivalence,
                         ::testing::Values(21, 22, 23, 24),
                         [](const ::testing::TestParamInfo<u64>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Monotonicity property: enlarging the proxy cache never makes a re-read
// workload slower (same seed, same ops).
class CacheSizeMonotonic : public ::testing::TestWithParam<u64> {};

TEST_P(CacheSizeMonotonic, RereadTimeDecreasesWithCache) {
  u64 cache_bytes = GetParam();
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.block_cache.capacity_bytes = cache_bytes;
  opt.block_cache.num_banks = 8;
  Testbed bed(opt);
  ASSERT_TRUE(
      bed.image_fs().put_file(bed.image_dir() + "/data", blob::make_synthetic(9, 4_MiB, 0, 2.0)).is_ok());
  double reread_s = 0;
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    ASSERT_OK(bed.image_session().read_all(p, "/data"));
    bed.nfs_client()->drop_caches();
    SimTime t0 = p.now();
    ASSERT_OK(bed.image_session().read_all(p, "/data"));
    reread_s = to_seconds(p.now() - t0);
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  // Record into a static map and assert monotonicity across the sweep
  // (params run smallest-to-largest).
  static std::map<u64, double> results;
  for (const auto& [size, secs] : results) {
    if (size < cache_bytes) {
      EXPECT_LE(reread_s, secs * 1.05) << "cache " << cache_bytes << " vs " << size;
    }
  }
  results[cache_bytes] = reread_s;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeMonotonic,
                         ::testing::Values(1_MiB, 2_MiB, 4_MiB, 8_MiB, 16_MiB),
                         [](const ::testing::TestParamInfo<u64>& info) {
                           return std::to_string(info.param / 1_MiB) + "MiB";
                         });

// Redo-log property: random grain-aligned writes through a VM monitor with a
// redo log read back exactly like a reference overlay, and the base image
// never changes.
class RedoLogProperty : public ::testing::TestWithParam<u64> {};

TEST_P(RedoLogProperty, OverlaySemanticsMatchReference) {
  u64 seed = GetParam();
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  vfs::LocalFsSession session{fs, disk};
  vm::VmImageSpec spec;
  spec.memory_bytes = 2_MiB;
  spec.disk_bytes = 16_MiB;
  spec.seed = seed;
  auto paths = vm::install_image(fs, "/images", spec);
  ASSERT_TRUE(paths.is_ok());

  // Reference overlay: base content + byte map of writes.
  std::vector<u8> ref(16_MiB);
  vm::disk_blob(spec)->read(0, ref);
  u64 base_hash_before = blob::content_hash(*vm::disk_blob(spec));

  kernel.run_process("t", [&](sim::Process& p) {
    vm::VmMonitor vm;
    vm.attach(session, paths->cfg(), paths->vmss(), session, paths->flat_vmdk());
    auto redo = std::make_unique<vm::RedoLog>(session, "/r.redo");
    ASSERT_TRUE(redo->create(p).is_ok());
    vm.enable_redo_log(std::move(redo));

    SplitMix64 rng(seed * 31 + 1);
    for (int op = 0; op < 120; ++op) {
      bool is_write = rng.next_double() < 0.5;
      u64 grain = rng.next_below(16_MiB / 4_KiB);
      u64 off = grain * 4_KiB;
      u64 len = (1 + rng.next_below(4)) * 4_KiB;
      len = std::min<u64>(len, 16_MiB - off);
      if (is_write) {
        std::vector<u8> data(len);
        for (auto& b : data) b = static_cast<u8>(rng.next());
        ASSERT_TRUE(vm.disk_write(p, off, blob::make_bytes(data)).is_ok());
        std::copy(data.begin(), data.end(), ref.begin() + static_cast<long>(off));
      } else {
        auto got = vm.disk_read(p, off, len);
        ASSERT_TRUE(got.is_ok());
        std::vector<u8> got_bytes(len);
        (*got)->read(0, got_bytes);
        std::vector<u8> expect(ref.begin() + static_cast<long>(off),
                               ref.begin() + static_cast<long>(off + len));
        ASSERT_EQ(got_bytes, expect) << "op " << op << " off " << off;
      }
      if (op % 25 == 0) {
        ASSERT_TRUE(vm.sync(p).is_ok());
        if (op % 50 == 0) vm.guest_cache().drop_all();  // force redo reads
      }
    }
  });
  ASSERT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  // The golden image is untouched (non-persistent semantics).
  EXPECT_EQ(blob::content_hash(**fs.get_file(paths->flat_vmdk())), base_hash_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedoLogProperty, ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<u64>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Determinism property: the same parallel topology run twice gives the exact
// same virtual end time (the DES tie-breaks deterministically).
TEST(Determinism, ParallelClonesBitExact) {
  auto run_once = [] {
    TestbedOptions opt;
    opt.scenario = Scenario::kWanCached;
    opt.compute_nodes = 3;
    opt.block_cache.capacity_bytes = 128_MiB;
    Testbed bed(opt);
    std::vector<vm::VmImagePaths> images;
    for (int i = 0; i < 3; ++i) {
      vm::VmImageSpec spec;
      spec.name = "vm" + std::to_string(i);
      spec.seed = 7 + static_cast<u64>(i);
      spec.memory_bytes = 4_MiB;
      spec.disk_bytes = 32_MiB;
      images.push_back(*bed.install_image(spec));
    }
    for (int i = 0; i < 3; ++i) {
      bed.kernel().spawn("c" + std::to_string(i), [&bed, &images, i](sim::Process& p) {
        ASSERT_TRUE(bed.mount(p, i).is_ok());
        vm::CloneConfig cfg;
        cfg.image = images[static_cast<size_t>(i)];
        cfg.clone_dir = "/clones/x";
        ASSERT_TRUE(
            vm::VmCloner::clone(p, bed.image_session(i), bed.local_session(i), cfg).is_ok());
      });
    }
    return bed.kernel().run();
  };
  SimTime a = run_once();
  SimTime b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

// ---- cache index equivalence ------------------------------------------------
// The per-file frame index (file_head_ + intrusive lists + running
// resident_bytes_ gauge) is a pure indexing change: every observable —
// hit/miss results, eviction victims, writeback order, counters,
// resident_bytes, per-file residency — must match the old-style structure
// that answered those queries with linear scans. RefCache is that old
// structure: same set mapping, same LRU, no index, all queries O(capacity).

struct WbEvent {
  u64 file_key;
  u64 block;
  u64 size;
  bool operator==(const WbEvent& o) const {
    return file_key == o.file_key && block == o.block && size == o.size;
  }
};

class RefCache {
 public:
  explicit RefCache(const cache::BlockCacheConfig& cfg) : cfg_(cfg) {
    u64 total = std::max<u64>(cfg_.associativity, cfg_.capacity_bytes / cfg_.block_size);
    num_sets_ = static_cast<u32>(std::max<u64>(1, total / cfg_.associativity));
    frames_.resize(static_cast<std::size_t>(num_sets_) * cfg_.associativity);
  }

  bool lookup(const cache::BlockId& id) {
    Frame* f = find_(id);
    if (f == nullptr) {
      ++misses;
      return false;
    }
    ++hits;
    f->last_used = ++tick_;
    return true;
  }

  void insert(const cache::BlockId& id, u64 size, bool dirty) {
    if (cfg_.policy == cache::WritePolicy::kWriteThrough && dirty) {
      ++writebacks;
      log.push_back({id.file_key, id.block, size});
      dirty = false;
    }
    Frame* base = &frames_[static_cast<std::size_t>(set_index_(id)) * cfg_.associativity];
    Frame* slot = nullptr;
    for (u32 w = 0; w < cfg_.associativity; ++w) {
      if (base[w].valid && base[w].id == id) {
        slot = &base[w];
        break;
      }
    }
    if (slot == nullptr) {
      for (u32 w = 0; w < cfg_.associativity; ++w) {
        if (!base[w].valid) {
          slot = &base[w];
          break;
        }
      }
      if (slot == nullptr) {
        slot = base;
        for (u32 w = 1; w < cfg_.associativity; ++w) {
          if (base[w].last_used < slot->last_used) slot = &base[w];
        }
        evict_(*slot);
      }
      ++resident;
    } else if (slot->dirty && !dirty) {
      --dirty_blocks;
      slot->dirty = false;
    }
    slot->valid = true;
    slot->id = id;
    slot->size = size;
    slot->last_used = ++tick_;
    if (dirty && !slot->dirty) {
      slot->dirty = true;
      ++dirty_blocks;
    }
  }

  bool merge(const cache::BlockId& id, u64 offset_in_block, u64 size) {
    Frame* f = find_(id);
    if (f == nullptr) return false;
    f->size = std::max(f->size, offset_in_block + size);
    f->last_used = ++tick_;
    if (!f->dirty) {
      f->dirty = true;
      ++dirty_blocks;
    }
    return true;
  }

  void write_back_all() {
    for (Frame& f : frames_) {
      if (f.valid && f.dirty) {
        ++writebacks;
        log.push_back({f.id.file_key, f.id.block, f.size});
        f.dirty = false;
        --dirty_blocks;
      }
    }
  }

  void invalidate_file(u64 file_key) {
    // Old style: full linear scan of every frame.
    for (Frame& f : frames_) {
      if (f.valid && f.id.file_key == file_key) {
        if (f.dirty) --dirty_blocks;
        f.valid = false;
        f.dirty = false;
        f.size = 0;
        --resident;
      }
    }
  }

  [[nodiscard]] bool contains(const cache::BlockId& id) const {
    for (const Frame& f : frames_) {
      if (f.valid && f.id == id) return true;
    }
    return false;
  }

  [[nodiscard]] u64 resident_bytes() const {
    u64 total = 0;
    for (const Frame& f : frames_) {
      if (f.valid) total += f.size;
    }
    return total;
  }

  [[nodiscard]] u64 file_resident_blocks(u64 file_key) const {
    u64 n = 0;
    for (const Frame& f : frames_) {
      if (f.valid && f.id.file_key == file_key) ++n;
    }
    return n;
  }

  u64 hits = 0, misses = 0, evictions = 0, writebacks = 0;
  u64 dirty_blocks = 0, resident = 0;
  std::vector<WbEvent> log;

 private:
  struct Frame {
    bool valid = false;
    bool dirty = false;
    cache::BlockId id;
    u64 size = 0;
    u64 last_used = 0;
  };

  [[nodiscard]] u32 set_index_(const cache::BlockId& id) const {
    return static_cast<u32>((mix64(id.file_key) + id.block) % num_sets_);
  }

  Frame* find_(const cache::BlockId& id) {
    Frame* base = &frames_[static_cast<std::size_t>(set_index_(id)) * cfg_.associativity];
    for (u32 w = 0; w < cfg_.associativity; ++w) {
      if (base[w].valid && base[w].id == id) return &base[w];
    }
    return nullptr;
  }

  void evict_(Frame& victim) {
    ++evictions;
    if (victim.dirty) {
      ++writebacks;
      --dirty_blocks;
      log.push_back({victim.id.file_key, victim.id.block, victim.size});
    }
    victim.valid = false;
    victim.dirty = false;
    victim.size = 0;
    --resident;
  }

  cache::BlockCacheConfig cfg_;
  u32 num_sets_ = 0;
  std::vector<Frame> frames_;
  u64 tick_ = 0;
};

struct IndexParam {
  u64 seed;
  cache::WritePolicy policy;
};

class CacheIndexEquivalence : public ::testing::TestWithParam<IndexParam> {};

TEST_P(CacheIndexEquivalence, RandomOpsMatchLinearScanReference) {
  IndexParam param = GetParam();
  sim::SimKernel kernel;
  sim::DiskConfig dcfg;
  dcfg.seek = 0;
  dcfg.seq_overhead = 0;
  dcfg.bytes_per_sec = 1e15;
  sim::DiskModel disk(kernel, "d", dcfg);

  cache::BlockCacheConfig cfg;
  cfg.capacity_bytes = 128_KiB;  // 32 frames: evictions happen constantly
  cfg.block_size = 4_KiB;
  cfg.num_banks = 2;
  cfg.associativity = 4;
  cfg.policy = param.policy;
  cfg.charge_bank_creation = false;
  cache::ProxyDiskCache cache(disk, cfg);

  std::vector<WbEvent> real_log;
  cache.set_writeback([&](sim::Process&, const cache::BlockId& id,
                          const blob::BlobRef& data) {
    real_log.push_back({id.file_key, id.block, data ? data->size() : 0});
    return Status::ok();
  });
  RefCache ref(cfg);

  constexpr u64 kFiles = 6;
  constexpr u64 kBlocks = 24;
  kernel.run_process("replay", [&](sim::Process& p) {
    SplitMix64 rng(param.seed);
    for (int op = 0; op < 3000; ++op) {
      cache::BlockId id{1000 + rng.next_below(kFiles), rng.next_below(kBlocks)};
      switch (rng.next_below(10)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // insert, sometimes dirty, varying payload size
          u64 size = 1 + rng.next_below(cfg.block_size);
          bool dirty = rng.next_below(2) == 0;
          ASSERT_TRUE(cache.insert(p, id, blob::make_zero(size), dirty).is_ok());
          ref.insert(id, size, dirty);
          break;
        }
        case 4:
        case 5:
        case 6: {  // lookup
          bool hit = cache.lookup(p, id).has_value();
          EXPECT_EQ(hit, ref.lookup(id)) << "op " << op;
          break;
        }
        case 7: {  // partial-block merge on a (maybe) present block
          u64 off = rng.next_below(cfg.block_size / 2);
          u64 len = 1 + rng.next_below(cfg.block_size - off);
          auto merged = cache.merge(p, id, off, blob::make_zero(len));
          EXPECT_EQ(merged.is_ok(), ref.merge(id, off, len)) << "op " << op;
          break;
        }
        case 8: {  // invalidate one file
          cache.invalidate_file(id.file_key);
          ref.invalidate_file(id.file_key);
          break;
        }
        case 9: {  // occasionally flush everything
          if (rng.next_below(4) == 0) {
            ASSERT_TRUE(cache.write_back_all(p).is_ok());
            ref.write_back_all();
          }
          break;
        }
      }
      // Counters must track the reference exactly, op for op.
      ASSERT_EQ(cache.hits(), ref.hits) << "op " << op;
      ASSERT_EQ(cache.misses(), ref.misses) << "op " << op;
      ASSERT_EQ(cache.evictions(), ref.evictions) << "op " << op;
      ASSERT_EQ(cache.writebacks(), ref.writebacks) << "op " << op;
      ASSERT_EQ(cache.dirty_blocks(), ref.dirty_blocks) << "op " << op;
      ASSERT_EQ(cache.resident_blocks(), ref.resident) << "op " << op;
      ASSERT_EQ(cache.resident_bytes(), ref.resident_bytes()) << "op " << op;
      ASSERT_EQ(real_log.size(), ref.log.size()) << "op " << op;
      if (op % 100 == 0) {
        for (u64 f = 0; f < kFiles; ++f) {
          EXPECT_EQ(cache.file_resident_blocks(1000 + f),
                    ref.file_resident_blocks(1000 + f))
              << "op " << op << " file " << f;
        }
        cache::BlockId probe{1000 + rng.next_below(kFiles), rng.next_below(kBlocks)};
        EXPECT_EQ(cache.contains(probe), ref.contains(probe)) << "op " << op;
      }
    }
    // The full writeback sequences — order included — must be identical.
    ASSERT_EQ(real_log.size(), ref.log.size());
    for (std::size_t i = 0; i < real_log.size(); ++i) {
      EXPECT_EQ(real_log[i], ref.log[i]) << "event " << i;
    }
    // Drain: everything dirty goes upstream, nothing left behind.
    ASSERT_TRUE(cache.flush_and_invalidate(p).is_ok());
    EXPECT_EQ(cache.dirty_blocks(), 0u);
    EXPECT_EQ(cache.resident_blocks(), 0u);
    EXPECT_EQ(cache.resident_bytes(), 0u);
    for (u64 f = 0; f < kFiles; ++f) {
      EXPECT_EQ(cache.file_resident_blocks(1000 + f), 0u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, CacheIndexEquivalence,
    ::testing::Values(IndexParam{11, cache::WritePolicy::kWriteBack},
                      IndexParam{12, cache::WritePolicy::kWriteBack},
                      IndexParam{13, cache::WritePolicy::kWriteThrough},
                      IndexParam{14, cache::WritePolicy::kWriteThrough}),
    [](const auto& info) {
      return std::string(info.param.policy == cache::WritePolicy::kWriteBack ? "wb"
                                                                             : "wt") +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gvfs::core
