// Property-based tests: randomized operation streams driven through the full
// GVFS stack, checked against a simple reference model. Parameterized over
// seeds, write policies and transfer sizes (TEST_P sweeps).
#include <gtest/gtest.h>

#include <map>

#include "blob/blob.h"
#include "common/rng.h"
#include "gvfs/testbed.h"
#include "vfs/local_session.h"
#include "vm/vm_cloner.h"
#include "vm/vm_image.h"
#include "vm/vm_monitor.h"
#include "vm/redo_log.h"

namespace gvfs::core {
namespace {

// Reference model: plain byte vectors per path.
struct RefModel {
  std::map<std::string, std::vector<u8>> files;

  void write(const std::string& path, u64 off, const std::vector<u8>& data) {
    auto& f = files[path];
    if (f.size() < off + data.size()) f.resize(off + data.size(), 0);
    std::copy(data.begin(), data.end(), f.begin() + static_cast<long>(off));
  }
  void truncate(const std::string& path, u64 size) { files[path].resize(size, 0); }
};

struct StackParam {
  u64 seed;
  cache::WritePolicy policy;
  u32 rsize;
  u64 cache_bytes;
};

class StackConsistency : public ::testing::TestWithParam<StackParam> {};

TEST_P(StackConsistency, RandomOpsMatchReferenceAndServerConverges) {
  StackParam param = GetParam();
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.write_policy = param.policy;
  opt.block_cache.capacity_bytes = param.cache_bytes;
  opt.block_cache.num_banks = 8;
  opt.block_cache.associativity = 4;
  opt.net.gvfs_rsize = param.rsize;
  Testbed bed(opt);

  // Pre-install some server-side files.
  SplitMix64 rng(param.seed);
  RefModel ref;
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    std::string path = "/f" + std::to_string(i);
    u64 size = 1_KiB + rng.next_below(200_KiB);
    std::vector<u8> init(size);
    for (auto& b : init) b = static_cast<u8>(rng.next());
    ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + path, blob::make_bytes(init)).is_ok());
    ref.files[path] = std::move(init);
    paths.push_back(path);
  }

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    for (int op = 0; op < 120; ++op) {
      const std::string& path = paths[rng.next_below(paths.size())];
      u64 fsize = ref.files[path].size();
      switch (rng.next_below(8)) {
        case 0:
        case 1:
        case 2: {  // read a random range and compare against the model
          if (fsize == 0) break;
          u64 off = rng.next_below(fsize);
          u64 len = 1 + rng.next_below(std::min<u64>(fsize - off, 64_KiB));
          auto got = session.read(p, path, off, len);
          ASSERT_TRUE(got.is_ok()) << got.status().to_string();
          std::vector<u8> got_bytes((*got)->size());
          (*got)->read(0, got_bytes);
          std::vector<u8> expect(ref.files[path].begin() + static_cast<long>(off),
                                 ref.files[path].begin() + static_cast<long>(off + got_bytes.size()));
          ASSERT_EQ(got_bytes, expect) << path << " @" << off << "+" << len;
          break;
        }
        case 3:
        case 4:
        case 5: {  // write a random range (may extend)
          u64 off = rng.next_below(fsize + 4_KiB);
          u64 len = 1 + rng.next_below(48_KiB);
          std::vector<u8> data(len);
          for (auto& b : data) b = static_cast<u8>(rng.next());
          ASSERT_TRUE(session.write(p, path, off, blob::make_bytes(data)).is_ok());
          ref.write(path, off, data);
          break;
        }
        case 6: {  // stat: size must match the model
          auto a = session.stat(p, path);
          ASSERT_TRUE(a.is_ok());
          ASSERT_EQ(a->size, ref.files[path].size()) << path;
          break;
        }
        case 7: {  // occasionally flush client staging
          ASSERT_TRUE(session.flush(p).is_ok());
          break;
        }
      }
    }
    // Session end: flush staged writes and run the middleware write-back.
    ASSERT_TRUE(session.flush(p).is_ok());
    ASSERT_TRUE(bed.signal_write_back(p).is_ok());
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0);

  // After write-back, the image server must hold exactly the model content.
  for (const auto& [path, expect] : ref.files) {
    auto server = bed.image_fs().get_file(bed.image_dir() + path);
    ASSERT_TRUE(server.is_ok()) << path;
    ASSERT_EQ((*server)->size(), expect.size()) << path;
    std::vector<u8> got((*server)->size());
    (*server)->read(0, got);
    ASSERT_EQ(got, expect) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, StackConsistency,
    ::testing::Values(
        StackParam{1, cache::WritePolicy::kWriteBack, 32_KiB, 64_MiB},
        StackParam{2, cache::WritePolicy::kWriteBack, 8_KiB, 64_MiB},
        StackParam{3, cache::WritePolicy::kWriteBack, 32_KiB, 2_MiB},  // tiny cache: evictions
        StackParam{4, cache::WritePolicy::kWriteThrough, 32_KiB, 64_MiB},
        StackParam{5, cache::WritePolicy::kWriteThrough, 8_KiB, 2_MiB},
        StackParam{6, cache::WritePolicy::kWriteBack, 16_KiB, 8_MiB},
        StackParam{7, cache::WritePolicy::kWriteBack, 32_KiB, 64_MiB},
        StackParam{8, cache::WritePolicy::kWriteThrough, 32_KiB, 64_MiB}),
    [](const ::testing::TestParamInfo<StackParam>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.policy == cache::WritePolicy::kWriteBack ? "_wb" : "_wt") +
             "_r" + std::to_string(info.param.rsize / 1024) + "k_c" +
             std::to_string(info.param.cache_bytes / 1_MiB) + "m";
    });

// Monotonicity property: enlarging the proxy cache never makes a re-read
// workload slower (same seed, same ops).
class CacheSizeMonotonic : public ::testing::TestWithParam<u64> {};

TEST_P(CacheSizeMonotonic, RereadTimeDecreasesWithCache) {
  u64 cache_bytes = GetParam();
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.block_cache.capacity_bytes = cache_bytes;
  opt.block_cache.num_banks = 8;
  Testbed bed(opt);
  ASSERT_TRUE(
      bed.image_fs().put_file(bed.image_dir() + "/data", blob::make_synthetic(9, 4_MiB, 0, 2.0)).is_ok());
  double reread_s = 0;
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    bed.image_session().read_all(p, "/data");
    bed.nfs_client()->drop_caches();
    SimTime t0 = p.now();
    bed.image_session().read_all(p, "/data");
    reread_s = to_seconds(p.now() - t0);
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0);
  // Record into a static map and assert monotonicity across the sweep
  // (params run smallest-to-largest).
  static std::map<u64, double> results;
  for (const auto& [size, secs] : results) {
    if (size < cache_bytes) {
      EXPECT_LE(reread_s, secs * 1.05) << "cache " << cache_bytes << " vs " << size;
    }
  }
  results[cache_bytes] = reread_s;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeMonotonic,
                         ::testing::Values(1_MiB, 2_MiB, 4_MiB, 8_MiB, 16_MiB),
                         [](const ::testing::TestParamInfo<u64>& info) {
                           return std::to_string(info.param / 1_MiB) + "MiB";
                         });

// Redo-log property: random grain-aligned writes through a VM monitor with a
// redo log read back exactly like a reference overlay, and the base image
// never changes.
class RedoLogProperty : public ::testing::TestWithParam<u64> {};

TEST_P(RedoLogProperty, OverlaySemanticsMatchReference) {
  u64 seed = GetParam();
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  vfs::LocalFsSession session{fs, disk};
  vm::VmImageSpec spec;
  spec.memory_bytes = 2_MiB;
  spec.disk_bytes = 16_MiB;
  spec.seed = seed;
  auto paths = vm::install_image(fs, "/images", spec);
  ASSERT_TRUE(paths.is_ok());

  // Reference overlay: base content + byte map of writes.
  std::vector<u8> ref(16_MiB);
  vm::disk_blob(spec)->read(0, ref);
  u64 base_hash_before = blob::content_hash(*vm::disk_blob(spec));

  kernel.run_process("t", [&](sim::Process& p) {
    vm::VmMonitor vm;
    vm.attach(session, paths->cfg(), paths->vmss(), session, paths->flat_vmdk());
    auto redo = std::make_unique<vm::RedoLog>(session, "/r.redo");
    ASSERT_TRUE(redo->create(p).is_ok());
    vm.enable_redo_log(std::move(redo));

    SplitMix64 rng(seed * 31 + 1);
    for (int op = 0; op < 120; ++op) {
      bool is_write = rng.next_double() < 0.5;
      u64 grain = rng.next_below(16_MiB / 4_KiB);
      u64 off = grain * 4_KiB;
      u64 len = (1 + rng.next_below(4)) * 4_KiB;
      len = std::min<u64>(len, 16_MiB - off);
      if (is_write) {
        std::vector<u8> data(len);
        for (auto& b : data) b = static_cast<u8>(rng.next());
        ASSERT_TRUE(vm.disk_write(p, off, blob::make_bytes(data)).is_ok());
        std::copy(data.begin(), data.end(), ref.begin() + static_cast<long>(off));
      } else {
        auto got = vm.disk_read(p, off, len);
        ASSERT_TRUE(got.is_ok());
        std::vector<u8> got_bytes(len);
        (*got)->read(0, got_bytes);
        std::vector<u8> expect(ref.begin() + static_cast<long>(off),
                               ref.begin() + static_cast<long>(off + len));
        ASSERT_EQ(got_bytes, expect) << "op " << op << " off " << off;
      }
      if (op % 25 == 0) {
        ASSERT_TRUE(vm.sync(p).is_ok());
        if (op % 50 == 0) vm.guest_cache().drop_all();  // force redo reads
      }
    }
  });
  ASSERT_EQ(kernel.failed_processes(), 0);
  // The golden image is untouched (non-persistent semantics).
  EXPECT_EQ(blob::content_hash(**fs.get_file(paths->flat_vmdk())), base_hash_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedoLogProperty, ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<u64>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Determinism property: the same parallel topology run twice gives the exact
// same virtual end time (the DES tie-breaks deterministically).
TEST(Determinism, ParallelClonesBitExact) {
  auto run_once = [] {
    TestbedOptions opt;
    opt.scenario = Scenario::kWanCached;
    opt.compute_nodes = 3;
    opt.block_cache.capacity_bytes = 128_MiB;
    Testbed bed(opt);
    std::vector<vm::VmImagePaths> images;
    for (int i = 0; i < 3; ++i) {
      vm::VmImageSpec spec;
      spec.name = "vm" + std::to_string(i);
      spec.seed = 7 + static_cast<u64>(i);
      spec.memory_bytes = 4_MiB;
      spec.disk_bytes = 32_MiB;
      images.push_back(*bed.install_image(spec));
    }
    for (int i = 0; i < 3; ++i) {
      bed.kernel().spawn("c" + std::to_string(i), [&bed, &images, i](sim::Process& p) {
        ASSERT_TRUE(bed.mount(p, i).is_ok());
        vm::CloneConfig cfg;
        cfg.image = images[static_cast<size_t>(i)];
        cfg.clone_dir = "/clones/x";
        ASSERT_TRUE(
            vm::VmCloner::clone(p, bed.image_session(i), bed.local_session(i), cfg).is_ok());
      });
    }
    return bed.kernel().run();
  };
  SimTime a = run_once();
  SimTime b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

}  // namespace
}  // namespace gvfs::core
