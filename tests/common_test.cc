// Unit tests for the common foundation: Status/Result, hashing, RNG,
// formatting and streaming statistics.
#include <gtest/gtest.h>

#include <set>

#include "common/flags.h"
#include "common/hash.h"
#include "common/mutation_epoch.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/types.h"

namespace gvfs {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = err(ErrCode::kNoEnt, "missing.txt");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrCode::kNoEnt);
  EXPECT_EQ(s.to_string(), "NOENT: missing.txt");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(err(ErrCode::kIo, "a"), err(ErrCode::kIo, "b"));
  EXPECT_FALSE(err(ErrCode::kIo) == err(ErrCode::kStale));
}

TEST(Status, EveryCodeHasAName) {
  for (ErrCode c : {ErrCode::kOk, ErrCode::kPerm, ErrCode::kNoEnt, ErrCode::kIo,
                    ErrCode::kAccess, ErrCode::kExist, ErrCode::kNotDir,
                    ErrCode::kIsDir, ErrCode::kInval, ErrCode::kFBig,
                    ErrCode::kNoSpc, ErrCode::kRoFs, ErrCode::kNameTooLong,
                    ErrCode::kNotEmpty, ErrCode::kStale, ErrCode::kBadHandle,
                    ErrCode::kNotSupported, ErrCode::kBadXdr, ErrCode::kRpcMismatch,
                    ErrCode::kAuthError, ErrCode::kTimeout, ErrCode::kClosed,
                    ErrCode::kInternal}) {
    EXPECT_STRNE(err_name(c), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = err(ErrCode::kStale, "gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrCode::kStale);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> half(int v) {
  if (v % 2 != 0) return err(ErrCode::kInval, "odd");
  return v / 2;
}

Status quarter(int v, int* out) {
  GVFS_ASSIGN_OR_RETURN(int h, half(v));
  GVFS_ASSIGN_OR_RETURN(int q, half(h));
  *out = q;
  return Status::ok();
}

TEST(Result, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(quarter(8, &out).is_ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(quarter(6, &out).code(), ErrCode::kInval);
}

TEST(Types, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, u64{2} * 1024 * 1024 * 1024);
}

TEST(Types, TransferTime) {
  // 1 MiB at 1 MiB/s = 1 s.
  EXPECT_EQ(transfer_time(1_MiB, static_cast<double>(1_MiB)), kSecond);
  EXPECT_EQ(transfer_time(0, 100.0), 0);
  // Tiny transfers round up to at least 1 ns.
  EXPECT_GE(transfer_time(1, 1e12), 1);
}

TEST(Types, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(3.25)), 3.25);
  EXPECT_EQ(from_millis(1.0), kMillisecond);
}

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view{}), kFnvOffset);
  // Well-known vector: "a" -> 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64(std::string_view{"a"}), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Hash, Mix64Bijective) {
  std::set<u64> seen;
  for (u64 i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyRight) {
  SplitMix64 rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, StatelessRandStable) {
  EXPECT_EQ(stateless_rand(1, 2), stateless_rand(1, 2));
  EXPECT_NE(stateless_rand(1, 2), stateless_rand(1, 3));
  EXPECT_NE(stateless_rand(1, 2), stateless_rand(2, 2));
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Strings, FmtDurations) {
  EXPECT_EQ(fmt_mmss(205), "03:25");
  EXPECT_EQ(fmt_hhmm(3725), "1:02:05");
}

TEST(Strings, FmtBytes) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(8_KiB), "8 KB");
  EXPECT_EQ(fmt_bytes(320_MiB), "320 MB");
  EXPECT_EQ(fmt_bytes(u64{1638} * 1_MiB), "1.6 GB");
}

TEST(Strings, SplitAndPaths) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(join_path("/exports", "vm.vmss"), "/exports/vm.vmss");
  EXPECT_EQ(join_path("/exports/", "vm.vmss"), "/exports/vm.vmss");
  EXPECT_EQ(path_basename("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(path_dirname("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(path_dirname("/a"), "/");
  EXPECT_EQ(path_dirname("plain"), "");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("bar", "foobar"));
}

TEST(Flags, ParsesTypedValues) {
  std::string s = "default";
  u64 big = 1;
  u32 small = 2;
  double d = 0.5;
  bool flag = false;
  FlagParser p("test", "test flags");
  p.add_string("name", &s, "a string");
  p.add_u64("big", &big, "a u64");
  p.add_u32("small", &small, "a u32");
  p.add_double("ratio", &d, "a double");
  p.add_bool("verbose", &flag, "a bool");
  const char* argv[] = {"--name=hello", "--big", "1048576", "--small=7",
                        "--ratio=2.5", "--verbose", "positional"};
  ASSERT_TRUE(p.parse(7, argv).is_ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(big, 1048576u);
  EXPECT_EQ(small, 7u);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(flag);
  ASSERT_EQ(p.positionals().size(), 1u);
  EXPECT_EQ(p.positionals()[0], "positional");
}

TEST(Flags, RejectsUnknownAndMalformed) {
  u64 v = 0;
  FlagParser p("test", "test");
  p.add_u64("n", &v, "num");
  {
    const char* argv[] = {"--nope=1"};
    EXPECT_FALSE(p.parse(1, argv).is_ok());
  }
  {
    const char* argv[] = {"--n=abc"};
    EXPECT_FALSE(p.parse(1, argv).is_ok());
  }
  {
    const char* argv[] = {"--n"};
    EXPECT_FALSE(p.parse(1, argv).is_ok());  // missing value
  }
}

TEST(Flags, BoolFormsAndHelp) {
  bool b = true;
  FlagParser p("test", "test");
  p.add_bool("b", &b, "a bool");
  const char* argv[] = {"--b=false", "--help"};
  ASSERT_TRUE(p.parse(2, argv).is_ok());
  EXPECT_FALSE(b);
  EXPECT_TRUE(p.help_requested());
  EXPECT_NE(p.usage().find("--b"), std::string::npos);
}

TEST(Stats, RunningStat) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(MutationEpoch, BumpAdvancesOnlyWhenCheckingIsCompiledIn) {
  MutationEpoch e;
  u64 before = e.value();
  e.bump();
#ifdef GVFS_YIELD_CHECK
  EXPECT_EQ(e.value(), before + 1);
#else
  EXPECT_EQ(e.value(), before);  // zero-cost: compiles to nothing in release
#endif
}

TEST(MutationEpoch, GuardPassesWhenEpochHoldsStill) {
  MutationEpoch e;
  e.bump();
  {
    YieldGuard guard(e);
    // No mutation inside the guarded scope: the dtor assertion must not fire.
  }
  {
    YieldGuard guard(e);
  }
  SUCCEED();
}

#ifdef GVFS_YIELD_CHECK
TEST(MutationEpochDeathTest, GuardFiresOnMutationInsideGuardedScope) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        MutationEpoch e;
        YieldGuard guard(e);
        e.bump();  // simulated yield + structural mutation under the guard
      },
      "analyzer-proven yield-free scope");
}
#endif

}  // namespace
}  // namespace gvfs
