// Tests for the implemented §6 future-work extensions (VM migration, proxy
// read-ahead, parallel-stream file channel), the trace-replay workload, and
// the NFS completeness procedures (LINK / READDIRPLUS / PATHCONF).
#include <gtest/gtest.h>

#include "test_util.h"

#include "gvfs/migration.h"
#include "gvfs/testbed.h"
#include "nfs/nfs_client.h"
#include "nfs/nfs_server.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

namespace gvfs {
namespace {

// ---------------------------------------------------------------- migration --

TEST(Migration, MovesRunningVmBetweenNodes) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.compute_nodes = 2;
  core::Testbed bed(opt);
  vm::VmImageSpec spec;
  spec.name = "migrant";
  spec.memory_bytes = 8_MiB;
  spec.disk_bytes = 64_MiB;
  auto image = bed.install_image(spec);
  ASSERT_TRUE(image.is_ok());

  auto new_state = blob::make_synthetic(0x99, spec.memory_bytes, 0.8, 3.0);
  bed.kernel().run_process("migrate", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p, 0).is_ok());
    // Bring the VM up on node 0.
    vfs::FsSession& src = bed.image_session(0);
    vm::VmMonitor src_vm;
    src_vm.attach(src, image->cfg(), image->vmss(), src, image->flat_vmdk());
    ASSERT_TRUE(src_vm.resume(p).is_ok());
    // Dirty some guest state so the caches have work to do.
    ASSERT_TRUE(src_vm.disk_write(p, 1_MiB, blob::make_synthetic(5, 64_KiB, 0, 2.0)).is_ok());

    auto result = core::migrate_vm(p, bed, *image, src_vm, new_state, 0, 1);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_TRUE(result->vm->resumed());
    EXPECT_FALSE(src_vm.resumed());
    EXPECT_GT(result->timing.suspend_s, 0.0);
    EXPECT_GT(result->timing.resume_s, 0.0);
    EXPECT_GT(result->timing.total_s(), 0.0);
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  // The image server holds the migrated memory state.
  auto server_state = bed.image_fs().get_file(bed.image_dir() + image->vmss());
  ASSERT_TRUE(server_state.is_ok());
  EXPECT_EQ(blob::content_hash(**server_state), blob::content_hash(*new_state));
  // And the meta-data was refreshed to describe the NEW state.
  auto meta_raw =
      bed.image_fs().get_file(meta::MetaFile::meta_path_for(bed.image_dir() + image->vmss()));
  ASSERT_TRUE(meta_raw.is_ok());
  auto parsed = meta::MetaFile::parse(**meta_raw);
  ASSERT_TRUE(parsed.is_ok());
  for (u64 off = 0; off < spec.memory_bytes; off += 16_KiB) {
    ASSERT_EQ(parsed->range_is_zero(off, 8_KiB), new_state->is_zero_range(off, 8_KiB))
        << off;
  }
}

TEST(Migration, DestinationSeesFreshStateDespiteWarmCaches) {
  // Regression: the destination once fetched the image earlier; after
  // migration its caches must not serve the stale memory state.
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.compute_nodes = 2;
  core::Testbed bed(opt);
  vm::VmImageSpec spec;
  spec.name = "migrant";
  spec.memory_bytes = 4_MiB;
  spec.disk_bytes = 32_MiB;
  auto image = bed.install_image(spec);
  ASSERT_TRUE(image.is_ok());
  auto new_state = blob::make_synthetic(0xf4e54, spec.memory_bytes, 0.7, 3.0);

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p, 0).is_ok());
    ASSERT_TRUE(bed.mount(p, 1).is_ok());
    // Node 1 reads the OLD state into its caches.
    ASSERT_OK(bed.image_session(1).read_all(p, image->vmss()));
    // Node 0 runs the VM and migrates it with new state.
    vfs::FsSession& src = bed.image_session(0);
    vm::VmMonitor src_vm;
    src_vm.attach(src, image->cfg(), image->vmss(), src, image->flat_vmdk());
    ASSERT_TRUE(src_vm.resume(p).is_ok());
    auto result = core::migrate_vm(p, bed, *image, src_vm, new_state, 0, 1);
    ASSERT_TRUE(result.is_ok());
    // Read the state through node 1's session: must be the new content.
    bed.nfs_client(1)->drop_caches();
    auto via_dst = bed.image_session(1).read_all(p, image->vmss());
    ASSERT_TRUE(via_dst.is_ok());
    EXPECT_EQ(blob::content_hash(**via_dst), blob::content_hash(*new_state));
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
}

// ----------------------------------------------------------------- prefetch --

TEST(Prefetch, SequentialScanFasterWithReadAhead) {
  double times[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    core::TestbedOptions opt;
    opt.scenario = core::Scenario::kWanCached;
    opt.prefetch_depth = pass == 0 ? 0 : 8;
    core::Testbed bed(opt);
    ASSERT_TRUE(bed.image_fs()
                    .put_file(bed.image_dir() + "/big", blob::make_synthetic(3, 8_MiB, 0, 2.0))
                    .is_ok());
    bed.kernel().run_process("t", [&](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p).is_ok());
      SimTime t0 = p.now();
      auto data = bed.image_session().read_all(p, "/big");
      ASSERT_TRUE(data.is_ok());
      times[pass] = to_seconds(p.now() - t0);
      // Integrity with prefetching on.
      EXPECT_EQ(blob::content_hash(**data),
                blob::content_hash(*blob::make_synthetic(3, 8_MiB, 0, 2.0)));
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
    if (pass == 1) {
      EXPECT_GT(bed.client_proxy()->blocks_prefetched(), 0u);
    }
  }
  EXPECT_LT(times[1] * 1.5, times[0]);
}

TEST(Prefetch, RandomAccessDoesNotTrigger) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  opt.prefetch_depth = 8;
  core::Testbed bed(opt);
  ASSERT_TRUE(bed.image_fs()
                  .put_file(bed.image_dir() + "/rand", blob::make_synthetic(4, 8_MiB, 0, 2.0))
                  .is_ok());
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    SplitMix64 rng(9);
    for (int i = 0; i < 40; ++i) {
      u64 block = rng.next_below(256);
      ASSERT_OK(bed.image_session().read(p, "/rand", block * 32_KiB, 32_KiB));
    }
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_EQ(bed.client_proxy()->blocks_prefetched(), 0u);
}

// ------------------------------------------------------------- trace replay --

TEST(TraceWorkload, ParseSerializeRoundTrip) {
  std::string text =
      "# an example trace\n"
      "open data.bin\n"
      "read data.bin 0 4096\n"
      "compute 0.5\n"
      "write data.bin 4096 8192\n"
      "sync\n";
  auto ops = workload::TraceWorkload::parse(text);
  ASSERT_TRUE(ops.is_ok());
  ASSERT_EQ(ops->size(), 5u);
  EXPECT_EQ((*ops)[0].kind, workload::TraceOp::Kind::kOpen);
  EXPECT_EQ((*ops)[1].length, 4096u);
  EXPECT_DOUBLE_EQ((*ops)[2].seconds, 0.5);
  auto again = workload::TraceWorkload::parse(workload::TraceWorkload::serialize(*ops));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(*again, *ops);
}

TEST(TraceWorkload, ParseRejectsMalformed) {
  EXPECT_FALSE(workload::TraceWorkload::parse("explode data 1 2\n").is_ok());
  EXPECT_FALSE(workload::TraceWorkload::parse("read data\n").is_ok());
  EXPECT_FALSE(workload::TraceWorkload::parse("compute -3\n").is_ok());
  EXPECT_FALSE(workload::TraceWorkload::parse("open\n").is_ok());
}

TEST(TraceWorkload, ReplayAccountsIo) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kLocal;
  core::Testbed bed(opt);
  auto ops = workload::TraceWorkload::parse(
      "open a\nread a 0 65536\nwrite b 0 32768\ncompute 1.5\nsync\nread b 0 32768\n");
  ASSERT_TRUE(ops.is_ok());
  workload::TraceWorkload wl(*ops);
  bed.kernel().run_process("t", [&](sim::Process& p) {
    vm::VmImageSpec spec;
    spec.memory_bytes = 4_MiB;
    spec.disk_bytes = 64_MiB;
    auto paths = vm::install_image(bed.image_fs(), bed.image_dir(), spec);
    ASSERT_TRUE(paths.is_ok());
    vm::VmMonitor vm;
    auto& session = bed.local_session();
    vm.attach(session, paths->cfg(), paths->vmss(), session, paths->flat_vmdk());
    vm::GuestFs gfs(vm);
    ASSERT_TRUE(wl.install(gfs).is_ok());
    auto report = wl.run(p, gfs);
    ASSERT_TRUE(report.is_ok());
    EXPECT_GE(report->total_s(), 1.5);  // at least the compute op
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  // open's metadata touch is not accounted as data read.
  EXPECT_EQ(wl.bytes_read(), 65536u + 32768u);
  EXPECT_EQ(wl.bytes_written(), 32768u);
}

// -------------------------------------------------- NFS completeness procs --

struct NfsFixture {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  nfs::NfsServer server{kernel, fs, disk, nfs::NfsServerConfig{}};
  rpc::LinkChannel loop{server, nullptr, nullptr, 10 * kMicrosecond};
  rpc::Credential cred;
  nfs::NfsClient client{loop, cred, nfs::NfsClientConfig{}};

  NfsFixture() { EXPECT_TRUE(server.add_export("/exports").is_ok()); }
};

TEST(NfsLink, HardLinkSharesContent) {
  NfsFixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/orig", blob::make_bytes(std::vector<u8>{1, 2, 3})).is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(f.client.mount(p, "/exports").is_ok());
    ASSERT_TRUE(f.client.hard_link(p, "/orig", "/alias").is_ok());
    auto via_alias = f.client.read_all(p, "/alias");
    ASSERT_TRUE(via_alias.is_ok());
    EXPECT_EQ((*via_alias)->size(), 3u);
    // nlink bumped on the server.
    auto id = f.fs.resolve("/exports/orig");
    EXPECT_EQ(f.fs.getattr(*id)->nlink, 2u);
    // Removing one name keeps the other alive.
    ASSERT_TRUE(f.client.remove(p, "/orig").is_ok());
    f.client.drop_caches();
    auto still = f.client.read_all(p, "/alias");
    ASSERT_TRUE(still.is_ok());
    EXPECT_EQ((*still)->size(), 3u);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsLink, LinkToDirectoryRejected) {
  NfsFixture f;
  ASSERT_TRUE(f.fs.mkdirs("/exports/subdir").is_ok());
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(f.client.mount(p, "/exports").is_ok());
    EXPECT_FALSE(f.client.hard_link(p, "/subdir", "/alias").is_ok());
  });
}

TEST(NfsReaddirplus, ListPrimesCaches) {
  NfsFixture f;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        f.fs.put_file("/exports/dir/f" + std::to_string(i), blob::make_zero(100)).is_ok());
  }
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(f.client.mount(p, "/exports").is_ok());
    auto entries = f.client.list(p, "/dir");
    ASSERT_TRUE(entries.is_ok());
    EXPECT_EQ(entries->size(), 10u);
    // After READDIRPLUS, stats need no further LOOKUP or GETATTR RPCs.
    u64 lookups = f.client.rpcs_sent(nfs::Proc::kLookup);
    u64 getattrs = f.client.rpcs_sent(nfs::Proc::kGetattr);
    for (int i = 0; i < 10; ++i) {
      auto a = f.client.stat(p, "/dir/f" + std::to_string(i));
      ASSERT_TRUE(a.is_ok());
      EXPECT_EQ(a->size, 100u);
    }
    EXPECT_EQ(f.client.rpcs_sent(nfs::Proc::kLookup), lookups);
    EXPECT_EQ(f.client.rpcs_sent(nfs::Proc::kGetattr), getattrs);
  });
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
}

TEST(NfsTypesExt, LinkReaddirplusPathconfRoundTrip) {
  using namespace nfs;
  LinkArgs la;
  la.file = Fh{1, 5};
  la.dir = Fh{1, 1};
  la.name = "alias";
  xdr::XdrEncoder e1;
  la.encode(e1);
  EXPECT_EQ(e1.size(), la.wire_size());
  xdr::XdrDecoder d1(e1.bytes());
  auto lback = LinkArgs::decode(d1);
  ASSERT_TRUE(lback.is_ok());
  EXPECT_EQ(lback->name, "alias");

  ReaddirplusRes rr;
  ReaddirplusRes::Entry ent;
  ent.fileid = 9;
  ent.name = "file.bin";
  ent.cookie = 1;
  vfs::Attr attr;
  attr.size = 123;
  attr.fileid = 9;
  ent.attr.attr = attr;
  ent.fh = Fh{1, 9};
  rr.entries.push_back(ent);
  xdr::XdrEncoder e2;
  rr.encode(e2);
  EXPECT_EQ(e2.size(), rr.wire_size());
  xdr::XdrDecoder d2(e2.bytes());
  auto rback = ReaddirplusRes::decode(d2);
  ASSERT_TRUE(rback.is_ok());
  ASSERT_EQ(rback->entries.size(), 1u);
  EXPECT_EQ(rback->entries[0].fh, (Fh{1, 9}));
  ASSERT_TRUE(rback->entries[0].attr.attr.has_value());
  EXPECT_EQ(rback->entries[0].attr.attr->size, 123u);

  PathconfRes pc;
  xdr::XdrEncoder e3;
  pc.encode(e3);
  EXPECT_EQ(e3.size(), pc.wire_size());
  xdr::XdrDecoder d3(e3.bytes());
  auto pback = PathconfRes::decode(d3);
  ASSERT_TRUE(pback.is_ok());
  EXPECT_EQ(pback->name_max, 255u);
}

TEST(LocalSession, HardLinkSupported) {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  vfs::LocalFsSession session{fs, disk};
  kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(session.put(p, "/a", blob::make_bytes(std::vector<u8>{7})).is_ok());
    ASSERT_TRUE(session.hard_link(p, "/a", "/b").is_ok());
    auto b = session.read_all(p, "/b");
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ((*b)->size(), 1u);
  });
  EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
}

}  // namespace
}  // namespace gvfs
