// End-to-end kernel NFS client <-> kernel NFS server tests over a loopback
// channel: mounting, data integrity, caching behaviours (page cache, attr
// TTL, dentry cache), write staging + close-to-open flushes, and the
// metadata procedures.
#include <gtest/gtest.h>

#include "test_util.h"

#include "blob/blob.h"
#include "nfs/nfs_client.h"
#include "nfs/nfs_server.h"
#include "sim/kernel.h"

namespace gvfs::nfs {
namespace {

struct Fixture {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "sdisk", sim::DiskConfig{}};
  NfsServer server{kernel, fs, disk, NfsServerConfig{}};
  rpc::LinkChannel loop{server, nullptr, nullptr, 10 * kMicrosecond};
  rpc::Credential cred;
  NfsClientConfig ccfg;

  Fixture() {
    cred.uid = 1000;
    cred.gid = 1000;
    EXPECT_TRUE(server.add_export("/exports").is_ok());
  }

  std::unique_ptr<NfsClient> make_client() {
    return std::make_unique<NfsClient>(loop, cred, ccfg);
  }

  void run(std::function<void(sim::Process&, NfsClient&)> body) {
    auto client = make_client();
    kernel.run_process("test", [&](sim::Process& p) {
      ASSERT_TRUE(client->mount(p, "/exports").is_ok());
      body(p, *client);
    });
    EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  }
};

TEST(NfsClientServer, MountSucceedsAndNegotiates) {
  Fixture f;
  f.run([](sim::Process&, NfsClient& c) { EXPECT_TRUE(c.mounted()); });
}

TEST(NfsClientServer, MountUnknownExportFails) {
  Fixture f;
  auto client = f.make_client();
  f.kernel.run_process("t", [&](sim::Process& p) {
    EXPECT_FALSE(client->mount(p, "/nope").is_ok());
    EXPECT_FALSE(client->mounted());
  });
}

TEST(NfsClientServer, WriteFlushReadBackIntegrity) {
  Fixture f;
  auto content = blob::make_synthetic(11, 300_KiB, 0.2, 2.0);
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.create(p, "/data.bin").is_ok());
    ASSERT_TRUE(c.write(p, "/data.bin", 0, content).is_ok());
    ASSERT_TRUE(c.flush(p).is_ok());
    auto back = c.read(p, "/data.bin", 0, 300_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
  });
  // Server-side content matches too.
  auto server_side = f.fs.get_file("/exports/data.bin");
  ASSERT_TRUE(server_side.is_ok());
  EXPECT_EQ(blob::content_hash(**server_side), blob::content_hash(*content));
}

TEST(NfsClientServer, ReadOfServerInstalledFile) {
  Fixture f;
  auto content = blob::make_synthetic(12, 1_MiB, 0.5, 3.0);
  ASSERT_TRUE(f.fs.put_file("/exports/img.bin", content).is_ok());
  f.run([&](sim::Process& p, NfsClient& c) {
    auto back = c.read_all(p, "/img.bin");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ((*back)->size(), 1_MiB);
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
  });
}

TEST(NfsClientServer, StagedWritesVisibleBeforeFlush) {
  Fixture f;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.create(p, "/f").is_ok());
    ASSERT_TRUE(c.write(p, "/f", 0, blob::make_bytes(std::vector<u8>{1, 2, 3})).is_ok());
    // Not flushed yet: server doesn't have the bytes...
    EXPECT_EQ((*f.fs.get_file("/exports/f"))->size(), 0u);
    // ...but the client sees its own staged data.
    auto back = c.read(p, "/f", 0, 3);
    ASSERT_TRUE(back.is_ok());
    std::vector<u8> buf(3);
    (*back)->read(0, buf);
    EXPECT_EQ(buf, (std::vector<u8>{1, 2, 3}));
    EXPECT_EQ(c.stat(p, "/f")->size, 3u);
  });
}

TEST(NfsClientServer, CloseFlushesOneFile) {
  Fixture f;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.create(p, "/a").is_ok());
    ASSERT_TRUE(c.create(p, "/b").is_ok());
    ASSERT_OK(c.write(p, "/a", 0, blob::make_bytes(std::vector<u8>{1})));
    ASSERT_OK(c.write(p, "/b", 0, blob::make_bytes(std::vector<u8>{2})));
    ASSERT_TRUE(c.close(p, "/a").is_ok());
    EXPECT_EQ((*f.fs.get_file("/exports/a"))->size(), 1u);
    EXPECT_EQ((*f.fs.get_file("/exports/b"))->size(), 0u);  // still staged
  });
}

TEST(NfsClientServer, PageCacheAvoidsSecondFetch) {
  Fixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/r", blob::make_synthetic(3, 64_KiB, 0, 2.0)).is_ok());
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_OK(c.read(p, "/r", 0, 64_KiB));
    u64 reads_after_first = c.rpcs_sent(Proc::kRead);
    ASSERT_OK(c.read(p, "/r", 0, 64_KiB));
    EXPECT_EQ(c.rpcs_sent(Proc::kRead), reads_after_first);  // all cached
  });
}

TEST(NfsClientServer, DropCachesForcesRefetch) {
  Fixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/r", blob::make_synthetic(4, 32_KiB, 0, 2.0)).is_ok());
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_OK(c.read(p, "/r", 0, 32_KiB));
    u64 first = c.rpcs_sent(Proc::kRead);
    c.drop_caches();
    ASSERT_OK(c.read(p, "/r", 0, 32_KiB));
    EXPECT_EQ(c.rpcs_sent(Proc::kRead), 2 * first);
  });
}

TEST(NfsClientServer, AttrCacheRespectsTtl) {
  Fixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/r", blob::make_zero(10)).is_ok());
  f.ccfg.attr_cache_ttl = 10 * kSecond;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_OK(c.stat(p, "/r"));
    u64 getattrs = c.rpcs_sent(Proc::kGetattr);
    ASSERT_OK(c.stat(p, "/r"));  // within TTL: cached
    EXPECT_EQ(c.rpcs_sent(Proc::kGetattr), getattrs);
    p.delay(11 * kSecond);
    ASSERT_OK(c.stat(p, "/r"));  // expired: refetch
    EXPECT_EQ(c.rpcs_sent(Proc::kGetattr), getattrs + 1);
  });
}

TEST(NfsClientServer, DentryCacheAvoidsRepeatedLookups) {
  Fixture f;
  ASSERT_TRUE(f.fs.mkdirs("/exports/a/b").is_ok());
  ASSERT_TRUE(f.fs.put_file("/exports/a/b/f", blob::make_zero(1)).is_ok());
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_OK(c.stat(p, "/a/b/f"));
    u64 lookups = c.rpcs_sent(Proc::kLookup);
    EXPECT_EQ(lookups, 3u);
    ASSERT_OK(c.stat(p, "/a/b/f"));
    EXPECT_EQ(c.rpcs_sent(Proc::kLookup), lookups);
  });
}

TEST(NfsClientServer, MkdirsCreatesChain) {
  Fixture f;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.mkdirs(p, "/x/y/z").is_ok());
    EXPECT_TRUE(f.fs.exists("/exports/x/y/z"));
    // Idempotent.
    ASSERT_TRUE(c.mkdirs(p, "/x/y/z").is_ok());
  });
}

TEST(NfsClientServer, RemoveAndNegativeStat) {
  Fixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/gone", blob::make_zero(5)).is_ok());
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.stat(p, "/gone").is_ok());
    ASSERT_TRUE(c.remove(p, "/gone").is_ok());
    EXPECT_FALSE(f.fs.exists("/exports/gone"));
    EXPECT_FALSE(c.stat(p, "/gone").is_ok());
  });
}

TEST(NfsClientServer, TruncateDiscardsStagedData) {
  Fixture f;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.create(p, "/t").is_ok());
    ASSERT_OK(c.write(p, "/t", 0, blob::make_bytes(std::vector<u8>(100, 7))));
    ASSERT_TRUE(c.truncate(p, "/t", 0).is_ok());
    ASSERT_TRUE(c.flush(p).is_ok());
    EXPECT_EQ((*f.fs.get_file("/exports/t"))->size(), 0u);
    EXPECT_EQ(c.stat(p, "/t")->size, 0u);
  });
}

TEST(NfsClientServer, SymlinkCreated) {
  Fixture f;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.symlink(p, "/lnk", "/exports/target").is_ok());
    auto id = f.fs.resolve("/exports");
    auto lid = f.fs.lookup(*id, "lnk");
    ASSERT_TRUE(lid.is_ok());
    EXPECT_EQ(*f.fs.readlink(*lid), "/exports/target");
  });
}

TEST(NfsClientServer, ListDirectory) {
  Fixture f;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        f.fs.put_file("/exports/dir/file" + std::to_string(i), blob::make_zero(1)).is_ok());
  }
  f.run([&](sim::Process& p, NfsClient& c) {
    auto entries = c.list(p, "/dir");
    ASSERT_TRUE(entries.is_ok());
    EXPECT_EQ(entries->size(), 40u);
  });
}

TEST(NfsClientServer, PartialPageWritePreservesNeighbourhood) {
  Fixture f;
  std::vector<u8> base(8_KiB);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<u8>(i);
  ASSERT_TRUE(f.fs.put_file("/exports/rmw", blob::make_bytes(base)).is_ok());
  f.run([&](sim::Process& p, NfsClient& c) {
    // Overwrite 10 bytes in the middle of the second page.
    ASSERT_TRUE(
        c.write(p, "/rmw", 5000, blob::make_bytes(std::vector<u8>(10, 0xee))).is_ok());
    ASSERT_TRUE(c.flush(p).is_ok());
  });
  auto after = f.fs.get_file("/exports/rmw");
  std::vector<u8> got(8_KiB);
  (*after)->read(0, got);
  for (std::size_t i = 0; i < got.size(); ++i) {
    u8 expect = (i >= 5000 && i < 5010) ? 0xee : static_cast<u8>(i);
    ASSERT_EQ(got[i], expect) << "at " << i;
  }
}

TEST(NfsClientServer, DirtyLimitForcesWriteback) {
  Fixture f;
  f.ccfg.dirty_limit_bytes = 64_KiB;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.create(p, "/big").is_ok());
    ASSERT_TRUE(c.write(p, "/big", 0, blob::make_synthetic(5, 256_KiB, 0, 2.0)).is_ok());
    // Staging limit forced at least one WRITE before any flush call.
    EXPECT_GT(c.rpcs_sent(Proc::kWrite), 0u);
  });
}

TEST(NfsClientServer, AppendGrowsFile) {
  Fixture f;
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.create(p, "/log").is_ok());
    for (int i = 0; i < 5; ++i) {
      u64 size = c.stat(p, "/log")->size;
      ASSERT_TRUE(
          c.write(p, "/log", size, blob::make_bytes(std::vector<u8>(1000, 1))).is_ok());
    }
    EXPECT_EQ(c.stat(p, "/log")->size, 5000u);
    ASSERT_TRUE(c.flush(p).is_ok());
    EXPECT_EQ((*f.fs.get_file("/exports/log"))->size(), 5000u);
  });
}

TEST(NfsClientServer, AuthRequiredByServer) {
  Fixture f;
  f.cred.flavor = rpc::AuthFlavor::kNone;
  auto client = f.make_client();
  f.kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client->mount(p, "/exports").is_ok());  // MOUNT prog exempt
    EXPECT_FALSE(client->stat(p, "/x").is_ok());        // NFS prog rejected
  });
}

TEST(NfsClientServer, ServerAuthorizerPolicy) {
  Fixture f;
  f.server.set_authorizer(
      [](const rpc::Credential& c) { return c.uid == 1000; });
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_TRUE(c.create(p, "/allowed").is_ok());
  });
  f.cred.uid = 666;
  auto bad = f.make_client();
  f.kernel.run_process("t", [&](sim::Process& p) {
    EXPECT_FALSE(bad->mount(p, "/exports").is_ok());
  });
}

TEST(NfsClientServer, ServerCountsProcedures) {
  Fixture f;
  ASSERT_TRUE(f.fs.put_file("/exports/r", blob::make_zero(64_KiB)).is_ok());
  f.server.reset_stats();
  f.run([&](sim::Process& p, NfsClient& c) {
    ASSERT_OK(c.read(p, "/r", 0, 64_KiB));
  });
  EXPECT_GT(f.server.calls(Proc::kRead), 0u);
  EXPECT_GT(f.server.calls(Proc::kLookup), 0u);
  EXPECT_GT(f.server.total_calls(), 0u);
}

TEST(NfsClientServer, WanLatencyDominatesColdReads) {
  // Sanity-check the scenario math: 8 KiB reads over a 40 ms RTT pipe come
  // in at ~22 reads/s, the effect behind the paper's 2060 s plain-NFS clone.
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  NfsServer server{kernel, fs, disk, NfsServerConfig{}};
  ASSERT_TRUE(server.add_export("/exports").is_ok());
  ASSERT_TRUE(fs.put_file("/exports/mem", blob::make_synthetic(1, 4_MiB, 0.9, 3.0)).is_ok());
  sim::LinkConfig wan{from_millis(20), 12.0 * 1_MiB, 64_KiB, 0};
  sim::Link up(kernel, "up", wan), down(kernel, "down", wan);
  rpc::LinkChannel ch(server, &up, &down, 30 * kMicrosecond);
  rpc::Credential cred;
  NfsClientConfig cfg;
  cfg.rsize = cfg.wsize = 8_KiB;
  NfsClient client(ch, cred, cfg);
  SimTime elapsed = 0;
  kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    SimTime t0 = p.now();
    ASSERT_OK(client.read_all(p, "/mem"));
    elapsed = p.now() - t0;
  });
  // 512 sequential reads * ~41 ms => ~21 s; allow generous bounds.
  EXPECT_GT(to_seconds(elapsed), 15.0);
  EXPECT_LT(to_seconds(elapsed), 30.0);
}

}  // namespace
}  // namespace gvfs::nfs
