// Delegation-style lease tests (ctest label: leases): grant/deny-retry at
// the origin, recall callbacks through the reverse proxy channel stack,
// dirty-block flush on recall, expiry fencing of degraded write replay, the
// kNotSupported stand-down latch, composition with the sharded origin
// cluster, and a seeded multi-writer property sweep (DESIGN.md §5.10).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "blob/blob.h"
#include "cache/block_cache.h"
#include "common/rng.h"
#include "gvfs/testbed.h"
#include "nfs/nfs_client.h"
#include "nfs/nfs_server.h"
#include "proxy/gvfs_proxy.h"
#include "rpc/rpc.h"
#include "sim/kernel.h"

namespace gvfs::core {
namespace {

std::vector<u8> fill_bytes(u64 seed, u64 size) {
  std::vector<u8> out(size);
  SplitMix64 rng(seed);
  for (auto& b : out) b = static_cast<u8>(rng.next());
  return out;
}

std::vector<u8> file_bytes(vfs::MemFs& fs, const std::string& abs) {
  auto f = fs.get_file(abs);
  EXPECT_TRUE(f.is_ok()) << abs;
  if (!f.is_ok()) return {};
  std::vector<u8> out((*f)->size());
  (*f)->read(0, out);
  return out;
}

TestbedOptions lease_options() {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  opt.enable_leases = true;
  return opt;
}

// ---- default-off ------------------------------------------------------------

TEST(LeaseToggle, DefaultOffLeavesNoLeaseState) {
  TestbedOptions opt;
  opt.scenario = Scenario::kWanCached;
  opt.generate_image_meta = false;
  Testbed bed(opt);
  ASSERT_TRUE(bed.put_image_file("/f", blob::make_bytes(fill_bytes(1, 64_KiB))).is_ok());
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    ASSERT_TRUE(bed.image_session().read_all(p, "/f").is_ok());
    ASSERT_TRUE(bed.image_session()
                    .write(p, "/f", 0, blob::make_bytes(fill_bytes(2, 8_KiB)))
                    .is_ok());
    ASSERT_TRUE(bed.image_session().flush(p).is_ok());
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_EQ(bed.server()->leases_granted(), 0u);
  EXPECT_EQ(bed.server()->lease_table_size(), 0u);
  EXPECT_EQ(bed.client_proxy()->held_lease_count(), 0u);
  EXPECT_EQ(bed.client_proxy()->leases_acquired(), 0u);
}

// ---- grant + recall coherence -----------------------------------------------

// Two nodes, write-through. Node 0 reads (read lease, blocks cached); node 1
// then writes the same file. The write lease conflicts with node 0's read
// lease, so the origin recalls it — dropping node 0's cached frames and
// attrs — before granting node 1. Node 0's next read must see the new bytes
// immediately, with no TTL wait and no reconnect signal. Without leases the
// proxy cache serves the pre-write frames (the staleness this PR fixes).
TEST(LeaseRecall, WriterRecallsReaderCacheForCoherence) {
  TestbedOptions opt = lease_options();
  opt.compute_nodes = 2;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  Testbed bed(opt);
  std::vector<u8> before = fill_bytes(10, 64_KiB);
  std::vector<u8> after = fill_bytes(11, 64_KiB);
  ASSERT_TRUE(bed.put_image_file("/img", blob::make_bytes(before)).is_ok());

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p, 0).is_ok());
    ASSERT_TRUE(bed.mount(p, 1).is_ok());

    auto warm = bed.image_session(0).read_all(p, "/img");
    ASSERT_TRUE(warm.is_ok());
    EXPECT_EQ(blob::content_hash(**warm), blob::content_hash(*blob::make_bytes(before)));
    EXPECT_GE(bed.client_proxy(0)->held_lease_count(), 1u);

    ASSERT_TRUE(bed.image_session(1).write(p, "/img", 0, blob::make_bytes(after)).is_ok());
    ASSERT_TRUE(bed.image_session(1).flush(p).is_ok());

    // The recall already dropped node 0's frames: only the kernel client's
    // own page cache needs dropping to observe the proxy's answer.
    bed.nfs_client(0)->drop_caches();
    auto fresh = bed.image_session(0).read_all(p, "/img");
    ASSERT_TRUE(fresh.is_ok());
    EXPECT_EQ(blob::content_hash(**fresh), blob::content_hash(*blob::make_bytes(after)));

    auto a = bed.image_session(0).stat(p, "/img");
    ASSERT_TRUE(a.is_ok());
    EXPECT_EQ(a->size, 64_KiB);
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  EXPECT_GE(bed.server()->lease_recalls(), 1u);
  EXPECT_EQ(bed.server()->lease_recall_failures(), 0u);
  EXPECT_GE(bed.client_proxy(0)->recalls_served(), 1u);
  EXPECT_GE(bed.client_proxy(1)->leases_acquired(), 1u);
  EXPECT_GE(bed.client_proxy(1)->lease_acquire_retries(), 1u);  // deny-retry ran
}

// Write-back flavour: node 0 holds dirty blocks under a write lease; node 1's
// read triggers a recall that must FLUSH those blocks upstream before node 1
// is granted — so node 1 reads node 0's bytes out of the origin, not the
// stale install-time content.
TEST(LeaseRecall, RecallFlushesDirtyBlocksBeforeNewReader) {
  TestbedOptions opt = lease_options();
  opt.compute_nodes = 2;
  opt.write_policy = cache::WritePolicy::kWriteBack;
  Testbed bed(opt);
  std::vector<u8> init = fill_bytes(20, 64_KiB);
  std::vector<u8> dirty = fill_bytes(21, 64_KiB);
  ASSERT_TRUE(bed.put_image_file("/img", blob::make_bytes(init)).is_ok());

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p, 0).is_ok());
    ASSERT_TRUE(bed.mount(p, 1).is_ok());

    ASSERT_TRUE(bed.image_session(0).write(p, "/img", 0, blob::make_bytes(dirty)).is_ok());
    ASSERT_TRUE(bed.image_session(0).flush(p).is_ok());  // staged -> proxy cache
    EXPECT_GT(bed.block_cache(0)->dirty_blocks(), 0u);

    auto read = bed.image_session(1).read_all(p, "/img");
    ASSERT_TRUE(read.is_ok());
    EXPECT_EQ(blob::content_hash(**read), blob::content_hash(*blob::make_bytes(dirty)));
    // The recall drained node 0's dirty frames.
    EXPECT_EQ(bed.block_cache(0)->dirty_blocks(), 0u);
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  EXPECT_GE(bed.server()->lease_recalls(), 1u);
  EXPECT_GE(bed.client_proxy(0)->recalls_served(), 1u);
  EXPECT_EQ(file_bytes(bed.image_fs(), bed.image_dir() + "/img"), dirty);
}

// ---- expiry fencing ---------------------------------------------------------

// A node whose write lease lapses during a partition must re-acquire it
// before its parked degraded writes replay: the fence is the queued-write
// revalidation this PR adds. The partition (60 s) outlasts the lease (10 s),
// so reconnect-time replay must fence, re-acquire (purging the expired
// holder at the origin), and only then push the queue.
TEST(LeaseExpiry, LapsedHolderFencesQueuedWritesOnReconnect) {
  TestbedOptions opt = lease_options();
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.lease_duration = 10 * kSecond;
  opt.enable_fault_injection = true;
  opt.degraded_proxy = true;
  opt.fault.partitions.push_back(sim::FaultWindow{30 * kSecond, 90 * kSecond});
  opt.retry.timeout = 250 * kMillisecond;
  opt.retry.max_retransmits = 2;  // soft mount: kTimeout reaches the proxy
  Testbed bed(opt);
  std::vector<u8> init = fill_bytes(30, 64_KiB);
  std::vector<u8> patch = fill_bytes(31, 32_KiB);
  ASSERT_TRUE(bed.put_image_file("/img", blob::make_bytes(init)).is_ok());

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    // Healthy write: acquires the write lease (expires ~10 s later).
    ASSERT_TRUE(bed.image_session()
                    .write(p, "/img", 32_KiB, blob::make_bytes(fill_bytes(32, 32_KiB)))
                    .is_ok());
    ASSERT_TRUE(bed.image_session().flush(p).is_ok());
    EXPECT_GE(bed.client_proxy()->held_lease_count(), 1u);
    ASSERT_LT(p.now(), 30 * kSecond);

    // Mid-partition, lease long lapsed: the write queues degraded.
    p.delay_until(45 * kSecond);
    ASSERT_TRUE(bed.image_session().write(p, "/img", 0, blob::make_bytes(patch)).is_ok());
    ASSERT_TRUE(bed.image_session().flush(p).is_ok());
    EXPECT_TRUE(bed.client_proxy()->upstream_down());
    EXPECT_GT(bed.client_proxy()->queued_writebacks(), 0u);

    // Heal: replay must fence (re-acquire) before pushing the queue.
    p.delay_until(100 * kSecond);
    ASSERT_TRUE(bed.client_proxy()->signal_reconnect(p).is_ok());
    EXPECT_FALSE(bed.client_proxy()->upstream_down());
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  const auto* proxy = bed.client_proxy();
  EXPECT_GE(proxy->lease_fences(), 1u);
  EXPECT_GE(bed.server()->lease_expirations(), 1u);
  EXPECT_EQ(proxy->pending_writebacks(), 0u);
  EXPECT_EQ(proxy->queued_writebacks(), proxy->replayed_writebacks());
  std::vector<u8> healthy = fill_bytes(32, 32_KiB);
  std::vector<u8> want = init;
  std::copy(patch.begin(), patch.end(), want.begin());
  std::copy(healthy.begin(), healthy.end(), want.begin() + 32_KiB);
  EXPECT_EQ(file_bytes(bed.image_fs(), bed.image_dir() + "/img"), want);
}

// ---- kNotSupported stand-down -----------------------------------------------

// Counts LEASE_ACQUIRE RPCs crossing the wire so the latch is observable.
struct LeaseCountingChannel final : rpc::RpcChannel {
  explicit LeaseCountingChannel(rpc::RpcChannel& in) : inner(in) {}
  rpc::RpcChannel& inner;
  u64 acquires = 0;
  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& c) override {
    if (c.prog == rpc::kNfsProgram &&
        static_cast<nfs::Proc>(c.proc) == nfs::Proc::kLeaseAcquire) {
      ++acquires;
    }
    return inner.call(p, c);
  }
};

// A lease-enabled proxy against a lease-unaware origin: the first acquire
// answers kNotSupported and the proxy stands down for the session — exactly
// one probe on the wire, every later request free of lease traffic.
TEST(LeaseToggle, NotSupportedLatchesAfterOneProbe) {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel sdisk{kernel, "sd", sim::DiskConfig{}};
  nfs::NfsServer server{kernel, fs, sdisk, nfs::NfsServerConfig{}};  // leases off
  ASSERT_TRUE(server.add_export("/exports").is_ok());
  rpc::LinkChannel link{server, nullptr, nullptr, 10 * kMicrosecond};
  LeaseCountingChannel counting{link};

  proxy::ProxyConfig pcfg;
  pcfg.name = "lease-proxy";
  pcfg.enable_meta = false;
  pcfg.enable_leases = true;
  pcfg.lease_client_id = 7;
  proxy::GvfsProxy proxy{pcfg, counting};
  rpc::LinkChannel loop{proxy, nullptr, nullptr, 15 * kMicrosecond};
  rpc::Credential cred;
  cred.uid = 1234;
  nfs::NfsClient client{loop, cred, nfs::NfsClientConfig{}};

  ASSERT_TRUE(fs.put_file("/exports/f", blob::make_zero(64_KiB)).is_ok());
  kernel.run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(client.mount(p, "/exports").is_ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(client.write(p, "/f", static_cast<u64>(i) * 4_KiB,
                               blob::make_synthetic(40 + static_cast<u64>(i), 4_KiB, 0, 1.0))
                      .is_ok());
      ASSERT_TRUE(client.flush(p).is_ok());
    }
  });
  EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  EXPECT_EQ(counting.acquires, 1u);  // latched after the first kNotSupported
  EXPECT_EQ(proxy.leases_acquired(), 0u);
  EXPECT_EQ(proxy.held_lease_count(), 0u);
}

// ---- cluster composition ----------------------------------------------------

// Leases compose with the sharded origin cluster: acquires route to the home
// shard's replica set (both replicas track the holder), recalls fan out from
// the origins back through the per-node callback stacks, and the recall
// coherence story holds end-to-end.
TEST(LeaseCluster, RecallCoherenceThroughShardRouter) {
  TestbedOptions opt = lease_options();
  opt.compute_nodes = 2;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.origin_cluster = true;
  opt.origin_shards = 2;
  opt.origin_replicas = 2;
  Testbed bed(opt);
  std::vector<u8> before = fill_bytes(50, 64_KiB);
  std::vector<u8> after = fill_bytes(51, 64_KiB);
  ASSERT_TRUE(bed.put_image_file("/img", blob::make_bytes(before)).is_ok());

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p, 0).is_ok());
    ASSERT_TRUE(bed.mount(p, 1).is_ok());
    auto warm = bed.image_session(0).read_all(p, "/img");
    ASSERT_TRUE(warm.is_ok());

    ASSERT_TRUE(bed.image_session(1).write(p, "/img", 0, blob::make_bytes(after)).is_ok());
    ASSERT_TRUE(bed.image_session(1).flush(p).is_ok());

    bed.nfs_client(0)->drop_caches();
    auto fresh = bed.image_session(0).read_all(p, "/img");
    ASSERT_TRUE(fresh.is_ok());
    EXPECT_EQ(blob::content_hash(**fresh), blob::content_hash(*blob::make_bytes(after)));
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  u64 grants = 0;
  u64 recalls = 0;
  for (u32 j = 0; j < bed.origin_count(); ++j) {
    grants += bed.origin_server(static_cast<int>(j))->leases_granted();
    recalls += bed.origin_server(static_cast<int>(j))->lease_recalls();
  }
  EXPECT_GE(grants, 2u);   // replicated acquires land on both replicas
  EXPECT_GE(recalls, 1u);
  EXPECT_GE(bed.client_proxy(0)->recalls_served(), 1u);
  // Both replicas of the home shard agree on the lease table.
  EXPECT_EQ(bed.origin_server(0)->lease_table_size(),
            bed.origin_server(1)->lease_table_size());
}

// ---- multi-writer property sweep --------------------------------------------

constexpr u64 kBlock = 32_KiB;
constexpr u64 kBlocks = 8;

// Whole-block payload tagged with (node, round) in its first bytes so the
// origin's final content identifies the winning write unambiguously.
std::vector<u8> tagged_block(int node, int round, u64 seed) {
  std::vector<u8> out = fill_bytes(seed ^ (static_cast<u64>(node) << 32) ^
                                       static_cast<u64>(round),
                                   kBlock);
  out[0] = static_cast<u8>(node);
  out[1] = static_cast<u8>(round);
  return out;
}

struct SweepResult {
  bool converged = true;      // every node view == origin bytes
  bool blocks_intact = true;  // each block byte-equals one issued payload
  u64 grants = 0;
  u64 recalls = 0;
  u64 transitions = 0;        // write-grant ownership changes at the origin
  u64 removal_events = 0;     // recalls + expirations + releases
  u64 fences = 0;
};

SweepResult run_multi_writer(u64 seed, bool with_faults) {
  TestbedOptions opt = lease_options();
  opt.compute_nodes = 3;
  opt.write_policy = cache::WritePolicy::kWriteThrough;
  opt.lease_duration = 5 * kSecond;
  opt.fault_seed = seed;
  if (with_faults) {
    opt.enable_fault_injection = true;
    opt.degraded_proxy = true;
    opt.fault.partitions.push_back(sim::FaultWindow{8 * kSecond, 20 * kSecond});
    opt.fault.crashes.push_back(sim::FaultWindow{24 * kSecond, 27 * kSecond});
    opt.retry.timeout = 250 * kMillisecond;
    opt.retry.max_retransmits = 2;
  }
  Testbed bed(opt);
  std::vector<u8> init = fill_bytes(seed, kBlocks * kBlock);
  EXPECT_TRUE(bed.put_image_file("/shared", blob::make_bytes(init)).is_ok());

  // Every payload ever issued, per block — the no-tearing oracle.
  std::vector<std::vector<std::vector<u8>>> issued(kBlocks);

  const int kRounds = 5;
  for (int node = 0; node < 3; ++node) {
    bed.kernel().spawn("writer-" + std::to_string(node), [&, node](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p, node).is_ok());
      SplitMix64 rng(seed * 1000 + static_cast<u64>(node));
      for (int round = 0; round < kRounds; ++round) {
        u64 b = rng.next() % kBlocks;
        std::vector<u8> payload = tagged_block(node, round, seed);
        issued[b].push_back(payload);
        Status st = bed.image_session(node).write(
            p, "/shared", b * kBlock, blob::make_bytes(payload));
        ASSERT_TRUE(st.is_ok()) << st.to_string();
        ASSERT_TRUE(bed.image_session(node).flush(p).is_ok());
        p.delay(rng.next() % (2 * kSecond));
      }
      if (with_faults) {
        // Past every fault window: heal, fence, replay.
        p.delay_until((40 + static_cast<SimDuration>(node) * 2) * kSecond);
        ASSERT_TRUE(bed.client_proxy(node)->signal_reconnect(p).is_ok());
      }
    });
  }
  bed.kernel().run();
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  SweepResult out;
  std::vector<u8> origin = file_bytes(bed.image_fs(), bed.image_dir() + "/shared");
  EXPECT_EQ(origin.size(), kBlocks * kBlock);

  // Per-block integrity: the final content is exactly one issued payload (or
  // untouched install bytes) — never a torn mix of two writers.
  for (u64 b = 0; b < kBlocks && origin.size() == kBlocks * kBlock; ++b) {
    std::vector<u8> got(origin.begin() + static_cast<std::ptrdiff_t>(b * kBlock),
                        origin.begin() + static_cast<std::ptrdiff_t>((b + 1) * kBlock));
    bool match = std::equal(got.begin(), got.end(), init.begin() + static_cast<std::ptrdiff_t>(b * kBlock));
    for (const auto& payload : issued[b]) match = match || got == payload;
    if (!match) out.blocks_intact = false;
  }

  // Convergence: every node's post-run view equals the origin bytes.
  bed.kernel().run_process("verify", [&](sim::Process& p) {
    for (int node = 0; node < 3; ++node) {
      EXPECT_EQ(bed.client_proxy(node)->pending_writebacks(), 0u) << "node " << node;
      bed.nfs_client(node)->drop_caches();
      bed.block_cache(node)->invalidate_all();
      auto view = bed.image_session(node).read_all(p, "/shared");
      ASSERT_TRUE(view.is_ok()) << view.status().to_string();
      std::vector<u8> bytes((*view)->size());
      (*view)->read(0, bytes);
      if (bytes != origin) out.converged = false;
    }
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  const nfs::NfsServer* srv = bed.server();
  out.grants = srv->leases_granted();
  out.recalls = srv->lease_recalls();
  out.removal_events =
      srv->lease_recalls() + srv->lease_expirations() + srv->lease_releases();
  for (int node = 0; node < 3; ++node) out.fences += bed.client_proxy(node)->lease_fences();

  // Grant-order invariant: the per-file write-grant sequence is time-ordered,
  // and every ownership change was preceded by a holder removal (recall,
  // expiry, or release) — the serialization the sweep's convergence rides on.
  std::map<u64, u64> last_writer;  // key -> client of latest write grant
  SimTime last_at = 0;
  for (const auto& g : srv->lease_grants()) {
    EXPECT_GE(g.at, last_at);  // append-only, virtual-time ordered
    last_at = g.at;
    if (g.mode != nfs::LeaseMode::kWrite) continue;
    auto it = last_writer.find(g.key);
    if (it != last_writer.end() && it->second != g.client) ++out.transitions;
    last_writer[g.key] = g.client;
  }
  return out;
}

TEST(MultiWriterSweep, FaultlessSeedsConvergeInLeaseGrantOrder) {
  u64 total_transitions = 0;
  for (u64 seed : {11u, 22u, 33u, 44u}) {
    SweepResult r = run_multi_writer(seed, /*with_faults=*/false);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    EXPECT_TRUE(r.blocks_intact) << "seed " << seed;
    EXPECT_GT(r.grants, 0u) << "seed " << seed;
    // Every write-lease handover at the origin was driven by a removal
    // event; the grant log can never order two owners without one.
    EXPECT_LE(r.transitions, r.removal_events) << "seed " << seed;
    total_transitions += r.transitions;
  }
  // The sweep exercised real contention, not three disjoint writers.
  EXPECT_GT(total_transitions, 0u);
}

TEST(MultiWriterSweep, CrashAndPartitionSeedsStillConverge) {
  for (u64 seed : {55u, 66u}) {
    SweepResult r = run_multi_writer(seed, /*with_faults=*/true);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    EXPECT_TRUE(r.blocks_intact) << "seed " << seed;
    EXPECT_GT(r.grants, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gvfs::core
