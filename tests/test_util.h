// Shared assertion helpers for the test suite. Status and Result<T> are
// [[nodiscard]]; tests either assert success or discard with (void) and a
// reason, never silently.
#pragma once

#include <gtest/gtest.h>

// Works for both Status and Result<T> (anything with is_ok()).
#define ASSERT_OK(expr) ASSERT_TRUE((expr).is_ok())
#define EXPECT_OK(expr) EXPECT_TRUE((expr).is_ok())
