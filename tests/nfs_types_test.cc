// NFS protocol message tests: every procedure's args/results XDR-round-trip
// and the analytic wire_size() equals the real encoded size — the invariant
// that lets the simulation transport skip serialization without lying about
// bytes on the wire.
#include <gtest/gtest.h>

#include "nfs/nfs_types.h"

namespace gvfs::nfs {
namespace {

// Encode a message and assert wire_size() telling the truth.
template <typename T>
std::vector<u8> encode_checked(const T& msg) {
  xdr::XdrEncoder enc;
  msg.encode(enc);
  EXPECT_EQ(enc.size(), msg.wire_size()) << "wire_size mismatch";
  return enc.take();
}

vfs::Attr sample_attr() {
  vfs::Attr a;
  a.type = vfs::FileType::kRegular;
  a.mode = 0644;
  a.nlink = 1;
  a.uid = 1000;
  a.gid = 1000;
  a.size = 320_MiB;
  a.atime = 5 * kSecond;
  a.mtime = 6 * kSecond + 123;
  a.ctime = 7 * kSecond;
  a.fileid = 42;
  return a;
}

TEST(NfsTypes, FhRoundTrip) {
  Fh fh{7, 1234567};
  xdr::XdrEncoder enc;
  fh.encode(enc);
  EXPECT_EQ(enc.size(), Fh::wire_size());
  xdr::XdrDecoder dec(enc.bytes());
  auto back = Fh::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, fh);
  EXPECT_TRUE(back->valid());
  EXPECT_EQ(Fh{}.valid(), false);
}

TEST(NfsTypes, FhKeyDistinguishes) {
  EXPECT_NE((Fh{1, 2}.key()), (Fh{1, 3}.key()));
  EXPECT_NE((Fh{1, 2}.key()), (Fh{2, 2}.key()));
  EXPECT_EQ((Fh{1, 2}.key()), (Fh{1, 2}.key()));
}

TEST(NfsTypes, FattrRoundTrip) {
  Fattr f{sample_attr()};
  xdr::XdrEncoder enc;
  f.encode(enc);
  EXPECT_EQ(enc.size(), Fattr::wire_size());
  xdr::XdrDecoder dec(enc.bytes());
  auto back = Fattr::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->a.size, 320_MiB);
  EXPECT_EQ(back->a.mtime, 6 * kSecond + 123);
  EXPECT_EQ(back->a.fileid, 42u);
  EXPECT_EQ(back->a.type, vfs::FileType::kRegular);
}

TEST(NfsTypes, PostOpAttrBothArms) {
  PostOpAttr with;
  with.attr = sample_attr();
  xdr::XdrEncoder e1;
  with.encode(e1);
  EXPECT_EQ(e1.size(), with.wire_size());

  PostOpAttr without;
  xdr::XdrEncoder e2;
  without.encode(e2);
  EXPECT_EQ(e2.size(), without.wire_size());
  EXPECT_EQ(e2.size(), 4u);
}

TEST(NfsTypes, SattrRoundTrip) {
  Sattr s;
  s.sa.set_size = true;
  s.sa.size = 99;
  s.sa.set_mode = true;
  s.sa.mode = 0600;
  xdr::XdrEncoder enc;
  s.encode(enc);
  EXPECT_EQ(enc.size(), s.wire_size());
  xdr::XdrDecoder dec(enc.bytes());
  auto back = Sattr::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back->sa.set_size);
  EXPECT_EQ(back->sa.size, 99u);
  EXPECT_TRUE(back->sa.set_mode);
  EXPECT_FALSE(back->sa.set_uid);
}

TEST(NfsTypes, LookupRoundTrip) {
  LookupArgs a;
  a.dir = Fh{1, 5};
  a.name = "vm1.vmss";
  auto raw = encode_checked(a);
  xdr::XdrDecoder dec(raw);
  auto back = LookupArgs::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->name, "vm1.vmss");

  LookupRes r;
  r.fh = Fh{1, 9};
  r.obj_attr.attr = sample_attr();
  auto rraw = encode_checked(r);
  xdr::XdrDecoder rdec(rraw);
  auto rback = LookupRes::decode(rdec);
  ASSERT_TRUE(rback.is_ok());
  EXPECT_EQ(rback->fh, (Fh{1, 9}));
  ASSERT_TRUE(rback->obj_attr.attr.has_value());

  LookupRes fail;
  fail.status = NfsStat::kNoEnt;
  auto fraw = encode_checked(fail);
  xdr::XdrDecoder fdec(fraw);
  auto fback = LookupRes::decode(fdec);
  ASSERT_TRUE(fback.is_ok());
  EXPECT_EQ(fback->status, NfsStat::kNoEnt);
}

TEST(NfsTypes, ReadRoundTripCarriesData) {
  ReadArgs a;
  a.fh = Fh{1, 7};
  a.offset = 64_KiB;
  a.count = 8_KiB;
  auto raw = encode_checked(a);
  xdr::XdrDecoder dec(raw);
  auto back = ReadArgs::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->offset, 64_KiB);
  EXPECT_EQ(back->count, 8_KiB);

  ReadRes r;
  r.count = 5;
  r.eof = true;
  r.data = blob::make_bytes(std::vector<u8>{1, 2, 3, 4, 5});
  r.attr.attr = sample_attr();
  auto rraw = encode_checked(r);
  xdr::XdrDecoder rdec(rraw);
  auto rback = ReadRes::decode(rdec);
  ASSERT_TRUE(rback.is_ok());
  EXPECT_EQ(rback->count, 5u);
  EXPECT_TRUE(rback->eof);
  EXPECT_EQ(blob::content_hash(*rback->data), blob::content_hash(*r.data));
}

TEST(NfsTypes, WriteRoundTrip) {
  WriteArgs a;
  a.fh = Fh{1, 7};
  a.offset = 100;
  a.count = 3;
  a.stable = StableHow::kUnstable;
  a.data = blob::make_bytes(std::vector<u8>{7, 8, 9});
  auto raw = encode_checked(a);
  xdr::XdrDecoder dec(raw);
  auto back = WriteArgs::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->stable, StableHow::kUnstable);
  EXPECT_EQ(blob::content_hash(*back->data), blob::content_hash(*a.data));

  WriteRes r;
  r.count = 3;
  r.committed = StableHow::kFileSync;
  r.verifier = 0xdead;
  auto rraw = encode_checked(r);
  xdr::XdrDecoder rdec(rraw);
  auto rback = WriteRes::decode(rdec);
  ASSERT_TRUE(rback.is_ok());
  EXPECT_EQ(rback->verifier, 0xdeadu);
}

TEST(NfsTypes, CreateMkdirSymlinkRoundTrip) {
  CreateArgs c;
  c.dir = Fh{1, 1};
  c.name = "new.txt";
  c.sattr.sa.set_mode = true;
  c.sattr.sa.mode = 0644;
  auto craw = encode_checked(c);
  xdr::XdrDecoder cdec(craw);
  EXPECT_TRUE(CreateArgs::decode(cdec).is_ok());

  MkdirArgs m;
  m.dir = Fh{1, 1};
  m.name = "dir";
  auto mraw = encode_checked(m);
  xdr::XdrDecoder mdec(mraw);
  EXPECT_TRUE(MkdirArgs::decode(mdec).is_ok());

  SymlinkArgs s;
  s.dir = Fh{1, 1};
  s.name = "link";
  s.target = "/exports/images/vm1-flat.vmdk";
  auto sraw = encode_checked(s);
  xdr::XdrDecoder sdec(sraw);
  auto sback = SymlinkArgs::decode(sdec);
  ASSERT_TRUE(sback.is_ok());
  EXPECT_EQ(sback->target, s.target);

  CreateRes r;
  r.fh = Fh{1, 10};
  r.attr.attr = sample_attr();
  auto rraw = encode_checked(r);
  xdr::XdrDecoder rdec(rraw);
  EXPECT_TRUE(CreateRes::decode(rdec).is_ok());
}

TEST(NfsTypes, RemoveRenameRoundTrip) {
  RemoveArgs rm;
  rm.dir = Fh{1, 1};
  rm.name = "old";
  auto raw = encode_checked(rm);
  xdr::XdrDecoder dec(raw);
  EXPECT_TRUE(RemoveArgs::decode(dec).is_ok());

  RenameArgs rn;
  rn.from_dir = Fh{1, 1};
  rn.from_name = "a";
  rn.to_dir = Fh{1, 2};
  rn.to_name = "b";
  auto rraw = encode_checked(rn);
  xdr::XdrDecoder rdec(rraw);
  auto back = RenameArgs::decode(rdec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->to_name, "b");

  RemoveRes res;
  res.dir_attr.attr = sample_attr();
  auto resraw = encode_checked(res);
  xdr::XdrDecoder resdec(resraw);
  EXPECT_TRUE(RemoveRes::decode(resdec).is_ok());
}

TEST(NfsTypes, ReaddirRoundTrip) {
  ReaddirArgs a;
  a.dir = Fh{1, 1};
  a.cookie = 3;
  auto raw = encode_checked(a);
  xdr::XdrDecoder dec(raw);
  EXPECT_TRUE(ReaddirArgs::decode(dec).is_ok());

  ReaddirRes r;
  r.dir_attr.attr = sample_attr();
  r.entries.push_back({10, "a.txt", 1});
  r.entries.push_back({11, "b.txt", 2});
  r.eof = false;
  auto rraw = encode_checked(r);
  xdr::XdrDecoder rdec(rraw);
  auto back = ReaddirRes::decode(rdec);
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back->entries.size(), 2u);
  EXPECT_EQ(back->entries[1].name, "b.txt");
  EXPECT_FALSE(back->eof);
}

TEST(NfsTypes, FsstatFsinfoCommitRoundTrip) {
  FsstatRes fs;
  fs.attr.attr = sample_attr();
  fs.total_bytes = 576_GiB;
  fs.free_bytes = 100_GiB;
  auto raw = encode_checked(fs);
  xdr::XdrDecoder dec(raw);
  auto back = FsstatRes::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->total_bytes, 576_GiB);

  FsinfoRes fi;
  fi.rtmax = fi.wtmax = kMaxBlockSize;
  auto firaw = encode_checked(fi);
  xdr::XdrDecoder fidec(firaw);
  auto fiback = FsinfoRes::decode(fidec);
  ASSERT_TRUE(fiback.is_ok());
  EXPECT_EQ(fiback->rtmax, kMaxBlockSize);

  CommitArgs ca;
  ca.fh = Fh{1, 2};
  auto caraw = encode_checked(ca);
  xdr::XdrDecoder cadec(caraw);
  EXPECT_TRUE(CommitArgs::decode(cadec).is_ok());

  CommitRes cr;
  cr.verifier = 7;
  auto crraw = encode_checked(cr);
  xdr::XdrDecoder crdec(crraw);
  auto crback = CommitRes::decode(crdec);
  ASSERT_TRUE(crback.is_ok());
  EXPECT_EQ(crback->verifier, 7u);
}

TEST(NfsTypes, MountRoundTrip) {
  MountArgs a;
  a.dirpath = "/exports/images";
  auto raw = encode_checked(a);
  xdr::XdrDecoder dec(raw);
  auto back = MountArgs::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->dirpath, "/exports/images");

  MountRes r;
  r.root = Fh{1, 1};
  auto rraw = encode_checked(r);
  xdr::XdrDecoder rdec(rraw);
  auto rback = MountRes::decode(rdec);
  ASSERT_TRUE(rback.is_ok());
  EXPECT_EQ(rback->root, (Fh{1, 1}));
}

TEST(NfsTypes, GetattrSetattrAccessReadlinkRoundTrip) {
  GetattrArgs g;
  g.fh = Fh{1, 3};
  auto graw = encode_checked(g);
  xdr::XdrDecoder gdec(graw);
  EXPECT_TRUE(GetattrArgs::decode(gdec).is_ok());

  GetattrRes gr;
  gr.attr = Fattr{sample_attr()};
  auto grraw = encode_checked(gr);
  xdr::XdrDecoder grdec(grraw);
  EXPECT_TRUE(GetattrRes::decode(grdec).is_ok());

  SetattrArgs s;
  s.fh = Fh{1, 3};
  s.sattr.sa.set_size = true;
  s.sattr.sa.size = 0;
  auto sraw = encode_checked(s);
  xdr::XdrDecoder sdec(sraw);
  EXPECT_TRUE(SetattrArgs::decode(sdec).is_ok());

  AccessArgs ac;
  ac.fh = Fh{1, 3};
  ac.access = 0x3f;
  auto acraw = encode_checked(ac);
  xdr::XdrDecoder acdec(acraw);
  EXPECT_TRUE(AccessArgs::decode(acdec).is_ok());

  ReadlinkRes rl;
  rl.target = "/exports/images/vm1.vmdk";
  auto rlraw = encode_checked(rl);
  xdr::XdrDecoder rldec(rlraw);
  auto rlback = ReadlinkRes::decode(rldec);
  ASSERT_TRUE(rlback.is_ok());
  EXPECT_EQ(rlback->target, rl.target);
}

TEST(NfsTypes, ErrorResultsEncodeSmaller) {
  ReadRes ok;
  ok.count = 4096;
  ok.data = blob::make_zero(4096);
  ReadRes fail;
  fail.status = NfsStat::kStale;
  EXPECT_LT(fail.wire_size(), ok.wire_size());
  auto raw = encode_checked(fail);
  xdr::XdrDecoder dec(raw);
  auto back = ReadRes::decode(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->status, NfsStat::kStale);
}

}  // namespace
}  // namespace gvfs::nfs
