// Tests for the proxy disk cache (set-associative geometry, LRU within sets,
// write policies, middleware signals, sharing invariants) and the whole-file
// cache behind the meta-data channel. Includes parameterized sweeps over
// geometry as property tests.
#include <gtest/gtest.h>

#include "test_util.h"

#include "cache/block_cache.h"
#include "cache/file_cache.h"
#include "common/rng.h"
#include "sim/kernel.h"

namespace gvfs::cache {
namespace {

blob::BlobRef block_data(u8 fill, u64 size = 32_KiB) {
  return blob::make_bytes(std::vector<u8>(size, fill));
}

struct CacheFixture {
  sim::SimKernel kernel;
  sim::DiskModel disk{kernel, "cdisk", sim::DiskConfig{}};

  BlockCacheConfig small_cfg() {
    BlockCacheConfig cfg;
    cfg.capacity_bytes = 64 * 32_KiB;  // 64 frames
    cfg.block_size = 32_KiB;
    cfg.num_banks = 4;
    cfg.associativity = 4;  // 16 sets
    return cfg;
  }

  void run(std::function<void(sim::Process&)> body) {
    kernel.run_process("t", std::move(body));
    EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  }
};

TEST(BlockCache, GeometryDerivedFromConfig) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  EXPECT_EQ(c.sets(), 16u);
}

TEST(BlockCache, PaperGeometry) {
  CacheFixture f;
  BlockCacheConfig cfg;  // defaults: 8 GB, 32 KB blocks, 512 banks, 16-way
  ProxyDiskCache c(f.disk, cfg);
  // 8 GiB / 32 KiB = 262144 frames; /16 = 16384 sets.
  EXPECT_EQ(c.sets(), 16384u);
}

TEST(BlockCache, MissThenHit) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  f.run([&](sim::Process& p) {
    BlockId id{42, 7};
    EXPECT_FALSE(c.lookup(p, id).has_value());
    ASSERT_TRUE(c.insert(p, id, block_data(1), false).is_ok());
    auto hit = c.lookup(p, id);
    ASSERT_TRUE(hit.has_value());
    std::vector<u8> buf(1);
    (*hit)->read(0, buf);
    EXPECT_EQ(buf[0], 1);
  });
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.resident_blocks(), 1u);
}

TEST(BlockCache, HitChargesCacheDiskTime) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  f.run([&](sim::Process& p) {
    BlockId id{1, 0};
    ASSERT_OK(c.insert(p, id, block_data(1), false));
    SimTime t0 = p.now();
    c.lookup(p, id);
    EXPECT_GT(p.now(), t0);  // disk access, not free
  });
}

TEST(BlockCache, ConsecutiveBlocksMapToConsecutiveSets) {
  CacheFixture f;
  auto cfg = f.small_cfg();
  ProxyDiskCache c(f.disk, cfg);
  f.run([&](sim::Process& p) {
    // Fill way beyond one set's associativity with consecutive blocks of one
    // file; nothing should evict because they spread across sets.
    for (u64 b = 0; b < 16; ++b) {
      ASSERT_TRUE(c.insert(p, BlockId{9, b}, block_data(static_cast<u8>(b)), false).is_ok());
    }
    EXPECT_EQ(c.evictions(), 0u);
    for (u64 b = 0; b < 16; ++b) {
      EXPECT_TRUE(c.lookup(p, BlockId{9, b}).has_value());
    }
  });
}

TEST(BlockCache, LruEvictionWithinSet) {
  CacheFixture f;
  auto cfg = f.small_cfg();
  ProxyDiskCache c(f.disk, cfg);
  f.run([&](sim::Process& p) {
    // Blocks spaced 16 apart land in the same set (16 sets).
    std::vector<BlockId> ids;
    for (u64 i = 0; i < 5; ++i) ids.push_back(BlockId{3, i * 16});
    for (u64 i = 0; i < 4; ++i) ASSERT_OK(c.insert(p, ids[i], block_data(1), false));
    c.lookup(p, ids[0]);  // refresh 0 -> victim should be 1
    ASSERT_OK(c.insert(p, ids[4], block_data(1), false));
    EXPECT_TRUE(c.contains(ids[0]));
    EXPECT_FALSE(c.contains(ids[1]));
    EXPECT_TRUE(c.contains(ids[4]));
  });
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(BlockCache, DirtyEvictionWritesBack) {
  CacheFixture f;
  auto cfg = f.small_cfg();
  ProxyDiskCache c(f.disk, cfg);
  std::vector<BlockId> written;
  c.set_writeback([&](sim::Process&, const BlockId& id, const blob::BlobRef&) {
    written.push_back(id);
    return Status::ok();
  });
  f.run([&](sim::Process& p) {
    for (u64 i = 0; i < 5; ++i) {
      ASSERT_OK(c.insert(p, BlockId{3, i * 16}, block_data(1), /*dirty=*/true));
    }
  });
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0].block, 0u);
  EXPECT_EQ(c.writebacks(), 1u);
  EXPECT_EQ(c.dirty_blocks(), 4u);
}

TEST(BlockCache, WriteThroughPushesImmediately) {
  CacheFixture f;
  auto cfg = f.small_cfg();
  cfg.policy = WritePolicy::kWriteThrough;
  ProxyDiskCache c(f.disk, cfg);
  int upstream_writes = 0;
  c.set_writeback([&](sim::Process&, const BlockId&, const blob::BlobRef&) {
    ++upstream_writes;
    return Status::ok();
  });
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(1), /*dirty=*/true));
  });
  EXPECT_EQ(upstream_writes, 1);
  EXPECT_EQ(c.dirty_blocks(), 0u);
}

TEST(BlockCache, WriteBackAllCleansButKeepsCached) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  int upstream_writes = 0;
  c.set_writeback([&](sim::Process&, const BlockId&, const blob::BlobRef&) {
    ++upstream_writes;
    return Status::ok();
  });
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(1), true));
    ASSERT_OK(c.insert(p, BlockId{1, 1}, block_data(2), true));
    ASSERT_OK(c.insert(p, BlockId{1, 2}, block_data(3), false));
    ASSERT_TRUE(c.write_back_all(p).is_ok());
    EXPECT_EQ(c.dirty_blocks(), 0u);
    EXPECT_EQ(c.resident_blocks(), 3u);  // still cached
    EXPECT_TRUE(c.lookup(p, BlockId{1, 0}).has_value());
  });
  EXPECT_EQ(upstream_writes, 2);
}

TEST(BlockCache, FlushAndInvalidateEmptiesCache) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  c.set_writeback([](sim::Process&, const BlockId&, const blob::BlobRef&) {
    return Status::ok();
  });
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(1), true));
    ASSERT_TRUE(c.flush_and_invalidate(p).is_ok());
    EXPECT_EQ(c.resident_blocks(), 0u);
    EXPECT_FALSE(c.lookup(p, BlockId{1, 0}).has_value());
  });
}

TEST(BlockCache, InvalidateFileDropsOnlyThatFile) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(1), false));
    ASSERT_OK(c.insert(p, BlockId{2, 0}, block_data(2), false));
    c.invalidate_file(1);
    EXPECT_FALSE(c.contains(BlockId{1, 0}));
    EXPECT_TRUE(c.contains(BlockId{2, 0}));
  });
}

TEST(BlockCache, MergeUpdatesRangeAndMarksDirty) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(0xaa, 1024), false));
    auto merged = c.merge(p, BlockId{1, 0}, 100,
                          blob::make_bytes(std::vector<u8>(10, 0xbb)));
    ASSERT_TRUE(merged.is_ok());
    std::vector<u8> buf(1024);
    (*merged)->read(0, buf);
    EXPECT_EQ(buf[99], 0xaa);
    EXPECT_EQ(buf[100], 0xbb);
    EXPECT_EQ(buf[110], 0xaa);
    EXPECT_EQ(c.dirty_blocks(), 1u);
    EXPECT_EQ(c.merge(p, BlockId{9, 9}, 0, block_data(1, 8)).code(), ErrCode::kNoEnt);
  });
}

TEST(BlockCache, BanksCreatedOnDemand) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  f.run([&](sim::Process& p) {
    EXPECT_EQ(c.banks_created(), 0u);
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(1), false));
    EXPECT_GE(c.banks_created(), 1u);
  });
}

TEST(BlockCache, ResidentBytesTracksPayload) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, f.small_cfg());
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(1, 32_KiB), false));
    ASSERT_OK(c.insert(p, BlockId{1, 1}, block_data(1, 10_KiB), false));  // short tail block
    EXPECT_EQ(c.resident_bytes(), 42_KiB);
  });
}

// ------------------------------------------------------ content dedup store --

BlockCacheConfig dedup_cfg(CacheFixture& f, u32 key_bits = 64) {
  BlockCacheConfig cfg = f.small_cfg();
  cfg.dedup_blocks = true;
  cfg.dedup_key_bits = key_bits;
  return cfg;
}

TEST(BlockCacheDedup, AliasChargesResidentOnce) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, dedup_cfg(f));
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(7), false));
    ASSERT_OK(c.insert(p, BlockId{2, 5}, block_data(7), false));  // identical bytes
    EXPECT_EQ(c.resident_blocks(), 2u);          // two addressable frames...
    EXPECT_EQ(c.resident_bytes(), 32_KiB);       // ...one resident payload
    EXPECT_EQ(c.dedup_entries(), 1u);
    EXPECT_EQ(c.dedup_aliases(), 1u);
    EXPECT_EQ(c.dedup_bytes_saved(), 32_KiB);
    // Both frames still serve the right bytes.
    for (BlockId id : {BlockId{1, 0}, BlockId{2, 5}}) {
      auto hit = c.lookup(p, id);
      ASSERT_TRUE(hit.has_value());
      std::vector<u8> buf(1);
      (*hit)->read(0, buf);
      EXPECT_EQ(buf[0], 7);
    }
  });
}

TEST(BlockCacheDedup, LookupFingerprintFindsResidentBlock) {
  CacheFixture f;
  BlockCacheConfig cfg = dedup_cfg(f);
  ProxyDiskCache c(f.disk, cfg);
  f.run([&](sim::Process& p) {
    auto data = block_data(9);
    u64 fp = data->fingerprint(cfg.dedup_seed, 0, data->size());
    EXPECT_FALSE(c.lookup_fingerprint(fp, data->size()).has_value());
    ASSERT_OK(c.insert(p, BlockId{3, 1}, data, false));
    auto hit = c.lookup_fingerprint(fp, data->size());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(c.dedup_hits(), 1u);
    std::vector<u8> buf(1);
    (*hit)->read(0, buf);
    EXPECT_EQ(buf[0], 9);
    // Size is part of the identity check: same fp, wrong size misses.
    EXPECT_FALSE(c.lookup_fingerprint(fp, 16_KiB).has_value());
  });
}

TEST(BlockCacheDedup, CowSplitRechargesAndLeavesAliasIntact) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, dedup_cfg(f));
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(7), false));
    ASSERT_OK(c.insert(p, BlockId{2, 0}, block_data(7), false));
    ASSERT_EQ(c.resident_bytes(), 32_KiB);
    // Writing into one alias splits it off the shared payload.
    auto merged = c.merge(p, BlockId{2, 0}, 0, blob::make_bytes(std::vector<u8>(8, 0xee)));
    ASSERT_TRUE(merged.is_ok());
    EXPECT_EQ(c.resident_bytes(), 2 * 32_KiB);  // private copy re-charged
    std::vector<u8> buf(1);
    (*merged)->read(0, buf);
    EXPECT_EQ(buf[0], 0xee);
    // The other alias still reads the original bytes.
    auto orig = c.lookup(p, BlockId{1, 0});
    ASSERT_TRUE(orig.has_value());
    (*orig)->read(0, buf);
    EXPECT_EQ(buf[0], 7);
  });
}

TEST(BlockCacheDedup, DirtyInsertStaysPrivate) {
  CacheFixture f;
  BlockCacheConfig cfg = dedup_cfg(f);
  ProxyDiskCache c(f.disk, cfg);
  f.run([&](sim::Process& p) {
    auto data = block_data(4);
    ASSERT_OK(c.insert(p, BlockId{1, 0}, data, /*dirty=*/true));
    // Dirty bytes never enter the store: no entry, no fingerprint hit.
    EXPECT_EQ(c.dedup_entries(), 0u);
    u64 fp = data->fingerprint(cfg.dedup_seed, 0, data->size());
    EXPECT_FALSE(c.lookup_fingerprint(fp, data->size()).has_value());
    // A second identical dirty insert charges its own bytes.
    ASSERT_OK(c.insert(p, BlockId{2, 0}, block_data(4), /*dirty=*/true));
    EXPECT_EQ(c.resident_bytes(), 2 * 32_KiB);
    EXPECT_EQ(c.dedup_aliases(), 0u);
  });
}

TEST(BlockCacheDedup, NarrowKeyBitsForcesCollisionNotAliasing) {
  CacheFixture f;
  // One key bit: every fingerprint maps to one of two store slots, so
  // distinct contents collide. Collisions must be counted and must never
  // alias frames to the wrong bytes.
  ProxyDiskCache c(f.disk, dedup_cfg(f, /*key_bits=*/1));
  f.run([&](sim::Process& p) {
    for (u8 fill = 1; fill <= 8; ++fill) {
      ASSERT_OK(c.insert(p, BlockId{1, fill}, block_data(fill), false));
    }
    EXPECT_GE(c.dedup_collisions(), 6u);  // 8 keys into 2 slots
    EXPECT_EQ(c.dedup_aliases(), 0u);
    EXPECT_LE(c.dedup_entries(), 2u);
    for (u8 fill = 1; fill <= 8; ++fill) {
      auto hit = c.lookup(p, BlockId{1, fill});
      ASSERT_TRUE(hit.has_value());
      std::vector<u8> buf(1);
      (*hit)->read(0, buf);
      EXPECT_EQ(buf[0], fill);
    }
  });
}

TEST(BlockCacheDedup, InvalidateAllClearsStore) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, dedup_cfg(f));
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(7), false));
    ASSERT_OK(c.insert(p, BlockId{2, 0}, block_data(7), false));
    c.invalidate_all();
    EXPECT_EQ(c.dedup_entries(), 0u);
    EXPECT_EQ(c.resident_bytes(), 0u);
    // Cache works normally afterwards.
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(8), false));
    EXPECT_EQ(c.resident_bytes(), 32_KiB);
    EXPECT_EQ(c.dedup_entries(), 1u);
  });
}

TEST(BlockCacheDedup, InvalidateFileReleasesAliasKeepsPayload) {
  CacheFixture f;
  ProxyDiskCache c(f.disk, dedup_cfg(f));
  f.run([&](sim::Process& p) {
    ASSERT_OK(c.insert(p, BlockId{1, 0}, block_data(7), false));
    ASSERT_OK(c.insert(p, BlockId{2, 0}, block_data(7), false));
    c.invalidate_file(2);
    // File 1 still holds a ref, so the payload stays charged and findable.
    EXPECT_EQ(c.resident_bytes(), 32_KiB);
    EXPECT_EQ(c.dedup_entries(), 1u);
    EXPECT_TRUE(c.contains(BlockId{1, 0}));
    c.invalidate_file(1);
    EXPECT_EQ(c.resident_bytes(), 0u);
    EXPECT_EQ(c.dedup_entries(), 0u);
  });
}

TEST(BlockCacheDedup, OffByDefaultIsInert) {
  CacheFixture f;
  BlockCacheConfig cfg = f.small_cfg();  // dedup_blocks defaults to false
  ProxyDiskCache c(f.disk, cfg);
  f.run([&](sim::Process& p) {
    auto data = block_data(7);
    ASSERT_OK(c.insert(p, BlockId{1, 0}, data, false));
    ASSERT_OK(c.insert(p, BlockId{2, 0}, block_data(7), false));
    EXPECT_EQ(c.resident_bytes(), 2 * 32_KiB);  // both charged: no aliasing
    EXPECT_EQ(c.dedup_entries(), 0u);
    EXPECT_EQ(c.dedup_aliases(), 0u);
    u64 fp = data->fingerprint(cfg.dedup_seed, 0, data->size());
    EXPECT_FALSE(c.lookup_fingerprint(fp, data->size()).has_value());
  });
}

// Parameterized geometry sweep: for any (associativity, banks) geometry, a
// working set within capacity never thrashes, and data integrity holds under
// a random access pattern.
struct Geometry {
  u32 assoc;
  u32 banks;
  u64 frames;
};

class BlockCacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(BlockCacheGeometry, IntegrityAndNoThrashWithinCapacity) {
  Geometry g = GetParam();
  sim::SimKernel kernel;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  BlockCacheConfig cfg;
  cfg.block_size = 8_KiB;
  cfg.capacity_bytes = g.frames * cfg.block_size;
  cfg.associativity = g.assoc;
  cfg.num_banks = g.banks;
  ProxyDiskCache c(disk, cfg);
  kernel.run_process("t", [&](sim::Process& p) {
    SplitMix64 rng(g.assoc * 1000 + g.banks);
    // Insert a working set of one file's consecutive blocks, half capacity.
    u64 ws = g.frames / 2;
    for (u64 b = 0; b < ws; ++b) {
      ASSERT_TRUE(
          c.insert(p, BlockId{7, b}, block_data(static_cast<u8>(b), 8_KiB), false).is_ok());
    }
    // Random re-reads all hit and return the right data.
    for (int i = 0; i < 200; ++i) {
      u64 b = rng.next_below(ws);
      auto hit = c.lookup(p, BlockId{7, b});
      ASSERT_TRUE(hit.has_value()) << "assoc=" << g.assoc << " block=" << b;
      std::vector<u8> buf(1);
      (*hit)->read(0, buf);
      EXPECT_EQ(buf[0], static_cast<u8>(b));
    }
    EXPECT_EQ(c.evictions(), 0u);
  });
  EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BlockCacheGeometry,
    ::testing::Values(Geometry{1, 1, 64}, Geometry{2, 2, 64}, Geometry{4, 4, 128},
                      Geometry{8, 16, 256}, Geometry{16, 32, 512},
                      Geometry{16, 512, 1024}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "assoc" + std::to_string(info.param.assoc) + "banks" +
             std::to_string(info.param.banks) + "frames" +
             std::to_string(info.param.frames);
    });

// ---------------------------------------------------------------- FileCache --

TEST(FileCache, PutReadBack) {
  CacheFixture f;
  FileCache fc(f.disk);
  auto content = blob::make_synthetic(5, 1_MiB, 0.5, 2.0);
  f.run([&](sim::Process& p) {
    ASSERT_TRUE(fc.put(p, 1, content).is_ok());
    EXPECT_TRUE(fc.contains(1));
    EXPECT_EQ(fc.cached_size(1), content->size());
    auto range = fc.read(p, 1, 100, 50);
    ASSERT_TRUE(range.has_value());
    std::vector<u8> got(50), expect(50);
    (*range)->read(0, got);
    content->read(100, expect);
    EXPECT_EQ(got, expect);
  });
  EXPECT_EQ(fc.hits(), 1u);
}

TEST(FileCache, MissReturnsNullopt) {
  CacheFixture f;
  FileCache fc(f.disk);
  f.run([&](sim::Process& p) { EXPECT_FALSE(fc.read(p, 9, 0, 10).has_value()); });
  EXPECT_EQ(fc.misses(), 1u);
}

TEST(FileCache, CapacityEvictsLru) {
  CacheFixture f;
  FileCache fc(f.disk, FileCacheConfig{2_MiB});
  f.run([&](sim::Process& p) {
    ASSERT_OK(fc.put(p, 1, blob::make_zero(1_MiB)));
    ASSERT_OK(fc.put(p, 2, blob::make_zero(1_MiB)));
    fc.read(p, 1, 0, 1);  // refresh 1
    ASSERT_OK(fc.put(p, 3, blob::make_zero(1_MiB)));
    EXPECT_TRUE(fc.contains(1));
    EXPECT_FALSE(fc.contains(2));
    EXPECT_TRUE(fc.contains(3));
  });
  EXPECT_EQ(fc.evictions(), 1u);
}

TEST(FileCache, DirtyEvictionUploads) {
  CacheFixture f;
  FileCache fc(f.disk, FileCacheConfig{1_MiB});
  std::vector<u64> uploaded;
  fc.set_upload([&](sim::Process&, u64 key, const blob::BlobRef&) {
    uploaded.push_back(key);
    return Status::ok();
  });
  f.run([&](sim::Process& p) {
    ASSERT_OK(fc.put(p, 1, blob::make_zero(512_KiB), /*dirty=*/true));
    ASSERT_OK(fc.put(p, 2, blob::make_zero(1_MiB)));  // evicts dirty 1
  });
  EXPECT_EQ(uploaded, (std::vector<u64>{1}));
}

TEST(FileCache, WriteMarksDirtyAndWriteBackUploads) {
  CacheFixture f;
  FileCache fc(f.disk);
  int uploads = 0;
  fc.set_upload([&](sim::Process&, u64, const blob::BlobRef& content) {
    EXPECT_EQ(content->size(), 1_MiB);
    ++uploads;
    return Status::ok();
  });
  f.run([&](sim::Process& p) {
    ASSERT_OK(fc.put(p, 1, blob::make_zero(1_MiB)));
    ASSERT_TRUE(fc.write(p, 1, 100, blob::make_bytes(std::vector<u8>(8, 0xcc))).is_ok());
    ASSERT_TRUE(fc.write_back_all(p).is_ok());
    ASSERT_TRUE(fc.write_back_all(p).is_ok());  // idempotent: clean now
    auto back = fc.read(p, 1, 100, 8);
    std::vector<u8> got(8);
    (*back)->read(0, got);
    EXPECT_EQ(got, std::vector<u8>(8, 0xcc));
  });
  EXPECT_EQ(uploads, 1);
}

// Regression for the cross-yield defects the yield-point analyzer surfaced in
// FileCache::read: the Entry reference acquired before disk_.access() used to
// be dereferenced after it, but the disk access yields — and a concurrent
// invalidate() erases the entry. The fix copies the content handle before the
// yield and re-finds for the LRU bookkeeping.
TEST(FileCache, InvalidateDuringReadStillServesCopiedContent) {
  CacheFixture f;
  FileCache fc(f.disk);
  auto content = blob::make_synthetic(6, 1_MiB, 0.0, 2.0);
  bool read_started = false;
  f.kernel.spawn("reader", [&](sim::Process& p) {
    ASSERT_OK(fc.put(p, 1, content));
    read_started = true;
    auto range = fc.read(p, 1, 0, 1_MiB);  // parks on the cache disk
    ASSERT_TRUE(range.has_value());
    std::vector<u8> got(1_MiB), expect(1_MiB);
    (*range)->read(0, got);
    content->read(0, expect);
    EXPECT_EQ(got, expect);  // the copied handle outlived the invalidate
  });
  f.kernel.spawn("invalidator", [&](sim::Process& p) {
    while (!read_started) p.delay(kMillisecond);
    p.delay(kMillisecond);  // land inside the reader's disk access
    ASSERT_TRUE(fc.contains(1));
    fc.invalidate(1);
  });
  f.kernel.run();
  EXPECT_EQ(f.kernel.failed_processes(), 0) << f.kernel.failed_names_joined();
  EXPECT_FALSE(fc.contains(1));
}

// Same family, in write_back_all: the range-for over lru_ used to stay parked
// on a list node across the upload yield, and a concurrent invalidate could
// unlink that very node. The fix snapshots the dirty keys and re-finds after
// each upload; an entry invalidated mid-drain is skipped, not chased.
TEST(FileCache, InvalidateDuringWriteBackUploadIsSafe) {
  CacheFixture f;
  FileCache fc(f.disk);
  std::vector<u64> uploaded;
  fc.set_upload([&](sim::Process&, u64 key, const blob::BlobRef&) {
    uploaded.push_back(key);
    // Concurrent drop of the entry being uploaded AND of the next dirty one.
    fc.invalidate(1);
    fc.invalidate(2);
    return Status::ok();
  });
  f.run([&](sim::Process& p) {
    ASSERT_OK(fc.put(p, 1, blob::make_zero(64_KiB), /*dirty=*/true));
    ASSERT_OK(fc.put(p, 2, blob::make_zero(64_KiB), /*dirty=*/true));
    ASSERT_OK(fc.write_back_all(p));
  });
  // The drain walks MRU-first, so key 2 uploads; key 1 was invalidated before
  // its turn came: one upload, no dangling list node.
  EXPECT_EQ(uploaded, (std::vector<u64>{2}));
  EXPECT_FALSE(fc.contains(1));
  EXPECT_FALSE(fc.contains(2));
}

TEST(FileCache, WriteToAbsentFileFails) {
  CacheFixture f;
  FileCache fc(f.disk);
  f.run([&](sim::Process& p) {
    EXPECT_EQ(fc.write(p, 5, 0, block_data(1, 8)).code(), ErrCode::kNoEnt);
  });
}

TEST(FileCache, InvalidateDrops) {
  CacheFixture f;
  FileCache fc(f.disk);
  f.run([&](sim::Process& p) {
    ASSERT_OK(fc.put(p, 1, blob::make_zero(1_KiB)));
    ASSERT_OK(fc.put(p, 2, blob::make_zero(1_KiB)));
    fc.invalidate(1);
    EXPECT_FALSE(fc.contains(1));
    EXPECT_TRUE(fc.contains(2));
    fc.invalidate_all();
    EXPECT_EQ(fc.files_cached(), 0u);
    EXPECT_EQ(fc.resident_bytes(), 0u);
  });
}

TEST(FileCache, SequentialReadsCheaperThanRandom) {
  CacheFixture f;
  FileCache fc(f.disk);
  f.run([&](sim::Process& p) {
    ASSERT_OK(fc.put(p, 1, blob::make_zero(4_MiB)));
    SimTime t0 = p.now();
    for (u64 off = 0; off < 4_MiB; off += 64_KiB) fc.read(p, 1, off, 64_KiB);
    SimTime seq = p.now() - t0;
    t0 = p.now();
    SplitMix64 rng(4);
    for (int i = 0; i < 64; ++i) {
      fc.read(p, 1, rng.next_below(63) * 64_KiB, 64_KiB);
    }
    SimTime random = p.now() - t0;
    EXPECT_LT(seq, random);
  });
}

}  // namespace
}  // namespace gvfs::cache
