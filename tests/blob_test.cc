// Tests for lazy content blobs and the sparse extent store, including the
// copy-on-write snapshot semantics the whole zero-copy data path rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "blob/blob.h"
#include "blob/extent_store.h"
#include "common/rng.h"

namespace gvfs::blob {
namespace {

std::vector<u8> materialize(const Blob& b, u64 off, u64 len) {
  std::vector<u8> out(len);
  b.read(off, out);
  return out;
}

TEST(BytesBlob, ReadBack) {
  std::vector<u8> data{1, 2, 3, 4, 5};
  BytesBlob b(data);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(materialize(b, 1, 3), (std::vector<u8>{2, 3, 4}));
}

TEST(BytesBlob, ZeroRange) {
  std::vector<u8> data(100, 0);
  data[50] = 7;
  BytesBlob b(data);
  EXPECT_TRUE(b.is_zero_range(0, 50));
  EXPECT_FALSE(b.is_zero_range(0, 51));
  EXPECT_TRUE(b.is_zero_range(51, 49));
}

TEST(BytesBlob, CompressedSizeReflectsContent) {
  std::vector<u8> zeros(16_KiB, 0);
  std::vector<u8> uniform(16_KiB, 42);
  std::vector<u8> noisy(16_KiB);
  for (std::size_t i = 0; i < noisy.size(); ++i) noisy[i] = static_cast<u8>(i * 31);
  u64 cz = BytesBlob(zeros).compressed_size(0, 16_KiB);
  u64 cu = BytesBlob(uniform).compressed_size(0, 16_KiB);
  u64 cn = BytesBlob(noisy).compressed_size(0, 16_KiB);
  EXPECT_LT(cz, 256u);
  EXPECT_LT(cu, cn);
  EXPECT_LE(cn, 17_KiB);
}

TEST(ZeroBlob, AllZero) {
  ZeroBlob z(1_MiB);
  EXPECT_EQ(z.size(), 1_MiB);
  EXPECT_TRUE(z.is_zero_range(0, 1_MiB));
  auto bytes = materialize(z, 12345, 100);
  EXPECT_TRUE(std::all_of(bytes.begin(), bytes.end(), [](u8 v) { return v == 0; }));
  EXPECT_LT(z.compressed_size(), 2_KiB);
}

TEST(SyntheticBlob, DeterministicContent) {
  SyntheticBlob a(7, 1_MiB, 0.5, 2.0);
  SyntheticBlob b(7, 1_MiB, 0.5, 2.0);
  EXPECT_EQ(materialize(a, 100_KiB, 256), materialize(b, 100_KiB, 256));
  EXPECT_EQ(content_hash(a), content_hash(b));
  SyntheticBlob c(8, 1_MiB, 0.5, 2.0);
  EXPECT_NE(content_hash(a), content_hash(c));
}

TEST(SyntheticBlob, ZeroFractionApproximatelyHonored) {
  // Zero-ness is decided per 16-page run, so use a large blob to tighten the
  // sample error around the configured fraction.
  SyntheticBlob b(3, 128_MiB, 0.92, 3.0);
  u64 zero_pages = 0, pages = 128_MiB / kPage;
  for (u64 p = 0; p < pages; ++p) {
    if (b.page_is_zero(p)) ++zero_pages;
  }
  double frac = static_cast<double>(zero_pages) / static_cast<double>(pages);
  EXPECT_NEAR(frac, 0.92, 0.02);
}

TEST(SyntheticBlob, ZeroPagesReadAsZero) {
  SyntheticBlob b(3, 1_MiB, 0.5, 2.0);
  for (u64 p = 0; p < 1_MiB / kPage; ++p) {
    auto bytes = materialize(b, p * kPage, kPage);
    bool all_zero = std::all_of(bytes.begin(), bytes.end(), [](u8 v) { return v == 0; });
    EXPECT_EQ(all_zero, b.page_is_zero(p));
    EXPECT_EQ(b.is_zero_range(p * kPage, kPage), all_zero);
  }
}

TEST(SyntheticBlob, CompressedSizeTracksZeroFraction) {
  SyntheticBlob mostly_zero(1, 8_MiB, 0.92, 3.0);
  SyntheticBlob half_zero(1, 8_MiB, 0.5, 3.0);
  EXPECT_LT(mostly_zero.compressed_size(), half_zero.compressed_size());
  // ~8% nonzero at ratio 3 => ~2.7% of size plus epsilon.
  EXPECT_LT(mostly_zero.compressed_size(), 8_MiB / 20);
}

TEST(SliceBlob, WindowsIntoBase) {
  std::vector<u8> data(256);
  std::iota(data.begin(), data.end(), 0);
  auto base = make_bytes(std::move(data));
  SliceBlob s(base, 10, 50);
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(materialize(s, 0, 3), (std::vector<u8>{10, 11, 12}));
  EXPECT_EQ(materialize(s, 47, 3), (std::vector<u8>{57, 58, 59}));
}

TEST(RangeHash, MatchesConcatenation) {
  auto b = make_synthetic(9, 256_KiB, 0.3, 2.0);
  // Hash over the whole range equals hashing in one go (chunked internally).
  EXPECT_EQ(range_hash(*b, 0, b->size()), content_hash(*b));
}

// ---------------------------------------------------------- ExtentStore ----

TEST(ExtentStore, EmptyReadsZero) {
  ExtentStore es;
  es.truncate(100);
  EXPECT_EQ(es.size(), 100u);
  std::vector<u8> buf(100, 0xff);
  es.read(0, buf);
  EXPECT_TRUE(std::all_of(buf.begin(), buf.end(), [](u8 v) { return v == 0; }));
}

TEST(ExtentStore, WriteAndReadBack) {
  ExtentStore es;
  es.write(10, std::vector<u8>{1, 2, 3});
  EXPECT_EQ(es.size(), 13u);
  std::vector<u8> buf(13);
  es.read(0, buf);
  EXPECT_EQ(buf[9], 0);
  EXPECT_EQ(buf[10], 1);
  EXPECT_EQ(buf[12], 3);
}

TEST(ExtentStore, OverlappingWritesLastWins) {
  ExtentStore es;
  es.write(0, std::vector<u8>(10, 0xaa));
  es.write(3, std::vector<u8>(4, 0xbb));
  std::vector<u8> buf(10);
  es.read(0, buf);
  EXPECT_EQ(buf, (std::vector<u8>{0xaa, 0xaa, 0xaa, 0xbb, 0xbb, 0xbb, 0xbb, 0xaa, 0xaa, 0xaa}));
  EXPECT_EQ(es.extent_count(), 3u);  // left remainder, new, right remainder
}

TEST(ExtentStore, WriteSpanningMultipleExtents) {
  ExtentStore es;
  es.write(0, std::vector<u8>(4, 1));
  es.write(8, std::vector<u8>(4, 2));
  es.write(2, std::vector<u8>(8, 3));  // covers tail of first, hole, head of second
  std::vector<u8> buf(12);
  es.read(0, buf);
  EXPECT_EQ(buf, (std::vector<u8>{1, 1, 3, 3, 3, 3, 3, 3, 3, 3, 2, 2}));
}

TEST(ExtentStore, WriteBlobNoMaterialization) {
  ExtentStore es;
  auto big = make_synthetic(5, 512_MiB, 0.9, 3.0);
  es.write_blob(0, big, 0, big->size());
  EXPECT_EQ(es.size(), 512_MiB);
  EXPECT_EQ(es.materialized_bytes(), 0u);  // the point of the design
  std::vector<u8> probe(64);
  es.read(100_MiB, probe);
  std::vector<u8> expect(64);
  big->read(100_MiB, expect);
  EXPECT_EQ(probe, expect);
}

TEST(ExtentStore, TruncateShrinkDropsData) {
  ExtentStore es;
  es.write(0, std::vector<u8>(100, 7));
  es.truncate(40);
  EXPECT_EQ(es.size(), 40u);
  es.truncate(100);  // grow again: hole reads zero
  std::vector<u8> buf(100);
  es.read(0, buf);
  EXPECT_EQ(buf[39], 7);
  EXPECT_EQ(buf[40], 0);
}

TEST(ExtentStore, IsZeroRangeAcrossHolesAndExtents) {
  ExtentStore es;
  es.truncate(1000);
  es.write(100, std::vector<u8>(10, 0));   // explicit zeros
  es.write(500, std::vector<u8>(10, 9));
  EXPECT_TRUE(es.is_zero_range(0, 500));
  EXPECT_FALSE(es.is_zero_range(0, 510));
  EXPECT_TRUE(es.is_zero_range(510, 490));
}

TEST(ExtentStore, SnapshotIsImmutable) {
  ExtentStore es;
  es.write(0, std::vector<u8>{1, 2, 3, 4});
  BlobRef snap = es.snapshot();
  es.write(1, std::vector<u8>{9, 9});
  EXPECT_EQ(materialize(*snap, 0, 4), (std::vector<u8>{1, 2, 3, 4}));
  std::vector<u8> now(4);
  es.read(0, now);
  EXPECT_EQ(now, (std::vector<u8>{1, 9, 9, 4}));
}

TEST(ExtentStore, SnapshotZeroAndCompression) {
  ExtentStore es;
  es.truncate(100_KiB);
  es.write_blob(0, make_zero(50_KiB), 0, 50_KiB);
  BlobRef snap = es.snapshot();
  EXPECT_TRUE(snap->is_zero_range(0, 100_KiB));
  EXPECT_LT(snap->compressed_size(0, 100_KiB), 1_KiB);
}

TEST(ExtentStore, ResetReplacesContent) {
  ExtentStore es;
  es.write(0, std::vector<u8>(10, 1));
  es.reset(make_zero(5));
  EXPECT_EQ(es.size(), 5u);
  EXPECT_TRUE(es.is_zero_range(0, 5));
}

// Property: a randomized sequence of writes matches a reference vector model.
TEST(ExtentStoreProperty, RandomOpsMatchReference) {
  for (u64 seed = 1; seed <= 5; ++seed) {
    ExtentStore es;
    std::vector<u8> ref(4096, 0);
    SplitMix64 rng(seed);
    for (int op = 0; op < 300; ++op) {
      u64 off = rng.next_below(4000);
      u64 len = 1 + rng.next_below(96);
      u8 fill = static_cast<u8>(rng.next());
      std::vector<u8> data(len, fill);
      es.write(off, data);
      std::copy(data.begin(), data.end(), ref.begin() + static_cast<long>(off));
      if (op % 37 == 0) {
        u64 cut = rng.next_below(4096);
        es.truncate(cut);
        std::fill(ref.begin() + static_cast<long>(cut), ref.end(), 0);
        es.truncate(4096);
      }
    }
    es.truncate(4096);
    std::vector<u8> got(4096);
    es.read(0, got);
    EXPECT_EQ(got, ref) << "seed " << seed;
  }
}

TEST(BlobTeardown, DeepSliceChainDestructsIteratively) {
  // Regression: a long write/suspend session builds a SliceBlob-over-snapshot
  // chain one link per buffered write; dropping the head used to recurse one
  // destructor frame per link and blow the 8 MiB stack (interactive_session).
  BlobRef chain = make_zero(kPage);
  ExtentStore store;
  for (int i = 0; i < 200000; ++i) {
    store.reset(chain);
    chain = std::make_shared<SliceBlob>(store.snapshot(), 0, kPage);
  }
  EXPECT_EQ(chain->size(), kPage);
  store.reset(nullptr);
  chain.reset();  // must unwind on a worklist, not the call stack
}

// Reference FNV-1a over a byte range, seeded the fingerprint way.
u64 byte_exact_fp(std::span<const u8> bytes, u64 seed) {
  return fnv1a64(bytes, fingerprint_init(seed));
}

TEST(Fingerprint, EqualBytesEqualFingerprintAcrossSeeds) {
  std::vector<u8> bytes(4096);
  std::iota(bytes.begin(), bytes.end(), u8{1});
  BytesBlob a(bytes);
  BytesBlob b(bytes);
  u64 fa = a.fingerprint(kDefaultFingerprintSeed, 0, bytes.size());
  EXPECT_EQ(fa, b.fingerprint(kDefaultFingerprintSeed, 0, bytes.size()));
  EXPECT_EQ(fa, byte_exact_fp(bytes, kDefaultFingerprintSeed));
  // A different seed keys a different hash family.
  EXPECT_NE(fa, a.fingerprint(kDefaultFingerprintSeed + 1, 0, bytes.size()));
  // Different bytes, different fingerprint.
  bytes[100] ^= 0xff;
  EXPECT_NE(fa, BytesBlob(bytes).fingerprint(kDefaultFingerprintSeed, 0, bytes.size()));
}

TEST(Fingerprint, ZeroRunMatchesByteExactZeros) {
  // ZeroBlob's O(log n) fast-forward must land on the same state as hashing
  // the zeros byte by byte — otherwise zero blocks from different blob
  // representations never dedup against each other.
  for (u64 len : {u64{1}, u64{7}, u64{4096}, u64{8192}, u64{100000}}) {
    std::vector<u8> zeros(len, 0);
    u64 expect = byte_exact_fp(zeros, kDefaultFingerprintSeed);
    EXPECT_EQ(ZeroBlob(len).fingerprint(kDefaultFingerprintSeed, 0, len), expect)
        << "len " << len;
    // The chunked default implementation agrees too.
    EXPECT_EQ(BytesBlob(zeros).fingerprint(kDefaultFingerprintSeed, 0, len), expect)
        << "len " << len;
  }
  EXPECT_EQ(ZeroBlob(16).fingerprint(7, 0, 0), fingerprint_init(7));
}

TEST(Fingerprint, SyntheticAllZeroRangeMatchesZeroBlob) {
  auto s = make_synthetic(9, 256_KiB, 1.0, 2.0);  // every page zero
  EXPECT_EQ(s->fingerprint(kDefaultFingerprintSeed, 0, 8_KiB),
            ZeroBlob(8_KiB).fingerprint(kDefaultFingerprintSeed, 0, 8_KiB));
}

TEST(Fingerprint, SyntheticStructuralDigestIsStableAndContentKeyed) {
  auto a = make_synthetic(9, 256_KiB, 0.3, 2.0);
  auto b = make_synthetic(9, 256_KiB, 0.3, 2.0);
  auto c = make_synthetic(10, 256_KiB, 0.3, 2.0);
  u64 fa = a->fingerprint(kDefaultFingerprintSeed, 32_KiB, 32_KiB);
  EXPECT_EQ(fa, b->fingerprint(kDefaultFingerprintSeed, 32_KiB, 32_KiB));
  EXPECT_NE(fa, c->fingerprint(kDefaultFingerprintSeed, 32_KiB, 32_KiB));
  EXPECT_NE(fa, a->fingerprint(kDefaultFingerprintSeed, 64_KiB, 32_KiB));
}

TEST(Fingerprint, SliceDelegatesWithOffset) {
  std::vector<u8> bytes(16_KiB);
  std::iota(bytes.begin(), bytes.end(), u8{0});
  BlobRef base = make_bytes(bytes);
  SliceBlob slice(base, 4_KiB, 8_KiB);
  EXPECT_EQ(slice.fingerprint(kDefaultFingerprintSeed, 1_KiB, 2_KiB),
            base->fingerprint(kDefaultFingerprintSeed, 5_KiB, 2_KiB));
}

TEST(CompressedSize, NeverExceedsRangeLength) {
  // Regression: ZeroBlob's len/1000 + 16 model exceeded len for short
  // ranges, making the "compressed" wire size bigger than the raw bytes.
  ZeroBlob z(64_KiB);
  for (u64 len : {u64{0}, u64{1}, u64{8}, u64{15}, u64{16}, u64{17}, u64{4096}}) {
    EXPECT_LE(z.compressed_size(0, len), len) << "len " << len;
  }
  EXPECT_EQ(z.compressed_size(0, 0), 0u);

  auto s = make_synthetic(11, 1_MiB, 0.9, 3.0);
  for (u64 len : {u64{1}, u64{16}, u64{100}, u64{4096}, u64{64_KiB}}) {
    EXPECT_LE(s->compressed_size(0, len), len) << "len " << len;
    EXPECT_LE(s->compressed_size(512_KiB, len), len) << "len " << len;
  }

  SliceBlob slice(make_zero(1_MiB), 8, 1024);
  EXPECT_LE(slice.compressed_size(0, 8), 8u);

  ExtentStore es;
  es.write_blob(0, make_zero(4_KiB), 0, 4_KiB);
  auto snap = es.snapshot();
  for (u64 len : {u64{1}, u64{8}, u64{64}}) {
    EXPECT_LE(snap->compressed_size(0, len), len) << "len " << len;
  }
}

}  // namespace
}  // namespace gvfs::blob
