// Observability layer tests (ctest label: faults): the metrics registry
// (counter/gauge/histogram snapshots, deterministic JSON), the per-RPC trace
// ring, and end-to-end Testbed runs proving a single xid-keyed span crosses
// client -> proxy -> server and that metrics_json() carries the derived
// figures the benches embed in BENCH_*.json.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "blob/blob.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "gvfs/testbed.h"
#include "nfs/nfs_client.h"

namespace gvfs {
namespace {

// ---- Registry ---------------------------------------------------------------

TEST(MetricsRegistry, SnapshotIsSortedAcrossInstrumentKinds) {
  metrics::Counter c;
  metrics::Gauge g;
  metrics::Histogram h;
  c.inc(3);
  g.set(7);
  h.observe(1.0);
  h.observe(3.0);

  metrics::Registry r;
  // Registered out of order and across kinds; the snapshot interleaves them
  // sorted by id.
  r.register_histogram("b.hist", &h);
  r.register_counter("c.count", &c);
  r.register_gauge("a.gauge", &g);
  ASSERT_EQ(r.size(), 3u);

  auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "a.gauge");
  EXPECT_EQ(snap[0].second, "7");
  EXPECT_EQ(snap[1].first, "b.hist");
  EXPECT_EQ(snap[2].first, "c.count");
  EXPECT_EQ(snap[2].second, "3");
}

TEST(MetricsRegistry, RenderJsonIsDeterministic) {
  metrics::Counter c;
  c.inc(41);
  c.inc();
  metrics::Registry r;
  r.register_counter("nfs.calls", &c);
  EXPECT_EQ(r.to_json(), "{\"nfs.calls\": 42}");
  // A registry is a live view: bumping the instrument changes the next read.
  c.inc();
  EXPECT_EQ(r.to_json(), "{\"nfs.calls\": 43}");
}

TEST(MetricsRegistry, HistogramJsonCarriesMoments) {
  metrics::Histogram h;
  h.observe(2.0);
  h.observe(4.0);
  std::string j = metrics::histogram_json(h.stat());
  EXPECT_NE(j.find("\"count\": 2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"sum\": 6"), std::string::npos) << j;
  EXPECT_NE(j.find("\"mean\": 3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"min\": 2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"max\": 4"), std::string::npos) << j;
  h.reset();
  EXPECT_EQ(h.stat().count(), 0u);
}

TEST(MetricsRegistry, GaugeTracksLevelNotEvents) {
  metrics::Gauge g;
  g.add(10);
  g.sub(4);
  EXPECT_EQ(g.value(), 6u);
  g.set(100);
  EXPECT_EQ(g.value(), 100u);
  g.reset();
  EXPECT_EQ(g.value(), 0u);
}

// ---- RpcTracer --------------------------------------------------------------

TEST(RpcTracer, NestedSpansCloseInnermostFirst) {
  trace::RpcTracer t(8);
  int ctx = 0;
  t.begin(&ctx, 1, 6, "READ", 100);
  t.annotate(&ctx, "proxy", "block_cache_miss", 150);
  // A nested RPC issued mid-call (e.g. a writeback) stacks on the same
  // process and must not steal the outer span's events.
  t.begin(&ctx, 2, 7, "WRITE", 200);
  t.annotate(&ctx, "server", "drc_insert", 250);
  t.end(&ctx, 300, true);
  t.annotate(&ctx, "proxy", "forward", 350);
  t.end(&ctx, 400, true);

  ASSERT_EQ(t.spans().size(), 2u);
  const auto& inner = t.spans()[0];
  const auto& outer = t.spans()[1];
  EXPECT_EQ(inner.xid, 2u);
  ASSERT_EQ(inner.events.size(), 1u);
  EXPECT_EQ(inner.events[0].tag, "drc_insert");
  EXPECT_EQ(outer.xid, 1u);
  EXPECT_EQ(outer.start, 100);
  EXPECT_EQ(outer.end, 400);
  ASSERT_EQ(outer.events.size(), 2u);
  EXPECT_EQ(outer.events[0].tag, "block_cache_miss");
  EXPECT_EQ(outer.events[1].tag, "forward");
}

TEST(RpcTracer, RingEvictsOldestAndCountsDrops) {
  trace::RpcTracer t(2);
  int ctx = 0;
  for (u32 xid = 1; xid <= 3; ++xid) {
    t.begin(&ctx, xid, 0, "NULL", xid);
    t.end(&ctx, xid + 1, true);
  }
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].xid, 2u);  // span 1 was evicted
  EXPECT_EQ(t.spans()[1].xid, 3u);
  EXPECT_EQ(t.spans_dropped(), 1u);
  t.clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.spans_dropped(), 0u);
}

TEST(RpcTracer, AnnotateAndEndWithoutOpenSpanAreNoops) {
  trace::RpcTracer t;
  int ctx = 0;
  t.annotate(&ctx, "proxy", "forward", 10);  // untraced harness traffic
  t.end(&ctx, 20, true);
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.spans_dropped(), 0u);
}

TEST(RpcTracer, ToJsonRendersSpanFields) {
  trace::RpcTracer t;
  int ctx = 0;
  t.begin(&ctx, 9, 6, "READ", 5);
  t.annotate(&ctx, "server", "drc_hit", 7);
  t.end(&ctx, 11, true);
  std::string j = t.to_json();
  EXPECT_NE(j.find("\"xid\": 9"), std::string::npos) << j;
  EXPECT_NE(j.find("\"op\": \"READ\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"start_ns\": 5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"end_ns\": 11"), std::string::npos) << j;
  EXPECT_NE(j.find("\"layer\": \"server\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"tag\": \"drc_hit\""), std::string::npos) << j;
}

// ---- Testbed end-to-end -----------------------------------------------------

TEST(ObservabilityE2E, SpanCrossesClientProxyServer) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWan;  // uncached: writes forward to nfsd
  opt.enable_rpc_trace = true;
  opt.generate_image_meta = false;
  core::Testbed bed(opt);
  ASSERT_NE(bed.tracer(), nullptr);
  blob::BlobRef content = blob::make_synthetic(31, 256_KiB, 0.2, 2.0);
  ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());

  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto data = bed.image_session().read_all(p, "/img");
    ASSERT_TRUE(data.is_ok()) << data.status().to_string();
    // A WRITE is non-idempotent, so the server tags the span with its DRC
    // outcome — the deepest layer of the cascade.
    ASSERT_TRUE(
        bed.image_session().write(p, "/img", 0, blob::make_synthetic(32, 32_KiB, 0.0, 1.0))
            .is_ok());
    ASSERT_TRUE(bed.nfs_client()->flush(p).is_ok());
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  // One span must carry annotations from both the client proxy and the
  // server: the xid-keyed record of a single RPC crossing the whole cascade.
  bool complete_span = false;
  for (const trace::TraceSpan& s : bed.tracer()->spans()) {
    bool proxy_hop = false, server_hop = false;
    for (const trace::SpanEvent& e : s.events) {
      if (e.layer == "node0-proxy") proxy_hop = true;
      if (e.layer == "server" && e.tag == "drc_insert") server_hop = true;
    }
    if (s.xid != 0 && s.ok && s.end >= s.start && proxy_hop && server_hop) {
      complete_span = true;
    }
  }
  EXPECT_TRUE(complete_span) << bed.trace_json();

  // The dump goes to a file, never stdout.
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "gvfs_trace_e2e.json";
  ASSERT_TRUE(bed.dump_trace_json(path.string()).is_ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"drc_insert\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObservabilityE2E, TracingOffByDefault) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  core::Testbed bed(opt);
  EXPECT_EQ(bed.tracer(), nullptr);
  EXPECT_EQ(bed.trace_json(), "[]");
}

TEST(ObservabilityE2E, MetricsJsonCarriesRegistryAndDerivedEntries) {
  core::TestbedOptions opt;
  opt.scenario = core::Scenario::kWanCached;
  core::Testbed bed(opt);
  blob::BlobRef content = blob::make_synthetic(33, 512_KiB, 0.2, 2.0);
  ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/img", content).is_ok());
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto a = bed.image_session().read_all(p, "/img");
    ASSERT_TRUE(a.is_ok());
    bed.nfs_client()->drop_caches();
    auto b = bed.image_session().read_all(p, "/img");  // proxy cache hits
    ASSERT_TRUE(b.is_ok());
  });
  ASSERT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();

  std::string j = bed.metrics_json();
  // Raw registry ids from every layer...
  EXPECT_NE(j.find("\"server.total_calls\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"node0.client.rpcs_sent\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"node0.block_cache.hits\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"server.service_ms\""), std::string::npos) << j;
  // ...plus the derived bench figures.
  EXPECT_NE(j.find("\"node0.block_cache.hit_rate\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"derived.total_retransmits\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"derived.total_timeouts\""), std::string::npos) << j;
  // Two identical snapshots of a quiescent testbed are byte-identical.
  EXPECT_EQ(j, bed.metrics_json());
}

}  // namespace
}  // namespace gvfs
