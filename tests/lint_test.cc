// Fixture snippets for the repo linter: every rule fires exactly once on its
// known-bad snippet, stays quiet on clean code, and honors suppressions.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/analyzer.h"
#include "lint/lint.h"
#include "lint/yield_model.h"

namespace gvfs::lint {
namespace {

namespace fs = std::filesystem;

// Build a one-file call graph and run the three yield rules over it, the way
// lint_tree does for real sources.
std::vector<Finding> analyze(const std::string& path, const std::string& content) {
  YieldModel model = YieldModel::build({{path, content}});
  return analyze_content(path, content, model);
}

int count_rule(const std::vector<Finding>& fs_, const std::string& rule) {
  int n = 0;
  for (const auto& f : fs_) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string dump(const std::vector<Finding>& fs_) {
  std::string out;
  for (const auto& f : fs_) out += to_string(f) + "\n";
  return out;
}

TEST(LintRng, RandomDeviceFires) {
  auto f = lint_content("src/cache/x.cc",
                        "#include <random>\n"
                        "int seed() { std::random_device rd; return rd(); }\n");
  EXPECT_EQ(count_rule(f, "determinism-rng"), 1) << dump(f);
  EXPECT_EQ(f.size(), 1u) << dump(f);
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRng, CRandFires) {
  auto f = lint_content("bench/x.cc", "int r() { return rand(); }\n");
  EXPECT_EQ(count_rule(f, "determinism-rng"), 1) << dump(f);
}

TEST(LintRng, SplitMixIsClean) {
  auto f = lint_content("src/cache/x.cc",
                        "#include \"common/rng.h\"\n"
                        "gvfs::u64 r(gvfs::SplitMix64& g) { return g.next(); }\n"
                        "gvfs::u64 s() { return gvfs::stateless_rand(1, 2); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintClock, SystemClockFiresOutsideSim) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "#include <chrono>\n"
      "auto t() { return std::chrono::system_clock::now(); }\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintClock, SteadyClockAllowedInSim) {
  auto f = lint_content(
      "src/sim/x.cc",
      "#include <chrono>\n"
      "auto t() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintClock, TimeNullFires) {
  auto f = lint_content("src/nfs/x.cc",
                        "#include <ctime>\n"
                        "long now() { return time(nullptr); }\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
}

TEST(LintClock, GettimeofdayFires) {
  auto f = lint_content("src/proxy/x.cc",
                        "void f(struct timeval* tv) { gettimeofday(tv, 0); }\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
}

TEST(LintClock, NotifyTimeIdentifierIsClean) {
  // Identifiers merely containing "time"/"clock" must not trip the rule.
  auto f = lint_content("src/vfs/x.cc",
                        "long notify_time() { return 0; }\n"
                        "long wall_clock_ns = 0;\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintUnordered, RangeForOverMemberFires) {
  auto f = lint_content(
      "src/cache/x.cc",
      "#include <unordered_map>\n"
      "struct C {\n"
      "  std::unordered_map<int, int> frames_;\n"
      "  int sum() {\n"
      "    int t = 0;\n"
      "    for (const auto& [k, v] : frames_) t += v;\n"
      "    return t;\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(count_rule(f, "unordered-iteration"), 1) << dump(f);
  EXPECT_EQ(f[0].line, 6);
}

TEST(LintUnordered, ExplicitBeginFires) {
  auto f = lint_content("src/proxy/x.cc",
                        "#include <unordered_set>\n"
                        "std::unordered_set<int> live;\n"
                        "int first() { return *live.begin(); }\n");
  EXPECT_EQ(count_rule(f, "unordered-iteration"), 1) << dump(f);
}

TEST(LintUnordered, DeclarationInSiblingHeaderIsSeen) {
  auto f = lint_content("src/cache/x.cc",
                        "#include \"cache/x.h\"\n"
                        "int C::sum() {\n"
                        "  int t = 0;\n"
                        "  for (const auto& [k, v] : frames_) t += v;\n"
                        "  return t;\n"
                        "}\n",
                        /*sibling_header=*/
                        "#pragma once\n"
                        "#include <unordered_map>\n"
                        "struct C { std::unordered_map<int, int> frames_; int sum(); };\n");
  EXPECT_EQ(count_rule(f, "unordered-iteration"), 1) << dump(f);
}

TEST(LintUnordered, OrderedMapIsClean) {
  auto f = lint_content("src/cache/x.cc",
                        "#include <map>\n"
                        "std::map<int, int> m;\n"
                        "int s() { int t = 0; for (auto& [k, v] : m) t += v; return t; }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintUnordered, TestsAreOutOfScope) {
  auto f = lint_content(
      "tests/x.cc",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "int s() { int t = 0; for (auto& [k, v] : m) t += v; return t; }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintPrint, CoutInLibraryFires) {
  auto f = lint_content("src/nfs/x.cc",
                        "#include <iostream>\n"
                        "void log() { std::cout << 1; }\n");
  EXPECT_EQ(count_rule(f, "stdout-print"), 1) << dump(f);
}

TEST(LintPrint, PrintfInLibraryFires) {
  auto f = lint_content("src/vm/x.cc",
                        "#include <cstdio>\n"
                        "void log() { std::printf(\"x\"); }\n");
  EXPECT_EQ(count_rule(f, "stdout-print"), 1) << dump(f);
}

TEST(LintPrint, BenchAndToolsAreSanctioned) {
  const char* snippet = "#include <cstdio>\nvoid out() { std::printf(\"x\"); }\n";
  EXPECT_TRUE(lint_content("bench/x.cc", snippet).empty());
  EXPECT_TRUE(lint_content("tools/x.cc", snippet).empty());
}

TEST(LintPrint, FprintfStderrIsClean) {
  auto f = lint_content("src/nfs/x.cc",
                        "#include <cstdio>\n"
                        "void log() { std::fprintf(stderr, \"x\"); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintCounter, RawCounterMemberFires) {
  auto f = lint_content("src/cache/x.h",
                        "#pragma once\n"
                        "#include \"common/types.h\"\n"
                        "class C {\n"
                        "  gvfs::u64 hits_ = 0;\n"
                        "};\n");
  EXPECT_EQ(count_rule(f, "raw-counter"), 1) << dump(f);
  EXPECT_EQ(f[0].line, 4);
}

TEST(LintCounter, RegistryInstrumentIsClean) {
  auto f = lint_content("src/cache/x.h",
                        "#pragma once\n"
                        "#include \"common/metrics.h\"\n"
                        "class C {\n"
                        "  gvfs::metrics::Counter hits_;\n"
                        "  gvfs::metrics::Gauge resident_bytes_;\n"
                        "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintCounter, MetricsHeaderAndNonSrcAreExempt) {
  const char* snippet = "#pragma once\nstruct S { u64 hits_ = 0; };\n";
  // The registry's own storage and code outside src/ may keep raw tallies.
  EXPECT_TRUE(lint_content("src/common/metrics.h", snippet).empty());
  EXPECT_TRUE(lint_content("bench/x.h", snippet).empty());
  EXPECT_TRUE(lint_content("tests/x.h", snippet).empty());
  auto f = lint_content("src/rpc/x.h", "#pragma once\nstruct S { gvfs::u64 timeouts_; };\n");
  EXPECT_EQ(count_rule(f, "raw-counter"), 1) << dump(f);
}

TEST(LintClusterFactory, DirectNfsServerConstructionInTopologyFires) {
  auto f = lint_content("src/gvfs/x.cc",
                        "#include \"nfs/nfs_server.h\"\n"
                        "auto s = std::make_unique<nfs::NfsServer>(k, fs, d, cfg);\n"
                        "auto* t = new nfs::NfsServer(k, fs, d, cfg);\n");
  EXPECT_EQ(count_rule(f, "cluster-factory"), 2) << dump(f);
}

TEST(LintClusterFactory, SanctionedFactorySiteIsSuppressed) {
  auto f = lint_content(
      "src/gvfs/testbed.cc",
      "// gvfs-lint: allow(cluster-factory) the sanctioned construction site\n"
      "auto s = std::make_unique<nfs::NfsServer>(k, fs, d, cfg);\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintClusterFactory, OutsideTopologyCodeIsOutOfScope) {
  const char* snippet = "auto s = std::make_unique<nfs::NfsServer>(k, fs, d, cfg);\n";
  EXPECT_TRUE(lint_content("src/nfs/x.cc", snippet).empty());
  EXPECT_TRUE(lint_content("tests/x.cc", snippet).empty());
  EXPECT_TRUE(lint_content("bench/x.cc", snippet).empty());
}

TEST(LintFrameData, DirectPayloadAssignmentFires) {
  auto f = lint_content("src/cache/block_cache.cc",
                        "void f(Frame& fr, Frame* pf) {\n"
                        "  fr.data = make_bytes(v);\n"
                        "  pf->data = nullptr;\n"
                        "  fr.data.reset();\n"
                        "}\n");
  EXPECT_EQ(count_rule(f, "frame-data-mutation"), 3) << dump(f);
}

TEST(LintFrameData, ReadsAndHelperSitesAreClean) {
  auto f = lint_content(
      "src/cache/block_cache.cc",
      "u64 g(const Frame& fr) { return fr.data ? fr.data->size() : 0; }\n"
      "// gvfs-lint: allow(frame-data-mutation) sanctioned assign inside the helper\n"
      "void h(Frame& fr, BlobRef d) { fr.data = std::move(d); }\n"
      "bool eq(u64 a, u64 b) { return a == b; }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintFrameData, OutsideBlockCacheIsOutOfScope) {
  const char* snippet = "void f(Res& r) { r.data = blob::zero_ref(0); }\n";
  EXPECT_TRUE(lint_content("src/proxy/gvfs_proxy.cc", snippet).empty());
  EXPECT_TRUE(lint_content("src/nfs/x.cc", snippet).empty());
  EXPECT_TRUE(lint_content("tests/x.cc", snippet).empty());
}

TEST(LintLeaseTable, DirectLeaseTableMutationFires) {
  auto f = lint_content("src/nfs/nfs_server.cc",
                        "void f(u64 key, LeaseEntry e) {\n"
                        "  leases_[key] = e;\n"
                        "  leases_.erase(key);\n"
                        "  leases_.emplace(key, e);\n"
                        "  leases_.insert({key, e});\n"
                        "  leases_.clear();\n"
                        "}\n");
  EXPECT_EQ(count_rule(f, "lease-table-mutation"), 5) << dump(f);
}

TEST(LintLeaseTable, ReadsAndSanctionedHelperSitesAreClean) {
  auto f = lint_content(
      "src/nfs/nfs_server.cc",
      "u64 g() { return leases_.size(); }\n"
      "bool h(u64 k) { return leases_.find(k) != leases_.end(); }\n"
      "// gvfs-lint: allow(lease-table-mutation) sanctioned helper body\n"
      "void add(u64 k, LeaseEntry e) { leases_[k] = e; }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintLeaseTable, OutsideServerIsOutOfScope) {
  const char* snippet = "void f(u64 k) { leases_.erase(k); }\n";
  EXPECT_TRUE(lint_content("src/proxy/gvfs_proxy.cc", snippet).empty());
  EXPECT_TRUE(lint_content("src/nfs/nfs_types.cc", snippet).empty());
  EXPECT_TRUE(lint_content("tests/x.cc", snippet).empty());
}

TEST(LintHeaderGuard, MissingPragmaOnceFires) {
  auto f = lint_content("src/common/x.h", "int f();\n");
  EXPECT_EQ(count_rule(f, "header-guard"), 1) << dump(f);
}

TEST(LintHeaderGuard, PragmaOnceIsClean) {
  auto f = lint_content("src/common/x.h", "#pragma once\nint f();\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, SameLineAllowSilencesRule) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "long t() { return time(nullptr); }  // gvfs-lint: allow(determinism-clock) reason\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, PrecedingLineAllowShieldsNextLine) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "// gvfs-lint: allow(determinism-clock) reason\n"
      "long t() { return time(nullptr); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, FileAllowSilencesWholeFile) {
  auto f = lint_content("src/vfs/x.cc",
                        "// gvfs-lint: file-allow(determinism-clock)\n"
                        "long a() { return time(nullptr); }\n"
                        "long b() { return time(nullptr); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, AllowForOtherRuleDoesNotSilence) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "long t() { return time(nullptr); }  // gvfs-lint: allow(stdout-print)\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
}

TEST(LintStripping, CommentsAndStringsNeverFire) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "// talks about rand() and std::chrono::system_clock in prose\n"
      "/* also gettimeofday( in a block comment */\n"
      "const char* kMsg = \"rand() time(nullptr) std::cout\";\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintTree, WalksFilesAndChecksCmakeRegistration) {
  fs::path root = fs::temp_directory_path() / "gvfs_lint_tree_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "a");
  fs::create_directories(root / "src" / "lint_fixtures");
  auto write = [](const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content;
  };
  // registered.cc is named in CMakeLists; orphan.cc is not; guardless.h has
  // no pragma once; the lint_fixtures dir must be skipped entirely.
  write(root / "src" / "a" / "CMakeLists.txt", "add_library(a registered.cc)\n");
  write(root / "src" / "a" / "registered.cc", "int f() { return 1; }\n");
  write(root / "src" / "a" / "orphan.cc", "int g() { return 2; }\n");
  write(root / "src" / "a" / "guardless.h", "int h();\n");
  write(root / "src" / "lint_fixtures" / "bad.cc", "int r() { return rand(); }\n");

  auto f = lint_tree(root.string());
  EXPECT_EQ(count_rule(f, "cmake-registration"), 1) << dump(f);
  EXPECT_EQ(count_rule(f, "header-guard"), 1) << dump(f);
  EXPECT_EQ(count_rule(f, "determinism-rng"), 0) << dump(f);  // fixtures skipped
  ASSERT_EQ(f.size(), 2u) << dump(f);
  EXPECT_EQ(f[0].file, "src/a/guardless.h");
  EXPECT_EQ(f[1].file, "src/a/orphan.cc");
  fs::remove_all(root);
}

TEST(LintTree, RepoTreeIsClean) {
  // The in-tree gate (ctest runs gvfs_lint --root) must agree with the
  // library: lint the actual repository if we can find it.
  fs::path root = fs::current_path();
  while (!fs::exists(root / "src" / "sim" / "kernel.h") &&
         root.has_parent_path() && root != root.parent_path()) {
    root = root.parent_path();
  }
  if (!fs::exists(root / "src" / "sim" / "kernel.h")) {
    GTEST_SKIP() << "repo root not found from " << fs::current_path();
  }
  auto f = lint_tree(root.string());
  EXPECT_TRUE(f.empty()) << dump(f);
}

// ---- yield-point invalidation rules (tools/lint/analyzer.h) ----------------

TEST(LintYield, StaleRefAcrossDirectYieldFires) {
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  std::map<int, int> m_;\n"
                   "  sim::Signal sig_;\n"
                   "  int f(sim::Process& p) {\n"
                   "    auto it = m_.find(1);\n"
                   "    p.wait(sig_);\n"
                   "    return it->second;\n"
                   "  }\n"
                   "};\n");
  EXPECT_EQ(count_rule(f, "yield-stale-ref"), 1) << dump(f);
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(f[0].line, 7);
}

TEST(LintYield, TwoHopTransitivePropagationFires) {
  const char* src =
      "struct C {\n"
      "  std::map<int, int> m_;\n"
      "  sim::Signal sig_;\n"
      "  void leaf(sim::Process& p) { p.wait(sig_); }\n"
      "  void mid(sim::Process& p) { leaf(p); }\n"
      "  int top(sim::Process& p) {\n"
      "    auto it = m_.find(1);\n"
      "    mid(p);\n"
      "    return it->second;\n"
      "  }\n"
      "};\n";
  YieldModel model = YieldModel::build({{"src/proxy/x.cc", src}});
  EXPECT_TRUE(model.name_may_yield("leaf"));
  EXPECT_TRUE(model.name_may_yield("mid"));
  EXPECT_TRUE(model.name_may_yield("top"));
  auto f = analyze_content("src/proxy/x.cc", src, model);
  EXPECT_EQ(count_rule(f, "yield-stale-ref"), 1) << dump(f);
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(f[0].line, 9);
}

TEST(LintYield, AnnotationSeedsStoredHandleYielder) {
  // kick() blocks through a stored process handle the model cannot see; the
  // annotation supplies the missing seed and propagation does the rest.
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  std::map<int, int> m_;\n"
                   "  // gvfs-yield: yields blocks via the stored handle\n"
                   "  void kick(sim::Process& p) { helper->poke(); }\n"
                   "  int f(sim::Process& p) {\n"
                   "    auto it = m_.find(1);\n"
                   "    kick(p);\n"
                   "    return it->second;\n"
                   "  }\n"
                   "};\n");
  EXPECT_EQ(count_rule(f, "yield-stale-ref"), 1) << dump(f);
}

TEST(LintYield, IndexLoopOverMemberWithYieldFires) {
  auto f = analyze("src/cache/x.cc",
                   "struct C {\n"
                   "  std::vector<int> q_;\n"
                   "  sim::Signal sig_;\n"
                   "  void f(sim::Process& p) {\n"
                   "    for (std::size_t i = 0; i < q_.size(); ++i) {\n"
                   "      p.wait(sig_);\n"
                   "    }\n"
                   "  }\n"
                   "};\n");
  EXPECT_EQ(count_rule(f, "yield-index-loop"), 1) << dump(f);
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(f[0].line, 5);
}

TEST(LintYield, RangeForOverMemberWithYieldFires) {
  auto f = analyze("src/nfs/x.cc",
                   "struct C {\n"
                   "  std::vector<int> q_;\n"
                   "  sim::Signal sig_;\n"
                   "  void f(sim::Process& p) {\n"
                   "    for (int v : q_) {\n"
                   "      p.wait(sig_);\n"
                   "    }\n"
                   "  }\n"
                   "};\n");
  EXPECT_EQ(count_rule(f, "yield-index-loop"), 1) << dump(f);
}

TEST(LintYield, WhileRecheckLoopIsClean) {
  // The safe shape: a while that re-reads the container every pass instead
  // of holding an index across the yield.
  auto f = analyze("src/cache/x.cc",
                   "struct C {\n"
                   "  std::vector<int> q_;\n"
                   "  sim::Signal sig_;\n"
                   "  void f(sim::Process& p) {\n"
                   "    while (!q_.empty()) {\n"
                   "      p.wait(sig_);\n"
                   "      q_.pop_back();\n"
                   "    }\n"
                   "  }\n"
                   "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, HeldLockAcrossYieldFires) {
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  sim::Semaphore sem_;\n"
                   "  sim::Signal sig_;\n"
                   "  void f(sim::Process& p) {\n"
                   "    sim::ScopedPermit g(p, sem_);\n"
                   "    p.wait(sig_);\n"
                   "  }\n"
                   "};\n");
  EXPECT_EQ(count_rule(f, "yield-held-lock"), 1) << dump(f);
}

TEST(LintYield, AllowHeldSuppressesHeldLock) {
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  sim::Semaphore sem_;\n"
                   "  sim::Signal sig_;\n"
                   "  void f(sim::Process& p) {\n"
                   "    // gvfs-yield: allow-held models the fixed worker pool\n"
                   "    sim::ScopedPermit g(p, sem_);\n"
                   "    p.wait(sig_);\n"
                   "  }\n"
                   "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, DeclLineAllowSuppressesStaleRef) {
  auto f = analyze(
      "src/proxy/x.cc",
      "struct C {\n"
      "  std::map<int, int> m_;\n"
      "  sim::Signal sig_;\n"
      "  int f(sim::Process& p) {\n"
      "    auto it = m_.find(1);  // gvfs-lint: allow(yield-stale-ref) stable\n"
      "    p.wait(sig_);\n"
      "    return it->second;\n"
      "  }\n"
      "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, PrecedingLineAllowSuppressesIndexLoop) {
  auto f = analyze("src/cache/x.cc",
                   "struct C {\n"
                   "  std::vector<int> q_;\n"
                   "  sim::Signal sig_;\n"
                   "  void f(sim::Process& p) {\n"
                   "    // gvfs-lint: allow(yield-index-loop) q_ never resizes\n"
                   "    for (std::size_t i = 0; i < q_.size(); ++i) {\n"
                   "      p.wait(sig_);\n"
                   "    }\n"
                   "  }\n"
                   "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, LocalContainerIsClean) {
  // Locals live on this fiber's stack; no other fiber can invalidate them.
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  sim::Signal sig_;\n"
                   "  int f(sim::Process& p) {\n"
                   "    std::map<int, int> local;\n"
                   "    auto it = local.find(1);\n"
                   "    p.wait(sig_);\n"
                   "    for (std::size_t i = 0; i < local.size(); ++i) p.wait(sig_);\n"
                   "    return it->second;\n"
                   "  }\n"
                   "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, ByValueCopyIsClean) {
  // Copying the element before the yield is the sanctioned fix; the copy
  // must not be tracked as a handle into the container.
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  std::map<int, int> m_;\n"
                   "  sim::Signal sig_;\n"
                   "  int f(sim::Process& p) {\n"
                   "    int v = m_.at(1);\n"
                   "    p.wait(sig_);\n"
                   "    return v;\n"
                   "  }\n"
                   "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, ReacquireAfterYieldIsClean) {
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  std::map<int, int> m_;\n"
                   "  sim::Signal sig_;\n"
                   "  int f(sim::Process& p) {\n"
                   "    auto it = m_.find(1);\n"
                   "    p.wait(sig_);\n"
                   "    it = m_.find(1);\n"
                   "    return it->second;\n"
                   "  }\n"
                   "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, AssignmentOnYieldLineStaysFresh) {
  // `it = refetch(p)` yields inside the call, but the assignment lands after
  // it returns — the re-acquire idiom must not flag its own refresh.
  auto f = analyze("src/proxy/x.cc",
                   "struct C {\n"
                   "  std::map<int, int> m_;\n"
                   "  sim::Signal sig_;\n"
                   "  auto refetch(sim::Process& p) { p.wait(sig_); return m_.find(1); }\n"
                   "  int f(sim::Process& p) {\n"
                   "    auto it = m_.find(1);\n"
                   "    it = refetch(p);\n"
                   "    return it->second;\n"
                   "  }\n"
                   "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, SpawnLambdaBodyDoesNotMarkSpawner) {
  // The lambda runs as its own fiber under its own Process&: its yields are
  // not the spawner's, and spawn() itself does not take the spawner's handle.
  const char* src =
      "struct C {\n"
      "  std::map<int, int> m_;\n"
      "  sim::Signal sig_;\n"
      "  int f(sim::Process& p, sim::SimKernel& k) {\n"
      "    auto it = m_.find(1);\n"
      "    k.spawn(\"w\", [this](sim::Process& fp) { fp.wait(sig_); });\n"
      "    return it->second;\n"
      "  }\n"
      "};\n";
  YieldModel model = YieldModel::build({{"src/proxy/x.cc", src}});
  EXPECT_FALSE(model.name_may_yield("f"));
  auto f = analyze_content("src/proxy/x.cc", src, model);
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintYield, ScopeCoversProxyCascadeOnly) {
  EXPECT_TRUE(yield_rules_scoped("src/proxy/x.cc"));
  EXPECT_TRUE(yield_rules_scoped("src/gvfs/x.cc"));
  EXPECT_TRUE(yield_rules_scoped("src/nfs/x.cc"));
  EXPECT_TRUE(yield_rules_scoped("src/cache/x.cc"));
  EXPECT_FALSE(yield_rules_scoped("src/sim/x.cc"));
  EXPECT_FALSE(yield_rules_scoped("src/vm/x.cc"));
  EXPECT_FALSE(yield_rules_scoped("tests/x.cc"));
}

TEST(LintYield, GoldenLinesNameMayYieldFunctions) {
  const char* src =
      "struct C {\n"
      "  sim::Signal sig_;\n"
      "  void leaf(sim::Process& p) { p.wait(sig_); }\n"
      "  void mid(sim::Process& p) { leaf(p); }\n"
      "  void pure() { }\n"
      "};\n";
  YieldModel model = YieldModel::build({{"src/proxy/x.cc", src}});
  std::string joined;
  for (const std::string& l : model.golden_lines()) joined += l + "\n";
  EXPECT_NE(joined.find("leaf"), std::string::npos) << joined;
  EXPECT_NE(joined.find("mid"), std::string::npos) << joined;
  EXPECT_EQ(joined.find("pure"), std::string::npos) << joined;
  EXPECT_NE(joined.find("src/proxy/x.cc:"), std::string::npos) << joined;
}

TEST(LintRules, EveryRuleHasAFixtureThatFires) {
  // all_rules() is the contract; each id must be triggerable.
  std::vector<std::string> fired;
  auto collect = [&](const std::vector<Finding>& fs_) {
    for (const auto& f : fs_) fired.push_back(f.rule);
  };
  collect(lint_content("src/x.cc", "int r() { return rand(); }\n"));
  collect(lint_content("src/x.cc", "long t() { return time(nullptr); }\n"));
  collect(lint_content("src/x.cc",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> m;\n"
                       "int s() { int t = 0; for (auto& [k, v] : m) t += v; return t; }\n"));
  collect(lint_content("src/x.cc", "void f() { std::cout << 1; }\n"));
  collect(lint_content("src/x.h", "int f();\n"));
  collect(lint_content("src/x.h", "#pragma once\nstruct S { u64 hits_ = 0; };\n"));
  collect(lint_content("src/gvfs/x.cc",
                       "auto s = std::make_unique<nfs::NfsServer>(cfg);\n"));
  collect(lint_content("src/cache/block_cache.cc",
                       "void f(Frame& fr) { fr.data = nullptr; }\n"));
  collect(lint_content("src/nfs/nfs_server.cc",
                       "void f(u64 k) { leases_.erase(k); }\n"));
  // The three yield rules need a call-graph model; one snippet fires all of
  // them (stale handle, member index loop, and a held permit, each across
  // the same yield).
  const char* yield_src =
      "struct C {\n"
      "  std::map<int, int> m_;\n"
      "  sim::Semaphore sem_;\n"
      "  sim::Signal sig_;\n"
      "  int f(sim::Process& p) {\n"
      "    sim::ScopedPermit g(p, sem_);\n"
      "    auto it = m_.find(1);\n"
      "    for (std::size_t i = 0; i < m_.size(); ++i) {\n"
      "      p.wait(sig_);\n"
      "    }\n"
      "    return it->second;\n"
      "  }\n"
      "};\n";
  collect(analyze("src/proxy/x.cc", yield_src));
  for (const std::string& rule : all_rules()) {
    if (rule == "cmake-registration") continue;  // covered by LintTree
    EXPECT_NE(std::find(fired.begin(), fired.end(), rule), fired.end())
        << "no fixture fires rule " << rule;
  }
}

}  // namespace
}  // namespace gvfs::lint
