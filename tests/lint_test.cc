// Fixture snippets for the repo linter: every rule fires exactly once on its
// known-bad snippet, stays quiet on clean code, and honors suppressions.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace gvfs::lint {
namespace {

namespace fs = std::filesystem;

int count_rule(const std::vector<Finding>& fs_, const std::string& rule) {
  int n = 0;
  for (const auto& f : fs_) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string dump(const std::vector<Finding>& fs_) {
  std::string out;
  for (const auto& f : fs_) out += to_string(f) + "\n";
  return out;
}

TEST(LintRng, RandomDeviceFires) {
  auto f = lint_content("src/cache/x.cc",
                        "#include <random>\n"
                        "int seed() { std::random_device rd; return rd(); }\n");
  EXPECT_EQ(count_rule(f, "determinism-rng"), 1) << dump(f);
  EXPECT_EQ(f.size(), 1u) << dump(f);
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintRng, CRandFires) {
  auto f = lint_content("bench/x.cc", "int r() { return rand(); }\n");
  EXPECT_EQ(count_rule(f, "determinism-rng"), 1) << dump(f);
}

TEST(LintRng, SplitMixIsClean) {
  auto f = lint_content("src/cache/x.cc",
                        "#include \"common/rng.h\"\n"
                        "gvfs::u64 r(gvfs::SplitMix64& g) { return g.next(); }\n"
                        "gvfs::u64 s() { return gvfs::stateless_rand(1, 2); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintClock, SystemClockFiresOutsideSim) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "#include <chrono>\n"
      "auto t() { return std::chrono::system_clock::now(); }\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
  EXPECT_EQ(f[0].line, 2);
}

TEST(LintClock, SteadyClockAllowedInSim) {
  auto f = lint_content(
      "src/sim/x.cc",
      "#include <chrono>\n"
      "auto t() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintClock, TimeNullFires) {
  auto f = lint_content("src/nfs/x.cc",
                        "#include <ctime>\n"
                        "long now() { return time(nullptr); }\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
}

TEST(LintClock, GettimeofdayFires) {
  auto f = lint_content("src/proxy/x.cc",
                        "void f(struct timeval* tv) { gettimeofday(tv, 0); }\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
}

TEST(LintClock, NotifyTimeIdentifierIsClean) {
  // Identifiers merely containing "time"/"clock" must not trip the rule.
  auto f = lint_content("src/vfs/x.cc",
                        "long notify_time() { return 0; }\n"
                        "long wall_clock_ns = 0;\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintUnordered, RangeForOverMemberFires) {
  auto f = lint_content(
      "src/cache/x.cc",
      "#include <unordered_map>\n"
      "struct C {\n"
      "  std::unordered_map<int, int> frames_;\n"
      "  int sum() {\n"
      "    int t = 0;\n"
      "    for (const auto& [k, v] : frames_) t += v;\n"
      "    return t;\n"
      "  }\n"
      "};\n");
  EXPECT_EQ(count_rule(f, "unordered-iteration"), 1) << dump(f);
  EXPECT_EQ(f[0].line, 6);
}

TEST(LintUnordered, ExplicitBeginFires) {
  auto f = lint_content("src/proxy/x.cc",
                        "#include <unordered_set>\n"
                        "std::unordered_set<int> live;\n"
                        "int first() { return *live.begin(); }\n");
  EXPECT_EQ(count_rule(f, "unordered-iteration"), 1) << dump(f);
}

TEST(LintUnordered, DeclarationInSiblingHeaderIsSeen) {
  auto f = lint_content("src/cache/x.cc",
                        "#include \"cache/x.h\"\n"
                        "int C::sum() {\n"
                        "  int t = 0;\n"
                        "  for (const auto& [k, v] : frames_) t += v;\n"
                        "  return t;\n"
                        "}\n",
                        /*sibling_header=*/
                        "#pragma once\n"
                        "#include <unordered_map>\n"
                        "struct C { std::unordered_map<int, int> frames_; int sum(); };\n");
  EXPECT_EQ(count_rule(f, "unordered-iteration"), 1) << dump(f);
}

TEST(LintUnordered, OrderedMapIsClean) {
  auto f = lint_content("src/cache/x.cc",
                        "#include <map>\n"
                        "std::map<int, int> m;\n"
                        "int s() { int t = 0; for (auto& [k, v] : m) t += v; return t; }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintUnordered, TestsAreOutOfScope) {
  auto f = lint_content(
      "tests/x.cc",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "int s() { int t = 0; for (auto& [k, v] : m) t += v; return t; }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintPrint, CoutInLibraryFires) {
  auto f = lint_content("src/nfs/x.cc",
                        "#include <iostream>\n"
                        "void log() { std::cout << 1; }\n");
  EXPECT_EQ(count_rule(f, "stdout-print"), 1) << dump(f);
}

TEST(LintPrint, PrintfInLibraryFires) {
  auto f = lint_content("src/vm/x.cc",
                        "#include <cstdio>\n"
                        "void log() { std::printf(\"x\"); }\n");
  EXPECT_EQ(count_rule(f, "stdout-print"), 1) << dump(f);
}

TEST(LintPrint, BenchAndToolsAreSanctioned) {
  const char* snippet = "#include <cstdio>\nvoid out() { std::printf(\"x\"); }\n";
  EXPECT_TRUE(lint_content("bench/x.cc", snippet).empty());
  EXPECT_TRUE(lint_content("tools/x.cc", snippet).empty());
}

TEST(LintPrint, FprintfStderrIsClean) {
  auto f = lint_content("src/nfs/x.cc",
                        "#include <cstdio>\n"
                        "void log() { std::fprintf(stderr, \"x\"); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintCounter, RawCounterMemberFires) {
  auto f = lint_content("src/cache/x.h",
                        "#pragma once\n"
                        "#include \"common/types.h\"\n"
                        "class C {\n"
                        "  gvfs::u64 hits_ = 0;\n"
                        "};\n");
  EXPECT_EQ(count_rule(f, "raw-counter"), 1) << dump(f);
  EXPECT_EQ(f[0].line, 4);
}

TEST(LintCounter, RegistryInstrumentIsClean) {
  auto f = lint_content("src/cache/x.h",
                        "#pragma once\n"
                        "#include \"common/metrics.h\"\n"
                        "class C {\n"
                        "  gvfs::metrics::Counter hits_;\n"
                        "  gvfs::metrics::Gauge resident_bytes_;\n"
                        "};\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintCounter, MetricsHeaderAndNonSrcAreExempt) {
  const char* snippet = "#pragma once\nstruct S { u64 hits_ = 0; };\n";
  // The registry's own storage and code outside src/ may keep raw tallies.
  EXPECT_TRUE(lint_content("src/common/metrics.h", snippet).empty());
  EXPECT_TRUE(lint_content("bench/x.h", snippet).empty());
  EXPECT_TRUE(lint_content("tests/x.h", snippet).empty());
  auto f = lint_content("src/rpc/x.h", "#pragma once\nstruct S { gvfs::u64 timeouts_; };\n");
  EXPECT_EQ(count_rule(f, "raw-counter"), 1) << dump(f);
}

TEST(LintClusterFactory, DirectNfsServerConstructionInTopologyFires) {
  auto f = lint_content("src/gvfs/x.cc",
                        "#include \"nfs/nfs_server.h\"\n"
                        "auto s = std::make_unique<nfs::NfsServer>(k, fs, d, cfg);\n"
                        "auto* t = new nfs::NfsServer(k, fs, d, cfg);\n");
  EXPECT_EQ(count_rule(f, "cluster-factory"), 2) << dump(f);
}

TEST(LintClusterFactory, SanctionedFactorySiteIsSuppressed) {
  auto f = lint_content(
      "src/gvfs/testbed.cc",
      "// gvfs-lint: allow(cluster-factory) the sanctioned construction site\n"
      "auto s = std::make_unique<nfs::NfsServer>(k, fs, d, cfg);\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintClusterFactory, OutsideTopologyCodeIsOutOfScope) {
  const char* snippet = "auto s = std::make_unique<nfs::NfsServer>(k, fs, d, cfg);\n";
  EXPECT_TRUE(lint_content("src/nfs/x.cc", snippet).empty());
  EXPECT_TRUE(lint_content("tests/x.cc", snippet).empty());
  EXPECT_TRUE(lint_content("bench/x.cc", snippet).empty());
}

TEST(LintHeaderGuard, MissingPragmaOnceFires) {
  auto f = lint_content("src/common/x.h", "int f();\n");
  EXPECT_EQ(count_rule(f, "header-guard"), 1) << dump(f);
}

TEST(LintHeaderGuard, PragmaOnceIsClean) {
  auto f = lint_content("src/common/x.h", "#pragma once\nint f();\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, SameLineAllowSilencesRule) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "long t() { return time(nullptr); }  // gvfs-lint: allow(determinism-clock) reason\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, PrecedingLineAllowShieldsNextLine) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "// gvfs-lint: allow(determinism-clock) reason\n"
      "long t() { return time(nullptr); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, FileAllowSilencesWholeFile) {
  auto f = lint_content("src/vfs/x.cc",
                        "// gvfs-lint: file-allow(determinism-clock)\n"
                        "long a() { return time(nullptr); }\n"
                        "long b() { return time(nullptr); }\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintSuppression, AllowForOtherRuleDoesNotSilence) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "long t() { return time(nullptr); }  // gvfs-lint: allow(stdout-print)\n");
  EXPECT_EQ(count_rule(f, "determinism-clock"), 1) << dump(f);
}

TEST(LintStripping, CommentsAndStringsNeverFire) {
  auto f = lint_content(
      "src/vfs/x.cc",
      "// talks about rand() and std::chrono::system_clock in prose\n"
      "/* also gettimeofday( in a block comment */\n"
      "const char* kMsg = \"rand() time(nullptr) std::cout\";\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintTree, WalksFilesAndChecksCmakeRegistration) {
  fs::path root = fs::temp_directory_path() / "gvfs_lint_tree_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "a");
  fs::create_directories(root / "src" / "lint_fixtures");
  auto write = [](const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content;
  };
  // registered.cc is named in CMakeLists; orphan.cc is not; guardless.h has
  // no pragma once; the lint_fixtures dir must be skipped entirely.
  write(root / "src" / "a" / "CMakeLists.txt", "add_library(a registered.cc)\n");
  write(root / "src" / "a" / "registered.cc", "int f() { return 1; }\n");
  write(root / "src" / "a" / "orphan.cc", "int g() { return 2; }\n");
  write(root / "src" / "a" / "guardless.h", "int h();\n");
  write(root / "src" / "lint_fixtures" / "bad.cc", "int r() { return rand(); }\n");

  auto f = lint_tree(root.string());
  EXPECT_EQ(count_rule(f, "cmake-registration"), 1) << dump(f);
  EXPECT_EQ(count_rule(f, "header-guard"), 1) << dump(f);
  EXPECT_EQ(count_rule(f, "determinism-rng"), 0) << dump(f);  // fixtures skipped
  ASSERT_EQ(f.size(), 2u) << dump(f);
  EXPECT_EQ(f[0].file, "src/a/guardless.h");
  EXPECT_EQ(f[1].file, "src/a/orphan.cc");
  fs::remove_all(root);
}

TEST(LintTree, RepoTreeIsClean) {
  // The in-tree gate (ctest runs gvfs_lint --root) must agree with the
  // library: lint the actual repository if we can find it.
  fs::path root = fs::current_path();
  while (!fs::exists(root / "src" / "sim" / "kernel.h") &&
         root.has_parent_path() && root != root.parent_path()) {
    root = root.parent_path();
  }
  if (!fs::exists(root / "src" / "sim" / "kernel.h")) {
    GTEST_SKIP() << "repo root not found from " << fs::current_path();
  }
  auto f = lint_tree(root.string());
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintRules, EveryRuleHasAFixtureThatFires) {
  // all_rules() is the contract; each id must be triggerable.
  std::vector<std::string> fired;
  auto collect = [&](const std::vector<Finding>& fs_) {
    for (const auto& f : fs_) fired.push_back(f.rule);
  };
  collect(lint_content("src/x.cc", "int r() { return rand(); }\n"));
  collect(lint_content("src/x.cc", "long t() { return time(nullptr); }\n"));
  collect(lint_content("src/x.cc",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> m;\n"
                       "int s() { int t = 0; for (auto& [k, v] : m) t += v; return t; }\n"));
  collect(lint_content("src/x.cc", "void f() { std::cout << 1; }\n"));
  collect(lint_content("src/x.h", "int f();\n"));
  collect(lint_content("src/x.h", "#pragma once\nstruct S { u64 hits_ = 0; };\n"));
  collect(lint_content("src/gvfs/x.cc",
                       "auto s = std::make_unique<nfs::NfsServer>(cfg);\n"));
  for (const std::string& rule : all_rules()) {
    if (rule == "cmake-registration") continue;  // covered by LintTree
    EXPECT_NE(std::find(fired.begin(), fired.end(), rule), fired.end())
        << "no fixture fires rule " << rule;
  }
}

}  // namespace
}  // namespace gvfs::lint
