// VM substrate tests: image installation, the VM monitor's resume/suspend
// and guest-cached disk I/O, redo logs for non-persistent clones, the guest
// filesystem layout model, and the full cloning workflow on local state.
#include <gtest/gtest.h>

#include "test_util.h"

#include "meta/meta_file.h"
#include "sim/kernel.h"
#include "vfs/local_session.h"
#include "vfs/memfs.h"
#include "vm/guest_fs.h"
#include "vm/redo_log.h"
#include "vm/vm_cloner.h"
#include "vm/vm_image.h"
#include "vm/vm_monitor.h"

namespace gvfs::vm {
namespace {

struct VmFixture {
  sim::SimKernel kernel;
  vfs::MemFs fs;
  sim::DiskModel disk{kernel, "d", sim::DiskConfig{}};
  vfs::LocalFsSession session{fs, disk};

  VmImageSpec small_spec() {
    VmImageSpec spec;
    spec.name = "vm1";
    spec.memory_bytes = 8_MiB;
    spec.disk_bytes = 64_MiB;
    return spec;
  }

  void run(std::function<void(sim::Process&)> body) {
    kernel.run_process("t", std::move(body));
    EXPECT_EQ(kernel.failed_processes(), 0) << kernel.failed_names_joined();
  }
};

TEST(VmImage, InstallCreatesAllFiles) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  ASSERT_TRUE(paths.is_ok());
  EXPECT_TRUE(f.fs.exists(paths->cfg()));
  EXPECT_TRUE(f.fs.exists(paths->vmss()));
  EXPECT_TRUE(f.fs.exists(paths->vmdk()));
  EXPECT_TRUE(f.fs.exists(paths->flat_vmdk()));
  EXPECT_EQ((*f.fs.get_file(paths->vmss()))->size(), 8_MiB);
  EXPECT_EQ((*f.fs.get_file(paths->flat_vmdk()))->size(), 64_MiB);
  // Lazy: nothing materialized despite 72 MB of state.
  EXPECT_LT(f.fs.materialized_bytes(), 8_KiB);
}

TEST(VmImage, CfgMentionsNameAndMemory) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  auto cfg = f.fs.get_file(paths->cfg());
  std::vector<u8> raw((*cfg)->size());
  (*cfg)->read(0, raw);
  std::string text(raw.begin(), raw.end());
  EXPECT_NE(text.find("vm1"), std::string::npos);
  EXPECT_NE(text.find("memsize = \"8\""), std::string::npos);
}

TEST(VmImage, MetadataGeneration) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  ASSERT_TRUE(generate_vmss_metadata(f.fs, *paths).is_ok());
  auto meta_raw = f.fs.get_file(gvfs::meta::MetaFile::meta_path_for(paths->vmss()));
  ASSERT_TRUE(meta_raw.is_ok());
  auto parsed = gvfs::meta::MetaFile::parse(**meta_raw);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed->has_zero_map());
  EXPECT_TRUE(parsed->wants_file_channel());
  EXPECT_EQ(parsed->file_size(), 8_MiB);
  // The zero map must agree with the actual content.
  auto vmss = f.fs.get_file(paths->vmss());
  for (u64 off = 0; off < 8_MiB; off += 8_KiB) {
    EXPECT_EQ(parsed->range_is_zero(off, 8_KiB), (*vmss)->is_zero_range(off, 8_KiB))
        << "at " << off;
  }
}

TEST(VmMonitor, ResumeReadsWholeMemoryState) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    EXPECT_FALSE(vm.resumed());
    ASSERT_TRUE(vm.resume(p).is_ok());
    EXPECT_TRUE(vm.resumed());
    EXPECT_EQ(vm.vmss_bytes_read(), 8_MiB);
    EXPECT_GT(p.now(), 0);
  });
}

TEST(VmMonitor, ResumeWithoutAttachFails) {
  VmFixture f;
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    EXPECT_FALSE(vm.resume(p).is_ok());
  });
}

TEST(VmMonitor, DiskReadMatchesImageContent) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    auto got = vm.disk_read(p, 1_MiB, 64_KiB);
    ASSERT_TRUE(got.is_ok());
    auto expect = disk_blob(spec);
    EXPECT_EQ(blob::content_hash(**got),
              blob::range_hash(*expect, 1_MiB, 64_KiB));
  });
}

TEST(VmMonitor, GuestCacheAbsorbsRereads) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    ASSERT_OK(vm.disk_read(p, 0, 1_MiB));
    u64 host_reads = vm.host_reads();
    ASSERT_OK(vm.disk_read(p, 0, 1_MiB));
    EXPECT_EQ(vm.host_reads(), host_reads);  // all from guest cache
  });
}

TEST(VmMonitor, WriteReadBackThroughGuestCache) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    auto data = blob::make_synthetic(77, 128_KiB, 0, 2.0);
    ASSERT_TRUE(vm.disk_write(p, 2_MiB, data).is_ok());
    auto back = vm.disk_read(p, 2_MiB, 128_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*data));
    // Partial overwrite preserves neighbours.
    ASSERT_TRUE(
        vm.disk_write(p, 2_MiB + 100, blob::make_bytes(std::vector<u8>(10, 0xee))).is_ok());
    auto merged = vm.disk_read(p, 2_MiB, 256);
    std::vector<u8> buf(256);
    (*merged)->read(0, buf);
    std::vector<u8> expect(256);
    data->read(0, expect);
    for (int i = 100; i < 110; ++i) expect[static_cast<size_t>(i)] = 0xee;
    EXPECT_EQ(buf, expect);
  });
}

TEST(VmMonitor, SyncPushesDirtyToHost) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    ASSERT_OK(vm.disk_write(p, 0, blob::make_synthetic(5, 64_KiB, 0, 2.0)));
    EXPECT_EQ(vm.host_write_bytes(), 0u);
    ASSERT_TRUE(vm.sync(p).is_ok());
    EXPECT_EQ(vm.host_write_bytes(), 64_KiB);
    EXPECT_EQ(vm.guest_cache().dirty_pages(), 0u);
  });
}

TEST(VmMonitor, SuspendWritesMemoryState) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    ASSERT_TRUE(vm.resume(p).is_ok());
    auto new_state = blob::make_synthetic(99, 8_MiB, 0.8, 3.0);
    ASSERT_TRUE(vm.suspend(p, new_state).is_ok());
    EXPECT_FALSE(vm.resumed());
  });
  EXPECT_EQ(blob::content_hash(**f.fs.get_file(paths->vmss())),
            blob::content_hash(*blob::make_synthetic(99, 8_MiB, 0.8, 3.0)));
}

// ---------------------------------------------------------------- RedoLog --

TEST(RedoLog, AppendAndReadBack) {
  VmFixture f;
  f.run([&](sim::Process& p) {
    RedoLog log(f.session, "/redo.log");
    ASSERT_TRUE(log.create(p).is_ok());
    auto data = blob::make_synthetic(1, 16_KiB, 0, 2.0);
    ASSERT_TRUE(log.append(p, 64_KiB, data).is_ok());
    EXPECT_TRUE(log.covers(64_KiB));
    EXPECT_TRUE(log.covers(64_KiB + 12_KiB));
    EXPECT_FALSE(log.covers(0));
    auto back = log.read(p, 64_KiB, 16_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*data));
    EXPECT_EQ(log.grains(), 4u);
    EXPECT_EQ(log.log_bytes(), 16_KiB);
  });
}

TEST(RedoLog, OverwriteReusesGrain) {
  VmFixture f;
  f.run([&](sim::Process& p) {
    RedoLog log(f.session, "/redo.log");
    ASSERT_OK(log.create(p));
    ASSERT_OK(log.append(p, 0, blob::make_bytes(std::vector<u8>(4096, 1))));
    ASSERT_OK(log.append(p, 0, blob::make_bytes(std::vector<u8>(4096, 2))));
    EXPECT_EQ(log.grains(), 1u);
    EXPECT_EQ(log.log_bytes(), 4096u);
    auto back = log.read(p, 0, 16);
    std::vector<u8> buf(16);
    (*back)->read(0, buf);
    EXPECT_EQ(buf[0], 2);
  });
}

TEST(RedoLog, UnalignedAppendRejected) {
  VmFixture f;
  f.run([&](sim::Process& p) {
    RedoLog log(f.session, "/redo.log");
    ASSERT_OK(log.create(p));
    EXPECT_EQ(log.append(p, 100, blob::make_zero(4096)).code(), ErrCode::kInval);
  });
}

TEST(VmMonitor, RedoLogDivertsWrites) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    auto redo = std::make_unique<RedoLog>(f.session, "/clone.redo");
    ASSERT_TRUE(redo->create(p).is_ok());
    vm.enable_redo_log(std::move(redo));
    auto data = blob::make_synthetic(6, 64_KiB, 0, 2.0);
    ASSERT_TRUE(vm.disk_write(p, 1_MiB, data).is_ok());
    ASSERT_TRUE(vm.sync(p).is_ok());
    // The golden image is untouched...
    auto base = f.fs.get_file(paths->flat_vmdk());
    EXPECT_EQ(blob::range_hash(**base, 1_MiB, 64_KiB),
              blob::range_hash(*disk_blob(spec), 1_MiB, 64_KiB));
    // ...the redo log has the writes, and reads see them.
    EXPECT_GT(vm.redo_log()->log_bytes(), 0u);
    vm.guest_cache().drop_all();
    auto back = vm.disk_read(p, 1_MiB, 64_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*data));
  });
}

TEST(VmMonitor, RedoReadStraddlesBaseAndLog) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    auto redo = std::make_unique<RedoLog>(f.session, "/clone.redo");
    ASSERT_OK(redo->create(p));
    vm.enable_redo_log(std::move(redo));
    // Overwrite one 4 KiB grain in the middle of a 16 KiB region.
    ASSERT_TRUE(vm.disk_write(p, 1_MiB + 4_KiB, blob::make_bytes(std::vector<u8>(4_KiB, 0xcd))).is_ok());
    ASSERT_TRUE(vm.sync(p).is_ok());
    vm.guest_cache().drop_all();
    auto back = vm.disk_read(p, 1_MiB, 16_KiB);
    ASSERT_TRUE(back.is_ok());
    std::vector<u8> buf(16_KiB);
    (*back)->read(0, buf);
    std::vector<u8> expect(16_KiB);
    disk_blob(spec)->read(1_MiB, expect);
    for (u64 i = 4_KiB; i < 8_KiB; ++i) expect[i] = 0xcd;
    EXPECT_EQ(buf, expect);
  });
}

// ---------------------------------------------------------------- GuestFs --

TEST(GuestFs, AddReadWrite) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    GuestFs gfs(vm, 4_MiB, 32_MiB);
    ASSERT_TRUE(gfs.add_file("a.txt", 10_KiB).is_ok());
    EXPECT_TRUE(gfs.exists("a.txt"));
    EXPECT_EQ(gfs.size("a.txt"), 10_KiB);
    EXPECT_EQ(gfs.add_file("a.txt", 1).code(), ErrCode::kExist);
    auto data = blob::make_synthetic(3, 4_KiB, 0, 2.0);
    ASSERT_TRUE(gfs.write(p, "a.txt", 2_KiB, data).is_ok());
    auto back = gfs.read(p, "a.txt", 2_KiB, 4_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*data));
  });
}

TEST(GuestFs, AppendGrowsAndRelocates) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    GuestFs gfs(vm, 4_MiB, 32_MiB);
    ASSERT_TRUE(gfs.add_file("log", 0, 8_KiB).is_ok());
    auto chunk = blob::make_bytes(std::vector<u8>(4_KiB, 0xab));
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(gfs.append(p, "log", chunk).is_ok());  // out-grows reserve
    }
    EXPECT_EQ(gfs.size("log"), 32_KiB);
    auto back = gfs.read(p, "log", 28_KiB, 4_KiB);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*chunk));
  });
}

TEST(GuestFs, TruncateRemoveAndSpace) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    (void)p;
    VmMonitor vm;
    vm.attach(f.session, paths->cfg(), paths->vmss(), f.session, paths->flat_vmdk());
    GuestFs gfs(vm, 4_MiB, 8_MiB);  // 2 MiB of contiguous space
    ASSERT_TRUE(gfs.add_file("f", 512_KiB).is_ok());
    EXPECT_EQ(gfs.add_file("huge", 4_MiB).code(), ErrCode::kNoSpc);
    ASSERT_TRUE(gfs.truncate("f", 1_KiB).is_ok());
    EXPECT_EQ(gfs.size("f"), 1_KiB);
    ASSERT_TRUE(gfs.remove("f").is_ok());
    EXPECT_FALSE(gfs.exists("f"));
    EXPECT_EQ(gfs.remove("f").code(), ErrCode::kNoEnt);
  });
}

// --------------------------------------------------------------- VmCloner --

TEST(VmCloner, LocalCloneProducesRunningVm) {
  VmFixture f;
  auto spec = f.small_spec();
  auto paths = install_image(f.fs, "/images", spec);
  f.run([&](sim::Process& p) {
    CloneConfig cfg;
    cfg.image = *paths;
    cfg.clone_dir = "/clones/c1";
    cfg.clone_name = "clone1";
    auto result = VmCloner::clone(p, f.session, f.session, cfg);
    ASSERT_TRUE(result.is_ok());
    EXPECT_TRUE(result->vm->resumed());
    EXPECT_GT(result->timing.copy_mem_s, 0.0);
    EXPECT_GE(result->timing.configure_s, 2.0);
    EXPECT_GT(result->timing.resume_s, 0.0);
    EXPECT_GT(result->timing.total_s(), 0.0);
    // Clone artifacts exist: cfg + memory copy + symlinks + redo log.
    EXPECT_TRUE(f.fs.exists("/clones/c1/clone1.cfg"));
    EXPECT_TRUE(f.fs.exists("/clones/c1/clone1.vmss"));
    EXPECT_TRUE(f.fs.exists("/clones/c1/clone1.vmdk"));
    EXPECT_TRUE(f.fs.exists("/clones/c1/clone1.redo"));
    // The memory copy matches the golden image.
    EXPECT_EQ(blob::content_hash(**f.fs.get_file("/clones/c1/clone1.vmss")),
              blob::content_hash(*memory_state_blob(spec)));
    // Clone's disk reads hit the golden image through the symlinked mount.
    auto got = result->vm->disk_read(p, 0, 64_KiB);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(blob::content_hash(**got), blob::range_hash(*disk_blob(spec), 0, 64_KiB));
    // And writes stay in the redo log.
    ASSERT_TRUE(result->vm->disk_write(p, 0, blob::make_bytes(std::vector<u8>(4096, 1))).is_ok());
    ASSERT_TRUE(result->vm->sync(p).is_ok());
    EXPECT_EQ(blob::range_hash(**f.fs.get_file(paths->flat_vmdk()), 0, 4096),
              blob::range_hash(*disk_blob(spec), 0, 4096));
  });
}

TEST(VmCloner, PersistentCloneWithoutRedo) {
  VmFixture f;
  auto paths = install_image(f.fs, "/images", f.small_spec());
  f.run([&](sim::Process& p) {
    CloneConfig cfg;
    cfg.image = *paths;
    cfg.clone_dir = "/clones/c2";
    cfg.use_redo_log = false;
    auto result = VmCloner::clone(p, f.session, f.session, cfg);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->vm->redo_log(), nullptr);
    // Writes go straight to the (symlinked) virtual disk.
    ASSERT_TRUE(result->vm->disk_write(p, 0, blob::make_bytes(std::vector<u8>(4096, 9))).is_ok());
    ASSERT_TRUE(result->vm->sync(p).is_ok());
    std::vector<u8> got(1);
    (*f.fs.get_file(paths->flat_vmdk()))->read(0, got);
    EXPECT_EQ(got[0], 9);
  });
}

}  // namespace
}  // namespace gvfs::vm
