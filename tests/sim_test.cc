// Tests for the discrete-event kernel and its resource models: virtual-time
// ordering, signals, semaphores, link serialization/fair sharing, disk FIFO
// queueing and CPU pools.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/resources.h"

namespace gvfs::sim {
namespace {

TEST(SimKernel, SingleProcessAdvancesTime) {
  SimKernel k;
  SimTime end = k.run_process("p", [](Process& p) {
    EXPECT_EQ(p.now(), 0);
    p.delay(5 * kSecond);
    EXPECT_EQ(p.now(), 5 * kSecond);
    p.delay(0);
    EXPECT_EQ(p.now(), 5 * kSecond);
  });
  EXPECT_EQ(end, 5 * kSecond);
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(SimKernel, ProcessesInterleaveDeterministically) {
  SimKernel k;
  std::vector<int> order;
  k.spawn("a", [&](Process& p) {
    order.push_back(1);
    p.delay(10);
    order.push_back(3);
    p.delay(20);  // wakes at 30
    order.push_back(6);
  });
  k.spawn("b", [&](Process& p) {
    order.push_back(2);
    p.delay(15);
    order.push_back(4);
    p.delay(10);  // wakes at 25
    order.push_back(5);
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SimKernel, TieBrokenByScheduleOrder) {
  SimKernel k;
  std::vector<char> order;
  k.spawn("a", [&](Process& p) {
    p.delay(100);
    order.push_back('a');
  });
  k.spawn("b", [&](Process& p) {
    p.delay(100);
    order.push_back('b');
  });
  k.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
}

TEST(SimKernel, DelayUntilPastIsNoop) {
  SimKernel k;
  k.run_process("p", [](Process& p) {
    p.delay(100);
    p.delay_until(50);  // already past; must not go backwards
    EXPECT_EQ(p.now(), 100);
  });
}

TEST(SimKernel, SpawnFromProcess) {
  SimKernel k;
  int child_ran = 0;
  k.run_process("parent", [&](Process& p) {
    p.delay(10);
    p.kernel().spawn("child", [&](Process& c) {
      EXPECT_GE(c.now(), 10);
      c.delay(5);
      child_ran = 1;
    });
    p.delay(100);
  });
  EXPECT_EQ(child_ran, 1);
}

TEST(SimKernel, FailedProcessCounted) {
  SimKernel k;
  k.spawn("bad", [](Process&) { throw std::runtime_error("boom"); });
  k.run();
  EXPECT_EQ(k.failed_processes(), 1);
}

TEST(SimKernel, FailedProcessNamesRecorded) {
  SimKernel k;
  k.spawn("ok", [](Process& p) { p.delay(10); });
  k.spawn("bad-writer", [](Process&) { throw std::runtime_error("boom"); });
  k.spawn("bad-reader", [](Process&) { throw std::runtime_error("bang"); });
  k.run();
  EXPECT_EQ(k.failed_processes(), 2);
  ASSERT_EQ(k.failed_process_names().size(), 2u);
  std::string joined = k.failed_names_joined();
  EXPECT_NE(joined.find("bad-writer"), std::string::npos) << joined;
  EXPECT_NE(joined.find("bad-reader"), std::string::npos) << joined;
  EXPECT_EQ(joined.find("ok"), std::string::npos) << joined;
}

TEST(Signal, NotifyAllWakesWaiters) {
  SimKernel k;
  Signal sig(k);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    k.spawn("waiter", [&](Process& p) {
      p.wait(sig);
      ++woke;
      EXPECT_EQ(p.now(), 50);
    });
  }
  k.spawn("notifier", [&](Process& p) {
    p.delay(50);
    sig.notify_all();
  });
  k.run();
  EXPECT_EQ(woke, 3);
}

TEST(Signal, NotifyOneWakesFifo) {
  SimKernel k;
  Signal sig(k);
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    k.spawn("w" + std::to_string(i), [&, i](Process& p) {
      p.wait(sig);
      order.push_back(i);
    });
  }
  k.spawn("n", [&](Process& p) {
    p.delay(10);
    EXPECT_TRUE(sig.notify_one());
    p.delay(10);
    EXPECT_TRUE(sig.notify_one());
    p.delay(10);
    EXPECT_FALSE(sig.notify_one());
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Signal, NotifyOneRewaiterGoesToBackOfQueue) {
  // A woken process that waits again queues behind waiters that were already
  // parked — FIFO across re-waits, not just across first waits.
  SimKernel k;
  Signal sig(k);
  std::vector<int> order;
  k.spawn("w0", [&](Process& p) {
    p.wait(sig);
    order.push_back(0);
    p.wait(sig);  // re-wait: must now queue behind w1
    order.push_back(0);
  });
  k.spawn("w1", [&](Process& p) {
    p.wait(sig);
    order.push_back(1);
  });
  k.spawn("n", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      p.delay(10);
      EXPECT_TRUE(sig.notify_one());
    }
    p.delay(10);
    EXPECT_FALSE(sig.notify_one());  // queue drained
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0}));
}

TEST(Signal, NotifyAllResumesAtNotifiersVirtualTime) {
  // Waiters parked at different virtual times all resume at the moment of
  // the notify_all, and a process that starts waiting afterwards is not
  // retroactively woken.
  SimKernel k;
  Signal sig(k);
  std::vector<SimTime> wake_times;
  bool late_woke = false;
  k.spawn("early", [&](Process& p) {
    p.wait(sig);  // parked at t=0
    wake_times.push_back(p.now());
  });
  k.spawn("mid", [&](Process& p) {
    p.delay(30);
    p.wait(sig);  // parked at t=30
    wake_times.push_back(p.now());
  });
  k.spawn("late", [&](Process& p) {
    p.delay(100);  // past the notify: waits forever, killed at end
    p.wait(sig);
    late_woke = true;
  });
  k.spawn("n", [&](Process& p) {
    p.delay(70);
    sig.notify_all();
  });
  k.run();
  EXPECT_EQ(wake_times, (std::vector<SimTime>{70, 70}));
  EXPECT_FALSE(late_woke);
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(Signal, ShutdownKillUnwindsWaiterStack) {
  // When the kernel kills still-blocked processes at end of run, their
  // stacks unwind (ProcessKilled) so RAII cleanup — permits, locks — runs.
  SimKernel k;
  Signal sig(k);
  Semaphore sem(k, 1);
  bool destructor_ran = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  k.spawn("stuck", [&](Process& p) {
    Sentinel s{&destructor_ran};
    ScopedPermit permit(p, sem);  // held across the fatal wait
    p.wait(sig);                  // never notified
  });
  k.run();
  EXPECT_TRUE(destructor_ran);
  EXPECT_EQ(sem.available(), 1);  // the permit was released by unwinding
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(Signal, BlockedForeverIsKilledAtEnd) {
  SimKernel k;
  Signal sig(k);
  bool reached_end = false;
  k.spawn("stuck", [&](Process& p) {
    p.wait(sig);  // never notified
    reached_end = true;
  });
  k.run();
  EXPECT_FALSE(reached_end);
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();  // kill is not a failure
}

TEST(Lockdep, CrossedSemaphoresReportHoldAndWaitCycle) {
  // The classic AB/BA deadlock: each process holds one permit and waits
  // forever for the other. Lockdep must name both processes in a cycle.
  SimKernel k;
  Semaphore a(k, 1, "lock-a");
  Semaphore b(k, 1, "lock-b");
  k.spawn("p1", [&](Process& p) {
    a.acquire(p);
    p.delay(10);
    b.acquire(p);  // p2 holds b: blocks forever
  });
  k.spawn("p2", [&](Process& p) {
    b.acquire(p);
    p.delay(10);
    a.acquire(p);  // p1 holds a: blocks forever
  });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_TRUE(report.deadlock()) << report.to_string();
  EXPECT_TRUE(report.names_process("p1")) << report.to_string();
  EXPECT_TRUE(report.names_process("p2")) << report.to_string();
  ASSERT_EQ(report.cycles.size(), 1u) << report.to_string();
  EXPECT_EQ(report.cycles[0].size(), 2u) << report.to_string();
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(Lockdep, CrossedSignalWaitersAreNamedWithSignals) {
  // Two processes each parked on a signal only the other would have
  // notified. No hold annotations, so no provable cycle — but the report
  // still names both stuck processes and what they wait on.
  SimKernel k;
  Signal sa(k, "sig-a");
  Signal sb(k, "sig-b");
  k.spawn("w1", [&](Process& p) { p.wait(sa); sb.notify_one(); });
  k.spawn("w2", [&](Process& p) { p.wait(sb); sa.notify_one(); });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_EQ(report.blocked.size(), 2u) << report.to_string();
  EXPECT_TRUE(report.names_process("w1"));
  EXPECT_TRUE(report.names_process("w2"));
  EXPECT_EQ(report.blocked[0].signal, "sig-a");
  EXPECT_EQ(report.blocked[1].signal, "sig-b");
  EXPECT_FALSE(report.deadlock());
}

TEST(Lockdep, NeverNotifiedSignalNamesEveryWaiter) {
  SimKernel k;
  Signal sig(k, "never-notified");
  k.spawn("waiter-1", [&](Process& p) { p.wait(sig); });
  k.spawn("waiter-2", [&](Process& p) { p.delay(5); p.wait(sig); });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_EQ(report.blocked.size(), 2u) << report.to_string();
  EXPECT_TRUE(report.names_process("waiter-1"));
  EXPECT_TRUE(report.names_process("waiter-2"));
  EXPECT_EQ(report.blocked[0].signal, "never-notified");
  EXPECT_FALSE(report.blocked[0].possible_lost_wakeup);
  EXPECT_FALSE(report.deadlock());
}

TEST(Lockdep, LostWakeupIsFlagged) {
  // The notify fires at t=0 while nobody waits; the waiter arrives at t=10
  // and sleeps forever — the textbook lost wakeup, and the report says so.
  SimKernel k;
  Signal sig(k, "racy");
  k.spawn("notifier", [&](Process& p) { (void)p; sig.notify_one(); });
  k.spawn("sleeper", [&](Process& p) {
    p.delay(10);
    p.wait(sig);
  });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_EQ(report.blocked.size(), 1u) << report.to_string();
  EXPECT_EQ(report.blocked[0].process, "sleeper");
  EXPECT_TRUE(report.blocked[0].possible_lost_wakeup);
}

TEST(Lockdep, CleanRunLeavesEmptyReport) {
  SimKernel k;
  Signal sig(k, "ok");
  k.spawn("w", [&](Process& p) { p.wait(sig); });
  k.spawn("n", [&](Process& p) {
    p.delay(1);
    sig.notify_all();
  });
  k.run();
  EXPECT_TRUE(k.quiescence_report().blocked.empty());
  EXPECT_FALSE(k.quiescence_report().deadlock());
}

TEST(Lockdep, ThreeWayCycleIsReported) {
  SimKernel k;
  Semaphore a(k, 1, "a"), b(k, 1, "b"), c(k, 1, "c");
  k.spawn("p1", [&](Process& p) { a.acquire(p); p.delay(10); b.acquire(p); });
  k.spawn("p2", [&](Process& p) { b.acquire(p); p.delay(10); c.acquire(p); });
  k.spawn("p3", [&](Process& p) { c.acquire(p); p.delay(10); a.acquire(p); });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_TRUE(report.deadlock()) << report.to_string();
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_EQ(report.cycles[0].size(), 3u);
  for (const char* name : {"p1", "p2", "p3"}) {
    EXPECT_TRUE(report.names_process(name)) << name;
  }
}

TEST(Semaphore, LimitsConcurrency) {
  SimKernel k;
  Semaphore sem(k, 2);
  int concurrent = 0, max_concurrent = 0, done = 0;
  for (int i = 0; i < 6; ++i) {
    k.spawn("job", [&](Process& p) {
      ScopedPermit permit(p, sem);
      max_concurrent = std::max(max_concurrent, ++concurrent);
      p.delay(100);
      --concurrent;
      ++done;
    });
  }
  k.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(CpuPool, SerializesBeyondWidth) {
  SimKernel k;
  CpuPool cpu(k, 2);
  SimTime last_end = 0;
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    k.spawn("job", [&](Process& p) {
      cpu.run(p, 100 * kMillisecond);
      last_end = std::max(last_end, p.now());
      ++done;
    });
  }
  k.run();
  EXPECT_EQ(done, 4);
  // 4 jobs of 100ms on 2 CPUs = 200ms.
  EXPECT_EQ(last_end, 200 * kMillisecond);
}

TEST(Link, SerializationPlusLatency) {
  SimKernel k;
  Link link(k, "l", LinkConfig{from_millis(10), static_cast<double>(1_MiB), 64_KiB, 0});
  k.run_process("p", [&](Process& p) {
    link.transmit(p, 1_MiB);  // 1 s serialization + 10 ms latency
    EXPECT_EQ(p.now(), kSecond + from_millis(10));
  });
  EXPECT_EQ(link.bytes_sent(), 1_MiB);
  EXPECT_EQ(link.messages(), 1u);
}

TEST(Link, ZeroByteMessageStillPaysLatency) {
  SimKernel k;
  Link link(k, "l", LinkConfig{from_millis(5), 1e9, 64_KiB, 0});
  k.run_process("p", [&](Process& p) {
    link.transmit(p, 0);
    EXPECT_EQ(p.now(), from_millis(5));
  });
}

TEST(Link, PerMessageOverheadCharged) {
  SimKernel k;
  Link link(k, "l", LinkConfig{0, 1e12, 64_KiB, from_millis(1)});
  k.run_process("p", [&](Process& p) {
    link.transmit(p, 100);
    link.transmit(p, 100);
    EXPECT_GE(p.now(), 2 * from_millis(1));
  });
}

TEST(Link, ConcurrentSendersShareBandwidthFairly) {
  SimKernel k;
  // 2 MiB/s pipe, no latency. Two senders of 1 MiB each should take ~1 s
  // TOTAL if fair-shared (each gets 1 MiB/s), finishing near each other.
  Link link(k, "l", LinkConfig{0, 2.0 * 1_MiB, 64_KiB, 0});
  SimTime end_a = 0, end_b = 0;
  k.spawn("a", [&](Process& p) {
    link.transmit(p, 1_MiB);
    end_a = p.now();
  });
  k.spawn("b", [&](Process& p) {
    link.transmit(p, 1_MiB);
    end_b = p.now();
  });
  k.run();
  // Both finish within one chunk-time of each other and near 1 s.
  double a = to_seconds(end_a), b = to_seconds(end_b);
  EXPECT_NEAR(a, 1.0, 0.05);
  EXPECT_NEAR(b, 1.0, 0.05);
}

TEST(Link, TransmitExSkipsPropagation) {
  SimKernel k;
  Link link(k, "l", LinkConfig{from_millis(50), static_cast<double>(1_MiB), 64_KiB, 0});
  k.run_process("p", [&](Process& p) {
    link.transmit_ex(p, 16_KiB, false);
    EXPECT_LT(p.now(), from_millis(50));  // only serialization (~15.6 ms)
  });
}

TEST(Disk, SeekVsSequential) {
  SimKernel k;
  DiskModel disk(k, "d", DiskConfig{from_millis(9), from_millis(0.1), 35.0 * 1_MiB});
  SimTime random_t = 0, seq_t = 0;
  k.run_process("p", [&](Process& p) {
    SimTime t0 = p.now();
    disk.access(p, 32_KiB, Locality::kRandom);
    random_t = p.now() - t0;
    t0 = p.now();
    disk.access(p, 32_KiB, Locality::kSequential);
    seq_t = p.now() - t0;
  });
  EXPECT_GT(random_t, seq_t);
  EXPECT_GE(random_t, from_millis(9));
  EXPECT_LT(seq_t, from_millis(2));
  EXPECT_EQ(disk.ops(), 2u);
  EXPECT_EQ(disk.bytes_moved(), 64_KiB);
}

TEST(Disk, FifoQueueing) {
  SimKernel k;
  DiskModel disk(k, "d", DiskConfig{from_millis(10), from_millis(10), 1e12});
  SimTime end_a = 0, end_b = 0;
  k.spawn("a", [&](Process& p) {
    disk.access(p, 4_KiB, Locality::kRandom);
    end_a = p.now();
  });
  k.spawn("b", [&](Process& p) {
    disk.access(p, 4_KiB, Locality::kRandom);
    end_b = p.now();
  });
  k.run();
  // Each op: 10 ms positioning + ~4 us transfer; b queues behind a.
  EXPECT_GE(end_a, from_millis(10));
  EXPECT_LT(end_a, from_millis(11));
  EXPECT_GE(end_b, end_a + from_millis(10));
  EXPECT_LT(end_b, from_millis(21));
}

// ------------------------------------------------------------ determinism --

// Seeded mix of delays, signal ping-pong, and notify_all drains across five
// processes; returns the full dispatch trace as "time seq name" lines.
std::string run_traced_scenario() {
  SimKernel k;
  k.seed_rng(1234);
  std::string trace;
  k.set_schedule_tracer([&](SimTime t, u64 seq, const Process& p) {
    trace += std::to_string(t) + " " + std::to_string(seq) + " " + p.name() + "\n";
  });
  Signal ping(k, "ping");
  Signal pong(k, "pong");
  for (int i = 0; i < 4; ++i) {
    k.spawn("worker-" + std::to_string(i), [&, i](Process& p) {
      for (int r = 0; r < 2; ++r) {
        p.delay(static_cast<SimDuration>(k.rng().next_below(97)) + i);
        if ((r + i) % 2 == 0) {
          ping.notify_one();
          p.wait(pong);
        } else {
          pong.notify_one();
          p.wait(ping);
        }
      }
    });
  }
  k.spawn("drain", [&](Process& p) {
    for (int r = 0; r < 6; ++r) {
      p.delay(50);
      ping.notify_all();
      pong.notify_all();
    }
  });
  k.run();
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
  return trace;
}

// The exact dispatch schedule of run_traced_scenario(). Any engine change
// that reorders wakeups — even preserving correctness — breaks replayability
// of every experiment in the repo and must show up here, not in a flaky
// bench. (The thread->fiber migration was validated against this trace.)
constexpr const char* kGoldenScheduleTrace =
    "0 0 worker-0\n"
    "0 1 worker-1\n"
    "0 2 worker-2\n"
    "0 3 worker-3\n"
    "0 4 drain\n"
    "21 7 worker-2\n"
    "32 8 worker-3\n"
    "32 10 worker-2\n"
    "50 9 drain\n"
    "50 12 worker-3\n"
    "58 6 worker-1\n"
    "70 5 worker-0\n"
    "70 15 worker-1\n"
    "100 13 drain\n"
    "100 17 worker-0\n"
    "104 11 worker-2\n"
    "119 14 worker-3\n"
    "119 16 worker-1\n"
    "119 20 worker-2\n"
    "122 19 worker-0\n"
    "122 21 worker-3\n"
    "150 18 drain\n"
    "150 22 worker-0\n"
    "150 23 worker-1\n"
    "200 24 drain\n"
    "250 25 drain\n"
    "300 26 drain\n";

TEST(SimKernel, ScheduleTraceIsDeterministicAcrossRuns) {
  std::string first = run_traced_scenario();
  std::string second = run_traced_scenario();
  EXPECT_EQ(first, second) << "same seed, same spawn order => same schedule";
  EXPECT_FALSE(first.empty());
}

TEST(SimKernel, ScheduleTraceMatchesCommittedGolden) {
  EXPECT_EQ(run_traced_scenario(), kGoldenScheduleTrace);
}

TEST(SimKernel, FiberStacksAreRecycledAcrossSequentialProcesses) {
  // 64 processes that never overlap in virtual time must share one pooled
  // stack; the pool's high-water mark is the real concurrency, not the
  // spawn count.
  SimKernel k;
  int ran = 0;
  for (int i = 0; i < 64; ++i) {
    k.spawn("seq-" + std::to_string(i), [&](Process& p) {
      p.delay(1);
      ++ran;
    }, /*start_after=*/i * 10);
  }
  k.run();
  EXPECT_EQ(ran, 64);
  EXPECT_EQ(k.fiber_stacks_created(), 1u);
}

namespace {
// noinline + volatile scratch so the frames are real and not tail-folded.
__attribute__((noinline)) u64 deep_recurse(u64 depth) {
  volatile char scratch[256];
  scratch[0] = static_cast<char>(depth);
  if (depth == 0) return static_cast<u64>(scratch[0]);
  return deep_recurse(depth - 1) + 1;
}
}  // namespace

TEST(SimKernel, FiberStackHasThreadSizedHeadroom) {
  // Regression: blob extent chains recurse one frame per layer
  // (ExtentStore::compressed_size), and a long interactive write session
  // builds chains deep enough to need multiple MiB of stack. The old
  // thread-per-process engine got 8 MiB from glibc; the fiber stacks must
  // match. 8192 frames x ~300 B ≈ 2.5 MiB — overflows a 1 MiB stack,
  // comfortable in 8 MiB even with sanitizer redzones inflating frames.
  SimKernel k;
  u64 got = 0;
  k.spawn("deep", [&](Process& p) {
    p.delay(1);
    got = deep_recurse(8192);
  });
  k.run();
  EXPECT_EQ(got, 8192u);
}

TEST(Lockdep, LargeWaitForGraphSurvivesReallocationAndFindsCycle) {
  // Regression for the quiescence-analysis iterator invalidation: the DFS
  // used to walk out[v] while resolving edge targets could still grow (and
  // reallocate) the adjacency structure. Build a graph with enough nodes to
  // force several reallocations — 32 holder/waiter pairs around a buried
  // 3-way cycle — plus a holder ("ghost") whose awaited signal is destroyed
  // before quiescence, so it enters the graph only as an edge target.
  SimKernel k;
  Semaphore a(k, 1, "a");
  Semaphore b(k, 1, "b");
  Semaphore c(k, 1, "c");
  Signal never(k, "never");
  std::vector<std::unique_ptr<Semaphore>> extra;
  for (int i = 0; i < 32; ++i) {
    extra.push_back(std::make_unique<Semaphore>(k, 1, "x" + std::to_string(i)));
  }
  for (int i = 0; i < 32; ++i) {
    k.spawn("holder-" + std::to_string(i), [&, i](Process& p) {
      extra[static_cast<std::size_t>(i)]->acquire(p);
      p.wait(never);
    });
    k.spawn("waiter-" + std::to_string(i), [&, i](Process& p) {
      p.delay(1);
      extra[static_cast<std::size_t>(i)]->acquire(p);
    });
  }
  k.spawn("p1", [&](Process& p) { a.acquire(p); p.delay(10); b.acquire(p); });
  k.spawn("p2", [&](Process& p) { b.acquire(p); p.delay(10); c.acquire(p); });
  k.spawn("p3", [&](Process& p) { c.acquire(p); p.delay(10); a.acquire(p); });
  Semaphore g(k, 1, "g");
  auto* doomed = new Signal(k, "doomed");
  k.spawn("ghost", [&](Process& p) {
    g.acquire(p);
    p.wait(*doomed);
  });
  k.spawn("destroyer", [&](Process& p) {
    p.delay(5);
    delete doomed;  // ghost stays blocked on an unregistered signal
    doomed = nullptr;
  });
  k.spawn("gwaiter", [&](Process& p) {
    p.delay(6);
    g.acquire(p);  // waits for ghost, which no registered signal lists
  });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_TRUE(report.deadlock()) << report.to_string();
  ASSERT_EQ(report.cycles.size(), 1u) << report.to_string();
  EXPECT_EQ(report.cycles[0].size(), 3u) << report.to_string();
  for (const char* name : {"p1", "p2", "p3"}) {
    EXPECT_TRUE(report.names_process(name)) << name;
  }
  // 32 on "never" + 32 semaphore waiters + 3 cycle members + gwaiter; the
  // ghost waits on a dead signal, so it is an edge target but not a
  // blocked-waiter record.
  EXPECT_EQ(report.blocked.size(), 68u) << report.to_string();
  EXPECT_TRUE(report.names_process("gwaiter"));
  EXPECT_FALSE(report.names_process("ghost"));
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(Signal, NotifyOneStaysFifoUnderChurn) {
  // Hammer the head-index FIFO: one long-lived waiter plus a churn of
  // transient waiters, with wake order recorded. Order must match the old
  // erase-from-front semantics exactly, and the compacted wait list must
  // not wake anyone twice.
  SimKernel k;
  Signal s(k, "churn");
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    k.spawn("w" + std::to_string(i), [&, i](Process& p) {
      p.delay(i);  // enqueue in a known order
      p.wait(s);
      order.push_back(i);
    });
  }
  k.spawn("n", [&](Process& p) {
    p.delay(1000);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(s.notify_one());
      p.delay(1);
    }
    EXPECT_FALSE(s.notify_one());
  });
  k.run();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

}  // namespace
}  // namespace gvfs::sim
