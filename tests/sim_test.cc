// Tests for the discrete-event kernel and its resource models: virtual-time
// ordering, signals, semaphores, link serialization/fair sharing, disk FIFO
// queueing and CPU pools.
#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.h"
#include "sim/resources.h"

namespace gvfs::sim {
namespace {

TEST(SimKernel, SingleProcessAdvancesTime) {
  SimKernel k;
  SimTime end = k.run_process("p", [](Process& p) {
    EXPECT_EQ(p.now(), 0);
    p.delay(5 * kSecond);
    EXPECT_EQ(p.now(), 5 * kSecond);
    p.delay(0);
    EXPECT_EQ(p.now(), 5 * kSecond);
  });
  EXPECT_EQ(end, 5 * kSecond);
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(SimKernel, ProcessesInterleaveDeterministically) {
  SimKernel k;
  std::vector<int> order;
  k.spawn("a", [&](Process& p) {
    order.push_back(1);
    p.delay(10);
    order.push_back(3);
    p.delay(20);  // wakes at 30
    order.push_back(6);
  });
  k.spawn("b", [&](Process& p) {
    order.push_back(2);
    p.delay(15);
    order.push_back(4);
    p.delay(10);  // wakes at 25
    order.push_back(5);
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SimKernel, TieBrokenByScheduleOrder) {
  SimKernel k;
  std::vector<char> order;
  k.spawn("a", [&](Process& p) {
    p.delay(100);
    order.push_back('a');
  });
  k.spawn("b", [&](Process& p) {
    p.delay(100);
    order.push_back('b');
  });
  k.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
}

TEST(SimKernel, DelayUntilPastIsNoop) {
  SimKernel k;
  k.run_process("p", [](Process& p) {
    p.delay(100);
    p.delay_until(50);  // already past; must not go backwards
    EXPECT_EQ(p.now(), 100);
  });
}

TEST(SimKernel, SpawnFromProcess) {
  SimKernel k;
  int child_ran = 0;
  k.run_process("parent", [&](Process& p) {
    p.delay(10);
    p.kernel().spawn("child", [&](Process& c) {
      EXPECT_GE(c.now(), 10);
      c.delay(5);
      child_ran = 1;
    });
    p.delay(100);
  });
  EXPECT_EQ(child_ran, 1);
}

TEST(SimKernel, FailedProcessCounted) {
  SimKernel k;
  k.spawn("bad", [](Process&) { throw std::runtime_error("boom"); });
  k.run();
  EXPECT_EQ(k.failed_processes(), 1);
}

TEST(SimKernel, FailedProcessNamesRecorded) {
  SimKernel k;
  k.spawn("ok", [](Process& p) { p.delay(10); });
  k.spawn("bad-writer", [](Process&) { throw std::runtime_error("boom"); });
  k.spawn("bad-reader", [](Process&) { throw std::runtime_error("bang"); });
  k.run();
  EXPECT_EQ(k.failed_processes(), 2);
  ASSERT_EQ(k.failed_process_names().size(), 2u);
  std::string joined = k.failed_names_joined();
  EXPECT_NE(joined.find("bad-writer"), std::string::npos) << joined;
  EXPECT_NE(joined.find("bad-reader"), std::string::npos) << joined;
  EXPECT_EQ(joined.find("ok"), std::string::npos) << joined;
}

TEST(Signal, NotifyAllWakesWaiters) {
  SimKernel k;
  Signal sig(k);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    k.spawn("waiter", [&](Process& p) {
      p.wait(sig);
      ++woke;
      EXPECT_EQ(p.now(), 50);
    });
  }
  k.spawn("notifier", [&](Process& p) {
    p.delay(50);
    sig.notify_all();
  });
  k.run();
  EXPECT_EQ(woke, 3);
}

TEST(Signal, NotifyOneWakesFifo) {
  SimKernel k;
  Signal sig(k);
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    k.spawn("w" + std::to_string(i), [&, i](Process& p) {
      p.wait(sig);
      order.push_back(i);
    });
  }
  k.spawn("n", [&](Process& p) {
    p.delay(10);
    EXPECT_TRUE(sig.notify_one());
    p.delay(10);
    EXPECT_TRUE(sig.notify_one());
    p.delay(10);
    EXPECT_FALSE(sig.notify_one());
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Signal, NotifyOneRewaiterGoesToBackOfQueue) {
  // A woken process that waits again queues behind waiters that were already
  // parked — FIFO across re-waits, not just across first waits.
  SimKernel k;
  Signal sig(k);
  std::vector<int> order;
  k.spawn("w0", [&](Process& p) {
    p.wait(sig);
    order.push_back(0);
    p.wait(sig);  // re-wait: must now queue behind w1
    order.push_back(0);
  });
  k.spawn("w1", [&](Process& p) {
    p.wait(sig);
    order.push_back(1);
  });
  k.spawn("n", [&](Process& p) {
    for (int i = 0; i < 3; ++i) {
      p.delay(10);
      EXPECT_TRUE(sig.notify_one());
    }
    p.delay(10);
    EXPECT_FALSE(sig.notify_one());  // queue drained
  });
  k.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0}));
}

TEST(Signal, NotifyAllResumesAtNotifiersVirtualTime) {
  // Waiters parked at different virtual times all resume at the moment of
  // the notify_all, and a process that starts waiting afterwards is not
  // retroactively woken.
  SimKernel k;
  Signal sig(k);
  std::vector<SimTime> wake_times;
  bool late_woke = false;
  k.spawn("early", [&](Process& p) {
    p.wait(sig);  // parked at t=0
    wake_times.push_back(p.now());
  });
  k.spawn("mid", [&](Process& p) {
    p.delay(30);
    p.wait(sig);  // parked at t=30
    wake_times.push_back(p.now());
  });
  k.spawn("late", [&](Process& p) {
    p.delay(100);  // past the notify: waits forever, killed at end
    p.wait(sig);
    late_woke = true;
  });
  k.spawn("n", [&](Process& p) {
    p.delay(70);
    sig.notify_all();
  });
  k.run();
  EXPECT_EQ(wake_times, (std::vector<SimTime>{70, 70}));
  EXPECT_FALSE(late_woke);
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(Signal, ShutdownKillUnwindsWaiterStack) {
  // When the kernel kills still-blocked processes at end of run, their
  // stacks unwind (ProcessKilled) so RAII cleanup — permits, locks — runs.
  SimKernel k;
  Signal sig(k);
  Semaphore sem(k, 1);
  bool destructor_ran = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  k.spawn("stuck", [&](Process& p) {
    Sentinel s{&destructor_ran};
    ScopedPermit permit(p, sem);  // held across the fatal wait
    p.wait(sig);                  // never notified
  });
  k.run();
  EXPECT_TRUE(destructor_ran);
  EXPECT_EQ(sem.available(), 1);  // the permit was released by unwinding
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(Signal, BlockedForeverIsKilledAtEnd) {
  SimKernel k;
  Signal sig(k);
  bool reached_end = false;
  k.spawn("stuck", [&](Process& p) {
    p.wait(sig);  // never notified
    reached_end = true;
  });
  k.run();
  EXPECT_FALSE(reached_end);
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();  // kill is not a failure
}

TEST(Lockdep, CrossedSemaphoresReportHoldAndWaitCycle) {
  // The classic AB/BA deadlock: each process holds one permit and waits
  // forever for the other. Lockdep must name both processes in a cycle.
  SimKernel k;
  Semaphore a(k, 1, "lock-a");
  Semaphore b(k, 1, "lock-b");
  k.spawn("p1", [&](Process& p) {
    a.acquire(p);
    p.delay(10);
    b.acquire(p);  // p2 holds b: blocks forever
  });
  k.spawn("p2", [&](Process& p) {
    b.acquire(p);
    p.delay(10);
    a.acquire(p);  // p1 holds a: blocks forever
  });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_TRUE(report.deadlock()) << report.to_string();
  EXPECT_TRUE(report.names_process("p1")) << report.to_string();
  EXPECT_TRUE(report.names_process("p2")) << report.to_string();
  ASSERT_EQ(report.cycles.size(), 1u) << report.to_string();
  EXPECT_EQ(report.cycles[0].size(), 2u) << report.to_string();
  EXPECT_EQ(k.failed_processes(), 0) << k.failed_names_joined();
}

TEST(Lockdep, CrossedSignalWaitersAreNamedWithSignals) {
  // Two processes each parked on a signal only the other would have
  // notified. No hold annotations, so no provable cycle — but the report
  // still names both stuck processes and what they wait on.
  SimKernel k;
  Signal sa(k, "sig-a");
  Signal sb(k, "sig-b");
  k.spawn("w1", [&](Process& p) { p.wait(sa); sb.notify_one(); });
  k.spawn("w2", [&](Process& p) { p.wait(sb); sa.notify_one(); });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_EQ(report.blocked.size(), 2u) << report.to_string();
  EXPECT_TRUE(report.names_process("w1"));
  EXPECT_TRUE(report.names_process("w2"));
  EXPECT_EQ(report.blocked[0].signal, "sig-a");
  EXPECT_EQ(report.blocked[1].signal, "sig-b");
  EXPECT_FALSE(report.deadlock());
}

TEST(Lockdep, NeverNotifiedSignalNamesEveryWaiter) {
  SimKernel k;
  Signal sig(k, "never-notified");
  k.spawn("waiter-1", [&](Process& p) { p.wait(sig); });
  k.spawn("waiter-2", [&](Process& p) { p.delay(5); p.wait(sig); });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_EQ(report.blocked.size(), 2u) << report.to_string();
  EXPECT_TRUE(report.names_process("waiter-1"));
  EXPECT_TRUE(report.names_process("waiter-2"));
  EXPECT_EQ(report.blocked[0].signal, "never-notified");
  EXPECT_FALSE(report.blocked[0].possible_lost_wakeup);
  EXPECT_FALSE(report.deadlock());
}

TEST(Lockdep, LostWakeupIsFlagged) {
  // The notify fires at t=0 while nobody waits; the waiter arrives at t=10
  // and sleeps forever — the textbook lost wakeup, and the report says so.
  SimKernel k;
  Signal sig(k, "racy");
  k.spawn("notifier", [&](Process& p) { (void)p; sig.notify_one(); });
  k.spawn("sleeper", [&](Process& p) {
    p.delay(10);
    p.wait(sig);
  });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_EQ(report.blocked.size(), 1u) << report.to_string();
  EXPECT_EQ(report.blocked[0].process, "sleeper");
  EXPECT_TRUE(report.blocked[0].possible_lost_wakeup);
}

TEST(Lockdep, CleanRunLeavesEmptyReport) {
  SimKernel k;
  Signal sig(k, "ok");
  k.spawn("w", [&](Process& p) { p.wait(sig); });
  k.spawn("n", [&](Process& p) {
    p.delay(1);
    sig.notify_all();
  });
  k.run();
  EXPECT_TRUE(k.quiescence_report().blocked.empty());
  EXPECT_FALSE(k.quiescence_report().deadlock());
}

TEST(Lockdep, ThreeWayCycleIsReported) {
  SimKernel k;
  Semaphore a(k, 1, "a"), b(k, 1, "b"), c(k, 1, "c");
  k.spawn("p1", [&](Process& p) { a.acquire(p); p.delay(10); b.acquire(p); });
  k.spawn("p2", [&](Process& p) { b.acquire(p); p.delay(10); c.acquire(p); });
  k.spawn("p3", [&](Process& p) { c.acquire(p); p.delay(10); a.acquire(p); });
  k.run();
  const QuiescenceReport& report = k.quiescence_report();
  ASSERT_TRUE(report.deadlock()) << report.to_string();
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_EQ(report.cycles[0].size(), 3u);
  for (const char* name : {"p1", "p2", "p3"}) {
    EXPECT_TRUE(report.names_process(name)) << name;
  }
}

TEST(Semaphore, LimitsConcurrency) {
  SimKernel k;
  Semaphore sem(k, 2);
  int concurrent = 0, max_concurrent = 0, done = 0;
  for (int i = 0; i < 6; ++i) {
    k.spawn("job", [&](Process& p) {
      ScopedPermit permit(p, sem);
      max_concurrent = std::max(max_concurrent, ++concurrent);
      p.delay(100);
      --concurrent;
      ++done;
    });
  }
  k.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(CpuPool, SerializesBeyondWidth) {
  SimKernel k;
  CpuPool cpu(k, 2);
  SimTime last_end = 0;
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    k.spawn("job", [&](Process& p) {
      cpu.run(p, 100 * kMillisecond);
      last_end = std::max(last_end, p.now());
      ++done;
    });
  }
  k.run();
  EXPECT_EQ(done, 4);
  // 4 jobs of 100ms on 2 CPUs = 200ms.
  EXPECT_EQ(last_end, 200 * kMillisecond);
}

TEST(Link, SerializationPlusLatency) {
  SimKernel k;
  Link link(k, "l", LinkConfig{from_millis(10), static_cast<double>(1_MiB), 64_KiB, 0});
  k.run_process("p", [&](Process& p) {
    link.transmit(p, 1_MiB);  // 1 s serialization + 10 ms latency
    EXPECT_EQ(p.now(), kSecond + from_millis(10));
  });
  EXPECT_EQ(link.bytes_sent(), 1_MiB);
  EXPECT_EQ(link.messages(), 1u);
}

TEST(Link, ZeroByteMessageStillPaysLatency) {
  SimKernel k;
  Link link(k, "l", LinkConfig{from_millis(5), 1e9, 64_KiB, 0});
  k.run_process("p", [&](Process& p) {
    link.transmit(p, 0);
    EXPECT_EQ(p.now(), from_millis(5));
  });
}

TEST(Link, PerMessageOverheadCharged) {
  SimKernel k;
  Link link(k, "l", LinkConfig{0, 1e12, 64_KiB, from_millis(1)});
  k.run_process("p", [&](Process& p) {
    link.transmit(p, 100);
    link.transmit(p, 100);
    EXPECT_GE(p.now(), 2 * from_millis(1));
  });
}

TEST(Link, ConcurrentSendersShareBandwidthFairly) {
  SimKernel k;
  // 2 MiB/s pipe, no latency. Two senders of 1 MiB each should take ~1 s
  // TOTAL if fair-shared (each gets 1 MiB/s), finishing near each other.
  Link link(k, "l", LinkConfig{0, 2.0 * 1_MiB, 64_KiB, 0});
  SimTime end_a = 0, end_b = 0;
  k.spawn("a", [&](Process& p) {
    link.transmit(p, 1_MiB);
    end_a = p.now();
  });
  k.spawn("b", [&](Process& p) {
    link.transmit(p, 1_MiB);
    end_b = p.now();
  });
  k.run();
  // Both finish within one chunk-time of each other and near 1 s.
  double a = to_seconds(end_a), b = to_seconds(end_b);
  EXPECT_NEAR(a, 1.0, 0.05);
  EXPECT_NEAR(b, 1.0, 0.05);
}

TEST(Link, TransmitExSkipsPropagation) {
  SimKernel k;
  Link link(k, "l", LinkConfig{from_millis(50), static_cast<double>(1_MiB), 64_KiB, 0});
  k.run_process("p", [&](Process& p) {
    link.transmit_ex(p, 16_KiB, false);
    EXPECT_LT(p.now(), from_millis(50));  // only serialization (~15.6 ms)
  });
}

TEST(Disk, SeekVsSequential) {
  SimKernel k;
  DiskModel disk(k, "d", DiskConfig{from_millis(9), from_millis(0.1), 35.0 * 1_MiB});
  SimTime random_t = 0, seq_t = 0;
  k.run_process("p", [&](Process& p) {
    SimTime t0 = p.now();
    disk.access(p, 32_KiB, Locality::kRandom);
    random_t = p.now() - t0;
    t0 = p.now();
    disk.access(p, 32_KiB, Locality::kSequential);
    seq_t = p.now() - t0;
  });
  EXPECT_GT(random_t, seq_t);
  EXPECT_GE(random_t, from_millis(9));
  EXPECT_LT(seq_t, from_millis(2));
  EXPECT_EQ(disk.ops(), 2u);
  EXPECT_EQ(disk.bytes_moved(), 64_KiB);
}

TEST(Disk, FifoQueueing) {
  SimKernel k;
  DiskModel disk(k, "d", DiskConfig{from_millis(10), from_millis(10), 1e12});
  SimTime end_a = 0, end_b = 0;
  k.spawn("a", [&](Process& p) {
    disk.access(p, 4_KiB, Locality::kRandom);
    end_a = p.now();
  });
  k.spawn("b", [&](Process& p) {
    disk.access(p, 4_KiB, Locality::kRandom);
    end_b = p.now();
  });
  k.run();
  // Each op: 10 ms positioning + ~4 us transfer; b queues behind a.
  EXPECT_GE(end_a, from_millis(10));
  EXPECT_LT(end_a, from_millis(11));
  EXPECT_GE(end_b, end_a + from_millis(10));
  EXPECT_LT(end_b, from_millis(21));
}

}  // namespace
}  // namespace gvfs::sim
