// End-to-end integration tests over full scenario testbeds: data integrity
// through the entire kernel-client -> proxy -> tunnel -> proxy -> server
// path, cache warm/cold behaviour, middleware consistency, cloning speedups
// and parallel-clone scaling — the qualitative claims of §4 at test scale.
#include <gtest/gtest.h>

#include "test_util.h"

#include <map>

#include "gvfs/experiment.h"
#include "gvfs/testbed.h"
#include "vm/vm_cloner.h"
#include "workload/synthetic.h"

namespace gvfs::core {
namespace {

vm::VmImageSpec small_image(const std::string& name = "vm1", u64 seed = 42) {
  vm::VmImageSpec spec;
  spec.name = name;
  spec.memory_bytes = 8_MiB;
  spec.disk_bytes = 128_MiB;
  spec.seed = seed;
  return spec;
}

TestbedOptions options_for(Scenario s) {
  TestbedOptions opt;
  opt.scenario = s;
  // Small block cache keeps tests fast.
  opt.block_cache.capacity_bytes = 256_MiB;
  opt.block_cache.num_banks = 16;
  opt.file_cache_bytes = 256_MiB;
  return opt;
}

TEST(Testbed, ConstructsEveryScenario) {
  for (Scenario s : {Scenario::kLocal, Scenario::kLan, Scenario::kWan,
                     Scenario::kWanCached, Scenario::kPlainNfsWan}) {
    Testbed bed(options_for(s));
    EXPECT_STRNE(scenario_name(s), "?");
    bed.kernel().run_process("t", [&](sim::Process& p) {
      EXPECT_TRUE(bed.mount(p).is_ok());
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  }
}

TEST(Testbed, EndToEndIntegrityWanCached) {
  Testbed bed(options_for(Scenario::kWanCached));
  auto content = blob::make_synthetic(7, 300_KiB, 0.2, 2.0);
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    ASSERT_TRUE(session.put(p, "/work/data.bin", content).is_ok());
    ASSERT_TRUE(session.flush(p).is_ok());
    // Read-your-writes through all layers.
    auto back = session.read_all(p, "/work/data.bin");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
    // Dirty state lives in the proxy cache until the middleware signal.
    EXPECT_GT(bed.block_cache()->dirty_blocks(), 0u);
    ASSERT_TRUE(bed.signal_write_back(p).is_ok());
    EXPECT_EQ(bed.block_cache()->dirty_blocks(), 0u);
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  auto server_copy = bed.image_fs().get_file("/exports/images/work/data.bin");
  ASSERT_TRUE(server_copy.is_ok());
  EXPECT_EQ(blob::content_hash(**server_copy), blob::content_hash(*content));
}

TEST(Testbed, WarmProxyCacheBeatsColdWan) {
  Testbed bed(options_for(Scenario::kWanCached));
  ASSERT_TRUE(
      bed.image_fs().put_file("/exports/images/big", blob::make_synthetic(1, 2_MiB, 0, 2.0)).is_ok());
  double cold_s = 0, warm_s = 0;
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto& session = bed.image_session();
    SimTime t0 = p.now();
    ASSERT_OK(session.read_all(p, "/big"));
    cold_s = to_seconds(p.now() - t0);
    bed.nfs_client()->drop_caches();  // new session, proxy cache stays warm
    t0 = p.now();
    ASSERT_OK(session.read_all(p, "/big"));
    warm_s = to_seconds(p.now() - t0);
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_LT(warm_s * 3, cold_s);
}

TEST(Testbed, WanCachedOutperformsWanOnRereadWorkload) {
  // The §4.2 claim in miniature: re-use across iterations favours WAN+C.
  double wan_s = 0, wanc_s = 0;
  for (bool cached : {false, true}) {
    Testbed bed(options_for(cached ? Scenario::kWanCached : Scenario::kWan));
    auto content = blob::make_synthetic(2, 1_MiB, 0, 2.0);
    ASSERT_TRUE(bed.image_fs().put_file("/exports/images/app", content).is_ok());
    double* out = cached ? &wanc_s : &wan_s;
    bed.kernel().run_process("t", [&](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p).is_ok());
      SimTime t0 = p.now();
      for (int iter = 0; iter < 4; ++iter) {
        ASSERT_OK(bed.image_session().read_all(p, "/app"));
        // Interactive session boundary: kernel cache dropped (new process
        // images), proxy disk cache persists.
        bed.nfs_client()->drop_caches();
      }
      *out = to_seconds(p.now() - t0);
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  }
  EXPECT_LT(wanc_s, wan_s * 0.55);  // paper: >30% better; here re-reads dominate
}

TEST(Testbed, CloneViaGvfsBeatsPlainNfs) {
  double gvfs_s = 0, plain_s = 0;
  for (bool gvfs_mode : {true, false}) {
    Testbed bed(options_for(gvfs_mode ? Scenario::kWanCached : Scenario::kPlainNfsWan));
    auto paths = bed.install_image(small_image());
    ASSERT_TRUE(paths.is_ok());
    double* out = gvfs_mode ? &gvfs_s : &plain_s;
    bed.kernel().run_process("t", [&](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p).is_ok());
      vm::CloneConfig cfg;
      cfg.image = *paths;
      cfg.clone_dir = "/clones/c0";
      SimTime t0 = p.now();
      auto result = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
      ASSERT_TRUE(result.is_ok()) << result.status().to_string();
      *out = to_seconds(p.now() - t0);
      EXPECT_TRUE(result->vm->resumed());
      // Integrity: the cloned memory state matches the golden image.
      EXPECT_EQ(blob::content_hash(**bed.local_session().fs().get_file("/clones/c0/vm1.vmss")),
                blob::content_hash(*vm::memory_state_blob(small_image())));
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  }
  // The paper's headline: enhanced GVFS cloning vastly outperforms plain NFS.
  EXPECT_LT(gvfs_s * 3, plain_s);
}

TEST(Testbed, SecondCloneFromWarmCachesMuchFaster) {
  Testbed bed(options_for(Scenario::kWanCached));
  auto paths = bed.install_image(small_image());
  ASSERT_TRUE(paths.is_ok());
  double first_s = 0, second_s = 0;
  double first_mem_s = 0, second_mem_s = 0;
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    for (int i = 0; i < 2; ++i) {
      vm::CloneConfig cfg;
      cfg.image = *paths;
      cfg.clone_dir = "/clones/c" + std::to_string(i);
      cfg.clone_name = "clone" + std::to_string(i);
      SimTime t0 = p.now();
      auto result = vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg);
      ASSERT_TRUE(result.is_ok());
      (i == 0 ? first_s : second_s) = to_seconds(p.now() - t0);
      (i == 0 ? first_mem_s : second_mem_s) = result->timing.copy_mem_s;
      // Fresh kernel caches per cloning session; proxy caches stay warm.
      bed.nfs_client()->drop_caches();
    }
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  // At paper scale (320 MB) the memory-state transfer dominates; at test
  // scale the fixed configure/resume floor does, so assert on the transfer
  // phase (warm caches >= 2x) plus overall improvement.
  EXPECT_LT(second_mem_s * 2, first_mem_s);
  EXPECT_LT(second_s, first_s);
}

TEST(Testbed, LanSecondLevelCacheSpeedsFirstClone) {
  // WAN-S3 in miniature: image pre-cached on the LAN server.
  auto opt = options_for(Scenario::kWanCached);
  opt.second_level_lan_cache = true;
  Testbed bed(opt);
  auto paths = bed.install_image(small_image());
  ASSERT_TRUE(paths.is_ok());

  auto opt2 = options_for(Scenario::kWanCached);
  Testbed direct(opt2);
  auto paths2 = direct.install_image(small_image());
  ASSERT_TRUE(paths2.is_ok());

  double with_lan_s = 0, without_lan_s = 0;
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.prewarm_lan_cache(p, *paths).is_ok());
    ASSERT_TRUE(bed.mount(p).is_ok());
    vm::CloneConfig cfg;
    cfg.image = *paths;
    cfg.clone_dir = "/clones/s3";
    SimTime t0 = p.now();
    ASSERT_TRUE(vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg).is_ok());
    with_lan_s = to_seconds(p.now() - t0);
  });
  direct.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(direct.mount(p).is_ok());
    vm::CloneConfig cfg;
    cfg.image = *paths2;
    cfg.clone_dir = "/clones/s2";
    SimTime t0 = p.now();
    ASSERT_TRUE(
        vm::VmCloner::clone(p, direct.image_session(), direct.local_session(), cfg).is_ok());
    without_lan_s = to_seconds(p.now() - t0);
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  EXPECT_EQ(direct.kernel().failed_processes(), 0) << direct.kernel().failed_names_joined();
  EXPECT_LT(with_lan_s, without_lan_s);
}

TEST(Testbed, ParallelClonesScale) {
  // Table 1 in miniature: 4 distinct images cloned sequentially vs in
  // parallel on 4 nodes sharing the WAN + image server.
  double sequential_s = 0, parallel_s = 0;
  {
    auto opt = options_for(Scenario::kWanCached);
    Testbed bed(opt);
    std::vector<vm::VmImagePaths> images;
    for (int i = 0; i < 4; ++i) {
      images.push_back(*bed.install_image(small_image("vm" + std::to_string(i), 100 + i)));
    }
    bed.kernel().run_process("t", [&](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p).is_ok());
      SimTime t0 = p.now();
      for (int i = 0; i < 4; ++i) {
        vm::CloneConfig cfg;
        cfg.image = images[static_cast<size_t>(i)];
        cfg.clone_dir = "/clones/s" + std::to_string(i);
        ASSERT_TRUE(
            vm::VmCloner::clone(p, bed.image_session(), bed.local_session(), cfg).is_ok());
      }
      sequential_s = to_seconds(p.now() - t0);
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  }
  {
    auto opt = options_for(Scenario::kWanCached);
    opt.compute_nodes = 4;
    Testbed bed(opt);
    std::vector<vm::VmImagePaths> images;
    for (int i = 0; i < 4; ++i) {
      images.push_back(*bed.install_image(small_image("vm" + std::to_string(i), 100 + i)));
    }
    SimTime end = 0;
    for (int i = 0; i < 4; ++i) {
      bed.kernel().spawn("clone" + std::to_string(i), [&, i](sim::Process& p) {
        ASSERT_TRUE(bed.mount(p, i).is_ok());
        vm::CloneConfig cfg;
        cfg.image = images[static_cast<size_t>(i)];
        cfg.clone_dir = "/clones/p" + std::to_string(i);
        ASSERT_TRUE(
            vm::VmCloner::clone(p, bed.image_session(i), bed.local_session(i), cfg).is_ok());
        end = std::max(end, p.now());
      });
    }
    bed.kernel().run();
    parallel_s = to_seconds(end);
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  }
  // Flows are latency/flow-limited, not pipe-limited: parallel wins big.
  EXPECT_LT(parallel_s * 2, sequential_s);
}

TEST(Testbed, ZeroFilterStatisticShape) {
  // §3.2.2: reading a mostly-zero memory state via a zero-map-only meta file
  // filters the overwhelming majority of client reads at the proxy.
  auto opt = options_for(Scenario::kWanCached);
  opt.enable_meta = true;
  Testbed bed(opt);
  auto spec = small_image();
  auto paths = bed.install_image(spec);
  ASSERT_TRUE(paths.is_ok());
  // Replace the default meta (file-channel) with a zero-map-only one to
  // exercise the block path, as the paper's statistic does.
  vm::VmImagePaths server_paths{bed.image_dir(), spec.name};
  ASSERT_TRUE(vm::generate_vmss_metadata(bed.image_fs(), server_paths, 8_KiB,
                                         /*with_file_channel=*/false).is_ok());
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    auto back = bed.image_session().read_all(p, "/vm1.vmss");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(blob::content_hash(**back),
              blob::content_hash(*vm::memory_state_blob(spec)));
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  u64 filtered = bed.client_proxy()->zero_filtered_reads();
  // ~92% of pages are zero; at 32 KiB requests (8 pages each) the fully-zero
  // fraction is ~0.92^8 ~ 0.51. Expect a large but not total filter rate.
  EXPECT_GT(filtered, 0u);
}

TEST(Testbed, SuspendWritesBackThroughFileChannel) {
  // Persistent-VM scenario (§3.2.3 first case): modify, suspend, and the
  // middleware write-back lands the new state on the image server.
  Testbed bed(options_for(Scenario::kWanCached));
  auto spec = small_image();
  auto paths = bed.install_image(spec);
  ASSERT_TRUE(paths.is_ok());
  auto new_state = blob::make_synthetic(0xbeef, spec.memory_bytes, 0.85, 3.0);
  bed.kernel().run_process("t", [&](sim::Process& p) {
    ASSERT_TRUE(bed.mount(p).is_ok());
    VmSetupOptions vopt;
    vopt.spec = spec;
    vopt.resume = true;
    auto setup = prepare_vm(p, bed, vopt);
    ASSERT_TRUE(setup.is_ok());
    ASSERT_TRUE(setup->vm->suspend(p, new_state).is_ok());
    ASSERT_TRUE(bed.signal_write_back(p).is_ok());
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  auto server_state = bed.image_fs().get_file(bed.image_dir() + paths->vmss());
  ASSERT_TRUE(server_state.is_ok());
  EXPECT_EQ(blob::content_hash(**server_state), blob::content_hash(*new_state));
}

TEST(Testbed, LocalScenarioRunsWorkloads) {
  Testbed bed(options_for(Scenario::kLocal));
  bed.kernel().run_process("t", [&](sim::Process& p) {
    VmSetupOptions vopt;
    vopt.spec = small_image();
    auto setup = prepare_vm(p, bed, vopt);
    ASSERT_TRUE(setup.is_ok());
    workload::SyntheticConfig wcfg;
    wcfg.file_bytes = 4_MiB;
    wcfg.ops = 64;
    workload::SyntheticWorkload wl(wcfg);
    ASSERT_TRUE(wl.install(*setup->guest).is_ok());
    auto report = wl.run(p, *setup->guest);
    ASSERT_TRUE(report.is_ok());
    EXPECT_GT(report->total_s(), 0.0);
  });
  EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
}

TEST(Testbed, ScenarioOrderingForColdStreamRead) {
  // Cold sequential read of one file: Local < LAN < WAN-family.
  std::map<Scenario, double> times;
  for (Scenario s : {Scenario::kLocal, Scenario::kLan, Scenario::kWan,
                     Scenario::kPlainNfsWan}) {
    Testbed bed(options_for(s));
    auto content = blob::make_synthetic(3, 2_MiB, 0, 2.0);
    ASSERT_TRUE(bed.image_fs().put_file(bed.image_dir() + "/f", content).is_ok());
    bed.kernel().run_process("t", [&](sim::Process& p) {
      ASSERT_TRUE(bed.mount(p).is_ok());
      SimTime t0 = p.now();
      auto back = bed.image_session().read_all(p, "/f");
      ASSERT_TRUE(back.is_ok()) << scenario_name(s) << ": " << back.status().to_string();
      EXPECT_EQ(blob::content_hash(**back), blob::content_hash(*content));
      times[s] = to_seconds(p.now() - t0);
    });
    EXPECT_EQ(bed.kernel().failed_processes(), 0) << bed.kernel().failed_names_joined();
  }
  EXPECT_LT(times[Scenario::kLocal], times[Scenario::kLan]);
  EXPECT_LT(times[Scenario::kLan], times[Scenario::kWan]);
  // Plain NFS (8 KiB blocks, no pipelining) is the slowest of all.
  EXPECT_GT(times[Scenario::kPlainNfsWan], times[Scenario::kWan]);
}

}  // namespace
}  // namespace gvfs::core
