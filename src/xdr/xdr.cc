#include "xdr/xdr.h"

#include <algorithm>

namespace gvfs::xdr {

// ------------------------------------------------------------- XdrEncoder --

void XdrEncoder::put_u32(u32 v) {
  dirty_();
  owned_.push_back(static_cast<u8>(v >> 24));
  owned_.push_back(static_cast<u8>(v >> 16));
  owned_.push_back(static_cast<u8>(v >> 8));
  owned_.push_back(static_cast<u8>(v));
  size_ += 4;
}

void XdrEncoder::put_u64(u64 v) {
  put_u32(static_cast<u32>(v >> 32));
  put_u32(static_cast<u32>(v));
}

void XdrEncoder::pad_() {
  while (size_ % 4 != 0) {
    owned_.push_back(0);
    ++size_;
  }
}

void XdrEncoder::put_opaque(std::span<const u8> data) {
  put_u32(static_cast<u32>(data.size()));
  put_opaque_fixed(data);
}

void XdrEncoder::put_opaque_fixed(std::span<const u8> data) {
  dirty_();
  owned_.insert(owned_.end(), data.begin(), data.end());
  size_ += data.size();
  pad_();
}

void XdrEncoder::put_string(std::string_view s) {
  put_opaque(std::span<const u8>(reinterpret_cast<const u8*>(s.data()), s.size()));
}

void XdrEncoder::put_opaque_view(std::span<const u8> data,
                                 std::shared_ptr<const void> owner) {
  put_u32(static_cast<u32>(data.size()));
  put_opaque_fixed_view(data, std::move(owner));
}

void XdrEncoder::put_opaque_fixed_view(std::span<const u8> data,
                                       std::shared_ptr<const void> owner) {
  dirty_();
  borrows_.push_back(Borrow{.owned_prefix = owned_.size(),
                            .len = data.size(),
                            .view = data,
                            .owner = std::move(owner),
                            .blob = nullptr});
  size_ += data.size();
  pad_();
}

void XdrEncoder::put_blob(blob::BlobRef b, u64 offset, u64 len) {
  dirty_();
  put_u32(static_cast<u32>(len));
  borrows_.push_back(Borrow{.owned_prefix = owned_.size(),
                            .len = len,
                            .view = {},
                            .owner = nullptr,
                            .blob = std::move(b),
                            .blob_off = offset});
  size_ += len;
  pad_();
}

void XdrEncoder::gather_(std::span<u8> out) const {
  std::size_t owned_pos = 0;  // consumed prefix of owned_
  std::size_t out_pos = 0;
  for (const Borrow& b : borrows_) {
    std::size_t n = b.owned_prefix - owned_pos;
    std::memcpy(out.data() + out_pos, owned_.data() + owned_pos, n);
    owned_pos += n;
    out_pos += n;
    if (b.blob) {
      b.blob->read(b.blob_off, out.subspan(out_pos, b.len));
    } else if (b.len > 0) {
      std::memcpy(out.data() + out_pos, b.view.data(), b.len);
    }
    out_pos += b.len;
  }
  std::memcpy(out.data() + out_pos, owned_.data() + owned_pos,
              owned_.size() - owned_pos);
}

const std::vector<u8>& XdrEncoder::flat_() const {
  if (!flat_valid_) {
    flat_cache_.resize(size_);
    gather_(flat_cache_);
    flat_valid_ = true;
  }
  return flat_cache_;
}

std::span<const u8> XdrEncoder::bytes() const {
  if (borrows_.empty()) return owned_;
  return flat_();
}

std::vector<u8> XdrEncoder::take() {
  std::vector<u8> out;
  if (borrows_.empty()) {
    out = std::move(owned_);
  } else {
    flat_();
    out = std::move(flat_cache_);
  }
  owned_.clear();
  borrows_.clear();
  size_ = 0;
  flat_valid_ = false;
  flat_cache_.clear();
  return out;
}

void XdrEncoder::copy_to(std::span<u8> out) const { gather_(out); }

// ------------------------------------------------------------- XdrDecoder --

bool XdrDecoder::need_(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

void XdrDecoder::skip_pad_(std::size_t n) {
  std::size_t padded = (n + 3) & ~std::size_t{3};
  std::size_t pad = padded - n;
  if (need_(pad)) pos_ += pad;
}

u32 XdrDecoder::get_u32() {
  if (!need_(4)) return 0;
  u32 v = (static_cast<u32>(data_[pos_]) << 24) |
          (static_cast<u32>(data_[pos_ + 1]) << 16) |
          (static_cast<u32>(data_[pos_ + 2]) << 8) |
          static_cast<u32>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

u64 XdrDecoder::get_u64() {
  u64 hi = get_u32();
  u64 lo = get_u32();
  return (hi << 32) | lo;
}

std::span<const u8> XdrDecoder::get_opaque_view() {
  u32 n = get_u32();
  return get_opaque_fixed_view(n);
}

std::span<const u8> XdrDecoder::get_opaque_fixed_view(std::size_t n) {
  if (!need_(n)) return {};
  std::span<const u8> out = data_.subspan(pos_, n);
  pos_ += n;
  skip_pad_(n);
  return out;
}

std::vector<u8> XdrDecoder::get_opaque() {
  u32 n = get_u32();
  return get_opaque_fixed(n);
}

std::vector<u8> XdrDecoder::get_opaque_fixed(std::size_t n) {
  std::span<const u8> v = get_opaque_fixed_view(n);
  if (!ok_) return {};
  return std::vector<u8>(v.begin(), v.end());
}

std::string XdrDecoder::get_string() {
  std::span<const u8> v = get_opaque_view();
  if (!ok_) return {};
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

blob::BlobRef XdrDecoder::get_opaque_blob() {
  std::span<const u8> v = get_opaque_view();
  if (!ok_) return nullptr;
  bool all_zero = std::all_of(v.begin(), v.end(), [](u8 b) { return b == 0; });
  if (all_zero) return blob::zero_ref(v.size());
  if (backing_) return blob::make_view(backing_, v);
  return blob::make_bytes(v);
}

}  // namespace gvfs::xdr
