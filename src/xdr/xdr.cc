#include "xdr/xdr.h"

namespace gvfs::xdr {

// ------------------------------------------------------------- XdrEncoder --

void XdrEncoder::put_u32(u32 v) {
  buf_.push_back(static_cast<u8>(v >> 24));
  buf_.push_back(static_cast<u8>(v >> 16));
  buf_.push_back(static_cast<u8>(v >> 8));
  buf_.push_back(static_cast<u8>(v));
}

void XdrEncoder::put_u64(u64 v) {
  put_u32(static_cast<u32>(v >> 32));
  put_u32(static_cast<u32>(v));
}

void XdrEncoder::pad_() {
  while (buf_.size() % 4 != 0) buf_.push_back(0);
}

void XdrEncoder::put_opaque(std::span<const u8> data) {
  put_u32(static_cast<u32>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
  pad_();
}

void XdrEncoder::put_opaque_fixed(std::span<const u8> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  pad_();
}

void XdrEncoder::put_string(std::string_view s) {
  put_opaque(std::span<const u8>(reinterpret_cast<const u8*>(s.data()), s.size()));
}

// ------------------------------------------------------------- XdrDecoder --

bool XdrDecoder::need_(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

void XdrDecoder::skip_pad_(std::size_t n) {
  std::size_t padded = (n + 3) & ~std::size_t{3};
  std::size_t pad = padded - n;
  if (need_(pad)) pos_ += pad;
}

u32 XdrDecoder::get_u32() {
  if (!need_(4)) return 0;
  u32 v = (static_cast<u32>(data_[pos_]) << 24) |
          (static_cast<u32>(data_[pos_ + 1]) << 16) |
          (static_cast<u32>(data_[pos_ + 2]) << 8) |
          static_cast<u32>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

u64 XdrDecoder::get_u64() {
  u64 hi = get_u32();
  u64 lo = get_u32();
  return (hi << 32) | lo;
}

std::vector<u8> XdrDecoder::get_opaque() {
  u32 n = get_u32();
  return get_opaque_fixed(n);
}

std::vector<u8> XdrDecoder::get_opaque_fixed(std::size_t n) {
  if (!need_(n)) return {};
  std::vector<u8> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                      data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  skip_pad_(n);
  return out;
}

std::string XdrDecoder::get_string() {
  std::vector<u8> raw = get_opaque();
  return std::string(raw.begin(), raw.end());
}

}  // namespace gvfs::xdr
