// XDR (RFC 1014) encoding: big-endian, 4-byte aligned primitives — the wire
// format beneath ONC RPC and NFS. The encoder produces real octets (unit
// tests round-trip every protocol message through it); the simulation
// transport uses the analytic wire_size() of each message, which tests
// assert equals the encoded size.
//
// The encoder is scatter-gather: primitives and small fields accumulate in
// an owned buffer, while bulk payloads (READ/WRITE block data) are borrowed
// by reference — a span plus an ownership handle, or a BlobRef — and only
// materialized if someone asks for the flat wire image. The decoder can
// likewise hand out views and blob references into its backing buffer, so a
// 32 KiB block payload crosses the codec in both directions without being
// copied.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "blob/blob.h"
#include "common/status.h"
#include "common/types.h"

namespace gvfs::xdr {

class XdrEncoder {
 public:
  void put_u32(u32 v);
  void put_i32(i32 v) { put_u32(static_cast<u32>(v)); }
  void put_u64(u64 v);
  void put_bool(bool v) { put_u32(v ? 1 : 0); }
  // Variable-length opaque: length word + data + pad to 4. Copies.
  void put_opaque(std::span<const u8> data);
  // Fixed-length opaque: data + pad to 4 (length known from protocol). Copies.
  void put_opaque_fixed(std::span<const u8> data);
  void put_string(std::string_view s);

  // Zero-copy variants: borrow the caller's bytes instead of copying them.
  // `owner`, when non-null, keeps the bytes alive for the encoder's lifetime;
  // when null the caller guarantees the span outlives the encoder.
  void put_opaque_view(std::span<const u8> data,
                       std::shared_ptr<const void> owner = nullptr);
  void put_opaque_fixed_view(std::span<const u8> data,
                             std::shared_ptr<const void> owner = nullptr);
  // Variable-length opaque whose payload is blob bytes [offset, offset+len).
  // The blob is not read unless the flat wire image is materialized.
  void put_blob(blob::BlobRef b, u64 offset, u64 len);
  void put_blob(blob::BlobRef b) {
    u64 n = b->size();
    put_blob(std::move(b), 0, n);
  }

  // Logical encoded size in bytes (includes borrowed segments).
  [[nodiscard]] std::size_t size() const { return size_; }
  // Number of borrowed (not yet materialized) segments.
  [[nodiscard]] std::size_t segment_count() const { return borrows_.size(); }

  // Flat wire image. When nothing was borrowed these are free; otherwise the
  // first call gathers borrowed segments into an internal buffer (cached
  // until the next mutation).
  [[nodiscard]] std::span<const u8> bytes() const;
  std::vector<u8> take();
  // Gather the wire image into caller-provided storage (size() bytes).
  void copy_to(std::span<u8> out) const;

 private:
  struct Borrow {
    std::size_t owned_prefix;  // bytes of owned_ emitted before this segment
    u64 len;
    std::span<const u8> view;            // used when blob == nullptr
    std::shared_ptr<const void> owner;   // keeps `view` alive (may be null)
    blob::BlobRef blob;                  // when set: blob bytes [off, off+len)
    u64 blob_off = 0;
  };

  void pad_();
  void dirty_() { flat_valid_ = false; }
  void gather_(std::span<u8> out) const;
  const std::vector<u8>& flat_() const;

  std::vector<u8> owned_;
  std::vector<Borrow> borrows_;
  std::size_t size_ = 0;
  mutable std::vector<u8> flat_cache_;
  mutable bool flat_valid_ = false;
};

// Decoder with a sticky fail bit: getters return a default on failure and
// the caller checks status() once at the end of the message.
//
// Constructed from a bare span it behaves as before (views returned by the
// *_view getters are valid only while the buffer lives). Constructed with a
// backing handle, get_opaque_blob() can return zero-copy ViewBlobs that
// share ownership of the receive buffer.
class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const u8> data) : data_(data) {}
  XdrDecoder(std::span<const u8> data, std::shared_ptr<const void> backing)
      : data_(data), backing_(std::move(backing)) {}
  explicit XdrDecoder(std::shared_ptr<const std::vector<u8>> backing)
      : data_(*backing), backing_(std::move(backing)) {}

  u32 get_u32();
  i32 get_i32() { return static_cast<i32>(get_u32()); }
  u64 get_u64();
  bool get_bool() { return get_u32() != 0; }
  std::vector<u8> get_opaque();                  // variable-length
  std::vector<u8> get_opaque_fixed(std::size_t n);
  std::string get_string();

  // Zero-copy getters: views into the decode buffer (no copy, no alloc).
  std::span<const u8> get_opaque_view();
  std::span<const u8> get_opaque_fixed_view(std::size_t n);
  // Variable-length opaque as a blob. All-zero payloads collapse to the
  // shared zero blob; otherwise, with a backing handle, the payload is
  // wrapped as a ViewBlob (zero copy), else copied into a BytesBlob.
  blob::BlobRef get_opaque_blob();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] Status status() const {
    return ok_ ? Status::ok() : err(ErrCode::kBadXdr, "short or malformed XDR");
  }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool fully_consumed() const { return ok_ && pos_ == data_.size(); }

 private:
  bool need_(std::size_t n);
  void skip_pad_(std::size_t n);

  std::span<const u8> data_;
  std::shared_ptr<const void> backing_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Analytic size helpers (bytes on the wire).
constexpr u64 size_u32() { return 4; }
constexpr u64 size_u64() { return 8; }
constexpr u64 size_bool() { return 4; }
constexpr u64 pad4(u64 n) { return (n + 3) & ~u64{3}; }
constexpr u64 size_opaque(u64 n) { return 4 + pad4(n); }
constexpr u64 size_opaque_fixed(u64 n) { return pad4(n); }
constexpr u64 size_string(u64 n) { return 4 + pad4(n); }

}  // namespace gvfs::xdr
