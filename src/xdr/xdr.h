// XDR (RFC 1014) encoding: big-endian, 4-byte aligned primitives — the wire
// format beneath ONC RPC and NFS. The encoder produces real octets (unit
// tests round-trip every protocol message through it); the simulation
// transport uses the analytic wire_size() of each message, which tests
// assert equals the encoded size.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace gvfs::xdr {

class XdrEncoder {
 public:
  void put_u32(u32 v);
  void put_i32(i32 v) { put_u32(static_cast<u32>(v)); }
  void put_u64(u64 v);
  void put_bool(bool v) { put_u32(v ? 1 : 0); }
  // Variable-length opaque: length word + data + pad to 4.
  void put_opaque(std::span<const u8> data);
  // Fixed-length opaque: data + pad to 4 (length known from protocol).
  void put_opaque_fixed(std::span<const u8> data);
  void put_string(std::string_view s);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const u8> bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  void pad_();
  std::vector<u8> buf_;
};

// Decoder with a sticky fail bit: getters return a default on failure and
// the caller checks status() once at the end of the message.
class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const u8> data) : data_(data) {}

  u32 get_u32();
  i32 get_i32() { return static_cast<i32>(get_u32()); }
  u64 get_u64();
  bool get_bool() { return get_u32() != 0; }
  std::vector<u8> get_opaque();                  // variable-length
  std::vector<u8> get_opaque_fixed(std::size_t n);
  std::string get_string();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] Status status() const {
    return ok_ ? Status::ok() : err(ErrCode::kBadXdr, "short or malformed XDR");
  }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool fully_consumed() const { return ok_ && pos_ == data_.size(); }

 private:
  bool need_(std::size_t n);
  void skip_pad_(std::size_t n);

  std::span<const u8> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Analytic size helpers (bytes on the wire).
constexpr u64 size_u32() { return 4; }
constexpr u64 size_u64() { return 8; }
constexpr u64 size_bool() { return 4; }
constexpr u64 pad4(u64 n) { return (n + 3) & ~u64{3}; }
constexpr u64 size_opaque(u64 n) { return 4 + pad4(n); }
constexpr u64 size_opaque_fixed(u64 n) { return pad4(n); }
constexpr u64 size_string(u64 n) { return 4 + pad4(n); }

}  // namespace gvfs::xdr
