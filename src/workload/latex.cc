#include "workload/latex.h"

namespace gvfs::workload {

Status LatexWorkload::install(vm::GuestFs& fs) {
  PopulationSpec support;
  support.prefix = "texmf";
  support.files = cfg_.support_files;
  support.total_bytes = cfg_.support_bytes;
  support.min_file = 2_KiB;
  support.seed = cfg_.seed;
  support.inode_region = 180_MiB;
  support_ = std::make_unique<FilePopulation>(fs, support);
  GVFS_RETURN_IF_ERROR(support_->install());

  PopulationSpec sources;
  sources.prefix = "doc";
  sources.files = cfg_.source_files;
  sources.total_bytes = cfg_.source_bytes;
  sources.min_file = 4_KiB;
  sources.seed = cfg_.seed ^ 0x5;
  sources.inode_region = 186_MiB;
  sources_ = std::make_unique<FilePopulation>(fs, sources);
  GVFS_RETURN_IF_ERROR(sources_->install());

  GVFS_RETURN_IF_ERROR(fs.add_file("paper.aux", 0, 2_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("paper.dvi", 0, 4_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("paper.pdf", 0, 6_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("paper.bbl", 0, 512_KiB));
  return Status::ok();
}

Status LatexWorkload::iteration_(sim::Process& p, vm::GuestFs& fs, u32 iter) {
  u64 seed = cfg_.seed + iter * 1009;

  // patch: rewrite one source file.
  p.delay(from_seconds(cfg_.patch_compute_s));
  u32 victim = iter % sources_->count();
  GVFS_RETURN_IF_ERROR(
      sources_->write_file(p, victim, sources_->file_size(victim)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));

  // latex: read binaries/styles/fonts + all sources, write aux/log/dvi.
  GVFS_RETURN_IF_ERROR(support_->read_all(p));
  GVFS_RETURN_IF_ERROR(sources_->read_all(p));
  p.delay(from_seconds(cfg_.latex_compute_s));
  GVFS_RETURN_IF_ERROR(fs.write(p, "paper.aux", 0, payload(seed, cfg_.aux_bytes)));
  GVFS_RETURN_IF_ERROR(fs.write(p, "paper.dvi", 0, payload(seed ^ 1, cfg_.dvi_bytes)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));

  // bibtex: read aux + a few database files, write bbl.
  GVFS_RETURN_IF_ERROR(fs.read(p, "paper.aux", 0, cfg_.aux_bytes).status());
  p.delay(from_seconds(cfg_.bibtex_compute_s));
  GVFS_RETURN_IF_ERROR(fs.write(p, "paper.bbl", 0, payload(seed ^ 2, 96_KiB)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));

  // dvipdf: read dvi + fonts (already cached), write the PDF.
  GVFS_RETURN_IF_ERROR(fs.read(p, "paper.dvi", 0, cfg_.dvi_bytes).status());
  p.delay(from_seconds(cfg_.dvipdf_compute_s));
  GVFS_RETURN_IF_ERROR(fs.write(p, "paper.pdf", 0, payload(seed ^ 3, cfg_.pdf_bytes)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  return Status::ok();
}

Result<WorkloadReport> LatexWorkload::run(sim::Process& p, vm::GuestFs& fs) {
  if (!support_) return err(ErrCode::kInval, "install() not run");
  WorkloadReport report;
  report.workload = "LaTeX";
  for (u32 i = 0; i < cfg_.iterations; ++i) {
    SimTime t0 = p.now();
    GVFS_RETURN_IF_ERROR(iteration_(p, fs, i));
    report.phases.push_back({"iter" + std::to_string(i + 1), to_seconds(p.now() - t0)});
  }
  return report;
}

}  // namespace gvfs::workload
