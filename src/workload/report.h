// Phase-structured timing reports produced by workload models — the rows the
// paper's Figures 3-5 plot.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace gvfs::workload {

struct PhaseTiming {
  std::string name;
  double seconds = 0;
};

struct WorkloadReport {
  std::string workload;
  std::vector<PhaseTiming> phases;

  [[nodiscard]] double total_s() const {
    double t = 0;
    for (const PhaseTiming& ph : phases) t += ph.seconds;
    return t;
  }
  [[nodiscard]] double phase_s(const std::string& name) const {
    for (const PhaseTiming& ph : phases) {
      if (ph.name == name) return ph.seconds;
    }
    return 0;
  }
};

}  // namespace gvfs::workload
