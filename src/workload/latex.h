// LaTeX interactive-session model (§4.2.1): 20 iterations of
// patch → latex → bibtex → dvipdf over a 190-page document. The first
// iteration reads the whole binary + style/font population cold; later
// iterations re-read mostly from caches and are dominated by the patched
// inputs and written outputs — the response-time pattern Figure 4 plots.
#pragma once

#include <memory>

#include "common/status.h"
#include "sim/kernel.h"
#include "vm/guest_fs.h"
#include "workload/population.h"
#include "workload/report.h"

namespace gvfs::workload {

struct LatexConfig {
  u32 iterations = 20;
  // Binaries, class/style files, fonts: read (cold) by the first iteration.
  u32 support_files = 300;
  u64 support_bytes = 13_MiB;
  // Document sources: patched and re-read every iteration.
  u32 source_files = 24;
  u64 source_bytes = 1500_KiB;
  // Outputs written per iteration (aux/log/dvi/pdf).
  u64 dvi_bytes = 900_KiB;
  u64 pdf_bytes = 1300_KiB;
  u64 aux_bytes = 200_KiB;
  double latex_compute_s = 4.2;
  double bibtex_compute_s = 0.6;
  double dvipdf_compute_s = 4.8;
  double patch_compute_s = 0.1;
  u64 seed = 0x1a7e;
};

class LatexWorkload {
 public:
  explicit LatexWorkload(LatexConfig cfg = {}) : cfg_(cfg) {}

  Status install(vm::GuestFs& fs);

  // Runs all iterations; the report has one phase per iteration
  // ("iter1" ... "iterN") so harnesses can split first vs. mean-of-rest.
  Result<WorkloadReport> run(sim::Process& p, vm::GuestFs& fs);

 private:
  Status iteration_(sim::Process& p, vm::GuestFs& fs, u32 iter);

  LatexConfig cfg_;
  std::unique_ptr<FilePopulation> support_;
  std::unique_ptr<FilePopulation> sources_;
};

}  // namespace gvfs::workload
