#include "workload/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "workload/population.h"

namespace gvfs::workload {

Result<std::vector<TraceOp>> TraceWorkload::parse(const std::string& text) {
  std::vector<TraceOp> ops;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;
    TraceOp op;
    auto bad = [&](const char* what) {
      return err(ErrCode::kInval,
                 "trace line " + std::to_string(line_no) + ": " + what);
    };
    if (verb == "open") {
      op.kind = TraceOp::Kind::kOpen;
      if (!(ls >> op.file)) return bad("open needs a file");
    } else if (verb == "read" || verb == "write") {
      op.kind = verb == "read" ? TraceOp::Kind::kRead : TraceOp::Kind::kWrite;
      if (!(ls >> op.file >> op.offset >> op.length)) {
        return bad("read/write need file offset length");
      }
    } else if (verb == "compute") {
      op.kind = TraceOp::Kind::kCompute;
      if (!(ls >> op.seconds) || op.seconds < 0) return bad("compute needs seconds");
    } else if (verb == "sync") {
      op.kind = TraceOp::Kind::kSync;
    } else {
      return bad("unknown verb");
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string TraceWorkload::serialize(const std::vector<TraceOp>& ops) {
  std::ostringstream out;
  for (const TraceOp& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kOpen:
        out << "open " << op.file << "\n";
        break;
      case TraceOp::Kind::kRead:
        out << "read " << op.file << " " << op.offset << " " << op.length << "\n";
        break;
      case TraceOp::Kind::kWrite:
        out << "write " << op.file << " " << op.offset << " " << op.length << "\n";
        break;
      case TraceOp::Kind::kCompute:
        out << "compute " << op.seconds << "\n";
        break;
      case TraceOp::Kind::kSync:
        out << "sync\n";
        break;
    }
  }
  return out.str();
}

Status TraceWorkload::install(vm::GuestFs& fs) {
  // Size each file to its largest referenced extent; reads treat the file as
  // pre-existing image content, writes may extend within the reserve.
  std::map<std::string, u64> extents;
  for (const TraceOp& op : ops_) {
    if (op.kind == TraceOp::Kind::kRead || op.kind == TraceOp::Kind::kWrite ||
        op.kind == TraceOp::Kind::kOpen) {
      u64& e = extents[op.file];
      e = std::max(e, op.offset + op.length);
    }
  }
  for (const auto& [name, extent] : extents) {
    if (fs.exists(name)) continue;
    u64 size = std::max<u64>(extent, 4_KiB);
    GVFS_RETURN_IF_ERROR(fs.add_file(name, size, size + 64_KiB));
  }
  return Status::ok();
}

Result<WorkloadReport> TraceWorkload::run(sim::Process& p, vm::GuestFs& fs) {
  WorkloadReport report;
  report.workload = "trace-replay";
  SimTime t0 = p.now();
  u64 idx = 0;
  for (const TraceOp& op : ops_) {
    ++idx;
    switch (op.kind) {
      case TraceOp::Kind::kOpen:
        // The open itself is guest metadata; charge a small exit.
        GVFS_RETURN_IF_ERROR(fs.read(p, op.file, 0, 1).status());
        break;
      case TraceOp::Kind::kRead: {
        GVFS_ASSIGN_OR_RETURN(blob::BlobRef data,
                              fs.read(p, op.file, op.offset, op.length));
        bytes_read_.inc(data->size());
        break;
      }
      case TraceOp::Kind::kWrite:
        GVFS_RETURN_IF_ERROR(
            fs.write(p, op.file, op.offset, payload(seed_ + idx, op.length)));
        bytes_written_.inc(op.length);
        break;
      case TraceOp::Kind::kCompute:
        p.delay(from_seconds(op.seconds));
        break;
      case TraceOp::Kind::kSync:
        GVFS_RETURN_IF_ERROR(fs.sync(p));
        break;
    }
  }
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"replay", to_seconds(p.now() - t0)});
  return report;
}

}  // namespace gvfs::workload
