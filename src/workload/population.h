// File population model: the set of files an application touches inside the
// guest, laid out on the virtual disk with realistic scatter, plus an
// inode-region model so cold opens cost metadata block reads (which become
// WAN round trips on uncached mounts — a large share of the paper's
// first-iteration latencies).
#pragma once

#include <string>
#include <vector>

#include "blob/blob.h"
#include "common/rng.h"
#include "sim/kernel.h"
#include "vm/guest_fs.h"

namespace gvfs::workload {

struct PopulationSpec {
  std::string prefix = "f";
  u32 files = 100;
  u64 total_bytes = 16_MiB;
  u64 min_file = 1_KiB;
  u64 seed = 1;
  // Disk region where this population's inode blocks live.
  u64 inode_region = 192_MiB;
  u32 inodes_per_block = 32;
  // Gap inserted between files on disk (fragmentation model).
  u64 inter_file_gap = 8_KiB;
};

class FilePopulation {
 public:
  FilePopulation(vm::GuestFs& fs, PopulationSpec spec);

  // Lay the files out on the virtual disk (image-install time, no sim cost).
  Status install();

  [[nodiscard]] u32 count() const { return spec_.files; }
  [[nodiscard]] u64 file_size(u32 index) const { return sizes_[index]; }
  [[nodiscard]] u64 total_bytes() const;
  [[nodiscard]] std::string name_of(u32 index) const;

  // Open models the metadata path: reads the file's inode block (guest
  // cached after first touch).
  Status open(sim::Process& p, u32 index);

  // open + read the whole file.
  Result<blob::BlobRef> read_file(sim::Process& p, u32 index);

  // open + overwrite the first `bytes` (extends if needed) with seeded data.
  Status write_file(sim::Process& p, u32 index, u64 bytes);

  // Read every file in index order (a scan pass).
  Status read_all(sim::Process& p);

 private:
  vm::GuestFs& fs_;
  PopulationSpec spec_;
  std::vector<u64> sizes_;
};

// Seeded payload helper shared by workloads.
blob::BlobRef payload(u64 seed, u64 bytes, double zero_fraction = 0.05,
                      double compress_ratio = 2.0);

}  // namespace gvfs::workload
