// Parameterizable synthetic workload: a read/write mix over one large guest
// file, sequential or random. Used by ablation benches (cache geometry,
// write policy sweeps) and property tests where the three application models
// would be noise.
#pragma once

#include "common/rng.h"
#include "common/metrics.h"
#include "common/status.h"
#include "sim/kernel.h"
#include "vm/guest_fs.h"
#include "workload/report.h"

namespace gvfs::workload {

struct SyntheticConfig {
  u64 file_bytes = 64_MiB;
  u64 io_size = 32_KiB;
  u32 ops = 512;
  double read_fraction = 0.7;  // rest are writes
  bool sequential = false;
  double compute_per_op_s = 0.0;
  u64 seed = 0xabcd;
};

class SyntheticWorkload {
 public:
  explicit SyntheticWorkload(SyntheticConfig cfg = {}) : cfg_(cfg) {}

  Status install(vm::GuestFs& fs);
  Result<WorkloadReport> run(sim::Process& p, vm::GuestFs& fs);

  [[nodiscard]] u64 bytes_read() const { return bytes_read_.value(); }
  [[nodiscard]] u64 bytes_written() const { return bytes_written_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "bytes_read", &bytes_read_);
    r.register_counter(prefix + "bytes_written", &bytes_written_);
  }

 private:
  SyntheticConfig cfg_;
  metrics::Counter bytes_read_;
  metrics::Counter bytes_written_;
};

}  // namespace gvfs::workload
