// Linux 2.4.18 kernel-compilation model (§4.2.1): "make dep",
// "make bzImage", "make modules", "make modules_install" — substantial reads
// and writes over a large number of files, the Andrew-benchmark-style
// software development pattern of Figure 5. Two consecutive runs distinguish
// cold from warm host caches.
#pragma once

#include <memory>

#include "common/status.h"
#include "sim/kernel.h"
#include "vm/guest_fs.h"
#include "workload/population.h"
#include "workload/report.h"

namespace gvfs::workload {

struct KernelCompileConfig {
  u32 source_files = 5200;       // .c/.h population touched by the build
  u64 source_bytes = 118_MiB;
  u32 object_files = 1400;
  u64 object_bytes = 58_MiB;     // .o outputs
  u64 bzimage_bytes = u64{1300} * 1_KiB;
  u64 modules_out_bytes = 34_MiB;
  double dep_compute_s = 95;
  double bzimage_compute_s = 520;
  double modules_compute_s = 760;
  double install_compute_s = 25;
  u64 seed = 0xc0de;
};

class KernelCompileWorkload {
 public:
  explicit KernelCompileWorkload(KernelCompileConfig cfg = {}) : cfg_(cfg) {}

  Status install(vm::GuestFs& fs);

  // One full build (4 phases: dep / bzImage / modules / modules_install).
  Result<WorkloadReport> run(sim::Process& p, vm::GuestFs& fs);

 private:
  KernelCompileConfig cfg_;
  std::unique_ptr<FilePopulation> sources_;
};

}  // namespace gvfs::workload
