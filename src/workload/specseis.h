// SPECseis96 model (§4.2.1): four phases; phase 1 generates a large trace
// file consumed by the later phases, phase 4 is compute-dominated seismic
// processing. Run in sequential mode with the small dataset, as the paper
// does. The phase structure is what matters: phase 1 exposes write policy
// (write-back wins), phase 4 shows compute insensitivity to the file system.
#pragma once

#include "common/status.h"
#include "sim/kernel.h"
#include "vm/guest_fs.h"
#include "workload/report.h"

namespace gvfs::workload {

struct SpecSeisConfig {
  u64 input_bytes = 10_MiB;    // seismic source data (in the image)
  u64 trace_bytes = 56_MiB;    // phase-1 output, re-read by later phases
  u64 result_bytes = 8_MiB;
  double p1_compute_s = 70;    // phase 1 is I/O-heavy (writes the trace)
  double p2_compute_s = 68;
  double p3_compute_s = 92;
  double p4_compute_s = 415;   // "intensive seismic processing computations"
  u64 io_chunk = 256_KiB;
  u64 seed = 0x5e15;
};

class SpecSeisWorkload {
 public:
  explicit SpecSeisWorkload(SpecSeisConfig cfg = {}) : cfg_(cfg) {}

  // Lay the input data out in the guest (image-build time).
  Status install(vm::GuestFs& fs);

  // Run all four phases; phase boundaries sync the guest (batch-job file
  // closes + journal commits).
  Result<WorkloadReport> run(sim::Process& p, vm::GuestFs& fs);

 private:
  Status stream_read_(sim::Process& p, vm::GuestFs& fs, const std::string& name,
                      u64 bytes);
  Status stream_write_(sim::Process& p, vm::GuestFs& fs, const std::string& name,
                       u64 bytes, u64 seed);

  SpecSeisConfig cfg_;
};

}  // namespace gvfs::workload
