#include "workload/population.h"

#include <algorithm>

namespace gvfs::workload {

blob::BlobRef payload(u64 seed, u64 bytes, double zero_fraction,
                      double compress_ratio) {
  return blob::make_synthetic(seed, bytes, zero_fraction, compress_ratio);
}

FilePopulation::FilePopulation(vm::GuestFs& fs, PopulationSpec spec)
    : fs_(fs), spec_(std::move(spec)) {
  // Draw sizes from an exponential mix (many small, a few large), then scale
  // to the requested total.
  SplitMix64 rng(spec_.seed);
  sizes_.resize(spec_.files);
  double sum = 0;
  std::vector<double> w(spec_.files);
  for (u32 i = 0; i < spec_.files; ++i) {
    w[i] = rng.next_exponential(1.0);
    sum += w[i];
  }
  u64 assigned = 0;
  for (u32 i = 0; i < spec_.files; ++i) {
    u64 s = spec_.min_file +
            static_cast<u64>(w[i] / sum * static_cast<double>(spec_.total_bytes));
    sizes_[i] = s;
    assigned += s;
  }
  (void)assigned;
}

std::string FilePopulation::name_of(u32 index) const {
  return spec_.prefix + std::to_string(index);
}

u64 FilePopulation::total_bytes() const {
  u64 t = 0;
  for (u64 s : sizes_) t += s;
  return t;
}

Status FilePopulation::install() {
  for (u32 i = 0; i < spec_.files; ++i) {
    // Populations model aged filesystems: small files live in scattered
    // extents, so cold reads cannot be coalesced into large transfers.
    GVFS_RETURN_IF_ERROR(fs_.add_file(name_of(i), sizes_[i],
                                      sizes_[i] + spec_.inter_file_gap,
                                      /*fragmented=*/true));
  }
  return Status::ok();
}

Status FilePopulation::open(sim::Process& p, u32 index) {
  // Inode block read: 4 KiB in this population's inode region, scattered by
  // a hash so unrelated opens don't share blocks.
  u64 block = mix64(spec_.seed ^ index) % std::max<u32>(1, spec_.files / spec_.inodes_per_block + 1);
  return fs_.vm_read_meta(p, spec_.inode_region + block * 4_KiB, 4_KiB);
}

Result<blob::BlobRef> FilePopulation::read_file(sim::Process& p, u32 index) {
  GVFS_RETURN_IF_ERROR(open(p, index));
  return fs_.read_all(p, name_of(index));
}

Status FilePopulation::write_file(sim::Process& p, u32 index, u64 bytes) {
  GVFS_RETURN_IF_ERROR(open(p, index));
  return fs_.write(p, name_of(index), 0,
                   payload(mix64(spec_.seed + index), bytes));
}

Status FilePopulation::read_all(sim::Process& p) {
  for (u32 i = 0; i < spec_.files; ++i) {
    GVFS_RETURN_IF_ERROR(read_file(p, i).status());
  }
  return Status::ok();
}

}  // namespace gvfs::workload
