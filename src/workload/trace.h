// Trace-driven workload: replay a recorded application I/O trace inside the
// guest. This is the extension point for users who have real traces of their
// Grid applications — the paper's middleware "accumulates knowledge for
// applications from their past behaviors"; a trace is that knowledge in its
// rawest form.
//
// Text format (one op per line, '#' comments):
//   open  <file>
//   read  <file> <offset> <length>
//   write <file> <offset> <length>
//   compute <seconds>
//   sync
#pragma once

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "sim/kernel.h"
#include "vm/guest_fs.h"
#include "workload/report.h"

namespace gvfs::workload {

struct TraceOp {
  enum class Kind { kOpen, kRead, kWrite, kCompute, kSync };
  Kind kind = Kind::kRead;
  std::string file;
  u64 offset = 0;
  u64 length = 0;
  double seconds = 0;  // kCompute only

  bool operator==(const TraceOp& o) const {
    return kind == o.kind && file == o.file && offset == o.offset &&
           length == o.length && seconds == o.seconds;
  }
};

class TraceWorkload {
 public:
  explicit TraceWorkload(std::vector<TraceOp> ops, u64 seed = 0x7ace)
      : ops_(std::move(ops)), seed_(seed) {}

  // Parse / serialize the text format (round-trip stable).
  static Result<std::vector<TraceOp>> parse(const std::string& text);
  static std::string serialize(const std::vector<TraceOp>& ops);

  // Declare every referenced file in the guest, sized to cover the trace's
  // largest accessed extent (pre-existing content for reads).
  Status install(vm::GuestFs& fs);

  // Replay. The report has one "replay" phase; per-op failures abort.
  Result<WorkloadReport> run(sim::Process& p, vm::GuestFs& fs);

  [[nodiscard]] const std::vector<TraceOp>& ops() const { return ops_; }
  [[nodiscard]] u64 bytes_read() const { return bytes_read_.value(); }
  [[nodiscard]] u64 bytes_written() const { return bytes_written_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "bytes_read", &bytes_read_);
    r.register_counter(prefix + "bytes_written", &bytes_written_);
  }

 private:
  std::vector<TraceOp> ops_;
  u64 seed_;
  metrics::Counter bytes_read_;
  metrics::Counter bytes_written_;
};

}  // namespace gvfs::workload
