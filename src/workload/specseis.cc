#include "workload/specseis.h"

#include <algorithm>

#include "workload/population.h"

namespace gvfs::workload {

Status SpecSeisWorkload::install(vm::GuestFs& fs) {
  GVFS_RETURN_IF_ERROR(fs.add_file("seis.in", cfg_.input_bytes));
  GVFS_RETURN_IF_ERROR(fs.add_file("seis.trace", 0, cfg_.trace_bytes + 1_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("seis.work", 0, 8_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("seis.out", 0, cfg_.result_bytes + 1_MiB));
  return Status::ok();
}

Status SpecSeisWorkload::stream_read_(sim::Process& p, vm::GuestFs& fs,
                                      const std::string& name, u64 bytes) {
  u64 size = std::min(bytes, fs.size(name));
  u64 off = 0;
  while (off < size) {
    u64 n = std::min<u64>(cfg_.io_chunk, size - off);
    GVFS_RETURN_IF_ERROR(fs.read(p, name, off, n).status());
    off += n;
  }
  return Status::ok();
}

Status SpecSeisWorkload::stream_write_(sim::Process& p, vm::GuestFs& fs,
                                       const std::string& name, u64 bytes,
                                       u64 seed) {
  u64 off = fs.size(name) == 0 ? 0 : fs.size(name);
  (void)off;
  u64 written = 0;
  while (written < bytes) {
    u64 n = std::min<u64>(cfg_.io_chunk, bytes - written);
    GVFS_RETURN_IF_ERROR(fs.write(p, name, written, payload(seed + written, n)));
    written += n;
  }
  return Status::ok();
}

Result<WorkloadReport> SpecSeisWorkload::run(sim::Process& p, vm::GuestFs& fs) {
  WorkloadReport report;
  report.workload = "SPECseis96";

  // Phase 1: read the source data, heavy compute, generate the trace file.
  SimTime t0 = p.now();
  GVFS_RETURN_IF_ERROR(stream_read_(p, fs, "seis.in", cfg_.input_bytes));
  p.delay(from_seconds(cfg_.p1_compute_s));
  GVFS_RETURN_IF_ERROR(stream_write_(p, fs, "seis.trace", cfg_.trace_bytes, cfg_.seed));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"phase1", to_seconds(p.now() - t0)});

  // Phase 2: first processing pass over the trace.
  t0 = p.now();
  GVFS_RETURN_IF_ERROR(stream_read_(p, fs, "seis.trace", cfg_.trace_bytes));
  p.delay(from_seconds(cfg_.p2_compute_s));
  GVFS_RETURN_IF_ERROR(stream_write_(p, fs, "seis.work", 2_MiB, cfg_.seed ^ 2));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"phase2", to_seconds(p.now() - t0)});

  // Phase 3: partial pass + intermediate output.
  t0 = p.now();
  GVFS_RETURN_IF_ERROR(stream_read_(p, fs, "seis.trace", cfg_.trace_bytes * 3 / 5));
  p.delay(from_seconds(cfg_.p3_compute_s));
  GVFS_RETURN_IF_ERROR(stream_write_(p, fs, "seis.work", 4_MiB, cfg_.seed ^ 3));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"phase3", to_seconds(p.now() - t0)});

  // Phase 4: compute-bound seismic stacking/migration.
  t0 = p.now();
  GVFS_RETURN_IF_ERROR(stream_read_(p, fs, "seis.trace", cfg_.trace_bytes));
  p.delay(from_seconds(cfg_.p4_compute_s));
  GVFS_RETURN_IF_ERROR(
      stream_write_(p, fs, "seis.out", cfg_.result_bytes, cfg_.seed ^ 4));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"phase4", to_seconds(p.now() - t0)});

  return report;
}

}  // namespace gvfs::workload
