#include "workload/kernel_compile.h"

namespace gvfs::workload {

Status KernelCompileWorkload::install(vm::GuestFs& fs) {
  PopulationSpec src;
  src.prefix = "src";
  src.files = cfg_.source_files;
  src.total_bytes = cfg_.source_bytes;
  src.min_file = 1_KiB;
  src.seed = cfg_.seed;
  src.inode_region = 160_MiB;
  sources_ = std::make_unique<FilePopulation>(fs, src);
  GVFS_RETURN_IF_ERROR(sources_->install());

  // Object files start empty with growth reserves (outputs of the build).
  for (u32 i = 0; i < cfg_.object_files; ++i) {
    GVFS_RETURN_IF_ERROR(fs.add_file("obj" + std::to_string(i), 0,
                                     2 * cfg_.object_bytes / cfg_.object_files + 8_KiB));
  }

  GVFS_RETURN_IF_ERROR(fs.add_file("vmlinux.dep", 0, 4_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("bzImage", 0, cfg_.bzimage_bytes + 1_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("modules.tar", 0, cfg_.modules_out_bytes + 2_MiB));
  GVFS_RETURN_IF_ERROR(fs.add_file("modules.inst", 0, cfg_.modules_out_bytes + 2_MiB));
  return Status::ok();
}

Result<WorkloadReport> KernelCompileWorkload::run(sim::Process& p, vm::GuestFs& fs) {
  if (!sources_) return err(ErrCode::kInval, "install() not run");
  WorkloadReport report;
  report.workload = "kernel-compile";
  u64 per_obj = cfg_.object_bytes / cfg_.object_files;

  // make dep: scan every source file, emit the dependency database.
  SimTime t0 = p.now();
  GVFS_RETURN_IF_ERROR(sources_->read_all(p));
  p.delay(from_seconds(cfg_.dep_compute_s));
  GVFS_RETURN_IF_ERROR(fs.write(p, "vmlinux.dep", 0, payload(cfg_.seed ^ 1, 2_MiB)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"make dep", to_seconds(p.now() - t0)});

  // make bzImage: compile the core (re-reads ~40% of sources, writes ~55% of
  // the objects, links the image).
  t0 = p.now();
  for (u32 i = 0; i < cfg_.source_files; i += 5) {
    for (u32 j = i; j < std::min(cfg_.source_files, i + 2); ++j) {
      GVFS_RETURN_IF_ERROR(sources_->read_file(p, j).status());
    }
  }
  p.delay(from_seconds(cfg_.bzimage_compute_s));
  for (u32 i = 0; i < cfg_.object_files; i += 2) {
    GVFS_RETURN_IF_ERROR(
        fs.write(p, "obj" + std::to_string(i), 0, payload(cfg_.seed + i, per_obj)));
    if (i % 64 == 0) GVFS_RETURN_IF_ERROR(fs.sync(p));
  }
  GVFS_RETURN_IF_ERROR(
      fs.write(p, "bzImage", 0, payload(cfg_.seed ^ 2, cfg_.bzimage_bytes)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"make bzImage", to_seconds(p.now() - t0)});

  // make modules: compile the rest.
  t0 = p.now();
  for (u32 i = 2; i < cfg_.source_files; i += 5) {
    for (u32 j = i; j < std::min(cfg_.source_files, i + 3); ++j) {
      GVFS_RETURN_IF_ERROR(sources_->read_file(p, j).status());
    }
  }
  p.delay(from_seconds(cfg_.modules_compute_s));
  for (u32 i = 1; i < cfg_.object_files; i += 2) {
    GVFS_RETURN_IF_ERROR(
        fs.write(p, "obj" + std::to_string(i), 0, payload(cfg_.seed + i, per_obj)));
    if (i % 64 == 1) GVFS_RETURN_IF_ERROR(fs.sync(p));
  }
  GVFS_RETURN_IF_ERROR(
      fs.write(p, "modules.tar", 0, payload(cfg_.seed ^ 3, cfg_.modules_out_bytes)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"make modules", to_seconds(p.now() - t0)});

  // make modules_install: copy the freshly built modules.
  t0 = p.now();
  GVFS_RETURN_IF_ERROR(fs.read(p, "modules.tar", 0, cfg_.modules_out_bytes).status());
  p.delay(from_seconds(cfg_.install_compute_s));
  GVFS_RETURN_IF_ERROR(
      fs.write(p, "modules.inst", 0, payload(cfg_.seed ^ 4, cfg_.modules_out_bytes)));
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"make modules_install", to_seconds(p.now() - t0)});

  return report;
}

}  // namespace gvfs::workload
