#include "workload/synthetic.h"

#include <algorithm>

#include "workload/population.h"

namespace gvfs::workload {

Status SyntheticWorkload::install(vm::GuestFs& fs) {
  return fs.add_file("synth.dat", cfg_.file_bytes, cfg_.file_bytes + 1_MiB);
}

Result<WorkloadReport> SyntheticWorkload::run(sim::Process& p, vm::GuestFs& fs) {
  WorkloadReport report;
  report.workload = "synthetic";
  SplitMix64 rng(cfg_.seed);
  SimTime t0 = p.now();
  u64 blocks = std::max<u64>(1, cfg_.file_bytes / cfg_.io_size);
  u64 cursor = 0;
  for (u32 i = 0; i < cfg_.ops; ++i) {
    u64 block = cfg_.sequential ? (cursor++ % blocks) : rng.next_below(blocks);
    u64 off = block * cfg_.io_size;
    bool is_read = rng.next_double() < cfg_.read_fraction;
    if (is_read) {
      GVFS_ASSIGN_OR_RETURN(blob::BlobRef data,
                            fs.read(p, "synth.dat", off, cfg_.io_size));
      bytes_read_.inc(data->size());
    } else {
      GVFS_RETURN_IF_ERROR(
          fs.write(p, "synth.dat", off, payload(cfg_.seed + i, cfg_.io_size)));
      bytes_written_.inc(cfg_.io_size);
    }
    if (cfg_.compute_per_op_s > 0) p.delay(from_seconds(cfg_.compute_per_op_s));
  }
  GVFS_RETURN_IF_ERROR(fs.sync(p));
  report.phases.push_back({"mix", to_seconds(p.now() - t0)});
  return report;
}

}  // namespace gvfs::workload
