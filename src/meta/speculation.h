// Middleware application-knowledge base (§3.2.2): "The key to the success of
// this technique is the proper speculation of an application's behavior.
// Grid middleware should be able to accumulate knowledge for applications
// from their past behaviors and make intelligent decisions based on the
// knowledge."
//
// This module is that accumulator: per (application, file-class) it records
// how much of each file past sessions actually touched and whether accesses
// were whole-file sequential. From the history it recommends which meta-data
// to generate: the file channel for files always read in full (e.g. .vmss),
// nothing for sparsely-touched files (e.g. .vmdk), a zero map when content
// warrants it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace gvfs::meta {

// What one session observed about one file.
struct AccessObservation {
  u64 file_size = 0;
  u64 bytes_touched = 0;     // distinct bytes accessed
  bool sequential = false;   // dominated by a sequential scan
  double zero_fraction = 0;  // of the content, if scanned
};

enum class Recommendation {
  kNone,         // on-demand block access is best (sparse working set)
  kZeroMapOnly,  // mostly-zero content, partial access
  kFileChannel,  // whole file always needed: compress+copy+uncompress
};

const char* recommendation_name(Recommendation r);

struct KnowledgePolicy {
  // Consider a file "fully read" above this touched fraction.
  double full_read_threshold = 0.9;
  // Require this many consistent sessions before speculating.
  u32 min_sessions = 2;
  // Zero maps pay off above this zero fraction.
  double zero_map_threshold = 0.5;
};

class KnowledgeBase {
 public:
  using Policy = KnowledgePolicy;

  explicit KnowledgeBase(Policy policy = {}) : policy_(policy) {}

  // Record what a finished session observed. `file_class` is a stable key,
  // e.g. the file's extension ("vmss") or a middleware-assigned tag.
  void record(const std::string& app, const std::string& file_class,
              const AccessObservation& obs);

  // Current recommendation for (app, file_class); kNone until enough
  // history exists.
  [[nodiscard]] Recommendation recommend(const std::string& app,
                                         const std::string& file_class) const;

  // History depth for a key.
  [[nodiscard]] u32 sessions(const std::string& app,
                             const std::string& file_class) const;

  // Serialize/restore (middleware persists its knowledge between sessions).
  [[nodiscard]] std::string serialize() const;
  static Result<KnowledgeBase> parse(const std::string& text, Policy policy = {});

  bool operator==(const KnowledgeBase& o) const { return stats_ == o.stats_; }

 private:
  struct Stats {
    u32 sessions = 0;
    u32 full_reads = 0;
    u32 sequential_reads = 0;
    double touched_fraction_sum = 0;
    double zero_fraction_sum = 0;

    bool operator==(const Stats& o) const {
      return sessions == o.sessions && full_reads == o.full_reads &&
             sequential_reads == o.sequential_reads;
    }
  };

  static std::string key_(const std::string& app, const std::string& file_class) {
    return app + "\t" + file_class;
  }

  Policy policy_;
  std::map<std::string, Stats> stats_;
};

}  // namespace gvfs::meta
