// The on-demand fast file-based data channel (§3.2.2): executes a meta-data
// action list by compressing a file at the server, SCP-ing the compressed
// image across the WAN, inflating it into the client proxy's file cache, and
// serving all further requests locally. The reverse path implements
// file-cache write-back (compress, upload, uncompress at the server).
#pragma once

#include "blob/blob.h"
#include "cache/file_cache.h"
#include "common/metrics.h"
#include "common/status.h"
#include "sim/resources.h"
#include "ssh/ssh.h"
#include "vfs/memfs.h"

namespace gvfs::meta {

struct CompressedImage {
  blob::BlobRef content;    // the (lazy) uncompressed content
  u64 compressed_size = 0;  // bytes that actually cross the wire
};

// Server-side half: what the remote (server-side) proxy exposes to peers for
// file-channel transfers, beside the NFS path.
class RemoteFileEndpoint {
 public:
  virtual ~RemoteFileEndpoint() = default;

  // Compress file `fileid` on the server (charges server disk + CPU) and
  // hand back its content plus compressed size.
  virtual Result<CompressedImage> fetch_compressed(sim::Process& p,
                                                   vfs::FileId fileid) = 0;

  // Accept an uploaded compressed image, inflate and store it (write-back of
  // a dirty file-cache entry).
  virtual Status store_compressed(sim::Process& p, vfs::FileId fileid,
                                  blob::BlobRef content, u64 compressed_size) = 0;
};

// Concrete server-side endpoint over the image server's filesystem.
class ServerFileChannel final : public RemoteFileEndpoint {
 public:
  ServerFileChannel(vfs::MemFs& fs, sim::DiskModel& disk, sim::CpuPool* cpu,
                    ssh::GzipModel gzip = {})
      : fs_(fs), disk_(disk), cpu_(cpu), gzip_(gzip) {}

  Result<CompressedImage> fetch_compressed(sim::Process& p,
                                           vfs::FileId fileid) override;
  Status store_compressed(sim::Process& p, vfs::FileId fileid, blob::BlobRef content,
                          u64 compressed_size) override;

  [[nodiscard]] u64 compress_jobs() const { return compress_jobs_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "compress_jobs", &compress_jobs_);
  }

 private:
  vfs::MemFs& fs_;
  sim::DiskModel& disk_;
  sim::CpuPool* cpu_;
  ssh::GzipModel gzip_;
  metrics::Counter compress_jobs_;
};

// Client-side half: drives the end-to-end action list against an endpoint
// and lands results in the proxy's file cache.
class FileChannelClient {
 public:
  FileChannelClient(RemoteFileEndpoint& endpoint, ssh::Scp& scp,
                    cache::FileCache& file_cache, sim::CpuPool* cpu = nullptr,
                    ssh::GzipModel gzip = {})
      : endpoint_(endpoint), scp_(scp), file_cache_(file_cache), cpu_(cpu), gzip_(gzip) {}

  // compress@server -> SCP -> uncompress -> file cache. `cache_key` is the
  // key under which the proxy will later look the file up.
  Status fetch_into_cache(sim::Process& p, vfs::FileId remote_fileid, u64 cache_key);

  // Reverse: compress locally, SCP push, server inflates + stores.
  Status upload_from_cache(sim::Process& p, u64 cache_key, vfs::FileId remote_fileid,
                           const blob::BlobRef& content);

  [[nodiscard]] u64 fetches() const { return fetches_.value(); }
  [[nodiscard]] u64 uploads() const { return uploads_.value(); }
  [[nodiscard]] u64 wire_bytes() const { return wire_bytes_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "fetches", &fetches_);
    r.register_counter(prefix + "uploads", &uploads_);
    r.register_counter(prefix + "wire_bytes", &wire_bytes_);
  }

 private:
  RemoteFileEndpoint& endpoint_;
  ssh::Scp& scp_;
  cache::FileCache& file_cache_;
  sim::CpuPool* cpu_;
  ssh::GzipModel gzip_;
  metrics::Counter fetches_;
  metrics::Counter uploads_;
  metrics::Counter wire_bytes_;
};

}  // namespace gvfs::meta
