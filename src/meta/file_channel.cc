#include "meta/file_channel.h"

namespace gvfs::meta {

Result<CompressedImage> ServerFileChannel::fetch_compressed(sim::Process& p,
                                                            vfs::FileId fileid) {
  GVFS_ASSIGN_OR_RETURN(vfs::Attr a, fs_.getattr(fileid));
  if (a.type != vfs::FileType::kRegular) return err(ErrCode::kIsDir);
  GVFS_ASSIGN_OR_RETURN(blob::BlobRef content, fs_.read_ref(fileid, 0, a.size));
  compress_jobs_.inc();
  // Stream the file off the server disk and through gzip.
  disk_.access(p, a.size, sim::Locality::kSequential);
  gzip_.compress(p, cpu_, a.size);
  CompressedImage img;
  img.compressed_size = content->compressed_size();
  img.content = std::move(content);
  return img;
}

Status ServerFileChannel::store_compressed(sim::Process& p, vfs::FileId fileid,
                                           blob::BlobRef content,
                                           u64 /*compressed_size*/) {
  u64 size = content ? content->size() : 0;
  gzip_.inflate(p, cpu_, size);
  disk_.access(p, std::max<u64>(size, 4_KiB), sim::Locality::kSequential);
  vfs::SetAttr sa;
  sa.set_size = true;
  sa.size = 0;
  GVFS_RETURN_IF_ERROR(fs_.setattr(fileid, sa));
  if (size > 0) {
    GVFS_RETURN_IF_ERROR(fs_.write_blob(fileid, 0, std::move(content), 0, size));
  }
  return Status::ok();
}

Status FileChannelClient::fetch_into_cache(sim::Process& p, vfs::FileId remote_fileid,
                                           u64 cache_key) {
  fetches_.inc();
  GVFS_ASSIGN_OR_RETURN(CompressedImage img,
                        endpoint_.fetch_compressed(p, remote_fileid));
  wire_bytes_.inc(img.compressed_size);
  scp_.transfer(p, img.compressed_size);
  u64 size = img.content ? img.content->size() : 0;
  gzip_.inflate(p, cpu_, size);
  return file_cache_.put(p, cache_key, std::move(img.content), /*dirty=*/false);
}

Status FileChannelClient::upload_from_cache(sim::Process& p, u64 /*cache_key*/,
                                            vfs::FileId remote_fileid,
                                            const blob::BlobRef& content) {
  uploads_.inc();
  u64 size = content ? content->size() : 0;
  u64 compressed = content ? content->compressed_size() : 16;
  gzip_.compress(p, cpu_, size);
  wire_bytes_.inc(compressed);
  scp_.transfer(p, compressed);
  return endpoint_.store_compressed(p, remote_fileid, content, compressed);
}

}  // namespace gvfs::meta
