// Application meta-data files (§3.2.2). Grid middleware pre-processes files
// it understands (e.g. VM memory state) and drops a meta-data file next to
// them ("stored in the same directory ... with a special filename"). A GVFS
// proxy that finds one acts on it:
//   * a zero-block map lets the client proxy satisfy reads of all-zero
//     blocks locally (60452 of 65750 reads for a 512 MB post-boot image);
//   * an action list (compress → remote copy → uncompress → read locally)
//     replaces block-by-block fetch of a whole-file-needed file with one
//     compressed SCP transfer into the proxy's file cache.
#pragma once

#include <string>
#include <vector>

#include "blob/blob.h"
#include "common/status.h"
#include "common/types.h"

namespace gvfs::meta {

enum class Action : u32 {
  kCompress = 1,     // compress the file on the server
  kRemoteCopy = 2,   // SCP the compressed image to the client
  kUncompress = 3,   // inflate into the proxy file cache
  kReadLocally = 4,  // serve all further requests from the file cache
};

// The standard action sequence for a whole-file-needed file.
std::vector<Action> file_channel_actions();

class MetaFile {
 public:
  MetaFile() = default;

  // Naming convention: "/dir/f.vmss" -> "/dir/.f.vmss.gvfsmeta".
  static std::string meta_path_for(const std::string& path);
  static std::string meta_name_for(const std::string& name);
  static bool is_meta_name(const std::string& name);

  // Scan content and build a zero map at `block_size` granularity. When
  // `fp_block_size` is nonzero, also record a per-block content fingerprint
  // table (seeded 64-bit hash via Blob::fingerprint, so synthetic content
  // stays O(1) per block) that dedup-aware proxies use to alias identical
  // blocks across files. Default 0 keeps the output byte-identical to the
  // pre-dedup format.
  static MetaFile generate(const blob::Blob& content, u32 zero_block_size,
                           std::vector<Action> actions = {},
                           u32 fp_block_size = 0,
                           u64 fp_seed = blob::kDefaultFingerprintSeed);

  // ---- zero map ------------------------------------------------------------
  [[nodiscard]] bool has_zero_map() const { return zero_block_size_ != 0; }
  [[nodiscard]] u32 zero_block_size() const { return zero_block_size_; }
  // True iff [offset, offset+len) is covered entirely by zero blocks.
  [[nodiscard]] bool range_is_zero(u64 offset, u64 len) const;
  [[nodiscard]] u64 zero_block_count() const;
  [[nodiscard]] u64 total_blocks() const;

  // ---- fingerprint table (content-addressed dedup keys) --------------------
  [[nodiscard]] bool has_fingerprints() const { return fp_block_size_ != 0; }
  [[nodiscard]] u32 fp_block_size() const { return fp_block_size_; }
  [[nodiscard]] u64 fp_seed() const { return fp_seed_; }
  [[nodiscard]] u64 fingerprint_count() const { return fingerprints_.size(); }
  // Fingerprint of block `index` (fp_block_size granularity); 0 if absent.
  [[nodiscard]] u64 block_fingerprint(u64 index) const {
    return index < fingerprints_.size() ? fingerprints_[index] : 0;
  }

  // ---- actions ---------------------------------------------------------------
  [[nodiscard]] const std::vector<Action>& actions() const { return actions_; }
  [[nodiscard]] bool wants_file_channel() const;

  [[nodiscard]] u64 file_size() const { return file_size_; }

  // ---- codec (the meta-data file's on-disk representation) -----------------
  [[nodiscard]] blob::BlobRef serialize() const;
  static Result<MetaFile> parse(const blob::Blob& raw);

  bool operator==(const MetaFile& o) const {
    return file_size_ == o.file_size_ && zero_block_size_ == o.zero_block_size_ &&
           bitmap_ == o.bitmap_ && actions_ == o.actions_ &&
           fp_block_size_ == o.fp_block_size_ && fp_seed_ == o.fp_seed_ &&
           fingerprints_ == o.fingerprints_;
  }

 private:
  [[nodiscard]] bool block_is_zero_(u64 block) const;

  u64 file_size_ = 0;
  u32 zero_block_size_ = 0;
  std::vector<u8> bitmap_;  // 1 bit per block; set = all-zero
  std::vector<Action> actions_;
  u32 fp_block_size_ = 0;   // 0 = no fingerprint table
  u64 fp_seed_ = 0;
  std::vector<u64> fingerprints_;  // one per fp_block_size block
};

}  // namespace gvfs::meta
