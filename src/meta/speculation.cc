#include "meta/speculation.h"

#include <sstream>

namespace gvfs::meta {

const char* recommendation_name(Recommendation r) {
  switch (r) {
    case Recommendation::kNone: return "none";
    case Recommendation::kZeroMapOnly: return "zero-map";
    case Recommendation::kFileChannel: return "file-channel";
  }
  return "?";
}

void KnowledgeBase::record(const std::string& app, const std::string& file_class,
                           const AccessObservation& obs) {
  Stats& s = stats_[key_(app, file_class)];
  ++s.sessions;
  double touched = obs.file_size == 0
                       ? 0.0
                       : static_cast<double>(obs.bytes_touched) /
                             static_cast<double>(obs.file_size);
  if (touched >= policy_.full_read_threshold) ++s.full_reads;
  if (obs.sequential) ++s.sequential_reads;
  s.touched_fraction_sum += touched;
  s.zero_fraction_sum += obs.zero_fraction;
}

Recommendation KnowledgeBase::recommend(const std::string& app,
                                        const std::string& file_class) const {
  auto it = stats_.find(key_(app, file_class));
  if (it == stats_.end()) return Recommendation::kNone;
  const Stats& s = it->second;
  if (s.sessions < policy_.min_sessions) return Recommendation::kNone;
  // Whole-file-needed every session so far: the file channel wins (the
  // paper's .vmss case — "the entire memory state file is always required").
  if (s.full_reads == s.sessions) return Recommendation::kFileChannel;
  // Partially-accessed but mostly-zero content: a zero map filters reads
  // without forcing the whole transfer.
  double mean_zero = s.zero_fraction_sum / s.sessions;
  if (mean_zero >= policy_.zero_map_threshold) return Recommendation::kZeroMapOnly;
  return Recommendation::kNone;
}

u32 KnowledgeBase::sessions(const std::string& app,
                            const std::string& file_class) const {
  auto it = stats_.find(key_(app, file_class));
  return it == stats_.end() ? 0 : it->second.sessions;
}

std::string KnowledgeBase::serialize() const {
  std::ostringstream out;
  out << "gvfs-kb 1\n";
  for (const auto& [key, s] : stats_) {
    std::string app = key.substr(0, key.find('\t'));
    std::string cls = key.substr(key.find('\t') + 1);
    out << app << " " << cls << " " << s.sessions << " " << s.full_reads << " "
        << s.sequential_reads << " " << s.touched_fraction_sum << " "
        << s.zero_fraction_sum << "\n";
  }
  return out.str();
}

Result<KnowledgeBase> KnowledgeBase::parse(const std::string& text, Policy policy) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "gvfs-kb" || version != 1) {
    return err(ErrCode::kInval, "bad knowledge-base header");
  }
  KnowledgeBase kb(policy);
  std::string app, cls;
  Stats s;
  while (in >> app >> cls >> s.sessions >> s.full_reads >> s.sequential_reads >>
         s.touched_fraction_sum >> s.zero_fraction_sum) {
    kb.stats_[key_(app, cls)] = s;
  }
  return kb;
}

}  // namespace gvfs::meta
