#include "meta/meta_file.h"

#include <algorithm>

#include "common/strings.h"
#include "xdr/xdr.h"

namespace gvfs::meta {

namespace {
constexpr u32 kMagic = 0x47564d44;  // "GVMD"
constexpr char kSuffix[] = ".gvfsmeta";
}  // namespace

std::vector<Action> file_channel_actions() {
  return {Action::kCompress, Action::kRemoteCopy, Action::kUncompress,
          Action::kReadLocally};
}

std::string MetaFile::meta_name_for(const std::string& name) {
  return "." + name + kSuffix;
}

std::string MetaFile::meta_path_for(const std::string& path) {
  std::string dir = path_dirname(path);
  return join_path(dir, meta_name_for(path_basename(path)));
}

bool MetaFile::is_meta_name(const std::string& name) {
  return name.size() > 1 && name[0] == '.' && ends_with(name, kSuffix);
}

MetaFile MetaFile::generate(const blob::Blob& content, u32 zero_block_size,
                            std::vector<Action> actions, u32 fp_block_size,
                            u64 fp_seed) {
  MetaFile m;
  m.file_size_ = content.size();
  m.actions_ = std::move(actions);
  if (zero_block_size > 0 && m.file_size_ > 0) {
    m.zero_block_size_ = zero_block_size;
    u64 blocks = (m.file_size_ + zero_block_size - 1) / zero_block_size;
    m.bitmap_.assign((blocks + 7) / 8, 0);
    for (u64 b = 0; b < blocks; ++b) {
      u64 off = b * zero_block_size;
      u64 len = std::min<u64>(zero_block_size, m.file_size_ - off);
      if (content.is_zero_range(off, len)) {
        m.bitmap_[b >> 3] |= static_cast<u8>(1u << (b & 7));
      }
    }
  }
  if (fp_block_size > 0 && m.file_size_ > 0) {
    m.fp_block_size_ = fp_block_size;
    m.fp_seed_ = fp_seed;
    u64 blocks = (m.file_size_ + fp_block_size - 1) / fp_block_size;
    m.fingerprints_.reserve(blocks);
    for (u64 b = 0; b < blocks; ++b) {
      u64 off = b * fp_block_size;
      u64 len = std::min<u64>(fp_block_size, m.file_size_ - off);
      m.fingerprints_.push_back(content.fingerprint(fp_seed, off, len));
    }
  }
  return m;
}

bool MetaFile::block_is_zero_(u64 block) const {
  u64 byte = block >> 3;
  if (byte >= bitmap_.size()) return false;
  return (bitmap_[byte] >> (block & 7)) & 1u;
}

bool MetaFile::range_is_zero(u64 offset, u64 len) const {
  if (!has_zero_map() || len == 0) return false;
  if (offset >= file_size_) return true;  // reads past EOF are zero anyway
  // Clamp len before the add: a "rest of file" caller passes len near
  // UINT64_MAX, and offset + len would wrap end back below offset,
  // misreporting nonzero tail blocks as zero.
  len = std::min(len, file_size_ - offset);
  u64 end = offset + len;
  u64 first = offset / zero_block_size_;
  u64 last = (end - 1) / zero_block_size_;
  for (u64 b = first; b <= last; ++b) {
    if (!block_is_zero_(b)) return false;
  }
  return true;
}

u64 MetaFile::total_blocks() const {
  if (!has_zero_map()) return 0;
  return (file_size_ + zero_block_size_ - 1) / zero_block_size_;
}

u64 MetaFile::zero_block_count() const {
  u64 n = 0;
  for (u64 b = 0; b < total_blocks(); ++b) {
    if (block_is_zero_(b)) ++n;
  }
  return n;
}

bool MetaFile::wants_file_channel() const {
  return std::find(actions_.begin(), actions_.end(), Action::kRemoteCopy) !=
         actions_.end();
}

blob::BlobRef MetaFile::serialize() const {
  xdr::XdrEncoder enc;
  enc.put_u32(kMagic);
  // Version 1 carries no fingerprint table; emitting it whenever the table
  // is absent keeps pre-dedup meta files byte-identical.
  enc.put_u32(has_fingerprints() ? 2 : 1);
  enc.put_u64(file_size_);
  enc.put_u32(zero_block_size_);
  enc.put_opaque(bitmap_);
  enc.put_u32(static_cast<u32>(actions_.size()));
  for (Action a : actions_) enc.put_u32(static_cast<u32>(a));
  if (has_fingerprints()) {
    enc.put_u32(fp_block_size_);
    enc.put_u64(fp_seed_);
    enc.put_u32(static_cast<u32>(fingerprints_.size()));
    for (u64 fp : fingerprints_) enc.put_u64(fp);
  }
  return blob::make_bytes(enc.take());
}

Result<MetaFile> MetaFile::parse(const blob::Blob& raw) {
  std::vector<u8> buf(raw.size());
  raw.read(0, buf);
  xdr::XdrDecoder dec(buf);
  if (dec.get_u32() != kMagic) return err(ErrCode::kInval, "bad meta magic");
  u32 version = dec.get_u32();
  if (version != 1 && version != 2) {
    return err(ErrCode::kInval, "bad meta version");
  }
  MetaFile m;
  m.file_size_ = dec.get_u64();
  m.zero_block_size_ = dec.get_u32();
  m.bitmap_ = dec.get_opaque();
  u32 n = dec.get_u32();
  if (n > 16) return err(ErrCode::kInval, "too many actions");
  for (u32 i = 0; i < n; ++i) m.actions_.push_back(static_cast<Action>(dec.get_u32()));
  if (version >= 2) {
    m.fp_block_size_ = dec.get_u32();
    m.fp_seed_ = dec.get_u64();
    u32 fps = dec.get_u32();
    if (m.fp_block_size_ == 0) return err(ErrCode::kInval, "zero fp block size");
    u64 expect = (m.file_size_ + m.fp_block_size_ - 1) / m.fp_block_size_;
    if (fps != expect) return err(ErrCode::kInval, "fingerprint count mismatch");
    m.fingerprints_.reserve(fps);
    for (u32 i = 0; i < fps; ++i) m.fingerprints_.push_back(dec.get_u64());
  }
  if (!dec.ok()) return err(ErrCode::kBadXdr, "meta file");
  return m;
}

}  // namespace gvfs::meta
