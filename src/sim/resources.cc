#include "sim/resources.h"

#include <algorithm>

#include "sim/faults.h"

namespace gvfs::sim {

void Link::transmit_ex(Process& p, u64 bytes, bool propagate) {
  messages_.inc();
  bytes_sent_.inc(bytes);
  if (faults_ != nullptr) {
    SimDuration spike = faults_->sample_spike(p.now());
    if (spike > 0) p.delay(spike);
  }
  if (cfg_.per_message_overhead > 0) p.delay(cfg_.per_message_overhead);
  u64 remaining = bytes;
  // Zero-byte messages (pure control) still cross the propagation delay.
  while (remaining > 0) {
    u64 chunk = std::min<u64>(remaining, cfg_.chunk_bytes);
    SimTime start = std::max(p.now(), pipe_free_);
    SimDuration busy = transfer_time(chunk, cfg_.bytes_per_sec);
    pipe_free_ = start + busy;
    p.delay_until(pipe_free_);
    remaining -= chunk;
  }
  if (propagate && cfg_.latency > 0) p.delay(cfg_.latency);
}

void DiskModel::access(Process& p, u64 bytes, Locality locality) {
  ops_.inc();
  bytes_moved_.inc(bytes);
  SimDuration position =
      locality == Locality::kSequential ? cfg_.seq_overhead : cfg_.seek;
  SimDuration busy = position + transfer_time(bytes, cfg_.bytes_per_sec);
  SimTime start = std::max(p.now(), free_);
  free_ = start + busy;
  p.delay_until(free_);
}

}  // namespace gvfs::sim
