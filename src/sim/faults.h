// Deterministic WAN fault injection (§3.1's wide-area premise, exercised).
//
// A FaultInjector owns a schedule of failures for one network path: random
// per-message drops, latency spikes, partition windows (total communication
// blackout) and server crash/restart windows. All randomness comes from the
// simulation kernel's seeded SplitMix64 — draws happen in the kernel's
// deterministic process-execution order, so identical seeds give identical
// fault schedules and identical simulated timelines. No wall-clock anywhere.
//
// Hook points:
//   * rpc::FaultyChannel consults drop_request()/drop_reply()/server_down()
//     around each RPC (rpc/fault_channel.h);
//   * sim::Link::set_fault_injector() adds sampled latency spikes to
//     individual message transmissions.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/kernel.h"

namespace gvfs::sim {

// FaultWindow::server value meaning "every server on this path" — the
// single-origin topologies never care which server a window hits.
constexpr int kAllServers = -1;

// Half-open virtual-time interval [start, end). Crash windows additionally
// carry the id of the server they take down (default: all of them), so a
// replicated origin tier can lose one replica while its peers stay up.
struct FaultWindow {
  SimTime start = 0;
  SimTime end = 0;
  int server = kAllServers;
  [[nodiscard]] bool contains(SimTime t) const { return t >= start && t < end; }
  [[nodiscard]] bool applies_to(int server_id) const {
    return server == kAllServers || server == server_id;
  }
};

struct FaultConfig {
  // Independent per-message loss probability (requests and replies each
  // flip a coin, as on a real lossy path).
  double drop_rate = 0.0;
  // Probability that a message transmission picks up an extra latency spike
  // (bufferbloat / route flap), and the spike magnitude.
  double spike_rate = 0.0;
  SimDuration spike = 200 * kMillisecond;
  // Network partitions: every message in a window is lost (both directions).
  std::vector<FaultWindow> partitions;
  // Server crash windows: requests are lost and the server executes nothing;
  // at the end of each window the server "reboots" (on_restart fires on the
  // first traffic afterwards — volatile state like page caches and the
  // duplicate-request cache is the callback's to clear). A window's `server`
  // field scopes the crash to one origin id (kAllServers hits every one).
  std::vector<FaultWindow> crashes;
};

class FaultInjector {
 public:
  // Draws randomness from `kernel.rng()`; seed it via SimKernel::seed_rng
  // before the run for a reproducible schedule.
  FaultInjector(SimKernel& kernel, FaultConfig cfg)
      : kernel_(kernel), cfg_(std::move(cfg)) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

  // Fired on the first traffic after a crash window closes (server reboot).
  // The single-argument overload is the legacy single-origin hook: it binds
  // to server id 0, which every unscoped (kAllServers) window applies to.
  void set_on_restart(std::function<void()> fn) {
    set_on_restart(0, std::move(fn));
  }
  void set_on_restart(int server_id, std::function<void()> fn) {
    on_restart_[server_id] = std::move(fn);
  }

  // ---- decision points (called by FaultyChannel / Link) --------------------
  // Should the request at virtual time `t` be lost before reaching server
  // `server_id`? True during crashes and partitions, or on a loss coin flip.
  bool drop_request(SimTime t, int server_id = 0);
  // Should the reply arriving at `t` be lost on the way back? (The server
  // did execute the request — this is what the duplicate-request cache is
  // for.)
  bool drop_reply(SimTime t);
  // Extra one-way latency for a message sent at `t` (0 when not spiked).
  SimDuration sample_spike(SimTime t);

  // Fire pending restart callbacks for crash windows scoped to `server_id`
  // (or to all servers) that ended at or before `t`. FaultyChannel calls
  // this before letting traffic through. Each (window, server) pair fires at
  // most once; windows fire in schedule order.
  void fire_restarts_due(SimTime t, int server_id = 0);

  [[nodiscard]] bool partitioned(SimTime t) const;
  [[nodiscard]] bool server_down(SimTime t, int server_id = 0) const;

  // ---- counters ------------------------------------------------------------
  [[nodiscard]] u64 requests_dropped() const { return requests_dropped_.value(); }
  [[nodiscard]] u64 replies_dropped() const { return replies_dropped_.value(); }
  [[nodiscard]] u64 spikes_injected() const { return spikes_injected_.value(); }
  [[nodiscard]] u64 restarts_fired() const { return restarts_fired_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "requests_dropped", &requests_dropped_);
    r.register_counter(prefix + "replies_dropped", &replies_dropped_);
    r.register_counter(prefix + "spikes_injected", &spikes_injected_);
    r.register_counter(prefix + "restarts_fired", &restarts_fired_);
  }

 private:
  SimKernel& kernel_;
  FaultConfig cfg_;
  // Per-server restart hooks and, per server, the count of crash windows
  // whose reboot already ran for it (windows are consumed in vector order —
  // std::map keeps iteration deterministic).
  std::map<int, std::function<void()>> on_restart_;
  std::map<int, std::size_t> restarts_fired_upto_;
  metrics::Counter requests_dropped_;
  metrics::Counter replies_dropped_;
  metrics::Counter spikes_injected_;
  metrics::Counter restarts_fired_;
};

}  // namespace gvfs::sim
