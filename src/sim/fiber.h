// Stackful cooperative fibers for the simulation kernel (ucontext-based).
//
// The kernel runs every sim::Process on a fiber: a private, pooled call
// stack switched in and out with swapcontext. Exactly one context — the
// scheduler (the OS thread that called SimKernel::run) or a single fiber —
// executes at any moment, so a virtual-time wakeup costs one user-space
// register swap each way instead of two OS thread context switches through
// a mutex/condvar handoff.
//
// Stacks are mmap'd with a PROT_NONE guard page below the usable range
// (overflow faults instead of corrupting a neighbour) and are recycled
// through a free pool: a boot-storm spawning tens of thousands of short
// processes touches the allocator only for the high-water mark of
// concurrently-live fibers. Untouched stack pages are never backed, so a
// generous virtual size costs only the pages a process actually uses.
//
// Sanitizer support: ASan and TSan both track stacks, so every switch is
// bracketed with their fiber annotations (__sanitizer_start/finish_
// switch_fiber, __tsan_switch_to_fiber) when the corresponding sanitizer is
// enabled; recycled stacks are unpoisoned before reuse. This keeps the
// CI sanitizer matrix byte-for-byte meaningful on the fiber engine.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <vector>

#include "common/types.h"

#if defined(__SANITIZE_ADDRESS__) && !defined(GVFS_FIBER_ASAN)
#define GVFS_FIBER_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__) && !defined(GVFS_FIBER_TSAN)
#define GVFS_FIBER_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(GVFS_FIBER_ASAN)
#define GVFS_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer) && !defined(GVFS_FIBER_TSAN)
#define GVFS_FIBER_TSAN 1
#endif
#endif

namespace gvfs::sim::fiber {

// One mmap'd fiber stack: [map_base, map_base+map_size) is the whole
// mapping, the low page is a PROT_NONE guard, [limit, limit+usable) is the
// writable range handed to makecontext.
struct Stack {
  void* map_base = nullptr;
  std::size_t map_size = 0;
  unsigned char* limit = nullptr;
  std::size_t usable = 0;
};

// Reusable stack pool. acquire() pops a recycled stack or maps a fresh one;
// release() returns it (unpoisoned) for the next fiber.
class StackPool {
 public:
  // Virtual size per stack; physical pages are only committed as touched, so
  // this costs address space, not RSS. Matches the 8 MiB glibc thread default
  // the previous thread-per-process engine ran on: blob extent chains recurse
  // one frame per layer (ExtentStore::compressed_size), and a long
  // write/suspend session builds chains deep enough to blow a 1 MiB stack.
  static constexpr std::size_t kDefaultStackBytes = 8 * 1024 * 1024;

  explicit StackPool(std::size_t stack_bytes = kDefaultStackBytes);
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  Stack acquire();
  void release(const Stack& s);

  // Total stacks ever mapped == high-water mark of concurrently-live fibers.
  [[nodiscard]] u64 stacks_created() const { return created_; }

 private:
  std::size_t stack_bytes_;
  std::vector<Stack> free_;
  u64 created_ = 0;
};

// The scheduler side of every switch: the OS thread's own context plus the
// sanitizer bookkeeping for its native stack. One per kernel.
class MainContext {
 public:
  MainContext() = default;
  MainContext(const MainContext&) = delete;
  MainContext& operator=(const MainContext&) = delete;

 private:
  friend class Fiber;
  ucontext_t ctx_;
#if GVFS_FIBER_TSAN
  void* tsan_fiber_ = nullptr;
#endif
#if GVFS_FIBER_ASAN
  void* fake_stack_ = nullptr;
  // The scheduler thread's stack bounds, learned from the first fiber-side
  // __sanitizer_finish_switch_fiber; every fiber->scheduler switch needs
  // them as the destination stack.
  const void* stack_bottom_ = nullptr;
  std::size_t stack_size_ = 0;
#endif
};

// A single cooperative execution context. Lifecycle:
//   Fiber f(pool, main, entry, arg);   // grabs a pooled stack, makecontext
//   f.resume();                        // scheduler -> fiber, runs entry(arg)
//   ... entry calls f.yield() to suspend, resume() continues it ...
//   entry returns -> fiber marks finished, final-switches to the scheduler;
//   resume() returns with finished()==true and the stack already recycled.
// entry must not let exceptions escape (the kernel's trampoline catches).
class Fiber {
 public:
  using Entry = void (*)(void* arg);

  Fiber(StackPool& pool, MainContext& main, Entry entry, void* arg);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Scheduler -> fiber. Returns when the fiber yields or finishes.
  void resume();
  // Fiber -> scheduler. Returns when the scheduler resumes this fiber.
  void yield();

  [[nodiscard]] bool finished() const { return finished_; }

 private:
  static void trampoline_(unsigned hi, unsigned lo);

  StackPool& pool_;
  MainContext& main_;
  Entry entry_;
  void* arg_;
  Stack stack_;
  ucontext_t ctx_;
  bool finished_ = false;
  bool stack_released_ = false;
#if GVFS_FIBER_TSAN
  void* tsan_fiber_ = nullptr;
#endif
#if GVFS_FIBER_ASAN
  void* fake_stack_ = nullptr;
#endif
};

}  // namespace gvfs::sim::fiber
