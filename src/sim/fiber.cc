#include "sim/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if GVFS_FIBER_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#if GVFS_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace gvfs::sim::fiber {

namespace {

std::size_t page_size() {
  static const std::size_t pg = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return pg;
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "sim::fiber: %s\n", what);
  std::abort();
}

}  // namespace

// -------------------------------------------------------------- StackPool --

StackPool::StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {
  std::size_t pg = page_size();
  stack_bytes_ = (stack_bytes_ + pg - 1) / pg * pg;
}

StackPool::~StackPool() {
  for (const Stack& s : free_) munmap(s.map_base, s.map_size);
}

Stack StackPool::acquire() {
  if (!free_.empty()) {
    Stack s = free_.back();
    free_.pop_back();
    return s;
  }
  std::size_t pg = page_size();
  Stack s;
  s.map_size = stack_bytes_ + pg;  // + low guard page
  s.map_base = mmap(nullptr, s.map_size, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (s.map_base == MAP_FAILED) die("stack mmap failed");
  s.limit = static_cast<unsigned char*>(s.map_base) + pg;
  s.usable = stack_bytes_;
  if (mprotect(s.limit, s.usable, PROT_READ | PROT_WRITE) != 0) {
    die("stack mprotect failed");
  }
  ++created_;
  return s;
}

void StackPool::release(const Stack& s) {
#if GVFS_FIBER_ASAN
  // A finished fiber leaves poisoned redzones behind; the next tenant must
  // see a clean stack.
  __asan_unpoison_memory_region(s.limit, s.usable);
#endif
  free_.push_back(s);
}

// ------------------------------------------------------------------ Fiber --

Fiber::Fiber(StackPool& pool, MainContext& main, Entry entry, void* arg)
    : pool_(pool), main_(main), entry_(entry), arg_(arg), stack_(pool.acquire()) {
  if (getcontext(&ctx_) != 0) die("getcontext failed");
  ctx_.uc_stack.ss_sp = stack_.limit;
  ctx_.uc_stack.ss_size = stack_.usable;
  ctx_.uc_link = nullptr;
  // makecontext only passes ints; smuggle the 64-bit this-pointer as two.
  auto p = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline_), 2,
              static_cast<unsigned>(p >> 32),
              static_cast<unsigned>(p & 0xffffffffu));
#if GVFS_FIBER_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
  // The kernel kills (and thereby finishes) every process before dropping
  // its fiber; a live fiber here would leak its half-run stack.
  assert(finished_ && "destroying an unfinished fiber");
#if GVFS_FIBER_TSAN
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (!stack_released_) pool_.release(stack_);
}

void Fiber::resume() {
  assert(!finished_ && "resuming a finished fiber");
#if GVFS_FIBER_TSAN
  if (main_.tsan_fiber_ == nullptr) {
    main_.tsan_fiber_ = __tsan_get_current_fiber();
  }
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#if GVFS_FIBER_ASAN
  __sanitizer_start_switch_fiber(&main_.fake_stack_, stack_.limit, stack_.usable);
#endif
  if (swapcontext(&main_.ctx_, &ctx_) != 0) die("swapcontext to fiber failed");
#if GVFS_FIBER_ASAN
  const void* from_bottom = nullptr;
  std::size_t from_size = 0;
  __sanitizer_finish_switch_fiber(main_.fake_stack_, &from_bottom, &from_size);
#endif
  if (finished_) {
#if GVFS_FIBER_TSAN
    __tsan_destroy_fiber(tsan_fiber_);
    tsan_fiber_ = nullptr;
#endif
    // Recycle eagerly: the next spawn reuses this stack even while the
    // Process object (and its name) lives on for end-of-run reporting.
    pool_.release(stack_);
    stack_released_ = true;
  }
}

void Fiber::yield() {
#if GVFS_FIBER_TSAN
  __tsan_switch_to_fiber(main_.tsan_fiber_, 0);
#endif
#if GVFS_FIBER_ASAN
  __sanitizer_start_switch_fiber(&fake_stack_, main_.stack_bottom_,
                                 main_.stack_size_);
#endif
  if (swapcontext(&ctx_, &main_.ctx_) != 0) die("swapcontext to scheduler failed");
#if GVFS_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fake_stack_, &main_.stack_bottom_,
                                  &main_.stack_size_);
#endif
}

void Fiber::trampoline_(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
#if GVFS_FIBER_ASAN
  __sanitizer_finish_switch_fiber(nullptr, &self->main_.stack_bottom_,
                                  &self->main_.stack_size_);
#endif
  self->entry_(self->arg_);  // must not throw (kernel trampoline catches)
  self->finished_ = true;
#if GVFS_FIBER_TSAN
  __tsan_switch_to_fiber(self->main_.tsan_fiber_, 0);
#endif
#if GVFS_FIBER_ASAN
  // nullptr fake-stack save: this fiber never runs again, release its fake
  // frames instead of saving them.
  __sanitizer_start_switch_fiber(nullptr, self->main_.stack_bottom_,
                                 self->main_.stack_size_);
#endif
  swapcontext(&self->ctx_, &self->main_.ctx_);
  die("finished fiber resumed");
}

}  // namespace gvfs::sim::fiber
