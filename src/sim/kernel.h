// Process-oriented discrete-event simulation kernel.
//
// Every actor in an experiment (a VM monitor, a background cache flusher, a
// parallel cloning client) is a Process: a cooperatively-scheduled stackful
// fiber (sim/fiber.h) that blocks on virtual time. Exactly one context —
// the scheduler or a single process fiber — runs at any moment, all on one
// OS thread, so simulation state needs no synchronization and a wakeup
// costs one user-space context swap each way. Determinism: the ready queue
// orders wakeups by (time, sequence number), and sequence numbers are
// handed out in program order, so identical inputs give identical
// schedules — the fiber engine produces the exact (time, seq) schedule the
// original thread-per-process engine did.
//
// The protocol stack (NFS client, proxies, caches, servers) is written as
// ordinary synchronous code; latency and bandwidth costs are charged by
// blocking the calling process on Link / DiskModel resources (resources.h).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/fiber.h"

namespace gvfs::sim {

class SimKernel;
class Process;

// Thrown inside a process when the kernel shuts down while it is blocked;
// unwinds the process body so RAII cleanup (permits, caches) runs.
struct ProcessKilled {};

// Deadlock checking (sim lockdep). The kernel always keeps the cheap
// bookkeeping (who waits on which signal, who holds which lock-like
// resource) and computes a QuiescenceReport when the event queue drains
// with processes still blocked. GVFS_DEADLOCK_CHECK additionally logs the
// full wait-for graph at that point; it is always on in debug builds and
// can be forced for any build type with -DGVFS_DEADLOCK_CHECK=1 (the CMake
// option GVFS_DEADLOCK_CHECK does this).
#if !defined(GVFS_DEADLOCK_CHECK) && !defined(NDEBUG)
#define GVFS_DEADLOCK_CHECK 1
#endif

// A waitable pulse: processes block on it, another process releases them.
// Used for semaphores, RPC completion, middleware signals (SIGUSR-style
// flush/write-back commands in the paper map onto these).
//
// Signals register with their kernel so end-of-run deadlock analysis can
// walk every wait list; the optional `name` shows up in those reports.
// Registration is an intrusive list: O(1) to join and leave (RPC-scoped
// signals are created per call) while preserving registration order for
// deterministic reports.
class Signal {
 public:
  explicit Signal(SimKernel& kernel, std::string name = "signal");
  ~Signal();
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  // Wake every currently-blocked waiter at the current virtual time.
  void notify_all();
  // Wake one waiter (FIFO). Returns false if nobody was waiting.
  bool notify_one();

  // Lockdep annotation for lock-like resources guarded by this signal
  // (semaphore permits, leases): the *currently running* process becomes /
  // stops being a holder. A cycle of blocked waiters through holders is a
  // hold-and-wait deadlock. No-ops outside process context.
  void add_holder();
  void remove_holder();

  [[nodiscard]] const std::string& name() const { return name_; }
  // Times notify_one()/notify_all() found no waiter to wake. A process
  // stuck on this signal at quiescence after such a notify is the classic
  // lost-wakeup shape (notify raced ahead of wait).
  [[nodiscard]] u64 missed_notifies() const { return missed_notifies_; }

 private:
  friend class Process;
  friend class SimKernel;

  [[nodiscard]] bool no_waiters_() const { return wait_head_ == waiters_.size(); }
  // Reclaim the consumed prefix once it dominates the vector, so a signal
  // that always has a waiter doesn't accrete its full wake history.
  void compact_();

  SimKernel& kernel_;
  std::string name_;
  // FIFO wait list as vector + head index: notify_one is O(1) amortized
  // (the old erase(begin()) was O(waiters) per wake). Live waiters are
  // waiters_[wait_head_ ..]; the prefix is already-woken history.
  std::vector<Process*> waiters_;
  std::size_t wait_head_ = 0;
  std::vector<Process*> holders_;
  u64 missed_notifies_ = 0;
  // Kernel signal registry (intrusive, registration order).
  Signal* reg_prev_ = nullptr;
  Signal* reg_next_ = nullptr;
};

// Handle passed to a process body; all blocking primitives live here.
class Process {
 public:
  // Advance virtual time by `d` (>= 0).
  void delay(SimDuration d);
  // Block until virtual time `t` (no-op if already past).
  void delay_until(SimTime t);
  // Block until the signal fires.
  void wait(Signal& s);

  [[nodiscard]] SimTime now() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SimKernel& kernel() { return kernel_; }

 private:
  friend class SimKernel;
  friend class Signal;

  enum class State { kCreated, kRunning, kBlocked, kDone };

  Process(SimKernel& kernel, std::string name) : kernel_(kernel), name_(std::move(name)) {}

  // Yields the fiber back to the scheduler until the kernel hands control
  // back; throws ProcessKilled if the kernel shut the process down.
  // Precondition: called on this process's fiber while it is current.
  void block_();

  // Fiber entry point: runs body_, records failure, marks kDone.
  static void fiber_main_(void* arg);

  SimKernel& kernel_;
  std::string name_;
  std::function<void(Process&)> body_;  // released once the body finishes
  // Embedded (not heap-allocated) and constructed lazily on first dispatch:
  // spawning costs no fiber work, and a process killed before it ever ran
  // never builds one.
  std::optional<fiber::Fiber> fiber_;
  State state_ = State::kCreated;
  bool killed_ = false;
  bool failed_ = false;  // body exited via exception other than ProcessKilled
};

using ProcessBody = std::function<void(Process&)>;

// Result of the lockdep pass run when the event queue drains while
// processes are still blocked on signals ("quiescence"). Servers parked on
// request signals are normal there; hold-and-wait cycles never are.
struct QuiescenceReport {
  struct BlockedWaiter {
    std::string process;
    std::string signal;
    // The awaited signal was notified at least once while nobody was
    // waiting — the stuck wait is likely a lost wakeup, not an idle server.
    bool possible_lost_wakeup = false;
  };

  // Every process still blocked on a signal at quiescence.
  std::vector<BlockedWaiter> blocked;
  // Hold-and-wait cycles: process names, each waiting on a resource held by
  // the next (last waits on the first). A non-empty list is a deadlock.
  std::vector<std::vector<std::string>> cycles;

  [[nodiscard]] bool deadlock() const { return !cycles.empty(); }
  [[nodiscard]] bool names_process(const std::string& name) const;
  [[nodiscard]] std::string to_string() const;
};

class SimKernel {
 public:
  SimKernel();
  ~SimKernel();
  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  // Create a process that becomes runnable at the current virtual time
  // (plus `start_after`). Callable before run() or from inside a process.
  Process& spawn(std::string name, ProcessBody body, SimDuration start_after = 0);

  // Drive the simulation until no scheduled wakeups remain. Processes still
  // blocked on signals at that point are killed (they unwind via
  // ProcessKilled). Returns the final virtual time.
  SimTime run();

  // Convenience: spawn a single process and run the kernel to completion.
  SimTime run_process(std::string name, ProcessBody body);

  [[nodiscard]] SimTime now() const { return now_; }

  // The kernel-owned deterministic PRNG: the single randomness source for
  // fault injection and retry jitter. Processes run one at a time in a
  // deterministic order, so draws are reproducible; re-seed before a run to
  // get an identical schedule.
  [[nodiscard]] SplitMix64& rng() { return rng_; }
  void seed_rng(u64 seed) { rng_ = SplitMix64(seed); }

  // Number of processes whose bodies threw (test hygiene: assert == 0).
  [[nodiscard]] int failed_processes() const { return failed_; }
  // Names of those processes, in completion order.
  [[nodiscard]] const std::vector<std::string>& failed_process_names() const {
    return failed_names_;
  }
  // "name1, name2" — convenience for assertion messages.
  [[nodiscard]] std::string failed_names_joined() const;

  // Lockdep findings from the most recent run() that reached quiescence
  // with blocked processes; empty when every process ran to completion.
  [[nodiscard]] const QuiescenceReport& quiescence_report() const {
    return quiescence_;
  }

  // Observes every dispatch the run loop makes, in order: the wakeup's
  // virtual time, its sequence number, and the process resumed. The
  // (time, seq, name) stream IS the schedule — the determinism property
  // tests record it and demand byte-identical replays. Null (default)
  // costs nothing.
  using ScheduleTracer = std::function<void(SimTime time, u64 seq, const Process& p)>;
  void set_schedule_tracer(ScheduleTracer fn) { tracer_ = std::move(fn); }

  // Fiber stacks ever mapped == high-water mark of concurrently-live
  // processes (stacks are pooled and recycled across spawns).
  [[nodiscard]] u64 fiber_stacks_created() const { return stacks_.stacks_created(); }

 private:
  friend class Process;
  friend class Signal;

  struct Wakeup {
    SimTime time;
    u64 seq;
    Process* proc;
    bool operator>(const Wakeup& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void schedule_(SimTime t, Process* p);
  // Hand control to `p`'s fiber (creating it on first dispatch); returns
  // when the fiber blocks or finishes.
  void resume_process_(Process* p);
  // Unwind a blocked process via ProcessKilled (or retire a never-started
  // one). `as_current`: run the unwind with current_ == p so lockdep holder
  // annotations released by RAII cleanup attribute correctly.
  void kill_process_(Process* p, bool as_current);
  void register_signal_(Signal* s);
  void unregister_signal_(Signal* s);
  // Build the wait-for graph over still-blocked waiters and detect
  // hold-and-wait cycles and lost-wakeup shapes.
  QuiescenceReport analyze_quiescence_() const;

  std::priority_queue<Wakeup, std::vector<Wakeup>, std::greater<>> queue_;
  std::vector<std::unique_ptr<Process>> procs_;
  SimTime now_ = 0;
  u64 seq_ = 0;
  SplitMix64 rng_;
  int failed_ = 0;
  std::vector<std::string> failed_names_;
  bool running_ = false;
  Process* current_ = nullptr;  // the one process allowed to run right now
  fiber::MainContext main_ctx_;
  fiber::StackPool stacks_;
  Signal* signals_head_ = nullptr;  // live signals, registration order
  Signal* signals_tail_ = nullptr;
  QuiescenceReport quiescence_;
  ScheduleTracer tracer_;
};

}  // namespace gvfs::sim
