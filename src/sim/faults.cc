#include "sim/faults.h"

namespace gvfs::sim {

bool FaultInjector::partitioned(SimTime t) const {
  for (const FaultWindow& w : cfg_.partitions) {
    if (w.contains(t)) return true;
  }
  return false;
}

bool FaultInjector::server_down(SimTime t, int server_id) const {
  for (const FaultWindow& w : cfg_.crashes) {
    if (w.contains(t) && w.applies_to(server_id)) return true;
  }
  return false;
}

bool FaultInjector::drop_request(SimTime t, int server_id) {
  if (server_down(t, server_id) || partitioned(t)) {
    requests_dropped_.inc();
    return true;
  }
  if (cfg_.drop_rate > 0.0 && kernel_.rng().next_double() < cfg_.drop_rate) {
    requests_dropped_.inc();
    return true;
  }
  return false;
}

bool FaultInjector::drop_reply(SimTime t) {
  if (partitioned(t)) {
    replies_dropped_.inc();
    return true;
  }
  if (cfg_.drop_rate > 0.0 && kernel_.rng().next_double() < cfg_.drop_rate) {
    replies_dropped_.inc();
    return true;
  }
  return false;
}

SimDuration FaultInjector::sample_spike(SimTime) {
  if (cfg_.spike_rate <= 0.0 || cfg_.spike <= 0) return 0;
  if (kernel_.rng().next_double() >= cfg_.spike_rate) return 0;
  spikes_injected_.inc();
  return cfg_.spike;
}

void FaultInjector::fire_restarts_due(SimTime t, int server_id) {
  auto cb = on_restart_.find(server_id);
  if (cb == on_restart_.end() || !cb->second) return;
  // Crash windows are expected in chronological order (schedules are built
  // that way); each window reboots each server it applies to exactly once.
  std::size_t& upto = restarts_fired_upto_[server_id];
  while (upto < cfg_.crashes.size() && cfg_.crashes[upto].end <= t) {
    const FaultWindow& w = cfg_.crashes[upto];
    ++upto;
    if (!w.applies_to(server_id)) continue;
    restarts_fired_.inc();
    cb->second();
  }
}

}  // namespace gvfs::sim
