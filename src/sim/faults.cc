#include "sim/faults.h"

namespace gvfs::sim {

bool FaultInjector::partitioned(SimTime t) const {
  for (const FaultWindow& w : cfg_.partitions) {
    if (w.contains(t)) return true;
  }
  return false;
}

bool FaultInjector::server_down(SimTime t) const {
  for (const FaultWindow& w : cfg_.crashes) {
    if (w.contains(t)) return true;
  }
  return false;
}

bool FaultInjector::drop_request(SimTime t) {
  if (server_down(t) || partitioned(t)) {
    requests_dropped_.inc();
    return true;
  }
  if (cfg_.drop_rate > 0.0 && kernel_.rng().next_double() < cfg_.drop_rate) {
    requests_dropped_.inc();
    return true;
  }
  return false;
}

bool FaultInjector::drop_reply(SimTime t) {
  if (partitioned(t)) {
    replies_dropped_.inc();
    return true;
  }
  if (cfg_.drop_rate > 0.0 && kernel_.rng().next_double() < cfg_.drop_rate) {
    replies_dropped_.inc();
    return true;
  }
  return false;
}

SimDuration FaultInjector::sample_spike(SimTime) {
  if (cfg_.spike_rate <= 0.0 || cfg_.spike <= 0) return 0;
  if (kernel_.rng().next_double() >= cfg_.spike_rate) return 0;
  spikes_injected_.inc();
  return cfg_.spike;
}

void FaultInjector::fire_restarts_due(SimTime t) {
  if (!on_restart_) return;
  // Crash windows are expected in chronological order (schedules are built
  // that way); each window reboots the server exactly once.
  while (restarts_fired_upto_ < cfg_.crashes.size() &&
         cfg_.crashes[restarts_fired_upto_].end <= t) {
    ++restarts_fired_upto_;
    restarts_fired_.inc();
    on_restart_();
  }
}

}  // namespace gvfs::sim
