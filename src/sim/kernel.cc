#include "sim/kernel.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace gvfs::sim {

// ---------------------------------------------------------------- Process --

void Process::block_(std::unique_lock<std::mutex>& lk) {
  state_ = State::kBlocked;
  kernel_.kernel_cv_.notify_one();
  cv_.wait(lk, [this] { return state_ == State::kRunning || killed_; });
  if (killed_) throw ProcessKilled{};
}

void Process::delay(SimDuration d) {
  assert(d >= 0 && "negative delay");
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  kernel_.schedule_locked(kernel_.now_ + d, this);
  block_(lk);
}

void Process::delay_until(SimTime t) {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  kernel_.schedule_locked(std::max(t, kernel_.now_), this);
  block_(lk);
}

SimTime Process::now() const { return kernel_.now_; }

// ----------------------------------------------------------------- Signal --

Signal::Signal(SimKernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  kernel_.register_signal_locked(this);
}

Signal::~Signal() {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  kernel_.unregister_signal_locked(this);
}

void Signal::notify_all() {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  if (waiters_.empty()) ++missed_notifies_;
  for (Process* w : waiters_) kernel_.schedule_locked(kernel_.now_, w);
  waiters_.clear();
}

bool Signal::notify_one() {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  if (waiters_.empty()) {
    ++missed_notifies_;
    return false;
  }
  Process* w = waiters_.front();
  waiters_.erase(waiters_.begin());
  kernel_.schedule_locked(kernel_.now_, w);
  return true;
}

void Signal::add_holder() {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  if (kernel_.current_ != nullptr) holders_.push_back(kernel_.current_);
}

void Signal::remove_holder() {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  if (kernel_.current_ == nullptr) return;
  auto it = std::find(holders_.begin(), holders_.end(), kernel_.current_);
  if (it != holders_.end()) holders_.erase(it);
}

void Process::wait(Signal& s) {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  s.waiters_.push_back(this);
  block_(lk);
}

// -------------------------------------------------------------- SimKernel --

SimKernel::~SimKernel() {
  std::unique_lock<std::mutex> lk(mu_);
  // Kill anything still alive so its thread unwinds and can be joined.
  for (auto& p : procs_) {
    if (p->state_ != Process::State::kDone) {
      p->killed_ = true;
      p->cv_.notify_one();
    }
  }
  for (auto& p : procs_) {
    kernel_cv_.wait(lk, [&] { return p->state_ == Process::State::kDone; });
  }
  reap_locked(lk);
}

Process& SimKernel::spawn(std::string name, ProcessBody body, SimDuration start_after) {
  std::unique_lock<std::mutex> lk(mu_);
  auto proc = std::unique_ptr<Process>(new Process(*this, std::move(name)));
  Process* p = proc.get();
  p->thread_ = std::thread([this, p, body = std::move(body)]() mutable {
    {
      std::unique_lock<std::mutex> tlk(mu_);
      p->cv_.wait(tlk, [p] { return p->state_ == Process::State::kRunning || p->killed_; });
      if (p->killed_) {
        p->state_ = Process::State::kDone;
        done_unjoined_.push_back(p);
        kernel_cv_.notify_one();
        return;
      }
    }
    try {
      body(*p);
    } catch (const ProcessKilled&) {
      // normal shutdown path
    } catch (...) {
      p->failed_ = true;
      GVFS_ERROR("sim") << "process '" << p->name() << "' threw";
    }
    std::unique_lock<std::mutex> tlk(mu_);
    if (p->failed_) {
      ++failed_;
      failed_names_.push_back(p->name());
    }
    p->state_ = Process::State::kDone;
    done_unjoined_.push_back(p);
    kernel_cv_.notify_one();
  });
  schedule_locked(now_ + start_after, p);
  procs_.push_back(std::move(proc));
  return *p;
}

void SimKernel::schedule_locked(SimTime t, Process* p) {
  queue_.push(Wakeup{t, seq_++, p});
}

void SimKernel::resume_and_wait_locked(std::unique_lock<std::mutex>& lk, Process* p) {
  p->state_ = Process::State::kRunning;
  current_ = p;
  p->cv_.notify_one();
  kernel_cv_.wait(lk, [p] { return p->state_ != Process::State::kRunning; });
  current_ = nullptr;
}

void SimKernel::register_signal_locked(Signal* s) { signals_.push_back(s); }

void SimKernel::unregister_signal_locked(Signal* s) {
  auto it = std::find(signals_.begin(), signals_.end(), s);
  if (it != signals_.end()) signals_.erase(it);
}

QuiescenceReport SimKernel::analyze_quiescence_locked() const {
  QuiescenceReport report;
  // Wait-for edges: a blocked waiter on signal S waits for every process
  // currently annotated as holding S (hold-and-wait). Registration order of
  // signals and FIFO order of wait lists keep the report deterministic.
  std::vector<Process*> nodes;
  std::vector<std::vector<Process*>> out;
  auto node_index = [&](Process* p) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == p) return i;
    }
    nodes.push_back(p);
    out.emplace_back();
    return nodes.size() - 1;
  };
  for (const Signal* s : signals_) {
    for (Process* w : s->waiters_) {
      if (w->state_ != Process::State::kBlocked) continue;
      report.blocked.push_back(
          {w->name_, s->name_, s->missed_notifies_ > 0});
      std::size_t wi = node_index(w);
      for (Process* h : s->holders_) {
        if (h != w && h->state_ == Process::State::kBlocked) {
          out[wi].push_back(h);
        }
      }
    }
  }
  // Cycle detection: iterative colored DFS over the wait-for graph. Every
  // node has at most a handful of edges, so the quadratic node lookup above
  // is fine at quiescence scale.
  enum class Color { kWhite, kGrey, kBlack };
  std::vector<Color> color(nodes.size(), Color::kWhite);
  std::vector<Process*> stack;
  std::function<void(std::size_t)> dfs = [&](std::size_t v) {
    color[v] = Color::kGrey;
    stack.push_back(nodes[v]);
    for (Process* t : out[v]) {
      std::size_t ti = node_index(t);
      if (ti >= color.size()) color.resize(nodes.size(), Color::kWhite);
      if (color[ti] == Color::kGrey) {
        // Found a back edge: the cycle is the stack suffix starting at t.
        auto it = std::find(stack.begin(), stack.end(), t);
        std::vector<std::string> cycle;
        for (; it != stack.end(); ++it) cycle.push_back((*it)->name_);
        report.cycles.push_back(std::move(cycle));
      } else if (color[ti] == Color::kWhite) {
        dfs(ti);
      }
    }
    stack.pop_back();
    color[v] = Color::kBlack;
  };
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    if (color[v] == Color::kWhite) dfs(v);
  }
  return report;
}

void SimKernel::reap_locked(std::unique_lock<std::mutex>&) {
  for (Process* p : done_unjoined_) {
    if (p->thread_.joinable()) p->thread_.join();
  }
  done_unjoined_.clear();
}

SimTime SimKernel::run() {
  std::unique_lock<std::mutex> lk(mu_);
  assert(!running_ && "SimKernel::run is not reentrant");
  running_ = true;
  while (!queue_.empty()) {
    Wakeup w = queue_.top();
    queue_.pop();
    if (w.proc->state_ == Process::State::kDone) continue;
    assert(w.time >= now_ && "time went backwards");
    now_ = w.time;
    resume_and_wait_locked(lk, w.proc);
    reap_locked(lk);
  }
  // Event queue drained ("quiescence"): any process still blocked waits on
  // a signal that will never fire. Run the lockdep pass over the wait-for
  // graph first — a hold-and-wait cycle here is a real deadlock, not an
  // idle server — then kill the stragglers so their threads unwind.
  quiescence_ = analyze_quiescence_locked();
  for (const auto& cycle : quiescence_.cycles) {
    std::string names;
    for (const std::string& n : cycle) {
      if (!names.empty()) names += " -> ";
      names += n;
    }
    GVFS_ERROR("sim") << "lockdep: hold-and-wait deadlock cycle: " << names;
  }
#ifdef GVFS_DEADLOCK_CHECK
  for (const auto& b : quiescence_.blocked) {
    if (b.possible_lost_wakeup) {
      GVFS_WARN("sim") << "lockdep: process '" << b.process << "' stuck on '"
                       << b.signal
                       << "' which was notified with no waiter present "
                          "(possible lost wakeup)";
    }
  }
#endif
  for (auto& p : procs_) {
    if (p->state_ == Process::State::kBlocked || p->state_ == Process::State::kCreated) {
      GVFS_WARN("sim") << "killing process '" << p->name() << "' blocked at end of run";
      p->killed_ = true;
      current_ = p.get();  // unwinding RAII cleanup runs on behalf of `p`
      p->cv_.notify_one();
      kernel_cv_.wait(lk, [&] { return p->state_ == Process::State::kDone; });
      current_ = nullptr;
    }
  }
  reap_locked(lk);
  running_ = false;
  return now_;
}

bool QuiescenceReport::names_process(const std::string& name) const {
  for (const auto& b : blocked) {
    if (b.process == name) return true;
  }
  for (const auto& cycle : cycles) {
    if (std::find(cycle.begin(), cycle.end(), name) != cycle.end()) return true;
  }
  return false;
}

std::string QuiescenceReport::to_string() const {
  std::string out;
  for (const auto& b : blocked) {
    out += "blocked: " + b.process + " on " + b.signal;
    if (b.possible_lost_wakeup) out += " (possible lost wakeup)";
    out += "\n";
  }
  for (const auto& cycle : cycles) {
    out += "deadlock cycle:";
    for (const std::string& n : cycle) out += " " + n;
    out += "\n";
  }
  return out;
}

std::string SimKernel::failed_names_joined() const {
  std::string out;
  for (const std::string& n : failed_names_) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

SimTime SimKernel::run_process(std::string name, ProcessBody body) {
  spawn(std::move(name), std::move(body));
  return run();
}

}  // namespace gvfs::sim
