#include "sim/kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.h"

namespace gvfs::sim {

// ---------------------------------------------------------------- Process --

void Process::block_() {
  state_ = State::kBlocked;
  fiber_->yield();
  // The scheduler set state_ back to kRunning (or killed_) before resuming.
  if (killed_) throw ProcessKilled{};
}

void Process::delay(SimDuration d) {
  assert(d >= 0 && "negative delay");
  kernel_.schedule_(kernel_.now_ + d, this);
  block_();
}

void Process::delay_until(SimTime t) {
  kernel_.schedule_(std::max(t, kernel_.now_), this);
  block_();
}

SimTime Process::now() const { return kernel_.now_; }

void Process::fiber_main_(void* arg) {
  auto* p = static_cast<Process*>(arg);
  try {
    p->body_(*p);
  } catch (const ProcessKilled&) {
    // normal shutdown path
  } catch (...) {
    p->failed_ = true;
    GVFS_ERROR("sim") << "process '" << p->name() << "' threw";
  }
  p->body_ = nullptr;  // release the closure's captures eagerly
  if (p->failed_) {
    ++p->kernel_.failed_;
    p->kernel_.failed_names_.push_back(p->name_);
  }
  p->state_ = State::kDone;
}

// ----------------------------------------------------------------- Signal --

Signal::Signal(SimKernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  kernel_.register_signal_(this);
}

Signal::~Signal() { kernel_.unregister_signal_(this); }

void Signal::compact_() {
  if (wait_head_ == waiters_.size()) {
    waiters_.clear();
    wait_head_ = 0;
  } else if (wait_head_ > 64 && wait_head_ * 2 > waiters_.size()) {
    waiters_.erase(waiters_.begin(),
                   waiters_.begin() + static_cast<std::ptrdiff_t>(wait_head_));
    wait_head_ = 0;
  }
}

void Signal::notify_all() {
  if (no_waiters_()) ++missed_notifies_;
  for (std::size_t i = wait_head_; i < waiters_.size(); ++i) {
    kernel_.schedule_(kernel_.now_, waiters_[i]);
  }
  waiters_.clear();
  wait_head_ = 0;
}

bool Signal::notify_one() {
  if (no_waiters_()) {
    ++missed_notifies_;
    return false;
  }
  Process* w = waiters_[wait_head_++];
  compact_();
  kernel_.schedule_(kernel_.now_, w);
  return true;
}

void Signal::add_holder() {
  if (kernel_.current_ != nullptr) holders_.push_back(kernel_.current_);
}

void Signal::remove_holder() {
  if (kernel_.current_ == nullptr) return;
  auto it = std::find(holders_.begin(), holders_.end(), kernel_.current_);
  if (it != holders_.end()) holders_.erase(it);
}

void Process::wait(Signal& s) {
  s.compact_();
  s.waiters_.push_back(this);
  block_();
}

// -------------------------------------------------------------- SimKernel --

SimKernel::SimKernel() {
  // Arena-style wakeup storage: pre-reserve the heap's backing vector so
  // steady-state scheduling never touches the allocator (priority_queue
  // keeps the reserved capacity it is move-constructed from).
  std::vector<Wakeup> storage;
  storage.reserve(1024);
  queue_ = decltype(queue_)(std::greater<>{}, std::move(storage));
}

SimKernel::~SimKernel() {
  // Kill anything still alive so its fiber unwinds (RAII cleanup) and its
  // stack returns to the pool. Matches the old engine's destructor: no
  // current_ attribution, so holder annotations released during this
  // teardown are no-ops.
  for (auto& p : procs_) {
    if (p->state_ != Process::State::kDone) {
      kill_process_(p.get(), /*as_current=*/false);
    }
  }
}

Process& SimKernel::spawn(std::string name, ProcessBody body, SimDuration start_after) {
  auto proc = std::unique_ptr<Process>(new Process(*this, std::move(name)));
  Process* p = proc.get();
  p->body_ = std::move(body);
  schedule_(now_ + start_after, p);
  procs_.push_back(std::move(proc));
  return *p;
}

void SimKernel::schedule_(SimTime t, Process* p) {
  queue_.push(Wakeup{t, seq_++, p});
}

void SimKernel::resume_process_(Process* p) {
  p->state_ = Process::State::kRunning;
  Process* prev = current_;
  current_ = p;
  if (!p->fiber_.has_value()) {
    p->fiber_.emplace(stacks_, main_ctx_, &Process::fiber_main_, p);
  }
  p->fiber_->resume();
  current_ = prev;
}

void SimKernel::kill_process_(Process* p, bool as_current) {
  p->killed_ = true;
  if (p->state_ == Process::State::kCreated || !p->fiber_.has_value()) {
    // Never dispatched: the body never ran, nothing to unwind.
    p->body_ = nullptr;
    p->state_ = Process::State::kDone;
    return;
  }
  // Blocked: resume the fiber; block_() sees killed_ and throws
  // ProcessKilled, unwinding the body's RAII cleanup.
  if (as_current) {
    resume_process_(p);
  } else {
    p->state_ = Process::State::kRunning;
    p->fiber_->resume();
  }
  assert(p->state_ == Process::State::kDone && "killed process did not finish");
}

void SimKernel::register_signal_(Signal* s) {
  s->reg_prev_ = signals_tail_;
  s->reg_next_ = nullptr;
  if (signals_tail_ != nullptr) {
    signals_tail_->reg_next_ = s;
  } else {
    signals_head_ = s;
  }
  signals_tail_ = s;
}

void SimKernel::unregister_signal_(Signal* s) {
  if (s->reg_prev_ != nullptr) {
    s->reg_prev_->reg_next_ = s->reg_next_;
  } else {
    signals_head_ = s->reg_next_;
  }
  if (s->reg_next_ != nullptr) {
    s->reg_next_->reg_prev_ = s->reg_prev_;
  } else {
    signals_tail_ = s->reg_prev_;
  }
  s->reg_prev_ = s->reg_next_ = nullptr;
}

QuiescenceReport SimKernel::analyze_quiescence_() const {
  QuiescenceReport report;
  // Wait-for edges: a blocked waiter on signal S waits for every process
  // currently annotated as holding S (hold-and-wait). Registration order of
  // signals and FIFO order of wait lists keep the report deterministic.
  std::vector<Process*> nodes;
  std::vector<std::vector<std::size_t>> out;
  auto node_index = [&](Process* p) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == p) return i;
    }
    nodes.push_back(p);
    out.emplace_back();
    return nodes.size() - 1;
  };
  // Resolve every edge target to a node index up front: node_index can grow
  // `out`, and growing it mid-DFS would invalidate the adjacency list the
  // DFS is iterating. After this pass the graph is frozen.
  for (const Signal* s = signals_head_; s != nullptr; s = s->reg_next_) {
    for (std::size_t i = s->wait_head_; i < s->waiters_.size(); ++i) {
      Process* w = s->waiters_[i];
      if (w->state_ != Process::State::kBlocked) continue;
      report.blocked.push_back({w->name_, s->name_, s->missed_notifies_ > 0});
      std::size_t wi = node_index(w);
      for (Process* h : s->holders_) {
        if (h != w && h->state_ == Process::State::kBlocked) {
          std::size_t hi = node_index(h);
          out[wi].push_back(hi);
        }
      }
    }
  }
  // Cycle detection: colored DFS over the now-immutable wait-for graph.
  // Every node has at most a handful of edges, so the quadratic node lookup
  // above is fine at quiescence scale.
  enum class Color { kWhite, kGrey, kBlack };
  std::vector<Color> color(nodes.size(), Color::kWhite);
  std::vector<Process*> stack;
  std::function<void(std::size_t)> dfs = [&](std::size_t v) {
    color[v] = Color::kGrey;
    stack.push_back(nodes[v]);
    for (std::size_t ti : out[v]) {
      if (color[ti] == Color::kGrey) {
        // Found a back edge: the cycle is the stack suffix starting at ti.
        auto it = std::find(stack.begin(), stack.end(), nodes[ti]);
        std::vector<std::string> cycle;
        for (; it != stack.end(); ++it) cycle.push_back((*it)->name_);
        report.cycles.push_back(std::move(cycle));
      } else if (color[ti] == Color::kWhite) {
        dfs(ti);
      }
    }
    stack.pop_back();
    color[v] = Color::kBlack;
  };
  for (std::size_t v = 0; v < nodes.size(); ++v) {
    if (color[v] == Color::kWhite) dfs(v);
  }
  return report;
}

SimTime SimKernel::run() {
  assert(!running_ && "SimKernel::run is not reentrant");
  running_ = true;
  while (!queue_.empty()) {
    Wakeup w = queue_.top();
    queue_.pop();
    if (w.proc->state_ == Process::State::kDone) continue;
    assert(w.time >= now_ && "time went backwards");
    now_ = w.time;
    if (tracer_) tracer_(w.time, w.seq, *w.proc);
    resume_process_(w.proc);
  }
  // Event queue drained ("quiescence"): any process still blocked waits on
  // a signal that will never fire. Run the lockdep pass over the wait-for
  // graph first — a hold-and-wait cycle here is a real deadlock, not an
  // idle server — then kill the stragglers so their fibers unwind.
  quiescence_ = analyze_quiescence_();
  for (const auto& cycle : quiescence_.cycles) {
    std::string names;
    for (const std::string& n : cycle) {
      if (!names.empty()) names += " -> ";
      names += n;
    }
    GVFS_ERROR("sim") << "lockdep: hold-and-wait deadlock cycle: " << names;
  }
#ifdef GVFS_DEADLOCK_CHECK
  for (const auto& b : quiescence_.blocked) {
    if (b.possible_lost_wakeup) {
      GVFS_WARN("sim") << "lockdep: process '" << b.process << "' stuck on '"
                       << b.signal
                       << "' which was notified with no waiter present "
                          "(possible lost wakeup)";
    }
  }
#endif
  // Index loop: RAII cleanup in an unwinding process may spawn (growing
  // procs_), which would invalidate iterators.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    Process* p = procs_[i].get();
    if (p->state_ == Process::State::kBlocked || p->state_ == Process::State::kCreated) {
      GVFS_WARN("sim") << "killing process '" << p->name() << "' blocked at end of run";
      // as_current: unwinding RAII cleanup runs on behalf of `p`, so lockdep
      // holder annotations it releases attribute correctly.
      kill_process_(p, /*as_current=*/true);
    }
  }
  running_ = false;
  return now_;
}

bool QuiescenceReport::names_process(const std::string& name) const {
  for (const auto& b : blocked) {
    if (b.process == name) return true;
  }
  for (const auto& cycle : cycles) {
    if (std::find(cycle.begin(), cycle.end(), name) != cycle.end()) return true;
  }
  return false;
}

std::string QuiescenceReport::to_string() const {
  std::string out;
  for (const auto& b : blocked) {
    out += "blocked: " + b.process + " on " + b.signal;
    if (b.possible_lost_wakeup) out += " (possible lost wakeup)";
    out += "\n";
  }
  for (const auto& cycle : cycles) {
    out += "deadlock cycle:";
    for (const std::string& n : cycle) out += " " + n;
    out += "\n";
  }
  return out;
}

std::string SimKernel::failed_names_joined() const {
  std::string out;
  for (const std::string& n : failed_names_) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

SimTime SimKernel::run_process(std::string name, ProcessBody body) {
  spawn(std::move(name), std::move(body));
  return run();
}

}  // namespace gvfs::sim
