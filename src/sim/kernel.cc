#include "sim/kernel.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace gvfs::sim {

// ---------------------------------------------------------------- Process --

void Process::block_(std::unique_lock<std::mutex>& lk) {
  state_ = State::kBlocked;
  kernel_.kernel_cv_.notify_one();
  cv_.wait(lk, [this] { return state_ == State::kRunning || killed_; });
  if (killed_) throw ProcessKilled{};
}

void Process::delay(SimDuration d) {
  assert(d >= 0 && "negative delay");
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  kernel_.schedule_locked(kernel_.now_ + d, this);
  block_(lk);
}

void Process::delay_until(SimTime t) {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  kernel_.schedule_locked(std::max(t, kernel_.now_), this);
  block_(lk);
}

SimTime Process::now() const { return kernel_.now_; }

// ----------------------------------------------------------------- Signal --

void Signal::notify_all() {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  for (Process* w : waiters_) kernel_.schedule_locked(kernel_.now_, w);
  waiters_.clear();
}

bool Signal::notify_one() {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  if (waiters_.empty()) return false;
  Process* w = waiters_.front();
  waiters_.erase(waiters_.begin());
  kernel_.schedule_locked(kernel_.now_, w);
  return true;
}

void Process::wait(Signal& s) {
  std::unique_lock<std::mutex> lk(kernel_.mu_);
  s.waiters_.push_back(this);
  block_(lk);
}

// -------------------------------------------------------------- SimKernel --

SimKernel::~SimKernel() {
  std::unique_lock<std::mutex> lk(mu_);
  // Kill anything still alive so its thread unwinds and can be joined.
  for (auto& p : procs_) {
    if (p->state_ != Process::State::kDone) {
      p->killed_ = true;
      p->cv_.notify_one();
    }
  }
  for (auto& p : procs_) {
    kernel_cv_.wait(lk, [&] { return p->state_ == Process::State::kDone; });
  }
  reap_locked(lk);
}

Process& SimKernel::spawn(std::string name, ProcessBody body, SimDuration start_after) {
  std::unique_lock<std::mutex> lk(mu_);
  auto proc = std::unique_ptr<Process>(new Process(*this, std::move(name)));
  Process* p = proc.get();
  p->thread_ = std::thread([this, p, body = std::move(body)]() mutable {
    {
      std::unique_lock<std::mutex> tlk(mu_);
      p->cv_.wait(tlk, [p] { return p->state_ == Process::State::kRunning || p->killed_; });
      if (p->killed_) {
        p->state_ = Process::State::kDone;
        done_unjoined_.push_back(p);
        kernel_cv_.notify_one();
        return;
      }
    }
    try {
      body(*p);
    } catch (const ProcessKilled&) {
      // normal shutdown path
    } catch (...) {
      p->failed_ = true;
      GVFS_ERROR("sim") << "process '" << p->name() << "' threw";
    }
    std::unique_lock<std::mutex> tlk(mu_);
    if (p->failed_) {
      ++failed_;
      failed_names_.push_back(p->name());
    }
    p->state_ = Process::State::kDone;
    done_unjoined_.push_back(p);
    kernel_cv_.notify_one();
  });
  schedule_locked(now_ + start_after, p);
  procs_.push_back(std::move(proc));
  return *p;
}

void SimKernel::schedule_locked(SimTime t, Process* p) {
  queue_.push(Wakeup{t, seq_++, p});
}

void SimKernel::resume_and_wait_locked(std::unique_lock<std::mutex>& lk, Process* p) {
  p->state_ = Process::State::kRunning;
  p->cv_.notify_one();
  kernel_cv_.wait(lk, [p] { return p->state_ != Process::State::kRunning; });
}

void SimKernel::reap_locked(std::unique_lock<std::mutex>&) {
  for (Process* p : done_unjoined_) {
    if (p->thread_.joinable()) p->thread_.join();
  }
  done_unjoined_.clear();
}

SimTime SimKernel::run() {
  std::unique_lock<std::mutex> lk(mu_);
  assert(!running_ && "SimKernel::run is not reentrant");
  running_ = true;
  while (!queue_.empty()) {
    Wakeup w = queue_.top();
    queue_.pop();
    if (w.proc->state_ == Process::State::kDone) continue;
    assert(w.time >= now_ && "time went backwards");
    now_ = w.time;
    resume_and_wait_locked(lk, w.proc);
    reap_locked(lk);
  }
  // Event queue drained: any process still blocked waits on a signal that
  // will never fire. Kill them so their threads unwind.
  for (auto& p : procs_) {
    if (p->state_ == Process::State::kBlocked || p->state_ == Process::State::kCreated) {
      GVFS_WARN("sim") << "killing process '" << p->name() << "' blocked at end of run";
      p->killed_ = true;
      p->cv_.notify_one();
      kernel_cv_.wait(lk, [&] { return p->state_ == Process::State::kDone; });
    }
  }
  reap_locked(lk);
  running_ = false;
  return now_;
}

std::string SimKernel::failed_names_joined() const {
  std::string out;
  for (const std::string& n : failed_names_) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

SimTime SimKernel::run_process(std::string name, ProcessBody body) {
  spawn(std::move(name), std::move(body));
  return run();
}

}  // namespace gvfs::sim
