// Timed resource models layered on the simulation kernel: network links,
// disks, and a counting semaphore. All charging is done by blocking the
// calling process, so contention between concurrent processes (e.g. eight
// parallel cloning clients sharing one WAN link and one image-server disk)
// falls out of the queueing discipline.
#pragma once

#include <string>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/kernel.h"

namespace gvfs::sim {

class FaultInjector;

// A point-to-point network link: fixed one-way propagation latency plus a
// bandwidth pipe shared by all concurrent senders. Serialization is modeled
// as chunked FIFO reservation: each message is split into `chunk_bytes`
// units that reserve the pipe in arrival order, which interleaves concurrent
// transfers round-robin — a good approximation of per-flow fair sharing
// under TCP. `per_message_overhead` charges fixed protocol cost (e.g. SSH
// record framing + syscall path) per message.
struct LinkConfig {
  SimDuration latency = 0;
  double bytes_per_sec = 100.0 * 1_MiB;
  u64 chunk_bytes = 64_KiB;
  SimDuration per_message_overhead = 0;
};

class Link {
 public:
  Link(SimKernel& kernel, std::string name, LinkConfig cfg)
      : kernel_(kernel), name_(std::move(name)), cfg_(cfg) {}

  // Block `p` for the full time to push `bytes` through the pipe and across
  // the propagation delay (synchronous message send).
  void transmit(Process& p, u64 bytes) { transmit_ex(p, bytes, true); }

  // As transmit(), optionally skipping the propagation delay — used by
  // pipelined RPC batches where in-flight messages overlap the RTT.
  void transmit_ex(Process& p, u64 bytes, bool propagate);

  // Attach a fault injector: each transmitted message may pick up a sampled
  // latency spike (faults.h). Null (the default) costs nothing.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  [[nodiscard]] const LinkConfig& config() const { return cfg_; }
  [[nodiscard]] u64 bytes_sent() const { return bytes_sent_.value(); }
  [[nodiscard]] u64 messages() const { return messages_.value(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset_stats() {
    bytes_sent_.reset();
    messages_.reset();
  }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "bytes_sent", &bytes_sent_);
    r.register_counter(prefix + "messages", &messages_);
  }

 private:
  SimKernel& kernel_;
  std::string name_;
  LinkConfig cfg_;
  FaultInjector* faults_ = nullptr;
  SimTime pipe_free_ = 0;  // next time the serialization pipe is idle
  metrics::Counter bytes_sent_;
  metrics::Counter messages_;
};

// Disk access locality hint: sequential transfers amortize positioning.
enum class Locality { kRandom, kSequential };

// A single-spindle disk: positioning time plus media transfer, FIFO-queued.
struct DiskConfig {
  SimDuration seek = from_millis(9.0);        // average positioning (random)
  SimDuration seq_overhead = from_millis(0.1);  // per-op cost when sequential
  double bytes_per_sec = 35.0 * 1_MiB;
};

class DiskModel {
 public:
  DiskModel(SimKernel& kernel, std::string name, DiskConfig cfg)
      : kernel_(kernel), name_(std::move(name)), cfg_(cfg) {}

  // Block `p` for one disk operation of `bytes` (read or write — the model
  // is symmetric).
  void access(Process& p, u64 bytes, Locality locality);

  [[nodiscard]] u64 ops() const { return ops_.value(); }
  [[nodiscard]] u64 bytes_moved() const { return bytes_moved_.value(); }
  [[nodiscard]] const DiskConfig& config() const { return cfg_; }
  void reset_stats() {
    ops_.reset();
    bytes_moved_.reset();
  }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "ops", &ops_);
    r.register_counter(prefix + "bytes_moved", &bytes_moved_);
  }

 private:
  SimKernel& kernel_;
  std::string name_;
  DiskConfig cfg_;
  SimTime free_ = 0;
  metrics::Counter ops_;
  metrics::Counter bytes_moved_;
};

// Counting semaphore (e.g. bounds concurrent nfsd service threads). Permit
// ownership is annotated on the underlying signal so the kernel's lockdep
// pass can walk hold-and-wait cycles through blocked permit holders; the
// annotation assumes the releasing process is the one that acquired (true
// for every RAII/scoped use in the tree).
class Semaphore {
 public:
  Semaphore(SimKernel& kernel, int permits, std::string name = "semaphore")
      : avail_(permits), sig_(kernel, std::move(name)) {}

  void acquire(Process& p) {
    while (avail_ == 0) p.wait(sig_);
    --avail_;
    sig_.add_holder();
  }
  void release() {
    sig_.remove_holder();
    ++avail_;
    sig_.notify_one();
  }
  [[nodiscard]] int available() const { return avail_; }

 private:
  int avail_;
  Signal sig_;
};

// A pool of `n` identical CPUs: run() blocks the process for `work` of
// compute once a CPU is free (models e.g. concurrent gzip jobs on a
// dual-processor image server).
class CpuPool {
 public:
  CpuPool(SimKernel& kernel, int cpus) : sem_(kernel, cpus, "cpu-pool") {}

  void run(Process& p, SimDuration work) {
    sem_.acquire(p);
    p.delay(work);
    sem_.release();
  }

 private:
  Semaphore sem_;
};

// RAII permit for Semaphore.
class ScopedPermit {
 public:
  ScopedPermit(Process& p, Semaphore& sem) : sem_(sem) { sem_.acquire(p); }
  ~ScopedPermit() { sem_.release(); }
  ScopedPermit(const ScopedPermit&) = delete;
  ScopedPermit& operator=(const ScopedPermit&) = delete;

 private:
  Semaphore& sem_;
};

}  // namespace gvfs::sim
