// A view of another FsSession rooted at a path prefix — how the Local
// scenario exposes the image directory under the same mount-relative paths
// that NFS sessions use, so experiment code is scenario-agnostic.
#pragma once

#include <string>
#include <utility>

#include "common/strings.h"
#include "vfs/fs_session.h"

namespace gvfs::vfs {

class PrefixSession final : public FsSession {
 public:
  PrefixSession(FsSession& inner, std::string prefix)
      : inner_(inner), prefix_(std::move(prefix)) {}

  Result<Attr> stat(sim::Process& p, const std::string& path) override {
    return inner_.stat(p, abs_(path));
  }
  Result<blob::BlobRef> read(sim::Process& p, const std::string& path, u64 offset,
                             u64 len) override {
    return inner_.read(p, abs_(path), offset, len);
  }
  Status write(sim::Process& p, const std::string& path, u64 offset,
               blob::BlobRef data) override {
    return inner_.write(p, abs_(path), offset, std::move(data));
  }
  Status create(sim::Process& p, const std::string& path) override {
    return inner_.create(p, abs_(path));
  }
  Status mkdirs(sim::Process& p, const std::string& path) override {
    return inner_.mkdirs(p, abs_(path));
  }
  Status remove(sim::Process& p, const std::string& path) override {
    return inner_.remove(p, abs_(path));
  }
  Status truncate(sim::Process& p, const std::string& path, u64 size) override {
    return inner_.truncate(p, abs_(path), size);
  }
  Status symlink(sim::Process& p, const std::string& link_path,
                 const std::string& target) override {
    return inner_.symlink(p, abs_(link_path), target);
  }
  Result<std::vector<DirEntry>> list(sim::Process& p, const std::string& path) override {
    return inner_.list(p, abs_(path));
  }
  Status flush(sim::Process& p) override { return inner_.flush(p); }

 private:
  [[nodiscard]] std::string abs_(const std::string& path) const {
    return join_path(prefix_, path.empty() || path[0] != '/' ? path : path.substr(1));
  }

  FsSession& inner_;
  std::string prefix_;
};

}  // namespace gvfs::vfs
