// The "system call" surface that VM monitors and application workloads
// program against — implemented by LocalFsSession (VM state on local disk)
// and nfs::NfsClient (VM state on an NFS/GVFS mount). Paths are relative to
// the session's root (the mount point).
#pragma once

#include <string>
#include <vector>

#include "blob/blob.h"
#include "common/status.h"
#include "common/strings.h"
#include "sim/kernel.h"
#include "vfs/vfs.h"

namespace gvfs::vfs {

class FsSession {
 public:
  virtual ~FsSession() = default;

  virtual Result<Attr> stat(sim::Process& p, const std::string& path) = 0;

  // Read [offset, offset+len) clamped to EOF; returns the (possibly shorter)
  // data as a lazy blob.
  virtual Result<blob::BlobRef> read(sim::Process& p, const std::string& path,
                                     u64 offset, u64 len) = 0;

  // Write blob content at offset (file must exist).
  virtual Status write(sim::Process& p, const std::string& path, u64 offset,
                       blob::BlobRef data) = 0;

  virtual Status create(sim::Process& p, const std::string& path) = 0;
  virtual Status mkdirs(sim::Process& p, const std::string& path) = 0;
  virtual Status remove(sim::Process& p, const std::string& path) = 0;
  virtual Status truncate(sim::Process& p, const std::string& path, u64 size) = 0;
  virtual Status symlink(sim::Process& p, const std::string& link_path,
                         const std::string& target) = 0;

  // Hard link an existing file at a second path.
  virtual Status hard_link(sim::Process& p, const std::string& existing,
                           const std::string& link_path) {
    (void)p;
    (void)existing;
    (void)link_path;
    return err(ErrCode::kNotSupported, "hard links");
  }
  virtual Result<std::vector<DirEntry>> list(sim::Process& p,
                                             const std::string& path) = 0;

  // Push staged dirty data to the backing store (close/fsync semantics).
  virtual Status flush(sim::Process& p) = 0;

  // Convenience: read the whole file.
  Result<blob::BlobRef> read_all(sim::Process& p, const std::string& path) {
    GVFS_ASSIGN_OR_RETURN(Attr a, stat(p, path));
    return read(p, path, 0, a.size);
  }

  // Convenience: create-or-truncate (making parent directories) then write
  // the whole content.
  Status put(sim::Process& p, const std::string& path, blob::BlobRef data) {
    if (!stat(p, path).is_ok()) {
      GVFS_RETURN_IF_ERROR(mkdirs(p, path_dirname(path)));
      GVFS_RETURN_IF_ERROR(create(p, path));
    } else {
      GVFS_RETURN_IF_ERROR(truncate(p, path, 0));
    }
    if (!data || data->size() == 0) return Status::ok();
    return write(p, path, 0, std::move(data));
  }
};

}  // namespace gvfs::vfs
