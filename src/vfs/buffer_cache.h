// Kernel buffer/page cache model: a capacity-bounded LRU of fixed-size pages
// holding lazy data references. Shared by the local filesystem session and
// the NFS client — the paper's "memory file system buffer" whose limited
// capacity and write-through behaviour over WAN motivates the proxy disk
// cache (§1, §3.2.1).
//
// Dirty pages model kernel write staging; when a dirty page is evicted (or
// the owner flushes) a writeback callback pushes it to the backing store,
// charging whatever time that store costs.
#pragma once

#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blob/blob.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/types.h"
#include "sim/kernel.h"

namespace gvfs::vfs {

class BufferCache {
 public:
  // `file` is an owner-chosen file key (inode number / handle hash).
  using WritebackFn =
      std::function<void(sim::Process& p, u64 file, u64 page_index, const blob::BlobRef& data)>;

  BufferCache(u64 capacity_bytes, u32 page_size);

  [[nodiscard]] u32 page_size() const { return page_size_; }
  [[nodiscard]] u64 capacity_pages() const { return capacity_pages_; }

  void set_writeback(WritebackFn fn) { writeback_ = std::move(fn); }

  // Returns the cached page data (page-sized, or shorter at EOF) and
  // refreshes LRU position; nullopt on miss.
  std::optional<blob::BlobRef> lookup(u64 file, u64 page_index);

  // Insert/replace a page. Evicts LRU pages as needed (dirty evictions call
  // the writeback function with `p`).
  void insert(sim::Process& p, u64 file, u64 page_index, blob::BlobRef data, bool dirty);

  // Mark an existing page clean (after an explicit writeback).
  void mark_clean(u64 file, u64 page_index);

  // Write back every dirty page of `file` (all files if file == 0) in page
  // order, then mark clean. Returns number of pages written.
  u64 flush(sim::Process& p, u64 file = 0);

  // Drop all pages of a file (cache invalidation on close/reopen); dirty
  // pages are written back first.
  void invalidate_file(sim::Process& p, u64 file);

  // Drop all pages of a file WITHOUT writeback (truncate semantics: staged
  // data past the truncation point must not be written back).
  void discard_file(u64 file);

  // File keys that currently have dirty pages.
  [[nodiscard]] std::vector<u64> dirty_files() const;

  // Drop everything without writeback (unmount of a read-only session /
  // experiment reset to a cold state).
  void drop_all();

  // Sorted (page_index, data) list of dirty pages of `file` — used by the
  // NFS client to coalesce staged pages into wsize WRITE runs.
  [[nodiscard]] std::vector<std::pair<u64, blob::BlobRef>> dirty_pages_of(u64 file) const;

  // Peek without touching LRU order or stats.
  [[nodiscard]] bool contains(u64 file, u64 page_index) const {
    return map_.count(Key{file, page_index}) != 0;
  }

  [[nodiscard]] u64 hits() const { return hits_.value(); }
  [[nodiscard]] u64 misses() const { return misses_.value(); }
  [[nodiscard]] u64 evictions() const { return evictions_.value(); }
  [[nodiscard]] u64 dirty_pages() const { return dirty_count_.value(); }
  [[nodiscard]] u64 resident_pages() const { return map_.size(); }
  void reset_stats() {
    hits_.reset();
    misses_.reset();
    evictions_.reset();
  }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "hits", &hits_);
    r.register_counter(prefix + "misses", &misses_);
    r.register_counter(prefix + "evictions", &evictions_);
    r.register_gauge(prefix + "dirty_pages", &dirty_count_);
  }

 private:
  struct Key {
    u64 file;
    u64 page;
    bool operator==(const Key& o) const { return file == o.file && page == o.page; }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(hash_combine(k.file, k.page));
    }
  };
  struct Entry {
    Key key;
    blob::BlobRef data;
    bool dirty = false;
  };
  using LruList = std::list<Entry>;

  void evict_one_(sim::Process& p);

  u32 page_size_;
  u64 capacity_pages_;
  LruList lru_;  // front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> map_;
  WritebackFn writeback_;
  metrics::Counter hits_;
  metrics::Counter misses_;
  metrics::Counter evictions_;
  metrics::Gauge dirty_count_;
};

}  // namespace gvfs::vfs
