// FsSession over a local disk: MemFs (logical state) + DiskModel (timing) +
// BufferCache (OS page cache). This is the paper's "Local" scenario — the
// reference configuration every other setup is compared against — and also
// the storage layer under NFS servers.
#pragma once

#include <memory>
#include <unordered_map>

#include "sim/resources.h"
#include "vfs/buffer_cache.h"
#include "vfs/fs_session.h"
#include "vfs/memfs.h"

namespace gvfs::vfs {

struct LocalSessionConfig {
  u64 buffer_cache_bytes = 640_MiB;  // pagecache share of a 1 GB machine
  u32 page_size = 4_KiB;
  u64 readahead_bytes = 64_KiB;       // cluster size on miss
  SimDuration meta_op_cost = 50 * kMicrosecond;
};

class LocalFsSession final : public FsSession {
 public:
  // `fs` and `disk` are owned by the caller (the scenario); several sessions
  // may share one disk (contention) but each has its own page cache.
  LocalFsSession(MemFs& fs, sim::DiskModel& disk, LocalSessionConfig cfg = {});

  Result<Attr> stat(sim::Process& p, const std::string& path) override;
  Result<blob::BlobRef> read(sim::Process& p, const std::string& path, u64 offset,
                             u64 len) override;
  Status write(sim::Process& p, const std::string& path, u64 offset,
               blob::BlobRef data) override;
  Status create(sim::Process& p, const std::string& path) override;
  Status mkdirs(sim::Process& p, const std::string& path) override;
  Status remove(sim::Process& p, const std::string& path) override;
  Status truncate(sim::Process& p, const std::string& path, u64 size) override;
  Status symlink(sim::Process& p, const std::string& link_path,
                 const std::string& target) override;
  Status hard_link(sim::Process& p, const std::string& existing,
                   const std::string& link_path) override;
  Result<std::vector<DirEntry>> list(sim::Process& p, const std::string& path) override;
  Status flush(sim::Process& p) override;

  [[nodiscard]] BufferCache& buffer_cache() { return cache_; }
  [[nodiscard]] MemFs& fs() { return fs_; }

  // Drop the page cache (cold-start an experiment).
  void drop_caches() { cache_.drop_all(); }

 private:
  // Fetch one page through the cache, charging disk on miss (with
  // readahead). Returns page data clamped at EOF.
  blob::BlobRef fetch_page_(sim::Process& p, FileId id, u64 file_size, u64 page);

  MemFs& fs_;
  sim::DiskModel& disk_;
  LocalSessionConfig cfg_;
  BufferCache cache_;
  std::unordered_map<FileId, u64> last_page_;  // sequentiality detection
};

}  // namespace gvfs::vfs
