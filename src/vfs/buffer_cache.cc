#include "vfs/buffer_cache.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace gvfs::vfs {

BufferCache::BufferCache(u64 capacity_bytes, u32 page_size)
    : page_size_(page_size),
      capacity_pages_(std::max<u64>(1, capacity_bytes / page_size)) {}

std::optional<blob::BlobRef> BufferCache::lookup(u64 file, u64 page_index) {
  auto it = map_.find(Key{file, page_index});
  if (it == map_.end()) {
    misses_.inc();
    return std::nullopt;
  }
  hits_.inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->data;
}

void BufferCache::insert(sim::Process& p, u64 file, u64 page_index,
                         blob::BlobRef data, bool dirty) {
  Key key{file, page_index};
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (it->second->dirty && !dirty) {
      // A clean refill must never clobber staged (newer) data; keep the
      // dirty page as-is, just refresh recency.
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (dirty && !it->second->dirty) dirty_count_.add(1);
    it->second->data = std::move(data);
    it->second->dirty = dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (map_.size() >= capacity_pages_) evict_one_(p);
  lru_.push_front(Entry{key, std::move(data), dirty});
  map_.emplace(key, lru_.begin());
  if (dirty) dirty_count_.add(1);
}

void BufferCache::evict_one_(sim::Process& p) {
  assert(!lru_.empty());
  Entry& victim = lru_.back();
  if (victim.dirty) {
    if (writeback_) writeback_(p, victim.key.file, victim.key.page, victim.data);
    dirty_count_.sub(1);
  }
  evictions_.inc();
  map_.erase(victim.key);
  lru_.pop_back();
}

void BufferCache::mark_clean(u64 file, u64 page_index) {
  auto it = map_.find(Key{file, page_index});
  if (it != map_.end() && it->second->dirty) {
    it->second->dirty = false;
    dirty_count_.sub(1);
  }
}

u64 BufferCache::flush(sim::Process& p, u64 file) {
  // Collect (file, page) pairs first: writeback may recurse into the cache.
  std::vector<std::pair<Key, blob::BlobRef>> dirty;
  for (const Entry& e : lru_) {
    if (e.dirty && (file == 0 || e.key.file == file)) {
      dirty.emplace_back(e.key, e.data);
    }
  }
  std::sort(dirty.begin(), dirty.end(), [](const auto& a, const auto& b) {
    return a.first.file != b.first.file ? a.first.file < b.first.file
                                        : a.first.page < b.first.page;
  });
  for (auto& [key, data] : dirty) {
    if (writeback_) writeback_(p, key.file, key.page, data);
    mark_clean(key.file, key.page);
  }
  return dirty.size();
}

std::vector<std::pair<u64, blob::BlobRef>> BufferCache::dirty_pages_of(u64 file) const {
  std::vector<std::pair<u64, blob::BlobRef>> out;
  for (const Entry& e : lru_) {
    if (e.dirty && e.key.file == file) out.emplace_back(e.key.page, e.data);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void BufferCache::invalidate_file(sim::Process& p, u64 file) {
  flush(p, file);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file == file) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferCache::discard_file(u64 file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file == file) {
      if (it->dirty) dirty_count_.sub(1);
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<u64> BufferCache::dirty_files() const {
  std::vector<u64> out;
  for (const Entry& e : lru_) {
    if (e.dirty && std::find(out.begin(), out.end(), e.key.file) == out.end()) {
      out.push_back(e.key.file);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BufferCache::drop_all() {
  lru_.clear();
  map_.clear();
  dirty_count_.set(0);
}

}  // namespace gvfs::vfs
