#include "vfs/memfs.h"

#include <algorithm>

namespace gvfs::vfs {

MemFs::MemFs() {
  Inode root;
  root.attr.type = FileType::kDirectory;
  root.attr.mode = 0755;
  root.attr.nlink = 2;
  root.attr.fileid = kRootId;
  inodes_.emplace(kRootId, std::move(root));
}

Result<MemFs::Inode*> MemFs::get_(FileId id) {
  auto it = inodes_.find(id);
  if (it == inodes_.end()) return err(ErrCode::kStale, "no such inode");
  return &it->second;
}

Result<MemFs::Inode*> MemFs::get_dir_(FileId id) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  if (ino->attr.type != FileType::kDirectory) return err(ErrCode::kNotDir);
  return ino;
}

FileId MemFs::alloc_(FileType type, u32 mode, u32 uid, u32 gid) {
  FileId id = next_id_++;
  Inode ino;
  ino.attr.type = type;
  ino.attr.mode = mode;
  ino.attr.uid = uid;
  ino.attr.gid = gid;
  ino.attr.fileid = id;
  ino.attr.nlink = type == FileType::kDirectory ? 2 : 1;
  SimTime t = now_();
  ino.attr.atime = ino.attr.mtime = ino.attr.ctime = t;
  inodes_.emplace(id, std::move(ino));
  return id;
}

void MemFs::touch_(Inode& ino, bool content_changed) {
  SimTime t = now_();
  ino.attr.ctime = t;
  if (content_changed) ino.attr.mtime = t;
}

Result<FileId> MemFs::lookup(FileId dir, const std::string& name) {
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  if (name == ".") return dir;
  auto it = d->children.find(name);
  if (it == d->children.end()) return err(ErrCode::kNoEnt, name);
  return it->second;
}

Result<Attr> MemFs::getattr(FileId id) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  Attr a = ino->attr;
  if (a.type == FileType::kRegular) a.size = ino->content.size();
  return a;
}

Status MemFs::setattr(FileId id, const SetAttr& sa) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  if (sa.set_mode) ino->attr.mode = sa.mode;
  if (sa.set_uid) ino->attr.uid = sa.uid;
  if (sa.set_gid) ino->attr.gid = sa.gid;
  if (sa.set_mtime) ino->attr.mtime = sa.mtime;
  if (sa.set_size) {
    if (ino->attr.type != FileType::kRegular) return err(ErrCode::kIsDir);
    ino->content.truncate(sa.size);
    touch_(*ino, true);
  } else {
    touch_(*ino, false);
  }
  return Status::ok();
}

Result<u32> MemFs::read(FileId id, u64 offset, std::span<u8> out) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  if (ino->attr.type != FileType::kRegular) return err(ErrCode::kIsDir);
  u64 size = ino->content.size();
  if (offset >= size) return u32{0};
  u64 n = std::min<u64>(out.size(), size - offset);
  ino->content.read(offset, out.subspan(0, n));
  ino->attr.atime = now_();
  return static_cast<u32>(n);
}

Result<blob::BlobRef> MemFs::read_ref(FileId id, u64 offset, u64 len) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  if (ino->attr.type != FileType::kRegular) return err(ErrCode::kIsDir);
  u64 size = ino->content.size();
  u64 n = offset >= size ? 0 : std::min<u64>(len, size - offset);
  ino->attr.atime = now_();
  if (n == 0) return blob::BlobRef(blob::make_zero(0));
  // Range slice: shares only the overlapping extents (stays immutable —
  // later writes replace map entries, never mutate blobs).
  return ino->content.read_slice(offset, n);
}

Status MemFs::write(FileId id, u64 offset, std::span<const u8> data) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  if (ino->attr.type != FileType::kRegular) return err(ErrCode::kIsDir);
  ino->content.write(offset, data);
  touch_(*ino, true);
  return Status::ok();
}

Status MemFs::write_blob(FileId id, u64 offset, blob::BlobRef data, u64 src_off,
                         u64 len) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  if (ino->attr.type != FileType::kRegular) return err(ErrCode::kIsDir);
  ino->content.write_blob(offset, std::move(data), src_off, len);
  touch_(*ino, true);
  return Status::ok();
}

Result<FileId> MemFs::create(FileId dir, const std::string& name, u32 mode,
                             u32 uid, u32 gid) {
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  if (name.empty() || name.size() > 255) return err(ErrCode::kNameTooLong);
  if (d->children.count(name) != 0) return err(ErrCode::kExist, name);
  FileId id = alloc_(FileType::kRegular, mode, uid, gid);
  // alloc_ may rehash inodes_; re-fetch the directory.
  d = get_dir_(dir).value();
  d->children.emplace(name, id);
  touch_(*d, true);
  return id;
}

Result<FileId> MemFs::mkdir(FileId dir, const std::string& name, u32 mode,
                            u32 uid, u32 gid) {
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  if (name.empty() || name.size() > 255) return err(ErrCode::kNameTooLong);
  if (d->children.count(name) != 0) return err(ErrCode::kExist, name);
  FileId id = alloc_(FileType::kDirectory, mode, uid, gid);
  d = get_dir_(dir).value();
  d->children.emplace(name, id);
  d->attr.nlink++;
  touch_(*d, true);
  return id;
}

Result<FileId> MemFs::symlink(FileId dir, const std::string& name,
                              const std::string& target) {
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  if (d->children.count(name) != 0) return err(ErrCode::kExist, name);
  FileId id = alloc_(FileType::kSymlink, 0777, 0, 0);
  get_(id).value()->symlink_target = target;
  d = get_dir_(dir).value();
  d->children.emplace(name, id);
  touch_(*d, true);
  return id;
}

Result<std::string> MemFs::readlink(FileId id) {
  GVFS_ASSIGN_OR_RETURN(Inode * ino, get_(id));
  if (ino->attr.type != FileType::kSymlink) return err(ErrCode::kInval);
  return ino->symlink_target;
}

Status MemFs::link(FileId file, FileId dir, const std::string& name) {
  GVFS_ASSIGN_OR_RETURN(Inode * target, get_(file));
  if (target->attr.type == FileType::kDirectory) return err(ErrCode::kIsDir);
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  if (d->children.count(name) != 0) return err(ErrCode::kExist, name);
  d->children.emplace(name, file);
  touch_(*d, true);
  target = get_(file).value();
  target->attr.nlink++;
  touch_(*target, false);
  return Status::ok();
}

Status MemFs::remove(FileId dir, const std::string& name) {
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) return err(ErrCode::kNoEnt, name);
  FileId child_id = it->second;
  GVFS_ASSIGN_OR_RETURN(Inode * child, get_(child_id));
  if (child->attr.type == FileType::kDirectory) return err(ErrCode::kIsDir);
  // Drop this directory entry; the inode survives while hard links remain.
  if (child->attr.nlink > 1) {
    child->attr.nlink--;
    touch_(*child, false);
  } else {
    inodes_.erase(child_id);
  }
  d = get_dir_(dir).value();
  d->children.erase(name);
  touch_(*d, true);
  return Status::ok();
}

Status MemFs::rmdir(FileId dir, const std::string& name) {
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) return err(ErrCode::kNoEnt, name);
  GVFS_ASSIGN_OR_RETURN(Inode * child, get_(it->second));
  if (child->attr.type != FileType::kDirectory) return err(ErrCode::kNotDir);
  if (!child->children.empty()) return err(ErrCode::kNotEmpty, name);
  inodes_.erase(it->second);
  d = get_dir_(dir).value();
  d->children.erase(name);
  d->attr.nlink--;
  touch_(*d, true);
  return Status::ok();
}

Status MemFs::rename(FileId from_dir, const std::string& from_name,
                     FileId to_dir, const std::string& to_name) {
  GVFS_ASSIGN_OR_RETURN(Inode * from, get_dir_(from_dir));
  auto it = from->children.find(from_name);
  if (it == from->children.end()) return err(ErrCode::kNoEnt, from_name);
  FileId moving = it->second;
  GVFS_ASSIGN_OR_RETURN(Inode * to, get_dir_(to_dir));
  // Overwrite semantics: replace an existing regular-file target.
  auto existing = to->children.find(to_name);
  if (existing != to->children.end()) {
    GVFS_ASSIGN_OR_RETURN(Inode * tgt, get_(existing->second));
    if (tgt->attr.type == FileType::kDirectory) return err(ErrCode::kIsDir);
    inodes_.erase(existing->second);
    to = get_dir_(to_dir).value();
    to->children.erase(to_name);
  }
  from = get_dir_(from_dir).value();
  from->children.erase(from_name);
  to = get_dir_(to_dir).value();
  to->children.emplace(to_name, moving);
  touch_(*from, true);
  touch_(*to, true);
  return Status::ok();
}

Result<std::vector<DirEntry>> MemFs::readdir(FileId dir) {
  GVFS_ASSIGN_OR_RETURN(Inode * d, get_dir_(dir));
  std::vector<DirEntry> out;
  out.reserve(d->children.size());
  for (const auto& [name, id] : d->children) {
    auto child = get_(id);
    out.push_back(DirEntry{name, id,
                           child.is_ok() ? (*child)->attr.type : FileType::kRegular});
  }
  return out;
}

Result<const blob::ExtentStore*> MemFs::peek_content(FileId id) const {
  auto it = inodes_.find(id);
  if (it == inodes_.end()) return err(ErrCode::kStale);
  return &it->second.content;
}

u64 MemFs::materialized_bytes() const {
  u64 total = 0;
  // gvfs-lint: allow(unordered-iteration) commutative sum; order cannot escape
  for (const auto& [id, ino] : inodes_) total += ino.content.materialized_bytes();
  return total;
}

}  // namespace gvfs::vfs
