// In-memory filesystem with blob-backed sparse file content. Serves as the
// exported filesystem of image/data servers, the local filesystem of compute
// servers, and the backing store of the proxy file cache. Purely logical —
// timing is charged by whoever performs the I/O (NFS server disk model,
// TimedFs, proxy cache disk).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "blob/extent_store.h"
#include "vfs/vfs.h"

namespace gvfs::vfs {

class MemFs final : public Vfs {
 public:
  MemFs();

  [[nodiscard]] FileId root() const override { return kRootId; }

  Result<FileId> lookup(FileId dir, const std::string& name) override;
  Result<Attr> getattr(FileId id) override;
  Status setattr(FileId id, const SetAttr& sa) override;

  Result<u32> read(FileId id, u64 offset, std::span<u8> out) override;
  Result<blob::BlobRef> read_ref(FileId id, u64 offset, u64 len) override;

  Status write(FileId id, u64 offset, std::span<const u8> data) override;
  Status write_blob(FileId id, u64 offset, blob::BlobRef data, u64 src_off,
                    u64 len) override;

  Result<FileId> create(FileId dir, const std::string& name, u32 mode, u32 uid,
                        u32 gid) override;
  Result<FileId> mkdir(FileId dir, const std::string& name, u32 mode, u32 uid,
                       u32 gid) override;
  Result<FileId> symlink(FileId dir, const std::string& name,
                         const std::string& target) override;
  Result<std::string> readlink(FileId id) override;
  Status link(FileId file, FileId dir, const std::string& name) override;

  Status remove(FileId dir, const std::string& name) override;
  Status rmdir(FileId dir, const std::string& name) override;
  Status rename(FileId from_dir, const std::string& from_name, FileId to_dir,
                const std::string& to_name) override;

  Result<std::vector<DirEntry>> readdir(FileId dir) override;

  // Clock source for timestamps; the scenario wires this to the simulation
  // clock. Defaults to 0 (epoch) which is fine for logic-only tests.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  // Direct access to a file's extent store (observability + zero-copy
  // internals for caches; not part of the Vfs interface).
  Result<const blob::ExtentStore*> peek_content(FileId id) const;

  // Sum of materialized (real) bytes across all files.
  [[nodiscard]] u64 materialized_bytes() const;

  [[nodiscard]] u64 inode_count() const { return inodes_.size(); }

 private:
  static constexpr FileId kRootId = 1;

  struct Inode {
    Attr attr;
    blob::ExtentStore content;                      // regular files
    std::map<std::string, FileId> children;         // directories
    std::string symlink_target;                     // symlinks
  };

  Result<Inode*> get_(FileId id);
  Result<Inode*> get_dir_(FileId id);
  SimTime now_() const { return clock_ ? clock_() : 0; }
  FileId alloc_(FileType type, u32 mode, u32 uid, u32 gid);
  void touch_(Inode& ino, bool content_changed);

  std::unordered_map<FileId, Inode> inodes_;
  FileId next_id_ = kRootId + 1;
  std::function<SimTime()> clock_;
};

}  // namespace gvfs::vfs
