#include "vfs/local_session.h"

#include <algorithm>

#include "common/strings.h"

namespace gvfs::vfs {

LocalFsSession::LocalFsSession(MemFs& fs, sim::DiskModel& disk, LocalSessionConfig cfg)
    : fs_(fs), disk_(disk), cfg_(cfg), cache_(cfg.buffer_cache_bytes, cfg.page_size) {
  cache_.set_writeback([this](sim::Process& p, u64 /*file*/, u64 /*page*/,
                              const blob::BlobRef& data) {
    // Dirty page eviction: one mostly-sequential disk write (the elevator
    // batches neighbouring pages in practice; seq_overhead models that).
    disk_.access(p, data ? data->size() : cfg_.page_size, sim::Locality::kSequential);
  });
}

blob::BlobRef LocalFsSession::fetch_page_(sim::Process& p, FileId id, u64 file_size,
                                          u64 page) {
  if (auto hit = cache_.lookup(id, page)) return *hit;

  // Miss: read a readahead cluster from disk and populate all its pages.
  u64 pages_per_cluster = std::max<u64>(1, cfg_.readahead_bytes / cfg_.page_size);
  u64 cluster_first = page - (page % pages_per_cluster);
  u64 start = cluster_first * cfg_.page_size;
  u64 bytes = std::min<u64>(cfg_.readahead_bytes, file_size > start ? file_size - start : 0);
  if (bytes == 0) bytes = cfg_.page_size;  // EOF page: still one disk op

  auto it = last_page_.find(id);
  sim::Locality loc = (it != last_page_.end() && cluster_first <= it->second + pages_per_cluster &&
                       cluster_first + pages_per_cluster >= it->second)
                          ? sim::Locality::kSequential
                          : sim::Locality::kRandom;
  last_page_[id] = cluster_first;
  disk_.access(p, bytes, loc);

  blob::BlobRef cluster;
  {
    auto r = fs_.read_ref(id, start, bytes);
    cluster = r.is_ok() ? *r : blob::make_zero(bytes);
  }
  blob::BlobRef wanted;
  u64 n_pages = (cluster->size() + cfg_.page_size - 1) / cfg_.page_size;
  for (u64 i = 0; i < std::max<u64>(n_pages, 1); ++i) {
    u64 off = i * cfg_.page_size;
    u64 len = std::min<u64>(cfg_.page_size, cluster->size() > off ? cluster->size() - off : 0);
    blob::BlobRef pg = len > 0
                           ? blob::BlobRef(std::make_shared<blob::SliceBlob>(cluster, off, len))
                           : blob::make_zero(0);
    cache_.insert(p, id, cluster_first + i, pg, /*dirty=*/false);
    if (cluster_first + i == page) wanted = pg;
  }
  if (!wanted) wanted = blob::make_zero(0);
  return wanted;
}

Result<Attr> LocalFsSession::stat(sim::Process& p, const std::string& path) {
  (void)p;  // metadata in dentry/inode caches: negligible time locally
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.resolve(path));
  return fs_.getattr(id);
}

Result<blob::BlobRef> LocalFsSession::read(sim::Process& p, const std::string& path,
                                           u64 offset, u64 len) {
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.resolve(path));
  GVFS_ASSIGN_OR_RETURN(Attr a, fs_.getattr(id));
  if (a.type != FileType::kRegular) return err(ErrCode::kIsDir, path);
  if (offset >= a.size) return blob::BlobRef(blob::make_zero(0));
  len = std::min<u64>(len, a.size - offset);

  // Walk pages through the cache to charge time, then return the
  // authoritative bytes as one contiguous lazy slice.
  u64 first = offset / cfg_.page_size;
  u64 last = (offset + len - 1) / cfg_.page_size;
  for (u64 pg = first; pg <= last; ++pg) fetch_page_(p, id, a.size, pg);
  return fs_.read_ref(id, offset, len);
}

Status LocalFsSession::write(sim::Process& p, const std::string& path, u64 offset,
                             blob::BlobRef data) {
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.resolve(path));
  if (!data || data->size() == 0) return Status::ok();
  u64 len = data->size();
  GVFS_RETURN_IF_ERROR(fs_.write_blob(id, offset, data, 0, len));
  // Stage dirty pages in the buffer cache; disk time charged at flush or
  // eviction (local FS write-behind).
  u64 first = offset / cfg_.page_size;
  u64 last = (offset + len - 1) / cfg_.page_size;
  GVFS_ASSIGN_OR_RETURN(Attr a, fs_.getattr(id));
  for (u64 pg = first; pg <= last; ++pg) {
    u64 pg_off = pg * cfg_.page_size;
    u64 pg_len = std::min<u64>(cfg_.page_size, a.size - pg_off);
    auto r = fs_.read_ref(id, pg_off, pg_len);
    cache_.insert(p, id, pg, r.is_ok() ? *r : blob::make_zero(0), /*dirty=*/true);
  }
  return Status::ok();
}

Status LocalFsSession::create(sim::Process& p, const std::string& path) {
  p.delay(cfg_.meta_op_cost);
  GVFS_ASSIGN_OR_RETURN(FileId dir, fs_.resolve(path_dirname(path)));
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.create(dir, path_basename(path), 0644, 0, 0));
  (void)id;
  return Status::ok();
}

Status LocalFsSession::mkdirs(sim::Process& p, const std::string& path) {
  p.delay(cfg_.meta_op_cost);
  return fs_.mkdirs(path);
}

Status LocalFsSession::remove(sim::Process& p, const std::string& path) {
  p.delay(cfg_.meta_op_cost);
  GVFS_ASSIGN_OR_RETURN(FileId dir, fs_.resolve(path_dirname(path)));
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.lookup(dir, path_basename(path)));
  cache_.invalidate_file(p, id);
  return fs_.remove(dir, path_basename(path));
}

Status LocalFsSession::truncate(sim::Process& p, const std::string& path, u64 size) {
  p.delay(cfg_.meta_op_cost);
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.resolve(path));
  SetAttr sa;
  sa.set_size = true;
  sa.size = size;
  return fs_.setattr(id, sa);
}

Status LocalFsSession::symlink(sim::Process& p, const std::string& link_path,
                               const std::string& target) {
  p.delay(cfg_.meta_op_cost);
  GVFS_ASSIGN_OR_RETURN(FileId dir, fs_.resolve(path_dirname(link_path)));
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.symlink(dir, path_basename(link_path), target));
  (void)id;
  return Status::ok();
}

Status LocalFsSession::hard_link(sim::Process& p, const std::string& existing,
                                 const std::string& link_path) {
  p.delay(cfg_.meta_op_cost);
  GVFS_ASSIGN_OR_RETURN(FileId file, fs_.resolve(existing));
  GVFS_ASSIGN_OR_RETURN(FileId dir, fs_.resolve(path_dirname(link_path)));
  return fs_.link(file, dir, path_basename(link_path));
}

Result<std::vector<DirEntry>> LocalFsSession::list(sim::Process& p,
                                                   const std::string& path) {
  p.delay(cfg_.meta_op_cost);
  GVFS_ASSIGN_OR_RETURN(FileId id, fs_.resolve(path));
  return fs_.readdir(id);
}

Status LocalFsSession::flush(sim::Process& p) {
  cache_.flush(p);
  return Status::ok();
}

}  // namespace gvfs::vfs
