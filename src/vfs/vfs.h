// Virtual filesystem interface backing NFS servers, local scenarios and the
// proxy file cache. MemFs (memfs.h) is the canonical implementation. The
// interface is deliberately NFSv3-shaped (handle-based, stateless) so the
// NFS server maps onto it 1:1.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "blob/blob.h"
#include "common/status.h"
#include "common/types.h"

namespace gvfs::vfs {

using FileId = u64;  // inode number; doubles as the NFS file handle payload

enum class FileType : u32 { kRegular = 1, kDirectory = 2, kSymlink = 5 };

struct Attr {
  FileType type = FileType::kRegular;
  u32 mode = 0644;
  u32 nlink = 1;
  u32 uid = 0;
  u32 gid = 0;
  u64 size = 0;
  SimTime atime = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
  FileId fileid = 0;
};

// Subset of attributes settable via SETATTR; unset fields untouched.
struct SetAttr {
  bool set_mode = false;
  u32 mode = 0;
  bool set_uid = false;
  u32 uid = 0;
  bool set_gid = false;
  u32 gid = 0;
  bool set_size = false;
  u64 size = 0;
  bool set_mtime = false;
  SimTime mtime = 0;
};

struct DirEntry {
  std::string name;
  FileId id = 0;
  FileType type = FileType::kRegular;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  [[nodiscard]] virtual FileId root() const = 0;

  virtual Result<FileId> lookup(FileId dir, const std::string& name) = 0;
  virtual Result<Attr> getattr(FileId id) = 0;
  virtual Status setattr(FileId id, const SetAttr& sa) = 0;

  // Read up to out.size() bytes; returns bytes read (short at EOF).
  virtual Result<u32> read(FileId id, u64 offset, std::span<u8> out) = 0;
  // Zero-copy read: a blob covering min(len, size-offset) bytes.
  virtual Result<blob::BlobRef> read_ref(FileId id, u64 offset, u64 len) = 0;

  virtual Status write(FileId id, u64 offset, std::span<const u8> data) = 0;
  // Zero-copy write (splices the blob in).
  virtual Status write_blob(FileId id, u64 offset, blob::BlobRef data, u64 src_off,
                            u64 len) = 0;

  virtual Result<FileId> create(FileId dir, const std::string& name, u32 mode,
                                u32 uid, u32 gid) = 0;
  virtual Result<FileId> mkdir(FileId dir, const std::string& name, u32 mode,
                               u32 uid, u32 gid) = 0;
  virtual Result<FileId> symlink(FileId dir, const std::string& name,
                                 const std::string& target) = 0;
  virtual Result<std::string> readlink(FileId id) = 0;

  // Hard link: a second directory entry for an existing file (nlink++).
  virtual Status link(FileId file, FileId dir, const std::string& name) {
    (void)file;
    (void)dir;
    (void)name;
    return err(ErrCode::kNotSupported, "hard links");
  }

  virtual Status remove(FileId dir, const std::string& name) = 0;
  virtual Status rmdir(FileId dir, const std::string& name) = 0;
  virtual Status rename(FileId from_dir, const std::string& from_name,
                        FileId to_dir, const std::string& to_name) = 0;

  virtual Result<std::vector<DirEntry>> readdir(FileId dir) = 0;

  // --- Path convenience layer (slash-separated, rooted at root()) ---------
  Result<FileId> resolve(const std::string& path);
  // Creates missing intermediate directories.
  Status mkdirs(const std::string& path);
  // Create-or-replace a regular file whose content is `data`.
  Result<FileId> put_file(const std::string& path, blob::BlobRef data);
  Result<blob::BlobRef> get_file(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path);
};

}  // namespace gvfs::vfs
