#include "vfs/vfs.h"

#include "common/strings.h"

namespace gvfs::vfs {

Result<FileId> Vfs::resolve(const std::string& path) {
  FileId cur = root();
  for (const std::string& part : split(path, '/')) {
    if (part.empty() || part == ".") continue;
    GVFS_ASSIGN_OR_RETURN(FileId next, lookup(cur, part));
    // Follow symlinks one level (sufficient for the VM image layouts used
    // here, where symlinks point at sibling files with absolute paths).
    GVFS_ASSIGN_OR_RETURN(Attr a, getattr(next));
    if (a.type == FileType::kSymlink) {
      GVFS_ASSIGN_OR_RETURN(std::string target, readlink(next));
      GVFS_ASSIGN_OR_RETURN(next, resolve(target));
    }
    cur = next;
  }
  return cur;
}

Status Vfs::mkdirs(const std::string& path) {
  FileId cur = root();
  for (const std::string& part : split(path, '/')) {
    if (part.empty() || part == ".") continue;
    Result<FileId> next = lookup(cur, part);
    if (next.is_ok()) {
      cur = *next;
      continue;
    }
    if (next.code() != ErrCode::kNoEnt) return next.status();
    GVFS_ASSIGN_OR_RETURN(cur, mkdir(cur, part, 0755, 0, 0));
  }
  return Status::ok();
}

Result<FileId> Vfs::put_file(const std::string& path, blob::BlobRef data) {
  std::string dir = path_dirname(path);
  std::string name = path_basename(path);
  GVFS_RETURN_IF_ERROR(mkdirs(dir));
  GVFS_ASSIGN_OR_RETURN(FileId dir_id, resolve(dir));
  Result<FileId> existing = lookup(dir_id, name);
  FileId id;
  if (existing.is_ok()) {
    id = *existing;
    SetAttr sa;
    sa.set_size = true;
    sa.size = 0;
    GVFS_RETURN_IF_ERROR(setattr(id, sa));
  } else {
    GVFS_ASSIGN_OR_RETURN(id, create(dir_id, name, 0644, 0, 0));
  }
  if (data && data->size() > 0) {
    u64 len = data->size();
    GVFS_RETURN_IF_ERROR(write_blob(id, 0, std::move(data), 0, len));
  }
  return id;
}

Result<blob::BlobRef> Vfs::get_file(const std::string& path) {
  GVFS_ASSIGN_OR_RETURN(FileId id, resolve(path));
  GVFS_ASSIGN_OR_RETURN(Attr a, getattr(id));
  if (a.type != FileType::kRegular) return err(ErrCode::kIsDir, path);
  return read_ref(id, 0, a.size);
}

bool Vfs::exists(const std::string& path) { return resolve(path).is_ok(); }

}  // namespace gvfs::vfs
