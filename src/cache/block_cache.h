// Proxy-managed disk cache (§3.2.1, TR-ACIS-04-001): the paper's central
// mechanism. Structured like a set-associative hardware cache: the disk
// holds "file banks" of fixed-size frames; a frame stores one NFS data block
// and its tag. The set index is derived from a hash of the file handle plus
// the block number, so consecutive blocks of a file land in consecutive sets
// of a bank (spatial locality on the cache disk). Supports write-back or
// write-through policies, middleware-driven flush/write-back signals,
// per-proxy sizing/associativity/block size (up to the 32 KB NFS limit), and
// read-only sharing between proxies.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "blob/blob.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/resources.h"

namespace gvfs::cache {

enum class WritePolicy { kWriteBack, kWriteThrough };

struct BlockCacheConfig {
  u64 capacity_bytes = 8_GiB;  // paper §4.1
  u64 block_size = 32_KiB;     // frame payload size (<= NFS limit)
  u32 num_banks = 512;         // paper §4.1
  u32 associativity = 16;      // paper §4.1
  WritePolicy policy = WritePolicy::kWriteBack;
  // Creating a bank file on first touch costs a metadata disk op.
  bool charge_bank_creation = true;
  // Content-addressed dedup: clean blocks with identical bytes (by seeded
  // 64-bit fingerprint) share one resident payload across frames/files;
  // resident_bytes charges the shared copy once and a frame re-charges when
  // a write splits it private (copy-on-write). Default off: the cache is
  // byte-for-byte inert relative to the pre-dedup behavior.
  bool dedup_blocks = false;
  u64 dedup_seed = blob::kDefaultFingerprintSeed;
  // Test seam (like NfsServerConfig::drc_key_bits): the store is keyed on
  // the low `dedup_key_bits` of the fingerprint, but entries keep the full
  // fingerprint and verify it on every hit, so narrowing the key forces
  // collisions without ever aliasing different content.
  u32 dedup_key_bits = 64;
};

// Identifies a cached block: the owning file (by handle key) and the block
// index within it.
struct BlockId {
  u64 file_key = 0;
  u64 block = 0;
  bool operator==(const BlockId& o) const {
    return file_key == o.file_key && block == o.block;
  }
};

class ProxyDiskCache {
 public:
  // Evicted-dirty / write-through callback: push a block upstream.
  using WritebackFn = std::function<Status(sim::Process& p, const BlockId& id,
                                           const blob::BlobRef& data)>;

  ProxyDiskCache(sim::DiskModel& disk, BlockCacheConfig cfg);

  [[nodiscard]] const BlockCacheConfig& config() const { return cfg_; }

  void set_writeback(WritebackFn fn) { writeback_ = std::move(fn); }

  // Look up a block; on hit, charges a cache-disk read and returns the data.
  std::optional<blob::BlobRef> lookup(sim::Process& p, const BlockId& id);

  // Probe without timing or LRU side effects.
  [[nodiscard]] bool contains(const BlockId& id) const;

  // Content-addressed probe: the shared payload whose fingerprint is `fp`
  // (full 64 bits verified even under a narrowed dedup_key_bits) and whose
  // size is `size`, if an identical block is resident under any BlockId.
  // The caller aliases it via insert(); always empty when dedup is off.
  std::optional<blob::BlobRef> lookup_fingerprint(u64 fp, u64 size);

  // Insert (fetch fill or write): charges a cache-disk write; may evict
  // (dirty victims are written back upstream first). Under write-through,
  // dirty inserts are pushed upstream immediately and stored clean.
  Status insert(sim::Process& p, const BlockId& id, blob::BlobRef data, bool dirty);

  // Merge new bytes into a cached block at a byte range (partial-block
  // write). The block must be present; returns the merged block.
  Result<blob::BlobRef> merge(sim::Process& p, const BlockId& id, u64 offset_in_block,
                              const blob::BlobRef& data);

  // Middleware consistency signals (§3.2.1): write back all dirty blocks
  // (keeping them cached clean), or drop everything.
  Status write_back_all(sim::Process& p);
  // Write back only one file's dirty blocks (honest COMMIT: O(file-resident)
  // walk of the per-file frame list, blocks stay cached clean).
  Status write_back_file(sim::Process& p, u64 file_key);
  Status flush_and_invalidate(sim::Process& p);
  void invalidate_all();  // drop without writeback (read-only session end)
  void invalidate_file(u64 file_key);

  // ---- Observability -------------------------------------------------------
  [[nodiscard]] u64 hits() const { return hits_.value(); }
  [[nodiscard]] u64 misses() const { return misses_.value(); }
  [[nodiscard]] u64 evictions() const { return evictions_.value(); }
  [[nodiscard]] u64 writebacks() const { return writebacks_.value(); }
  [[nodiscard]] u64 dirty_blocks() const { return dirty_.value(); }
  [[nodiscard]] u64 resident_blocks() const { return resident_.value(); }
  [[nodiscard]] u64 resident_bytes() const { return resident_bytes_.value(); }
  // Number of resident blocks belonging to one file (O(1) map lookup +
  // O(file-resident) walk; used by tests and observability).
  [[nodiscard]] u64 file_resident_blocks(u64 file_key) const;
  [[nodiscard]] u64 banks_created() const { return banks_created_.value(); }
  [[nodiscard]] u64 dedup_hits() const { return dedup_hits_.value(); }
  [[nodiscard]] u64 dedup_aliases() const { return dedup_aliases_.value(); }
  [[nodiscard]] u64 dedup_bytes_saved() const { return dedup_bytes_saved_.value(); }
  [[nodiscard]] u64 dedup_collisions() const { return dedup_collisions_.value(); }
  [[nodiscard]] u64 dedup_entries() const { return dedup_.size(); }
  [[nodiscard]] u32 sets() const { return num_sets_; }
  void reset_stats() {
    hits_.reset();
    misses_.reset();
    evictions_.reset();
    writebacks_.reset();
  }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "hits", &hits_);
    r.register_counter(prefix + "misses", &misses_);
    r.register_counter(prefix + "evictions", &evictions_);
    r.register_counter(prefix + "writebacks", &writebacks_);
    r.register_counter(prefix + "banks_created", &banks_created_);
    r.register_gauge(prefix + "dirty_blocks", &dirty_);
    r.register_gauge(prefix + "resident_blocks", &resident_);
    r.register_gauge(prefix + "resident_bytes", &resident_bytes_);
    if (cfg_.dedup_blocks) {
      r.register_counter(prefix + "dedup_hits", &dedup_hits_);
      r.register_counter(prefix + "dedup_aliases", &dedup_aliases_);
      r.register_counter(prefix + "dedup_bytes_saved", &dedup_bytes_saved_);
      r.register_counter(prefix + "dedup_collisions", &dedup_collisions_);
    }
  }

 private:
  static constexpr u32 kNil = 0xffffffffu;

  struct Frame {
    bool valid = false;
    bool dirty = false;
    // Claimed by an in-flight insert whose eviction / frame write is blocked
    // on the cache disk: victim scans and concurrent inserts skip it.
    bool busy = false;
    BlockId id;
    blob::BlobRef data;
    // Dedup state: `shared` frames hold a payload owned by the dedup store
    // (accounted once across all aliases); `fp` is its full fingerprint.
    // Assign payloads only through set_frame_data_/release_frame_data_ —
    // a direct `data =` desynchronizes the store's refcounts (enforced by
    // the frame-data-mutation lint rule).
    bool shared = false;
    u64 fp = 0;
    u64 last_used = 0;
    // Intrusive doubly-linked list of all resident frames of one file,
    // threaded through file_head_. Makes invalidate_file O(file-resident)
    // instead of O(capacity).
    u32 file_prev = kNil;
    u32 file_next = kNil;
  };

  // Frame storage is chunked and lazily materialized: at the paper's 8 GiB
  // geometry the full set-major array is 262,144 frames (~20 MB), which a
  // 1,000-node testbed cannot afford eagerly. Chunks are sized to a whole
  // number of sets so one set never straddles two chunks; a set whose chunk
  // was never touched holds no valid frames by definition, so lookups in it
  // are misses without allocating anything.
  static constexpr u32 kTargetFramesPerChunk = 4096;

  [[nodiscard]] u32 set_index_(const BlockId& id) const;
  // Ways of `set`, or nullptr if its chunk was never materialized.
  [[nodiscard]] const Frame* set_base_(u32 set) const;
  Frame* set_base_(u32 set);
  // Ways of `set`, materializing the chunk on first touch.
  Frame* set_base_create_(u32 set);
  // Frame by global index; the chunk must already exist (the index came
  // from a live per-file list or an occupied set).
  [[nodiscard]] const Frame& frame_at_(u32 idx) const {
    return chunks_[idx / frames_per_chunk_][idx % frames_per_chunk_];
  }
  Frame& frame_at_(u32 idx) {
    return chunks_[idx / frames_per_chunk_][idx % frames_per_chunk_];
  }
  [[nodiscard]] const Frame* find_(const BlockId& id) const;
  Frame* find_(const BlockId& id);
  Status evict_(sim::Process& p, Frame& victim, u32 idx);
  void touch_bank_(sim::Process& p, u32 set);
  void link_file_(u32 idx);
  void unlink_file_(u32 idx);
  void clear_frame_(Frame& f);
  // The only sanctioned frame-payload assignment sites: they keep the dedup
  // store's refcounts and the resident_bytes gauge consistent (an aliased
  // payload is charged once; a copy-on-write split re-charges the frame).
  // `try_dedup` is false for dirty data — written bytes diverge from any
  // shared copy, so the frame splits private.
  void set_frame_data_(Frame& f, blob::BlobRef data, bool try_dedup);
  void release_frame_data_(Frame& f);
  // Debug invariant (GVFS_YIELD_CHECK builds): recompute resident_bytes and
  // per-entry refcounts from the frames and compare with the gauge/store.
  void verify_dedup_accounting_() const;

  sim::DiskModel& disk_;
  BlockCacheConfig cfg_;
  u32 num_sets_;        // total sets across all banks
  u32 sets_per_bank_;
  u32 frames_per_chunk_;  // multiple of associativity
  u64 total_frames_;
  std::vector<std::unique_ptr<Frame[]>> chunks_;  // set-major, lazy
  std::vector<bool> bank_exists_;
  // file_key -> index of the first resident frame of that file.
  std::unordered_map<u64, u32> file_head_;
  // Content-addressed store: masked fingerprint -> one shared payload plus
  // the number of frames aliasing it. Entries keep the full fingerprint and
  // size, verified on every probe, so a masked-key collision is a counted
  // miss rather than silent content aliasing.
  struct DedupEntry {
    u64 fp = 0;
    blob::BlobRef data;
    u32 refs = 0;
  };
  std::unordered_map<u64, DedupEntry> dedup_;
  u64 dedup_mask_ = ~0ULL;
  WritebackFn writeback_;
  u64 tick_ = 0;
  // Bumped by invalidate_all(), which frees the chunk storage. Fibers that
  // captured frame pointers before a disk / write-back yield compare epochs
  // afterwards and restart (or abort) instead of touching freed frames.
  u64 structure_epoch_ = 0;
  metrics::Counter hits_;
  metrics::Counter misses_;
  metrics::Counter evictions_;
  metrics::Counter writebacks_;
  metrics::Gauge dirty_;
  metrics::Gauge resident_;
  metrics::Gauge resident_bytes_;
  metrics::Counter banks_created_;
  metrics::Counter dedup_hits_;
  metrics::Counter dedup_aliases_;
  metrics::Counter dedup_bytes_saved_;
  metrics::Counter dedup_collisions_;
  BlockId last_access_{};  // sequentiality heuristic for cache-disk locality
};

}  // namespace gvfs::cache
