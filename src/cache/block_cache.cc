#include "cache/block_cache.h"

#include <algorithm>
#include <cassert>

#include "blob/extent_store.h"
#include "common/log.h"

namespace gvfs::cache {

ProxyDiskCache::ProxyDiskCache(sim::DiskModel& disk, BlockCacheConfig cfg)
    : disk_(disk), cfg_(cfg) {
  u64 total_frames = std::max<u64>(cfg_.associativity,
                                   cfg_.capacity_bytes / cfg_.block_size);
  num_sets_ = static_cast<u32>(std::max<u64>(1, total_frames / cfg_.associativity));
  sets_per_bank_ = std::max<u32>(1, num_sets_ / std::max<u32>(1, cfg_.num_banks));
  total_frames_ = static_cast<u64>(num_sets_) * cfg_.associativity;
  frames_per_chunk_ =
      std::max<u32>(1, kTargetFramesPerChunk / cfg_.associativity) *
      cfg_.associativity;
  chunks_.resize(static_cast<std::size_t>(
      (total_frames_ + frames_per_chunk_ - 1) / frames_per_chunk_));
  bank_exists_.resize(cfg_.num_banks + 1, false);
  cfg_.dedup_key_bits = std::clamp<u32>(cfg_.dedup_key_bits, 1, 64);
  dedup_mask_ = cfg_.dedup_key_bits >= 64
                    ? ~0ULL
                    : ((1ULL << cfg_.dedup_key_bits) - 1);
}

const ProxyDiskCache::Frame* ProxyDiskCache::set_base_(u32 set) const {
  std::size_t idx = static_cast<std::size_t>(set) * cfg_.associativity;
  const auto& chunk = chunks_[idx / frames_per_chunk_];
  return chunk ? &chunk[idx % frames_per_chunk_] : nullptr;
}

ProxyDiskCache::Frame* ProxyDiskCache::set_base_(u32 set) {
  std::size_t idx = static_cast<std::size_t>(set) * cfg_.associativity;
  auto& chunk = chunks_[idx / frames_per_chunk_];
  return chunk ? &chunk[idx % frames_per_chunk_] : nullptr;
}

ProxyDiskCache::Frame* ProxyDiskCache::set_base_create_(u32 set) {
  std::size_t idx = static_cast<std::size_t>(set) * cfg_.associativity;
  auto& chunk = chunks_[idx / frames_per_chunk_];
  if (!chunk) chunk = std::make_unique<Frame[]>(frames_per_chunk_);
  return &chunk[idx % frames_per_chunk_];
}

u32 ProxyDiskCache::set_index_(const BlockId& id) const {
  // Consecutive blocks of one file map to consecutive sets (spatial
  // locality within a bank), different files start at hashed origins.
  return static_cast<u32>((mix64(id.file_key) + id.block) % num_sets_);
}

const ProxyDiskCache::Frame* ProxyDiskCache::find_(const BlockId& id) const {
  const Frame* base = set_base_(set_index_(id));
  if (base == nullptr) return nullptr;
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].id == id) return &base[w];
  }
  return nullptr;
}

ProxyDiskCache::Frame* ProxyDiskCache::find_(const BlockId& id) {
  Frame* base = set_base_(set_index_(id));
  if (base == nullptr) return nullptr;
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].id == id) return &base[w];
  }
  return nullptr;
}

bool ProxyDiskCache::contains(const BlockId& id) const {
  return find_(id) != nullptr;
}

std::optional<blob::BlobRef> ProxyDiskCache::lookup_fingerprint(u64 fp, u64 size) {
  if (!cfg_.dedup_blocks) return std::nullopt;
  auto it = dedup_.find(fp & dedup_mask_);
  if (it == dedup_.end()) return std::nullopt;
  // The store key may be narrowed (dedup_key_bits test seam); the full
  // fingerprint and the size gate every hit so a key collision can only
  // cost a fetch, never serve wrong bytes.
  if (it->second.fp != fp || it->second.data->size() != size) {
    dedup_collisions_.inc();
    return std::nullopt;
  }
  dedup_hits_.inc();
  return it->second.data;
}

void ProxyDiskCache::link_file_(u32 idx) {
  Frame& f = frame_at_(idx);
  f.file_prev = kNil;
  auto [it, fresh] = file_head_.try_emplace(f.id.file_key, idx);
  if (fresh) {
    f.file_next = kNil;
  } else {
    f.file_next = it->second;
    frame_at_(it->second).file_prev = idx;
    it->second = idx;
  }
}

void ProxyDiskCache::unlink_file_(u32 idx) {
  Frame& f = frame_at_(idx);
  if (f.file_next != kNil) frame_at_(f.file_next).file_prev = f.file_prev;
  if (f.file_prev != kNil) {
    frame_at_(f.file_prev).file_next = f.file_next;
  } else {
    // Head of its file's list.
    auto it = file_head_.find(f.id.file_key);
    if (f.file_next != kNil) {
      it->second = f.file_next;
    } else {
      file_head_.erase(it);
    }
  }
  f.file_prev = kNil;
  f.file_next = kNil;
}

void ProxyDiskCache::clear_frame_(Frame& f) {
  release_frame_data_(f);
  f.valid = false;
  f.dirty = false;
}

void ProxyDiskCache::release_frame_data_(Frame& f) {
  if (f.data) {
    if (f.shared) {
      // Aliased payload: the store charged it once; only the last alias
      // releases the bytes.
      auto it = dedup_.find(f.fp & dedup_mask_);
      assert(it != dedup_.end() && it->second.refs > 0);
      if (it != dedup_.end() && --it->second.refs == 0) {
        resident_bytes_.sub(it->second.data->size());
        dedup_.erase(it);
      }
    } else {
      resident_bytes_.sub(f.data->size());
    }
  }
  // gvfs-lint: allow(frame-data-mutation) this is the sanctioned release helper
  f.data.reset();
  f.shared = false;
  f.fp = 0;
}

void ProxyDiskCache::set_frame_data_(Frame& f, blob::BlobRef data, bool try_dedup) {
  assert(!f.data);  // callers release first (CoW split point)
  if (cfg_.dedup_blocks && try_dedup && data) {
    u64 fp = data->fingerprint(cfg_.dedup_seed, 0, data->size());
    auto [it, fresh] = dedup_.try_emplace(fp & dedup_mask_);
    DedupEntry& e = it->second;
    if (fresh) {
      e.fp = fp;
      // gvfs-lint: allow(frame-data-mutation) store entry init inside the helper
      e.data = data;
      e.refs = 1;
      resident_bytes_.add(data->size());
    } else if (e.fp == fp && e.data->size() == data->size()) {
      // Identical content already resident: alias the shared copy, charge
      // nothing.
      ++e.refs;
      dedup_aliases_.inc();
      dedup_bytes_saved_.inc(data->size());
      data = e.data;
    } else {
      // Masked-key collision with different content: never alias; the frame
      // stays private and the store entry keeps its original owner.
      dedup_collisions_.inc();
      resident_bytes_.add(data->size());
      // gvfs-lint: allow(frame-data-mutation) sanctioned assign inside the helper
      f.data = std::move(data);
      f.shared = false;
      f.fp = 0;
      return;
    }
    // gvfs-lint: allow(frame-data-mutation) sanctioned assign inside the helper
    f.data = std::move(data);
    f.shared = true;
    f.fp = fp;
    return;
  }
  if (data) resident_bytes_.add(data->size());
  // gvfs-lint: allow(frame-data-mutation) sanctioned assign inside the helper
  f.data = std::move(data);
  f.shared = false;
  f.fp = 0;
}

void ProxyDiskCache::verify_dedup_accounting_() const {
#ifdef GVFS_YIELD_CHECK
  if (!cfg_.dedup_blocks) return;
  // Recompute what the gauge and the store must hold from the frames alone:
  // every dedup entry's payload counts once, every private frame's payload
  // counts per frame, and an entry's refcount equals its aliasing frames.
  u64 expect_bytes = 0;
  std::unordered_map<u64, u32> refs;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    if (!chunks_[c]) continue;
    const std::size_t n = std::min<std::size_t>(
        frames_per_chunk_, total_frames_ - c * frames_per_chunk_);
    for (std::size_t i = 0; i < n; ++i) {
      const Frame& f = chunks_[c][i];
      if (!f.valid || !f.data) continue;
      if (f.shared) {
        ++refs[f.fp & dedup_mask_];
      } else {
        expect_bytes += f.data->size();
      }
    }
  }
  assert(refs.size() == dedup_.size());
  // gvfs-lint: allow(unordered-iteration) debug-only invariant; nothing escapes
  for (const auto& [key, e] : dedup_) {
    auto it = refs.find(key);
    assert(it != refs.end() && it->second == e.refs);
    (void)it;
    expect_bytes += e.data->size();
  }
  assert(expect_bytes == resident_bytes_.value());
  (void)expect_bytes;
#endif
}

void ProxyDiskCache::touch_bank_(sim::Process& p, u32 set) {
  u32 bank = std::min<u32>(set / sets_per_bank_, cfg_.num_banks - 1);
  if (!bank_exists_[bank]) {
    bank_exists_[bank] = true;
    banks_created_.inc();
    if (cfg_.charge_bank_creation) {
      // Creating the bank file: one metadata journal write.
      disk_.access(p, 4_KiB, sim::Locality::kSequential);
    }
  }
}

std::optional<blob::BlobRef> ProxyDiskCache::lookup(sim::Process& p, const BlockId& id) {
  Frame* f = find_(id);
  if (f == nullptr) {
    misses_.inc();
    return std::nullopt;
  }
  hits_.inc();
  f->last_used = ++tick_;
  // Copy the payload handle out before the cache-disk yield: a concurrent
  // insert can evict this frame — or invalidate_all() free its chunk —
  // while this fiber is blocked on the disk.
  blob::BlobRef data = f->data;
  // A hit reads the frame from the cache disk. Consecutive blocks of a file
  // live in consecutive sets of a bank, so sequential access streams.
  sim::Locality loc = (id.file_key == last_access_.file_key &&
                       id.block == last_access_.block + 1)
                          ? sim::Locality::kSequential
                          : sim::Locality::kRandom;
  last_access_ = id;
  disk_.access(p, data ? data->size() : cfg_.block_size, loc);
  return data;
}

Status ProxyDiskCache::evict_(sim::Process& p, Frame& victim, u32 idx) {
  if (!victim.valid) return Status::ok();
  evictions_.inc();
  u64 epoch = structure_epoch_;
  if (victim.dirty) {
    writebacks_.inc();
    dirty_.sub(1);
    // Clear the dirty bit before yielding so a concurrent write_back walk
    // does not flush (and double-decrement) the same frame.
    victim.dirty = false;
    if (writeback_) {
      // Copy the tag and payload handle: the write-back yields, and only the
      // caller's busy claim — not these fields — survives a concurrent
      // invalidate of the frame.
      BlockId id = victim.id;
      blob::BlobRef data = victim.data;
      // Read the frame back from the cache disk, then push upstream.
      disk_.access(p, data ? data->size() : cfg_.block_size,
                   sim::Locality::kRandom);
      Status st = writeback_(p, id, data);
      if (structure_epoch_ != epoch) return st;  // chunks freed under us
      if (!st.is_ok()) {
        if (victim.valid) {
          victim.dirty = true;
          dirty_.add(1);
        }
        return st;
      }
    }
  }
  if (!victim.valid) return Status::ok();  // invalidated during the yield
  unlink_file_(idx);
  clear_frame_(victim);
  resident_.sub(1);
  return Status::ok();
}

Status ProxyDiskCache::insert(sim::Process& p, const BlockId& id, blob::BlobRef data,
                              bool dirty) {
  assert(data && data->size() <= cfg_.block_size);
  if (cfg_.policy == WritePolicy::kWriteThrough && dirty) {
    if (writeback_) {
      writebacks_.inc();
      GVFS_RETURN_IF_ERROR(writeback_(p, id, data));
    }
    dirty = false;
  }

  u32 set = set_index_(id);
  touch_bank_(p, set);
  const u32 set_first = set * cfg_.associativity;

  // If the block cannot be cached right now (every way claimed by concurrent
  // inserts, or the cache was invalidated mid-insert), dirty bytes go
  // straight upstream so nothing is lost; clean bytes are simply not cached.
  auto skip_cache = [&]() -> Status {
    if (dirty && writeback_) {
      writebacks_.inc();
      return writeback_(p, id, data);
    }
    return Status::ok();
  };

  // Claim one frame (busy) before the eviction / frame-write yields below: a
  // concurrent insert into the same set must not pick the same LRU victim,
  // and invalidate_all() freeing the chunks mid-yield is detected by the
  // structure epoch and restarts the claim.
  for (;;) {
    u64 epoch = structure_epoch_;
    Frame* base = set_base_create_(set);
    Frame* slot = nullptr;
    u32 way = 0;
    for (u32 w = 0; w < cfg_.associativity; ++w) {
      if (base[w].valid && base[w].id == id) {
        slot = &base[w];
        way = w;
        break;
      }
    }
    bool new_residency = false;
    if (slot != nullptr && slot->busy) {
      // This very block's frame is mid-eviction in another fiber.
      return skip_cache();
    }
    if (slot == nullptr) {
      // Free way, else LRU victim; never a frame another insert claimed.
      for (u32 w = 0; w < cfg_.associativity; ++w) {
        if (!base[w].valid && !base[w].busy) {
          slot = &base[w];
          way = w;
          break;
        }
      }
      if (slot == nullptr) {
        for (u32 w = 0; w < cfg_.associativity; ++w) {
          if (base[w].busy) continue;
          if (slot == nullptr || base[w].last_used < slot->last_used) {
            slot = &base[w];
            way = w;
          }
        }
      }
      if (slot == nullptr) return skip_cache();
      slot->busy = true;
      if (slot->valid) {
        Status st = evict_(p, *slot, set_first + way);
        if (structure_epoch_ != epoch) {
          // invalidate_all() dropped the chunks while the eviction write-back
          // was in flight; release the claim through re-derived storage.
          if (Frame* nb = set_base_(set)) nb[way].busy = false;
          GVFS_RETURN_IF_ERROR(st);
          continue;  // re-derive and re-claim
        }
        if (!st.is_ok()) {
          slot->busy = false;
          return st;
        }
      }
      resident_.add(1);
      new_residency = true;
    } else {
      slot->busy = true;
      if (slot->dirty && !dirty) {
        // Overwriting a dirty frame with clean data must not lose staged
        // bytes — the caller (proxy) merges before inserting, so a clean
        // overwrite means the block was just written back. A dirty overwrite
        // keeps the frame dirty and its single dirty count.
        dirty_.sub(1);
        slot->dirty = false;
      }
    }

    // Frame write to the cache disk. Bank-file writes go through the host
    // buffer cache and are flushed in elevator order, so they cost
    // near-sequential time regardless of arrival order.
    last_access_ = id;
    disk_.access(p, data->size(), sim::Locality::kSequential);
    if (structure_epoch_ != epoch) {
      // The cache was dropped while the frame write was in flight. The
      // invalidate already reset the gauges; just release the claim and
      // treat the block as uncacheable.
      if (Frame* nb = set_base_(set)) nb[way].busy = false;
      return skip_cache();
    }
    if (!new_residency && !slot->valid) {
      // invalidate_file() cleared the matched frame during the yield;
      // filling it now would leave an unlinked resident frame.
      slot->busy = false;
      return skip_cache();
    }

    release_frame_data_(*slot);
    // Dirty data never enters the dedup store: written bytes diverge from
    // the shared copy (copy-on-write split); clean fills may alias.
    set_frame_data_(*slot, std::move(data), !dirty);
    slot->valid = true;
    slot->id = id;
    slot->last_used = ++tick_;
    slot->busy = false;
    if (new_residency) link_file_(set_first + way);
    if (dirty && !slot->dirty) {
      slot->dirty = true;
      dirty_.add(1);
    }
    verify_dedup_accounting_();
    return Status::ok();
  }
}

Result<blob::BlobRef> ProxyDiskCache::merge(sim::Process& p, const BlockId& id,
                                            u64 offset_in_block,
                                            const blob::BlobRef& data) {
  Frame* f = find_(id);
  if (f == nullptr) return err(ErrCode::kNoEnt, "merge on absent block");
  blob::ExtentStore compose;
  if (f->data) compose.write_blob(0, f->data, 0, f->data->size());
  if (data && data->size() > 0) {
    compose.write_blob(offset_in_block, data, 0, data->size());
  }
  blob::BlobRef merged = compose.snapshot();
  // Copy-on-write split: a shared frame being written releases its alias
  // (last ref frees the store entry) and re-charges its private copy.
  release_frame_data_(*f);
  set_frame_data_(*f, merged, /*try_dedup=*/false);
  f->last_used = ++tick_;
  if (!f->dirty) {
    f->dirty = true;
    dirty_.add(1);
  }
  disk_.access(p, data ? data->size() : 4_KiB, sim::Locality::kRandom);
  verify_dedup_accounting_();
  return merged;
}

Status ProxyDiskCache::write_back_all(sim::Process& p) {
  // Restart the scan whenever invalidate_all() freed the chunk storage while
  // a write-back was in flight: frames flushed before the restart are no
  // longer dirty, so the rescan converges.
  for (bool restart = true; restart;) {
    restart = false;
    u64 epoch = structure_epoch_;
    // gvfs-lint: allow(yield-index-loop) chunks_ is never resized; the epoch check below restarts the walk if invalidate_all() frees chunks mid-yield
    for (std::size_t c = 0; c < chunks_.size() && !restart; ++c) {
      if (!chunks_[c]) continue;
      const std::size_t n = std::min<std::size_t>(
          frames_per_chunk_, total_frames_ - c * frames_per_chunk_);
      for (std::size_t i = 0; i < n; ++i) {
        Frame& f = chunks_[c][i];
        if (!f.valid || !f.dirty) continue;
        writebacks_.inc();
        if (!writeback_) {
          f.dirty = false;
          dirty_.sub(1);
          continue;
        }
        // Copy the tag and payload handle before yielding: a concurrent
        // insert/invalidate can evict or clear this frame mid-flush.
        BlockId id = f.id;
        blob::BlobRef data = f.data;
        disk_.access(p, data ? data->size() : cfg_.block_size,
                     sim::Locality::kSequential);
        GVFS_RETURN_IF_ERROR(writeback_(p, id, data));
        if (structure_epoch_ != epoch) {
          restart = true;
          break;
        }
        // Only clear the dirty bit if the frame still holds this block.
        Frame& g = chunks_[c][i];
        if (g.valid && g.dirty && g.id == id) {
          g.dirty = false;
          dirty_.sub(1);
        }
      }
    }
  }
  return Status::ok();
}

Status ProxyDiskCache::write_back_file(sim::Process& p, u64 file_key) {
  auto it = file_head_.find(file_key);
  if (it == file_head_.end()) return Status::ok();
  // Capture next before the callback: a write-back that recurses into the
  // cache (e.g. an async flush enqueue evicting) must not invalidate the
  // walk mid-list.
  u32 idx = it->second;
  u64 epoch = structure_epoch_;
  while (idx != kNil) {
    Frame& f = frame_at_(idx);
    u32 next = f.file_next;
    if (f.valid && f.dirty && !writeback_) {
      writebacks_.inc();
      f.dirty = false;
      dirty_.sub(1);
    } else if (f.valid && f.dirty) {
      writebacks_.inc();
      // Copy the tag and payload handle before yielding: a concurrent
      // insert/invalidate can evict or clear this frame mid-flush.
      BlockId id = f.id;
      blob::BlobRef data = f.data;
      disk_.access(p, data ? data->size() : cfg_.block_size,
                   sim::Locality::kSequential);
      GVFS_RETURN_IF_ERROR(writeback_(p, id, data));
      // invalidate_all() freed the chunks mid-flush: every remaining frame
      // of this file is gone with them.
      if (structure_epoch_ != epoch) return Status::ok();
      // Only clear the dirty bit if the frame still holds this block.
      Frame& g = frame_at_(idx);
      if (g.valid && g.dirty && g.id == id) {
        g.dirty = false;
        dirty_.sub(1);
      }
    }
    idx = next;
  }
  return Status::ok();
}

Status ProxyDiskCache::flush_and_invalidate(sim::Process& p) {
  GVFS_RETURN_IF_ERROR(write_back_all(p));
  invalidate_all();
  return Status::ok();
}

void ProxyDiskCache::invalidate_all() {
  // Drop whole chunks: releasing the storage also returns the testbed to
  // its pre-warm footprint after a read-only session ends. Fibers blocked in
  // a yield with frame pointers in hand see the epoch bump and restart.
  ++structure_epoch_;
  for (auto& chunk : chunks_) chunk.reset();
  file_head_.clear();
  dedup_.clear();
  dirty_.set(0);
  resident_.set(0);
  resident_bytes_.set(0);
}

void ProxyDiskCache::invalidate_file(u64 file_key) {
  auto it = file_head_.find(file_key);
  if (it == file_head_.end()) return;
  u32 idx = it->second;
  file_head_.erase(it);
  while (idx != kNil) {
    Frame& f = frame_at_(idx);
    u32 next = f.file_next;
    if (f.dirty) dirty_.sub(1);
    clear_frame_(f);
    f.file_prev = kNil;
    f.file_next = kNil;
    resident_.sub(1);
    idx = next;
  }
}

u64 ProxyDiskCache::file_resident_blocks(u64 file_key) const {
  auto it = file_head_.find(file_key);
  if (it == file_head_.end()) return 0;
  u64 n = 0;
  for (u32 idx = it->second; idx != kNil; idx = frame_at_(idx).file_next) ++n;
  return n;
}

}  // namespace gvfs::cache
