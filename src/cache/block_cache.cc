#include "cache/block_cache.h"

#include <algorithm>
#include <cassert>

#include "blob/extent_store.h"
#include "common/log.h"

namespace gvfs::cache {

ProxyDiskCache::ProxyDiskCache(sim::DiskModel& disk, BlockCacheConfig cfg)
    : disk_(disk), cfg_(cfg) {
  u64 total_frames = std::max<u64>(cfg_.associativity,
                                   cfg_.capacity_bytes / cfg_.block_size);
  num_sets_ = static_cast<u32>(std::max<u64>(1, total_frames / cfg_.associativity));
  sets_per_bank_ = std::max<u32>(1, num_sets_ / std::max<u32>(1, cfg_.num_banks));
  frames_.resize(static_cast<std::size_t>(num_sets_) * cfg_.associativity);
  bank_exists_.resize(cfg_.num_banks + 1, false);
}

u32 ProxyDiskCache::set_index_(const BlockId& id) const {
  // Consecutive blocks of one file map to consecutive sets (spatial
  // locality within a bank), different files start at hashed origins.
  return static_cast<u32>((mix64(id.file_key) + id.block) % num_sets_);
}

ProxyDiskCache::Frame* ProxyDiskCache::find_(const BlockId& id) {
  u32 set = set_index_(id);
  Frame* base = &frames_[static_cast<std::size_t>(set) * cfg_.associativity];
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].id == id) return &base[w];
  }
  return nullptr;
}

bool ProxyDiskCache::contains(const BlockId& id) const {
  return const_cast<ProxyDiskCache*>(this)->find_(id) != nullptr;
}

void ProxyDiskCache::touch_bank_(sim::Process& p, u32 set) {
  u32 bank = std::min<u32>(set / sets_per_bank_, cfg_.num_banks - 1);
  if (!bank_exists_[bank]) {
    bank_exists_[bank] = true;
    ++banks_created_;
    if (cfg_.charge_bank_creation) {
      // Creating the bank file: one metadata journal write.
      disk_.access(p, 4_KiB, sim::Locality::kSequential);
    }
  }
}

std::optional<blob::BlobRef> ProxyDiskCache::lookup(sim::Process& p, const BlockId& id) {
  Frame* f = find_(id);
  if (f == nullptr) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  f->last_used = ++tick_;
  // A hit reads the frame from the cache disk. Consecutive blocks of a file
  // live in consecutive sets of a bank, so sequential access streams.
  sim::Locality loc = (id.file_key == last_access_.file_key &&
                       id.block == last_access_.block + 1)
                          ? sim::Locality::kSequential
                          : sim::Locality::kRandom;
  last_access_ = id;
  disk_.access(p, f->data ? f->data->size() : cfg_.block_size, loc);
  return f->data;
}

Status ProxyDiskCache::evict_(sim::Process& p, Frame& victim) {
  if (!victim.valid) return Status::ok();
  ++evictions_;
  if (victim.dirty) {
    ++writebacks_;
    --dirty_;
    if (writeback_) {
      // Read the frame back from the cache disk, then push upstream.
      disk_.access(p, victim.data ? victim.data->size() : cfg_.block_size,
                   sim::Locality::kRandom);
      GVFS_RETURN_IF_ERROR(writeback_(p, victim.id, victim.data));
    }
  }
  victim.valid = false;
  victim.dirty = false;
  victim.data.reset();
  --resident_;
  return Status::ok();
}

Status ProxyDiskCache::insert(sim::Process& p, const BlockId& id, blob::BlobRef data,
                              bool dirty) {
  assert(data && data->size() <= cfg_.block_size);
  if (cfg_.policy == WritePolicy::kWriteThrough && dirty) {
    if (writeback_) {
      ++writebacks_;
      GVFS_RETURN_IF_ERROR(writeback_(p, id, data));
    }
    dirty = false;
  }

  u32 set = set_index_(id);
  touch_bank_(p, set);
  Frame* base = &frames_[static_cast<std::size_t>(set) * cfg_.associativity];
  Frame* slot = nullptr;
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].id == id) {
      slot = &base[w];
      break;
    }
  }
  if (slot == nullptr) {
    // Free way, else LRU victim.
    for (u32 w = 0; w < cfg_.associativity; ++w) {
      if (!base[w].valid) {
        slot = &base[w];
        break;
      }
    }
    if (slot == nullptr) {
      slot = base;
      for (u32 w = 1; w < cfg_.associativity; ++w) {
        if (base[w].last_used < slot->last_used) slot = &base[w];
      }
      GVFS_RETURN_IF_ERROR(evict_(p, *slot));
    }
    ++resident_;
  } else if (slot->dirty) {
    // Overwriting a dirty frame with new dirty data keeps one dirty count;
    // overwriting with clean data must not lose staged bytes — the caller
    // (proxy) merges before inserting, so a clean overwrite means the block
    // was just written back.
    if (!dirty) --dirty_;
    slot->dirty = false;
  }

  // Frame write to the cache disk. Bank-file writes go through the host
  // buffer cache and are flushed in elevator order, so they cost
  // near-sequential time regardless of arrival order.
  last_access_ = id;
  disk_.access(p, data->size(), sim::Locality::kSequential);

  slot->valid = true;
  slot->id = id;
  slot->data = std::move(data);
  slot->last_used = ++tick_;
  if (dirty && !slot->dirty) {
    slot->dirty = true;
    ++dirty_;
  }
  return Status::ok();
}

Result<blob::BlobRef> ProxyDiskCache::merge(sim::Process& p, const BlockId& id,
                                            u64 offset_in_block,
                                            const blob::BlobRef& data) {
  Frame* f = find_(id);
  if (f == nullptr) return err(ErrCode::kNoEnt, "merge on absent block");
  blob::ExtentStore compose;
  if (f->data) compose.write_blob(0, f->data, 0, f->data->size());
  if (data && data->size() > 0) {
    compose.write_blob(offset_in_block, data, 0, data->size());
  }
  blob::BlobRef merged = compose.snapshot();
  f->data = merged;
  f->last_used = ++tick_;
  if (!f->dirty) {
    f->dirty = true;
    ++dirty_;
  }
  disk_.access(p, data ? data->size() : 4_KiB, sim::Locality::kRandom);
  return merged;
}

Status ProxyDiskCache::write_back_all(sim::Process& p) {
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      ++writebacks_;
      if (writeback_) {
        disk_.access(p, f.data ? f.data->size() : cfg_.block_size,
                     sim::Locality::kSequential);
        GVFS_RETURN_IF_ERROR(writeback_(p, f.id, f.data));
      }
      f.dirty = false;
      --dirty_;
    }
  }
  return Status::ok();
}

Status ProxyDiskCache::flush_and_invalidate(sim::Process& p) {
  GVFS_RETURN_IF_ERROR(write_back_all(p));
  invalidate_all();
  return Status::ok();
}

void ProxyDiskCache::invalidate_all() {
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) --dirty_;
    f.valid = false;
    f.dirty = false;
    f.data.reset();
  }
  resident_ = 0;
}

void ProxyDiskCache::invalidate_file(u64 file_key) {
  for (Frame& f : frames_) {
    if (f.valid && f.id.file_key == file_key) {
      if (f.dirty) --dirty_;
      f.valid = false;
      f.dirty = false;
      f.data.reset();
      --resident_;
    }
  }
}

u64 ProxyDiskCache::resident_bytes() const {
  u64 total = 0;
  for (const Frame& f : frames_) {
    if (f.valid && f.data) total += f.data->size();
  }
  return total;
}

}  // namespace gvfs::cache
