#include "cache/block_cache.h"

#include <algorithm>
#include <cassert>

#include "blob/extent_store.h"
#include "common/log.h"

namespace gvfs::cache {

ProxyDiskCache::ProxyDiskCache(sim::DiskModel& disk, BlockCacheConfig cfg)
    : disk_(disk), cfg_(cfg) {
  u64 total_frames = std::max<u64>(cfg_.associativity,
                                   cfg_.capacity_bytes / cfg_.block_size);
  num_sets_ = static_cast<u32>(std::max<u64>(1, total_frames / cfg_.associativity));
  sets_per_bank_ = std::max<u32>(1, num_sets_ / std::max<u32>(1, cfg_.num_banks));
  total_frames_ = static_cast<u64>(num_sets_) * cfg_.associativity;
  frames_per_chunk_ =
      std::max<u32>(1, kTargetFramesPerChunk / cfg_.associativity) *
      cfg_.associativity;
  chunks_.resize(static_cast<std::size_t>(
      (total_frames_ + frames_per_chunk_ - 1) / frames_per_chunk_));
  bank_exists_.resize(cfg_.num_banks + 1, false);
}

const ProxyDiskCache::Frame* ProxyDiskCache::set_base_(u32 set) const {
  std::size_t idx = static_cast<std::size_t>(set) * cfg_.associativity;
  const auto& chunk = chunks_[idx / frames_per_chunk_];
  return chunk ? &chunk[idx % frames_per_chunk_] : nullptr;
}

ProxyDiskCache::Frame* ProxyDiskCache::set_base_(u32 set) {
  std::size_t idx = static_cast<std::size_t>(set) * cfg_.associativity;
  auto& chunk = chunks_[idx / frames_per_chunk_];
  return chunk ? &chunk[idx % frames_per_chunk_] : nullptr;
}

ProxyDiskCache::Frame* ProxyDiskCache::set_base_create_(u32 set) {
  std::size_t idx = static_cast<std::size_t>(set) * cfg_.associativity;
  auto& chunk = chunks_[idx / frames_per_chunk_];
  if (!chunk) chunk = std::make_unique<Frame[]>(frames_per_chunk_);
  return &chunk[idx % frames_per_chunk_];
}

u32 ProxyDiskCache::set_index_(const BlockId& id) const {
  // Consecutive blocks of one file map to consecutive sets (spatial
  // locality within a bank), different files start at hashed origins.
  return static_cast<u32>((mix64(id.file_key) + id.block) % num_sets_);
}

const ProxyDiskCache::Frame* ProxyDiskCache::find_(const BlockId& id) const {
  const Frame* base = set_base_(set_index_(id));
  if (base == nullptr) return nullptr;
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].id == id) return &base[w];
  }
  return nullptr;
}

ProxyDiskCache::Frame* ProxyDiskCache::find_(const BlockId& id) {
  Frame* base = set_base_(set_index_(id));
  if (base == nullptr) return nullptr;
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].id == id) return &base[w];
  }
  return nullptr;
}

bool ProxyDiskCache::contains(const BlockId& id) const {
  return find_(id) != nullptr;
}

void ProxyDiskCache::link_file_(u32 idx) {
  Frame& f = frame_at_(idx);
  f.file_prev = kNil;
  auto [it, fresh] = file_head_.try_emplace(f.id.file_key, idx);
  if (fresh) {
    f.file_next = kNil;
  } else {
    f.file_next = it->second;
    frame_at_(it->second).file_prev = idx;
    it->second = idx;
  }
}

void ProxyDiskCache::unlink_file_(u32 idx) {
  Frame& f = frame_at_(idx);
  if (f.file_next != kNil) frame_at_(f.file_next).file_prev = f.file_prev;
  if (f.file_prev != kNil) {
    frame_at_(f.file_prev).file_next = f.file_next;
  } else {
    // Head of its file's list.
    auto it = file_head_.find(f.id.file_key);
    if (f.file_next != kNil) {
      it->second = f.file_next;
    } else {
      file_head_.erase(it);
    }
  }
  f.file_prev = kNil;
  f.file_next = kNil;
}

void ProxyDiskCache::clear_frame_(Frame& f) {
  if (f.data) resident_bytes_.sub(f.data->size());
  f.valid = false;
  f.dirty = false;
  f.data.reset();
}

void ProxyDiskCache::touch_bank_(sim::Process& p, u32 set) {
  u32 bank = std::min<u32>(set / sets_per_bank_, cfg_.num_banks - 1);
  if (!bank_exists_[bank]) {
    bank_exists_[bank] = true;
    banks_created_.inc();
    if (cfg_.charge_bank_creation) {
      // Creating the bank file: one metadata journal write.
      disk_.access(p, 4_KiB, sim::Locality::kSequential);
    }
  }
}

std::optional<blob::BlobRef> ProxyDiskCache::lookup(sim::Process& p, const BlockId& id) {
  Frame* f = find_(id);
  if (f == nullptr) {
    misses_.inc();
    return std::nullopt;
  }
  hits_.inc();
  f->last_used = ++tick_;
  // A hit reads the frame from the cache disk. Consecutive blocks of a file
  // live in consecutive sets of a bank, so sequential access streams.
  sim::Locality loc = (id.file_key == last_access_.file_key &&
                       id.block == last_access_.block + 1)
                          ? sim::Locality::kSequential
                          : sim::Locality::kRandom;
  last_access_ = id;
  disk_.access(p, f->data ? f->data->size() : cfg_.block_size, loc);
  return f->data;
}

Status ProxyDiskCache::evict_(sim::Process& p, Frame& victim, u32 idx) {
  if (!victim.valid) return Status::ok();
  evictions_.inc();
  if (victim.dirty) {
    writebacks_.inc();
    dirty_.sub(1);
    if (writeback_) {
      // Read the frame back from the cache disk, then push upstream.
      disk_.access(p, victim.data ? victim.data->size() : cfg_.block_size,
                   sim::Locality::kRandom);
      GVFS_RETURN_IF_ERROR(writeback_(p, victim.id, victim.data));
    }
  }
  unlink_file_(idx);
  clear_frame_(victim);
  resident_.sub(1);
  return Status::ok();
}

Status ProxyDiskCache::insert(sim::Process& p, const BlockId& id, blob::BlobRef data,
                              bool dirty) {
  assert(data && data->size() <= cfg_.block_size);
  if (cfg_.policy == WritePolicy::kWriteThrough && dirty) {
    if (writeback_) {
      writebacks_.inc();
      GVFS_RETURN_IF_ERROR(writeback_(p, id, data));
    }
    dirty = false;
  }

  u32 set = set_index_(id);
  touch_bank_(p, set);
  Frame* base = set_base_create_(set);
  const u32 set_first = set * cfg_.associativity;
  Frame* slot = nullptr;
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].id == id) {
      slot = &base[w];
      break;
    }
  }
  bool new_residency = false;
  if (slot == nullptr) {
    // Free way, else LRU victim.
    for (u32 w = 0; w < cfg_.associativity; ++w) {
      if (!base[w].valid) {
        slot = &base[w];
        break;
      }
    }
    if (slot == nullptr) {
      slot = base;
      for (u32 w = 1; w < cfg_.associativity; ++w) {
        if (base[w].last_used < slot->last_used) slot = &base[w];
      }
      GVFS_RETURN_IF_ERROR(
          evict_(p, *slot, set_first + static_cast<u32>(slot - base)));
    }
    resident_.add(1);
    new_residency = true;
  } else if (slot->dirty && !dirty) {
    // Overwriting a dirty frame with clean data must not lose staged bytes —
    // the caller (proxy) merges before inserting, so a clean overwrite means
    // the block was just written back. A dirty overwrite keeps the frame
    // dirty and its single dirty count.
    dirty_.sub(1);
    slot->dirty = false;
  }

  // Frame write to the cache disk. Bank-file writes go through the host
  // buffer cache and are flushed in elevator order, so they cost
  // near-sequential time regardless of arrival order.
  last_access_ = id;
  disk_.access(p, data->size(), sim::Locality::kSequential);

  if (slot->data) resident_bytes_.sub(slot->data->size());
  resident_bytes_.add(data->size());
  slot->valid = true;
  slot->id = id;
  slot->data = std::move(data);
  slot->last_used = ++tick_;
  if (new_residency) link_file_(set_first + static_cast<u32>(slot - base));
  if (dirty && !slot->dirty) {
    slot->dirty = true;
    dirty_.add(1);
  }
  return Status::ok();
}

Result<blob::BlobRef> ProxyDiskCache::merge(sim::Process& p, const BlockId& id,
                                            u64 offset_in_block,
                                            const blob::BlobRef& data) {
  Frame* f = find_(id);
  if (f == nullptr) return err(ErrCode::kNoEnt, "merge on absent block");
  blob::ExtentStore compose;
  if (f->data) compose.write_blob(0, f->data, 0, f->data->size());
  if (data && data->size() > 0) {
    compose.write_blob(offset_in_block, data, 0, data->size());
  }
  blob::BlobRef merged = compose.snapshot();
  if (f->data) resident_bytes_.sub(f->data->size());
  resident_bytes_.add(merged->size());
  f->data = merged;
  f->last_used = ++tick_;
  if (!f->dirty) {
    f->dirty = true;
    dirty_.add(1);
  }
  disk_.access(p, data ? data->size() : 4_KiB, sim::Locality::kRandom);
  return merged;
}

Status ProxyDiskCache::write_back_all(sim::Process& p) {
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    if (!chunks_[c]) continue;
    const std::size_t n = std::min<std::size_t>(
        frames_per_chunk_, total_frames_ - c * frames_per_chunk_);
    for (std::size_t i = 0; i < n; ++i) {
      Frame& f = chunks_[c][i];
      if (f.valid && f.dirty) {
        writebacks_.inc();
        if (writeback_) {
          disk_.access(p, f.data ? f.data->size() : cfg_.block_size,
                       sim::Locality::kSequential);
          GVFS_RETURN_IF_ERROR(writeback_(p, f.id, f.data));
        }
        f.dirty = false;
        dirty_.sub(1);
      }
    }
  }
  return Status::ok();
}

Status ProxyDiskCache::write_back_file(sim::Process& p, u64 file_key) {
  auto it = file_head_.find(file_key);
  if (it == file_head_.end()) return Status::ok();
  // Capture next before the callback: a write-back that recurses into the
  // cache (e.g. an async flush enqueue evicting) must not invalidate the
  // walk mid-list.
  u32 idx = it->second;
  while (idx != kNil) {
    Frame& f = frame_at_(idx);
    u32 next = f.file_next;
    if (f.valid && f.dirty) {
      writebacks_.inc();
      if (writeback_) {
        disk_.access(p, f.data ? f.data->size() : cfg_.block_size,
                     sim::Locality::kSequential);
        GVFS_RETURN_IF_ERROR(writeback_(p, f.id, f.data));
      }
      f.dirty = false;
      dirty_.sub(1);
    }
    idx = next;
  }
  return Status::ok();
}

Status ProxyDiskCache::flush_and_invalidate(sim::Process& p) {
  GVFS_RETURN_IF_ERROR(write_back_all(p));
  invalidate_all();
  return Status::ok();
}

void ProxyDiskCache::invalidate_all() {
  // Drop whole chunks: releasing the storage also returns the testbed to
  // its pre-warm footprint after a read-only session ends.
  for (auto& chunk : chunks_) chunk.reset();
  file_head_.clear();
  dirty_.set(0);
  resident_.set(0);
  resident_bytes_.set(0);
}

void ProxyDiskCache::invalidate_file(u64 file_key) {
  auto it = file_head_.find(file_key);
  if (it == file_head_.end()) return;
  u32 idx = it->second;
  file_head_.erase(it);
  while (idx != kNil) {
    Frame& f = frame_at_(idx);
    u32 next = f.file_next;
    if (f.dirty) dirty_.sub(1);
    clear_frame_(f);
    f.file_prev = kNil;
    f.file_next = kNil;
    resident_.sub(1);
    idx = next;
  }
}

u64 ProxyDiskCache::file_resident_blocks(u64 file_key) const {
  auto it = file_head_.find(file_key);
  if (it == file_head_.end()) return 0;
  u64 n = 0;
  for (u32 idx = it->second; idx != kNil; idx = frame_at_(idx).file_next) ++n;
  return n;
}

}  // namespace gvfs::cache
