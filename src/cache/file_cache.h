// Whole-file proxy cache (§3.2.2): the landing zone of the meta-data-driven
// "compress → remote copy → uncompress → read locally" channel. Together
// with the block cache it forms the paper's heterogeneous disk caching
// scheme. Entries are whole files on the proxy's cache disk; requests to a
// cached file are served locally at disk speed.
#pragma once

#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

#include "blob/blob.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/resources.h"

namespace gvfs::cache {

struct FileCacheConfig {
  u64 capacity_bytes = 8_GiB;
};

class FileCache {
 public:
  // Upload callback for dirty eviction / write-back (compress + SCP push).
  using UploadFn = std::function<Status(sim::Process& p, u64 file_key,
                                        const blob::BlobRef& content)>;

  FileCache(sim::DiskModel& disk, FileCacheConfig cfg = {})
      : disk_(disk), cfg_(cfg) {}

  void set_upload(UploadFn fn) { upload_ = std::move(fn); }

  [[nodiscard]] bool contains(u64 file_key) const {
    return map_.count(file_key) != 0;
  }

  // Install a whole file (charges a sequential cache-disk write of its
  // size — the "uncompress into the file cache" step).
  Status put(sim::Process& p, u64 file_key, blob::BlobRef content, bool dirty = false);

  // Serve a byte range from the cached copy (cache-disk read). nullopt on
  // miss.
  std::optional<blob::BlobRef> read(sim::Process& p, u64 file_key, u64 offset, u64 len);

  // Overwrite a byte range of the cached copy, marking it dirty.
  Status write(sim::Process& p, u64 file_key, u64 offset, const blob::BlobRef& data);

  [[nodiscard]] std::optional<u64> cached_size(u64 file_key) const;

  // Middleware signals.
  Status write_back_all(sim::Process& p);
  void invalidate(u64 file_key);
  void invalidate_all();

  [[nodiscard]] u64 hits() const { return hits_.value(); }
  [[nodiscard]] u64 misses() const { return misses_.value(); }
  [[nodiscard]] u64 evictions() const { return evictions_.value(); }
  [[nodiscard]] u64 resident_bytes() const { return resident_bytes_.value(); }
  [[nodiscard]] u64 files_cached() const { return map_.size(); }
  void reset_stats() {
    hits_.reset();
    misses_.reset();
    evictions_.reset();
  }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "hits", &hits_);
    r.register_counter(prefix + "misses", &misses_);
    r.register_counter(prefix + "evictions", &evictions_);
    r.register_gauge(prefix + "resident_bytes", &resident_bytes_);
  }

 private:
  struct Entry {
    u64 key = 0;
    blob::BlobRef content;
    bool dirty = false;
    u64 last_read_end = 0;  // sequential-read detection
  };
  using Lru = std::list<Entry>;

  Status evict_lru_(sim::Process& p);

  sim::DiskModel& disk_;
  FileCacheConfig cfg_;
  Lru lru_;  // front = most recent
  std::unordered_map<u64, Lru::iterator> map_;
  UploadFn upload_;
  metrics::Gauge resident_bytes_;
  metrics::Counter hits_;
  metrics::Counter misses_;
  metrics::Counter evictions_;
};

}  // namespace gvfs::cache
