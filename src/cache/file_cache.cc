#include "cache/file_cache.h"

#include <algorithm>

#include "blob/extent_store.h"

namespace gvfs::cache {

Status FileCache::evict_lru_(sim::Process& p) {
  if (lru_.empty()) return err(ErrCode::kNoSpc, "file cache thrashing");
  Entry& victim = lru_.back();
  if (victim.dirty && upload_) {
    GVFS_RETURN_IF_ERROR(upload_(p, victim.key, victim.content));
  }
  evictions_.inc();
  resident_bytes_.sub(victim.content ? victim.content->size() : 0);
  map_.erase(victim.key);
  lru_.pop_back();
  return Status::ok();
}

Status FileCache::put(sim::Process& p, u64 file_key, blob::BlobRef content,
                      bool dirty) {
  u64 size = content ? content->size() : 0;
  auto it = map_.find(file_key);
  if (it != map_.end()) {
    resident_bytes_.sub(it->second->content ? it->second->content->size() : 0);
    lru_.erase(it->second);
    map_.erase(it);
  }
  while (resident_bytes_.value() + size > cfg_.capacity_bytes && !lru_.empty()) {
    GVFS_RETURN_IF_ERROR(evict_lru_(p));
  }
  // Lay the file down on the cache disk sequentially.
  disk_.access(p, std::max<u64>(size, 4_KiB), sim::Locality::kSequential);
  lru_.push_front(Entry{file_key, std::move(content), dirty, 0});
  map_[file_key] = lru_.begin();
  resident_bytes_.add(size);
  return Status::ok();
}

std::optional<blob::BlobRef> FileCache::read(sim::Process& p, u64 file_key,
                                             u64 offset, u64 len) {
  auto it = map_.find(file_key);
  if (it == map_.end()) {
    misses_.inc();
    return std::nullopt;
  }
  hits_.inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  Entry& e = *it->second;
  u64 size = e.content ? e.content->size() : 0;
  if (offset >= size || len == 0) return blob::BlobRef(blob::make_zero(0));
  len = std::min<u64>(len, size - offset);
  // Copy the content handle before the disk yield: a concurrent invalidate
  // erases the entry and would leave `e` dangling.
  blob::BlobRef content = e.content;
  bool sequential = offset == e.last_read_end;
  disk_.access(p, len,
               sequential ? sim::Locality::kSequential : sim::Locality::kRandom);
  it = map_.find(file_key);
  if (it != map_.end()) it->second->last_read_end = offset + len;
  return blob::BlobRef(std::make_shared<blob::SliceBlob>(content, offset, len));
}

Status FileCache::write(sim::Process& p, u64 file_key, u64 offset,
                        const blob::BlobRef& data) {
  auto it = map_.find(file_key);
  if (it == map_.end()) return err(ErrCode::kNoEnt, "file not cached");
  Entry& e = *it->second;
  blob::ExtentStore compose;
  if (e.content) compose.write_blob(0, e.content, 0, e.content->size());
  u64 n = data ? data->size() : 0;
  if (n > 0) compose.write_blob(offset, data, 0, n);
  u64 old_size = e.content ? e.content->size() : 0;
  e.content = compose.snapshot();
  e.dirty = true;
  resident_bytes_.add(e.content->size() - old_size);
  disk_.access(p, std::max<u64>(n, 4_KiB), sim::Locality::kSequential);
  // The disk write yielded: a concurrent invalidate may have dropped the
  // entry, so re-find before the LRU touch.
  it = map_.find(file_key);
  if (it != map_.end()) lru_.splice(lru_.begin(), lru_, it->second);
  return Status::ok();
}

std::optional<u64> FileCache::cached_size(u64 file_key) const {
  auto it = map_.find(file_key);
  if (it == map_.end()) return std::nullopt;
  return it->second->content ? it->second->content->size() : 0;
}

Status FileCache::write_back_all(sim::Process& p) {
  // Snapshot the dirty keys first: the upload below yields, and a concurrent
  // invalidate would unlink the very list node the range-for is parked on.
  std::vector<u64> dirty_keys;
  for (const Entry& e : lru_) {
    if (e.dirty) dirty_keys.push_back(e.key);
  }
  for (u64 key : dirty_keys) {
    auto it = map_.find(key);
    if (it == map_.end() || !it->second->dirty) continue;
    if (upload_) {
      // Copy the content handle before the yields (re-read from the cache
      // disk, then upload); the entry may be invalidated meanwhile.
      blob::BlobRef content = it->second->content;
      disk_.access(p, content ? content->size() : 4_KiB,
                   sim::Locality::kSequential);
      GVFS_RETURN_IF_ERROR(upload_(p, key, content));
      it = map_.find(key);
      if (it == map_.end()) continue;
    }
    it->second->dirty = false;
  }
  return Status::ok();
}

void FileCache::invalidate(u64 file_key) {
  auto it = map_.find(file_key);
  if (it == map_.end()) return;
  resident_bytes_.sub(it->second->content ? it->second->content->size() : 0);
  lru_.erase(it->second);
  map_.erase(it);
}

void FileCache::invalidate_all() {
  lru_.clear();
  map_.clear();
  resident_bytes_.set(0);
}

}  // namespace gvfs::cache
