// The GVFS user-level file system proxy (§3). A proxy behaves as an NFS
// server toward its downstream (kernel client or another proxy) and as an
// NFS client toward its upstream, so proxies cascade into multi-level
// hierarchies (§3.2.1). Depending on attachments one instance plays either
// role from the paper:
//   * server-side proxy: authenticates requests and remaps credentials onto
//     short-lived shadow accounts (logical user accounts);
//   * client-side proxy: block-based disk cache (write-back or
//     write-through), meta-data handling (zero-block filtering + the
//     file-based channel into a whole-file cache), and middleware-driven
//     consistency signals.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cache/block_cache.h"
#include "cache/file_cache.h"
#include "common/metrics.h"
#include "common/mutation_epoch.h"
#include "common/trace.h"
#include "meta/file_channel.h"
#include "meta/meta_file.h"
#include "nfs/nfs_types.h"
#include "rpc/rpc.h"

namespace gvfs::proxy {

struct ProxyConfig {
  std::string name = "gvfs-proxy";
  // Upstream READ granularity: the proxy fetches whole cache blocks
  // (<= the 32 KB NFS limit) regardless of the downstream rsize.
  u32 fetch_block = 32_KiB;
  SimDuration per_call_cpu = 25 * kMicrosecond;
  SimDuration attr_ttl = 5 * kSecond;
  // In write-back mode the proxy acknowledges COMMIT locally; consistency
  // comes from middleware signals (§3.2.1).
  bool absorb_commit = true;
  bool enable_meta = true;  // honour meta-data files when found

  // §6 future work, implemented: dynamic profiling of access behaviour to
  // drive pre-fetching. After `prefetch_trigger` consecutive sequential
  // block fetches on a file, the proxy pipelines `prefetch_depth` blocks
  // ahead (0 disables).
  u32 prefetch_depth = 0;
  u32 prefetch_trigger = 3;

  // Degraded-mode operation during WAN outages (partitions, server
  // reboots): keep serving reads from the caches (session consistency
  // permits it), queue failed write-backs, replay the queue on reconnect.
  // Off by default — without it upstream timeouts surface as errors.
  bool degraded_mode = false;

  // Asynchronous batched write-back: instead of one blocking FILE_SYNC
  // WRITE per dirty block, evicted / signalled dirty blocks enter a
  // per-file flush queue drained by a background flusher process as
  // pipelined UNSTABLE WRITE bursts followed by one COMMIT per file (the
  // NFSv3 safe-asynchronous-write protocol). The COMMIT verifier is checked
  // against every WRITE's verifier; a mismatch means the server rebooted
  // mid-flush and the whole file is re-sent. Off by default — the write
  // path stays byte-identical to the synchronous proxy.
  bool async_writeback = false;
  // Max WRITE calls per pipelined burst while draining a file's queue.
  u32 flush_burst = 32;
  // Verifier-mismatch re-send attempts per file before giving up.
  u32 flush_max_attempts = 3;

  // Single-flight miss coalescing: concurrent downstream readers of the
  // same uncached block share one upstream fetch instead of issuing
  // duplicate READs. Only matters when several downstream clients mount
  // through one shared cache proxy; off by default.
  bool single_flight = false;

  // Content-addressed block dedup: when a meta-data file carries a
  // per-block fingerprint table at this proxy's fetch granularity, a cache
  // miss first probes the block cache's dedup store — identical bytes
  // already resident under any other file/block are aliased locally (one
  // shared resident copy, copy-on-write on dirty) instead of fetched
  // upstream. Requires the attached cache's dedup_blocks too. Off by
  // default — the miss path stays byte-identical to the pre-dedup proxy.
  bool dedup_blocks = false;
  // Modeled wire compression on the upstream channel stack (the Testbed
  // wraps the tunnel in a rpc::CompressChannel/CompressHandler pair when
  // set): bulk READ/WRITE payloads cross the WAN at Blob::compressed_size
  // with GzipModel CPU charged at both ends. Off by default.
  bool wire_compression = false;

  // Delegation-style leases (DESIGN.md §5.10): acquire a write lease from
  // the origin before a WRITE is absorbed or forwarded, a read lease before
  // a cached READ is served, honour server recalls (flush dirty state, then
  // drop cached frames and attrs for the recalled file), and fence replay
  // of degraded writes behind write-lease re-acquisition. Off by default —
  // the request paths stay byte-identical to the lease-free proxy.
  bool enable_leases = false;
  // Identity presented on LEASE_ACQUIRE and matched by server recalls.
  u64 lease_client_id = 0;
  // Conflict back-off between LEASE_ACQUIRE retries (the server answered
  // granted=false while it recalls the current holder). The retry horizon
  // (delay * max_retries) must outlast the server's lease_duration so a
  // partitioned holder lapses before the contender gives up.
  SimDuration lease_retry_delay = 500 * kMillisecond;
  u32 lease_max_retries = 128;

  // Bound on attr_cache_ entries; the least-recently-touched entry is
  // evicted past it. 0 = unbounded (pre-fix behavior, tests only).
  u32 attr_cache_entries = 8192;
};

class GvfsProxy final : public rpc::RpcHandler {
 public:
  GvfsProxy(ProxyConfig cfg, rpc::RpcChannel& upstream);

  // ---- attachments ---------------------------------------------------------
  // Client-side block cache; the proxy wires the cache's writeback to
  // upstream WRITEs.
  void attach_block_cache(cache::ProxyDiskCache& c);
  // Meta-data file channel: whole-file cache + transfer engine.
  void attach_file_channel(meta::FileChannelClient& channel, cache::FileCache& fc);
  // Server-side identity mapping (logical user accounts).
  void set_cred_mapper(std::function<rpc::Credential(const rpc::Credential&)> fn) {
    cred_mapper_ = std::move(fn);
  }
  // Server-side authorization policy.
  void set_authorizer(std::function<bool(const rpc::Credential&)> fn) {
    authorizer_ = std::move(fn);
  }

  // ---- RPC service ---------------------------------------------------------
  rpc::RpcReply handle(sim::Process& p, const rpc::RpcCall& call) override;

  // ---- middleware consistency signals (O/S signals in the paper) -----------
  // SIGUSR1-equivalent: write dirty cache state upstream, keep it cached.
  Status signal_write_back(sim::Process& p);
  // SIGUSR2-equivalent: write back and invalidate everything.
  Status signal_flush(sim::Process& p);
  // Reconnect signal: replay write-backs queued while the upstream was
  // unreachable (degraded mode), then re-probe every attribute that was
  // served stale during the outage (a remote truncate performed mid-outage
  // must become visible here, not at the attr TTL's leisure). The lazy
  // recovery path (first successful upstream call) only replays.
  Status signal_reconnect(sim::Process& p);

  // Drop soft state only (attr cache, learned namespace, parsed meta-data)
  // without touching cache contents or charging time — used by experiment
  // harnesses to cold-start cleanly. Caches are dropped by their owners.
  void drop_soft_state();

  // ---- observability -------------------------------------------------------
  [[nodiscard]] u64 calls_received() const { return calls_received_.value(); }
  [[nodiscard]] u64 calls_forwarded() const { return calls_forwarded_.value(); }
  [[nodiscard]] u64 reads_served_from_block_cache() const { return block_hits_.value(); }
  [[nodiscard]] u64 reads_served_from_file_cache() const { return file_hits_.value(); }
  [[nodiscard]] u64 zero_filtered_reads() const { return zero_filtered_.value(); }
  [[nodiscard]] u64 writes_absorbed() const { return writes_absorbed_.value(); }
  [[nodiscard]] u64 meta_files_loaded() const { return metas_.size(); }
  [[nodiscard]] u64 blocks_prefetched() const { return blocks_prefetched_.value(); }
  // Cache misses served by aliasing identical resident bytes (no upstream
  // fetch); see ProxyConfig::dedup_blocks.
  [[nodiscard]] u64 dedup_filtered_reads() const { return dedup_filtered_.value(); }

  // ---- lease metrics -------------------------------------------------------
  [[nodiscard]] u64 leases_acquired() const { return leases_acquired_.value(); }
  [[nodiscard]] u64 lease_acquire_retries() const { return lease_acquire_retries_.value(); }
  [[nodiscard]] u64 lease_acquire_failures() const { return lease_acquire_failures_.value(); }
  [[nodiscard]] u64 recalls_served() const { return recalls_served_.value(); }
  [[nodiscard]] u64 lease_fences() const { return lease_fences_.value(); }
  [[nodiscard]] std::size_t held_lease_count() const { return held_leases_.size(); }

  // ---- attr-cache metrics --------------------------------------------------
  [[nodiscard]] std::size_t attr_cache_size() const { return attr_cache_.size(); }
  [[nodiscard]] u64 attr_evictions() const { return attr_evictions_.value(); }
  [[nodiscard]] u64 attr_revalidations() const { return attr_revalidations_.value(); }

  // ---- degraded-mode / recovery metrics ------------------------------------
  [[nodiscard]] bool upstream_down() const { return upstream_down_; }
  [[nodiscard]] u64 degraded_reads() const { return degraded_reads_.value(); }
  [[nodiscard]] u64 queued_writebacks() const { return queued_writebacks_.value(); }
  [[nodiscard]] u64 replayed_writebacks() const { return replayed_writebacks_.value(); }
  [[nodiscard]] u64 coalesced_writebacks() const { return coalesced_writebacks_.value(); }
  [[nodiscard]] u64 pending_writebacks() const { return write_queue_.size(); }

  // ---- async flusher / single-flight metrics -------------------------------
  [[nodiscard]] u64 flush_enqueued_blocks() const { return flush_enqueued_.value(); }
  [[nodiscard]] u64 flush_unstable_writes() const { return flush_unstable_writes_.value(); }
  [[nodiscard]] u64 flush_commits() const { return flush_commits_.value(); }
  [[nodiscard]] u64 flush_verifier_resends() const { return flush_verifier_resends_.value(); }
  [[nodiscard]] u64 flush_queue_reads() const { return flush_queue_reads_.value(); }
  [[nodiscard]] u64 pending_flush_blocks() const {
    u64 n = 0;
    // gvfs-lint: allow(unordered-iteration) commutative sum; order cannot escape
    for (const auto& [key, q] : flush_queues_) n += q.order.size();
    return n;
  }
  // Upstream fetches this proxy led on behalf of concurrent readers / the
  // number of reader fetches coalesced onto another reader's in-flight one.
  [[nodiscard]] u64 single_flight_leads() const { return single_flight_leads_.value(); }
  [[nodiscard]] u64 single_flight_waits() const { return single_flight_waits_.value(); }
  // Virtual time spent with the upstream marked unreachable (closed outages).
  [[nodiscard]] SimDuration outage_time() const { return outage_total_; }
  // Duration of the last outage, first timeout -> queue fully replayed.
  [[nodiscard]] SimDuration last_recovery_time() const { return last_recovery_time_; }
  void reset_stats();

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "calls_received", &calls_received_);
    r.register_counter(prefix + "calls_forwarded", &calls_forwarded_);
    r.register_counter(prefix + "block_cache_read_hits", &block_hits_);
    r.register_counter(prefix + "file_cache_read_hits", &file_hits_);
    r.register_counter(prefix + "zero_filtered_reads", &zero_filtered_);
    r.register_counter(prefix + "writes_absorbed", &writes_absorbed_);
    r.register_counter(prefix + "blocks_prefetched", &blocks_prefetched_);
    r.register_counter(prefix + "degraded_reads", &degraded_reads_);
    r.register_counter(prefix + "queued_writebacks", &queued_writebacks_);
    r.register_counter(prefix + "replayed_writebacks", &replayed_writebacks_);
    r.register_counter(prefix + "coalesced_writebacks", &coalesced_writebacks_);
    r.register_counter(prefix + "flush_enqueued_blocks", &flush_enqueued_);
    r.register_counter(prefix + "flush_unstable_writes", &flush_unstable_writes_);
    r.register_counter(prefix + "flush_commits", &flush_commits_);
    r.register_counter(prefix + "flush_verifier_resends", &flush_verifier_resends_);
    r.register_counter(prefix + "flush_queue_reads", &flush_queue_reads_);
    r.register_counter(prefix + "single_flight_leads", &single_flight_leads_);
    r.register_counter(prefix + "single_flight_waits", &single_flight_waits_);
    r.register_counter(prefix + "attr_evictions", &attr_evictions_);
    r.register_counter(prefix + "attr_revalidations", &attr_revalidations_);
    r.register_gauge(prefix + "attr_cache_entries", &attr_cache_gauge_);
    if (cfg_.dedup_blocks) {
      r.register_counter(prefix + "dedup_filtered_reads", &dedup_filtered_);
    }
    if (cfg_.enable_leases) {
      r.register_counter(prefix + "leases_acquired", &leases_acquired_);
      r.register_counter(prefix + "lease_acquire_retries", &lease_acquire_retries_);
      r.register_counter(prefix + "lease_acquire_failures", &lease_acquire_failures_);
      r.register_counter(prefix + "lease_recalls_served", &recalls_served_);
      r.register_counter(prefix + "lease_fences", &lease_fences_);
    }
  }

  // Annotate cache-hit / forward / degraded outcomes onto the caller's open
  // trace span; the layer label is this proxy's configured name so cascade
  // levels stay distinguishable.
  void set_tracer(trace::RpcTracer* t) { tracer_ = t; }

 private:
  struct ParentLink {
    nfs::Fh dir;
    std::string name;
  };

  // -- upstream helpers ------------------------------------------------------
  rpc::RpcReply forward_(sim::Process& p, const rpc::RpcCall& call);
  Result<rpc::MessagePtr> upstream_call_(sim::Process& p, nfs::Proc proc,
                                         rpc::MessagePtr args,
                                         const rpc::Credential& cred);
  template <typename Res>
  Result<std::shared_ptr<const Res>> upstream_as_(sim::Process& p, nfs::Proc proc,
                                                  rpc::MessagePtr args,
                                                  const rpc::Credential& cred);

  // -- request handlers ------------------------------------------------------
  rpc::RpcReply handle_read_(sim::Process& p, const rpc::RpcCall& call,
                             const nfs::ReadArgs& a);
  rpc::RpcReply handle_write_(sim::Process& p, const rpc::RpcCall& call,
                              const nfs::WriteArgs& a);
  rpc::RpcReply handle_getattr_(sim::Process& p, const rpc::RpcCall& call,
                                const nfs::GetattrArgs& a);
  rpc::RpcReply handle_commit_(sim::Process& p, const rpc::RpcCall& call,
                               const nfs::CommitArgs& a);
  rpc::RpcReply handle_setattr_(sim::Process& p, const rpc::RpcCall& call,
                                const nfs::SetattrArgs& a);

  // -- leases ----------------------------------------------------------------
  // Hold (or acquire, retrying through server-side recalls) a lease of at
  // least `mode` strength on `fh`. No-op when leases are off or the origin
  // answered kNotSupported once.
  Status ensure_lease_(sim::Process& p, const nfs::Fh& fh, nfs::LeaseMode mode,
                       const rpc::Credential& cred);
  // Server-initiated recall (callback program): flush the file's dirty
  // state upstream, drop its cached frames and attrs, forget the lease.
  rpc::RpcReply handle_recall_(sim::Process& p, const rpc::RpcCall& call);

  // -- meta-data -------------------------------------------------------------
  // Look for (and load) a meta-data file for `fh` the first time it is read.
  const meta::MetaFile* meta_for_(sim::Process& p, const nfs::Fh& fh,
                                  const rpc::Credential& cred);

  // -- block cache internals -------------------------------------------------
  // Read one proxy block (block index in fetch_block units) through the
  // cache; returns its data (may be short at EOF).
  Result<blob::BlobRef> get_block_(sim::Process& p, const nfs::Fh& fh, u64 block,
                                   const rpc::Credential& cred);
  // The cache-miss upstream READ (single-flight wraps this).
  Result<blob::BlobRef> fetch_block_upstream_(sim::Process& p, const nfs::Fh& fh,
                                              u64 block, const rpc::Credential& cred);
  // Access-profile bookkeeping + pipelined read-ahead when a sequential run
  // is detected.
  void maybe_prefetch_(sim::Process& p, const nfs::Fh& fh, u64 block, u64 file_size,
                       const rpc::Credential& cred);
  Status cache_writeback_(sim::Process& p, const cache::BlockId& id,
                          const blob::BlobRef& data);

  // -- async write-back flusher ----------------------------------------------
  // One file's pending dirty blocks awaiting the flusher, newest data wins.
  // Each block carries the global write sequence stamp it was enqueued with
  // so recency survives extraction, re-queueing, and parking for replay.
  struct FlushBlock {
    blob::BlobRef data;
    u64 seq = 0;
  };
  struct FlushQueue {
    nfs::Fh fh;
    std::vector<u64> order;                        // block indices, FIFO
    std::unordered_map<u64, FlushBlock> blocks;    // block -> newest data
  };
  void enqueue_flush_(sim::Process& p, const nfs::Fh& fh, u64 block,
                      const blob::BlobRef& data, u64 seq);
  void maybe_spawn_flusher_(sim::Process& p);
  // Drain every queued file (FIFO by first enqueue). Re-entrant: a file is
  // extracted before its RPCs are issued, so the background flusher and a
  // synchronous signal_write_back can drain concurrently.
  Status drain_flush_queues_(sim::Process& p);
  // Pipelined UNSTABLE bursts + one COMMIT; verifier-checked re-send.
  Status flush_file_(sim::Process& p, const FlushQueue& q);
  // Pending (or in-flight) flush data for a block, newest wins.
  [[nodiscard]] std::optional<blob::BlobRef> flush_pending_block_(u64 file_key,
                                                                 u64 block) const;

  // -- degraded mode ---------------------------------------------------------
  // Enqueue (coalescing, recency decided by `seq`) a write for replay after
  // the outage.
  void queue_degraded_write_(const nfs::Fh& fh, u64 offset,
                             const blob::BlobRef& data, u64 seq);
  // Neutralize parked writes overlapping data that is about to head upstream
  // — otherwise the replay triggered by that very write's success would put
  // the stale parked bytes back over it. Fully covered entries are dropped;
  // partially overlapping (non-block-aligned) ones are patched with the new
  // bytes. Parked entries stamped newer than `seq` are left alone.
  void supersede_parked_write_(u64 file_key, u64 offset,
                               const blob::BlobRef& data, u64 seq);
  void rebuild_write_queue_index_();
  // True if any queued degraded write overlaps the block's byte range.
  [[nodiscard]] bool block_has_queued_write_(u64 file_key, u64 block) const;
  // Record an upstream timeout (opens an outage) / a success (closes it once
  // the queue drains).
  void note_upstream_timeout_(SimTime now);
  void note_upstream_ok_(sim::Process& p);
  Status replay_write_queue_(sim::Process& p);
  // Serve a whole block from the pending write queue if a queued write-back
  // covers it (a queued block left the cache; its data must stay readable).
  [[nodiscard]] std::optional<blob::BlobRef> queued_block_(u64 file_key,
                                                          u64 block) const;
  // Attribute lookup ignoring the TTL (stale is better than nothing while
  // the upstream is unreachable). Keys served during an outage are recorded
  // in stale_served_ for the reconnect-time re-probe.
  [[nodiscard]] std::optional<vfs::Attr> stale_attr_(const nfs::Fh& fh);
  // GETATTR re-probe of every key in stale_served_ (sorted, so the probe
  // order is deterministic); a shrunken size means a remote truncate
  // happened mid-outage and the file's cached state is dropped.
  Status revalidate_stale_attrs_(sim::Process& p);
  // LOOKUP served from the learned namespace during an outage (null = miss).
  [[nodiscard]] std::shared_ptr<nfs::LookupRes> degraded_lookup_(
      const nfs::LookupArgs& a);

  [[nodiscard]] std::optional<vfs::Attr> cached_attr_(const nfs::Fh& fh,
                                                      SimTime now);
  void remember_attr_(const nfs::Fh& fh, const vfs::Attr& a, SimTime now);
  void attr_gauge_sync_() { attr_cache_gauge_.set(attr_cache_.size()); }
  [[nodiscard]] u64 effective_size_(const nfs::Fh& fh,
                                    const std::optional<vfs::Attr>& a) const;

  ProxyConfig cfg_;
  rpc::RpcChannel& upstream_;
  cache::ProxyDiskCache* block_cache_ = nullptr;
  meta::FileChannelClient* file_channel_ = nullptr;
  cache::FileCache* file_cache_ = nullptr;
  std::function<rpc::Credential(const rpc::Credential&)> cred_mapper_;
  std::function<bool(const rpc::Credential&)> authorizer_;

  struct CachedAttr {
    vfs::Attr attr;
    SimTime expires;
    u64 lru_tick = 0;  // recency for bounded eviction (attr_cache_entries)
  };
  std::unordered_map<u64, CachedAttr> attr_cache_;          // fh.key()
  std::unordered_map<u64, u64> size_override_;              // staged sizes
  std::unordered_map<u64, ParentLink> parents_;             // fh.key() -> (dir, name)
  std::unordered_map<u64, meta::MetaFile> metas_;           // fh.key()
  std::unordered_set<u64> meta_negative_;                   // probed, none found
  std::unordered_set<u64> dedup_written_;  // fh keys whose fp table went stale
  std::unordered_map<u64, nfs::Fh> key_to_fh_;
  std::unordered_set<u64> commit_pending_;  // fh keys with absorbed writes
  rpc::Credential session_cred_;  // per-session identity used upstream

  // Access profile per file: last block fetched and current sequential run
  // length (the "dynamic profiling of application data access behavior" the
  // paper's conclusions call for).
  struct AccessProfile {
    u64 last_block = ~u64{0};
    u32 run = 0;
    u64 ahead_until = 0;  // exclusive end of the prefetched window
  };
  std::unordered_map<u64, AccessProfile> profiles_;

  // Write-backs queued while the upstream was unreachable. Each entry is
  // stamped with the global write sequence number of its newest bytes;
  // recency (degraded-read assembly, replay ordering, supersede decisions)
  // is decided by `seq`, never by position in the vector — coalescing keeps
  // an entry at its original slot while bumping its stamp.
  struct PendingWrite {
    nfs::Fh fh;
    u64 offset = 0;
    blob::BlobRef data;
    u64 seq = 0;
  };
  std::vector<PendingWrite> write_queue_;
  // (file_key, offset) -> index into write_queue_; repeated writes to the
  // same offset coalesce in place (newest wins) and degraded reads walk one
  // file's entries in offset order instead of scanning the whole queue.
  std::map<std::pair<u64, u64>, std::size_t> write_queue_index_;
  // Dynamic half of the yield-point analysis (DESIGN.md §5.8): bumped on
  // every structural mutation of write_queue_ / write_queue_index_ (park,
  // supersede-erase, replay-erase, index rebuild). YieldGuards in the
  // yield-free readers (block_has_queued_write_, queued_block_) assert it
  // holds still while their raw references into the queue are live.
  MutationEpoch write_queue_epoch_;
  // Global recency stamp shared by flush-queue blocks and parked degraded
  // writes (a per-write Lamport clock; the sim is cooperative so a plain
  // counter is exact).
  u64 next_write_seq_ = 1;
  bool upstream_down_ = false;
  bool replaying_ = false;
  SimTime outage_started_ = 0;
  SimDuration outage_total_ = 0;
  SimDuration last_recovery_time_ = 0;
  metrics::Counter degraded_reads_;
  metrics::Counter queued_writebacks_;
  metrics::Counter replayed_writebacks_;
  metrics::Counter coalesced_writebacks_;

  // ---- async write-back flusher state --------------------------------------
  std::unordered_map<u64, FlushQueue> flush_queues_;  // file_key
  std::vector<u64> flush_file_order_;                 // first-enqueue FIFO
  // Files whose extracted queue is mid-flush (RPCs in flight); their data
  // must stay readable until the flush lands or the blocks are re-queued.
  std::vector<std::pair<u64, const FlushQueue*>> draining_;
  // Bumped on every structural mutation of the flusher containers
  // (flush_queues_ / flush_file_order_ / draining_); the YieldGuard in
  // flush_pending_block_ asserts the family holds still while it chases
  // pointers into extracted queues.
  MutationEpoch flush_epoch_;
  bool flusher_active_ = false;
  bool sync_drain_ = false;  // signal_write_back drains inline; don't spawn
  metrics::Counter flush_enqueued_;
  metrics::Counter flush_unstable_writes_;
  metrics::Counter flush_commits_;
  metrics::Counter flush_verifier_resends_;
  metrics::Counter flush_queue_reads_;

  // ---- single-flight miss coalescing ---------------------------------------
  struct InflightFetch {
    std::unique_ptr<sim::Signal> done;
    bool complete = false;
    Status status = Status::ok();
    blob::BlobRef data;
  };
  std::map<std::pair<u64, u64>, std::shared_ptr<InflightFetch>> inflight_;
  metrics::Counter single_flight_leads_;
  metrics::Counter single_flight_waits_;

  // ---- lease state ---------------------------------------------------------
  struct HeldLease {
    nfs::LeaseMode mode;
    SimTime expiry;
  };
  std::unordered_map<u64, HeldLease> held_leases_;  // fh.key()
  // Latched when the origin answers kNotSupported once (leases toggled off
  // upstream): every later ensure_lease_ becomes a free no-op.
  bool lease_unsupported_ = false;
  metrics::Counter leases_acquired_;
  metrics::Counter lease_acquire_retries_;
  metrics::Counter lease_acquire_failures_;
  metrics::Counter recalls_served_;
  metrics::Counter lease_fences_;

  // ---- attr-cache bound / reconnect revalidation ---------------------------
  u64 attr_tick_ = 0;
  std::unordered_set<u64> stale_served_;  // keys served stale mid-outage
  metrics::Counter attr_evictions_;
  metrics::Counter attr_revalidations_;
  metrics::Gauge attr_cache_gauge_;

  u32 next_xid_ = 0x70000000;
  metrics::Counter calls_received_;
  metrics::Counter blocks_prefetched_;
  metrics::Counter dedup_filtered_;
  metrics::Counter calls_forwarded_;
  metrics::Counter block_hits_;
  metrics::Counter file_hits_;
  metrics::Counter zero_filtered_;
  metrics::Counter writes_absorbed_;
  trace::RpcTracer* tracer_ = nullptr;
};

}  // namespace gvfs::proxy
