#include "proxy/shard_router.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace gvfs::proxy {

namespace {

// Seed for the combined write verifier ("clusterv"); any fixed value works,
// it only has to be stable across WRITE and COMMIT synthesis.
constexpr u64 kCombinedVerfSeed = 0x636c757374657276ULL;

bool timed_out(const rpc::RpcReply& r) {
  return r.status.code() == ErrCode::kTimeout;
}

double to_ms(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace

ShardRouter::ShardRouter(std::vector<rpc::RpcChannel*> origins,
                         ShardRouterConfig cfg)
    : cfg_(std::move(cfg)), chans_(std::move(origins)) {
  assert(!chans_.empty() && "ShardRouter needs at least one origin");
  cfg_.replicas = std::max<u32>(1, cfg_.replicas);
  cfg_.replicas = std::min<u32>(cfg_.replicas, static_cast<u32>(chans_.size()));
  origins_.resize(chans_.size());
}

std::vector<u32> ShardRouter::replicas_of(u32 shard) const {
  std::vector<u32> set;
  set.reserve(cfg_.replicas);
  for (u32 k = 0; k < cfg_.replicas; ++k) {
    set.push_back((shard + k) % static_cast<u32>(chans_.size()));
  }
  return set;
}

ShardRouter::Route ShardRouter::classify_(const rpc::RpcCall& call) {
  if (call.prog != rpc::kNfsProgram) return Route::kAnyOrigin;
  switch (static_cast<nfs::Proc>(call.proc)) {
    case nfs::Proc::kWrite:
    case nfs::Proc::kCommit:
    // Lease state lives on the home shard: acquire/release fan out to the
    // shard's replica set exactly like writes (serialized under the shard
    // write lock, journaled for dead replicas so replay preserves
    // lease-order).
    case nfs::Proc::kLeaseAcquire:
    case nfs::Proc::kLeaseRelease:
      return Route::kQuorumWrite;
    case nfs::Proc::kSetattr:
    case nfs::Proc::kCreate:
    case nfs::Proc::kMkdir:
    case nfs::Proc::kSymlink:
    case nfs::Proc::kRemove:
    case nfs::Proc::kRmdir:
    case nfs::Proc::kRename:
    case nfs::Proc::kLink:
      return Route::kBroadcast;
    case nfs::Proc::kGetattr:
    case nfs::Proc::kLookup:
    case nfs::Proc::kAccess:
    case nfs::Proc::kReadlink:
    case nfs::Proc::kRead:
    case nfs::Proc::kReaddir:
    case nfs::Proc::kReaddirplus:
    case nfs::Proc::kPathconf:
      return Route::kReadOne;
    case nfs::Proc::kNull:
    case nfs::Proc::kFsstat:
    case nfs::Proc::kFsinfo:
      return Route::kAnyOrigin;
  }
  return Route::kAnyOrigin;
}

nfs::Fh ShardRouter::route_fh_(const rpc::RpcCall& call) {
  using nfs::Proc;
  if (call.prog != rpc::kNfsProgram || !call.args) return {};
  switch (static_cast<Proc>(call.proc)) {
    case Proc::kGetattr:
    case Proc::kPathconf:
      if (auto a = rpc::message_cast<nfs::GetattrArgs>(call.args)) return a->fh;
      return {};
    case Proc::kSetattr:
      if (auto a = rpc::message_cast<nfs::SetattrArgs>(call.args)) return a->fh;
      return {};
    case Proc::kLookup:
      if (auto a = rpc::message_cast<nfs::LookupArgs>(call.args)) return a->dir;
      return {};
    case Proc::kAccess:
      if (auto a = rpc::message_cast<nfs::AccessArgs>(call.args)) return a->fh;
      return {};
    case Proc::kReadlink:
      if (auto a = rpc::message_cast<nfs::ReadlinkArgs>(call.args)) return a->fh;
      return {};
    case Proc::kRead:
      if (auto a = rpc::message_cast<nfs::ReadArgs>(call.args)) return a->fh;
      return {};
    case Proc::kWrite:
      if (auto a = rpc::message_cast<nfs::WriteArgs>(call.args)) return a->fh;
      return {};
    case Proc::kCommit:
      if (auto a = rpc::message_cast<nfs::CommitArgs>(call.args)) return a->fh;
      return {};
    case Proc::kCreate:
      if (auto a = rpc::message_cast<nfs::CreateArgs>(call.args)) return a->dir;
      return {};
    case Proc::kMkdir:
      if (auto a = rpc::message_cast<nfs::MkdirArgs>(call.args)) return a->dir;
      return {};
    case Proc::kSymlink:
      if (auto a = rpc::message_cast<nfs::SymlinkArgs>(call.args)) return a->dir;
      return {};
    case Proc::kRemove:
    case Proc::kRmdir:
      if (auto a = rpc::message_cast<nfs::RemoveArgs>(call.args)) return a->dir;
      return {};
    case Proc::kRename:
      if (auto a = rpc::message_cast<nfs::RenameArgs>(call.args)) return a->from_dir;
      return {};
    case Proc::kLink:
      if (auto a = rpc::message_cast<nfs::LinkArgs>(call.args)) return a->file;
      return {};
    case Proc::kReaddir:
      if (auto a = rpc::message_cast<nfs::ReaddirArgs>(call.args)) return a->dir;
      return {};
    case Proc::kReaddirplus:
      if (auto a = rpc::message_cast<nfs::ReaddirplusArgs>(call.args)) return a->dir;
      return {};
    case Proc::kLeaseAcquire:
      if (auto a = rpc::message_cast<nfs::LeaseArgs>(call.args)) return a->fh;
      return {};
    case Proc::kLeaseRelease:
      if (auto a = rpc::message_cast<nfs::LeaseReleaseArgs>(call.args)) return a->fh;
      return {};
    default:
      return {};
  }
}

int ShardRouter::best_read_replica_(const std::vector<u32>& set) const {
  // The returned index is only as good as the live set it was scanned from;
  // the caller dereferences it immediately, so the scan must not yield.
  YieldGuard yield_free(live_set_epoch_);
  int best = -1;
  double best_ms = 0.0;
  for (u32 j : set) {
    const Origin& o = origins_[j];
    if (!o.live) continue;
    // An unsampled replica estimates 0 so it gets traffic immediately; the
    // strict < keeps the earlier replica-set position on ties.
    double est = o.ewma_valid ? o.ewma_ms : 0.0;
    if (best < 0 || est < best_ms) {
      best = static_cast<int>(j);
      best_ms = est;
    }
  }
  return best;
}

void ShardRouter::note_read_latency_(u32 j, double sample_ms) {
  Origin& o = origins_[j];
  if (!o.ewma_valid) {
    o.ewma_ms = sample_ms;
    o.ewma_valid = true;
    return;
  }
  o.ewma_ms = cfg_.latency_alpha * sample_ms + (1.0 - cfg_.latency_alpha) * o.ewma_ms;
}

void ShardRouter::mark_dead_(sim::Process& p, u32 j) {
  Origin& o = origins_[j];
  if (!o.live) return;
  o.live = false;
  ++o.dead_epoch;
  live_set_epoch_.bump();
  o.died_at = p.now();
  o.next_probe = p.now() + cfg_.probe_interval;
  failovers_.inc();
}

void ShardRouter::journal_op_(u32 j, const rpc::RpcCall& call) {
  // COMMITs are never journaled: replay upgrades WRITEs to FILE_SYNC, which
  // subsumes them.
  if (call.prog == rpc::kNfsProgram &&
      static_cast<nfs::Proc>(call.proc) == nfs::Proc::kCommit) {
    return;
  }
  origins_[j].journal.push_back(
      Origin::JournalEntry{call.prog, call.vers, call.proc, call.cred, call.args});
  journal_epoch_.bump();
  journaled_ops_.inc();
}

void ShardRouter::maybe_probe_(sim::Process& p) {
  // gvfs-lint: allow(yield-index-loop) origins_ is a deque sized once at construction; indices and element addresses are stable for the router's lifetime
  for (u32 j = 0; j < origin_count(); ++j) {
    const Origin& o = origins_[j];
    if (o.live || o.reintegrating || p.now() < o.next_probe) continue;
    (void)try_reintegrate_(p, j);
  }
}

void ShardRouter::resync(sim::Process& p) {
  // gvfs-lint: allow(yield-index-loop) origins_ is a deque sized once at construction; indices and element addresses are stable for the router's lifetime
  for (u32 j = 0; j < origin_count(); ++j) {
    if (origins_[j].live) continue;
    origins_[j].next_probe = p.now();
    (void)try_reintegrate_(p, j);
  }
}

bool ShardRouter::try_reintegrate_(sim::Process& p, u32 j) {
  // gvfs-lint: allow(yield-stale-ref) origins_ is a deque sized once at construction: the reference cannot dangle, and the reintegrating flag makes this fiber the only resyncer of origin j
  Origin& o = origins_[j];
  if (o.live) return true;
  if (o.reintegrating) return false;
  o.reintegrating = true;
  o.next_probe = p.now() + cfg_.probe_interval;
  probes_.inc();

  rpc::RpcCall ping;
  ping.xid = fresh_xid_();
  ping.prog = rpc::kNfsProgram;
  ping.vers = rpc::kNfsVersion3;
  ping.proc = static_cast<u32>(nfs::Proc::kNull);
  rpc::RpcReply pong = chans_[j]->call(p, ping);
  if (timed_out(pong)) {
    probe_failures_.inc();
    o.next_probe = p.now() + cfg_.probe_interval;
    o.reintegrating = false;
    return false;
  }

  // Catch-up resync: replay the journal in order with fresh xids. Writers
  // that run while we're blocked inside a replay RPC still see the origin as
  // dead and append to the journal; the loop drains those too, and nothing
  // yields between the final emptiness check and going live.
  for (;;) {
    {
      // The emptiness check and the go-live flip below must run back-to-back:
      // a yield sneaking in between would let a writer journal an op that
      // this reintegration then silently skips. The analyzer proves this
      // stretch yield-free; the guard turns the proof into a debug assertion.
      YieldGuard yield_free(journal_epoch_);
      if (o.journal.empty()) {
        o.live = true;
        live_set_epoch_.bump();
        break;
      }
    }
    Origin::JournalEntry e = std::move(o.journal.front());
    o.journal.pop_front();
    journal_epoch_.bump();
    rpc::RpcCall c;
    c.xid = fresh_xid_();
    c.prog = e.prog;
    c.vers = e.vers;
    c.proc = e.proc;
    c.cred = e.cred;
    c.args = e.args;
    if (c.prog == rpc::kNfsProgram &&
        static_cast<nfs::Proc>(c.proc) == nfs::Proc::kWrite) {
      if (auto wa = rpc::message_cast<nfs::WriteArgs>(e.args)) {
        // Replayed data must not depend on a verifier round trip again:
        // upgrade to FILE_SYNC so the origin is durable when it rejoins.
        auto up = std::make_shared<nfs::WriteArgs>(*wa);
        up->stable = nfs::StableHow::kFileSync;
        c.args = up;
      }
    }
    rpc::RpcReply r = chans_[j]->call(p, c);
    if (timed_out(r)) {
      // Died again mid-replay: put the op back and stay dead.
      o.journal.push_front(std::move(e));
      journal_epoch_.bump();
      probe_failures_.inc();
      o.next_probe = p.now() + cfg_.probe_interval;
      o.reintegrating = false;
      return false;
    }
    replayed_ops_.inc();
    if (!r.status.is_ok()) {
      // E.g. a replayed CREATE hitting kExist because the origin executed
      // the original before crashing (the reply was what got lost). The
      // namespace already converged; note it and continue.
      replay_conflicts_.inc();
    }
  }

  o.reintegrating = false;
  // Seed the read-latency estimate from the slowest live peer instead of
  // resetting it: an invalid estimate scores 0.0 in best_read_replica_, so a
  // rejoined replica (cold page cache, mid-resync) used to instantly absorb
  // the full read fan-out. Seeding at the peers' ceiling lets real samples
  // decay it into place without the thundering herd.
  double peer_ceiling = 0.0;
  bool have_peer = false;
  // gvfs-lint: allow(yield-index-loop) origins_ is a deque sized once at construction; this scan does not yield
  for (u32 k = 0; k < origin_count(); ++k) {
    if (k == j || !origins_[k].live || !origins_[k].ewma_valid) continue;
    peer_ceiling = std::max(peer_ceiling, origins_[k].ewma_ms);
    have_peer = true;
  }
  o.ewma_valid = have_peer;
  o.ewma_ms = have_peer ? peer_ceiling : 0.0;
  double outage = to_ms(p.now() - o.died_at);
  outage_ms_.observe(outage);
  last_outage_ms_ = outage;
  resyncs_.inc();
  return true;
}

u64 ShardRouter::combined_verf_(const std::vector<u32>& set,
                                const std::vector<char>& ok,
                                const std::vector<u64>& verf) const {
  // The combined verifier must reflect one consistent live-set snapshot:
  // a yield mid-fold could mix dead-epochs from before and after a failover.
  YieldGuard yield_free(live_set_epoch_);
  u64 combined = kCombinedVerfSeed;
  for (std::size_t k = 0; k < set.size(); ++k) {
    u32 j = set[k];
    // A dead replica contributes its dead-epoch instead of a verifier: the
    // value is stable while it stays dead (re-sent WRITEs and the following
    // COMMIT agree and can ack), but any death or reintegration in between
    // shifts it and forces the proxy's re-send path.
    u64 part = ok[k] ? hash_combine(static_cast<u64>(j) + 1, verf[k])
                     : hash_combine(0xdeadULL, (static_cast<u64>(j) + 1) ^
                                                   origins_[j].dead_epoch);
    combined = hash_combine(combined, part);
  }
  return combined;
}

rpc::RpcReply ShardRouter::call(sim::Process& p, const rpc::RpcCall& call) {
  maybe_probe_(p);
  switch (classify_(call)) {
    case Route::kReadOne: {
      nfs::Fh fh = route_fh_(call);
      if (!fh.valid()) return any_origin_(p, call);
      return read_one_(p, call, fh);
    }
    case Route::kQuorumWrite: {
      nfs::Fh fh = route_fh_(call);
      if (!fh.valid()) return any_origin_(p, call);
      return quorum_write_(p, call, fh);
    }
    case Route::kBroadcast:
      return broadcast_(p, call);
    case Route::kAnyOrigin:
      return any_origin_(p, call);
  }
  return any_origin_(p, call);
}

rpc::RpcReply ShardRouter::read_one_(sim::Process& p, const rpc::RpcCall& call,
                                     const nfs::Fh& fh) {
  std::vector<u32> set = replicas_of(shard_of(fh));
  for (;;) {
    int j = best_read_replica_(set);
    if (j < 0) {
      return rpc::make_error_reply(call,
                                   err(ErrCode::kTimeout, "no live replica"));
    }
    SimTime t0 = p.now();
    rpc::RpcReply r = chans_[j]->call(p, call);
    if (timed_out(r)) {
      mark_dead_(p, static_cast<u32>(j));
      read_reroutes_.inc();
      continue;
    }
    origins_[j].reads_routed.inc();
    note_read_latency_(static_cast<u32>(j), to_ms(p.now() - t0));
    if (static_cast<nfs::Proc>(call.proc) == nfs::Proc::kLookup) {
      return patch_lookup_attrs_(p, call, std::move(r), static_cast<u32>(j));
    }
    return r;
  }
}

rpc::RpcReply ShardRouter::patch_lookup_attrs_(sim::Process& p,
                                               const rpc::RpcCall& call,
                                               rpc::RpcReply reply, u32 served) {
  if (!reply.status.is_ok()) return reply;
  auto res = rpc::message_cast<nfs::LookupRes>(reply.result);
  if (!res || res->status != ErrCode::kOk || !res->fh.valid()) return reply;
  std::vector<u32> home = replicas_of(shard_of(res->fh));
  if (std::find(home.begin(), home.end(), served) != home.end()) return reply;
  // The directory's replica answered, but the object's data (and thus its
  // size/mtime) lives on another shard: fetch authoritative attrs there.
  int j = best_read_replica_(home);
  if (j < 0) return reply;  // whole home shard dead — stale attrs beat none
  rpc::RpcCall ga;
  ga.xid = fresh_xid_();
  ga.prog = rpc::kNfsProgram;
  ga.vers = rpc::kNfsVersion3;
  ga.proc = static_cast<u32>(nfs::Proc::kGetattr);
  ga.cred = call.cred;
  auto args = std::make_shared<nfs::GetattrArgs>();
  args->fh = res->fh;
  ga.args = args;
  SimTime t0 = p.now();
  rpc::RpcReply gr = chans_[j]->call(p, ga);
  if (timed_out(gr)) {
    mark_dead_(p, static_cast<u32>(j));
    return reply;
  }
  origins_[j].reads_routed.inc();
  note_read_latency_(static_cast<u32>(j), to_ms(p.now() - t0));
  auto gres = rpc::message_cast<nfs::GetattrRes>(gr.result);
  if (!gr.status.is_ok() || !gres || gres->status != ErrCode::kOk) return reply;
  auto patched = std::make_shared<nfs::LookupRes>(*res);
  patched->obj_attr.attr = gres->attr.a;
  lookup_patches_.inc();
  return rpc::make_reply(call, patched);
}

sim::Semaphore& ShardRouter::shard_write_lock_(sim::Process& p, u32 shard) {
  if (shard_write_locks_.empty()) shard_write_locks_.resize(chans_.size());
  auto& slot = shard_write_locks_[shard];
  if (!slot) {
    slot = std::make_unique<sim::Semaphore>(
        p.kernel(), 1, cfg_.name + "-shard" + std::to_string(shard) + "-write");
  }
  return *slot;
}

rpc::RpcReply ShardRouter::quorum_write_(sim::Process& p,
                                         const rpc::RpcCall& call,
                                         const nfs::Fh& fh) {
  const auto proc = static_cast<nfs::Proc>(call.proc);
  const bool is_commit = proc == nfs::Proc::kCommit;
  const bool is_lease = proc == nfs::Proc::kLeaseAcquire ||
                        proc == nfs::Proc::kLeaseRelease;
  (is_commit ? quorum_commits_ : quorum_writes_).inc();
  // Serializing the fan-out is the point of this permit: a second writer
  // slipping in while this one is blocked on a replica RPC could execute in
  // one order on the live replicas but journal in the opposite order for a
  // dead one, and the replay would diverge the replicas.
  // gvfs-yield: allow-held per-shard writer serialization must span the whole replica fan-out
  sim::ScopedPermit writer(p, shard_write_lock_(p, shard_of(fh)));
  std::vector<u32> set = replicas_of(shard_of(fh));
  std::vector<char> ok(set.size(), 0);
  std::vector<u64> verf(set.size(), 0);
  rpc::RpcReply first_ok;
  bool have_ok = false;
  rpc::RpcReply first_err;
  bool have_err = false;
  for (std::size_t k = 0; k < set.size(); ++k) {
    u32 j = set[k];
    if (!origins_[j].live) {
      journal_op_(j, call);
      continue;
    }
    rpc::RpcReply r = chans_[j]->call(p, call);
    if (timed_out(r)) {
      mark_dead_(p, j);
      journal_op_(j, call);
      continue;
    }
    if (!r.status.is_ok()) {
      if (!have_err) {
        first_err = std::move(r);
        have_err = true;
      }
      continue;
    }
    origins_[j].writes_routed.inc();
    ok[k] = 1;
    if (is_commit) {
      auto res = rpc::message_cast<nfs::CommitRes>(r.result);
      verf[k] = (res && res->status == ErrCode::kOk) ? res->verifier : 0;
    } else {
      auto res = rpc::message_cast<nfs::WriteRes>(r.result);
      verf[k] = (res && res->status == ErrCode::kOk) ? res->verifier : 0;
    }
    if (!have_ok) {
      first_ok = std::move(r);
      have_ok = true;
    }
  }
  if (!have_ok) {
    if (have_err) return first_err;
    return rpc::make_error_reply(
        call, err(ErrCode::kTimeout, "no live replica for shard"));
  }
  // Lease ops carry no write verifier: the first live replica's verdict is
  // the shard's verdict (replicas process the serialized fan-out in the same
  // order, so their lease tables agree).
  if (is_lease) return first_ok;
  u64 combined = combined_verf_(set, ok, verf);
  if (is_commit) {
    auto res = rpc::message_cast<nfs::CommitRes>(first_ok.result);
    if (!res || res->status != ErrCode::kOk) return first_ok;
    auto out = std::make_shared<nfs::CommitRes>(*res);
    out->verifier = combined;
    return rpc::make_reply(call, out);
  }
  auto res = rpc::message_cast<nfs::WriteRes>(first_ok.result);
  if (!res || res->status != ErrCode::kOk) return first_ok;
  auto out = std::make_shared<nfs::WriteRes>(*res);
  out->verifier = combined;
  return rpc::make_reply(call, out);
}

rpc::RpcReply ShardRouter::broadcast_(sim::Process& p, const rpc::RpcCall& call) {
  broadcasts_.inc();
  rpc::RpcReply best;
  bool have = false;
  rpc::RpcReply first_err;
  bool have_err = false;
  // gvfs-lint: allow(yield-index-loop) origins_ is a deque sized once at construction; liveness is re-read from origins_[j] on each round
  for (u32 j = 0; j < origin_count(); ++j) {
    if (!origins_[j].live) {
      journal_op_(j, call);
      continue;
    }
    rpc::RpcReply r = chans_[j]->call(p, call);
    if (timed_out(r)) {
      mark_dead_(p, j);
      journal_op_(j, call);
      continue;
    }
    if (!r.status.is_ok()) {
      if (!have_err) {
        first_err = std::move(r);
        have_err = true;
      }
      continue;
    }
    if (!have) {
      best = std::move(r);
      have = true;
    }
  }
  if (have) return best;
  if (have_err) return first_err;
  return rpc::make_error_reply(call, err(ErrCode::kTimeout, "no live origin"));
}

rpc::RpcReply ShardRouter::any_origin_(sim::Process& p, const rpc::RpcCall& call) {
  // gvfs-lint: allow(yield-index-loop) origins_ is a deque sized once at construction; liveness is re-read from origins_[j] on each round
  for (u32 j = 0; j < origin_count(); ++j) {
    if (!origins_[j].live) continue;
    rpc::RpcReply r = chans_[j]->call(p, call);
    if (timed_out(r)) {
      mark_dead_(p, j);
      continue;
    }
    return r;
  }
  return rpc::make_error_reply(call, err(ErrCode::kTimeout, "no live origin"));
}

std::vector<rpc::RpcReply> ShardRouter::call_pipelined(
    sim::Process& p, const std::vector<rpc::RpcCall>& calls) {
  if (calls.empty()) return {};
  maybe_probe_(p);
  // Uniform single-shard READ and WRITE bursts keep their pipelined shape
  // (the proxy's prefetch and flush paths are exactly these); anything else
  // degrades to serial routing.
  bool uniform = calls[0].prog == rpc::kNfsProgram;
  auto proc0 = static_cast<nfs::Proc>(calls[0].proc);
  nfs::Fh fh0 = route_fh_(calls[0]);
  uniform = uniform && fh0.valid() &&
            (proc0 == nfs::Proc::kRead || proc0 == nfs::Proc::kWrite);
  u32 shard0 = fh0.valid() ? shard_of(fh0) : 0;
  for (std::size_t i = 1; uniform && i < calls.size(); ++i) {
    if (calls[i].prog != rpc::kNfsProgram ||
        static_cast<nfs::Proc>(calls[i].proc) != proc0) {
      uniform = false;
      break;
    }
    nfs::Fh f = route_fh_(calls[i]);
    if (!f.valid() || shard_of(f) != shard0) uniform = false;
  }
  if (!uniform) {
    std::vector<rpc::RpcReply> out;
    out.reserve(calls.size());
    for (const rpc::RpcCall& c : calls) out.push_back(call(p, c));
    return out;
  }
  if (proc0 == nfs::Proc::kRead) return pipelined_read_(p, calls, shard0);
  return pipelined_write_(p, calls, shard0);
}

std::vector<rpc::RpcReply> ShardRouter::pipelined_read_(
    sim::Process& p, const std::vector<rpc::RpcCall>& calls, u32 shard) {
  std::vector<u32> set = replicas_of(shard);
  std::vector<rpc::RpcReply> out(calls.size());
  std::vector<std::size_t> todo(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) todo[i] = i;
  while (!todo.empty()) {
    int j = best_read_replica_(set);
    if (j < 0) {
      for (std::size_t i : todo) {
        out[i] = rpc::make_error_reply(calls[i],
                                       err(ErrCode::kTimeout, "no live replica"));
      }
      break;
    }
    std::vector<rpc::RpcCall> batch;
    batch.reserve(todo.size());
    for (std::size_t i : todo) batch.push_back(calls[i]);
    SimTime t0 = p.now();
    std::vector<rpc::RpcReply> rs = chans_[j]->call_pipelined(p, batch);
    std::vector<std::size_t> next;
    for (std::size_t k = 0; k < rs.size(); ++k) {
      if (timed_out(rs[k])) {
        next.push_back(todo[k]);
      } else {
        origins_[j].reads_routed.inc();
        out[todo[k]] = std::move(rs[k]);
      }
    }
    if (!next.empty()) {
      mark_dead_(p, static_cast<u32>(j));
      read_reroutes_.inc();
    } else {
      note_read_latency_(static_cast<u32>(j),
                         to_ms(p.now() - t0) / static_cast<double>(rs.size()));
    }
    todo = std::move(next);
  }
  return out;
}

std::vector<rpc::RpcReply> ShardRouter::pipelined_write_(
    sim::Process& p, const std::vector<rpc::RpcCall>& calls, u32 shard) {
  // Same writer serialization as quorum_write_: the whole burst must land in
  // the same relative order on every replica's execution path and journal.
  // gvfs-yield: allow-held per-shard writer serialization must span the whole replica fan-out
  sim::ScopedPermit writer(p, shard_write_lock_(p, shard));
  std::vector<u32> set = replicas_of(shard);
  // ok[i][k] / verf[i][k]: call i's outcome on replica set[k].
  std::vector<std::vector<char>> ok(calls.size(),
                                    std::vector<char>(set.size(), 0));
  std::vector<std::vector<u64>> verf(calls.size(),
                                     std::vector<u64>(set.size(), 0));
  std::vector<rpc::RpcReply> first_ok(calls.size());
  std::vector<char> have(calls.size(), 0);
  for (std::size_t k = 0; k < set.size(); ++k) {
    u32 j = set[k];
    if (!origins_[j].live) {
      for (const rpc::RpcCall& c : calls) journal_op_(j, c);
      continue;
    }
    std::vector<rpc::RpcReply> rs = chans_[j]->call_pipelined(p, calls);
    bool died = false;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (timed_out(rs[i])) {
        died = true;
        journal_op_(j, calls[i]);
        continue;
      }
      if (!rs[i].status.is_ok()) continue;
      origins_[j].writes_routed.inc();
      auto res = rpc::message_cast<nfs::WriteRes>(rs[i].result);
      ok[i][k] = 1;
      verf[i][k] = (res && res->status == ErrCode::kOk) ? res->verifier : 0;
      if (!have[i]) {
        first_ok[i] = std::move(rs[i]);
        have[i] = 1;
      }
    }
    if (died) mark_dead_(p, j);
  }
  std::vector<rpc::RpcReply> out(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    quorum_writes_.inc();
    if (!have[i]) {
      out[i] = rpc::make_error_reply(
          calls[i], err(ErrCode::kTimeout, "no live replica for shard"));
      continue;
    }
    auto res = rpc::message_cast<nfs::WriteRes>(first_ok[i].result);
    if (!res || res->status != ErrCode::kOk) {
      out[i] = std::move(first_ok[i]);
      continue;
    }
    auto synth = std::make_shared<nfs::WriteRes>(*res);
    synth->verifier = combined_verf_(set, ok[i], verf[i]);
    out[i] = rpc::make_reply(calls[i], synth);
  }
  return out;
}

void ShardRouter::register_metrics(metrics::Registry& r,
                                   const std::string& prefix) const {
  r.register_counter(prefix + "failovers", &failovers_);
  r.register_counter(prefix + "resyncs", &resyncs_);
  r.register_counter(prefix + "probes", &probes_);
  r.register_counter(prefix + "probe_failures", &probe_failures_);
  r.register_counter(prefix + "journaled_ops", &journaled_ops_);
  r.register_counter(prefix + "replayed_ops", &replayed_ops_);
  r.register_counter(prefix + "replay_conflicts", &replay_conflicts_);
  r.register_counter(prefix + "quorum_writes", &quorum_writes_);
  r.register_counter(prefix + "quorum_commits", &quorum_commits_);
  r.register_counter(prefix + "broadcasts", &broadcasts_);
  r.register_counter(prefix + "read_reroutes", &read_reroutes_);
  r.register_counter(prefix + "lookup_patches", &lookup_patches_);
  r.register_histogram(prefix + "outage_ms", &outage_ms_);
  for (std::size_t j = 0; j < origins_.size(); ++j) {
    std::string op = prefix + "origin" + std::to_string(j) + ".";
    r.register_counter(op + "reads_routed", &origins_[j].reads_routed);
    r.register_counter(op + "writes_routed", &origins_[j].writes_routed);
  }
}

}  // namespace gvfs::proxy
