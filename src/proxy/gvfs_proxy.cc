#include "proxy/gvfs_proxy.h"

#include <algorithm>

#include "blob/extent_store.h"
#include "common/log.h"

namespace gvfs::proxy {

using nfs::Fh;
using nfs::NfsStat;
using nfs::Proc;

GvfsProxy::GvfsProxy(ProxyConfig cfg, rpc::RpcChannel& upstream)
    : cfg_(std::move(cfg)), upstream_(upstream) {}

void GvfsProxy::attach_block_cache(cache::ProxyDiskCache& c) {
  block_cache_ = &c;
  c.set_writeback([this](sim::Process& p, const cache::BlockId& id,
                         const blob::BlobRef& data) {
    return cache_writeback_(p, id, data);
  });
}

void GvfsProxy::attach_file_channel(meta::FileChannelClient& channel,
                                    cache::FileCache& fc) {
  file_channel_ = &channel;
  file_cache_ = &fc;
  fc.set_upload([this](sim::Process& p, u64 key, const blob::BlobRef& content) {
    auto it = key_to_fh_.find(key);
    if (it == key_to_fh_.end()) return err(ErrCode::kStale, "unknown file key");
    return file_channel_->upload_from_cache(p, key, it->second.fileid, content);
  });
}

void GvfsProxy::reset_stats() {
  calls_received_.reset();
  calls_forwarded_.reset();
  block_hits_.reset();
  file_hits_.reset();
  zero_filtered_.reset();
  writes_absorbed_.reset();
  blocks_prefetched_.reset();
  degraded_reads_.reset();
  queued_writebacks_.reset();
  replayed_writebacks_.reset();
  outage_total_ = last_recovery_time_ = 0;
}

// ------------------------------------------------------- upstream helpers --

Result<rpc::MessagePtr> GvfsProxy::upstream_call_(sim::Process& p, Proc proc,
                                                  rpc::MessagePtr args,
                                                  const rpc::Credential& cred) {
  rpc::RpcCall c;
  c.xid = next_xid_++;
  c.prog = rpc::kNfsProgram;
  c.vers = rpc::kNfsVersion3;
  c.proc = static_cast<u32>(proc);
  c.cred = cred;
  c.args = std::move(args);
  calls_forwarded_.inc();
  rpc::RpcReply reply = upstream_.call(p, c);
  if (!reply.status.is_ok()) {
    if (reply.status.code() == ErrCode::kTimeout) note_upstream_timeout_(p.now());
    return reply.status;
  }
  note_upstream_ok_(p);
  return reply.result;
}

template <typename Res>
Result<std::shared_ptr<const Res>> GvfsProxy::upstream_as_(sim::Process& p, Proc proc,
                                                           rpc::MessagePtr args,
                                                           const rpc::Credential& cred) {
  GVFS_ASSIGN_OR_RETURN(rpc::MessagePtr m, upstream_call_(p, proc, std::move(args), cred));
  auto res = rpc::message_cast<Res>(m);
  if (!res) return err(ErrCode::kBadXdr, "unexpected upstream result");
  return res;
}

rpc::RpcReply GvfsProxy::forward_(sim::Process& p, const rpc::RpcCall& call) {
  rpc::RpcCall fwd = call;
  fwd.xid = next_xid_++;
  if (cred_mapper_) fwd.cred = cred_mapper_(call.cred);
  calls_forwarded_.inc();
  if (tracer_) tracer_->annotate(&p, cfg_.name, "forward", p.now());
  rpc::RpcReply reply = upstream_.call(p, fwd);
  if (reply.status.code() == ErrCode::kTimeout) {
    note_upstream_timeout_(p.now());
  } else if (reply.status.is_ok()) {
    note_upstream_ok_(p);
  }
  reply.xid = call.xid;
  return reply;
}

// ---------------------------------------------------------- attr tracking --

std::optional<vfs::Attr> GvfsProxy::cached_attr_(const Fh& fh, SimTime now) const {
  auto it = attr_cache_.find(fh.key());
  if (it == attr_cache_.end() || it->second.expires <= now) return std::nullopt;
  return it->second.attr;
}

void GvfsProxy::remember_attr_(const Fh& fh, const vfs::Attr& a, SimTime now) {
  attr_cache_[fh.key()] = CachedAttr{a, now + cfg_.attr_ttl};
  key_to_fh_[fh.key()] = fh;
}

u64 GvfsProxy::effective_size_(const Fh& fh, const std::optional<vfs::Attr>& a) const {
  u64 size = a ? a->size : 0;
  auto it = size_override_.find(fh.key());
  if (it != size_override_.end()) size = std::max(size, it->second);
  return size;
}

// -------------------------------------------------------------- meta-data --

const meta::MetaFile* GvfsProxy::meta_for_(sim::Process& p, const Fh& fh,
                                           const rpc::Credential& cred) {
  if (!cfg_.enable_meta) return nullptr;
  u64 key = fh.key();
  auto hit = metas_.find(key);
  if (hit != metas_.end()) return &hit->second;
  if (meta_negative_.count(key) != 0) return nullptr;
  auto parent = parents_.find(key);
  if (parent == parents_.end()) {
    meta_negative_.insert(key);
    return nullptr;
  }

  // Probe for "<dir>/.<name>.gvfsmeta" upstream.
  auto largs = std::make_shared<nfs::LookupArgs>();
  largs->dir = parent->second.dir;
  largs->name = meta::MetaFile::meta_name_for(parent->second.name);
  auto lres = upstream_as_<nfs::LookupRes>(p, Proc::kLookup, largs, cred);
  if (!lres.is_ok() || (*lres)->status != NfsStat::kOk) {
    meta_negative_.insert(key);
    return nullptr;
  }
  Fh meta_fh = (*lres)->fh;
  u64 meta_size = (*lres)->obj_attr.attr ? (*lres)->obj_attr.attr->size : 0;
  if (meta_size == 0 || meta_size > 64_MiB) {
    meta_negative_.insert(key);
    return nullptr;
  }

  // Read the whole (small) meta-data file over the block channel.
  blob::ExtentStore content;
  u64 off = 0;
  while (off < meta_size) {
    auto rargs = std::make_shared<nfs::ReadArgs>();
    rargs->fh = meta_fh;
    rargs->offset = off;
    rargs->count = static_cast<u32>(std::min<u64>(cfg_.fetch_block, meta_size - off));
    auto rres = upstream_as_<nfs::ReadRes>(p, Proc::kRead, rargs, cred);
    if (!rres.is_ok() || (*rres)->status != NfsStat::kOk || (*rres)->count == 0) {
      meta_negative_.insert(key);
      return nullptr;
    }
    content.write_blob(off, (*rres)->data, 0, (*rres)->count);
    off += (*rres)->count;
    if ((*rres)->eof) break;
  }
  auto parsed = meta::MetaFile::parse(*content.snapshot());
  if (!parsed.is_ok()) {
    GVFS_WARN("proxy") << cfg_.name << ": malformed meta-data file ignored";
    meta_negative_.insert(key);
    return nullptr;
  }
  auto [it, inserted] = metas_.emplace(key, std::move(parsed).value());
  (void)inserted;
  return &it->second;
}

// ------------------------------------------------------------ block cache --

Result<blob::BlobRef> GvfsProxy::get_block_(sim::Process& p, const Fh& fh, u64 block,
                                            const rpc::Credential& cred) {
  cache::BlockId id{fh.key(), block};
  if (auto hit = block_cache_->lookup(p, id)) {
    block_hits_.inc();
    if (upstream_down_) degraded_reads_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "block_cache_hit", p.now());
    return *hit;
  }
  if (upstream_down_) {
    // A dirty block may have been evicted into the write queue; its data
    // must stay readable while the upstream is unreachable.
    if (auto queued = queued_block_(fh.key(), block)) {
      degraded_reads_.inc();
      if (tracer_) tracer_->annotate(&p, cfg_.name, "degraded_read", p.now());
      return *queued;
    }
  }
  if (tracer_) tracer_->annotate(&p, cfg_.name, "block_cache_miss", p.now());
  auto rargs = std::make_shared<nfs::ReadArgs>();
  rargs->fh = fh;
  rargs->offset = block * cfg_.fetch_block;
  rargs->count = cfg_.fetch_block;
  GVFS_ASSIGN_OR_RETURN(auto rres, upstream_as_<nfs::ReadRes>(p, Proc::kRead, rargs, cred));
  if (rres->status != NfsStat::kOk) return err(rres->status, "upstream read");
  if (rres->attr.attr) remember_attr_(fh, *rres->attr.attr, p.now());
  blob::BlobRef data = rres->count > 0 ? rres->data : blob::zero_ref(0);
  if (rres->count > 0) {
    GVFS_RETURN_IF_ERROR(block_cache_->insert(p, id, data, /*dirty=*/false));
  }
  return data;
}

void GvfsProxy::maybe_prefetch_(sim::Process& p, const nfs::Fh& fh, u64 block,
                                u64 file_size, const rpc::Credential& cred) {
  AccessProfile& prof = profiles_[fh.key()];
  if (prof.last_block != ~u64{0} && block == prof.last_block + 1) {
    ++prof.run;
  } else if (block != prof.last_block) {
    prof.run = 0;
  }
  prof.last_block = block;
  if (cfg_.prefetch_depth == 0 || block_cache_ == nullptr ||
      prof.run < cfg_.prefetch_trigger) {
    return;
  }
  // Keep a read-ahead window of `prefetch_depth` blocks open: refill only
  // when the reader has consumed half of it, so the refill is a genuinely
  // pipelined multi-block burst (one RTT amortized over the batch), not a
  // degenerate one-block fetch per request.
  if (block + cfg_.prefetch_depth / 2 < prof.ahead_until) return;
  u64 refill_from = std::max(block + 1, prof.ahead_until);
  u64 refill_to = block + cfg_.prefetch_depth;  // inclusive
  prof.ahead_until = refill_to + 1;

  // Pipeline the missing blocks of the window in one overlapped burst.
  std::vector<rpc::RpcCall> calls;
  std::vector<u64> blocks;
  for (u64 b = refill_from; b <= refill_to; ++b) {
    u64 start = b * cfg_.fetch_block;
    if (start >= file_size) break;
    if (block_cache_->contains(cache::BlockId{fh.key(), b})) continue;
    auto args = std::make_shared<nfs::ReadArgs>();
    args->fh = fh;
    args->offset = start;
    args->count = cfg_.fetch_block;
    rpc::RpcCall c;
    c.xid = next_xid_++;
    c.prog = rpc::kNfsProgram;
    c.vers = rpc::kNfsVersion3;
    c.proc = static_cast<u32>(Proc::kRead);
    c.cred = cred;
    c.args = std::move(args);
    calls.push_back(std::move(c));
    blocks.push_back(b);
  }
  if (calls.empty()) return;
  calls_forwarded_.inc(calls.size());
  std::vector<rpc::RpcReply> replies = upstream_.call_pipelined(p, calls);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].status.is_ok()) continue;
    auto res = rpc::message_cast<nfs::ReadRes>(replies[i].result);
    if (!res || res->status != NfsStat::kOk || res->count == 0) continue;
    if (res->attr.attr) remember_attr_(fh, *res->attr.attr, p.now());
    (void)block_cache_->insert(p, cache::BlockId{fh.key(), blocks[i]}, res->data,
                               /*dirty=*/false);
    blocks_prefetched_.inc();
  }
}

Status GvfsProxy::cache_writeback_(sim::Process& p, const cache::BlockId& id,
                                   const blob::BlobRef& data) {
  auto it = key_to_fh_.find(id.file_key);
  if (it == key_to_fh_.end()) return err(ErrCode::kStale, "writeback: unknown fh");
  auto wargs = std::make_shared<nfs::WriteArgs>();
  wargs->fh = it->second;
  wargs->offset = id.block * cfg_.fetch_block;
  wargs->count = data ? static_cast<u32>(data->size()) : 0;
  wargs->stable = nfs::StableHow::kFileSync;
  wargs->data = data;
  auto res = upstream_as_<nfs::WriteRes>(p, Proc::kWrite, wargs, session_cred_);
  if (!res.is_ok()) {
    if (cfg_.degraded_mode && res.code() == ErrCode::kTimeout) {
      // Upstream unreachable: the dirty block is leaving the cache, so park
      // it in the replay queue instead of losing it (or the eviction).
      write_queue_.push_back(
          PendingWrite{it->second, id.block * cfg_.fetch_block, data});
      queued_writebacks_.inc();
      return Status::ok();
    }
    return res.status();
  }
  if ((*res)->status != NfsStat::kOk) return err((*res)->status, "writeback write");
  if ((*res)->attr.attr) remember_attr_(it->second, *(*res)->attr.attr, p.now());
  return Status::ok();
}

// ---------------------------------------------------------- degraded mode --

void GvfsProxy::note_upstream_timeout_(SimTime now) {
  if (!cfg_.degraded_mode) return;
  if (!upstream_down_) {
    upstream_down_ = true;
    outage_started_ = now;
  }
}

void GvfsProxy::note_upstream_ok_(sim::Process& p) {
  if (!cfg_.degraded_mode || !upstream_down_ || replaying_) return;
  // First successful upstream call after an outage: reconnect — drain the
  // queued write-backs before declaring recovery.
  (void)replay_write_queue_(p);
}

Status GvfsProxy::replay_write_queue_(sim::Process& p) {
  if (!upstream_down_ && write_queue_.empty()) return Status::ok();
  if (replaying_) return Status::ok();
  replaying_ = true;
  std::size_t done = 0;
  Status st = Status::ok();
  for (; done < write_queue_.size(); ++done) {
    const PendingWrite& w = write_queue_[done];
    auto wargs = std::make_shared<nfs::WriteArgs>();
    wargs->fh = w.fh;
    wargs->offset = w.offset;
    wargs->count = w.data ? static_cast<u32>(w.data->size()) : 0;
    wargs->stable = nfs::StableHow::kFileSync;
    wargs->data = w.data;
    auto res = upstream_as_<nfs::WriteRes>(p, Proc::kWrite, wargs, session_cred_);
    if (!res.is_ok()) {
      st = res.status();
      break;
    }
    if ((*res)->status != NfsStat::kOk) {
      st = err((*res)->status, "replay write");
      break;
    }
    replayed_writebacks_.inc();
  }
  write_queue_.erase(write_queue_.begin(),
                     write_queue_.begin() + static_cast<std::ptrdiff_t>(done));
  replaying_ = false;
  if (st.is_ok() && write_queue_.empty() && upstream_down_) {
    upstream_down_ = false;
    last_recovery_time_ = p.now() - outage_started_;
    outage_total_ += last_recovery_time_;
  }
  return st;
}

std::optional<blob::BlobRef> GvfsProxy::queued_block_(u64 file_key,
                                                      u64 block) const {
  // Newest queued write wins (later entries overwrite earlier ones).
  u64 offset = block * cfg_.fetch_block;
  for (auto it = write_queue_.rbegin(); it != write_queue_.rend(); ++it) {
    if (it->fh.key() == file_key && it->offset == offset) return it->data;
  }
  return std::nullopt;
}

std::optional<vfs::Attr> GvfsProxy::stale_attr_(const nfs::Fh& fh) const {
  auto it = attr_cache_.find(fh.key());
  if (it == attr_cache_.end()) return std::nullopt;
  return it->second.attr;
}

std::shared_ptr<nfs::LookupRes> GvfsProxy::degraded_lookup_(
    const nfs::LookupArgs& a) const {
  // Serve a LOOKUP from the namespace learned before the outage (linear
  // scan: the learned set is small — files the session actually touched).
  // If a name was relearned under a new handle there can be two matches;
  // pick the smallest key so the answer never depends on hash order.
  bool found = false;
  u64 best_key = 0;
  // gvfs-lint: allow(unordered-iteration) commutative min-key scan; order cannot escape
  for (const auto& [key, link] : parents_) {
    if (link.dir.key() != a.dir.key() || link.name != a.name) continue;
    if (!found || key < best_key) {
      found = true;
      best_key = key;
    }
  }
  if (found) {
    auto fh_it = key_to_fh_.find(best_key);
    if (fh_it != key_to_fh_.end()) {
      auto res = std::make_shared<nfs::LookupRes>();
      res->fh = fh_it->second;
      if (auto attr = stale_attr_(fh_it->second)) res->obj_attr.attr = *attr;
      return res;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------- handlers --

rpc::RpcReply GvfsProxy::handle(sim::Process& p, const rpc::RpcCall& call) {
  calls_received_.inc();
  if (cfg_.per_call_cpu > 0) p.delay(cfg_.per_call_cpu);
  if (authorizer_ && !authorizer_(call.cred)) {
    return rpc::make_error_reply(call, err(ErrCode::kAuthError, "proxy policy"));
  }
  session_cred_ = cred_mapper_ ? cred_mapper_(call.cred) : call.cred;

  if (call.prog != rpc::kNfsProgram) return forward_(p, call);

  switch (static_cast<Proc>(call.proc)) {
    case Proc::kRead: {
      auto a = rpc::message_cast<nfs::ReadArgs>(call.args);
      if (!a) break;
      return handle_read_(p, call, *a);
    }
    case Proc::kWrite: {
      auto a = rpc::message_cast<nfs::WriteArgs>(call.args);
      if (!a) break;
      return handle_write_(p, call, *a);
    }
    case Proc::kGetattr: {
      auto a = rpc::message_cast<nfs::GetattrArgs>(call.args);
      if (!a) break;
      return handle_getattr_(p, call, *a);
    }
    case Proc::kCommit: {
      auto a = rpc::message_cast<nfs::CommitArgs>(call.args);
      if (!a) break;
      return handle_commit_(p, call, *a);
    }
    case Proc::kSetattr: {
      auto a = rpc::message_cast<nfs::SetattrArgs>(call.args);
      if (!a) break;
      return handle_setattr_(p, call, *a);
    }
    case Proc::kLookup: {
      // Forward, but learn the namespace so meta-data probing can find the
      // companion file later.
      auto a = rpc::message_cast<nfs::LookupArgs>(call.args);
      if (a && cfg_.degraded_mode && upstream_down_) {
        if (auto hit = degraded_lookup_(*a)) return rpc::make_reply(call, hit);
      }
      rpc::RpcReply reply = forward_(p, call);
      if (a && reply.status.is_ok()) {
        if (auto res = rpc::message_cast<nfs::LookupRes>(reply.result);
            res && res->status == NfsStat::kOk) {
          parents_[res->fh.key()] = ParentLink{a->dir, a->name};
          key_to_fh_[res->fh.key()] = res->fh;
          if (res->obj_attr.attr) remember_attr_(res->fh, *res->obj_attr.attr, p.now());
        }
      } else if (a && cfg_.degraded_mode &&
                 reply.status.code() == ErrCode::kTimeout) {
        if (auto hit = degraded_lookup_(*a)) return rpc::make_reply(call, hit);
      }
      return reply;
    }
    case Proc::kCreate: {
      auto a = rpc::message_cast<nfs::CreateArgs>(call.args);
      rpc::RpcReply reply = forward_(p, call);
      if (a && reply.status.is_ok()) {
        if (auto res = rpc::message_cast<nfs::CreateRes>(reply.result);
            res && res->status == NfsStat::kOk) {
          parents_[res->fh.key()] = ParentLink{a->dir, a->name};
          key_to_fh_[res->fh.key()] = res->fh;
          if (res->attr.attr) remember_attr_(res->fh, *res->attr.attr, p.now());
        }
      }
      return reply;
    }
    default:
      break;
  }
  return forward_(p, call);
}

rpc::RpcReply GvfsProxy::handle_read_(sim::Process& p, const rpc::RpcCall& call,
                                      const nfs::ReadArgs& a) {
  const rpc::Credential& cred = session_cred_;
  key_to_fh_[a.fh.key()] = a.fh;
  const meta::MetaFile* meta = meta_for_(p, a.fh, cred);

  // ---- file-based channel (compress/copy/uncompress/read-locally) ---------
  if (meta != nullptr && meta->wants_file_channel() && file_channel_ != nullptr &&
      file_cache_ != nullptr) {
    u64 key = a.fh.key();
    if (!file_cache_->contains(key)) {
      Status st = file_channel_->fetch_into_cache(p, a.fh.fileid, key);
      if (!st.is_ok()) {
        GVFS_WARN("proxy") << cfg_.name << ": file channel failed ("
                           << st.to_string() << "), falling back to blocks";
      }
    }
    if (file_cache_->contains(key)) {
      u64 size = file_cache_->cached_size(key).value_or(0);
      auto res = std::make_shared<nfs::ReadRes>();
      u64 n = a.offset >= size ? 0 : std::min<u64>(a.count, size - a.offset);
      auto data = file_cache_->read(p, key, a.offset, n);
      file_hits_.inc();
      if (tracer_) tracer_->annotate(&p, cfg_.name, "file_cache_hit", p.now());
      res->count = static_cast<u32>(n);
      res->eof = a.offset + n >= size;
      res->data = data && *data ? *data : blob::zero_ref(0);
      if (auto attr = cached_attr_(a.fh, p.now())) {
        attr->size = std::max(attr->size, size);
        res->attr.attr = *attr;
      }
      return rpc::make_reply(call, res);
    }
  }

  // ---- zero-block filtering ------------------------------------------------
  if (meta != nullptr && meta->has_zero_map() &&
      meta->range_is_zero(a.offset, a.count)) {
    zero_filtered_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "zero_filtered", p.now());
    u64 size = meta->file_size();
    auto res = std::make_shared<nfs::ReadRes>();
    u64 n = a.offset >= size ? 0 : std::min<u64>(a.count, size - a.offset);
    res->count = static_cast<u32>(n);
    res->eof = a.offset + n >= size;
    res->data = blob::zero_ref(n);
    if (auto attr = cached_attr_(a.fh, p.now())) res->attr.attr = *attr;
    return rpc::make_reply(call, res);
  }

  // ---- block cache ----------------------------------------------------------
  if (block_cache_ == nullptr) return forward_(p, call);

  std::optional<vfs::Attr> attr = cached_attr_(a.fh, p.now());
  if (!attr && cfg_.degraded_mode && upstream_down_) {
    // Session consistency: an expired attribute beats failing the READ
    // while the upstream is unreachable.
    attr = stale_attr_(a.fh);
  }
  if (!attr) {
    auto gargs = std::make_shared<nfs::GetattrArgs>();
    gargs->fh = a.fh;
    auto gres = upstream_as_<nfs::GetattrRes>(p, Proc::kGetattr, gargs, cred);
    if (!gres.is_ok()) {
      if (cfg_.degraded_mode && gres.code() == ErrCode::kTimeout) {
        attr = stale_attr_(a.fh);  // serve what we knew before the outage
      }
      if (!attr) return rpc::make_error_reply(call, gres.status());
    } else {
      if ((*gres)->status != NfsStat::kOk) {
        auto res = std::make_shared<nfs::ReadRes>();
        res->status = (*gres)->status;
        return rpc::make_reply(call, res);
      }
      remember_attr_(a.fh, (*gres)->attr.a, p.now());
      attr = (*gres)->attr.a;
    }
  }
  u64 size = effective_size_(a.fh, attr);
  u64 n = a.offset >= size ? 0 : std::min<u64>(a.count, size - a.offset);

  auto res = std::make_shared<nfs::ReadRes>();
  if (n > 0) {
    u64 first = a.offset / cfg_.fetch_block;
    u64 last = (a.offset + n - 1) / cfg_.fetch_block;
    if (first == last) {
      // Single-block read: reference the cached block directly (whole-block
      // reads, the common case) or slice it — no extent map, no copy.
      auto blockr = get_block_(p, a.fh, first, cred);
      if (!blockr.is_ok()) return rpc::make_error_reply(call, blockr.status());
      const blob::BlobRef& data = *blockr;
      u64 block_start = first * cfg_.fetch_block;
      u64 off_in_block = a.offset - block_start;
      if (data && data->size() >= off_in_block + n) {
        res->data = (off_in_block == 0 && data->size() == n)
                        ? data
                        : std::make_shared<blob::SliceBlob>(data, off_in_block, n);
      } else {
        // Short block (read past cached tail): zero-fill the remainder.
        blob::ExtentStore assembled;
        assembled.truncate(n);
        u64 hi = std::min(block_start + (data ? data->size() : 0), a.offset + n);
        if (a.offset < hi)
          assembled.write_blob(0, data, off_in_block, hi - a.offset);
        res->data = assembled.snapshot();
      }
    } else {
      blob::ExtentStore assembled;
      assembled.truncate(n);
      for (u64 b = first; b <= last; ++b) {
        auto blockr = get_block_(p, a.fh, b, cred);
        if (!blockr.is_ok()) return rpc::make_error_reply(call, blockr.status());
        const blob::BlobRef& data = *blockr;
        u64 block_start = b * cfg_.fetch_block;
        u64 lo = std::max(block_start, a.offset);
        u64 hi = std::min(block_start + (data ? data->size() : 0), a.offset + n);
        if (lo < hi) assembled.write_blob(lo - a.offset, data, lo - block_start, hi - lo);
      }
      res->data = assembled.snapshot();
    }
    maybe_prefetch_(p, a.fh, last, size, cred);
  } else {
    res->data = blob::zero_ref(0);
  }
  res->count = static_cast<u32>(n);
  res->eof = a.offset + n >= size;
  if (attr) {
    vfs::Attr out = *attr;
    out.size = size;
    res->attr.attr = out;
  }
  return rpc::make_reply(call, res);
}

rpc::RpcReply GvfsProxy::handle_write_(sim::Process& p, const rpc::RpcCall& call,
                                       const nfs::WriteArgs& a) {
  const rpc::Credential& cred = session_cred_;
  key_to_fh_[a.fh.key()] = a.fh;
  u64 key = a.fh.key();

  // Writes to a file served by the file channel update the whole-file cache
  // (write-back uploads it later as compress+SCP).
  if (file_cache_ != nullptr && file_cache_->contains(key)) {
    Status st = file_cache_->write(p, key, a.offset, a.data);
    if (!st.is_ok()) return rpc::make_error_reply(call, st);
    writes_absorbed_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "write_absorbed", p.now());
    size_override_[key] = std::max(effective_size_(a.fh, cached_attr_(a.fh, p.now())),
                                   a.offset + a.count);
    auto res = std::make_shared<nfs::WriteRes>();
    res->count = a.count;
    res->committed = nfs::StableHow::kFileSync;
    if (auto attr = cached_attr_(a.fh, p.now())) {
      attr->size = size_override_[key];
      attr->mtime = p.now();
      res->attr.attr = *attr;
    }
    return rpc::make_reply(call, res);
  }

  if (block_cache_ == nullptr) return forward_(p, call);

  if (block_cache_->config().policy == cache::WritePolicy::kWriteThrough) {
    // Forward synchronously; drop overlapping cached blocks so the next read
    // refetches fresh data (coherence without dirty state).
    rpc::RpcReply reply = forward_(p, call);
    if (reply.status.is_ok()) {
      if (auto res = rpc::message_cast<nfs::WriteRes>(reply.result);
          res && res->status == NfsStat::kOk) {
        block_cache_->invalidate_file(key);
        if (res->attr.attr) remember_attr_(a.fh, *res->attr.attr, p.now());
        size_override_.erase(key);
      }
    } else if (cfg_.degraded_mode && reply.status.code() == ErrCode::kTimeout) {
      // Degraded write-through: acknowledge locally, queue for replay.
      write_queue_.push_back(PendingWrite{a.fh, a.offset, a.data});
      queued_writebacks_.inc();
      block_cache_->invalidate_file(key);
      size_override_[key] =
          std::max(effective_size_(a.fh, cached_attr_(a.fh, p.now())),
                   a.offset + a.count);
      auto res = std::make_shared<nfs::WriteRes>();
      res->count = a.count;
      res->committed = nfs::StableHow::kFileSync;
      return rpc::make_reply(call, res);
    }
    return reply;
  }

  // ---- write-back: absorb locally ------------------------------------------
  std::optional<vfs::Attr> attr = cached_attr_(a.fh, p.now());
  u64 known = effective_size_(a.fh, attr);
  u64 end = a.offset + a.count;
  u64 first = a.offset / cfg_.fetch_block;
  u64 last = a.count > 0 ? (end - 1) / cfg_.fetch_block : first;
  for (u64 b = first; b <= last; ++b) {
    u64 block_start = b * cfg_.fetch_block;
    u64 lo = std::max(block_start, a.offset);
    u64 hi = std::min(block_start + cfg_.fetch_block, end);
    auto slice = std::make_shared<blob::SliceBlob>(a.data, lo - a.offset, hi - lo);
    cache::BlockId id{key, b};
    bool full = lo == block_start && hi - lo == cfg_.fetch_block;
    if (full) {
      Status st = block_cache_->insert(p, id, slice, /*dirty=*/true);
      if (!st.is_ok()) return rpc::make_error_reply(call, st);
      continue;
    }
    if (!block_cache_->contains(id) && block_start < known) {
      // Partial write into an existing block: fetch-and-merge.
      auto blockr = get_block_(p, a.fh, b, cred);
      if (!blockr.is_ok()) return rpc::make_error_reply(call, blockr.status());
    }
    if (block_cache_->contains(id)) {
      auto merged = block_cache_->merge(p, id, lo - block_start, slice);
      if (!merged.is_ok()) return rpc::make_error_reply(call, merged.status());
    } else {
      // New tail block: zeros up to the write, then the data.
      blob::ExtentStore compose;
      compose.truncate(hi - block_start);
      compose.write_blob(lo - block_start, slice, 0, hi - lo);
      Status st = block_cache_->insert(p, id, compose.snapshot(), /*dirty=*/true);
      if (!st.is_ok()) return rpc::make_error_reply(call, st);
    }
  }
  size_override_[key] = std::max(known, end);
  commit_pending_.insert(key);
  writes_absorbed_.inc();
  if (tracer_) tracer_->annotate(&p, cfg_.name, "write_absorbed", p.now());

  auto res = std::make_shared<nfs::WriteRes>();
  res->count = a.count;
  res->committed = nfs::StableHow::kFileSync;
  if (attr) {
    vfs::Attr out = *attr;
    out.size = size_override_[key];
    out.mtime = p.now();
    remember_attr_(a.fh, out, p.now());
    res->attr.attr = out;
  }
  return rpc::make_reply(call, res);
}

rpc::RpcReply GvfsProxy::handle_getattr_(sim::Process& p, const rpc::RpcCall& call,
                                         const nfs::GetattrArgs& a) {
  key_to_fh_[a.fh.key()] = a.fh;
  std::optional<vfs::Attr> attr = cached_attr_(a.fh, p.now());
  if (!attr && cfg_.degraded_mode && upstream_down_) attr = stale_attr_(a.fh);
  if (!attr) {
    rpc::RpcReply reply = forward_(p, call);
    if (!reply.status.is_ok()) {
      if (cfg_.degraded_mode && reply.status.code() == ErrCode::kTimeout) {
        if (auto stale = stale_attr_(a.fh)) {
          auto res = std::make_shared<nfs::GetattrRes>();
          res->attr.a = *stale;
          res->attr.a.size = effective_size_(a.fh, stale);
          return rpc::make_reply(call, res);
        }
      }
      return reply;
    }
    auto res = rpc::message_cast<nfs::GetattrRes>(reply.result);
    if (!res || res->status != NfsStat::kOk) return reply;
    vfs::Attr out = res->attr.a;
    remember_attr_(a.fh, out, p.now());
    u64 size = effective_size_(a.fh, out);
    if (size != out.size) {
      auto patched = std::make_shared<nfs::GetattrRes>(*res);
      patched->attr.a.size = size;
      return rpc::make_reply(call, patched);
    }
    return reply;
  }
  auto res = std::make_shared<nfs::GetattrRes>();
  res->attr.a = *attr;
  res->attr.a.size = effective_size_(a.fh, attr);
  return rpc::make_reply(call, res);
}

rpc::RpcReply GvfsProxy::handle_commit_(sim::Process& p, const rpc::RpcCall& call,
                                        const nfs::CommitArgs& a) {
  bool write_back_mode =
      block_cache_ != nullptr &&
      block_cache_->config().policy == cache::WritePolicy::kWriteBack;
  bool file_cached = file_cache_ != nullptr && file_cache_->contains(a.fh.key());
  if (cfg_.absorb_commit && (write_back_mode || file_cached)) {
    auto res = std::make_shared<nfs::CommitRes>();
    if (auto attr = cached_attr_(a.fh, p.now())) res->attr.attr = *attr;
    res->verifier = 0x67766673ULL;
    return rpc::make_reply(call, res);
  }
  rpc::RpcReply reply = forward_(p, call);
  if (cfg_.degraded_mode && reply.status.code() == ErrCode::kTimeout) {
    // The data this COMMIT covers sits in the replay queue; acknowledging it
    // locally is the same promise write-back mode makes (replayed durable on
    // reconnect).
    auto res = std::make_shared<nfs::CommitRes>();
    if (auto attr = stale_attr_(a.fh)) res->attr.attr = *attr;
    res->verifier = 0x67766673ULL;
    return rpc::make_reply(call, res);
  }
  return reply;
}

rpc::RpcReply GvfsProxy::handle_setattr_(sim::Process& p, const rpc::RpcCall& call,
                                         const nfs::SetattrArgs& a) {
  u64 key = a.fh.key();
  if (a.sattr.sa.set_size) {
    // Truncation: staged data past the new EOF must not survive.
    if (block_cache_ != nullptr) block_cache_->invalidate_file(key);
    if (file_cache_ != nullptr) file_cache_->invalidate(key);
    size_override_.erase(key);
    attr_cache_.erase(key);
  }
  rpc::RpcReply reply = forward_(p, call);
  if (reply.status.is_ok()) {
    if (auto res = rpc::message_cast<nfs::SetattrRes>(reply.result);
        res && res->status == NfsStat::kOk && res->attr.attr) {
      remember_attr_(a.fh, *res->attr.attr, p.now());
    }
  }
  return reply;
}

// ------------------------------------------------------ middleware signals --

Status GvfsProxy::signal_write_back(sim::Process& p) {
  if (block_cache_ != nullptr) {
    GVFS_RETURN_IF_ERROR(block_cache_->write_back_all(p));
  }
  if (file_cache_ != nullptr) {
    GVFS_RETURN_IF_ERROR(file_cache_->write_back_all(p));
  }
  commit_pending_.clear();
  return Status::ok();
}

void GvfsProxy::drop_soft_state() {
  attr_cache_.clear();
  size_override_.clear();
  metas_.clear();
  meta_negative_.clear();
  commit_pending_.clear();
}

Status GvfsProxy::signal_flush(sim::Process& p) {
  GVFS_RETURN_IF_ERROR(signal_write_back(p));
  if (block_cache_ != nullptr) block_cache_->invalidate_all();
  if (file_cache_ != nullptr) file_cache_->invalidate_all();
  attr_cache_.clear();
  size_override_.clear();
  metas_.clear();
  meta_negative_.clear();
  return Status::ok();
}

}  // namespace gvfs::proxy
