#include "proxy/gvfs_proxy.h"

#include <algorithm>

#include "blob/extent_store.h"
#include "common/log.h"

namespace gvfs::proxy {

using nfs::Fh;
using nfs::NfsStat;
using nfs::Proc;

GvfsProxy::GvfsProxy(ProxyConfig cfg, rpc::RpcChannel& upstream)
    : cfg_(std::move(cfg)), upstream_(upstream) {}

void GvfsProxy::attach_block_cache(cache::ProxyDiskCache& c) {
  block_cache_ = &c;
  c.set_writeback([this](sim::Process& p, const cache::BlockId& id,
                         const blob::BlobRef& data) {
    return cache_writeback_(p, id, data);
  });
}

void GvfsProxy::attach_file_channel(meta::FileChannelClient& channel,
                                    cache::FileCache& fc) {
  file_channel_ = &channel;
  file_cache_ = &fc;
  fc.set_upload([this](sim::Process& p, u64 key, const blob::BlobRef& content) {
    auto it = key_to_fh_.find(key);
    if (it == key_to_fh_.end()) return err(ErrCode::kStale, "unknown file key");
    return file_channel_->upload_from_cache(p, key, it->second.fileid, content);
  });
}

void GvfsProxy::reset_stats() {
  calls_received_.reset();
  calls_forwarded_.reset();
  block_hits_.reset();
  file_hits_.reset();
  zero_filtered_.reset();
  writes_absorbed_.reset();
  blocks_prefetched_.reset();
  degraded_reads_.reset();
  queued_writebacks_.reset();
  replayed_writebacks_.reset();
  coalesced_writebacks_.reset();
  flush_enqueued_.reset();
  flush_unstable_writes_.reset();
  flush_commits_.reset();
  flush_verifier_resends_.reset();
  flush_queue_reads_.reset();
  single_flight_leads_.reset();
  single_flight_waits_.reset();
  leases_acquired_.reset();
  lease_acquire_retries_.reset();
  lease_acquire_failures_.reset();
  recalls_served_.reset();
  lease_fences_.reset();
  attr_evictions_.reset();
  attr_revalidations_.reset();
  outage_total_ = last_recovery_time_ = 0;
}

// ------------------------------------------------------- upstream helpers --

Result<rpc::MessagePtr> GvfsProxy::upstream_call_(sim::Process& p, Proc proc,
                                                  rpc::MessagePtr args,
                                                  const rpc::Credential& cred) {
  rpc::RpcCall c;
  c.xid = next_xid_++;
  c.prog = rpc::kNfsProgram;
  c.vers = rpc::kNfsVersion3;
  c.proc = static_cast<u32>(proc);
  c.cred = cred;
  c.args = std::move(args);
  calls_forwarded_.inc();
  rpc::RpcReply reply = upstream_.call(p, c);
  if (!reply.status.is_ok()) {
    if (reply.status.code() == ErrCode::kTimeout) note_upstream_timeout_(p.now());
    return reply.status;
  }
  note_upstream_ok_(p);
  return reply.result;
}

template <typename Res>
Result<std::shared_ptr<const Res>> GvfsProxy::upstream_as_(sim::Process& p, Proc proc,
                                                           rpc::MessagePtr args,
                                                           const rpc::Credential& cred) {
  GVFS_ASSIGN_OR_RETURN(rpc::MessagePtr m, upstream_call_(p, proc, std::move(args), cred));
  auto res = rpc::message_cast<Res>(m);
  if (!res) return err(ErrCode::kBadXdr, "unexpected upstream result");
  return res;
}

rpc::RpcReply GvfsProxy::forward_(sim::Process& p, const rpc::RpcCall& call) {
  rpc::RpcCall fwd = call;
  fwd.xid = next_xid_++;
  if (cred_mapper_) fwd.cred = cred_mapper_(call.cred);
  calls_forwarded_.inc();
  if (tracer_) tracer_->annotate(&p, cfg_.name, "forward", p.now());
  rpc::RpcReply reply = upstream_.call(p, fwd);
  if (reply.status.code() == ErrCode::kTimeout) {
    note_upstream_timeout_(p.now());
  } else if (reply.status.is_ok()) {
    note_upstream_ok_(p);
  }
  reply.xid = call.xid;
  return reply;
}

// ---------------------------------------------------------- attr tracking --

std::optional<vfs::Attr> GvfsProxy::cached_attr_(const Fh& fh, SimTime now) {
  auto it = attr_cache_.find(fh.key());
  if (it == attr_cache_.end() || it->second.expires <= now) return std::nullopt;
  it->second.lru_tick = ++attr_tick_;
  return it->second.attr;
}

void GvfsProxy::remember_attr_(const Fh& fh, const vfs::Attr& a, SimTime now) {
  u64 key = fh.key();
  if (auto it = attr_cache_.find(key); it != attr_cache_.end()) {
    it->second = CachedAttr{a, now + cfg_.attr_ttl, ++attr_tick_};
  } else {
    if (cfg_.attr_cache_entries > 0 &&
        attr_cache_.size() >= cfg_.attr_cache_entries) {
      // Bounded attr cache: evict the least-recently-touched entry. Linear
      // scan — eviction only runs past the (large) bound, and ticks are
      // unique, so the minimum is well defined and hash order cannot leak
      // into behavior.
      // gvfs-lint: allow(unordered-iteration) unique-min-tick scan; order cannot escape
      auto victim = attr_cache_.begin();
      // gvfs-lint: allow(unordered-iteration) unique-min-tick scan; order cannot escape
      for (auto it2 = attr_cache_.begin(); it2 != attr_cache_.end(); ++it2) {
        if (it2->second.lru_tick < victim->second.lru_tick) victim = it2;
      }
      attr_cache_.erase(victim);
      attr_evictions_.inc();
    }
    attr_cache_.emplace(key, CachedAttr{a, now + cfg_.attr_ttl, ++attr_tick_});
  }
  attr_gauge_sync_();
  key_to_fh_[key] = fh;
}

u64 GvfsProxy::effective_size_(const Fh& fh, const std::optional<vfs::Attr>& a) const {
  u64 size = a ? a->size : 0;
  auto it = size_override_.find(fh.key());
  if (it != size_override_.end()) size = std::max(size, it->second);
  return size;
}

// -------------------------------------------------------------- meta-data --

const meta::MetaFile* GvfsProxy::meta_for_(sim::Process& p, const Fh& fh,
                                           const rpc::Credential& cred) {
  if (!cfg_.enable_meta) return nullptr;
  u64 key = fh.key();
  auto hit = metas_.find(key);
  if (hit != metas_.end()) return &hit->second;
  if (meta_negative_.count(key) != 0) return nullptr;
  auto parent = parents_.find(key);
  if (parent == parents_.end()) {
    meta_negative_.insert(key);
    return nullptr;
  }

  // Probe for "<dir>/.<name>.gvfsmeta" upstream.
  auto largs = std::make_shared<nfs::LookupArgs>();
  largs->dir = parent->second.dir;
  largs->name = meta::MetaFile::meta_name_for(parent->second.name);
  auto lres = upstream_as_<nfs::LookupRes>(p, Proc::kLookup, largs, cred);
  if (!lres.is_ok() || (*lres)->status != NfsStat::kOk) {
    meta_negative_.insert(key);
    return nullptr;
  }
  Fh meta_fh = (*lres)->fh;
  u64 meta_size = (*lres)->obj_attr.attr ? (*lres)->obj_attr.attr->size : 0;
  if (meta_size == 0 || meta_size > 64_MiB) {
    meta_negative_.insert(key);
    return nullptr;
  }

  // Read the whole (small) meta-data file over the block channel.
  blob::ExtentStore content;
  u64 off = 0;
  while (off < meta_size) {
    auto rargs = std::make_shared<nfs::ReadArgs>();
    rargs->fh = meta_fh;
    rargs->offset = off;
    rargs->count = static_cast<u32>(std::min<u64>(cfg_.fetch_block, meta_size - off));
    auto rres = upstream_as_<nfs::ReadRes>(p, Proc::kRead, rargs, cred);
    if (!rres.is_ok() || (*rres)->status != NfsStat::kOk || (*rres)->count == 0) {
      meta_negative_.insert(key);
      return nullptr;
    }
    content.write_blob(off, (*rres)->data, 0, (*rres)->count);
    off += (*rres)->count;
    if ((*rres)->eof) break;
  }
  auto parsed = meta::MetaFile::parse(*content.snapshot());
  if (!parsed.is_ok()) {
    GVFS_WARN("proxy") << cfg_.name << ": malformed meta-data file ignored";
    meta_negative_.insert(key);
    return nullptr;
  }
  auto [it, inserted] = metas_.emplace(key, std::move(parsed).value());
  (void)inserted;
  return &it->second;
}

// ------------------------------------------------------------ block cache --

Result<blob::BlobRef> GvfsProxy::get_block_(sim::Process& p, const Fh& fh, u64 block,
                                            const rpc::Credential& cred) {
  cache::BlockId id{fh.key(), block};
  if (auto hit = block_cache_->lookup(p, id)) {
    block_hits_.inc();
    if (upstream_down_) degraded_reads_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "block_cache_hit", p.now());
    return *hit;
  }
  if (cfg_.async_writeback) {
    // A dirty block evicted into the flush queue holds newer data than the
    // server until the flusher lands it; fetching upstream would read stale
    // bytes. Serve the queued data directly.
    if (auto pending = flush_pending_block_(fh.key(), block)) {
      flush_queue_reads_.inc();
      if (upstream_down_) degraded_reads_.inc();
      if (tracer_) tracer_->annotate(&p, cfg_.name, "flush_queue_read", p.now());
      return *pending;
    }
  }
  if (upstream_down_) {
    // A dirty block may have been evicted into the write queue; its data
    // must stay readable while the upstream is unreachable.
    if (auto queued = queued_block_(fh.key(), block)) {
      degraded_reads_.inc();
      if (tracer_) tracer_->annotate(&p, cfg_.name, "degraded_read", p.now());
      return *queued;
    }
  }
  if (tracer_) tracer_->annotate(&p, cfg_.name, "block_cache_miss", p.now());

  if (cfg_.dedup_blocks && cfg_.enable_meta && !dedup_written_.contains(fh.key())) {
    // Content-addressed probe: if this file's meta-data carries a
    // fingerprint table at our fetch granularity, identical bytes already
    // resident under any other file/block are aliased locally instead of
    // fetched upstream (the dedup generalization of zero-block filtering).
    // Files this session has written are excluded: the installed-image
    // table can no longer vouch for the server's current bytes.
    auto mit = metas_.find(fh.key());
    if (mit != metas_.end() && mit->second.has_fingerprints() &&
        mit->second.fp_block_size() == cfg_.fetch_block &&
        mit->second.fp_seed() == block_cache_->config().dedup_seed) {
      const meta::MetaFile& m = mit->second;
      u64 off = block * cfg_.fetch_block;
      if (off < m.file_size()) {
        u64 len = std::min<u64>(cfg_.fetch_block, m.file_size() - off);
        if (auto shared =
                block_cache_->lookup_fingerprint(m.block_fingerprint(block), len)) {
          dedup_filtered_.inc();
          if (tracer_) tracer_->annotate(&p, cfg_.name, "dedup_alias", p.now());
          // Install the alias (the insert re-fingerprints the shared payload
          // and lands on the same store entry, charging nothing new).
          GVFS_RETURN_IF_ERROR(
              block_cache_->insert(p, id, *shared, /*dirty=*/false));
          return *shared;
        }
      }
    }
  }

  if (!cfg_.single_flight) return fetch_block_upstream_(p, fh, block, cred);

  std::pair<u64, u64> key{fh.key(), block};
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    // Another downstream reader is already fetching this block: join its
    // fetch instead of issuing a duplicate upstream READ.
    std::shared_ptr<InflightFetch> entry = it->second;
    single_flight_waits_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "single_flight_join", p.now());
    while (!entry->complete) p.wait(*entry->done);
    if (!entry->status.is_ok()) return entry->status;
    if (auto hit = block_cache_->lookup(p, id)) {
      block_hits_.inc();
      return *hit;
    }
    return entry->data;  // already evicted again: serve the fetched bytes
  }
  auto entry = std::make_shared<InflightFetch>();
  entry->done = std::make_unique<sim::Signal>(p.kernel(), cfg_.name + "-single-flight");
  inflight_.emplace(key, entry);
  single_flight_leads_.inc();
  Result<blob::BlobRef> r = fetch_block_upstream_(p, fh, block, cred);
  entry->complete = true;
  if (r.is_ok()) {
    entry->data = *r;
  } else {
    entry->status = r.status();
  }
  inflight_.erase(key);
  entry->done->notify_all();  // waiters hold the entry; the Signal outlives them
  return r;
}

Result<blob::BlobRef> GvfsProxy::fetch_block_upstream_(sim::Process& p, const Fh& fh,
                                                       u64 block,
                                                       const rpc::Credential& cred) {
  cache::BlockId id{fh.key(), block};
  auto rargs = std::make_shared<nfs::ReadArgs>();
  rargs->fh = fh;
  rargs->offset = block * cfg_.fetch_block;
  rargs->count = cfg_.fetch_block;
  GVFS_ASSIGN_OR_RETURN(auto rres, upstream_as_<nfs::ReadRes>(p, Proc::kRead, rargs, cred));
  if (rres->status != NfsStat::kOk) return err(rres->status, "upstream read");
  if (rres->attr.attr) remember_attr_(fh, *rres->attr.attr, p.now());
  blob::BlobRef data = rres->count > 0 ? rres->data : blob::zero_ref(0);
  // The RPC wait is a scheduling point: a concurrent write + eviction can
  // have parked newer bytes for this block while the READ was in flight.
  // Serve those (and keep the server's stale copy out of the cache, where it
  // would shadow them on the next read).
  if (cfg_.async_writeback) {
    if (auto pending = flush_pending_block_(id.file_key, block)) {
      flush_queue_reads_.inc();
      return *pending;
    }
  }
  if (block_has_queued_write_(id.file_key, block)) {
    if (auto queued = queued_block_(id.file_key, block)) return *queued;
    return data;
  }
  if (rres->count > 0) {
    GVFS_RETURN_IF_ERROR(block_cache_->insert(p, id, data, /*dirty=*/false));
  }
  return data;
}

void GvfsProxy::maybe_prefetch_(sim::Process& p, const nfs::Fh& fh, u64 block,
                                u64 file_size, const rpc::Credential& cred) {
  AccessProfile& prof = profiles_[fh.key()];
  if (prof.last_block != ~u64{0} && block == prof.last_block + 1) {
    ++prof.run;
  } else if (block != prof.last_block) {
    prof.run = 0;
  }
  prof.last_block = block;
  if (cfg_.prefetch_depth == 0 || block_cache_ == nullptr ||
      prof.run < cfg_.prefetch_trigger) {
    return;
  }
  // Keep a read-ahead window of `prefetch_depth` blocks open: refill only
  // when the reader has consumed half of it, so the refill is a genuinely
  // pipelined multi-block burst (one RTT amortized over the batch), not a
  // degenerate one-block fetch per request.
  if (block + cfg_.prefetch_depth / 2 < prof.ahead_until) return;
  u64 refill_from = std::max(block + 1, prof.ahead_until);
  u64 refill_to = block + cfg_.prefetch_depth;  // inclusive
  prof.ahead_until = refill_to + 1;

  // Pipeline the missing blocks of the window in one overlapped burst.
  std::vector<rpc::RpcCall> calls;
  std::vector<u64> blocks;
  for (u64 b = refill_from; b <= refill_to; ++b) {
    u64 start = b * cfg_.fetch_block;
    if (start >= file_size) break;
    if (block_cache_->contains(cache::BlockId{fh.key(), b})) continue;
    // A dirty copy parked in the flush queue (or the degraded replay queue)
    // is newer than the server's bytes; inserting a prefetched copy as clean
    // would shadow it — get_block_ consults the cache first.
    if (cfg_.async_writeback && flush_pending_block_(fh.key(), b)) continue;
    if (block_has_queued_write_(fh.key(), b)) continue;
    auto args = std::make_shared<nfs::ReadArgs>();
    args->fh = fh;
    args->offset = start;
    args->count = cfg_.fetch_block;
    rpc::RpcCall c;
    c.xid = next_xid_++;
    c.prog = rpc::kNfsProgram;
    c.vers = rpc::kNfsVersion3;
    c.proc = static_cast<u32>(Proc::kRead);
    c.cred = cred;
    c.args = std::move(args);
    calls.push_back(std::move(c));
    blocks.push_back(b);
  }
  if (calls.empty()) return;
  calls_forwarded_.inc(calls.size());
  std::vector<rpc::RpcReply> replies = upstream_.call_pipelined(p, calls);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (!replies[i].status.is_ok()) continue;
    auto res = rpc::message_cast<nfs::ReadRes>(replies[i].result);
    if (!res || res->status != NfsStat::kOk || res->count == 0) continue;
    if (res->attr.attr) remember_attr_(fh, *res->attr.attr, p.now());
    // Re-check after the RPC wait: an eviction during the burst may have
    // parked newer bytes for this block.
    if (cfg_.async_writeback && flush_pending_block_(fh.key(), blocks[i])) continue;
    if (block_has_queued_write_(fh.key(), blocks[i])) continue;
    (void)block_cache_->insert(p, cache::BlockId{fh.key(), blocks[i]}, res->data,
                               /*dirty=*/false);
    blocks_prefetched_.inc();
  }
}

Status GvfsProxy::cache_writeback_(sim::Process& p, const cache::BlockId& id,
                                   const blob::BlobRef& data) {
  auto it = key_to_fh_.find(id.file_key);
  if (it == key_to_fh_.end()) return err(ErrCode::kStale, "writeback: unknown fh");
  // Copy the handle out of the map: the upstream WRITE below yields, and a
  // concurrent insert (rehash) or drop_soft_state() invalidates `it`.
  nfs::Fh fh = it->second;
  // This block's bytes are newer than any copy parked for replay over the
  // same byte range; neutralize the stale entries so a reconnect replay
  // (possibly triggered by this very write-back landing) cannot overwrite
  // what we send now.
  u64 seq = next_write_seq_++;
  supersede_parked_write_(id.file_key, id.block * cfg_.fetch_block, data, seq);
  if (cfg_.async_writeback) {
    // Asynchronous write-back: park the block in the per-file flush queue;
    // the background flusher drains it as pipelined UNSTABLE bursts + one
    // COMMIT. The evicting reader pays no WAN round trip here.
    enqueue_flush_(p, fh, id.block, data, seq);
    return Status::ok();
  }
  auto wargs = std::make_shared<nfs::WriteArgs>();
  wargs->fh = fh;
  wargs->offset = id.block * cfg_.fetch_block;
  wargs->count = data ? static_cast<u32>(data->size()) : 0;
  wargs->stable = nfs::StableHow::kFileSync;
  wargs->data = data;
  auto res = upstream_as_<nfs::WriteRes>(p, Proc::kWrite, wargs, session_cred_);
  if (!res.is_ok()) {
    // Any transport-level failure while the upstream is unreachable (not
    // just the first timeout — retries during an outage can surface other
    // transport errors) parks the block: it is leaving the cache, so the
    // replay queue is the only place its data survives.
    if (cfg_.degraded_mode &&
        (res.code() == ErrCode::kTimeout || upstream_down_)) {
      queue_degraded_write_(fh, id.block * cfg_.fetch_block, data, seq);
      return Status::ok();
    }
    return res.status();
  }
  if ((*res)->status != NfsStat::kOk) return err((*res)->status, "writeback write");
  if ((*res)->attr.attr) remember_attr_(fh, *(*res)->attr.attr, p.now());
  return Status::ok();
}

// ------------------------------------------------- async write-back flusher --

void GvfsProxy::enqueue_flush_(sim::Process& p, const nfs::Fh& fh, u64 block,
                               const blob::BlobRef& data, u64 seq) {
  u64 key = fh.key();
  auto [it, inserted] = flush_queues_.try_emplace(key);
  FlushQueue& q = it->second;
  q.fh = fh;
  if (q.blocks.insert_or_assign(block, FlushBlock{data, seq}).second) {
    q.order.push_back(block);
  }
  if (inserted) flush_file_order_.push_back(key);
  flush_epoch_.bump();
  flush_enqueued_.inc();
  maybe_spawn_flusher_(p);
}

void GvfsProxy::maybe_spawn_flusher_(sim::Process& p) {
  if (flusher_active_ || sync_drain_ || flush_queues_.empty()) return;
  flusher_active_ = true;
  p.kernel().spawn(cfg_.name + "-flusher", [this](sim::Process& fp) {
    Status st = drain_flush_queues_(fp);
    flusher_active_ = false;
    if (!st.is_ok()) {
      // Blocks were either parked in the degraded replay queue or put back
      // in the flush queue; the next enqueue or signal retries them.
      GVFS_WARN("proxy") << cfg_.name << ": flusher stalled ("
                         << st.to_string() << ")";
    }
  });
}

Status GvfsProxy::drain_flush_queues_(sim::Process& p) {
  while (!flush_file_order_.empty()) {
    u64 key = flush_file_order_.front();
    flush_file_order_.erase(flush_file_order_.begin());
    flush_epoch_.bump();
    auto it = flush_queues_.find(key);
    if (it == flush_queues_.end()) continue;
    // Extract the whole per-file queue before blocking: enqueues that land
    // while this file's RPCs are in flight start a fresh queue, picked up
    // by a later loop round (or the next drain).
    FlushQueue q = std::move(it->second);
    flush_queues_.erase(it);
    flush_epoch_.bump();
    Status st = flush_file_(p, q);
    if (!st.is_ok()) return st;
  }
  return Status::ok();
}

Status GvfsProxy::flush_file_(sim::Process& p, const FlushQueue& q) {
  // Keep the extracted (in-flight) data visible to concurrent degraded
  // reads until it lands upstream or is re-queued.
  draining_.emplace_back(q.fh.key(), &q);
  flush_epoch_.bump();
  struct DrainScope {
    std::vector<std::pair<u64, const FlushQueue*>>& v;
    const FlushQueue* q;
    MutationEpoch& ep;
    // Concurrent drains (background flusher + inline handle_commit_ /
    // signal_write_back drains) block at RPC wait points and can finish in
    // any order, so remove this scope's own entry by identity — popping the
    // back could hide another drain's in-flight data and leave a dangling
    // pointer to this (stack-allocated) queue behind.
    ~DrainScope() {
      auto it = std::find_if(v.begin(), v.end(),
                             [this](const auto& e) { return e.second == q; });
      if (it != v.end()) {
        v.erase(it);
        ep.bump();
      }
    }
  } scope{draining_, &q, flush_epoch_};

  // Park every block of the file in the degraded replay queue (replay uses
  // FILE_SYNC, so durability is restored on reconnect). Blocks keep their
  // enqueue-time recency stamp: data parked by a newer overlapping drain
  // must not be clobbered by this one.
  auto park_all = [&] {
    for (u64 b : q.order) {
      const FlushBlock& fb = q.blocks.at(b);
      queue_degraded_write_(q.fh, b * cfg_.fetch_block, fb.data, fb.seq);
    }
  };

  // Put the file back in the flush queue after a transport failure outside
  // degraded mode; blocks already re-dirtied by newer enqueues win.
  auto requeue_all = [&] {
    auto [it, inserted] = flush_queues_.try_emplace(q.fh.key());
    FlushQueue& nq = it->second;
    nq.fh = q.fh;
    for (u64 b : q.order) {
      if (nq.blocks.emplace(b, q.blocks.at(b)).second) nq.order.push_back(b);
    }
    if (inserted) flush_file_order_.push_back(q.fh.key());
    flush_epoch_.bump();
  };

  for (u32 attempt = 0; attempt < cfg_.flush_max_attempts; ++attempt) {
    bool verf_mismatch = false;
    u64 commit_verf = 0;
    std::vector<u64> write_verfs;
    write_verfs.reserve(q.order.size());

    // Pipelined UNSTABLE WRITE bursts (same overlap machinery as prefetch).
    for (std::size_t base = 0; base < q.order.size(); base += cfg_.flush_burst) {
      std::size_t burst_end =
          std::min(q.order.size(), base + static_cast<std::size_t>(cfg_.flush_burst));
      std::vector<rpc::RpcCall> calls;
      calls.reserve(burst_end - base);
      for (std::size_t i = base; i < burst_end; ++i) {
        u64 b = q.order[i];
        auto wargs = std::make_shared<nfs::WriteArgs>();
        wargs->fh = q.fh;
        wargs->offset = b * cfg_.fetch_block;
        const blob::BlobRef& data = q.blocks.at(b).data;
        wargs->count = data ? static_cast<u32>(data->size()) : 0;
        wargs->stable = nfs::StableHow::kUnstable;
        wargs->data = data;
        rpc::RpcCall c;
        c.xid = next_xid_++;
        c.prog = rpc::kNfsProgram;
        c.vers = rpc::kNfsVersion3;
        c.proc = static_cast<u32>(Proc::kWrite);
        c.cred = session_cred_;
        c.args = std::move(wargs);
        calls.push_back(std::move(c));
      }
      calls_forwarded_.inc(calls.size());
      std::vector<rpc::RpcReply> replies = upstream_.call_pipelined(p, calls);
      for (std::size_t ri = 0; ri < replies.size(); ++ri) {
        const rpc::RpcReply& reply = replies[ri];
        if (!reply.status.is_ok()) {
          if (reply.status.code() == ErrCode::kTimeout) note_upstream_timeout_(p.now());
          if (cfg_.degraded_mode &&
              (reply.status.code() == ErrCode::kTimeout || upstream_down_)) {
            park_all();
            return Status::ok();
          }
          requeue_all();
          return reply.status;
        }
        auto res = rpc::message_cast<nfs::WriteRes>(reply.result);
        if (!res) return err(ErrCode::kBadXdr, "unexpected flush write result");
        if (res->status != NfsStat::kOk) return err(res->status, "flush write");
        flush_unstable_writes_.inc();
        write_verfs.push_back(res->verifier);
        // A copy of this block parked by an earlier failed drain is now
        // stale; drop it before note_upstream_ok_ can replay it over the
        // bytes that just landed. The seq guard keeps data parked by a
        // newer concurrent drain of the same file intact.
        u64 sent_block = q.order[base + ri];
        const FlushBlock& sent = q.blocks.at(sent_block);
        supersede_parked_write_(q.fh.key(), sent_block * cfg_.fetch_block,
                                sent.data, sent.seq);
        if (res->attr.attr) remember_attr_(q.fh, *res->attr.attr, p.now());
      }
      note_upstream_ok_(p);
    }

    // One COMMIT covers the whole file's unstable writes.
    auto cargs = std::make_shared<nfs::CommitArgs>();
    cargs->fh = q.fh;
    cargs->offset = 0;
    cargs->count = 0;  // RFC 1813: 0 = commit everything
    auto cres = upstream_as_<nfs::CommitRes>(p, Proc::kCommit, cargs, session_cred_);
    if (!cres.is_ok()) {
      if (cfg_.degraded_mode &&
          (cres.code() == ErrCode::kTimeout || upstream_down_)) {
        // Uncommitted UNSTABLE data on an unreachable server must be
        // treated as lost: re-park everything for FILE_SYNC replay.
        park_all();
        return Status::ok();
      }
      requeue_all();
      return cres.status();
    }
    if ((*cres)->status != NfsStat::kOk) return err((*cres)->status, "flush commit");
    flush_commits_.inc();
    commit_verf = (*cres)->verifier;
    for (u64 v : write_verfs) {
      if (v != commit_verf) {
        verf_mismatch = true;
        break;
      }
    }
    if (!verf_mismatch) {
      if ((*cres)->attr.attr) remember_attr_(q.fh, *(*cres)->attr.attr, p.now());
      return Status::ok();
    }
    // The server rebooted between the WRITEs and the COMMIT: every
    // unstable write may have been lost with its volatile state. Re-send
    // the whole file (RFC 1813 §3.3.7 writeverf protocol).
    flush_verifier_resends_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "flush_verf_resend", p.now());
  }
  requeue_all();
  return err(ErrCode::kIo, "flush: verifier kept changing (server reboot loop)");
}

std::optional<blob::BlobRef> GvfsProxy::flush_pending_block_(u64 file_key,
                                                             u64 block) const {
  // The block may sit in the pending queue and in several in-flight drains
  // at once (concurrent drains complete in any order); the enqueue-time
  // sequence stamp, not container position, says which copy is newest.
  // `best` aims into those containers, so this scope must stay yield-free
  // (the analyzer proves it; the guard asserts it in debug runs).
  YieldGuard yield_free(flush_epoch_);
  const FlushBlock* best = nullptr;
  if (auto it = flush_queues_.find(file_key); it != flush_queues_.end()) {
    if (auto b = it->second.blocks.find(block); b != it->second.blocks.end()) {
      best = &b->second;
    }
  }
  for (const auto& [key, q] : draining_) {
    if (key != file_key) continue;
    if (auto b = q->blocks.find(block); b != q->blocks.end()) {
      if (best == nullptr || b->second.seq > best->seq) best = &b->second;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->data;
}

// ---------------------------------------------------------- degraded mode --

void GvfsProxy::note_upstream_timeout_(SimTime now) {
  if (!cfg_.degraded_mode) return;
  if (!upstream_down_) {
    upstream_down_ = true;
    outage_started_ = now;
  }
}

void GvfsProxy::note_upstream_ok_(sim::Process& p) {
  if (!cfg_.degraded_mode || !upstream_down_ || replaying_) return;
  // First successful upstream call after an outage: reconnect — drain the
  // queued write-backs before declaring recovery.
  (void)replay_write_queue_(p);
}

Status GvfsProxy::replay_write_queue_(sim::Process& p) {
  if (!upstream_down_ && write_queue_.empty()) return Status::ok();
  if (replaying_) return Status::ok();
  replaying_ = true;
  Status st = Status::ok();
  if (cfg_.enable_leases && !lease_unsupported_ && !write_queue_.empty()) {
    // Lease-loss fencing: a node whose write lease lapsed during the
    // partition must prove exclusive ownership again before its parked
    // writes replay — the lease may have moved to another writer whose
    // bytes these stale entries would otherwise clobber blindly. Collect
    // the keys up front (ensure_lease_ yields; queue indices don't survive
    // that) and probe in sorted order for determinism.
    std::vector<u64> fence_keys;
    for (const auto& w : write_queue_) {
      u64 k = w.fh.key();
      if (std::find(fence_keys.begin(), fence_keys.end(), k) == fence_keys.end()) {
        fence_keys.push_back(k);
      }
    }
    std::sort(fence_keys.begin(), fence_keys.end());
    for (u64 k : fence_keys) {
      if (auto held = held_leases_.find(k);
          held != held_leases_.end() &&
          held->second.mode == nfs::LeaseMode::kWrite &&
          held->second.expiry > p.now()) {
        continue;
      }
      auto fh_it = key_to_fh_.find(k);
      if (fh_it == key_to_fh_.end()) continue;
      lease_fences_.inc();
      Status fs =
          ensure_lease_(p, fh_it->second, nfs::LeaseMode::kWrite, session_cred_);
      if (!fs.is_ok()) {
        // Cannot re-establish ownership: abort the replay and stay
        // degraded; the next reconnect signal (or upstream success) retries.
        replaying_ = false;
        return fs;
      }
    }
  }
  // Every WRITE below is an RPC wait point, and concurrent frames
  // (cache_writeback_, flush_file_) erase and coalesce queue entries while
  // it blocks — vector indices are not stable across an iteration. Track
  // progress by the entries' recency stamps instead: replay oldest-first
  // (so a newer overlapping write lands last on the server) and afterwards
  // erase the entry only if its stamp is unchanged — a concurrent coalesce
  // bumped it, and the newer bytes deserve their own replay.
  while (!write_queue_.empty()) {
    std::size_t pick = 0;
    for (std::size_t i = 1; i < write_queue_.size(); ++i) {
      if (write_queue_[i].seq < write_queue_[pick].seq) pick = i;
    }
    const PendingWrite w = write_queue_[pick];
    auto wargs = std::make_shared<nfs::WriteArgs>();
    wargs->fh = w.fh;
    wargs->offset = w.offset;
    wargs->count = w.data ? static_cast<u32>(w.data->size()) : 0;
    wargs->stable = nfs::StableHow::kFileSync;
    wargs->data = w.data;
    auto res = upstream_as_<nfs::WriteRes>(p, Proc::kWrite, wargs, session_cred_);
    if (!res.is_ok()) {
      st = res.status();
      break;
    }
    if ((*res)->status != NfsStat::kOk) {
      st = err((*res)->status, "replay write");
      break;
    }
    replayed_writebacks_.inc();
    for (std::size_t i = 0; i < write_queue_.size(); ++i) {
      if (write_queue_[i].seq != w.seq) continue;
      write_queue_.erase(write_queue_.begin() + static_cast<std::ptrdiff_t>(i));
      rebuild_write_queue_index_();
      break;
    }
  }
  replaying_ = false;
  if (st.is_ok() && write_queue_.empty() && upstream_down_) {
    upstream_down_ = false;
    last_recovery_time_ = p.now() - outage_started_;
    outage_total_ += last_recovery_time_;
  }
  return st;
}

void GvfsProxy::queue_degraded_write_(const nfs::Fh& fh, u64 offset,
                                      const blob::BlobRef& data, u64 seq) {
  std::pair<u64, u64> key{fh.key(), offset};
  if (auto it = write_queue_index_.find(key); it != write_queue_index_.end()) {
    // Coalesce: the newer of the two writes to the same (fh, offset) wins —
    // replaying both would waste a WAN round trip on dead data. Recency is
    // decided by the sequence stamp: a failed drain re-parking an extracted
    // block can arrive here *after* a newer write was queued.
    PendingWrite& w = write_queue_[it->second];
    u64 old_n = w.data ? w.data->size() : 0;
    u64 new_n = data ? data->size() : 0;
    const bool incoming_newer = seq > w.seq;
    const blob::BlobRef& win = incoming_newer ? data : w.data;
    const blob::BlobRef& lose = incoming_newer ? w.data : data;
    u64 win_n = incoming_newer ? new_n : old_n;
    u64 lose_n = incoming_newer ? old_n : new_n;
    if (win_n >= lose_n) {
      w.data = win;
    } else {
      // The winner is shorter: keep the loser's tail beyond it so the
      // coalesced entry still covers every byte the queue promised.
      blob::ExtentStore merged;
      merged.truncate(lose_n);
      merged.write_blob(0, lose, 0, lose_n);
      merged.write_blob(0, win, 0, win_n);
      w.data = merged.snapshot();
    }
    w.seq = std::max(w.seq, seq);
    coalesced_writebacks_.inc();
    return;
  }
  write_queue_index_.emplace(key, write_queue_.size());
  write_queue_.push_back(PendingWrite{fh, offset, data, seq});
  write_queue_epoch_.bump();
  queued_writebacks_.inc();
}

void GvfsProxy::supersede_parked_write_(u64 file_key, u64 offset,
                                        const blob::BlobRef& data, u64 seq) {
  u64 n = data ? data->size() : 0;
  if (n == 0 || write_queue_.empty()) return;
  u64 lo = offset;
  u64 hi = offset + n;
  bool erased = false;
  for (std::size_t i = 0; i < write_queue_.size();) {
    PendingWrite& w = write_queue_[i];
    u64 wn = w.data ? w.data->size() : 0;
    u64 olo = std::max(lo, w.offset);
    u64 ohi = std::min(hi, w.offset + wn);
    // Skip entries of other files, non-overlapping ranges, and — crucially —
    // entries stamped newer than the data heading upstream (e.g. parked by a
    // concurrent drain that extracted fresher bytes).
    if (w.fh.key() != file_key || olo >= ohi || w.seq > seq) {
      ++i;
      continue;
    }
    if (lo <= w.offset && w.offset + wn <= hi) {
      // Fully covered by the bytes about to land upstream: drop it.
      write_queue_.erase(write_queue_.begin() + static_cast<std::ptrdiff_t>(i));
      erased = true;
      coalesced_writebacks_.inc();
      continue;
    }
    // Partial overlap (degraded writes park raw, non-block-aligned offsets):
    // patch the overlapping bytes with the newer data so a later replay
    // cannot put stale bytes over what is about to land upstream. The
    // entry keeps its original stamp — its un-patched remainder is no newer
    // than it ever was.
    blob::ExtentStore patched;
    patched.truncate(wn);
    patched.write_blob(0, w.data, 0, wn);
    patched.write_blob(olo - w.offset, data, olo - lo, ohi - olo);
    w.data = patched.snapshot();
    coalesced_writebacks_.inc();
    ++i;
  }
  if (erased) rebuild_write_queue_index_();
}

bool GvfsProxy::block_has_queued_write_(u64 file_key, u64 block) const {
  // Index entries are raw positions into write_queue_; both stay consistent
  // only while no other fiber runs.
  YieldGuard yield_free(write_queue_epoch_);
  if (write_queue_.empty()) return false;
  u64 lo = block * cfg_.fetch_block;
  u64 hi = lo + cfg_.fetch_block;
  for (auto it = write_queue_index_.lower_bound({file_key, 0});
       it != write_queue_index_.end() && it->first.first == file_key; ++it) {
    const PendingWrite& w = write_queue_[it->second];
    u64 n = w.data ? w.data->size() : 0;
    if (w.offset < hi && w.offset + n > lo) return true;
  }
  return false;
}

void GvfsProxy::rebuild_write_queue_index_() {
  // Every erase from write_queue_ funnels through a rebuild, so one bump
  // here covers the replay-erase and supersede-erase batches.
  write_queue_epoch_.bump();
  write_queue_index_.clear();
  for (std::size_t i = 0; i < write_queue_.size(); ++i) {
    // Later entries win, matching the index's coalescing invariant.
    write_queue_index_[{write_queue_[i].fh.key(), write_queue_[i].offset}] = i;
  }
}

std::optional<blob::BlobRef> GvfsProxy::queued_block_(u64 file_key,
                                                      u64 block) const {
  // Assemble the block from every queued write overlapping its byte range —
  // degraded writes are queued at their raw downstream offset, which need
  // not be block-aligned. Newest write wins on overlap: apply in sequence-
  // stamp order, NOT vector order — coalescing refreshes an entry's bytes
  // in place at its original slot, so position says nothing about recency.
  // The collected indices are only meaningful while write_queue_ holds
  // still; a yield sneaking into this assembly would let a replay erase
  // reshuffle them mid-sort.
  YieldGuard yield_free(write_queue_epoch_);
  u64 block_lo = block * cfg_.fetch_block;
  u64 block_hi = block_lo + cfg_.fetch_block;
  std::vector<std::size_t> indices;
  for (auto it = write_queue_index_.lower_bound({file_key, 0});
       it != write_queue_index_.end() && it->first.first == file_key; ++it) {
    indices.push_back(it->second);
  }
  std::sort(indices.begin(), indices.end(), [this](std::size_t a, std::size_t b) {
    return write_queue_[a].seq < write_queue_[b].seq;
  });
  blob::ExtentStore assembled;
  assembled.truncate(cfg_.fetch_block);
  u64 covered_hi = 0;
  bool any = false;
  for (std::size_t i : indices) {
    const PendingWrite& w = write_queue_[i];
    u64 n = w.data ? w.data->size() : 0;
    u64 lo = std::max(block_lo, w.offset);
    u64 hi = std::min(block_hi, w.offset + n);
    if (lo >= hi) continue;
    assembled.write_blob(lo - block_lo, w.data, lo - w.offset, hi - lo);
    covered_hi = std::max(covered_hi, hi - block_lo);
    any = true;
  }
  if (!any) return std::nullopt;
  // Bytes inside the block but not covered by any queued write read as
  // zeros: the cache was invalidated when the write was queued, so this is
  // the best available degraded answer (documented best-effort).
  assembled.truncate(covered_hi);
  return assembled.snapshot();
}

std::optional<vfs::Attr> GvfsProxy::stale_attr_(const nfs::Fh& fh) {
  auto it = attr_cache_.find(fh.key());
  if (it == attr_cache_.end()) return std::nullopt;
  it->second.lru_tick = ++attr_tick_;
  // Remember that this answer may be a lie: signal_reconnect re-probes every
  // key served stale so a remote change mid-outage cannot linger until the
  // TTL happens to expire.
  if (upstream_down_) stale_served_.insert(fh.key());
  return it->second.attr;
}

Status GvfsProxy::revalidate_stale_attrs_(sim::Process& p) {
  if (stale_served_.empty()) return Status::ok();
  // gvfs-lint: allow(unordered-iteration) keys are sorted on the next line before any use
  std::vector<u64> keys(stale_served_.begin(), stale_served_.end());
  std::sort(keys.begin(), keys.end());
  stale_served_.clear();
  for (u64 k : keys) {
    auto fh_it = key_to_fh_.find(k);
    if (fh_it == key_to_fh_.end()) continue;
    const nfs::Fh fh = fh_it->second;  // copy: the GETATTR below yields
    std::optional<vfs::Attr> old;
    if (auto it = attr_cache_.find(k); it != attr_cache_.end()) old = it->second.attr;

    auto gargs = std::make_shared<nfs::GetattrArgs>();
    gargs->fh = fh;
    auto gres = upstream_as_<nfs::GetattrRes>(p, Proc::kGetattr, gargs, session_cred_);
    if (!gres.is_ok()) return gres.status();
    if ((*gres)->status != NfsStat::kOk) {
      // The file vanished during the outage: drop every local trace.
      if (block_cache_ != nullptr) block_cache_->invalidate_file(k);
      if (file_cache_ != nullptr) file_cache_->invalidate(k);
      attr_cache_.erase(k);
      attr_gauge_sync_();
      size_override_.erase(k);
      continue;
    }
    const vfs::Attr fresh = (*gres)->attr.a;
    attr_revalidations_.inc();
    const u64 old_size = old ? old->size : 0;
    if (fresh.size < old_size) {
      // A remote truncate happened mid-outage: cached frames and staged
      // sizes describe the pre-outage file. Push any locally dirtied blocks
      // first (last-writer-wins, same promise replay makes), then drop.
      if (block_cache_ != nullptr) {
        sync_drain_ = true;
        Status st = block_cache_->write_back_file(p, k);
        if (st.is_ok() && cfg_.async_writeback) st = drain_flush_queues_(p);
        sync_drain_ = false;
        GVFS_RETURN_IF_ERROR(st);
        block_cache_->invalidate_file(k);
      }
      if (file_cache_ != nullptr) file_cache_->invalidate(k);
      size_override_.erase(k);
      profiles_.erase(k);
      // The write-back above may have re-extended the file; trust a fresh
      // probe next time rather than the pre-flush answer.
      attr_cache_.erase(k);
      attr_gauge_sync_();
      continue;
    }
    remember_attr_(fh, fresh, p.now());
  }
  return Status::ok();
}

std::shared_ptr<nfs::LookupRes> GvfsProxy::degraded_lookup_(
    const nfs::LookupArgs& a) {
  // Serve a LOOKUP from the namespace learned before the outage (linear
  // scan: the learned set is small — files the session actually touched).
  // If a name was relearned under a new handle there can be two matches;
  // pick the smallest key so the answer never depends on hash order.
  bool found = false;
  u64 best_key = 0;
  // gvfs-lint: allow(unordered-iteration) commutative min-key scan; order cannot escape
  for (const auto& [key, link] : parents_) {
    if (link.dir.key() != a.dir.key() || link.name != a.name) continue;
    if (!found || key < best_key) {
      found = true;
      best_key = key;
    }
  }
  if (found) {
    auto fh_it = key_to_fh_.find(best_key);
    if (fh_it != key_to_fh_.end()) {
      auto res = std::make_shared<nfs::LookupRes>();
      res->fh = fh_it->second;
      if (auto attr = stale_attr_(fh_it->second)) res->obj_attr.attr = *attr;
      return res;
    }
  }
  return nullptr;
}

// ------------------------------------------------------------------ leases --

Status GvfsProxy::ensure_lease_(sim::Process& p, const Fh& fh, nfs::LeaseMode mode,
                                const rpc::Credential& cred) {
  if (!cfg_.enable_leases || lease_unsupported_) return Status::ok();
  u64 key = fh.key();
  if (auto it = held_leases_.find(key);
      it != held_leases_.end() && it->second.expiry > p.now() &&
      (it->second.mode == nfs::LeaseMode::kWrite || it->second.mode == mode)) {
    return Status::ok();
  }
  for (u32 attempt = 0; attempt <= cfg_.lease_max_retries; ++attempt) {
    auto largs = std::make_shared<nfs::LeaseArgs>();
    largs->fh = fh;
    largs->client_id = cfg_.lease_client_id;
    largs->mode = mode;
    auto lres = upstream_as_<nfs::LeaseRes>(p, Proc::kLeaseAcquire, largs, cred);
    if (!lres.is_ok()) {
      lease_acquire_failures_.inc();
      return lres.status();
    }
    if ((*lres)->status == NfsStat::kNotSupported) {
      // Origin not lease-aware (or toggled off): stand down for the session.
      lease_unsupported_ = true;
      return Status::ok();
    }
    if ((*lres)->status != NfsStat::kOk) {
      lease_acquire_failures_.inc();
      return err((*lres)->status, "lease acquire");
    }
    if ((*lres)->granted) {
      held_leases_[key] = HeldLease{mode, (*lres)->expiry};
      leases_acquired_.inc();
      if (tracer_) tracer_->annotate(&p, cfg_.name, "lease_granted", p.now());
      return Status::ok();
    }
    // Conflict: the server is recalling the holder (NFS4ERR_DELAY shape).
    // Back off and retry; the retry horizon outlasts the server's lease
    // duration, so a partitioned holder lapses before we give up.
    lease_acquire_retries_.inc();
    p.delay(cfg_.lease_retry_delay);
  }
  lease_acquire_failures_.inc();
  return err(ErrCode::kTimeout, "lease acquire: conflict never cleared");
}

rpc::RpcReply GvfsProxy::handle_recall_(sim::Process& p, const rpc::RpcCall& call) {
  auto res = std::make_shared<nfs::RecallRes>();
  if (static_cast<nfs::CallbackProc>(call.proc) != nfs::CallbackProc::kRecall) {
    return rpc::make_reply(call, res);  // kNull ping
  }
  auto a = rpc::message_cast<nfs::RecallArgs>(call.args);
  if (!a) return rpc::make_error_reply(call, err(ErrCode::kBadXdr, "recall args"));
  u64 key = a->fh.key();
  recalls_served_.inc();
  if (tracer_) tracer_->annotate(&p, cfg_.name, "lease_recall", p.now());

  // Flush the file's dirty state through the existing write-back machinery,
  // then drop every cached copy: the contender may write the moment our
  // reply lands, so anything kept here would go stale silently.
  bool flushed = true;
  if (block_cache_ != nullptr) {
    sync_drain_ = true;
    Status st = block_cache_->write_back_file(p, key);
    if (st.is_ok() && cfg_.async_writeback) st = drain_flush_queues_(p);
    sync_drain_ = false;
    if (!st.is_ok()) flushed = false;
    block_cache_->invalidate_file(key);
  }
  if (file_cache_ != nullptr && file_cache_->contains(key)) {
    Status st = file_cache_->write_back_all(p);
    if (!st.is_ok()) flushed = false;
    file_cache_->invalidate(key);
  }
  attr_cache_.erase(key);
  attr_gauge_sync_();
  size_override_.erase(key);
  commit_pending_.erase(key);
  profiles_.erase(key);
  held_leases_.erase(key);
  res->status = NfsStat::kOk;
  res->flushed = flushed;
  return rpc::make_reply(call, res);
}

// ---------------------------------------------------------------- handlers --

rpc::RpcReply GvfsProxy::handle(sim::Process& p, const rpc::RpcCall& call) {
  calls_received_.inc();
  if (cfg_.per_call_cpu > 0) p.delay(cfg_.per_call_cpu);
  // Server-initiated lease recalls ride the callback program down the same
  // tunnel; they carry the server's identity, not a client credential, so
  // they bypass the authorizer / cred-mapping that guards client traffic.
  if (call.prog == nfs::kLeaseCallbackProgram) return handle_recall_(p, call);
  if (authorizer_ && !authorizer_(call.cred)) {
    return rpc::make_error_reply(call, err(ErrCode::kAuthError, "proxy policy"));
  }
  session_cred_ = cred_mapper_ ? cred_mapper_(call.cred) : call.cred;

  if (call.prog != rpc::kNfsProgram) return forward_(p, call);

  switch (static_cast<Proc>(call.proc)) {
    case Proc::kRead: {
      auto a = rpc::message_cast<nfs::ReadArgs>(call.args);
      if (!a) break;
      return handle_read_(p, call, *a);
    }
    case Proc::kWrite: {
      auto a = rpc::message_cast<nfs::WriteArgs>(call.args);
      if (!a) break;
      return handle_write_(p, call, *a);
    }
    case Proc::kGetattr: {
      auto a = rpc::message_cast<nfs::GetattrArgs>(call.args);
      if (!a) break;
      return handle_getattr_(p, call, *a);
    }
    case Proc::kCommit: {
      auto a = rpc::message_cast<nfs::CommitArgs>(call.args);
      if (!a) break;
      return handle_commit_(p, call, *a);
    }
    case Proc::kSetattr: {
      auto a = rpc::message_cast<nfs::SetattrArgs>(call.args);
      if (!a) break;
      return handle_setattr_(p, call, *a);
    }
    case Proc::kLookup: {
      // Forward, but learn the namespace so meta-data probing can find the
      // companion file later.
      auto a = rpc::message_cast<nfs::LookupArgs>(call.args);
      if (a && cfg_.degraded_mode && upstream_down_) {
        if (auto hit = degraded_lookup_(*a)) return rpc::make_reply(call, hit);
      }
      rpc::RpcReply reply = forward_(p, call);
      if (a && reply.status.is_ok()) {
        if (auto res = rpc::message_cast<nfs::LookupRes>(reply.result);
            res && res->status == NfsStat::kOk) {
          parents_[res->fh.key()] = ParentLink{a->dir, a->name};
          key_to_fh_[res->fh.key()] = res->fh;
          if (res->obj_attr.attr) remember_attr_(res->fh, *res->obj_attr.attr, p.now());
        }
      } else if (a && cfg_.degraded_mode &&
                 reply.status.code() == ErrCode::kTimeout) {
        if (auto hit = degraded_lookup_(*a)) return rpc::make_reply(call, hit);
      }
      return reply;
    }
    case Proc::kCreate: {
      auto a = rpc::message_cast<nfs::CreateArgs>(call.args);
      rpc::RpcReply reply = forward_(p, call);
      if (a && reply.status.is_ok()) {
        if (auto res = rpc::message_cast<nfs::CreateRes>(reply.result);
            res && res->status == NfsStat::kOk) {
          parents_[res->fh.key()] = ParentLink{a->dir, a->name};
          key_to_fh_[res->fh.key()] = res->fh;
          if (res->attr.attr) remember_attr_(res->fh, *res->attr.attr, p.now());
        }
      }
      return reply;
    }
    default:
      break;
  }
  return forward_(p, call);
}

rpc::RpcReply GvfsProxy::handle_read_(sim::Process& p, const rpc::RpcCall& call,
                                      const nfs::ReadArgs& a) {
  // gvfs-lint: allow(yield-stale-ref) session_cred_ is a plain member, not a container element; its address is stable for the proxy's lifetime
  const rpc::Credential& cred = session_cred_;
  key_to_fh_[a.fh.key()] = a.fh;
  if (cfg_.enable_leases && !upstream_down_) {
    // Best-effort read lease: holding one means a future writer's recall
    // reaches us before our cached copies go stale. Failure (conflict that
    // never cleared, or a transport error) still serves the read — coherence
    // then falls back to the attr TTL, exactly the lease-free behavior.
    (void)ensure_lease_(p, a.fh, nfs::LeaseMode::kRead, cred);
  }
  const meta::MetaFile* meta = meta_for_(p, a.fh, cred);

  // ---- file-based channel (compress/copy/uncompress/read-locally) ---------
  if (meta != nullptr && meta->wants_file_channel() && file_channel_ != nullptr &&
      file_cache_ != nullptr) {
    u64 key = a.fh.key();
    if (!file_cache_->contains(key)) {
      Status st = file_channel_->fetch_into_cache(p, a.fh.fileid, key);
      if (!st.is_ok()) {
        GVFS_WARN("proxy") << cfg_.name << ": file channel failed ("
                           << st.to_string() << "), falling back to blocks";
      }
    }
    if (file_cache_->contains(key)) {
      u64 size = file_cache_->cached_size(key).value_or(0);
      auto res = std::make_shared<nfs::ReadRes>();
      u64 n = a.offset >= size ? 0 : std::min<u64>(a.count, size - a.offset);
      auto data = file_cache_->read(p, key, a.offset, n);
      file_hits_.inc();
      if (tracer_) tracer_->annotate(&p, cfg_.name, "file_cache_hit", p.now());
      res->count = static_cast<u32>(n);
      res->eof = a.offset + n >= size;
      res->data = data && *data ? *data : blob::zero_ref(0);
      if (auto attr = cached_attr_(a.fh, p.now())) {
        attr->size = std::max(attr->size, size);
        res->attr.attr = *attr;
      }
      return rpc::make_reply(call, res);
    }
    // fetch_into_cache() yielded on the file channel: a concurrent
    // drop_soft_state() frees the MetaFile this pointer aimed at. Re-acquire
    // — a no-op (cache hit, no yield) unless the table really was dropped.
    meta = meta_for_(p, a.fh, cred);
  }

  // ---- zero-block filtering ------------------------------------------------
  if (meta != nullptr && meta->has_zero_map() &&
      meta->range_is_zero(a.offset, a.count)) {
    zero_filtered_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "zero_filtered", p.now());
    u64 size = meta->file_size();
    auto res = std::make_shared<nfs::ReadRes>();
    u64 n = a.offset >= size ? 0 : std::min<u64>(a.count, size - a.offset);
    res->count = static_cast<u32>(n);
    res->eof = a.offset + n >= size;
    res->data = blob::zero_ref(n);
    if (auto attr = cached_attr_(a.fh, p.now())) res->attr.attr = *attr;
    return rpc::make_reply(call, res);
  }

  // ---- block cache ----------------------------------------------------------
  if (block_cache_ == nullptr) return forward_(p, call);

  std::optional<vfs::Attr> attr = cached_attr_(a.fh, p.now());
  if (!attr && cfg_.degraded_mode && upstream_down_) {
    // Session consistency: an expired attribute beats failing the READ
    // while the upstream is unreachable.
    attr = stale_attr_(a.fh);
  }
  if (!attr) {
    auto gargs = std::make_shared<nfs::GetattrArgs>();
    gargs->fh = a.fh;
    auto gres = upstream_as_<nfs::GetattrRes>(p, Proc::kGetattr, gargs, cred);
    if (!gres.is_ok()) {
      if (cfg_.degraded_mode && gres.code() == ErrCode::kTimeout) {
        attr = stale_attr_(a.fh);  // serve what we knew before the outage
      }
      if (!attr) return rpc::make_error_reply(call, gres.status());
    } else {
      if ((*gres)->status != NfsStat::kOk) {
        auto res = std::make_shared<nfs::ReadRes>();
        res->status = (*gres)->status;
        return rpc::make_reply(call, res);
      }
      remember_attr_(a.fh, (*gres)->attr.a, p.now());
      attr = (*gres)->attr.a;
    }
  }
  u64 size = effective_size_(a.fh, attr);
  u64 n = a.offset >= size ? 0 : std::min<u64>(a.count, size - a.offset);

  auto res = std::make_shared<nfs::ReadRes>();
  if (n > 0) {
    u64 first = a.offset / cfg_.fetch_block;
    u64 last = (a.offset + n - 1) / cfg_.fetch_block;
    if (first == last) {
      // Single-block read: reference the cached block directly (whole-block
      // reads, the common case) or slice it — no extent map, no copy.
      auto blockr = get_block_(p, a.fh, first, cred);
      if (!blockr.is_ok()) return rpc::make_error_reply(call, blockr.status());
      const blob::BlobRef& data = *blockr;
      u64 block_start = first * cfg_.fetch_block;
      u64 off_in_block = a.offset - block_start;
      if (data && data->size() >= off_in_block + n) {
        res->data = (off_in_block == 0 && data->size() == n)
                        ? data
                        : std::make_shared<blob::SliceBlob>(data, off_in_block, n);
      } else {
        // Short block (read past cached tail): zero-fill the remainder.
        blob::ExtentStore assembled;
        assembled.truncate(n);
        u64 hi = std::min(block_start + (data ? data->size() : 0), a.offset + n);
        if (a.offset < hi)
          assembled.write_blob(0, data, off_in_block, hi - a.offset);
        res->data = assembled.snapshot();
      }
    } else {
      blob::ExtentStore assembled;
      assembled.truncate(n);
      for (u64 b = first; b <= last; ++b) {
        auto blockr = get_block_(p, a.fh, b, cred);
        if (!blockr.is_ok()) return rpc::make_error_reply(call, blockr.status());
        const blob::BlobRef& data = *blockr;
        u64 block_start = b * cfg_.fetch_block;
        u64 lo = std::max(block_start, a.offset);
        u64 hi = std::min(block_start + (data ? data->size() : 0), a.offset + n);
        if (lo < hi) assembled.write_blob(lo - a.offset, data, lo - block_start, hi - lo);
      }
      res->data = assembled.snapshot();
    }
    maybe_prefetch_(p, a.fh, last, size, cred);
  } else {
    res->data = blob::zero_ref(0);
  }
  res->count = static_cast<u32>(n);
  res->eof = a.offset + n >= size;
  if (attr) {
    vfs::Attr out = *attr;
    out.size = size;
    res->attr.attr = out;
  }
  return rpc::make_reply(call, res);
}

rpc::RpcReply GvfsProxy::handle_write_(sim::Process& p, const rpc::RpcCall& call,
                                       const nfs::WriteArgs& a) {
  // gvfs-lint: allow(yield-stale-ref) session_cred_ is a plain member, not a container element; its address is stable for the proxy's lifetime
  const rpc::Credential& cred = session_cred_;
  key_to_fh_[a.fh.key()] = a.fh;
  u64 key = a.fh.key();
  // The fingerprint table describes the image as installed; once this
  // session writes the file, the table can no longer prove that a resident
  // twin equals the server's current bytes, so the dedup probe stands down.
  if (cfg_.dedup_blocks) dedup_written_.insert(key);

  if (cfg_.enable_leases) {
    Status ls = ensure_lease_(p, a.fh, nfs::LeaseMode::kWrite, cred);
    if (!ls.is_ok()) {
      // During a partition degraded mode still absorbs/queues the write —
      // the replay path re-acquires the lease (fencing) before anything
      // heads upstream. Outside degraded mode a write without a lease would
      // silently break the multi-writer contract, so it fails loudly.
      if (!(cfg_.degraded_mode &&
            (ls.code() == ErrCode::kTimeout || upstream_down_))) {
        return rpc::make_error_reply(call, ls);
      }
    }
  }

  // Writes to a file served by the file channel update the whole-file cache
  // (write-back uploads it later as compress+SCP).
  if (file_cache_ != nullptr && file_cache_->contains(key)) {
    Status st = file_cache_->write(p, key, a.offset, a.data);
    if (!st.is_ok()) return rpc::make_error_reply(call, st);
    writes_absorbed_.inc();
    if (tracer_) tracer_->annotate(&p, cfg_.name, "write_absorbed", p.now());
    size_override_[key] = std::max(effective_size_(a.fh, cached_attr_(a.fh, p.now())),
                                   a.offset + a.count);
    auto res = std::make_shared<nfs::WriteRes>();
    res->count = a.count;
    res->committed = nfs::StableHow::kFileSync;
    if (auto attr = cached_attr_(a.fh, p.now())) {
      attr->size = size_override_[key];
      attr->mtime = p.now();
      res->attr.attr = *attr;
    }
    return rpc::make_reply(call, res);
  }

  if (block_cache_ == nullptr) return forward_(p, call);

  if (block_cache_->config().policy == cache::WritePolicy::kWriteThrough) {
    // Forward synchronously; drop overlapping cached blocks so the next read
    // refetches fresh data (coherence without dirty state).
    rpc::RpcReply reply = forward_(p, call);
    if (reply.status.is_ok()) {
      if (auto res = rpc::message_cast<nfs::WriteRes>(reply.result);
          res && res->status == NfsStat::kOk) {
        block_cache_->invalidate_file(key);
        if (res->attr.attr) remember_attr_(a.fh, *res->attr.attr, p.now());
        size_override_.erase(key);
      }
    } else if (cfg_.degraded_mode && reply.status.code() == ErrCode::kTimeout) {
      // Degraded write-through: acknowledge locally, queue for replay.
      queue_degraded_write_(a.fh, a.offset, a.data, next_write_seq_++);
      block_cache_->invalidate_file(key);
      size_override_[key] =
          std::max(effective_size_(a.fh, cached_attr_(a.fh, p.now())),
                   a.offset + a.count);
      auto res = std::make_shared<nfs::WriteRes>();
      res->count = a.count;
      res->committed = nfs::StableHow::kFileSync;
      return rpc::make_reply(call, res);
    }
    return reply;
  }

  // ---- write-back: absorb locally ------------------------------------------
  std::optional<vfs::Attr> attr = cached_attr_(a.fh, p.now());
  u64 known = effective_size_(a.fh, attr);
  u64 end = a.offset + a.count;
  u64 first = a.offset / cfg_.fetch_block;
  u64 last = a.count > 0 ? (end - 1) / cfg_.fetch_block : first;
  for (u64 b = first; b <= last; ++b) {
    u64 block_start = b * cfg_.fetch_block;
    u64 lo = std::max(block_start, a.offset);
    u64 hi = std::min(block_start + cfg_.fetch_block, end);
    auto slice = std::make_shared<blob::SliceBlob>(a.data, lo - a.offset, hi - lo);
    cache::BlockId id{key, b};
    bool full = lo == block_start && hi - lo == cfg_.fetch_block;
    if (full) {
      Status st = block_cache_->insert(p, id, slice, /*dirty=*/true);
      if (!st.is_ok()) return rpc::make_error_reply(call, st);
      continue;
    }
    if (!block_cache_->contains(id) && block_start < known) {
      // Partial write into an existing block: fetch-and-merge.
      auto blockr = get_block_(p, a.fh, b, cred);
      if (!blockr.is_ok()) return rpc::make_error_reply(call, blockr.status());
    }
    if (block_cache_->contains(id)) {
      auto merged = block_cache_->merge(p, id, lo - block_start, slice);
      if (!merged.is_ok()) return rpc::make_error_reply(call, merged.status());
    } else {
      // New tail block: zeros up to the write, then the data.
      blob::ExtentStore compose;
      compose.truncate(hi - block_start);
      compose.write_blob(lo - block_start, slice, 0, hi - lo);
      Status st = block_cache_->insert(p, id, compose.snapshot(), /*dirty=*/true);
      if (!st.is_ok()) return rpc::make_error_reply(call, st);
    }
  }
  size_override_[key] = std::max(known, end);
  commit_pending_.insert(key);
  writes_absorbed_.inc();
  if (tracer_) tracer_->annotate(&p, cfg_.name, "write_absorbed", p.now());

  auto res = std::make_shared<nfs::WriteRes>();
  res->count = a.count;
  res->committed = nfs::StableHow::kFileSync;
  if (attr) {
    vfs::Attr out = *attr;
    out.size = size_override_[key];
    out.mtime = p.now();
    remember_attr_(a.fh, out, p.now());
    res->attr.attr = out;
  }
  return rpc::make_reply(call, res);
}

rpc::RpcReply GvfsProxy::handle_getattr_(sim::Process& p, const rpc::RpcCall& call,
                                         const nfs::GetattrArgs& a) {
  key_to_fh_[a.fh.key()] = a.fh;
  std::optional<vfs::Attr> attr = cached_attr_(a.fh, p.now());
  if (!attr && cfg_.degraded_mode && upstream_down_) attr = stale_attr_(a.fh);
  if (!attr) {
    rpc::RpcReply reply = forward_(p, call);
    if (!reply.status.is_ok()) {
      if (cfg_.degraded_mode && reply.status.code() == ErrCode::kTimeout) {
        if (auto stale = stale_attr_(a.fh)) {
          auto res = std::make_shared<nfs::GetattrRes>();
          res->attr.a = *stale;
          res->attr.a.size = effective_size_(a.fh, stale);
          return rpc::make_reply(call, res);
        }
      }
      return reply;
    }
    auto res = rpc::message_cast<nfs::GetattrRes>(reply.result);
    if (!res || res->status != NfsStat::kOk) return reply;
    vfs::Attr out = res->attr.a;
    remember_attr_(a.fh, out, p.now());
    u64 size = effective_size_(a.fh, out);
    if (size != out.size) {
      auto patched = std::make_shared<nfs::GetattrRes>(*res);
      patched->attr.a.size = size;
      return rpc::make_reply(call, patched);
    }
    return reply;
  }
  auto res = std::make_shared<nfs::GetattrRes>();
  res->attr.a = *attr;
  res->attr.a.size = effective_size_(a.fh, attr);
  return rpc::make_reply(call, res);
}

rpc::RpcReply GvfsProxy::handle_commit_(sim::Process& p, const rpc::RpcCall& call,
                                        const nfs::CommitArgs& a) {
  bool write_back_mode =
      block_cache_ != nullptr &&
      block_cache_->config().policy == cache::WritePolicy::kWriteBack;
  bool file_cached = file_cache_ != nullptr && file_cache_->contains(a.fh.key());
  if (cfg_.absorb_commit && (write_back_mode || file_cached)) {
    auto res = std::make_shared<nfs::CommitRes>();
    if (auto attr = cached_attr_(a.fh, p.now())) res->attr.attr = *attr;
    res->verifier = 0x67766673ULL;
    return rpc::make_reply(call, res);
  }
  if (write_back_mode && !cfg_.absorb_commit) {
    // Honest COMMIT: the client asked for durability, so dirty blocks staged
    // in the cache (and, under async write-back, in the flush queue) must
    // reach the server before the COMMIT is forwarded.
    Status st = block_cache_->write_back_file(p, a.fh.key());
    if (st.is_ok() && cfg_.async_writeback) st = drain_flush_queues_(p);
    if (!st.is_ok()) return rpc::make_error_reply(call, st);
    commit_pending_.erase(a.fh.key());
  }
  rpc::RpcReply reply = forward_(p, call);
  if (cfg_.degraded_mode && reply.status.code() == ErrCode::kTimeout) {
    // The data this COMMIT covers sits in the replay queue; acknowledging it
    // locally is the same promise write-back mode makes (replayed durable on
    // reconnect).
    auto res = std::make_shared<nfs::CommitRes>();
    if (auto attr = stale_attr_(a.fh)) res->attr.attr = *attr;
    res->verifier = 0x67766673ULL;
    return rpc::make_reply(call, res);
  }
  return reply;
}

rpc::RpcReply GvfsProxy::handle_setattr_(sim::Process& p, const rpc::RpcCall& call,
                                         const nfs::SetattrArgs& a) {
  u64 key = a.fh.key();
  if (a.sattr.sa.set_size) {
    // Truncation: staged data past the new EOF must not survive, and the
    // file's read-ahead window no longer describes cached blocks.
    if (cfg_.dedup_blocks) dedup_written_.insert(key);  // fp table now stale
    if (block_cache_ != nullptr) block_cache_->invalidate_file(key);
    if (file_cache_ != nullptr) file_cache_->invalidate(key);
    size_override_.erase(key);
    attr_cache_.erase(key);
    attr_gauge_sync_();
    profiles_.erase(key);
  }
  rpc::RpcReply reply = forward_(p, call);
  if (reply.status.is_ok()) {
    if (auto res = rpc::message_cast<nfs::SetattrRes>(reply.result);
        res && res->status == NfsStat::kOk && res->attr.attr) {
      remember_attr_(a.fh, *res->attr.attr, p.now());
    }
  }
  return reply;
}

// ------------------------------------------------------ middleware signals --

Status GvfsProxy::signal_reconnect(sim::Process& p) {
  GVFS_RETURN_IF_ERROR(replay_write_queue_(p));
  return revalidate_stale_attrs_(p);
}

Status GvfsProxy::signal_write_back(sim::Process& p) {
  if (block_cache_ != nullptr) {
    // The middleware wants durability now: drain inline instead of racing a
    // background flusher (sync_drain_ suppresses spawns from the evictions
    // write_back_all triggers).
    sync_drain_ = true;
    Status st = block_cache_->write_back_all(p);
    if (st.is_ok() && cfg_.async_writeback) st = drain_flush_queues_(p);
    sync_drain_ = false;
    GVFS_RETURN_IF_ERROR(st);
  }
  if (file_cache_ != nullptr) {
    GVFS_RETURN_IF_ERROR(file_cache_->write_back_all(p));
  }
  commit_pending_.clear();
  return Status::ok();
}

void GvfsProxy::drop_soft_state() {
  attr_cache_.clear();
  attr_gauge_sync_();
  stale_served_.clear();
  size_override_.clear();
  metas_.clear();
  meta_negative_.clear();
  commit_pending_.clear();
  // Stale ahead_until/run would make the refill guard suppress read-ahead
  // on the next cold pass over the same file.
  profiles_.clear();
}

Status GvfsProxy::signal_flush(sim::Process& p) {
  GVFS_RETURN_IF_ERROR(signal_write_back(p));
  if (block_cache_ != nullptr) block_cache_->invalidate_all();
  if (file_cache_ != nullptr) file_cache_->invalidate_all();
  attr_cache_.clear();
  attr_gauge_sync_();
  stale_served_.clear();
  size_override_.clear();
  metas_.clear();
  meta_negative_.clear();
  // Everything cached was just invalidated: a profile's read-ahead window
  // refers to blocks that no longer exist, so reset it or the refill guard
  // degrades the next session to synchronous single-block misses.
  profiles_.clear();
  return Status::ok();
}

}  // namespace gvfs::proxy
