// ShardRouter: a client-side rpc::RpcChannel that federates N replicated
// origin NfsServers into one logical NFS endpoint (the "image cluster",
// DESIGN.md §5.7). It slots between a GvfsProxy and its per-origin channel
// stacks, so the proxy's caching / write-back / degraded machinery runs
// unchanged above it.
//
// Routing policy (deterministic, derived only from the request):
//   * shard(fh) = fh.key() % N — the file-handle hash assigns every object a
//     home shard; shard s is stored on replicas {s, s+1, .., s+R-1 mod N}
//     (chained declustering, so a crash spreads its load over R-1 peers);
//   * reads (GETATTR/LOOKUP/ACCESS/READLINK/READ/READDIR*/PATHCONF) go to
//     the live replica with the lowest EWMA latency (ties break on the lower
//     origin index) — contention raises a replica's EWMA and traffic drains
//     to its peers, which is the load-balancing mechanism;
//   * WRITE/COMMIT fan out to every live replica of the shard and ack only
//     after all of them answered (R-quorum); the reply carries a *combined*
//     write verifier hashed over the per-replica verifiers in fixed replica
//     order, with a dead-epoch marker substituted for dead replicas. Any
//     single replica rebooting — or the live set changing between WRITE and
//     COMMIT — perturbs the combined verifier, so the proxy's existing RFC
//     1813 §3.3.7 mismatch path re-sends the unacked data: per-replica
//     verifier recovery falls out of PR 5's machinery without proxy changes;
//   * namespace mutations (SETATTR/CREATE/MKDIR/SYMLINK/REMOVE/RMDIR/
//     RENAME/LINK) broadcast to all N origins so every origin holds the full
//     namespace and FileIds stay aligned (identical mutation order on every
//     origin — concurrent cross-node namespace mutation is out of scope,
//     see ROADMAP item 4);
//   * NULL/FSSTAT/FSINFO/MOUNT go to the lowest-indexed live origin.
//
// Failover: a kTimeout reply from a replica's channel stack (RetryChannel
// retransmission budget exhausted) marks it dead. Reads re-route to the next
// best replica; writes ack from the survivors and every op a dead origin
// missed is appended to its per-origin resync journal. Dead origins are
// probed lazily (NULL RPC, rate-limited) on subsequent traffic; a probe that
// answers triggers reintegration: the journal replays in order with fresh
// xids (WRITEs upgraded to FILE_SYNC so no unstable state is left behind),
// then the origin rejoins the live set. All of it is driven by the calling
// fibers — no background process — so runs are deterministic and
// stdout-invariance-gateable.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutation_epoch.h"
#include "nfs/nfs_types.h"
#include "rpc/rpc.h"
#include "sim/resources.h"

namespace gvfs::proxy {

struct ShardRouterConfig {
  std::string name = "shard-router";
  // R-way replication degree (clamped to the origin count).
  u32 replicas = 1;
  // EWMA smoothing for per-origin read latency (higher = more reactive).
  double latency_alpha = 0.25;
  // Minimum spacing between reintegration probes of one dead origin.
  SimDuration probe_interval = 2 * kSecond;
};

class ShardRouter final : public rpc::RpcChannel {
 public:
  // `origins[j]` is the fully-decorated channel stack (tunnel / faults /
  // retry) leading to origin j. The router holds the pointers, not the
  // stacks; all must outlive it.
  ShardRouter(std::vector<rpc::RpcChannel*> origins, ShardRouterConfig cfg = {});

  rpc::RpcReply call(sim::Process& p, const rpc::RpcCall& call) override;
  std::vector<rpc::RpcReply> call_pipelined(
      sim::Process& p, const std::vector<rpc::RpcCall>& calls) override;

  // Probe every dead origin immediately (ignoring the probe back-off) and
  // replay its journal. Harnesses call this to force reintegration at a
  // known quiesce point; steady-state traffic reintegrates lazily.
  void resync(sim::Process& p);

  [[nodiscard]] u32 origin_count() const { return static_cast<u32>(chans_.size()); }
  [[nodiscard]] u32 shard_of(const nfs::Fh& fh) const {
    return static_cast<u32>(fh.key() % chans_.size());
  }
  // Origin indices storing `shard`, in quorum/verifier order.
  [[nodiscard]] std::vector<u32> replicas_of(u32 shard) const;
  [[nodiscard]] bool origin_live(u32 j) const { return origins_[j].live; }
  [[nodiscard]] u64 journal_size(u32 j) const { return origins_[j].journal.size(); }
  [[nodiscard]] u64 reads_routed(u32 j) const { return origins_[j].reads_routed.value(); }
  [[nodiscard]] u64 writes_routed(u32 j) const { return origins_[j].writes_routed.value(); }

  [[nodiscard]] u64 failovers() const { return failovers_.value(); }
  [[nodiscard]] u64 resyncs() const { return resyncs_.value(); }
  [[nodiscard]] u64 probes() const { return probes_.value(); }
  [[nodiscard]] u64 journaled_ops() const { return journaled_ops_.value(); }
  [[nodiscard]] u64 replayed_ops() const { return replayed_ops_.value(); }
  [[nodiscard]] u64 replay_conflicts() const { return replay_conflicts_.value(); }
  [[nodiscard]] u64 read_reroutes() const { return read_reroutes_.value(); }
  [[nodiscard]] u64 lookup_patches() const { return lookup_patches_.value(); }
  // Virtual milliseconds the most recent reintegrated origin spent dead
  // (crash detection to journal fully replayed); 0 before any resync.
  [[nodiscard]] double last_outage_ms() const { return last_outage_ms_; }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const;

 private:
  // Per-origin routing state. Lives in a deque: metrics::Registry keeps raw
  // Counter pointers, so instruments need stable addresses.
  struct Origin {
    bool live = true;
    bool reintegrating = false;
    // Bumped each time the origin is declared dead; folded into combined
    // write verifiers in place of the replica's verifier so the live-set
    // change itself forces the proxy's mismatch re-send path.
    u64 dead_epoch = 0;
    SimTime died_at = 0;
    SimTime next_probe = 0;
    double ewma_ms = 0.0;  // read-path latency estimate
    bool ewma_valid = false;
    // Ops this origin missed while dead, replayed in order on reintegration.
    struct JournalEntry {
      u32 prog = 0;
      u32 vers = 0;
      u32 proc = 0;
      rpc::Credential cred;
      rpc::MessagePtr args;
    };
    std::deque<JournalEntry> journal;
    metrics::Counter reads_routed;
    metrics::Counter writes_routed;
  };

  enum class Route { kReadOne, kQuorumWrite, kBroadcast, kAnyOrigin };
  static Route classify_(const rpc::RpcCall& call);
  // Routing handle for the call (the object/dir fh), invalid if none.
  static nfs::Fh route_fh_(const rpc::RpcCall& call);

  [[nodiscard]] int best_read_replica_(const std::vector<u32>& set) const;
  void note_read_latency_(u32 j, double sample_ms);
  void mark_dead_(sim::Process& p, u32 j);
  void journal_op_(u32 j, const rpc::RpcCall& call);
  // Rate-limited probe + journal replay for any dead origin that is due.
  void maybe_probe_(sim::Process& p);
  // Returns true if origin j answered the probe and fully replayed.
  bool try_reintegrate_(sim::Process& p, u32 j);
  [[nodiscard]] u32 fresh_xid_() { return router_xid_++; }

  rpc::RpcReply read_one_(sim::Process& p, const rpc::RpcCall& call,
                          const nfs::Fh& fh);
  rpc::RpcReply quorum_write_(sim::Process& p, const rpc::RpcCall& call,
                              const nfs::Fh& fh);
  rpc::RpcReply broadcast_(sim::Process& p, const rpc::RpcCall& call);
  rpc::RpcReply any_origin_(sim::Process& p, const rpc::RpcCall& call);
  // Replace a LOOKUP result's object attributes with fresh ones from the
  // object's own shard when the serving origin is not one of its replicas
  // (its data-bearing attrs — size/mtime — would otherwise be stale).
  rpc::RpcReply patch_lookup_attrs_(sim::Process& p, const rpc::RpcCall& call,
                                    rpc::RpcReply reply, u32 served);
  // Pipelined fast paths for uniform single-shard bursts (proxy prefetch
  // READ batches and flush WRITE batches).
  std::vector<rpc::RpcReply> pipelined_read_(sim::Process& p,
                                             const std::vector<rpc::RpcCall>& calls,
                                             u32 shard);
  std::vector<rpc::RpcReply> pipelined_write_(sim::Process& p,
                                              const std::vector<rpc::RpcCall>& calls,
                                              u32 shard);
  // Combined write verifier over the replica set in fixed order; ok[k] says
  // whether set[k] answered and verf[k] is its per-replica verifier.
  [[nodiscard]] u64 combined_verf_(const std::vector<u32>& set,
                                   const std::vector<char>& ok,
                                   const std::vector<u64>& verf) const;

  // One writer at a time per shard. The quorum fan-out yields once per
  // replica, so two interleaved writers can land in one order on a live
  // replica but journal in the opposite order for a dead one — the replay
  // would then diverge the replicas. Lazily created: the Semaphore needs the
  // kernel, first seen via the calling fiber.
  sim::Semaphore& shard_write_lock_(sim::Process& p, u32 shard);

  ShardRouterConfig cfg_;
  std::vector<rpc::RpcChannel*> chans_;
  std::deque<Origin> origins_;
  std::vector<std::unique_ptr<sim::Semaphore>> shard_write_locks_;
  // Dynamic half of the yield-point analysis (DESIGN.md §5.8). journal_epoch_
  // moves on every journal push/pop across all origins; live_set_epoch_ on
  // every live flip / dead-epoch bump. YieldGuards in the yield-free readers
  // (best_read_replica_, combined_verf_, the reintegration go-live tail)
  // assert the respective state holds still where correctness depends on it.
  MutationEpoch journal_epoch_;
  MutationEpoch live_set_epoch_;
  u32 router_xid_ = 0x5A000000;  // router-originated RPCs (probes, replays)

  metrics::Counter failovers_;
  metrics::Counter resyncs_;
  metrics::Counter probes_;
  metrics::Counter probe_failures_;
  metrics::Counter journaled_ops_;
  metrics::Counter replayed_ops_;
  metrics::Counter replay_conflicts_;
  metrics::Counter quorum_writes_;
  metrics::Counter quorum_commits_;
  metrics::Counter broadcasts_;
  metrics::Counter read_reroutes_;
  metrics::Counter lookup_patches_;
  metrics::Histogram outage_ms_;
  double last_outage_ms_ = 0.0;
};

}  // namespace gvfs::proxy
