// Second-level file-channel cache (§3.2.1 cascading, used by WAN-S3): a
// LAN-server proxy that implements RemoteFileEndpoint for the compute
// servers below it while itself fetching from the WAN image server above.
// The cache holds the *compressed* golden-image state, so downstream clones
// pay only a LAN-disk read plus the LAN hop — no per-clone recompression.
#pragma once

#include <memory>
#include <unordered_map>

#include "blob/blob.h"
#include "common/metrics.h"
#include "meta/file_channel.h"
#include "sim/resources.h"
#include "ssh/ssh.h"

namespace gvfs::proxy {

class CachingFileEndpoint final : public meta::RemoteFileEndpoint {
 public:
  // `upstream` + `scp_up` reach the origin server; `disk` stores cached
  // compressed images on this LAN server; `capacity` bounds them.
  CachingFileEndpoint(meta::RemoteFileEndpoint& upstream, ssh::Scp& scp_up,
                      sim::DiskModel& disk, u64 capacity_bytes = 8_GiB)
      : upstream_(upstream), scp_up_(scp_up), disk_(disk), capacity_(capacity_bytes) {}

  Result<meta::CompressedImage> fetch_compressed(sim::Process& p,
                                                 vfs::FileId fileid) override;
  Status store_compressed(sim::Process& p, vfs::FileId fileid, blob::BlobRef content,
                          u64 compressed_size) override;

  // Single-flight pull coalescing: concurrent downstream fetches of one
  // fileid join the first puller's WAN transfer instead of issuing duplicate
  // pulls — a boot storm of N clones missing the same golden image costs one
  // origin crossing, not N.
  void set_single_flight(bool on) { single_flight_ = on; }

  // Content-addressed image dedup: after the origin compresses an image, its
  // fingerprint is compared against resident copies (the digest exchange is
  // a control-plane RPC already charged by fetch_compressed); an identical
  // image aliases the resident copy and skips the WAN crossing, the cache
  // disk write, and the residency charge — N clones of one golden image hold
  // one compressed copy.
  void set_dedup(bool on, u64 seed = blob::kDefaultFingerprintSeed) {
    dedup_ = on;
    dedup_seed_ = seed;
  }

  [[nodiscard]] u64 cache_hits() const { return hits_.value(); }
  [[nodiscard]] u64 cache_misses() const { return misses_.value(); }
  [[nodiscard]] u64 coalesced_fetches() const { return coalesced_.value(); }
  [[nodiscard]] u64 resident_bytes() const { return resident_.value(); }
  [[nodiscard]] u64 dedup_aliases() const { return dedup_aliases_.value(); }
  [[nodiscard]] u64 dedup_bytes_saved() const { return dedup_bytes_saved_.value(); }
  [[nodiscard]] u64 dedup_collisions() const { return dedup_collisions_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "cache_hits", &hits_);
    r.register_counter(prefix + "cache_misses", &misses_);
    r.register_counter(prefix + "coalesced_fetches", &coalesced_);
    r.register_gauge(prefix + "resident_bytes", &resident_);
    if (dedup_) {
      r.register_counter(prefix + "dedup_aliases", &dedup_aliases_);
      r.register_counter(prefix + "dedup_bytes_saved", &dedup_bytes_saved_);
      r.register_counter(prefix + "dedup_collisions", &dedup_collisions_);
    }
  }
  [[nodiscard]] bool contains(vfs::FileId fileid) const {
    return images_.count(fileid) != 0;
  }
  void invalidate_all() {
    images_.clear();
    store_.clear();
    fp_of_.clear();
    resident_.set(0);
  }

  // Pre-warm the cache (WAN-S3 models images pulled by earlier clonings for
  // other compute servers on the same LAN).
  Status prefetch(sim::Process& p, vfs::FileId fileid) {
    return fetch_compressed(p, fileid).status();
  }

 private:
  // One in-flight pull; waiters hold the shared entry so the Signal outlives
  // the leader erasing the map slot.
  struct InflightPull {
    std::unique_ptr<sim::Signal> done;
    bool complete = false;
    Status status = Status::ok();
  };

  // One deduplicated resident image; refs counts the fileids aliased onto
  // it. The entry owns the single residency charge — aliases add none.
  struct ImageDedupEntry {
    u64 size = 0;             // uncompressed content bytes (collision check)
    u64 compressed_size = 0;  // resident bytes this entry charges
    u32 refs = 0;
  };

  Status pull_(sim::Process& p, vfs::FileId fileid);
  // Accounting for removing `fileid`'s image: private copies release their
  // bytes; aliases drop a ref and release only at the last one.
  void drop_image_(vfs::FileId fileid, u64 compressed_size);

  meta::RemoteFileEndpoint& upstream_;
  ssh::Scp& scp_up_;
  sim::DiskModel& disk_;
  u64 capacity_;
  std::unordered_map<vfs::FileId, meta::CompressedImage> images_;
  bool single_flight_ = false;
  bool dedup_ = false;
  u64 dedup_seed_ = blob::kDefaultFingerprintSeed;
  std::unordered_map<vfs::FileId, std::shared_ptr<InflightPull>> inflight_;
  std::unordered_map<u64, ImageDedupEntry> store_;  // fingerprint -> entry
  std::unordered_map<vfs::FileId, u64> fp_of_;      // deduped fileids only
  metrics::Gauge resident_;  // compressed bytes on the cache disk
  metrics::Counter hits_;
  metrics::Counter misses_;
  metrics::Counter coalesced_;
  metrics::Counter dedup_aliases_;
  metrics::Counter dedup_bytes_saved_;
  metrics::Counter dedup_collisions_;
};

}  // namespace gvfs::proxy
