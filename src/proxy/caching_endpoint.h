// Second-level file-channel cache (§3.2.1 cascading, used by WAN-S3): a
// LAN-server proxy that implements RemoteFileEndpoint for the compute
// servers below it while itself fetching from the WAN image server above.
// The cache holds the *compressed* golden-image state, so downstream clones
// pay only a LAN-disk read plus the LAN hop — no per-clone recompression.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/metrics.h"
#include "meta/file_channel.h"
#include "sim/resources.h"
#include "ssh/ssh.h"

namespace gvfs::proxy {

class CachingFileEndpoint final : public meta::RemoteFileEndpoint {
 public:
  // `upstream` + `scp_up` reach the origin server; `disk` stores cached
  // compressed images on this LAN server; `capacity` bounds them.
  CachingFileEndpoint(meta::RemoteFileEndpoint& upstream, ssh::Scp& scp_up,
                      sim::DiskModel& disk, u64 capacity_bytes = 8_GiB)
      : upstream_(upstream), scp_up_(scp_up), disk_(disk), capacity_(capacity_bytes) {}

  Result<meta::CompressedImage> fetch_compressed(sim::Process& p,
                                                 vfs::FileId fileid) override;
  Status store_compressed(sim::Process& p, vfs::FileId fileid, blob::BlobRef content,
                          u64 compressed_size) override;

  // Single-flight pull coalescing: concurrent downstream fetches of one
  // fileid join the first puller's WAN transfer instead of issuing duplicate
  // pulls — a boot storm of N clones missing the same golden image costs one
  // origin crossing, not N.
  void set_single_flight(bool on) { single_flight_ = on; }

  [[nodiscard]] u64 cache_hits() const { return hits_.value(); }
  [[nodiscard]] u64 cache_misses() const { return misses_.value(); }
  [[nodiscard]] u64 coalesced_fetches() const { return coalesced_.value(); }
  [[nodiscard]] u64 resident_bytes() const { return resident_.value(); }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "cache_hits", &hits_);
    r.register_counter(prefix + "cache_misses", &misses_);
    r.register_counter(prefix + "coalesced_fetches", &coalesced_);
    r.register_gauge(prefix + "resident_bytes", &resident_);
  }
  [[nodiscard]] bool contains(vfs::FileId fileid) const {
    return images_.count(fileid) != 0;
  }
  void invalidate_all() {
    images_.clear();
    resident_.set(0);
  }

  // Pre-warm the cache (WAN-S3 models images pulled by earlier clonings for
  // other compute servers on the same LAN).
  Status prefetch(sim::Process& p, vfs::FileId fileid) {
    return fetch_compressed(p, fileid).status();
  }

 private:
  // One in-flight pull; waiters hold the shared entry so the Signal outlives
  // the leader erasing the map slot.
  struct InflightPull {
    std::unique_ptr<sim::Signal> done;
    bool complete = false;
    Status status = Status::ok();
  };

  Status pull_(sim::Process& p, vfs::FileId fileid);

  meta::RemoteFileEndpoint& upstream_;
  ssh::Scp& scp_up_;
  sim::DiskModel& disk_;
  u64 capacity_;
  std::unordered_map<vfs::FileId, meta::CompressedImage> images_;
  bool single_flight_ = false;
  std::unordered_map<vfs::FileId, std::shared_ptr<InflightPull>> inflight_;
  metrics::Gauge resident_;  // compressed bytes on the cache disk
  metrics::Counter hits_;
  metrics::Counter misses_;
  metrics::Counter coalesced_;
};

}  // namespace gvfs::proxy
