#include "proxy/caching_endpoint.h"

namespace gvfs::proxy {

void CachingFileEndpoint::drop_image_(vfs::FileId fileid, u64 compressed_size) {
  auto fit = fp_of_.find(fileid);
  if (fit != fp_of_.end()) {
    auto sit = store_.find(fit->second);
    if (sit != store_.end() && --sit->second.refs == 0) {
      resident_.sub(compressed_size);
      store_.erase(sit);
    }
    fp_of_.erase(fit);
    return;
  }
  resident_.sub(compressed_size);
}

Status CachingFileEndpoint::pull_(sim::Process& p, vfs::FileId fileid) {
  GVFS_ASSIGN_OR_RETURN(meta::CompressedImage img,
                        upstream_.fetch_compressed(p, fileid));
  u64 fp = 0;
  if (dedup_) {
    // rsync-style digest exchange: the origin's compress step already priced
    // the control round trip; an identical resident image means the bulk
    // bytes never cross the WAN and the cache disk never sees them.
    fp = img.content->fingerprint(dedup_seed_, 0, img.content->size());
    auto sit = store_.find(fp);
    if (sit != store_.end()) {
      if (sit->second.size == img.content->size() &&
          sit->second.compressed_size == img.compressed_size) {
        ++sit->second.refs;
        fp_of_[fileid] = fp;
        dedup_aliases_.inc();
        dedup_bytes_saved_.inc(img.compressed_size);
        images_[fileid] = std::move(img);
        return Status::ok();
      }
      // Same fingerprint, different content shape: never alias — pull a
      // private copy and pay full freight.
      dedup_collisions_.inc();
    }
  }
  // Compressed image crosses the WAN once, then lands on the LAN disk.
  scp_up_.transfer(p, img.compressed_size);
  disk_.access(p, img.compressed_size, sim::Locality::kSequential);
  while (resident_.value() + img.compressed_size > capacity_ && !images_.empty()) {
    // Evict the smallest file id: unordered_map::begin() would pick a
    // hash-order (implementation-defined) victim, making eviction — and
    // every simulated timing downstream of it — non-reproducible.
    auto victim = images_.begin();  // gvfs-lint: allow(unordered-iteration) seed for the min-key scan
    // gvfs-lint: allow(unordered-iteration) commutative min-key scan; order cannot escape
    for (auto it = images_.begin(); it != images_.end(); ++it) {
      if (it->first < victim->first) victim = it;
    }
    drop_image_(victim->first, victim->second.compressed_size);
    images_.erase(victim);
  }
  resident_.add(img.compressed_size);
  if (dedup_) {
    // The transfer above yielded; a concurrent pull of identical content may
    // have claimed the fingerprint meanwhile. Losing that race keeps this
    // copy private — both transfers were already in flight, so both charge.
    auto [slot, inserted] = store_.try_emplace(
        fp, ImageDedupEntry{img.content->size(), img.compressed_size, 1});
    if (inserted) fp_of_[fileid] = fp;
  }
  images_[fileid] = std::move(img);
  return Status::ok();
}

Result<meta::CompressedImage> CachingFileEndpoint::fetch_compressed(
    sim::Process& p, vfs::FileId fileid) {
  auto it = images_.find(fileid);
  if (it != images_.end()) {
    hits_.inc();
  }
  while (it == images_.end()) {
    if (single_flight_) {
      if (auto fl = inflight_.find(fileid); fl != inflight_.end()) {
        // Another downstream fetch is already pulling this image: join it.
        std::shared_ptr<InflightPull> entry = fl->second;
        coalesced_.inc();
        while (!entry->complete) p.wait(*entry->done);
        GVFS_RETURN_IF_ERROR(entry->status);
        // Normally cached now; re-loop handles the pulled image having been
        // evicted again before this waiter was rescheduled.
        it = images_.find(fileid);
        continue;
      }
      misses_.inc();
      auto entry = std::make_shared<InflightPull>();
      entry->done = std::make_unique<sim::Signal>(p.kernel(), "l2-file-pull");
      inflight_.emplace(fileid, entry);
      Status st = pull_(p, fileid);
      entry->complete = true;
      entry->status = st;
      inflight_.erase(fileid);
      entry->done->notify_all();
      GVFS_RETURN_IF_ERROR(st);
    } else {
      misses_.inc();
      GVFS_RETURN_IF_ERROR(pull_(p, fileid));
    }
    it = images_.find(fileid);
  }
  // Stream the cached compressed image off the LAN disk; no recompression.
  // Copy the image out first: the disk access yields, and a concurrent
  // pull_() under capacity pressure can evict this very entry mid-stream,
  // leaving `it` dangling.
  meta::CompressedImage img = it->second;
  disk_.access(p, img.compressed_size, sim::Locality::kSequential);
  return img;
}

Status CachingFileEndpoint::store_compressed(sim::Process& p, vfs::FileId fileid,
                                             blob::BlobRef content,
                                             u64 compressed_size) {
  // Write-back from a compute server: keep the new compressed image here and
  // forward it to the origin (the LAN hop already happened downstream).
  disk_.access(p, compressed_size, sim::Locality::kSequential);
  meta::CompressedImage img;
  img.content = content;
  img.compressed_size = compressed_size;
  auto it = images_.find(fileid);
  if (it != images_.end()) {
    drop_image_(fileid, it->second.compressed_size);
  }
  // Write-back content is freshly dirtied: keep it private (the block-cache
  // CoW policy — dirty data never enters the dedup store).
  resident_.add(compressed_size);
  images_[fileid] = img;
  return upstream_.store_compressed(p, fileid, std::move(content), compressed_size);
}

}  // namespace gvfs::proxy
