#include "proxy/caching_endpoint.h"

namespace gvfs::proxy {

Status CachingFileEndpoint::pull_(sim::Process& p, vfs::FileId fileid) {
  GVFS_ASSIGN_OR_RETURN(meta::CompressedImage img,
                        upstream_.fetch_compressed(p, fileid));
  // Compressed image crosses the WAN once, then lands on the LAN disk.
  scp_up_.transfer(p, img.compressed_size);
  disk_.access(p, img.compressed_size, sim::Locality::kSequential);
  while (resident_.value() + img.compressed_size > capacity_ && !images_.empty()) {
    // Evict the smallest file id: unordered_map::begin() would pick a
    // hash-order (implementation-defined) victim, making eviction — and
    // every simulated timing downstream of it — non-reproducible.
    auto victim = images_.begin();  // gvfs-lint: allow(unordered-iteration) seed for the min-key scan
    // gvfs-lint: allow(unordered-iteration) commutative min-key scan; order cannot escape
    for (auto it = images_.begin(); it != images_.end(); ++it) {
      if (it->first < victim->first) victim = it;
    }
    resident_.sub(victim->second.compressed_size);
    images_.erase(victim);
  }
  resident_.add(img.compressed_size);
  images_[fileid] = std::move(img);
  return Status::ok();
}

Result<meta::CompressedImage> CachingFileEndpoint::fetch_compressed(
    sim::Process& p, vfs::FileId fileid) {
  auto it = images_.find(fileid);
  if (it != images_.end()) {
    hits_.inc();
  }
  while (it == images_.end()) {
    if (single_flight_) {
      if (auto fl = inflight_.find(fileid); fl != inflight_.end()) {
        // Another downstream fetch is already pulling this image: join it.
        std::shared_ptr<InflightPull> entry = fl->second;
        coalesced_.inc();
        while (!entry->complete) p.wait(*entry->done);
        GVFS_RETURN_IF_ERROR(entry->status);
        // Normally cached now; re-loop handles the pulled image having been
        // evicted again before this waiter was rescheduled.
        it = images_.find(fileid);
        continue;
      }
      misses_.inc();
      auto entry = std::make_shared<InflightPull>();
      entry->done = std::make_unique<sim::Signal>(p.kernel(), "l2-file-pull");
      inflight_.emplace(fileid, entry);
      Status st = pull_(p, fileid);
      entry->complete = true;
      entry->status = st;
      inflight_.erase(fileid);
      entry->done->notify_all();
      GVFS_RETURN_IF_ERROR(st);
    } else {
      misses_.inc();
      GVFS_RETURN_IF_ERROR(pull_(p, fileid));
    }
    it = images_.find(fileid);
  }
  // Stream the cached compressed image off the LAN disk; no recompression.
  // Copy the image out first: the disk access yields, and a concurrent
  // pull_() under capacity pressure can evict this very entry mid-stream,
  // leaving `it` dangling.
  meta::CompressedImage img = it->second;
  disk_.access(p, img.compressed_size, sim::Locality::kSequential);
  return img;
}

Status CachingFileEndpoint::store_compressed(sim::Process& p, vfs::FileId fileid,
                                             blob::BlobRef content,
                                             u64 compressed_size) {
  // Write-back from a compute server: keep the new compressed image here and
  // forward it to the origin (the LAN hop already happened downstream).
  disk_.access(p, compressed_size, sim::Locality::kSequential);
  meta::CompressedImage img;
  img.content = content;
  img.compressed_size = compressed_size;
  auto it = images_.find(fileid);
  if (it != images_.end()) {
    resident_.sub(it->second.compressed_size);
  }
  resident_.add(compressed_size);
  images_[fileid] = img;
  return upstream_.store_compressed(p, fileid, std::move(content), compressed_size);
}

}  // namespace gvfs::proxy
