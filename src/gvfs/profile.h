// Calibrated resource parameters for the paper's testbed (§4.1): compute
// servers at the University of Florida, a LAN image server on 100 Mb/s
// Ethernet, and a WAN image server at Northwestern reached through Abilene.
// Anchors: SCP of the full 1.92 GB image = 1127 s => ~1.7 MB/s per SSH flow;
// plain-NFS block-by-block clone of the 320 MB memory state = 2060 s =>
// ~40 ms RTT at 8 KB rsize; Abilene itself has far more aggregate capacity
// than one flow (Table 1's 7x parallel-cloning speedup).
#pragma once

#include "nfs/nfs_client.h"
#include "nfs/nfs_server.h"
#include "sim/resources.h"
#include "ssh/ssh.h"

namespace gvfs::core {

struct NetProfile {
  // WAN path (shared by all flows between the sites).
  sim::LinkConfig wan{/*latency=*/from_millis(19.5),
                      /*bytes_per_sec=*/12.0 * 1_MiB,
                      /*chunk_bytes=*/64_KiB,
                      /*per_message_overhead=*/40 * kMicrosecond};
  ssh::CipherSpec wan_cipher{/*per_flow_bps=*/1.9 * 1_MiB,
                             /*setup_time=*/400 * kMillisecond,
                             /*frame_overhead=*/48,
                             /*pacing_chunk=*/64_KiB};

  // 100 Mb/s switched Ethernet.
  sim::LinkConfig lan{/*latency=*/from_millis(0.15),
                      /*bytes_per_sec=*/11.5 * 1_MiB,
                      /*chunk_bytes=*/64_KiB,
                      /*per_message_overhead=*/25 * kMicrosecond};
  ssh::CipherSpec lan_cipher{/*per_flow_bps=*/8.5 * 1_MiB,
                             /*setup_time=*/150 * kMillisecond,
                             /*frame_overhead=*/48,
                             /*pacing_chunk=*/64_KiB};

  // 2001-era SCSI disks (compute nodes and servers alike).
  sim::DiskConfig disk{/*seek=*/from_millis(9.0),
                       /*seq_overhead=*/from_millis(0.12),
                       /*bytes_per_sec=*/35.0 * 1_MiB};

  // Image server: dual-processor PIII (bounds concurrent gzip jobs).
  int image_server_cpus = 2;

  // GZIP throughputs (era defaults from ssh::GzipModel: ~8 MB/s compress,
  // ~30 MB/s inflate on a 1 GHz PIII).
  ssh::GzipModel gzip{};

  // Kernel NFS client defaults. Plain WAN mounts of the era used 8 KB
  // rsize/wsize; GVFS sessions negotiate the 32 KB protocol limit.
  u32 plain_rsize = 8_KiB;
  u32 gvfs_rsize = 32_KiB;
};

}  // namespace gvfs::core
