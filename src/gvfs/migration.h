// VM migration across Grid resources — the paper's stated future work
// ("distributed virtual file system support for efficient checkpointing and
// migration of VM instances for load-balancing and fault-tolerant
// execution", §6) built from the mechanisms the paper already provides:
//
//   1. suspend at the source: the new memory state lands in the source
//      proxy's write-back caches at local speed;
//   2. middleware write-back: the state travels to the image server once,
//      compressed, over the file channel;
//   3. middleware re-generates the .vmss meta-data for the new state;
//   4. resume at the destination: the file channel delivers the fresh
//      state, the virtual disk stays on demand.
#pragma once

#include <memory>

#include "gvfs/testbed.h"
#include "vm/vm_monitor.h"

namespace gvfs::core {

struct MigrationTiming {
  double suspend_s = 0;     // VM down, state in source caches
  double write_back_s = 0;  // state pushed to the image server
  double metadata_s = 0;    // middleware re-scans the new state
  double resume_s = 0;      // destination pulls + resumes
  [[nodiscard]] double total_s() const {
    return suspend_s + write_back_s + metadata_s + resume_s;
  }
  // The VM is unavailable from suspend-start to resume-end.
  [[nodiscard]] double downtime_s() const { return total_s(); }
};

struct MigrationResult {
  MigrationTiming timing;
  std::unique_ptr<vm::VmMonitor> vm;  // resumed on the destination
};

// Migrate `src_vm` (whose state lives at `image` on the testbed's image
// store, mounted on `src_node`) to `dst_node`. `new_memory_state` is the
// captured RAM image at suspend time.
Result<MigrationResult> migrate_vm(sim::Process& p, Testbed& bed,
                                   const vm::VmImagePaths& image,
                                   vm::VmMonitor& src_vm,
                                   blob::BlobRef new_memory_state, int src_node,
                                   int dst_node, const vm::VmmConfig& vmm = {});

}  // namespace gvfs::core
