#include "gvfs/migration.h"

namespace gvfs::core {

Result<MigrationResult> migrate_vm(sim::Process& p, Testbed& bed,
                                   const vm::VmImagePaths& image,
                                   vm::VmMonitor& src_vm,
                                   blob::BlobRef new_memory_state, int src_node,
                                   int dst_node, const vm::VmmConfig& vmm) {
  MigrationResult out;

  // 1. Suspend at the source: guest sync + full memory-state write. With a
  //    write-back proxy this completes at local-disk speed.
  SimTime t0 = p.now();
  GVFS_RETURN_IF_ERROR(src_vm.suspend(p, std::move(new_memory_state)));
  SimTime t1 = p.now();
  out.timing.suspend_s = to_seconds(t1 - t0);

  // 2. Middleware pushes the source's dirty state home (compressed upload of
  //    the file-cache entry, write-back of dirty blocks).
  GVFS_RETURN_IF_ERROR(bed.signal_write_back(p, src_node));
  SimTime t2 = p.now();
  out.timing.write_back_s = to_seconds(t2 - t1);

  // 3. Middleware re-scans the new state so the destination's proxy gets a
  //    fresh zero map + file-channel actions; destination caches that might
  //    hold the stale state are flushed (session-based consistency).
  GVFS_RETURN_IF_ERROR(bed.refresh_image_metadata(p, image));
  GVFS_RETURN_IF_ERROR(bed.signal_flush(p, dst_node));
  SimTime t3 = p.now();
  out.timing.metadata_s = to_seconds(t3 - t2);

  // 4. Resume on the destination: memory state via the file channel, virtual
  //    disk on demand.
  GVFS_RETURN_IF_ERROR(bed.mount(p, dst_node));
  vfs::FsSession& dst = bed.image_session(dst_node);
  out.vm = std::make_unique<vm::VmMonitor>(vmm);
  out.vm->attach(dst, image.cfg(), image.vmss(), dst, image.flat_vmdk());
  GVFS_RETURN_IF_ERROR(out.vm->resume(p));
  out.timing.resume_s = to_seconds(p.now() - t3);
  return out;
}

}  // namespace gvfs::core
