// Experiment helpers shared by the integration tests and the bench harnesses
// that regenerate the paper's figures: set up a VM whose state lives on a
// testbed's image store and run workloads inside it.
#pragma once

#include <memory>

#include "gvfs/testbed.h"
#include "vm/guest_fs.h"
#include "vm/vm_monitor.h"

namespace gvfs::core {

struct VmSetup {
  vm::VmImagePaths image;
  std::unique_ptr<vm::VmMonitor> vm;
  std::unique_ptr<vm::GuestFs> guest;
};

struct VmSetupOptions {
  vm::VmImageSpec spec;
  vm::VmmConfig vmm;
  int node = 0;
  // Resume (full .vmss read) before returning. App-execution experiments
  // measure run time only, so they skip it; cloning experiments go through
  // VmCloner instead.
  bool resume = false;
};

// Install the image on the testbed's store, mount it on the node, and attach
// a VM monitor whose state files all live on that mount.
Result<VmSetup> prepare_vm(sim::Process& p, Testbed& bed, const VmSetupOptions& opt);

}  // namespace gvfs::core
