// Scenario testbed: wires kernel clients, GVFS proxies, tunnels, caches and
// servers into the exact topologies of §4 —
//   Local   : VM state on the compute server's own disk.
//   LAN     : state NFS-mounted from the LAN image server via GVFS proxies
//             over SSH tunnels (no client disk cache).
//   WAN     : same across the wide-area path.
//   WAN+C   : WAN plus the client-side proxy disk cache (and, for cloning,
//             meta-data handling with the file channel).
//   PlainNfs: unmodified kernel client straight to the kernel server (the
//             paper's non-GVFS baseline).
// Multiple compute nodes share the WAN pipe, the image server, and its
// nfsd/CPU/disk — which is all Table 1's parallel cloning needs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/block_cache.h"
#include "cache/file_cache.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "gvfs/profile.h"
#include "meta/file_channel.h"
#include "nfs/nfs_client.h"
#include "nfs/nfs_server.h"
#include "proxy/caching_endpoint.h"
#include "proxy/gvfs_proxy.h"
#include "proxy/shard_router.h"
#include "rpc/compress_channel.h"
#include "rpc/fault_channel.h"
#include "rpc/retry_channel.h"
#include "sim/faults.h"
#include "ssh/ssh.h"
#include "vfs/local_session.h"
#include "vfs/memfs.h"
#include "vm/vm_image.h"

namespace gvfs::core {

enum class Scenario {
  kLocal,
  kLan,
  kWan,
  kWanCached,
  kPlainNfsWan,  // unmodified NFS baseline over the WAN
};

const char* scenario_name(Scenario s);

struct TestbedOptions {
  Scenario scenario = Scenario::kWanCached;
  int compute_nodes = 1;
  NetProfile net;
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBack;
  bool enable_meta = true;          // client proxies honour meta-data files
  bool generate_image_meta = true;  // install_image() drops .vmss meta-data
  bool second_level_lan_cache = false;  // WAN-S3: LAN server caches for the cluster
  // Shared read-only L2 block cache for cloning clusters: same topology as
  // second_level_lan_cache, but the L2 proxy coalesces concurrent same-block
  // misses (single-flight) so N cloning nodes fetch each block once.
  bool shared_l2_cache = false;
  // Client proxies batch dirty-block write-back: pipelined UNSTABLE WRITE
  // bursts + one COMMIT per file via a background flusher, instead of one
  // synchronous FILE_SYNC WRITE per block.
  bool enable_async_writeback = false;
  // Content-addressed block dedup (DESIGN.md §5.9): .vmss meta-data carries a
  // per-block fingerprint table, proxy block caches alias identical blocks
  // onto one resident frame, and the shared-L2 image cache holds one copy of
  // identical compressed images. Off by default — byte-identical behaviour.
  bool dedup_blocks = false;
  // Modeled gzip compression of bulk RPC payloads across the WAN tunnel
  // (rpc::CompressChannel/CompressHandler straddling the wide-area hop).
  // Savings come from Blob::compressed_size; CPU is charged at
  // NetProfile::gzip throughputs. Off by default.
  bool wire_compression = false;
  cache::BlockCacheConfig block_cache;  // client proxy cache geometry (§4.1)
  u64 file_cache_bytes = 8_GiB;
  // §6 extensions: proxy read-ahead depth (0 = off) and GridFTP-style
  // parallel streams for file-channel transfers.
  u32 prefetch_depth = 0;
  u32 file_channel_streams = 1;
  // Host page-cache sizing. A 1 GB compute server hosting a 512 MB-RAM VM
  // has far less pagecache than an idle one; app-execution benches shrink
  // these accordingly.
  u64 client_page_cache_bytes = 512_MiB;
  u64 local_page_cache_bytes = 640_MiB;
  std::string export_path = "/exports/images";

  // ---- sharded, replicated origin cluster (default off) --------------------
  // Replace the single origin NfsServer with N origin instances behind a
  // per-node ShardRouter (DESIGN.md §5.7): file-handle-hash sharding, R-way
  // replication with read fan-out to the lowest-latency live replica,
  // R-quorum UNSTABLE WRITE + COMMIT with a combined write verifier, and
  // crash-failover + journal resync. Off by default — topology and bench
  // stdout are byte-identical to the single-origin build. Not combinable
  // with the LAN L2 cache topologies. Install files with install_image() /
  // put_image_file(); writing one origin's fs directly would desync its
  // replicas.
  bool origin_cluster = false;
  u32 origin_shards = 2;    // N origin servers (also the shard count)
  u32 origin_replicas = 1;  // R-way replication, chained declustering
  proxy::ShardRouterConfig shard_router;  // name/replicas overridden per node
  // Forwarded to every origin's NfsServerConfig::drc_survives (the DRC
  // crash-volatility test seam).
  bool drc_survives = false;

  // ---- delegation-style leases (default off) -------------------------------
  // Per-file read/write leases with server callbacks (DESIGN.md §5.10): the
  // origin grows a lease table, every node's proxy acquires before serving
  // reads/writes, and recalls ride a reverse channel stack (tunnel -> faults
  // -> retry, links swapped) back to the holder's proxy. Off by default —
  // topology, RNG draws and bench stdout are byte-identical to the
  // lease-free build.
  bool enable_leases = false;
  SimDuration lease_duration = 30 * kSecond;

  // ---- deterministic WAN fault injection -----------------------------------
  // Off by default: no injector, no retry layer, no RNG draws — behaviour
  // (and bench output) is byte-identical to a faultless build.
  bool enable_fault_injection = false;
  sim::FaultConfig fault;        // drops / latency spikes / partitions / crashes
  rpc::RetryConfig retry;        // client retransmission policy (hard mount)
  bool degraded_proxy = false;   // client proxies serve caches during outages
  u64 fault_seed = 0x5eed;       // seeds the kernel RNG (faults + retry jitter)

  // ---- observability -------------------------------------------------------
  // Per-RPC trace spans (client -> retry -> fault -> proxy cascade -> server)
  // collected in a bounded in-memory ring; dumped via trace_json(). Off by
  // default: zero per-call overhead and no behaviour change.
  bool enable_rpc_trace = false;
  u32 trace_capacity = 256;
  // Register each node's instruments under "node<i>." ids. Default on (the
  // per-figure benches read them); boot-storm topologies with 1,000 nodes
  // turn it off — registration cost and registry size are
  // O(nodes x instruments), and the storm reads only server/link aggregates
  // plus its own per-node resume timings.
  bool per_node_metrics = true;
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions opt);
  ~Testbed();

  [[nodiscard]] sim::SimKernel& kernel() { return kernel_; }
  [[nodiscard]] const TestbedOptions& options() const { return opt_; }

  // The image server's exported filesystem (install images here; for kLocal
  // this is node 0's local filesystem).
  [[nodiscard]] vfs::MemFs& image_fs();
  [[nodiscard]] std::string image_dir() const;

  // Install a VM image on the image store and (if meta is enabled) generate
  // its .vmss meta-data. With origin_cluster on, the image is installed on
  // every origin (identical install order keeps FileIds aligned).
  Result<vm::VmImagePaths> install_image(const vm::VmImageSpec& spec);

  // Write a raw file into the image store at a mount-relative path — on
  // every origin in cluster mode. Use this instead of image_fs().put_file()
  // whenever the topology might be a cluster.
  Status put_image_file(const std::string& rel_path, const blob::BlobRef& data);

  // Mount the export on a compute node (no-op for kLocal). Must run inside a
  // simulation process.
  Status mount(sim::Process& p, int node = 0);

  // The session a node sees the image store through (local session for
  // kLocal, the NFS client otherwise).
  [[nodiscard]] vfs::FsSession& image_session(int node = 0);
  // The node's local-disk session.
  [[nodiscard]] vfs::LocalFsSession& local_session(int node = 0);

  // ---- middleware controls -------------------------------------------------
  Status signal_write_back(sim::Process& p, int node = 0);
  Status signal_flush(sim::Process& p, int node = 0);
  // Cold-start: drop every cache on the path (client pages, proxy disk
  // caches, server pages) as the paper does between cold runs.
  void drop_all_caches();
  // Pre-warm the LAN second-level cache with an image's memory state
  // (WAN-S3's "pre-cached due to previous clones for other compute servers").
  Status prewarm_lan_cache(sim::Process& p, const vm::VmImagePaths& image);
  // Middleware re-scan of a (changed) memory state: regenerate the .vmss
  // meta-data on the image server, charging the server-side scan.
  Status refresh_image_metadata(sim::Process& p, const vm::VmImagePaths& image);

  // ---- observability -------------------------------------------------------
  [[nodiscard]] nfs::NfsClient* nfs_client(int node = 0);
  [[nodiscard]] proxy::GvfsProxy* client_proxy(int node = 0);
  [[nodiscard]] cache::ProxyDiskCache* block_cache(int node = 0);
  [[nodiscard]] cache::FileCache* file_cache(int node = 0);
  // The (first) origin server; with origin_cluster on this is origin 0.
  [[nodiscard]] nfs::NfsServer* server();
  // ---- origin-cluster observability (origin_cluster topologies) ------------
  [[nodiscard]] u32 origin_count() const;
  [[nodiscard]] nfs::NfsServer* origin_server(int j);
  [[nodiscard]] vfs::MemFs& origin_fs(int j);
  // The node's ShardRouter (null unless origin_cluster).
  [[nodiscard]] proxy::ShardRouter* shard_router(int node = 0);
  // The cluster-shared L2 block-cache proxy (null unless the topology has
  // one: second_level_lan_cache or shared_l2_cache).
  [[nodiscard]] proxy::GvfsProxy* lan_proxy() { return lan_proxy_.get(); }
  [[nodiscard]] sim::Link* wan_up() { return wan_up_.get(); }
  [[nodiscard]] sim::Link* wan_down() { return wan_down_.get(); }
  // Fault-injection plumbing (null when enable_fault_injection is false).
  [[nodiscard]] sim::FaultInjector* fault_injector() { return faults_.get(); }
  [[nodiscard]] rpc::RetryChannel* retry_channel(int node = 0);

  // ---- metrics & tracing ---------------------------------------------------
  // Every component registers its instruments here under hierarchical ids
  // ("server.drc_hits", "node0.block_cache.misses", ...).
  [[nodiscard]] metrics::Registry& metrics() { return registry_; }
  // Registry snapshot plus derived figures (cache hit rates, total
  // retransmits, outage stats) rendered as one JSON object — this is the
  // "metrics" block the benches embed in BENCH_*.json.
  [[nodiscard]] std::string metrics_json() const;
  // Null unless enable_rpc_trace was set.
  [[nodiscard]] trace::RpcTracer* tracer() { return tracer_.get(); }
  [[nodiscard]] std::string trace_json() const;
  // Write trace_json() to a file (traces never go to stdout).
  Status dump_trace_json(const std::string& path) const;

 private:
  struct Node;

  // Wiring shared by every compute node, resolved once before the node loop:
  // node construction then only copies small config structs and allocates
  // the node's own components — O(1)-ish per node instead of re-deriving
  // scenario topology N times.
  struct SharedNodeConfig {
    bool cached = false;
    bool via_lan = false;
    nfs::NfsClientConfig client;
    cache::BlockCacheConfig block_cache;
    proxy::ProxyConfig proxy;  // per-node name filled in at build time
    vfs::LocalSessionConfig local;
    sim::Link* tun_up = nullptr;
    sim::Link* tun_down = nullptr;
    ssh::CipherSpec tun_cipher;
    rpc::RpcHandler* upstream = nullptr;
    meta::RemoteFileEndpoint* endpoint = nullptr;
    sim::Link* scp_link = nullptr;
  };

  void build_server_side_();
  void build_origin_cluster_();
  void build_lan_cache_node_();
  void resolve_shared_node_config_();
  std::unique_ptr<Node> build_node_(int index);
  // The cluster factory: the single sanctioned NfsServer construction site
  // in topology code (enforced by the gvfs-lint cluster-factory rule), so
  // every topology — single origin or cluster — gets identical server
  // config and restart wiring.
  std::unique_ptr<nfs::NfsServer> make_origin_server_(vfs::MemFs& fs,
                                                      sim::DiskModel& disk);
  // Fingerprint-table geometry for generated .vmss meta-data: the proxy
  // fetch block when dedup_blocks is on, else 0 (version-1 meta file,
  // byte-identical to the pre-dedup encoding).
  [[nodiscard]] u32 meta_fp_block_size_() const;

  TestbedOptions opt_;
  sim::SimKernel kernel_;

  // Registry/tracer come before every component they observe (instruments
  // are owned by the components; the registry only holds const views).
  metrics::Registry registry_;
  std::unique_ptr<trace::RpcTracer> tracer_;

  // ---- image server --------------------------------------------------------
  std::unique_ptr<vfs::MemFs> image_fs_;
  std::unique_ptr<sim::DiskModel> image_disk_;
  std::unique_ptr<sim::CpuPool> image_cpu_;
  std::unique_ptr<nfs::NfsServer> server_;
  std::unique_ptr<rpc::LinkChannel> server_loop_;      // server proxy -> nfsd
  std::unique_ptr<proxy::GvfsProxy> server_proxy_;
  std::unique_ptr<meta::ServerFileChannel> server_endpoint_;
  // wire_compression: origin end of the compressed WAN hop (the client end
  // is a per-node CompressChannel). Null when the toggle is off.
  std::unique_ptr<rpc::CompressHandler> server_compress_;

  // ---- origin cluster (origin_cluster topologies; replaces server_ &c.) ----
  struct Origin;  // MemFs + disk + cpu + NfsServer + loopback + server proxy
  std::vector<std::unique_ptr<Origin>> origins_;

  // ---- shared network ------------------------------------------------------
  std::unique_ptr<sim::Link> wan_up_, wan_down_;
  std::unique_ptr<sim::Link> lan_up_, lan_down_;

  // ---- fault injection (optional) ------------------------------------------
  std::unique_ptr<sim::FaultInjector> faults_;

  // ---- optional LAN cache server (WAN-S3) -----------------------------------
  std::unique_ptr<sim::DiskModel> lan_disk_;
  std::unique_ptr<ssh::Scp> lan_scp_up_;  // LAN node -> origin over WAN
  std::unique_ptr<proxy::CachingFileEndpoint> lan_endpoint_;
  std::unique_ptr<cache::ProxyDiskCache> lan_block_cache_;
  // wire_compression with a LAN tier: the WAN hop is the L2 -> origin
  // tunnel, so the compression pair straddles it here instead of the nodes'
  // LAN tunnels (handler before the tunnel that targets it; channel after).
  std::unique_ptr<rpc::CompressHandler> lan_compress_handler_;
  std::unique_ptr<ssh::SshTunnel> lan_to_origin_;      // L2 proxy -> server proxy
  std::unique_ptr<rpc::CompressChannel> lan_compress_channel_;
  std::unique_ptr<proxy::GvfsProxy> lan_proxy_;        // L2 block-cache proxy

  SharedNodeConfig node_cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace gvfs::core
