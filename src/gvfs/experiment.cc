#include "gvfs/experiment.h"

namespace gvfs::core {

Result<VmSetup> prepare_vm(sim::Process& p, Testbed& bed, const VmSetupOptions& opt) {
  VmSetup out;
  GVFS_ASSIGN_OR_RETURN(out.image, bed.install_image(opt.spec));
  GVFS_RETURN_IF_ERROR(bed.mount(p, opt.node));
  vfs::FsSession& session = bed.image_session(opt.node);
  out.vm = std::make_unique<vm::VmMonitor>(opt.vmm);
  out.vm->attach(session, out.image.cfg(), out.image.vmss(), session,
                 out.image.flat_vmdk());
  if (opt.resume) {
    GVFS_RETURN_IF_ERROR(out.vm->resume(p));
  }
  out.guest = std::make_unique<vm::GuestFs>(*out.vm);
  return out;
}

}  // namespace gvfs::core
