#include "gvfs/testbed.h"

#include <algorithm>
#include <cstdio>

#include "common/log.h"
#include "vfs/prefix_session.h"

namespace gvfs::core {

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kLocal: return "Local";
    case Scenario::kLan: return "LAN";
    case Scenario::kWan: return "WAN";
    case Scenario::kWanCached: return "WAN+C";
    case Scenario::kPlainNfsWan: return "NFS/WAN";
  }
  return "?";
}

struct Testbed::Node {
  std::unique_ptr<vfs::MemFs> fs;
  std::unique_ptr<sim::DiskModel> disk;
  std::unique_ptr<vfs::LocalFsSession> local;
  std::unique_ptr<vfs::PrefixSession> image_view;  // kLocal: export-dir view

  std::unique_ptr<cache::ProxyDiskCache> block_cache;
  std::unique_ptr<cache::FileCache> file_cache;
  std::unique_ptr<ssh::Scp> scp;
  std::unique_ptr<meta::FileChannelClient> file_channel;
  std::unique_ptr<ssh::SshTunnel> tunnel;
  std::unique_ptr<rpc::FaultyChannel> faulty;  // wraps tunnel/direct when faults on
  std::unique_ptr<rpc::RetryChannel> retry;    // retransmission layer above faults
  std::unique_ptr<rpc::CompressChannel> compress;  // client end of the WAN pair
  // Origin-cluster wiring: one full channel stack per origin, federated by
  // the node's ShardRouter (which then serves as the proxy's upstream).
  // Declared before client_proxy so the proxy's upstream outlives it.
  std::vector<std::unique_ptr<ssh::SshTunnel>> origin_tunnels;
  std::vector<std::unique_ptr<rpc::FaultyChannel>> origin_faulty;
  std::vector<std::unique_ptr<rpc::RetryChannel>> origin_retry;
  std::vector<std::unique_ptr<rpc::CompressChannel>> origin_compress;
  std::unique_ptr<proxy::ShardRouter> router;
  std::unique_ptr<proxy::GvfsProxy> client_proxy;
  // Lease-recall callback stacks (enable_leases): the rpc::Channel decorator
  // chain in reverse — an SshTunnel whose handler is this node's proxy with
  // the link pair swapped (recalls travel the server->client direction), the
  // same FaultyChannel/RetryChannel semantics as the forward path. One stack
  // for the single origin, one per origin in cluster mode. Declared after
  // client_proxy: destroyed first, so they never outlive their handler.
  std::vector<std::unique_ptr<ssh::SshTunnel>> cb_tunnels;
  std::vector<std::unique_ptr<rpc::FaultyChannel>> cb_faulty;
  std::vector<std::unique_ptr<rpc::RetryChannel>> cb_retry;
  std::unique_ptr<rpc::LinkChannel> loopback;
  std::unique_ptr<rpc::LinkChannel> direct;
  std::unique_ptr<nfs::NfsClient> client;
};

// One origin of the sharded, replicated image cluster: a full server-side
// stack (fs + disk + cpu + NfsServer + loopback + id-mapping proxy), the
// same shape build_server_side_() wires for the single-origin topologies.
struct Testbed::Origin {
  std::unique_ptr<vfs::MemFs> fs;
  std::unique_ptr<sim::DiskModel> disk;
  std::unique_ptr<sim::CpuPool> cpu;
  std::unique_ptr<nfs::NfsServer> server;
  std::unique_ptr<rpc::LinkChannel> loop;
  std::unique_ptr<proxy::GvfsProxy> proxy;
  std::unique_ptr<rpc::CompressHandler> compress;  // wire_compression only
};

namespace {

// Logical user accounts: remap the grid identity onto a short-lived local
// shadow account allocated for this session (§3.1). Shared by the single
// origin and every cluster origin.
rpc::Credential map_shadow_cred(const rpc::Credential& in) {
  rpc::Credential out = in;
  out.uid = 500 + in.uid % 100;
  out.gid = 500;
  out.machine = "shadow";
  return out;
}

// Wire-compression knobs derived from the profile's gzip model; `cpu` is the
// pool the (de)compression work contends on at that end of the hop.
rpc::CompressConfig wan_compress_cfg(const NetProfile& net, sim::CpuPool* cpu) {
  rpc::CompressConfig c;
  c.compress_bps = net.gzip.compress_bps;
  c.inflate_bps = net.gzip.inflate_bps;
  c.cpu = cpu;
  return c;
}

}  // namespace

Testbed::Testbed(TestbedOptions opt) : opt_(std::move(opt)) {
  if (opt_.enable_rpc_trace) {
    tracer_ = std::make_unique<trace::RpcTracer>(opt_.trace_capacity);
    tracer_->register_metrics(registry_, "trace.");
  }

  // Shared network pipes (all per-node flows contend here).
  wan_up_ = std::make_unique<sim::Link>(kernel_, "wan-up", opt_.net.wan);
  wan_down_ = std::make_unique<sim::Link>(kernel_, "wan-down", opt_.net.wan);
  lan_up_ = std::make_unique<sim::Link>(kernel_, "lan-up", opt_.net.lan);
  lan_down_ = std::make_unique<sim::Link>(kernel_, "lan-down", opt_.net.lan);
  wan_up_->register_metrics(registry_, "wan_up.");
  wan_down_->register_metrics(registry_, "wan_down.");
  lan_up_->register_metrics(registry_, "lan_up.");
  lan_down_->register_metrics(registry_, "lan_down.");

  if (opt_.enable_fault_injection) {
    kernel_.seed_rng(opt_.fault_seed);
    faults_ = std::make_unique<sim::FaultInjector>(kernel_, opt_.fault);
    faults_->register_metrics(registry_, "faults.");
    // Latency spikes hit the shared WAN pipe both ways.
    wan_up_->set_fault_injector(faults_.get());
    wan_down_->set_fault_injector(faults_.get());
  }

  if (opt_.scenario != Scenario::kLocal) {
    if (opt_.origin_cluster) {
      build_origin_cluster_();
    } else {
      build_server_side_();
    }
    // The LAN L2 cache topologies assume the single origin; origin_cluster
    // replaces that tier with the replicated origins themselves.
    if (!opt_.origin_cluster &&
        (opt_.second_level_lan_cache || opt_.shared_l2_cache)) {
      build_lan_cache_node_();
    }
  }
  if (faults_ && server_) {
    // A crash loses the server's volatile state: page cache, the duplicate
    // request cache, and any uncommitted UNSTABLE writes — the rolled write
    // verifier is how clients find out (RFC 1813 §3.3.7).
    faults_->set_on_restart([this] {
      server_->drop_caches();
      server_->clear_drc();
      server_->roll_write_verifier();
      // Leases are volatile too: a rebooted server has no memory of its
      // grants, and holders must re-acquire (the proxy fencing path).
      server_->clear_leases();
    });
  }
  if (faults_ && !origins_.empty()) {
    // Same volatility contract per origin, keyed by server id so a crash
    // window scoped to one replica reboots only that replica.
    for (std::size_t j = 0; j < origins_.size(); ++j) {
      faults_->set_on_restart(static_cast<int>(j), [srv = origin_server(static_cast<int>(j))] {
        srv->drop_caches();
        srv->clear_drc();
        srv->roll_write_verifier();
        srv->clear_leases();
      });
    }
  }
  resolve_shared_node_config_();
  nodes_.reserve(static_cast<std::size_t>(opt_.compute_nodes));
  for (int i = 0; i < opt_.compute_nodes; ++i) {
    nodes_.push_back(build_node_(i));
  }
}

Testbed::~Testbed() = default;

std::unique_ptr<nfs::NfsServer> Testbed::make_origin_server_(vfs::MemFs& fs,
                                                             sim::DiskModel& disk) {
  nfs::NfsServerConfig scfg;
  scfg.max_io = nfs::kMaxBlockSize;
  scfg.drc_survives = opt_.drc_survives;
  // Scale the duplicate-request cache with the client population: a fixed
  // 256-entry FIFO can evict an entry before a boot-storm-scale burst's
  // delayed retransmission arrives, silently re-executing a non-idempotent
  // op. Sizing is untimed (map capacity only), so faultless runs are
  // byte-identical regardless.
  scfg.drc_entries =
      std::max<u32>(scfg.drc_entries, 32u * static_cast<u32>(opt_.compute_nodes));
  scfg.enable_leases = opt_.enable_leases;
  scfg.lease_duration = opt_.lease_duration;
  // gvfs-lint: allow(cluster-factory) the sanctioned origin construction site
  return std::make_unique<nfs::NfsServer>(kernel_, fs, disk, scfg);
}

void Testbed::build_server_side_() {
  image_fs_ = std::make_unique<vfs::MemFs>();
  image_fs_->set_clock([this] { return kernel_.now(); });
  image_disk_ = std::make_unique<sim::DiskModel>(kernel_, "image-disk", opt_.net.disk);
  image_cpu_ = std::make_unique<sim::CpuPool>(kernel_, opt_.net.image_server_cpus);

  server_ = make_origin_server_(*image_fs_, *image_disk_);
  Status st = server_->add_export(opt_.export_path);
  if (!st.is_ok()) GVFS_ERROR("testbed") << "export failed: " << st.to_string();

  server_loop_ = std::make_unique<rpc::LinkChannel>(*server_, nullptr, nullptr,
                                                    10 * kMicrosecond);
  proxy::ProxyConfig spcfg;
  spcfg.name = "server-proxy";
  spcfg.enable_meta = false;  // server side only authenticates and maps ids
  server_proxy_ = std::make_unique<proxy::GvfsProxy>(spcfg, *server_loop_);
  server_proxy_->set_cred_mapper(map_shadow_cred);

  server_endpoint_ = std::make_unique<meta::ServerFileChannel>(
      *image_fs_, *image_disk_, image_cpu_.get(), opt_.net.gzip);

  server_->register_metrics(registry_, "server.");
  image_disk_->register_metrics(registry_, "server.disk.");
  server_proxy_->register_metrics(registry_, "server_proxy.");
  server_endpoint_->register_metrics(registry_, "server_endpoint.");
  if (tracer_) {
    server_->set_tracer(tracer_.get());
    server_proxy_->set_tracer(tracer_.get());
  }
}

void Testbed::build_origin_cluster_() {
  u32 n = std::max<u32>(1, opt_.origin_shards);
  origins_.reserve(n);
  for (u32 j = 0; j < n; ++j) {
    auto o = std::make_unique<Origin>();
    std::string tag = "origin" + std::to_string(j);
    o->fs = std::make_unique<vfs::MemFs>();
    o->fs->set_clock([this] { return kernel_.now(); });
    o->disk = std::make_unique<sim::DiskModel>(kernel_, tag + "-disk", opt_.net.disk);
    o->cpu = std::make_unique<sim::CpuPool>(kernel_, opt_.net.image_server_cpus);
    o->server = make_origin_server_(*o->fs, *o->disk);
    Status st = o->server->add_export(opt_.export_path);
    if (!st.is_ok()) GVFS_ERROR("testbed") << "export failed: " << st.to_string();
    o->loop = std::make_unique<rpc::LinkChannel>(*o->server, nullptr, nullptr,
                                                 10 * kMicrosecond);
    proxy::ProxyConfig spcfg;
    spcfg.name = tag + "-proxy";
    spcfg.enable_meta = false;
    o->proxy = std::make_unique<proxy::GvfsProxy>(spcfg, *o->loop);
    o->proxy->set_cred_mapper(map_shadow_cred);
    if (opt_.wire_compression) {
      o->compress = std::make_unique<rpc::CompressHandler>(
          *o->proxy, wan_compress_cfg(opt_.net, o->cpu.get()));
      o->compress->register_metrics(registry_, tag + ".compress.");
    }

    o->server->register_metrics(registry_, tag + ".server.");
    o->disk->register_metrics(registry_, tag + ".disk.");
    o->proxy->register_metrics(registry_, tag + ".proxy.");
    if (tracer_) {
      o->server->set_tracer(tracer_.get());
      o->proxy->set_tracer(tracer_.get());
    }
    origins_.push_back(std::move(o));
  }
  // The meta/file channel reads from origin 0: .vmss meta-data is installed
  // identically everywhere and the channel is read-only, so one origin
  // serving it keeps the path simple.
  server_endpoint_ = std::make_unique<meta::ServerFileChannel>(
      *origins_[0]->fs, *origins_[0]->disk, origins_[0]->cpu.get(), opt_.net.gzip);
  server_endpoint_->register_metrics(registry_, "server_endpoint.");
}

void Testbed::build_lan_cache_node_() {
  lan_disk_ = std::make_unique<sim::DiskModel>(kernel_, "lan-cache-disk", opt_.net.disk);
  lan_scp_up_ = std::make_unique<ssh::Scp>(*wan_down_, opt_.net.wan_cipher);
  lan_endpoint_ = std::make_unique<proxy::CachingFileEndpoint>(
      *server_endpoint_, *lan_scp_up_, *lan_disk_, opt_.file_cache_bytes);
  // Same sharing semantics as the block path below: a storm of clones
  // missing one golden image crosses the WAN once.
  lan_endpoint_->set_single_flight(opt_.shared_l2_cache);
  // Content-addressed image sharing: clones of one golden image hold a
  // single compressed copy on the L2 disk.
  lan_endpoint_->set_dedup(opt_.dedup_blocks, opt_.block_cache.dedup_seed);

  // Second-level block-cache proxy on the LAN server. With wire_compression
  // the L2 -> origin tunnel is the WAN hop, so the compression pair
  // straddles it here.
  rpc::RpcHandler* origin_handler = server_proxy_.get();
  if (opt_.wire_compression) {
    lan_compress_handler_ = std::make_unique<rpc::CompressHandler>(
        *server_proxy_, wan_compress_cfg(opt_.net, image_cpu_.get()));
    origin_handler = lan_compress_handler_.get();
  }
  lan_to_origin_ = std::make_unique<ssh::SshTunnel>(*origin_handler, wan_up_.get(),
                                                    wan_down_.get(), opt_.net.wan_cipher);
  rpc::RpcChannel* to_origin = lan_to_origin_.get();
  if (opt_.wire_compression) {
    lan_compress_channel_ = std::make_unique<rpc::CompressChannel>(
        *lan_to_origin_, wan_compress_cfg(opt_.net, nullptr));
    to_origin = lan_compress_channel_.get();
  }
  cache::BlockCacheConfig l2cfg = opt_.block_cache;
  l2cfg.dedup_blocks = opt_.dedup_blocks;
  lan_block_cache_ = std::make_unique<cache::ProxyDiskCache>(*lan_disk_, l2cfg);
  proxy::ProxyConfig lpcfg;
  lpcfg.name = "lan-l2-proxy";
  lpcfg.enable_meta = false;
  // Shared read-only cache: concurrent same-block misses from the cloning
  // nodes collapse into one upstream READ.
  lpcfg.single_flight = opt_.shared_l2_cache;
  lpcfg.dedup_blocks = opt_.dedup_blocks;
  lan_proxy_ = std::make_unique<proxy::GvfsProxy>(lpcfg, *to_origin);
  lan_proxy_->attach_block_cache(*lan_block_cache_);

  lan_disk_->register_metrics(registry_, "lan_l2.disk.");
  lan_scp_up_->register_metrics(registry_, "lan_l2.scp_up.");
  if (lan_compress_handler_) {
    lan_compress_handler_->register_metrics(registry_, "server_compress.");
    lan_compress_channel_->register_metrics(registry_, "lan_l2.compress.");
  }
  lan_endpoint_->register_metrics(registry_, "lan_l2.endpoint.");
  lan_to_origin_->register_metrics(registry_, "lan_l2.tunnel.");
  lan_block_cache_->register_metrics(registry_, "lan_l2.block_cache.");
  lan_proxy_->register_metrics(registry_, "lan_l2.proxy.");
  if (tracer_) lan_proxy_->set_tracer(tracer_.get());
}

void Testbed::resolve_shared_node_config_() {
  node_cfg_.local.buffer_cache_bytes = opt_.local_page_cache_bytes;
  if (opt_.scenario == Scenario::kLocal) return;

  node_cfg_.client.buffer_cache_bytes = opt_.client_page_cache_bytes;
  if (opt_.scenario == Scenario::kPlainNfsWan) {
    node_cfg_.client.rsize = node_cfg_.client.wsize = opt_.net.plain_rsize;
    return;
  }
  node_cfg_.client.rsize = node_cfg_.client.wsize = opt_.net.gvfs_rsize;

  node_cfg_.cached = opt_.scenario == Scenario::kWanCached;
  bool wan = opt_.scenario != Scenario::kLan;

  // Client proxy's upstream: either straight to the server-side proxy, or
  // through the LAN second-level cache proxy (then to the origin).
  node_cfg_.upstream = server_proxy_.get();
  node_cfg_.tun_up = wan ? wan_up_.get() : lan_up_.get();
  node_cfg_.tun_down = wan ? wan_down_.get() : lan_down_.get();
  node_cfg_.tun_cipher = wan ? opt_.net.wan_cipher : opt_.net.lan_cipher;
  node_cfg_.via_lan = node_cfg_.cached && !opt_.origin_cluster &&
                      (opt_.second_level_lan_cache || opt_.shared_l2_cache);
  if (node_cfg_.via_lan) {
    node_cfg_.upstream = lan_proxy_.get();
    node_cfg_.tun_up = lan_up_.get();
    node_cfg_.tun_down = lan_down_.get();
    node_cfg_.tun_cipher = opt_.net.lan_cipher;
  }

  // Client end of the compressed WAN hop: the nodes' tunnels cross the WAN
  // directly (no LAN tier), so the origin-side CompressHandler fronts the
  // server proxy for every node tunnel built below.
  if (opt_.wire_compression && !opt_.origin_cluster && !node_cfg_.via_lan) {
    server_compress_ = std::make_unique<rpc::CompressHandler>(
        *node_cfg_.upstream, wan_compress_cfg(opt_.net, image_cpu_.get()));
    server_compress_->register_metrics(registry_, "server_compress.");
    node_cfg_.upstream = server_compress_.get();
  }

  node_cfg_.proxy.fetch_block = static_cast<u32>(opt_.block_cache.block_size);
  node_cfg_.proxy.enable_meta = node_cfg_.cached && opt_.enable_meta;
  if (node_cfg_.cached) node_cfg_.proxy.prefetch_depth = opt_.prefetch_depth;
  node_cfg_.proxy.degraded_mode = opt_.degraded_proxy;
  node_cfg_.proxy.async_writeback = opt_.enable_async_writeback;
  node_cfg_.proxy.enable_leases = opt_.enable_leases;
  node_cfg_.proxy.dedup_blocks = node_cfg_.cached && opt_.dedup_blocks;
  node_cfg_.proxy.wire_compression = opt_.wire_compression;

  if (node_cfg_.cached) {
    node_cfg_.block_cache = opt_.block_cache;
    node_cfg_.block_cache.policy = opt_.write_policy;
    node_cfg_.block_cache.dedup_blocks = opt_.dedup_blocks;
    node_cfg_.endpoint =
        node_cfg_.via_lan
            ? static_cast<meta::RemoteFileEndpoint*>(lan_endpoint_.get())
            : server_endpoint_.get();
    node_cfg_.scp_link = node_cfg_.via_lan ? lan_down_.get() : wan_down_.get();
  }
}

std::unique_ptr<Testbed::Node> Testbed::build_node_(int index) {
  auto node = std::make_unique<Node>();
  const bool metrics_on = opt_.per_node_metrics;
  std::string tag = "node" + std::to_string(index);
  node->fs = std::make_unique<vfs::MemFs>();
  node->fs->set_clock([this] { return kernel_.now(); });
  node->disk = std::make_unique<sim::DiskModel>(kernel_, tag + "-disk", opt_.net.disk);
  node->local =
      std::make_unique<vfs::LocalFsSession>(*node->fs, *node->disk, node_cfg_.local);

  if (metrics_on) node->disk->register_metrics(registry_, tag + ".disk.");

  if (opt_.scenario == Scenario::kLocal) {
    node->image_view =
        std::make_unique<vfs::PrefixSession>(*node->local, opt_.export_path);
    return node;
  }

  rpc::Credential cred;
  cred.uid = 1000 + static_cast<u32>(index);
  cred.gid = 1000;
  cred.machine = tag;

  if (opt_.scenario == Scenario::kPlainNfsWan) {
    node->direct = std::make_unique<rpc::LinkChannel>(*server(), wan_up_.get(),
                                                      wan_down_.get(),
                                                      30 * kMicrosecond);
    rpc::RpcChannel* chan = node->direct.get();
    if (faults_) {
      node->faulty = std::make_unique<rpc::FaultyChannel>(*chan, *faults_);
      node->retry =
          std::make_unique<rpc::RetryChannel>(*node->faulty, kernel_, opt_.retry);
      chan = node->retry.get();
      if (metrics_on) node->retry->register_metrics(registry_, tag + ".retry.");
      if (tracer_) {
        node->faulty->set_tracer(tracer_.get());
        node->retry->set_tracer(tracer_.get());
      }
    }
    node->client = std::make_unique<nfs::NfsClient>(*chan, cred, node_cfg_.client);
    if (metrics_on) node->client->register_metrics(registry_, tag + ".client.");
    if (tracer_) node->client->set_tracer(tracer_.get());
    return node;
  }

  rpc::RpcChannel* upstream_chan = nullptr;
  if (opt_.origin_cluster) {
    // One full channel stack per origin (tunnel -> faults -> retry), all
    // sharing the same WAN/LAN pipes, federated by the node's ShardRouter.
    // The FaultyChannel carries the origin id so crash windows scoped to one
    // replica (sim::FaultWindow::server) hit only its stack.
    std::vector<rpc::RpcChannel*> chans;
    chans.reserve(origins_.size());
    for (std::size_t j = 0; j < origins_.size(); ++j) {
      std::string otag = tag + ".origin" + std::to_string(j);
      rpc::RpcHandler& origin_handler =
          origins_[j]->compress
              ? static_cast<rpc::RpcHandler&>(*origins_[j]->compress)
              : static_cast<rpc::RpcHandler&>(*origins_[j]->proxy);
      auto tun = std::make_unique<ssh::SshTunnel>(origin_handler,
                                                  node_cfg_.tun_up,
                                                  node_cfg_.tun_down,
                                                  node_cfg_.tun_cipher);
      rpc::RpcChannel* chan = tun.get();
      if (metrics_on) tun->register_metrics(registry_, otag + ".tunnel.");
      node->origin_tunnels.push_back(std::move(tun));
      if (faults_) {
        auto fy = std::make_unique<rpc::FaultyChannel>(
            *chan, *faults_, static_cast<int>(j));
        auto rt = std::make_unique<rpc::RetryChannel>(*fy, kernel_, opt_.retry);
        chan = rt.get();
        if (metrics_on) rt->register_metrics(registry_, otag + ".retry.");
        if (tracer_) {
          fy->set_tracer(tracer_.get());
          rt->set_tracer(tracer_.get());
        }
        node->origin_faulty.push_back(std::move(fy));
        node->origin_retry.push_back(std::move(rt));
      }
      if (opt_.wire_compression) {
        auto cc = std::make_unique<rpc::CompressChannel>(
            *chan, wan_compress_cfg(opt_.net, nullptr));
        chan = cc.get();
        if (metrics_on) cc->register_metrics(registry_, otag + ".compress.");
        node->origin_compress.push_back(std::move(cc));
      }
      chans.push_back(chan);
    }
    proxy::ShardRouterConfig rcfg = opt_.shard_router;
    rcfg.name = tag + "-router";
    rcfg.replicas = opt_.origin_replicas;
    node->router = std::make_unique<proxy::ShardRouter>(std::move(chans), rcfg);
    if (metrics_on) node->router->register_metrics(registry_, tag + ".router.");
    upstream_chan = node->router.get();
  } else {
    node->tunnel = std::make_unique<ssh::SshTunnel>(
        *node_cfg_.upstream, node_cfg_.tun_up, node_cfg_.tun_down,
        node_cfg_.tun_cipher);

    // The proxy's upstream channel: with fault injection enabled the tunnel
    // is wrapped in the injector (drops/partitions/crashes) and the proxy
    // talks through the retransmission layer, NFS-client-style.
    upstream_chan = node->tunnel.get();
    if (metrics_on) node->tunnel->register_metrics(registry_, tag + ".tunnel.");
    if (faults_) {
      node->faulty = std::make_unique<rpc::FaultyChannel>(*node->tunnel, *faults_);
      node->retry =
          std::make_unique<rpc::RetryChannel>(*node->faulty, kernel_, opt_.retry);
      upstream_chan = node->retry.get();
      if (metrics_on) node->retry->register_metrics(registry_, tag + ".retry.");
      if (tracer_) {
        node->faulty->set_tracer(tracer_.get());
        node->retry->set_tracer(tracer_.get());
      }
    }
    // Client end of the compressed WAN hop (outermost, so retransmitted
    // calls resend the already-wrapped message without re-paying gzip CPU).
    // With a LAN tier the nodes' tunnels stay uncompressed — the pair
    // straddles the L2 -> origin tunnel instead.
    if (opt_.wire_compression && !node_cfg_.via_lan) {
      node->compress = std::make_unique<rpc::CompressChannel>(
          *upstream_chan, wan_compress_cfg(opt_.net, nullptr));
      upstream_chan = node->compress.get();
      if (metrics_on) node->compress->register_metrics(registry_, tag + ".compress.");
    }
  }

  proxy::ProxyConfig pcfg = node_cfg_.proxy;
  pcfg.name = tag + "-proxy";
  if (opt_.enable_leases) pcfg.lease_client_id = static_cast<u64>(index) + 1;
  node->client_proxy = std::make_unique<proxy::GvfsProxy>(pcfg, *upstream_chan);

  if (metrics_on) node->client_proxy->register_metrics(registry_, tag + ".proxy.");
  if (tracer_) node->client_proxy->set_tracer(tracer_.get());

  if (opt_.enable_leases) {
    // Reverse callback stacks: recalls cross the same shared links in the
    // server->client direction (tunnel handler = this node's proxy, link
    // pair swapped) and pick up the same fault/retry semantics as the
    // forward path. Recall retransmission is bounded — a partitioned holder
    // must lapse at its lease expiry, not pin a server recall fiber forever.
    rpc::RetryConfig cbretry = opt_.retry;
    if (cbretry.max_retransmits == 0) cbretry.max_retransmits = 4;
    const u64 client_id = static_cast<u64>(index) + 1;
    const std::size_t stacks = opt_.origin_cluster ? origins_.size() : 1;
    for (std::size_t j = 0; j < stacks; ++j) {
      auto tun = std::make_unique<ssh::SshTunnel>(
          *node->client_proxy, node_cfg_.tun_down, node_cfg_.tun_up,
          node_cfg_.tun_cipher);
      rpc::RpcChannel* chan = tun.get();
      node->cb_tunnels.push_back(std::move(tun));
      if (faults_) {
        auto fy = std::make_unique<rpc::FaultyChannel>(*chan, *faults_,
                                                       static_cast<int>(j));
        auto rt = std::make_unique<rpc::RetryChannel>(*fy, kernel_, cbretry);
        chan = rt.get();
        node->cb_faulty.push_back(std::move(fy));
        node->cb_retry.push_back(std::move(rt));
      }
      if (opt_.origin_cluster) {
        origins_[j]->server->set_lease_callback(client_id, chan);
      } else if (server_) {
        server_->set_lease_callback(client_id, chan);
      }
    }
  }

  if (node_cfg_.cached) {
    node->block_cache =
        std::make_unique<cache::ProxyDiskCache>(*node->disk, node_cfg_.block_cache);
    node->client_proxy->attach_block_cache(*node->block_cache);

    node->file_cache = std::make_unique<cache::FileCache>(
        *node->disk, cache::FileCacheConfig{opt_.file_cache_bytes});
    node->scp = std::make_unique<ssh::Scp>(*node_cfg_.scp_link, node_cfg_.tun_cipher,
                                           opt_.file_channel_streams);
    node->file_channel = std::make_unique<meta::FileChannelClient>(
        *node_cfg_.endpoint, *node->scp, *node->file_cache, nullptr, opt_.net.gzip);
    node->client_proxy->attach_file_channel(*node->file_channel, *node->file_cache);
    if (metrics_on) {
      node->block_cache->register_metrics(registry_, tag + ".block_cache.");
      node->file_cache->register_metrics(registry_, tag + ".file_cache.");
      node->scp->register_metrics(registry_, tag + ".scp.");
      node->file_channel->register_metrics(registry_, tag + ".file_channel.");
    }
  }

  node->loopback = std::make_unique<rpc::LinkChannel>(*node->client_proxy, nullptr,
                                                      nullptr, 15 * kMicrosecond);
  node->client = std::make_unique<nfs::NfsClient>(*node->loopback, cred,
                                                  node_cfg_.client);
  if (metrics_on) node->client->register_metrics(registry_, tag + ".client.");
  if (tracer_) node->client->set_tracer(tracer_.get());
  return node;
}

vfs::MemFs& Testbed::image_fs() {
  if (opt_.scenario == Scenario::kLocal) return *nodes_.at(0)->fs;
  return opt_.origin_cluster ? *origins_.at(0)->fs : *image_fs_;
}

nfs::NfsServer* Testbed::server() {
  return opt_.origin_cluster ? origins_.at(0)->server.get() : server_.get();
}

u32 Testbed::origin_count() const {
  if (opt_.origin_cluster) return static_cast<u32>(origins_.size());
  return server_ ? 1 : 0;
}

nfs::NfsServer* Testbed::origin_server(int j) {
  if (!opt_.origin_cluster) return server_.get();
  return origins_.at(static_cast<std::size_t>(j))->server.get();
}

vfs::MemFs& Testbed::origin_fs(int j) {
  if (!opt_.origin_cluster) return *image_fs_;
  return *origins_.at(static_cast<std::size_t>(j))->fs;
}

proxy::ShardRouter* Testbed::shard_router(int node) {
  return nodes_.at(static_cast<std::size_t>(node))->router.get();
}

std::string Testbed::image_dir() const { return opt_.export_path; }

u32 Testbed::meta_fp_block_size_() const {
  return opt_.dedup_blocks ? static_cast<u32>(opt_.block_cache.block_size) : 0;
}

Result<vm::VmImagePaths> Testbed::install_image(const vm::VmImageSpec& spec) {
  if (opt_.origin_cluster && opt_.scenario != Scenario::kLocal) {
    // Every origin gets the identical install, in identical order, so the
    // FileId spaces stay aligned across replicas.
    for (auto& o : origins_) {
      GVFS_ASSIGN_OR_RETURN(vm::VmImagePaths sp,
                            vm::install_image(*o->fs, image_dir(), spec));
      if (opt_.generate_image_meta) {
        GVFS_RETURN_IF_ERROR(vm::generate_vmss_metadata(
            *o->fs, sp, 8_KiB, true, meta_fp_block_size_(),
            opt_.block_cache.dedup_seed));
      }
    }
    return vm::VmImagePaths{"", spec.name};
  }
  // Install at the server-side export path...
  GVFS_ASSIGN_OR_RETURN(vm::VmImagePaths server_paths,
                        vm::install_image(image_fs(), image_dir(), spec));
  if (opt_.scenario != Scenario::kLocal && opt_.generate_image_meta) {
    GVFS_RETURN_IF_ERROR(vm::generate_vmss_metadata(
        image_fs(), server_paths, 8_KiB, true, meta_fp_block_size_(),
        opt_.block_cache.dedup_seed));
  }
  // ...but hand back mount-relative paths: every image_session() (NFS client
  // or the kLocal prefix view) is rooted at the export directory.
  return vm::VmImagePaths{"", spec.name};
}

Status Testbed::put_image_file(const std::string& rel_path,
                               const blob::BlobRef& data) {
  if (opt_.origin_cluster && opt_.scenario != Scenario::kLocal) {
    for (auto& o : origins_) {
      GVFS_RETURN_IF_ERROR(
          o->fs->put_file(opt_.export_path + rel_path, data).status());
    }
    return Status::ok();
  }
  return image_fs().put_file(opt_.export_path + rel_path, data).status();
}

Status Testbed::mount(sim::Process& p, int node) {
  Node& n = *nodes_.at(static_cast<std::size_t>(node));
  if (opt_.scenario == Scenario::kLocal) return Status::ok();
  if (n.client->mounted()) return Status::ok();
  return n.client->mount(p, opt_.export_path);
}

vfs::FsSession& Testbed::image_session(int node) {
  Node& n = *nodes_.at(static_cast<std::size_t>(node));
  if (opt_.scenario == Scenario::kLocal) return *n.image_view;
  return *n.client;
}

vfs::LocalFsSession& Testbed::local_session(int node) {
  return *nodes_.at(static_cast<std::size_t>(node))->local;
}

Status Testbed::signal_write_back(sim::Process& p, int node) {
  // gvfs-lint: allow(yield-stale-ref) nodes_ is append-only during setup and each Node is heap-owned (unique_ptr), never erased mid-run
  Node& n = *nodes_.at(static_cast<std::size_t>(node));
  GVFS_RETURN_IF_ERROR(n.client->flush(p));
  if (n.client_proxy) return n.client_proxy->signal_write_back(p);
  return Status::ok();
}

Status Testbed::signal_flush(sim::Process& p, int node) {
  // gvfs-lint: allow(yield-stale-ref) nodes_ is append-only during setup and each Node is heap-owned (unique_ptr), never erased mid-run
  Node& n = *nodes_.at(static_cast<std::size_t>(node));
  GVFS_RETURN_IF_ERROR(n.client->flush(p));
  if (n.client_proxy) return n.client_proxy->signal_flush(p);
  return Status::ok();
}

void Testbed::drop_all_caches() {
  for (auto& n : nodes_) {
    if (n->client) n->client->drop_caches();
    if (n->client_proxy) n->client_proxy->drop_soft_state();
    if (n->block_cache) n->block_cache->invalidate_all();
    if (n->file_cache) n->file_cache->invalidate_all();
    n->local->drop_caches();
  }
  if (server_) server_->drop_caches();
  if (server_proxy_) server_proxy_->drop_soft_state();
  for (auto& o : origins_) {
    o->server->drop_caches();
    o->proxy->drop_soft_state();
  }
  if (lan_proxy_) lan_proxy_->drop_soft_state();
  if (lan_block_cache_) lan_block_cache_->invalidate_all();
  if (lan_endpoint_) lan_endpoint_->invalidate_all();
}

Status Testbed::prewarm_lan_cache(sim::Process& p, const vm::VmImagePaths& image) {
  if (!lan_endpoint_) return err(ErrCode::kInval, "no LAN cache node in this scenario");
  // Image paths are mount-relative; resolve against the server export.
  GVFS_ASSIGN_OR_RETURN(vfs::FileId id,
                        image_fs().resolve(opt_.export_path + image.vmss()));
  return lan_endpoint_->prefetch(p, id);
}

Status Testbed::refresh_image_metadata(sim::Process& p, const vm::VmImagePaths& image) {
  if (opt_.scenario == Scenario::kLocal) return Status::ok();
  vm::VmImagePaths server_paths{opt_.export_path, image.name};
  // The scan streams the state file off the server disk (zero-map pass).
  GVFS_ASSIGN_OR_RETURN(blob::BlobRef vmss, image_fs().get_file(server_paths.vmss()));
  sim::DiskModel& disk =
      opt_.origin_cluster ? *origins_.at(0)->disk : *image_disk_;
  disk.access(p, vmss->size(), sim::Locality::kSequential);
  if (opt_.origin_cluster) {
    // Regenerate on every origin so the meta stays replica-identical.
    for (auto& o : origins_) {
      GVFS_RETURN_IF_ERROR(vm::generate_vmss_metadata(
          *o->fs, server_paths, 8_KiB, true, meta_fp_block_size_(),
          opt_.block_cache.dedup_seed));
    }
    return Status::ok();
  }
  return vm::generate_vmss_metadata(image_fs(), server_paths, 8_KiB, true,
                                    meta_fp_block_size_(),
                                    opt_.block_cache.dedup_seed);
}

nfs::NfsClient* Testbed::nfs_client(int node) {
  return nodes_.at(static_cast<std::size_t>(node))->client.get();
}

proxy::GvfsProxy* Testbed::client_proxy(int node) {
  return nodes_.at(static_cast<std::size_t>(node))->client_proxy.get();
}

cache::ProxyDiskCache* Testbed::block_cache(int node) {
  return nodes_.at(static_cast<std::size_t>(node))->block_cache.get();
}

cache::FileCache* Testbed::file_cache(int node) {
  return nodes_.at(static_cast<std::size_t>(node))->file_cache.get();
}

rpc::RetryChannel* Testbed::retry_channel(int node) {
  return nodes_.at(static_cast<std::size_t>(node))->retry.get();
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

double rate(u64 hits, u64 misses) {
  u64 total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

std::string Testbed::metrics_json() const {
  metrics::Registry::Snapshot snap = registry_.snapshot();

  // Derived figures the paper's evaluation reads directly.
  u64 retransmits = 0;
  u64 timeouts = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = *nodes_[i];
    if (n.retry) {
      retransmits += n.retry->retransmits();
      timeouts += n.retry->timeouts();
    }
    for (const auto& rt : n.origin_retry) {
      retransmits += rt->retransmits();
      timeouts += rt->timeouts();
    }
    if (!opt_.per_node_metrics) continue;
    std::string tag = "node" + std::to_string(i);
    if (n.block_cache) {
      snap.emplace_back(tag + ".block_cache.hit_rate",
                        fmt_double(rate(n.block_cache->hits(), n.block_cache->misses())));
    }
    if (n.file_cache) {
      snap.emplace_back(tag + ".file_cache.hit_rate",
                        fmt_double(rate(n.file_cache->hits(), n.file_cache->misses())));
    }
    if (n.client_proxy) {
      snap.emplace_back(tag + ".proxy.outage_seconds",
                        fmt_double(to_seconds(n.client_proxy->outage_time())));
      snap.emplace_back(
          tag + ".proxy.last_recovery_seconds",
          fmt_double(to_seconds(n.client_proxy->last_recovery_time())));
    }
  }
  snap.emplace_back("derived.total_retransmits", std::to_string(retransmits));
  snap.emplace_back("derived.total_timeouts", std::to_string(timeouts));
  std::sort(snap.begin(), snap.end());
  return metrics::Registry::render_json(snap);
}

std::string Testbed::trace_json() const {
  return tracer_ ? tracer_->to_json() : "[]";
}

Status Testbed::dump_trace_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return err(ErrCode::kInternal, "cannot open trace file");
  std::string j = trace_json();
  std::fwrite(j.data(), 1, j.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return Status::ok();
}

}  // namespace gvfs::core
