// NFSv3-style protocol messages (RFC 1813 subset) with XDR codecs and
// analytic wire sizes. Every procedure used by the paper's workloads is
// modeled; argument/result structs derive rpc::Message so they flow through
// channels, proxies and tunnels uniformly.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blob/blob.h"
#include "common/hash.h"
#include "common/status.h"
#include "rpc/rpc.h"
#include "vfs/vfs.h"
#include "xdr/xdr.h"

namespace gvfs::nfs {

// Procedure numbers (RFC 1813 §3).
enum class Proc : u32 {
  kNull = 0,
  kGetattr = 1,
  kSetattr = 2,
  kLookup = 3,
  kAccess = 4,
  kReadlink = 5,
  kRead = 6,
  kWrite = 7,
  kCreate = 8,
  kMkdir = 9,
  kSymlink = 10,
  kRemove = 12,
  kRmdir = 13,
  kRename = 14,
  kLink = 15,
  kReaddir = 16,
  kReaddirplus = 17,
  kFsstat = 18,
  kFsinfo = 19,
  kPathconf = 20,
  kCommit = 21,
  // GVFS lease extension (DESIGN.md §5.10): delegation-style per-file leases
  // in the spirit of NFSv4 delegations, carried as extra procedures on the
  // v3 program. Plain v3 clients never issue them; the server enforces
  // leases only between lease-aware proxies.
  kLeaseAcquire = 22,
  kLeaseRelease = 23,
};

// NFSv3 status codes ride the same numeric space as ErrCode (by design).
using NfsStat = ErrCode;

// Wire-procedure name (trace spans, diagnostics).
constexpr const char* proc_name(Proc p) {
  switch (p) {
    case Proc::kNull: return "NULL";
    case Proc::kGetattr: return "GETATTR";
    case Proc::kSetattr: return "SETATTR";
    case Proc::kLookup: return "LOOKUP";
    case Proc::kAccess: return "ACCESS";
    case Proc::kReadlink: return "READLINK";
    case Proc::kRead: return "READ";
    case Proc::kWrite: return "WRITE";
    case Proc::kCreate: return "CREATE";
    case Proc::kMkdir: return "MKDIR";
    case Proc::kSymlink: return "SYMLINK";
    case Proc::kRemove: return "REMOVE";
    case Proc::kRmdir: return "RMDIR";
    case Proc::kRename: return "RENAME";
    case Proc::kLink: return "LINK";
    case Proc::kReaddir: return "READDIR";
    case Proc::kReaddirplus: return "READDIRPLUS";
    case Proc::kFsstat: return "FSSTAT";
    case Proc::kFsinfo: return "FSINFO";
    case Proc::kPathconf: return "PATHCONF";
    case Proc::kCommit: return "COMMIT";
    case Proc::kLeaseAcquire: return "LEASE_ACQUIRE";
    case Proc::kLeaseRelease: return "LEASE_RELEASE";
  }
  return "?";
}

// Protocol hard limit on READ/WRITE transfer size (§3.2.1: "up to the NFS
// protocol limit of 32KB").
constexpr u32 kMaxBlockSize = 32768;

enum class StableHow : u32 { kUnstable = 0, kDataSync = 1, kFileSync = 2 };

// --------------------------------------------------------------------------
// File handle: fixed 16-byte payload (fsid + fileid) carried as variable
// opaque on the wire, as real servers do.
struct Fh {
  u64 fsid = 0;
  u64 fileid = 0;

  [[nodiscard]] bool valid() const { return fileid != 0; }
  [[nodiscard]] u64 key() const { return hash_combine(fsid, fileid); }
  bool operator==(const Fh& o) const { return fsid == o.fsid && fileid == o.fileid; }

  static constexpr u64 wire_size() { return xdr::size_opaque(16); }
  void encode(xdr::XdrEncoder& enc) const;
  static Result<Fh> decode(xdr::XdrDecoder& dec);
};

struct FhHash {
  std::size_t operator()(const Fh& fh) const { return static_cast<std::size_t>(fh.key()); }
};

// fattr3 (84 bytes on the wire).
struct Fattr {
  vfs::Attr a;

  static constexpr u64 wire_size() { return 84; }
  void encode(xdr::XdrEncoder& enc) const;
  static Result<Fattr> decode(xdr::XdrDecoder& dec);
};

// post_op_attr: bool + optional fattr3.
struct PostOpAttr {
  std::optional<vfs::Attr> attr;

  [[nodiscard]] u64 wire_size() const {
    return xdr::size_bool() + (attr ? Fattr::wire_size() : 0);
  }
  void encode(xdr::XdrEncoder& enc) const;
  static Result<PostOpAttr> decode(xdr::XdrDecoder& dec);
};

// sattr3.
struct Sattr {
  vfs::SetAttr sa;

  [[nodiscard]] u64 wire_size() const;
  void encode(xdr::XdrEncoder& enc) const;
  static Result<Sattr> decode(xdr::XdrDecoder& dec);
};

// --------------------------------------------------------------------------
// Generic bodies.

// Void body (NULL proc, and a placeholder for errors).
struct VoidMsg final : rpc::Message {
  [[nodiscard]] u64 wire_size() const override { return 0; }
  void encode(xdr::XdrEncoder&) const override {}
};

// Every NFS result starts with a status word; failed results carry only
// (status + post-op attrs), which we model by zeroing the optional parts.

struct GetattrArgs final : rpc::Message {
  Fh fh;
  [[nodiscard]] u64 wire_size() const override { return Fh::wire_size(); }
  void encode(xdr::XdrEncoder& enc) const override { fh.encode(enc); }
  static Result<GetattrArgs> decode(xdr::XdrDecoder& dec);
};

struct GetattrRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  Fattr attr;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + (status == NfsStat::kOk ? Fattr::wire_size() : 0);
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<GetattrRes> decode(xdr::XdrDecoder& dec);
};

struct SetattrArgs final : rpc::Message {
  Fh fh;
  Sattr sattr;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + sattr.wire_size() + xdr::size_bool();  // + guard
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<SetattrArgs> decode(xdr::XdrDecoder& dec);
};

struct SetattrRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + attr.wire_size();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<SetattrRes> decode(xdr::XdrDecoder& dec);
};

struct LookupArgs final : rpc::Message {
  Fh dir;
  std::string name;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_string(name.size());
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LookupArgs> decode(xdr::XdrDecoder& dec);
};

struct LookupRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  Fh fh;
  PostOpAttr obj_attr;
  PostOpAttr dir_attr;
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32() + dir_attr.wire_size();
    if (status == NfsStat::kOk) n += Fh::wire_size() + obj_attr.wire_size();
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LookupRes> decode(xdr::XdrDecoder& dec);
};

struct AccessArgs final : rpc::Message {
  Fh fh;
  u32 access = 0;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<AccessArgs> decode(xdr::XdrDecoder& dec);
};

struct AccessRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  u32 access = 0;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + attr.wire_size() +
           (status == NfsStat::kOk ? xdr::size_u32() : 0);
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<AccessRes> decode(xdr::XdrDecoder& dec);
};

struct ReadlinkArgs final : rpc::Message {
  Fh fh;
  [[nodiscard]] u64 wire_size() const override { return Fh::wire_size(); }
  void encode(xdr::XdrEncoder& enc) const override { fh.encode(enc); }
  static Result<ReadlinkArgs> decode(xdr::XdrDecoder& dec);
};

struct ReadlinkRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  std::string target;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + attr.wire_size() +
           (status == NfsStat::kOk ? xdr::size_string(target.size()) : 0);
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<ReadlinkRes> decode(xdr::XdrDecoder& dec);
};

struct ReadArgs final : rpc::Message {
  Fh fh;
  u64 offset = 0;
  u32 count = 0;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u64() + xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<ReadArgs> decode(xdr::XdrDecoder& dec);
};

struct ReadRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  u32 count = 0;
  bool eof = false;
  blob::BlobRef data;  // lazy payload; count == data->size()
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32() + attr.wire_size();
    if (status == NfsStat::kOk) {
      n += xdr::size_u32() + xdr::size_bool() + xdr::size_opaque(count);
    }
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<ReadRes> decode(xdr::XdrDecoder& dec);
  [[nodiscard]] const blob::Blob* bulk_payload() const override {
    return status == NfsStat::kOk && count > 0 ? data.get() : nullptr;
  }
};

struct WriteArgs final : rpc::Message {
  Fh fh;
  u64 offset = 0;
  u32 count = 0;
  StableHow stable = StableHow::kUnstable;
  blob::BlobRef data;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u64() + xdr::size_u32() + xdr::size_u32() +
           xdr::size_opaque(count);
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<WriteArgs> decode(xdr::XdrDecoder& dec);
  [[nodiscard]] const blob::Blob* bulk_payload() const override {
    return count > 0 ? data.get() : nullptr;
  }
};

struct WriteRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  u32 count = 0;
  StableHow committed = StableHow::kFileSync;
  u64 verifier = 0;
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32() + attr.wire_size();
    if (status == NfsStat::kOk) {
      n += xdr::size_u32() + xdr::size_u32() + xdr::size_u64();
    }
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<WriteRes> decode(xdr::XdrDecoder& dec);
};

struct CreateArgs final : rpc::Message {
  Fh dir;
  std::string name;
  Sattr sattr;
  [[nodiscard]] u64 wire_size() const override {
    // + createmode word
    return Fh::wire_size() + xdr::size_string(name.size()) + xdr::size_u32() +
           sattr.wire_size();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<CreateArgs> decode(xdr::XdrDecoder& dec);
};

struct CreateRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  Fh fh;
  PostOpAttr attr;
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32();
    if (status == NfsStat::kOk) {
      n += xdr::size_bool() + Fh::wire_size() + attr.wire_size();
    }
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<CreateRes> decode(xdr::XdrDecoder& dec);
};

struct MkdirArgs final : rpc::Message {
  Fh dir;
  std::string name;
  Sattr sattr;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_string(name.size()) + sattr.wire_size();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<MkdirArgs> decode(xdr::XdrDecoder& dec);
};

using MkdirRes = CreateRes;

struct SymlinkArgs final : rpc::Message {
  Fh dir;
  std::string name;
  std::string target;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_string(name.size()) +
           xdr::size_string(target.size());
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<SymlinkArgs> decode(xdr::XdrDecoder& dec);
};

using SymlinkRes = CreateRes;

struct RemoveArgs final : rpc::Message {
  Fh dir;
  std::string name;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_string(name.size());
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<RemoveArgs> decode(xdr::XdrDecoder& dec);
};

struct RemoveRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr dir_attr;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + dir_attr.wire_size();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<RemoveRes> decode(xdr::XdrDecoder& dec);
};

struct RenameArgs final : rpc::Message {
  Fh from_dir;
  std::string from_name;
  Fh to_dir;
  std::string to_name;
  [[nodiscard]] u64 wire_size() const override {
    return 2 * Fh::wire_size() + xdr::size_string(from_name.size()) +
           xdr::size_string(to_name.size());
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<RenameArgs> decode(xdr::XdrDecoder& dec);
};

using RenameRes = RemoveRes;

struct LinkArgs final : rpc::Message {
  Fh file;
  Fh dir;
  std::string name;
  [[nodiscard]] u64 wire_size() const override {
    return 2 * Fh::wire_size() + xdr::size_string(name.size());
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LinkArgs> decode(xdr::XdrDecoder& dec);
};

struct LinkRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr file_attr;
  PostOpAttr dir_attr;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + file_attr.wire_size() + dir_attr.wire_size();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LinkRes> decode(xdr::XdrDecoder& dec);
};

struct ReaddirArgs final : rpc::Message {
  Fh dir;
  u64 cookie = 0;
  u32 max_count = 4096;
  [[nodiscard]] u64 wire_size() const override {
    // + 8-byte cookie verifier
    return Fh::wire_size() + xdr::size_u64() + 8 + xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<ReaddirArgs> decode(xdr::XdrDecoder& dec);
};

struct ReaddirRes final : rpc::Message {
  struct Entry {
    u64 fileid = 0;
    std::string name;
    u64 cookie = 0;
  };
  NfsStat status = NfsStat::kOk;
  PostOpAttr dir_attr;
  std::vector<Entry> entries;
  bool eof = true;
  [[nodiscard]] u64 wire_size() const override;
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<ReaddirRes> decode(xdr::XdrDecoder& dec);
};

// READDIRPLUS (proc 17): directory entries with handles and attributes, so
// one round trip primes the client's dentry and attribute caches.
struct ReaddirplusArgs final : rpc::Message {
  Fh dir;
  u64 cookie = 0;
  u32 dircount = 4096;
  u32 maxcount = 32768;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u64() + 8 + 2 * xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<ReaddirplusArgs> decode(xdr::XdrDecoder& dec);
};

struct ReaddirplusRes final : rpc::Message {
  struct Entry {
    u64 fileid = 0;
    std::string name;
    u64 cookie = 0;
    PostOpAttr attr;
    Fh fh;
  };
  NfsStat status = NfsStat::kOk;
  PostOpAttr dir_attr;
  std::vector<Entry> entries;
  bool eof = true;
  [[nodiscard]] u64 wire_size() const override;
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<ReaddirplusRes> decode(xdr::XdrDecoder& dec);
};

struct PathconfRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  u32 linkmax = 32000;
  u32 name_max = 255;
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32() + attr.wire_size();
    if (status == NfsStat::kOk) n += 2 * xdr::size_u32() + 4 * xdr::size_bool();
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<PathconfRes> decode(xdr::XdrDecoder& dec);
};

struct FsstatRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  u64 total_bytes = 0;
  u64 free_bytes = 0;
  u64 total_files = 0;
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32() + attr.wire_size();
    if (status == NfsStat::kOk) n += 7 * xdr::size_u64() + xdr::size_u32();
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<FsstatRes> decode(xdr::XdrDecoder& dec);
};

struct FsinfoRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  u32 rtmax = kMaxBlockSize;
  u32 wtmax = kMaxBlockSize;
  u32 rtpref = kMaxBlockSize;
  u32 wtpref = kMaxBlockSize;
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32() + attr.wire_size();
    if (status == NfsStat::kOk) n += 12 * xdr::size_u32();
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<FsinfoRes> decode(xdr::XdrDecoder& dec);
};

struct CommitArgs final : rpc::Message {
  Fh fh;
  u64 offset = 0;
  u32 count = 0;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u64() + xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<CommitArgs> decode(xdr::XdrDecoder& dec);
};

struct CommitRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  PostOpAttr attr;
  u64 verifier = 0;
  [[nodiscard]] u64 wire_size() const override {
    u64 n = xdr::size_u32() + attr.wire_size();
    if (status == NfsStat::kOk) n += xdr::size_u64();
    return n;
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<CommitRes> decode(xdr::XdrDecoder& dec);
};

// --------------------------------------------------------------------------
// GVFS lease extension (DESIGN.md §5.10).
//
// LEASE_ACQUIRE / LEASE_RELEASE ride the NFS program (procs 22/23); the
// server-to-proxy recall travels the dedicated callback program below, back
// through the node's decorated channel stack (tunnel/fault/retry in
// reverse), so recalls are subject to the same loss and retransmission
// semantics as forward traffic.

enum class LeaseMode : u32 { kRead = 0, kWrite = 1 };

constexpr const char* lease_mode_name(LeaseMode m) {
  return m == LeaseMode::kWrite ? "write" : "read";
}

// Callback program number: a private-use slot well clear of the IANA RPC
// programs we model (100003/100005).
constexpr u32 kLeaseCallbackProgram = 200103;
constexpr u32 kLeaseCallbackVersion = 1;

enum class CallbackProc : u32 { kNull = 0, kRecall = 1 };

struct LeaseArgs final : rpc::Message {
  Fh fh;
  u64 client_id = 0;  // stable per-proxy identity (testbed: node index + 1)
  LeaseMode mode = LeaseMode::kRead;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u64() + xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LeaseArgs> decode(xdr::XdrDecoder& dec);
};

struct LeaseRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  // kOk + !granted means "conflict being recalled, retry later" — the
  // NFSv4 NFS4ERR_DELAY shape, so the server never blocks an nfsd thread
  // on a callback round trip.
  bool granted = false;
  SimTime expiry = 0;  // absolute virtual time the grant lapses
  u32 holders = 0;     // holders sharing the file after this grant
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + xdr::size_bool() + xdr::size_u64() + xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LeaseRes> decode(xdr::XdrDecoder& dec);
};

struct LeaseReleaseArgs final : rpc::Message {
  Fh fh;
  u64 client_id = 0;
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u64();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LeaseReleaseArgs> decode(xdr::XdrDecoder& dec);
};

struct LeaseReleaseRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  [[nodiscard]] u64 wire_size() const override { return xdr::size_u32(); }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<LeaseReleaseRes> decode(xdr::XdrDecoder& dec);
};

// Server -> proxy recall (callback program, proc kRecall).
struct RecallArgs final : rpc::Message {
  Fh fh;
  u64 client_id = 0;        // the holder being recalled
  LeaseMode contender = LeaseMode::kWrite;  // mode the new claimant wants
  [[nodiscard]] u64 wire_size() const override {
    return Fh::wire_size() + xdr::size_u64() + xdr::size_u32();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<RecallArgs> decode(xdr::XdrDecoder& dec);
};

struct RecallRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  bool flushed = false;  // the proxy had dirty state to push before replying
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + xdr::size_bool();
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<RecallRes> decode(xdr::XdrDecoder& dec);
};

// MOUNT program (RFC 1813 appendix): MNT returns the export's root handle.
enum class MountProc : u32 { kNull = 0, kMnt = 1, kUmnt = 3 };

struct MountArgs final : rpc::Message {
  std::string dirpath;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_string(dirpath.size());
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<MountArgs> decode(xdr::XdrDecoder& dec);
};

struct MountRes final : rpc::Message {
  NfsStat status = NfsStat::kOk;
  Fh root;
  [[nodiscard]] u64 wire_size() const override {
    return xdr::size_u32() + (status == NfsStat::kOk ? Fh::wire_size() : 0);
  }
  void encode(xdr::XdrEncoder& enc) const override;
  static Result<MountRes> decode(xdr::XdrDecoder& dec);
};

}  // namespace gvfs::nfs
