#include "nfs/nfs_types.h"

namespace gvfs::nfs {

namespace {

void put_time(xdr::XdrEncoder& enc, SimTime t) {
  enc.put_u32(static_cast<u32>(t / kSecond));
  enc.put_u32(static_cast<u32>(t % kSecond));
}

SimTime get_time(xdr::XdrDecoder& dec) {
  u64 sec = dec.get_u32();
  u64 nsec = dec.get_u32();
  return static_cast<SimTime>(sec * kSecond + nsec);
}

void put_status(xdr::XdrEncoder& enc, NfsStat s) {
  enc.put_u32(static_cast<u32>(s));
}

NfsStat get_status(xdr::XdrDecoder& dec) {
  return static_cast<NfsStat>(dec.get_u32());
}

// Hand the payload blob to the encoder by reference; it is only read if the
// flat wire image is materialized (tests; the simulation transport never
// encodes on the hot path). Null data means `count` zero bytes, as before.
void put_payload(xdr::XdrEncoder& enc, const blob::BlobRef& data, u32 count) {
  enc.put_blob(data ? data : blob::zero_ref(count), 0, count);
}

}  // namespace

// ---------------------------------------------------------------------- Fh --

void Fh::encode(xdr::XdrEncoder& enc) const {
  // Opaque fhandle whose body is fsid||fileid, emitted directly (no nested
  // encoder, no intermediate buffer).
  enc.put_u32(16);
  enc.put_u64(fsid);
  enc.put_u64(fileid);
}

Result<Fh> Fh::decode(xdr::XdrDecoder& dec) {
  std::span<const u8> raw = dec.get_opaque_view();
  if (!dec.ok() || raw.size() != 16) return err(ErrCode::kBadXdr, "fhandle");
  xdr::XdrDecoder b(raw);
  Fh fh;
  fh.fsid = b.get_u64();
  fh.fileid = b.get_u64();
  return fh;
}

// ------------------------------------------------------------------- Fattr --

void Fattr::encode(xdr::XdrEncoder& enc) const {
  enc.put_u32(static_cast<u32>(a.type));
  enc.put_u32(a.mode);
  enc.put_u32(a.nlink);
  enc.put_u32(a.uid);
  enc.put_u32(a.gid);
  enc.put_u64(a.size);
  enc.put_u64(a.size);  // "used"
  enc.put_u64(0);       // rdev
  enc.put_u64(1);       // fsid
  enc.put_u64(a.fileid);
  put_time(enc, a.atime);
  put_time(enc, a.mtime);
  put_time(enc, a.ctime);
}

Result<Fattr> Fattr::decode(xdr::XdrDecoder& dec) {
  Fattr f;
  f.a.type = static_cast<vfs::FileType>(dec.get_u32());
  f.a.mode = dec.get_u32();
  f.a.nlink = dec.get_u32();
  f.a.uid = dec.get_u32();
  f.a.gid = dec.get_u32();
  f.a.size = dec.get_u64();
  dec.get_u64();  // used
  dec.get_u64();  // rdev
  dec.get_u64();  // fsid
  f.a.fileid = dec.get_u64();
  f.a.atime = get_time(dec);
  f.a.mtime = get_time(dec);
  f.a.ctime = get_time(dec);
  if (!dec.ok()) return err(ErrCode::kBadXdr, "fattr3");
  return f;
}

void PostOpAttr::encode(xdr::XdrEncoder& enc) const {
  enc.put_bool(attr.has_value());
  if (attr) Fattr{*attr}.encode(enc);
}

Result<PostOpAttr> PostOpAttr::decode(xdr::XdrDecoder& dec) {
  PostOpAttr p;
  if (dec.get_bool()) {
    GVFS_ASSIGN_OR_RETURN(Fattr f, Fattr::decode(dec));
    p.attr = f.a;
  }
  if (!dec.ok()) return err(ErrCode::kBadXdr, "post_op_attr");
  return p;
}

// ------------------------------------------------------------------- Sattr --

u64 Sattr::wire_size() const {
  u64 n = 0;
  n += xdr::size_bool() + (sa.set_mode ? xdr::size_u32() : 0);
  n += xdr::size_bool() + (sa.set_uid ? xdr::size_u32() : 0);
  n += xdr::size_bool() + (sa.set_gid ? xdr::size_u32() : 0);
  n += xdr::size_bool() + (sa.set_size ? xdr::size_u64() : 0);
  n += xdr::size_u32();  // atime: DONT_CHANGE
  n += xdr::size_u32() + (sa.set_mtime ? 8 : 0);
  return n;
}

void Sattr::encode(xdr::XdrEncoder& enc) const {
  enc.put_bool(sa.set_mode);
  if (sa.set_mode) enc.put_u32(sa.mode);
  enc.put_bool(sa.set_uid);
  if (sa.set_uid) enc.put_u32(sa.uid);
  enc.put_bool(sa.set_gid);
  if (sa.set_gid) enc.put_u32(sa.gid);
  enc.put_bool(sa.set_size);
  if (sa.set_size) enc.put_u64(sa.size);
  enc.put_u32(0);  // atime DONT_CHANGE
  enc.put_u32(sa.set_mtime ? 2 : 0);  // SET_TO_CLIENT_TIME
  if (sa.set_mtime) put_time(enc, sa.mtime);
}

Result<Sattr> Sattr::decode(xdr::XdrDecoder& dec) {
  Sattr s;
  s.sa.set_mode = dec.get_bool();
  if (s.sa.set_mode) s.sa.mode = dec.get_u32();
  s.sa.set_uid = dec.get_bool();
  if (s.sa.set_uid) s.sa.uid = dec.get_u32();
  s.sa.set_gid = dec.get_bool();
  if (s.sa.set_gid) s.sa.gid = dec.get_u32();
  s.sa.set_size = dec.get_bool();
  if (s.sa.set_size) s.sa.size = dec.get_u64();
  dec.get_u32();  // atime mode
  u32 mtime_mode = dec.get_u32();
  s.sa.set_mtime = mtime_mode == 2;
  if (s.sa.set_mtime) s.sa.mtime = get_time(dec);
  if (!dec.ok()) return err(ErrCode::kBadXdr, "sattr3");
  return s;
}

// --------------------------------------------------------------- Getattr ----

Result<GetattrArgs> GetattrArgs::decode(xdr::XdrDecoder& dec) {
  GetattrArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  return a;
}

void GetattrRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  if (status == NfsStat::kOk) attr.encode(enc);
}

Result<GetattrRes> GetattrRes::decode(xdr::XdrDecoder& dec) {
  GetattrRes r;
  r.status = get_status(dec);
  if (r.status == NfsStat::kOk) {
    GVFS_ASSIGN_OR_RETURN(r.attr, Fattr::decode(dec));
  }
  return r;
}

// --------------------------------------------------------------- Setattr ----

void SetattrArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  sattr.encode(enc);
  enc.put_bool(false);  // no guard
}

Result<SetattrArgs> SetattrArgs::decode(xdr::XdrDecoder& dec) {
  SetattrArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  GVFS_ASSIGN_OR_RETURN(a.sattr, Sattr::decode(dec));
  dec.get_bool();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "setattr args");
  return a;
}

void SetattrRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
}

Result<SetattrRes> SetattrRes::decode(xdr::XdrDecoder& dec) {
  SetattrRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  return r;
}

// ---------------------------------------------------------------- Lookup ----

void LookupArgs::encode(xdr::XdrEncoder& enc) const {
  dir.encode(enc);
  enc.put_string(name);
}

Result<LookupArgs> LookupArgs::decode(xdr::XdrDecoder& dec) {
  LookupArgs a;
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.name = dec.get_string();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "lookup args");
  return a;
}

void LookupRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  if (status == NfsStat::kOk) {
    fh.encode(enc);
    obj_attr.encode(enc);
  }
  dir_attr.encode(enc);
}

Result<LookupRes> LookupRes::decode(xdr::XdrDecoder& dec) {
  LookupRes r;
  r.status = get_status(dec);
  if (r.status == NfsStat::kOk) {
    GVFS_ASSIGN_OR_RETURN(r.fh, Fh::decode(dec));
    GVFS_ASSIGN_OR_RETURN(r.obj_attr, PostOpAttr::decode(dec));
  }
  GVFS_ASSIGN_OR_RETURN(r.dir_attr, PostOpAttr::decode(dec));
  return r;
}

// ---------------------------------------------------------------- Access ----

void AccessArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  enc.put_u32(access);
}

Result<AccessArgs> AccessArgs::decode(xdr::XdrDecoder& dec) {
  AccessArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  a.access = dec.get_u32();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "access args");
  return a;
}

void AccessRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) enc.put_u32(access);
}

Result<AccessRes> AccessRes::decode(xdr::XdrDecoder& dec) {
  AccessRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) r.access = dec.get_u32();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "access res");
  return r;
}

// -------------------------------------------------------------- Readlink ----

Result<ReadlinkArgs> ReadlinkArgs::decode(xdr::XdrDecoder& dec) {
  ReadlinkArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  return a;
}

void ReadlinkRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) enc.put_string(target);
}

Result<ReadlinkRes> ReadlinkRes::decode(xdr::XdrDecoder& dec) {
  ReadlinkRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) r.target = dec.get_string();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "readlink res");
  return r;
}

// ------------------------------------------------------------------ Read ----

void ReadArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  enc.put_u64(offset);
  enc.put_u32(count);
}

Result<ReadArgs> ReadArgs::decode(xdr::XdrDecoder& dec) {
  ReadArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  a.offset = dec.get_u64();
  a.count = dec.get_u32();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "read args");
  return a;
}

void ReadRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) {
    enc.put_u32(count);
    enc.put_bool(eof);
    put_payload(enc, data, count);
  }
}

Result<ReadRes> ReadRes::decode(xdr::XdrDecoder& dec) {
  ReadRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) {
    r.count = dec.get_u32();
    r.eof = dec.get_bool();
    r.data = dec.get_opaque_blob();
    if (!dec.ok() || r.data->size() != r.count)
      return err(ErrCode::kBadXdr, "read data");
  }
  return r;
}

// ----------------------------------------------------------------- Write ----

void WriteArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  enc.put_u64(offset);
  enc.put_u32(count);
  enc.put_u32(static_cast<u32>(stable));
  put_payload(enc, data, count);
}

Result<WriteArgs> WriteArgs::decode(xdr::XdrDecoder& dec) {
  WriteArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  a.offset = dec.get_u64();
  a.count = dec.get_u32();
  a.stable = static_cast<StableHow>(dec.get_u32());
  a.data = dec.get_opaque_blob();
  if (!dec.ok() || a.data->size() != a.count)
    return err(ErrCode::kBadXdr, "write data");
  return a;
}

void WriteRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) {
    enc.put_u32(count);
    enc.put_u32(static_cast<u32>(committed));
    enc.put_u64(verifier);
  }
}

Result<WriteRes> WriteRes::decode(xdr::XdrDecoder& dec) {
  WriteRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) {
    r.count = dec.get_u32();
    r.committed = static_cast<StableHow>(dec.get_u32());
    r.verifier = dec.get_u64();
  }
  if (!dec.ok()) return err(ErrCode::kBadXdr, "write res");
  return r;
}

// ---------------------------------------------------------------- Create ----

void CreateArgs::encode(xdr::XdrEncoder& enc) const {
  dir.encode(enc);
  enc.put_string(name);
  enc.put_u32(0);  // UNCHECKED
  sattr.encode(enc);
}

Result<CreateArgs> CreateArgs::decode(xdr::XdrDecoder& dec) {
  CreateArgs a;
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.name = dec.get_string();
  dec.get_u32();
  GVFS_ASSIGN_OR_RETURN(a.sattr, Sattr::decode(dec));
  if (!dec.ok()) return err(ErrCode::kBadXdr, "create args");
  return a;
}

void CreateRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  if (status == NfsStat::kOk) {
    enc.put_bool(true);
    fh.encode(enc);
    attr.encode(enc);
  }
}

Result<CreateRes> CreateRes::decode(xdr::XdrDecoder& dec) {
  CreateRes r;
  r.status = get_status(dec);
  if (r.status == NfsStat::kOk) {
    dec.get_bool();
    GVFS_ASSIGN_OR_RETURN(r.fh, Fh::decode(dec));
    GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  }
  return r;
}

// ----------------------------------------------------------------- Mkdir ----

void MkdirArgs::encode(xdr::XdrEncoder& enc) const {
  dir.encode(enc);
  enc.put_string(name);
  sattr.encode(enc);
}

Result<MkdirArgs> MkdirArgs::decode(xdr::XdrDecoder& dec) {
  MkdirArgs a;
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.name = dec.get_string();
  GVFS_ASSIGN_OR_RETURN(a.sattr, Sattr::decode(dec));
  if (!dec.ok()) return err(ErrCode::kBadXdr, "mkdir args");
  return a;
}

// --------------------------------------------------------------- Symlink ----

void SymlinkArgs::encode(xdr::XdrEncoder& enc) const {
  dir.encode(enc);
  enc.put_string(name);
  enc.put_string(target);
}

Result<SymlinkArgs> SymlinkArgs::decode(xdr::XdrDecoder& dec) {
  SymlinkArgs a;
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.name = dec.get_string();
  a.target = dec.get_string();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "symlink args");
  return a;
}

// ---------------------------------------------------------------- Remove ----

void RemoveArgs::encode(xdr::XdrEncoder& enc) const {
  dir.encode(enc);
  enc.put_string(name);
}

Result<RemoveArgs> RemoveArgs::decode(xdr::XdrDecoder& dec) {
  RemoveArgs a;
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.name = dec.get_string();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "remove args");
  return a;
}

void RemoveRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  dir_attr.encode(enc);
}

Result<RemoveRes> RemoveRes::decode(xdr::XdrDecoder& dec) {
  RemoveRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.dir_attr, PostOpAttr::decode(dec));
  return r;
}

// ---------------------------------------------------------------- Rename ----

void RenameArgs::encode(xdr::XdrEncoder& enc) const {
  from_dir.encode(enc);
  enc.put_string(from_name);
  to_dir.encode(enc);
  enc.put_string(to_name);
}

Result<RenameArgs> RenameArgs::decode(xdr::XdrDecoder& dec) {
  RenameArgs a;
  GVFS_ASSIGN_OR_RETURN(a.from_dir, Fh::decode(dec));
  a.from_name = dec.get_string();
  GVFS_ASSIGN_OR_RETURN(a.to_dir, Fh::decode(dec));
  a.to_name = dec.get_string();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "rename args");
  return a;
}

// ------------------------------------------------------------------ Link ----

void LinkArgs::encode(xdr::XdrEncoder& enc) const {
  file.encode(enc);
  dir.encode(enc);
  enc.put_string(name);
}

Result<LinkArgs> LinkArgs::decode(xdr::XdrDecoder& dec) {
  LinkArgs a;
  GVFS_ASSIGN_OR_RETURN(a.file, Fh::decode(dec));
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.name = dec.get_string();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "link args");
  return a;
}

void LinkRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  file_attr.encode(enc);
  dir_attr.encode(enc);
}

Result<LinkRes> LinkRes::decode(xdr::XdrDecoder& dec) {
  LinkRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.file_attr, PostOpAttr::decode(dec));
  GVFS_ASSIGN_OR_RETURN(r.dir_attr, PostOpAttr::decode(dec));
  return r;
}

// --------------------------------------------------------------- Readdir ----

void ReaddirArgs::encode(xdr::XdrEncoder& enc) const {
  dir.encode(enc);
  enc.put_u64(cookie);
  enc.put_u64(0);  // cookie verifier
  enc.put_u32(max_count);
}

Result<ReaddirArgs> ReaddirArgs::decode(xdr::XdrDecoder& dec) {
  ReaddirArgs a;
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.cookie = dec.get_u64();
  dec.get_u64();
  a.max_count = dec.get_u32();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "readdir args");
  return a;
}

u64 ReaddirRes::wire_size() const {
  u64 n = xdr::size_u32() + dir_attr.wire_size() + 8;  // + cookie verifier
  for (const Entry& e : entries) {
    // value-follows bool + fileid + name + cookie
    n += xdr::size_bool() + xdr::size_u64() + xdr::size_string(e.name.size()) +
         xdr::size_u64();
  }
  n += xdr::size_bool() + xdr::size_bool();  // final value-follows + eof
  return n;
}

void ReaddirRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  dir_attr.encode(enc);
  enc.put_u64(0);  // cookie verifier
  for (const Entry& e : entries) {
    enc.put_bool(true);
    enc.put_u64(e.fileid);
    enc.put_string(e.name);
    enc.put_u64(e.cookie);
  }
  enc.put_bool(false);
  enc.put_bool(eof);
}

Result<ReaddirRes> ReaddirRes::decode(xdr::XdrDecoder& dec) {
  ReaddirRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.dir_attr, PostOpAttr::decode(dec));
  dec.get_u64();
  while (dec.get_bool()) {
    Entry e;
    e.fileid = dec.get_u64();
    e.name = dec.get_string();
    e.cookie = dec.get_u64();
    r.entries.push_back(std::move(e));
    if (!dec.ok()) return err(ErrCode::kBadXdr, "readdir entry");
  }
  r.eof = dec.get_bool();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "readdir res");
  return r;
}

// ----------------------------------------------------------- Readdirplus ----

void ReaddirplusArgs::encode(xdr::XdrEncoder& enc) const {
  dir.encode(enc);
  enc.put_u64(cookie);
  enc.put_u64(0);  // cookie verifier
  enc.put_u32(dircount);
  enc.put_u32(maxcount);
}

Result<ReaddirplusArgs> ReaddirplusArgs::decode(xdr::XdrDecoder& dec) {
  ReaddirplusArgs a;
  GVFS_ASSIGN_OR_RETURN(a.dir, Fh::decode(dec));
  a.cookie = dec.get_u64();
  dec.get_u64();
  a.dircount = dec.get_u32();
  a.maxcount = dec.get_u32();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "readdirplus args");
  return a;
}

u64 ReaddirplusRes::wire_size() const {
  u64 n = xdr::size_u32() + dir_attr.wire_size() + 8;
  for (const Entry& e : entries) {
    n += xdr::size_bool() + xdr::size_u64() + xdr::size_string(e.name.size()) +
         xdr::size_u64() + e.attr.wire_size() + xdr::size_bool() + Fh::wire_size();
  }
  n += xdr::size_bool() + xdr::size_bool();
  return n;
}

void ReaddirplusRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  dir_attr.encode(enc);
  enc.put_u64(0);  // cookie verifier
  for (const Entry& e : entries) {
    enc.put_bool(true);
    enc.put_u64(e.fileid);
    enc.put_string(e.name);
    enc.put_u64(e.cookie);
    e.attr.encode(enc);
    enc.put_bool(true);  // handle follows
    e.fh.encode(enc);
  }
  enc.put_bool(false);
  enc.put_bool(eof);
}

Result<ReaddirplusRes> ReaddirplusRes::decode(xdr::XdrDecoder& dec) {
  ReaddirplusRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.dir_attr, PostOpAttr::decode(dec));
  dec.get_u64();
  while (dec.get_bool()) {
    Entry e;
    e.fileid = dec.get_u64();
    e.name = dec.get_string();
    e.cookie = dec.get_u64();
    GVFS_ASSIGN_OR_RETURN(e.attr, PostOpAttr::decode(dec));
    if (dec.get_bool()) {
      GVFS_ASSIGN_OR_RETURN(e.fh, Fh::decode(dec));
    }
    r.entries.push_back(std::move(e));
    if (!dec.ok()) return err(ErrCode::kBadXdr, "readdirplus entry");
  }
  r.eof = dec.get_bool();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "readdirplus res");
  return r;
}

// -------------------------------------------------------------- Pathconf ----

void PathconfRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) {
    enc.put_u32(linkmax);
    enc.put_u32(name_max);
    enc.put_bool(true);   // no_trunc
    enc.put_bool(false);  // chown_restricted
    enc.put_bool(true);   // case_insensitive = false... case_sensitive fs
    enc.put_bool(true);   // case_preserving
  }
}

Result<PathconfRes> PathconfRes::decode(xdr::XdrDecoder& dec) {
  PathconfRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) {
    r.linkmax = dec.get_u32();
    r.name_max = dec.get_u32();
    for (int i = 0; i < 4; ++i) dec.get_bool();
  }
  if (!dec.ok()) return err(ErrCode::kBadXdr, "pathconf res");
  return r;
}

// ---------------------------------------------------------------- Fsstat ----

void FsstatRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) {
    enc.put_u64(total_bytes);
    enc.put_u64(free_bytes);
    enc.put_u64(free_bytes);  // available
    enc.put_u64(total_files);
    enc.put_u64(0);
    enc.put_u64(0);
    enc.put_u64(0);  // combined remaining fields
    enc.put_u32(0);  // invarsec
  }
}

Result<FsstatRes> FsstatRes::decode(xdr::XdrDecoder& dec) {
  FsstatRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) {
    r.total_bytes = dec.get_u64();
    r.free_bytes = dec.get_u64();
    dec.get_u64();
    r.total_files = dec.get_u64();
    dec.get_u64();
    dec.get_u64();
    dec.get_u64();
    dec.get_u32();
  }
  if (!dec.ok()) return err(ErrCode::kBadXdr, "fsstat res");
  return r;
}

// ---------------------------------------------------------------- Fsinfo ----

void FsinfoRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) {
    enc.put_u32(rtmax);
    enc.put_u32(rtpref);
    enc.put_u32(512);  // rtmult
    enc.put_u32(wtmax);
    enc.put_u32(wtpref);
    enc.put_u32(512);   // wtmult
    enc.put_u32(4096);  // dtpref
    enc.put_u32(0);     // maxfilesize hi
    enc.put_u32(0xffffffffu);  // maxfilesize lo
    enc.put_u32(0);     // time_delta sec
    enc.put_u32(1);     // time_delta nsec
    enc.put_u32(0x1b);  // properties
  }
}

Result<FsinfoRes> FsinfoRes::decode(xdr::XdrDecoder& dec) {
  FsinfoRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) {
    r.rtmax = dec.get_u32();
    r.rtpref = dec.get_u32();
    dec.get_u32();
    r.wtmax = dec.get_u32();
    r.wtpref = dec.get_u32();
    for (int i = 0; i < 7; ++i) dec.get_u32();
  }
  if (!dec.ok()) return err(ErrCode::kBadXdr, "fsinfo res");
  return r;
}

// ---------------------------------------------------------------- Commit ----

void CommitArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  enc.put_u64(offset);
  enc.put_u32(count);
}

Result<CommitArgs> CommitArgs::decode(xdr::XdrDecoder& dec) {
  CommitArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  a.offset = dec.get_u64();
  a.count = dec.get_u32();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "commit args");
  return a;
}

void CommitRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  attr.encode(enc);
  if (status == NfsStat::kOk) enc.put_u64(verifier);
}

Result<CommitRes> CommitRes::decode(xdr::XdrDecoder& dec) {
  CommitRes r;
  r.status = get_status(dec);
  GVFS_ASSIGN_OR_RETURN(r.attr, PostOpAttr::decode(dec));
  if (r.status == NfsStat::kOk) r.verifier = dec.get_u64();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "commit res");
  return r;
}

// ----------------------------------------------------------------- Lease ----

void LeaseArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  enc.put_u64(client_id);
  enc.put_u32(static_cast<u32>(mode));
}

Result<LeaseArgs> LeaseArgs::decode(xdr::XdrDecoder& dec) {
  LeaseArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  a.client_id = dec.get_u64();
  a.mode = static_cast<LeaseMode>(dec.get_u32());
  if (!dec.ok()) return err(ErrCode::kBadXdr, "lease args");
  return a;
}

void LeaseRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  enc.put_u32(granted ? 1 : 0);
  enc.put_u64(static_cast<u64>(expiry));
  enc.put_u32(holders);
}

Result<LeaseRes> LeaseRes::decode(xdr::XdrDecoder& dec) {
  LeaseRes r;
  r.status = get_status(dec);
  r.granted = dec.get_u32() != 0;
  r.expiry = static_cast<SimTime>(dec.get_u64());
  r.holders = dec.get_u32();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "lease res");
  return r;
}

void LeaseReleaseArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  enc.put_u64(client_id);
}

Result<LeaseReleaseArgs> LeaseReleaseArgs::decode(xdr::XdrDecoder& dec) {
  LeaseReleaseArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  a.client_id = dec.get_u64();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "lease release args");
  return a;
}

void LeaseReleaseRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
}

Result<LeaseReleaseRes> LeaseReleaseRes::decode(xdr::XdrDecoder& dec) {
  LeaseReleaseRes r;
  r.status = get_status(dec);
  if (!dec.ok()) return err(ErrCode::kBadXdr, "lease release res");
  return r;
}

void RecallArgs::encode(xdr::XdrEncoder& enc) const {
  fh.encode(enc);
  enc.put_u64(client_id);
  enc.put_u32(static_cast<u32>(contender));
}

Result<RecallArgs> RecallArgs::decode(xdr::XdrDecoder& dec) {
  RecallArgs a;
  GVFS_ASSIGN_OR_RETURN(a.fh, Fh::decode(dec));
  a.client_id = dec.get_u64();
  a.contender = static_cast<LeaseMode>(dec.get_u32());
  if (!dec.ok()) return err(ErrCode::kBadXdr, "recall args");
  return a;
}

void RecallRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  enc.put_u32(flushed ? 1 : 0);
}

Result<RecallRes> RecallRes::decode(xdr::XdrDecoder& dec) {
  RecallRes r;
  r.status = get_status(dec);
  r.flushed = dec.get_u32() != 0;
  if (!dec.ok()) return err(ErrCode::kBadXdr, "recall res");
  return r;
}

// ----------------------------------------------------------------- Mount ----

void MountArgs::encode(xdr::XdrEncoder& enc) const { enc.put_string(dirpath); }

Result<MountArgs> MountArgs::decode(xdr::XdrDecoder& dec) {
  MountArgs a;
  a.dirpath = dec.get_string();
  if (!dec.ok()) return err(ErrCode::kBadXdr, "mount args");
  return a;
}

void MountRes::encode(xdr::XdrEncoder& enc) const {
  put_status(enc, status);
  if (status == NfsStat::kOk) root.encode(enc);
}

Result<MountRes> MountRes::decode(xdr::XdrDecoder& dec) {
  MountRes r;
  r.status = get_status(dec);
  if (r.status == NfsStat::kOk) {
    GVFS_ASSIGN_OR_RETURN(r.root, Fh::decode(dec));
  }
  return r;
}

}  // namespace gvfs::nfs
