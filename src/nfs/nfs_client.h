// Kernel NFS client model implementing the FsSession "system call" surface.
// Mirrors a 2.4-era Linux client: dentry cache, attribute cache with a TTL,
// a bounded page cache fed by rsize READs, staged (bounded) dirty pages
// flushed as wsize WRITE bursts plus COMMIT on close — the exact behaviours
// whose WAN costs the GVFS proxy extensions attack.
#pragma once

#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "common/trace.h"
#include "nfs/nfs_types.h"
#include "rpc/rpc.h"
#include "vfs/buffer_cache.h"
#include "vfs/fs_session.h"

namespace gvfs::nfs {

struct NfsClientConfig {
  u32 rsize = 8_KiB;   // era-typical kernel default; GVFS negotiates 32 KiB
  u32 wsize = 8_KiB;
  u32 page_size = 4_KiB;
  u64 buffer_cache_bytes = 512_MiB;
  u64 dirty_limit_bytes = 16_MiB;  // staged writes before forced writeback
  SimDuration attr_cache_ttl = 30 * kSecond;
  SimDuration per_op_cpu = 40 * kMicrosecond;  // syscall + RPC client CPU
  // Sequential read-ahead depth in rsize blocks (1 = fully synchronous,
  // which matches the VMM's blocking read pattern the paper measured).
  u32 readahead_blocks = 1;
};

class NfsClient final : public vfs::FsSession {
 public:
  NfsClient(rpc::RpcChannel& channel, rpc::Credential cred, NfsClientConfig cfg = {});

  // MOUNT the export and negotiate transfer sizes via FSINFO.
  Status mount(sim::Process& p, const std::string& export_path);
  [[nodiscard]] bool mounted() const { return root_.valid(); }

  // ---- FsSession ----------------------------------------------------------
  Result<vfs::Attr> stat(sim::Process& p, const std::string& path) override;
  Result<blob::BlobRef> read(sim::Process& p, const std::string& path, u64 offset,
                             u64 len) override;
  Status write(sim::Process& p, const std::string& path, u64 offset,
               blob::BlobRef data) override;
  Status create(sim::Process& p, const std::string& path) override;
  Status mkdirs(sim::Process& p, const std::string& path) override;
  Status remove(sim::Process& p, const std::string& path) override;
  Status truncate(sim::Process& p, const std::string& path, u64 size) override;
  Status symlink(sim::Process& p, const std::string& link_path,
                 const std::string& target) override;
  Status hard_link(sim::Process& p, const std::string& existing,
                   const std::string& link_path) override;
  Result<std::vector<vfs::DirEntry>> list(sim::Process& p,
                                          const std::string& path) override;
  Status flush(sim::Process& p) override;

  // Close semantics: flush the file's staged writes and COMMIT (NFS
  // close-to-open consistency). No-op if nothing is dirty.
  Status close(sim::Process& p, const std::string& path);

  // Drop page/attr/dentry caches (cold experiment start, or a middleware
  // consistency invalidation).
  void drop_caches();

  // ---- Observability ------------------------------------------------------
  [[nodiscard]] u64 rpcs_sent() const { return rpcs_sent_.value(); }
  [[nodiscard]] u64 rpcs_sent(Proc proc) const;
  [[nodiscard]] u64 bytes_read_wire() const { return bytes_read_wire_.value(); }
  [[nodiscard]] u64 bytes_written_wire() const { return bytes_written_wire_.value(); }
  // Replies rejected because their xid did not match the issued call.
  [[nodiscard]] u64 xid_mismatches() const { return xid_mismatches_.value(); }
  [[nodiscard]] vfs::BufferCache& page_cache() { return pages_; }
  void reset_stats();

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "rpcs_sent", &rpcs_sent_);
    r.register_counter(prefix + "bytes_read_wire", &bytes_read_wire_);
    r.register_counter(prefix + "bytes_written_wire", &bytes_written_wire_);
    r.register_counter(prefix + "xid_mismatches", &xid_mismatches_);
  }

  // Open an xid-keyed trace span around every RPC this client issues.
  void set_tracer(trace::RpcTracer* t) { tracer_ = t; }

 private:
  struct CachedAttr {
    vfs::Attr attr;
    SimTime expires = 0;
  };

  // RPC plumbing.
  rpc::RpcCall make_call_(Proc proc, rpc::MessagePtr args);
  Result<rpc::MessagePtr> call_(sim::Process& p, Proc proc, rpc::MessagePtr args);
  template <typename Res>
  Result<std::shared_ptr<const Res>> call_as_(sim::Process& p, Proc proc,
                                              rpc::MessagePtr args);

  // Path resolution through the dentry cache (LOOKUP RPCs on miss).
  Result<Fh> resolve_(sim::Process& p, const std::string& path);
  Result<Fh> lookup_(sim::Process& p, const Fh& dir, const std::string& name);
  Result<vfs::Attr> getattr_(sim::Process& p, const Fh& fh);
  void cache_attr_(const Fh& fh, const vfs::Attr& a, sim::Process& p);
  void invalidate_path_(const std::string& path);

  // Fetch the rsize block containing `page` into the page cache.
  Status fill_block_(sim::Process& p, const Fh& fh, u64 file_size, u64 page);
  // Flush dirty pages of one file as wsize WRITE runs + COMMIT.
  Status flush_file_(sim::Process& p, const Fh& fh);

  rpc::RpcChannel& channel_;
  rpc::Credential cred_;
  NfsClientConfig cfg_;
  Fh root_;
  vfs::BufferCache pages_;
  std::unordered_map<u64, CachedAttr> attr_cache_;           // key: fh.key()
  std::unordered_map<std::string, Fh> dentry_cache_;          // "dirkey/name"
  std::unordered_map<std::string, Fh> path_cache_;            // full path -> fh
  std::unordered_map<u64, u64> file_sizes_;  // fh.key -> max known size (incl. staged)
  std::unordered_map<u64, u64> last_block_;  // fh.key -> last block (sequential detect)
  std::unordered_map<u64, Fh> key_to_fh_;
  u32 next_xid_ = 1;
  metrics::Counter rpcs_sent_;
  std::unordered_map<u32, u64> proc_counts_;
  metrics::Counter bytes_read_wire_;
  metrics::Counter bytes_written_wire_;
  metrics::Counter xid_mismatches_;
  trace::RpcTracer* tracer_ = nullptr;
};

}  // namespace gvfs::nfs
