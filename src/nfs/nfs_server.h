// Kernel NFS server model: services NFSv3 and MOUNT RPCs against a MemFs
// export, charging CPU per operation and disk time through a server-side
// page cache. Concurrency is bounded by an nfsd thread pool (semaphore), so
// eight parallel cloning clients queue here exactly as they would on a real
// image server.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "nfs/nfs_types.h"
#include "rpc/rpc.h"
#include "sim/resources.h"
#include "vfs/buffer_cache.h"
#include "vfs/memfs.h"

namespace gvfs::nfs {

struct NfsServerConfig {
  u32 fsid = 1;
  u32 max_io = kMaxBlockSize;                  // rtmax/wtmax advertised
  SimDuration per_op_cpu = 80 * kMicrosecond;  // service CPU per RPC
  u64 buffer_cache_bytes = 700_MiB;            // page cache share of RAM
  u32 page_size = 8_KiB;
  u64 readahead_bytes = 64_KiB;
  int nfsd_threads = 8;
  bool require_auth_unix = true;
  // Duplicate request cache: retransmitted non-idempotent ops (WRITE,
  // CREATE, REMOVE, ...) get their cached reply instead of re-executing
  // (RFC 1813 §4; Juszczak '89). 0 disables. Lost with server volatile
  // state on a crash (clear_drc()).
  u32 drc_entries = 256;
  // Width of the DRC hash key in bits (64 = full hash). Entries store the
  // complete (machine, uid, prog, proc, xid) tuple and verify it on every
  // hit, so a narrower key only raises the collision rate — tests shrink it
  // to force collisions deterministically.
  u32 drc_key_bits = 64;
  // Test seam: when true, clear_drc() preserves the cache across a simulated
  // reboot, modeling a server that journals its DRC to stable storage
  // (Juszczak '89 §4 discusses exactly this option). Default false — the DRC
  // is volatile state and a crash empties it (DESIGN.md §5.7 documents the
  // contract). Cluster tests flip it to isolate which retransmit replays are
  // due to DRC survival vs. plain idempotency.
  bool drc_survives = false;
  // ---- GVFS lease extension (DESIGN.md §5.10) ------------------------------
  // Serve LEASE_ACQUIRE / LEASE_RELEASE and issue recall callbacks on
  // conflict. Off by default: lease procs answer kNotSupported, no lease
  // state, no callback traffic — byte-identical to the pre-lease server.
  bool enable_leases = false;
  // Grant lifetime in virtual time. A holder that cannot be recalled (e.g.
  // partitioned away) blocks conflicting grants only until its lease lapses.
  SimDuration lease_duration = 30 * kSecond;
};

class NfsServer final : public rpc::RpcHandler {
 public:
  NfsServer(sim::SimKernel& kernel, vfs::MemFs& fs, sim::DiskModel& disk,
            NfsServerConfig cfg = {});

  // Register an exported directory (created if missing). MOUNT requests for
  // other paths are rejected.
  Status add_export(const std::string& path);

  // Optional policy hook: return false to reject a credential (AUTH_ERROR).
  void set_authorizer(std::function<bool(const rpc::Credential&)> fn) {
    authorizer_ = std::move(fn);
  }

  rpc::RpcReply handle(sim::Process& p, const rpc::RpcCall& call) override;

  [[nodiscard]] Fh root_fh(const std::string& export_path);
  [[nodiscard]] Fh fh_of(vfs::FileId id) const { return Fh{cfg_.fsid, id}; }
  [[nodiscard]] vfs::MemFs& fs() { return fs_; }
  [[nodiscard]] vfs::BufferCache& page_cache() { return page_cache_; }

  // Per-procedure call counters (experiment observability).
  [[nodiscard]] u64 calls(Proc proc) const;
  [[nodiscard]] u64 total_calls() const { return total_calls_.value(); }
  void reset_stats();

  // Drop the server page cache (cold experiment start).
  void drop_caches() { page_cache_.drop_all(); }

  // Duplicate-request-cache observability / crash simulation.
  [[nodiscard]] u64 drc_hits() const { return drc_hits_.value(); }
  [[nodiscard]] u64 drc_inserts() const { return drc_inserts_.value(); }
  // Hash-key collisions between distinct live transactions (detected by the
  // full-tuple verification; the colliding call executes normally).
  [[nodiscard]] u64 drc_collisions() const { return drc_collisions_.value(); }
  // Reboot-time wipes actually performed / skipped via the drc_survives seam.
  [[nodiscard]] u64 drc_clears() const { return drc_clears_.value(); }
  [[nodiscard]] u64 drc_retained() const { return drc_retained_.value(); }
  [[nodiscard]] std::size_t drc_size() const { return drc_.size(); }
  void clear_drc() {
    if (cfg_.drc_survives) {
      drc_retained_.inc();
      return;
    }
    drc_clears_.inc();
    drc_.clear();
    drc_order_.clear();
  }

  // ---- lease table (GVFS extension, DESIGN.md §5.10) -----------------------
  // Reverse callback channel for a lease-aware proxy: recalls to `client_id`
  // travel it (same decorated fault/retry stack as forward traffic, in
  // reverse). The channel must outlive every recall issued on it.
  void set_lease_callback(u64 client_id, rpc::RpcChannel* chan) {
    lease_callbacks_[client_id] = chan;
  }
  // Leases are volatile server state: a crash empties the table (holders
  // must re-acquire — the proxy's fencing path), like clear_drc() for the DRC.
  void clear_leases() {
    if (leases_.empty()) return;
    lease_clears_.inc();
    leases_.clear();  // gvfs-lint: allow(lease-table-mutation) crash wipe is a sanctioned site
  }
  [[nodiscard]] u64 leases_granted() const { return leases_granted_.value(); }
  [[nodiscard]] u64 leases_denied() const { return leases_denied_.value(); }
  [[nodiscard]] u64 lease_recalls() const { return lease_recalls_.value(); }
  [[nodiscard]] u64 lease_recall_failures() const {
    return lease_recall_failures_.value();
  }
  [[nodiscard]] u64 lease_expirations() const { return lease_expirations_.value(); }
  [[nodiscard]] u64 lease_releases() const { return lease_releases_.value(); }
  [[nodiscard]] std::size_t lease_table_size() const { return leases_.size(); }
  // Grant-order log: the linearization order the multi-writer property sweep
  // checks against (per-file sequence of grants, in virtual-time order).
  struct LeaseGrant {
    u64 key = 0;
    u64 client = 0;
    LeaseMode mode = LeaseMode::kRead;
    SimTime at = 0;
  };
  [[nodiscard]] const std::vector<LeaseGrant>& lease_grants() const {
    return lease_grants_;
  }

  // DRC capacity actually in effect (the testbed scales it to client count).
  [[nodiscard]] u32 drc_capacity() const { return cfg_.drc_entries; }

  // RFC 1813 §3.3.7: the write verifier must change on every server reboot
  // so clients detect that uncommitted UNSTABLE writes were lost and re-send
  // them. Called from the crash-restart callback alongside clear_drc().
  void roll_write_verifier() {
    write_verifier_ = write_verifier_ * 0x9e3779b97f4a7c15ULL + 1;
  }
  [[nodiscard]] u64 write_verifier() const { return write_verifier_; }

  void register_metrics(metrics::Registry& r, const std::string& prefix) const {
    r.register_counter(prefix + "total_calls", &total_calls_);
    r.register_counter(prefix + "drc_hits", &drc_hits_);
    r.register_counter(prefix + "drc_inserts", &drc_inserts_);
    r.register_counter(prefix + "drc_collisions", &drc_collisions_);
    r.register_counter(prefix + "drc_clears", &drc_clears_);
    r.register_counter(prefix + "drc_retained", &drc_retained_);
    r.register_histogram(prefix + "service_ms", &service_ms_);
    if (cfg_.enable_leases) {
      r.register_counter(prefix + "leases_granted", &leases_granted_);
      r.register_counter(prefix + "leases_denied", &leases_denied_);
      r.register_counter(prefix + "lease_recalls", &lease_recalls_);
      r.register_counter(prefix + "lease_recall_failures", &lease_recall_failures_);
      r.register_counter(prefix + "lease_expirations", &lease_expirations_);
      r.register_counter(prefix + "lease_releases", &lease_releases_);
      r.register_counter(prefix + "lease_clears", &lease_clears_);
    }
  }

  // Annotate DRC outcomes onto the caller's open trace span.
  void set_tracer(trace::RpcTracer* t) { tracer_ = t; }

 private:
  // One cached reply of the duplicate request cache. The map key is a hash;
  // the full request identity is kept so a hash collision can never replay
  // the wrong client's reply (it is detected and treated as a miss instead).
  // Both the transport status and the (possibly null) result are cached:
  // RFC 1813 §4 requires error replies to non-idempotent procedures to be
  // replayed too, not re-executed against changed state.
  struct DrcEntry {
    std::string machine;
    u32 uid = 0;
    u32 prog = 0;
    u32 proc = 0;
    u32 xid = 0;
    Status status;
    rpc::MessagePtr result;
  };

  rpc::RpcReply handle_nfs_(sim::Process& p, const rpc::RpcCall& call);
  rpc::RpcReply dispatch_nfs_(sim::Process& p, const rpc::RpcCall& call);
  rpc::RpcReply dispatch_mount_(sim::Process& p, const rpc::RpcCall& call);

  // Duplicate request cache internals.
  static bool is_nonidempotent_(Proc proc);
  [[nodiscard]] u64 drc_key_(const rpc::RpcCall& call) const;
  static bool drc_matches_(const DrcEntry& e, const rpc::RpcCall& call);

  rpc::MessagePtr do_getattr_(const GetattrArgs& a);
  rpc::MessagePtr do_setattr_(sim::Process& p, const SetattrArgs& a);
  rpc::MessagePtr do_lookup_(const LookupArgs& a);
  rpc::MessagePtr do_access_(const AccessArgs& a);
  rpc::MessagePtr do_readlink_(const ReadlinkArgs& a);
  rpc::MessagePtr do_read_(sim::Process& p, const ReadArgs& a);
  rpc::MessagePtr do_write_(sim::Process& p, const WriteArgs& a);
  rpc::MessagePtr do_create_(const CreateArgs& a, const rpc::Credential& cred);
  rpc::MessagePtr do_mkdir_(const MkdirArgs& a, const rpc::Credential& cred);
  rpc::MessagePtr do_symlink_(const SymlinkArgs& a);
  rpc::MessagePtr do_remove_(const RemoveArgs& a);
  rpc::MessagePtr do_rmdir_(const RemoveArgs& a);
  rpc::MessagePtr do_rename_(const RenameArgs& a);
  rpc::MessagePtr do_link_(const LinkArgs& a);
  rpc::MessagePtr do_readdir_(const ReaddirArgs& a);
  rpc::MessagePtr do_readdirplus_(const ReaddirplusArgs& a);
  rpc::MessagePtr do_pathconf_(const GetattrArgs& a);
  rpc::MessagePtr do_fsstat_();
  rpc::MessagePtr do_fsinfo_();
  rpc::MessagePtr do_commit_(sim::Process& p, const CommitArgs& a);
  rpc::MessagePtr do_lease_acquire_(sim::Process& p, const LeaseArgs& a);
  rpc::MessagePtr do_lease_release_(const LeaseReleaseArgs& a);

  // ---- sanctioned lease-table mutation helpers -----------------------------
  // Every mutation of leases_ goes through these (plus clear_leases()); the
  // gvfs_lint lease-table-mutation rule flags any other site, because the
  // recall fiber and nfsd fibers interleave and ad-hoc mutation is how grant
  // order diverges from the log.
  void lease_add_holder_(const Fh& fh, u64 client, LeaseMode mode,
                         SimTime expiry);
  bool lease_remove_holder_(u64 key, u64 client);
  void lease_expire_holders_(u64 key, SimTime now);
  // Fire-and-forget recall fiber against `client`'s callback channel; on a
  // successful recall reply the holder is removed, on timeout it is left to
  // lapse at its expiry.
  void spawn_recall_(const Fh& fh, u64 client, LeaseMode contender);

  PostOpAttr post_attr_(vfs::FileId id);
  // Timed page-cache read of [offset, offset+len) from file `id`.
  void charge_read_(sim::Process& p, vfs::FileId id, u64 file_size, u64 offset,
                    u64 len);
  // Flush dirty byte accounting for a file to disk.
  void flush_dirty_(sim::Process& p, vfs::FileId id);

  sim::SimKernel& kernel_;
  vfs::MemFs& fs_;
  sim::DiskModel& disk_;
  NfsServerConfig cfg_;
  vfs::BufferCache page_cache_;
  sim::Semaphore nfsd_;
  std::function<bool(const rpc::Credential&)> authorizer_;
  std::unordered_map<std::string, vfs::FileId> exports_;
  std::unordered_map<vfs::FileId, u64> dirty_bytes_;
  std::unordered_map<vfs::FileId, u64> last_read_page_;
  std::unordered_map<u32, u64> proc_calls_;
  // Duplicate request cache: bounded FIFO of cached replies for recent
  // non-idempotent transactions, keyed on a hash of (client identity, prog,
  // proc, xid) and verified against the stored full tuple on every hit.
  std::unordered_map<u64, DrcEntry> drc_;
  std::deque<u64> drc_order_;
  // ---- lease table ---------------------------------------------------------
  struct LeaseHolder {
    u64 client = 0;
    LeaseMode mode = LeaseMode::kRead;
    SimTime expiry = 0;
    bool recall_sent = false;
  };
  struct LeaseEntry {
    Fh fh;
    std::vector<LeaseHolder> holders;
  };
  std::unordered_map<u64, LeaseEntry> leases_;
  std::unordered_map<u64, rpc::RpcChannel*> lease_callbacks_;
  std::vector<LeaseGrant> lease_grants_;
  u32 recall_xid_ = 0x5B000000;
  metrics::Counter leases_granted_;
  metrics::Counter leases_denied_;
  metrics::Counter lease_recalls_;
  metrics::Counter lease_recall_failures_;
  metrics::Counter lease_expirations_;
  metrics::Counter lease_releases_;
  metrics::Counter lease_clears_;
  metrics::Counter drc_hits_;
  metrics::Counter drc_inserts_;
  metrics::Counter drc_collisions_;
  metrics::Counter drc_clears_;
  metrics::Counter drc_retained_;
  metrics::Counter total_calls_;
  metrics::Histogram service_ms_;  // virtual-time per-RPC service latency
  trace::RpcTracer* tracer_ = nullptr;
  u64 write_verifier_;
};

}  // namespace gvfs::nfs
